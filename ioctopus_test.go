package ioctopus_test

import (
	"testing"
	"time"

	"ioctopus"
)

// TestPublicAPIQuickstart exercises the facade end to end: build the
// testbed, run a stream through the octoNIC, reproduce a figure.
func TestPublicAPIQuickstart(t *testing.T) {
	cl := ioctopus.NewCluster(ioctopus.Config{Mode: ioctopus.ModeIOctopus})
	defer cl.Drain()

	var received int64
	cl.Server.Stack.Listen(7, func(s *ioctopus.Socket) {
		cl.Server.Kernel.Spawn("server", 0, func(th *ioctopus.Thread) {
			s.SetOwner(th)
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				received += n
			}
		})
	})
	cl.Client.Kernel.Spawn("client", 0, func(th *ioctopus.Thread) {
		sock, err := cl.Client.Stack.Dial(th, ioctopus.IPServerPF0, 7, ioctopus.ProtoTCP)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for {
			sock.Send(th, 64*1024)
		}
	})
	cl.Run(10 * time.Millisecond)
	if received == 0 {
		t.Fatal("no bytes moved through the public API")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	ids := ioctopus.ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("experiments = %d, want >= 15", len(ids))
	}
	res, err := ioctopus.RunExperiment("fig2", ioctopus.QuickDurations())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("fig2 checks failed:\n%s", res.Render())
	}
	if _, err := ioctopus.RunExperiment("not-a-figure", ioctopus.QuickDurations()); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestPublicAPIStorage(t *testing.T) {
	rig := ioctopus.NewStorageRig(ioctopus.StorageConfig{
		Drives: 2, SSDNode: 1, Policy: ioctopus.NVMeOctoSSD, DualPort: true,
	})
	defer rig.Drain()
	f := ioctopus.StartFio(rig, ioctopus.FioConfig{
		Cores: []ioctopus.CoreID{0, 1}, QueueDepth: 8, BlockSize: 128 * 1024,
	})
	rig.Run(50 * time.Millisecond)
	f.MeasureStart()
	rig.Run(50 * time.Millisecond)
	if f.Bytes() == 0 {
		t.Fatal("no storage I/O completed")
	}
}

func TestPublicAPITopologies(t *testing.T) {
	if ioctopus.DualBroadwell().NumCores() != 28 {
		t.Fatal("broadwell shape wrong")
	}
	if ioctopus.DualSkylake().NumCores() != 48 {
		t.Fatal("skylake shape wrong")
	}
	if ioctopus.QuadSocket(8).NumNodes() != 4 {
		t.Fatal("quad shape wrong")
	}
}

func TestPublicAPIDurations(t *testing.T) {
	q, f := ioctopus.QuickDurations(), ioctopus.FullDurations()
	if q.Measure >= f.Measure || q.Timeline >= f.Timeline {
		t.Fatal("quick durations should be shorter than full")
	}
}
