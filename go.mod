module ioctopus

go 1.23
