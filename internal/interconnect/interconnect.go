// Package interconnect models the CPU interconnect (QPI/UPI/HT): the
// directional socket-to-socket links that remote memory accesses, remote
// DMA, cross-socket MMIO and coherence traffic all traverse, and whose
// saturation is what Figures 11, 12 and 15 of the paper measure.
//
// Each ordered socket pair gets one sim.Pipe aggregating the parallel
// physical links of that direction. For more than two sockets the fabric
// is fully connected (matching the evaluated machines); a Route is then a
// single hop, but the API returns a path so partially connected
// topologies could be modelled.
package interconnect

import (
	"fmt"
	"sort"
	"time"

	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// Fabric is the interconnect of one server.
type Fabric struct {
	eng   *sim.Engine
	spec  topology.InterconnectSpec
	nodes int
	pipes map[[2]topology.NodeID]*sim.Pipe
}

// New builds the fabric for the given server.
func New(e *sim.Engine, srv *topology.Server) *Fabric {
	f := &Fabric{
		eng:   e,
		spec:  srv.Interconnect,
		nodes: srv.NumNodes(),
		pipes: make(map[[2]topology.NodeID]*sim.Pipe),
	}
	for i := 0; i < f.nodes; i++ {
		for j := 0; j < f.nodes; j++ {
			if i == j {
				continue
			}
			key := [2]topology.NodeID{topology.NodeID(i), topology.NodeID(j)}
			f.pipes[key] = sim.NewPipe(e, sim.PipeConfig{
				Name:        fmt.Sprintf("%s %d->%d", f.spec.Name, i, j),
				BytesPerSec: f.spec.AggregateBandwidth(),
				BaseLatency: f.spec.BaseLatency,
				// The home agent keeps arbitrating bandwidth for DMA
				// bursts even under full CPU streaming load; Fig 15's
				// bounded fio degradation calibrates this share.
				MinDiscreteShare: 0.23,
			})
		}
	}
	return f
}

// Nodes returns the socket count.
func (f *Fabric) Nodes() int { return f.nodes }

// Pipe returns the directional pipe from one node to another.
func (f *Fabric) Pipe(from, to topology.NodeID) *sim.Pipe {
	if from == to {
		panic(fmt.Sprintf("interconnect: no pipe from node %d to itself", from))
	}
	p, ok := f.pipes[[2]topology.NodeID{from, to}]
	if !ok {
		panic(fmt.Sprintf("interconnect: no pipe %d->%d", from, to))
	}
	return p
}

// Charge accounts bytes crossing from -> to (no-op when from == to) and
// returns the latency that crossing currently costs. Contention appears
// as latency inflation on the underlying pipe rather than hard
// serialization, since many agents use the link concurrently.
func (f *Fabric) Charge(from, to topology.NodeID, bytes int64) time.Duration {
	if from == to {
		return 0
	}
	p := f.Pipe(from, to)
	lat := p.Latency(bytes)
	p.Charge(bytes)
	return lat
}

// Latency prices a crossing without charging it (e.g. the address phase
// of a read whose data phase is charged in the other direction).
func (f *Fabric) Latency(from, to topology.NodeID, bytes int64) time.Duration {
	if from == to {
		return 0
	}
	return f.Pipe(from, to).Latency(bytes)
}

// Transfer moves bytes from -> to as a serialized discrete transfer
// (for DMA engines that own the link endpoint) and schedules done at
// arrival. When from == to it completes after zero delay.
func (f *Fabric) Transfer(from, to topology.NodeID, bytes int64, done func()) {
	if from == to {
		if done != nil {
			f.eng.After(0, done)
		}
		return
	}
	f.Pipe(from, to).Transfer(bytes, done)
}

// AddFlow registers a fluid flow (bulk traffic such as STREAM) in the
// from -> to direction and returns it for rate queries and removal.
func (f *Fabric) AddFlow(name string, from, to topology.NodeID, demand float64) *sim.FluidFlow {
	return f.Pipe(from, to).AddFlow(name, demand)
}

// Degrade scales one direction's bandwidth and base latency relative to
// the link's healthy values (fault injection: a flapping lane group, a
// misbehaving home agent). Degrade(from, to, 1, 1) restores the link
// exactly.
func (f *Fabric) Degrade(from, to topology.NodeID, bwFactor, latFactor float64) {
	f.Pipe(from, to).SetDegradation(bwFactor, latFactor)
}

// Utilization returns the utilization of the from -> to direction.
func (f *Fabric) Utilization(from, to topology.NodeID) float64 {
	if from == to {
		return 0
	}
	return f.Pipe(from, to).Utilization()
}

// TotalBytes returns all bytes moved across the fabric in both kinds of
// traffic. Summation order is fixed by link key, not map order: float
// addition is not associative, so iteration order would otherwise leak
// into reported totals.
func (f *Fabric) TotalBytes() float64 {
	var sum float64
	for _, key := range f.sortedLinks() {
		sum += f.pipes[key].TotalBytes()
	}
	return sum
}

// ResetStats zeroes every pipe's counters.
func (f *Fabric) ResetStats() {
	for _, key := range f.sortedLinks() {
		f.pipes[key].ResetStats()
	}
}

// sortedLinks returns the directional link keys in canonical
// (src, dst) order, the deterministic way to walk the pipes map.
func (f *Fabric) sortedLinks() [][2]topology.NodeID {
	keys := make([][2]topology.NodeID, 0, len(f.pipes))
	for key := range f.pipes {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}
