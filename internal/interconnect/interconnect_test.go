package interconnect

import (
	"math"
	"testing"

	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

func newFabric(t *testing.T) (*sim.Engine, *Fabric) {
	t.Helper()
	e := sim.NewEngine()
	return e, New(e, topology.DualBroadwell())
}

func TestFabricPipesExist(t *testing.T) {
	_, f := newFabric(t)
	if f.Nodes() != 2 {
		t.Fatalf("nodes = %d", f.Nodes())
	}
	p01 := f.Pipe(0, 1)
	p10 := f.Pipe(1, 0)
	if p01 == p10 {
		t.Fatal("directions must be independent pipes")
	}
	if p01.Capacity() != 38.4e9 {
		t.Fatalf("capacity = %v, want 38.4 GB/s", p01.Capacity())
	}
}

func TestFabricSelfPipePanics(t *testing.T) {
	_, f := newFabric(t)
	defer func() {
		if recover() == nil {
			t.Error("Pipe(0,0) should panic")
		}
	}()
	f.Pipe(0, 0)
}

func TestChargeLocalIsFree(t *testing.T) {
	_, f := newFabric(t)
	if lat := f.Charge(1, 1, 4096); lat != 0 {
		t.Fatalf("local charge latency = %v, want 0", lat)
	}
	if f.TotalBytes() != 0 {
		t.Fatal("local charge should not move fabric bytes")
	}
}

func TestChargeRemoteCostsAndAccounts(t *testing.T) {
	_, f := newFabric(t)
	lat := f.Charge(0, 1, 64)
	if lat < 60*sim.Nanosecond {
		t.Fatalf("remote latency = %v, want >= base 60ns", lat)
	}
	if f.TotalBytes() != 64 {
		t.Fatalf("fabric bytes = %v, want 64", f.TotalBytes())
	}
	// Direction independence: 1->0 pipe untouched.
	if f.Pipe(1, 0).DiscreteBytes() != 0 {
		t.Fatal("reverse direction should be untouched")
	}
}

func TestFluidCongestionInflatesLatency(t *testing.T) {
	_, f := newFabric(t)
	idle := f.Latency(0, 1, 64)
	f.AddFlow("stream", 0, 1, 37e9) // ~96% of 38.4 GB/s
	loaded := f.Latency(0, 1, 64)
	if loaded < 2*idle {
		t.Fatalf("congestion should inflate latency: idle=%v loaded=%v", idle, loaded)
	}
}

func TestFluidFlowsShareLink(t *testing.T) {
	_, f := newFabric(t)
	f1 := f.AddFlow("a", 0, 1, 30e9)
	f2 := f.AddFlow("b", 0, 1, 30e9)
	want := 38.4e9 / 2
	if math.Abs(f1.Rate()-want) > 1e8 || math.Abs(f2.Rate()-want) > 1e8 {
		t.Fatalf("rates = %v, %v; want %v", f1.Rate(), f2.Rate(), want)
	}
	// Opposite direction unaffected.
	if u := f.Utilization(1, 0); u != 0 {
		t.Fatalf("reverse utilization = %v, want 0", u)
	}
}

func TestTransferCompletion(t *testing.T) {
	e, f := newFabric(t)
	var done sim.Time
	f.Transfer(0, 1, 38400, func() { done = e.Now() }) // 38400 B at 38.4 GB/s = 1us + 60ns
	e.RunUntilIdle()
	want := sim.Time(1060)
	if done != want {
		t.Fatalf("done = %v, want %v", done, want)
	}
}

func TestTransferLocalImmediate(t *testing.T) {
	e, f := newFabric(t)
	var done sim.Time = -1
	f.Transfer(1, 1, 1<<20, func() { done = e.Now() })
	e.RunUntilIdle()
	if done != 0 {
		t.Fatalf("local transfer done = %v, want 0", done)
	}
}

func TestQuadFabricFullMesh(t *testing.T) {
	e := sim.NewEngine()
	f := New(e, topology.QuadSocket(12))
	count := 0
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			if f.Pipe(topology.NodeID(i), topology.NodeID(j)) == nil {
				t.Fatalf("missing pipe %d->%d", i, j)
			}
			count++
		}
	}
	if count != 12 {
		t.Fatalf("pipes = %d, want 12", count)
	}
}

func TestResetStats(t *testing.T) {
	_, f := newFabric(t)
	f.Charge(0, 1, 1000)
	f.ResetStats()
	if f.TotalBytes() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}
