package interconnect

import (
	"fmt"

	"ioctopus/internal/metrics"
)

// RegisterMetrics wires every directional link's pipe into a registry
// under "link<i>to<j>" — the traffic Figures 11, 12 and 15 measure.
// Registration runs in canonical link order so registry contents are a
// pure function of the wiring, not of map iteration.
func (f *Fabric) RegisterMetrics(r metrics.Registrar) {
	for _, key := range f.sortedLinks() {
		metrics.RegisterPipe(r.Scope(fmt.Sprintf("link%dto%d", key[0], key[1])), f.pipes[key])
	}
}
