package interconnect

import (
	"fmt"

	"ioctopus/internal/metrics"
)

// RegisterMetrics wires every directional link's pipe into a registry
// under "link<i>to<j>" — the traffic Figures 11, 12 and 15 measure.
func (f *Fabric) RegisterMetrics(r metrics.Registrar) {
	for key, p := range f.pipes {
		metrics.RegisterPipe(r.Scope(fmt.Sprintf("link%dto%d", key[0], key[1])), p)
	}
}
