// Package scenario is the declarative experiment layer: a validated,
// seed-deterministic Spec — topology, NIC mode and wiring, workload
// mix, fault schedule, and the checks that judge the run — that the
// generic runner turns into a full cluster simulation. A scenario is
// data (a Go literal or a JSON file), not a new hand-wired figN.go
// runner: the same machinery that replays the chaos harness replays a
// JSON file from disk or a spec drawn by the seeded generator
// (Generate), which is what gives the repo property-based "simulation
// fuzzing" of the steering/failover invariants.
//
// Determinism contract: a Spec is a pure function from (spec, seed,
// durations) to rendered output. Marshal → unmarshal → run is
// byte-identical to running the Go literal, and the builtin fig2 and
// chaos specs are byte-identical to their hand-wired runners in
// internal/experiments (pinned by tests and scripts/check.sh).
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/faults"
	"ioctopus/internal/pcie"
	"ioctopus/internal/topology"
)

// Spec is one complete scenario. Exactly one of Trend or Sim describes
// the body: Trend scenarios evaluate a static dataset (Figure 2's
// technology trend), Sim scenarios assemble and drive a cluster.
type Spec struct {
	// Name is the scenario id (the Result ID and the -scenario name).
	Name string `json:"name"`
	// Title is the Result title line.
	Title string `json:"title"`
	// Seed drives the cluster RNG and the fault plan's loss streams;
	// the whole run is a pure function of it.
	Seed int64 `json:"seed"`

	Trend *TrendSpec `json:"trend,omitempty"`
	Sim   *SimSpec   `json:"sim,omitempty"`
}

// TrendRow is one year of a trend dataset.
type TrendRow struct {
	Year          int     `json:"year"`
	Ethernet      string  `json:"ethernet"`
	SinglePortGbs float64 `json:"single_port_gbs"`
	DualPortGbs   float64 `json:"dual_port_gbs"`
	MaxCores      int     `json:"max_cores"`
}

// TrendSpec evaluates a NIC-vs-CPU bandwidth dataset: the table, the
// "single port always exceeds the cloud per-CPU bound" check and the
// "dual port covers the aggressive bound in most years" check.
type TrendSpec struct {
	TableTitle          string     `json:"table_title"`
	Rows                []TrendRow `json:"rows"`
	CloudPerCoreGbs     float64    `json:"cloud_per_core_gbs"`
	BareMetalPerCoreGbs float64    `json:"bare_metal_per_core_gbs"`
	// Check names/details; the pass detail of the first check is static
	// text, the second check's detail is computed ("%d of %d years").
	SingleExceedsCloudName   string   `json:"single_exceeds_cloud_name"`
	SingleExceedsCloudDetail string   `json:"single_exceeds_cloud_detail"`
	DualCoversAggressiveName string   `json:"dual_covers_aggressive_name"`
	Notes                    []string `json:"notes,omitempty"`
}

// MachineSpec names a host: a preset by name, or a custom build with
// explicit socket/core counts (Broadwell-class per-socket template).
type MachineSpec struct {
	Preset         string `json:"preset,omitempty"`
	Sockets        int    `json:"sockets,omitempty"`
	CoresPerSocket int    `json:"cores_per_socket,omitempty"`
}

// TopoSpec is the two-machine testbed shape.
type TopoSpec struct {
	Server MachineSpec `json:"server"`
	Client MachineSpec `json:"client"`
}

// RetxSpec enables the netstack retransmission timer.
type RetxSpec struct {
	Timeout  time.Duration `json:"timeout_ns"`
	MaxTries int           `json:"max_tries"`
}

// WatchdogSpec arms the server drivers' self-healing watchdog (the
// staged recovery ladder of internal/driver/watchdog.go). Interval is
// the tick period; Ticks is how many consecutive no-progress samples
// declare a queue stuck (0 = the driver default of 2); Backoff is the
// post-action grace period (0 = 2×Interval, doubling per ladder
// stage). Durations are absolute, like RetxSpec, because recovery
// cadence is device physics, not a fraction of the run.
type WatchdogSpec struct {
	Interval time.Duration `json:"interval_ns"`
	Ticks    int           `json:"ticks,omitempty"`
	Backoff  time.Duration `json:"backoff_ns,omitempty"`
}

// WorkloadSpec is one element of the workload mix, kind-discriminated:
//
//   - "stream": a raw TCP byte stream with explicit sink/source thread
//     placement (the chaos harness shape); the runner tracks sent and
//     delivered bytes per stream for conservation checks.
//   - "netperf": workloads.StartStream TCP_STREAM instances.
//   - "memcached": workloads.StartMemcached + memslap clients.
type WorkloadSpec struct {
	Kind string `json:"kind"`

	// stream
	FromServer  bool   `json:"from_server,omitempty"` // server transmits
	Port        uint16 `json:"port,omitempty"`
	MsgSize     int64  `json:"msg_size,omitempty"`
	SinkName    string `json:"sink_name,omitempty"`
	SrcName     string `json:"src_name,omitempty"`
	SinkNode    int    `json:"sink_node,omitempty"`
	SinkCoreIdx int    `json:"sink_core_idx,omitempty"`
	SrcNode     int    `json:"src_node,omitempty"`
	SrcCoreIdx  int    `json:"src_core_idx,omitempty"`

	// netperf
	Direction string `json:"direction,omitempty"` // "rx" | "tx"
	Instances int    `json:"instances,omitempty"`

	// memcached
	ServerNode int           `json:"server_node,omitempty"`
	Clients    int           `json:"clients,omitempty"`
	KeySize    int64         `json:"key_size,omitempty"`
	ValueSize  int64         `json:"value_size,omitempty"`
	SetRatio   float64       `json:"set_ratio,omitempty"`
	OpCost     time.Duration `json:"op_cost_ns,omitempty"`
	Pipeline   int           `json:"pipeline,omitempty"`
}

// FaultSpec is one scheduled fault, offsets expressed as integer
// percent of the run timeline so one spec scales from -quick to full
// windows; Dur is the absolute alternative for sub-window faults (a
// 1 ms core stall). Kind and Dir use the faults package's String names.
type FaultSpec struct {
	Kind   string        `json:"kind"`
	AtPct  int           `json:"at_pct"`
	DurPct int           `json:"dur_pct,omitempty"`
	Dur    time.Duration `json:"dur_ns,omitempty"`

	PF        int     `json:"pf,omitempty"`
	Prob      float64 `json:"prob,omitempty"`
	Dir       string  `json:"dir,omitempty"` // "client-to-server" | "server-to-client"
	From      int     `json:"from,omitempty"`
	To        int     `json:"to,omitempty"`
	BWFactor  float64 `json:"bw_factor,omitempty"`
	LatFactor float64 `json:"lat_factor,omitempty"`
	Core      int     `json:"core,omitempty"`
	// Queue names the per-PF queue index of a queue-stall; Node names
	// the server node whose busy-poll loop a poller-stall wedges.
	Queue int `json:"queue,omitempty"`
	Node  int `json:"node,omitempty"`
}

// SampleSpec tracks one rate series over the run. Sources:
// "workload:<i>" (delivered bytes of a forward stream workload) and
// "pf:<n>" (server PF n receive bytes). Both live on the server's
// engine shard, so sampling them is shard-safe.
type SampleSpec struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// WindowSpec is one measurement window, percent of the timeline,
// half-open [FromPct, ToPct). The windowed rate is the server NIC's
// aggregate receive bandwidth; every window is reported against the
// first ("vs pre").
type WindowSpec struct {
	Name    string `json:"name"`
	FromPct int    `json:"from_pct"`
	ToPct   int    `json:"to_pct"`
}

// CounterSpec is one row of the counter table. Sources: the fault
// injector ("faults/link_transitions", "faults/wire_drops"), the
// server NIC ("nic/pf<i>/link_drops", "nic/link_drops"), the octo
// driver ("driver/failovers", "driver/failbacks", "driver/reposted"),
// and the retransmission layer ("stack/retx" both hosts,
// "server/stack/dup", "stack/abandoned" both hosts).
type CounterSpec struct {
	Label  string `json:"label"`
	Source string `json:"source"`
}

// RecoverySpec derives the dip-depth and recovery-time notes from a
// sampled series: the deepest sample inside (FaultFromPct, FaultToPct)
// and the first sample at/after RecoverAfterPct back above Threshold of
// the first window's rate.
type RecoverySpec struct {
	Sample          int     `json:"sample"`
	FaultFromPct    int     `json:"fault_from_pct"`
	FaultToPct      int     `json:"fault_to_pct"`
	RecoverAfterPct int     `json:"recover_after_pct"`
	Threshold       float64 `json:"threshold"`
}

// CheckSpec is one declarative invariant. Kinds:
//
//   - "wire-drops-positive": the fault plan actually killed frames.
//   - "failover-and-back": the octo driver failed over and failed back.
//   - "reposted": stranded Tx descriptors were re-posted (>= Min).
//   - "retx-recovered": segments were retransmitted (>= Min).
//   - "no-abandoned": the retransmission layer abandoned nothing.
//   - "stream-conserved": stream workload Workload's sent-received gap
//     is within the in-flight bound (SendWindow + RxBufBytes).
//   - "progress": workload Workload delivered bytes / completed
//     transactions (> 0).
//   - "window-ratio": windows[Window] over windows[0] within [Lo, Hi].
//   - "no-errors": no workload goroutine recorded a failure.
//   - "fw-recovered": a firmware reset was observed and the journaled
//     steering rules were replayed (needs a fw-reset fault).
//   - "queue-recovered": no completion is still stranded device-side at
//     the end of the run; Min > 0 additionally requires that many
//     watchdog queue resets (needs a queue-stall fault).
//   - "poller-fallback-and-back": a wedged poll loop degraded to
//     interrupt mode and re-entered polling (needs the busypoll
//     datapath, the watchdog, and a poller-stall fault).
type CheckSpec struct {
	Kind     string  `json:"kind"`
	Name     string  `json:"name"`
	Workload int     `json:"workload,omitempty"`
	Window   int     `json:"window,omitempty"`
	Lo       float64 `json:"lo,omitempty"`
	Hi       float64 `json:"hi,omitempty"`
	Min      uint64  `json:"min,omitempty"`
}

// SimSpec is a cluster scenario: what to build, what to run on it,
// what to break, what to measure, and what must hold.
type SimSpec struct {
	Topology TopoSpec `json:"topology"`
	Mode     string   `json:"mode"`             // "standard" | "ioctopus"
	Wiring   string   `json:"wiring,omitempty"` // "" = bifurcated
	EnableSG bool     `json:"enable_sg,omitempty"`
	// Datapath selects the server's completion delivery: "" or
	// "interrupt" (the NAPI default), "busypoll" (dedicated poll-mode
	// cores, which needs a spare core per server node), or "hybrid"
	// (adaptive polling).
	Datapath string `json:"datapath,omitempty"`

	Retx *RetxSpec `json:"retx,omitempty"`
	// Watchdog arms the driver self-healing ladder; nil keeps the
	// zero-cost default (no timer armed, no watchdog state).
	Watchdog *WatchdogSpec `json:"watchdog,omitempty"`

	Workloads []WorkloadSpec `json:"workloads"`
	Faults    []FaultSpec    `json:"faults,omitempty"`

	Samples      []SampleSpec  `json:"samples,omitempty"`
	Windows      []WindowSpec  `json:"windows,omitempty"`
	WindowTable  string        `json:"window_table,omitempty"`
	Counters     []CounterSpec `json:"counters,omitempty"`
	CounterTable string        `json:"counter_table,omitempty"`
	Recovery     *RecoverySpec `json:"recovery,omitempty"`
	Checks       []CheckSpec   `json:"checks,omitempty"`
	Notes        []string      `json:"notes,omitempty"`
}

// parseMode maps the spec's mode string.
func parseMode(s string) (core.NICMode, error) {
	switch s {
	case "standard":
		return core.ModeStandard, nil
	case "ioctopus":
		return core.ModeIOctopus, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want standard or ioctopus)", s)
	}
}

// parseWiring maps the spec's wiring string; "" keeps the default.
func parseWiring(s string) (pcie.Wiring, error) {
	switch s {
	case "", "bifurcated":
		return pcie.WiringBifurcated, nil
	case "extender":
		return pcie.WiringExtender, nil
	case "riser":
		return pcie.WiringRiser, nil
	case "switch":
		return pcie.WiringSwitch, nil
	default:
		return 0, fmt.Errorf("unknown wiring %q", s)
	}
}

// parseFaultKind maps a FaultSpec kind string to the faults package.
func parseFaultKind(s string) (faults.Kind, error) {
	for k := faults.LinkDown; k <= faults.PollerStall; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown fault kind %q", s)
}

// parseDir maps a wire direction string.
func parseDir(s string) (faults.Dir, error) {
	switch s {
	case "client-to-server":
		return faults.ClientToServer, nil
	case "server-to-client":
		return faults.ServerToClient, nil
	default:
		return 0, fmt.Errorf("unknown wire direction %q (want client-to-server or server-to-client)", s)
	}
}

// build constructs the machine a MachineSpec describes. Custom builds
// use the Broadwell per-socket template so generated topologies vary in
// shape (sockets × cores) without varying the memory calibration.
func (m MachineSpec) build() (*topology.Server, error) {
	switch m.Preset {
	case "dual-broadwell":
		return topology.DualBroadwell(), nil
	case "dual-skylake":
		return topology.DualSkylake(), nil
	case "":
		ic := topology.InterconnectSpec{}
		if m.Sockets > 1 {
			ic = topology.DualBroadwell().Interconnect
		}
		ref := topology.DualBroadwell().Sockets[0]
		return topology.Build(
			fmt.Sprintf("custom-%dx%d", m.Sockets, m.CoresPerSocket),
			m.Sockets, m.CoresPerSocket, 2.0, ref.LLC, ref.DRAM, ic), nil
	default:
		return nil, fmt.Errorf("unknown topology preset %q", m.Preset)
	}
}

// validateMachine rejects unbuildable machines before build() panics.
func (m MachineSpec) validate(host string) error {
	switch m.Preset {
	case "dual-broadwell", "dual-skylake":
		return nil
	case "":
		if m.Sockets < 1 || m.Sockets > 4 {
			return fmt.Errorf("%s: sockets %d out of [1,4]", host, m.Sockets)
		}
		if m.CoresPerSocket < 1 || m.CoresPerSocket > 64 {
			return fmt.Errorf("%s: cores per socket %d out of [1,64]", host, m.CoresPerSocket)
		}
		return nil
	default:
		return fmt.Errorf("%s: unknown topology preset %q", host, m.Preset)
	}
}

// sourceWorkload parses "workload:<i>" sample sources; returns -1 for
// other shapes.
func parseSource(src, prefix string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(src, prefix+":%d", &n); err == nil {
		return n, true
	}
	return -1, false
}

// Validate rejects malformed specs with an error naming the field, so
// a bad JSON file (or a generator bug) fails before a cluster is ever
// assembled. It builds the topologies to range-check core and PF
// references, and replays the fault schedule through
// faults.(*Plan).ValidateSchedule to reject windows racing for the
// same state.
func (sp *Spec) Validate() error {
	if sp.Name == "" || strings.ContainsAny(sp.Name, " \t\n") {
		return fmt.Errorf("scenario: name %q must be non-empty without whitespace", sp.Name)
	}
	if (sp.Trend == nil) == (sp.Sim == nil) {
		return fmt.Errorf("scenario %s: exactly one of trend or sim must be set", sp.Name)
	}
	if sp.Trend != nil {
		return sp.validateTrend()
	}
	return sp.validateSim()
}

func (sp *Spec) validateTrend() error {
	tr := sp.Trend
	if len(tr.Rows) == 0 {
		return fmt.Errorf("scenario %s: trend needs at least one row", sp.Name)
	}
	if tr.CloudPerCoreGbs <= 0 || tr.BareMetalPerCoreGbs <= 0 {
		return fmt.Errorf("scenario %s: trend per-core bounds must be positive", sp.Name)
	}
	return nil
}

func (sp *Spec) validateSim() error {
	sim := sp.Sim
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %s: %s", sp.Name, fmt.Sprintf(format, args...))
	}
	if _, err := parseMode(sim.Mode); err != nil {
		return fail("%v", err)
	}
	if _, err := parseWiring(sim.Wiring); err != nil {
		return fail("%v", err)
	}
	if err := sim.Topology.Server.validate("server topology"); err != nil {
		return fail("%v", err)
	}
	if err := sim.Topology.Client.validate("client topology"); err != nil {
		return fail("%v", err)
	}
	server, err := sim.Topology.Server.build()
	if err != nil {
		return fail("%v", err)
	}
	client, err := sim.Topology.Client.build()
	if err != nil {
		return fail("%v", err)
	}
	serverPFs := server.NumNodes() // one PF per socket of the bifurcated card

	dp, err := core.ParseDatapath(sim.Datapath)
	if err != nil {
		return fail("%v", err)
	}
	if dp == core.DatapathBusyPoll {
		// The poll loop owns the last core of every server node; a
		// one-core node would leave nothing for workload threads.
		for n := 0; n < server.NumNodes(); n++ {
			if len(server.CoresOn(topology.NodeID(n))) < 2 {
				return fail("datapath busypoll needs >= 2 cores per server node (node %d has %d)",
					n, len(server.CoresOn(topology.NodeID(n))))
			}
		}
	}

	if sim.Retx != nil && (sim.Retx.Timeout <= 0 || sim.Retx.MaxTries < 1) {
		return fail("retx needs a positive timeout and at least one try")
	}
	if sim.Watchdog != nil {
		if sim.Watchdog.Interval <= 0 {
			return fail("watchdog needs a positive interval")
		}
		if sim.Watchdog.Ticks < 0 || sim.Watchdog.Backoff < 0 {
			return fail("watchdog ticks and backoff must be non-negative")
		}
	}

	if len(sim.Workloads) == 0 {
		return fail("sim needs at least one workload")
	}
	coreOK := func(t *topology.Server, node, idx int) bool {
		return node >= 0 && node < t.NumNodes() && idx >= 0 && idx < len(t.CoresOn(topology.NodeID(node)))
	}
	ports := map[uint16]int{}
	for i, w := range sim.Workloads {
		switch w.Kind {
		case "stream":
			if w.Port == 0 || w.MsgSize <= 0 {
				return fail("workload %d (stream): needs a port and a positive msg size", i)
			}
			if w.SinkName == "" || w.SrcName == "" {
				return fail("workload %d (stream): needs sink and source thread names", i)
			}
			sinkHost, srcHost := server, client
			if w.FromServer {
				sinkHost, srcHost = client, server
			}
			if !coreOK(sinkHost, w.SinkNode, w.SinkCoreIdx) {
				return fail("workload %d (stream): sink core node %d idx %d outside the host", i, w.SinkNode, w.SinkCoreIdx)
			}
			if !coreOK(srcHost, w.SrcNode, w.SrcCoreIdx) {
				return fail("workload %d (stream): source core node %d idx %d outside the host", i, w.SrcNode, w.SrcCoreIdx)
			}
		case "netperf":
			if w.Port == 0 || w.MsgSize <= 0 {
				return fail("workload %d (netperf): needs a port and a positive msg size", i)
			}
			if w.Direction != "rx" && w.Direction != "tx" {
				return fail("workload %d (netperf): direction %q (want rx or tx)", i, w.Direction)
			}
			if w.Instances < 1 {
				return fail("workload %d (netperf): needs at least one instance", i)
			}
			if w.ServerNode < 0 || w.ServerNode >= server.NumNodes() {
				return fail("workload %d (netperf): server node %d outside the host", i, w.ServerNode)
			}
			if w.Instances > len(server.CoresOn(topology.NodeID(w.ServerNode))) ||
				w.Instances > len(client.CoresOn(0)) {
				return fail("workload %d (netperf): %d instances exceed the per-node core pool", i, w.Instances)
			}
		case "memcached":
			if w.Port == 0 {
				return fail("workload %d (memcached): needs a port", i)
			}
			if w.ServerNode < 0 || w.ServerNode >= server.NumNodes() {
				return fail("workload %d (memcached): server node %d outside the host", i, w.ServerNode)
			}
			if w.Clients < 1 || w.Clients > len(client.CoresOn(0)) {
				return fail("workload %d (memcached): %d clients outside the client's node-0 pool", i, w.Clients)
			}
			if w.KeySize <= 0 || w.ValueSize <= 0 || w.Pipeline < 1 {
				return fail("workload %d (memcached): needs positive key/value sizes and pipeline", i)
			}
			if w.SetRatio < 0 || w.SetRatio > 1 {
				return fail("workload %d (memcached): set ratio %v out of [0,1]", i, w.SetRatio)
			}
		default:
			return fail("workload %d: unknown kind %q", i, w.Kind)
		}
		if w.Port != 0 {
			if prev, dup := ports[w.Port]; dup {
				return fail("workloads %d and %d share port %d", prev, i, w.Port)
			}
			ports[w.Port] = i
		}
	}

	for i, f := range sim.Faults {
		k, err := parseFaultKind(f.Kind)
		if err != nil {
			return fail("fault %d: %v", i, err)
		}
		if f.AtPct < 0 || f.AtPct > 100 {
			return fail("fault %d (%s): at %d%% outside the timeline", i, f.Kind, f.AtPct)
		}
		if f.DurPct < 0 || f.AtPct+f.DurPct > 100 {
			return fail("fault %d (%s): window [%d%%,%d%%] outside the timeline", i, f.Kind, f.AtPct, f.AtPct+f.DurPct)
		}
		switch k {
		case faults.LinkDown, faults.LinkUp, faults.LinkFlap:
			if f.PF < 0 || f.PF >= serverPFs {
				return fail("fault %d (%s): server has no PF %d", i, f.Kind, f.PF)
			}
		case faults.Loss, faults.Burst, faults.Corrupt:
			if _, err := parseDir(f.Dir); err != nil {
				return fail("fault %d (%s): %v", i, f.Kind, err)
			}
			if f.Prob < 0 || f.Prob > 1 {
				return fail("fault %d (%s): probability %v out of [0,1]", i, f.Kind, f.Prob)
			}
		case faults.Degrade:
			if f.From == f.To || f.From < 0 || f.To < 0 || f.From >= server.NumNodes() || f.To >= server.NumNodes() {
				return fail("fault %d (degrade): link %d->%d is not a server fabric link", i, f.From, f.To)
			}
			if f.BWFactor <= 0 || f.LatFactor <= 0 {
				return fail("fault %d (degrade): factors must be positive", i)
			}
		case faults.Stall:
			if f.Core < 0 || f.Core >= server.NumCores() {
				return fail("fault %d (stall): server has no core %d", i, f.Core)
			}
		case faults.FirmwareReset:
			// Any cabled server NIC can take a firmware reset; nothing to
			// range-check.
		case faults.QueueStall:
			if f.PF < 0 || f.PF >= serverPFs {
				return fail("fault %d (queue-stall): server has no PF %d", i, f.PF)
			}
			// Per-PF queue counts are a driver-layout fact: the standard
			// driver gives its PF one queue pair per machine core, the octo
			// driver gives each PF one pair per core of its own node.
			queues := server.NumCores()
			if sim.Mode == "ioctopus" {
				queues = len(server.CoresOn(topology.NodeID(f.PF)))
			}
			if f.Queue < 0 || f.Queue >= queues {
				return fail("fault %d (queue-stall): PF %d has queues 0..%d in %s mode, not %d",
					i, f.PF, queues-1, sim.Mode, f.Queue)
			}
			if f.DurPct <= 0 && f.Dur <= 0 {
				return fail("fault %d (queue-stall): needs a positive duration (the stall is a window)", i)
			}
		case faults.PollerStall:
			if dp != core.DatapathBusyPoll {
				return fail("fault %d (poller-stall): datapath %q runs no dedicated poll loops (only busypoll does; interrupt and hybrid deliver completions via NAPI)",
					i, sim.Datapath)
			}
			if f.Node < 0 || f.Node >= server.NumNodes() {
				return fail("fault %d (poller-stall): server has no node %d", i, f.Node)
			}
			if f.DurPct <= 0 && f.Dur <= 0 {
				return fail("fault %d (poller-stall): needs a positive duration (the wedge is a window)", i)
			}
		}
	}
	// Structural schedule checks (overlapping windows racing for one
	// piece of state) on a nominal timeline; the authoritative re-check
	// with real durations happens when the plan is armed.
	if plan := sim.faultPlan(sp.Seed, 100*time.Second); plan != nil {
		if err := plan.ValidateSchedule(); err != nil {
			return fail("%v", err)
		}
	}

	streamFwd := func(i int) bool {
		return i >= 0 && i < len(sim.Workloads) &&
			sim.Workloads[i].Kind == "stream" && !sim.Workloads[i].FromServer
	}
	for i, s := range sim.Samples {
		if s.Name == "" {
			return fail("sample %d: needs a name", i)
		}
		if n, ok := parseSource(s.Source, "workload"); ok {
			if !streamFwd(n) {
				return fail("sample %d: source %q must name a forward stream workload (server-side state)", i, s.Source)
			}
			continue
		}
		if n, ok := parseSource(s.Source, "pf"); ok {
			if n < 0 || n >= serverPFs {
				return fail("sample %d: server has no PF %d", i, n)
			}
			continue
		}
		return fail("sample %d: unknown source %q", i, s.Source)
	}

	prevEnd := 0
	for i, w := range sim.Windows {
		if w.FromPct < 0 || w.ToPct > 100 || w.FromPct >= w.ToPct {
			return fail("window %d (%s): [%d%%,%d%%) is not a window", i, w.Name, w.FromPct, w.ToPct)
		}
		if w.FromPct < prevEnd {
			return fail("window %d (%s): overlaps or precedes the previous window", i, w.Name)
		}
		prevEnd = w.ToPct
	}

	octo := sim.Mode == "ioctopus"
	hasFault := func(kind string) bool {
		for _, f := range sim.Faults {
			if f.Kind == kind {
				return true
			}
		}
		return false
	}
	for i, c := range sim.Counters {
		if err := validateCounterSource(c.Source, serverPFs, octo, sim.Watchdog != nil); err != nil {
			return fail("counter %d (%s): %v", i, c.Label, err)
		}
	}
	if sim.Recovery != nil {
		r := sim.Recovery
		if len(sim.Windows) == 0 || len(sim.Samples) == 0 {
			return fail("recovery needs at least one window and one sample")
		}
		if r.Sample < 0 || r.Sample >= len(sim.Samples) {
			return fail("recovery: no sample %d", r.Sample)
		}
		if r.Threshold <= 0 || r.Threshold > 1 {
			return fail("recovery: threshold %v out of (0,1]", r.Threshold)
		}
	}
	for i, c := range sim.Checks {
		if c.Name == "" {
			return fail("check %d: needs a name", i)
		}
		switch c.Kind {
		case "wire-drops-positive", "no-abandoned", "retx-recovered", "no-errors":
		case "failover-and-back", "reposted":
			if !octo {
				return fail("check %d (%s): needs the ioctopus driver", i, c.Kind)
			}
		case "stream-conserved":
			if c.Workload < 0 || c.Workload >= len(sim.Workloads) || sim.Workloads[c.Workload].Kind != "stream" {
				return fail("check %d (stream-conserved): workload %d is not a stream", i, c.Workload)
			}
		case "progress":
			if c.Workload < 0 || c.Workload >= len(sim.Workloads) {
				return fail("check %d (progress): no workload %d", i, c.Workload)
			}
		case "window-ratio":
			if c.Window < 0 || c.Window >= len(sim.Windows) {
				return fail("check %d (window-ratio): no window %d", i, c.Window)
			}
			if c.Lo > c.Hi {
				return fail("check %d (window-ratio): bounds [%v,%v] inverted", i, c.Lo, c.Hi)
			}
		case "fw-recovered":
			if !hasFault("fw-reset") {
				return fail("check %d (fw-recovered): no fw-reset fault in the schedule", i)
			}
		case "queue-recovered":
			if !hasFault("queue-stall") {
				return fail("check %d (queue-recovered): no queue-stall fault in the schedule", i)
			}
			if c.Min > 0 && sim.Watchdog == nil {
				return fail("check %d (queue-recovered): min %d queue resets needs the watchdog armed", i, c.Min)
			}
		case "poller-fallback-and-back":
			if sim.Datapath != "busypoll" {
				return fail("check %d (poller-fallback-and-back): needs the busypoll datapath", i)
			}
			if sim.Watchdog == nil {
				return fail("check %d (poller-fallback-and-back): needs the watchdog armed (nothing else notices a wedged poll loop)", i)
			}
			if !hasFault("poller-stall") {
				return fail("check %d (poller-fallback-and-back): no poller-stall fault in the schedule", i)
			}
		default:
			return fail("check %d: unknown kind %q", i, c.Kind)
		}
	}
	return nil
}

// validateCounterSource vets one counter-table source string.
func validateCounterSource(src string, serverPFs int, octo, watchdog bool) error {
	switch src {
	case "faults/link_transitions", "faults/wire_drops", "nic/link_drops",
		"stack/retx", "server/stack/dup", "stack/abandoned",
		"nic/fw_resets", "driver/fw_resets", "driver/rules_replayed":
		return nil
	case "driver/failovers", "driver/failbacks", "driver/reposted",
		"driver/parked_overflow", "driver/concurrent_ignored":
		if !octo {
			return fmt.Errorf("source %q needs the ioctopus driver", src)
		}
		return nil
	case "watchdog/queue_resets", "watchdog/fw_reprograms", "watchdog/pf_dead",
		"watchdog/poller_fallbacks", "watchdog/poller_reenters":
		if !watchdog {
			return fmt.Errorf("source %q needs the watchdog armed", src)
		}
		return nil
	}
	if n, ok := parseSource(src, "nic/pf"); ok && strings.HasSuffix(src, "/link_drops") {
		_ = n
	}
	var pf int
	if _, err := fmt.Sscanf(src, "nic/pf%d/link_drops", &pf); err == nil {
		if pf < 0 || pf >= serverPFs {
			return fmt.Errorf("server has no PF %d", pf)
		}
		return nil
	}
	return fmt.Errorf("unknown source %q", src)
}

// faultPlan converts the percent-based schedule to an absolute
// faults.Plan over the given timeline. Nil when the spec has no
// faults, so a fault-free scenario keeps the cluster's zero-cost
// no-fault hooks.
func (sim *SimSpec) faultPlan(seed int64, T time.Duration) *faults.Plan {
	if len(sim.Faults) == 0 {
		return nil
	}
	frac := func(pct int) time.Duration { return T * time.Duration(pct) / 100 }
	plan := &faults.Plan{Seed: seed}
	for _, f := range sim.Faults {
		k, err := parseFaultKind(f.Kind)
		if err != nil {
			continue // Validate already rejected it
		}
		ev := faults.Event{
			At:   frac(f.AtPct),
			Kind: k,
			PF:   f.PF,
			Prob: f.Prob,
			From: topology.NodeID(f.From), To: topology.NodeID(f.To),
			BWFactor: f.BWFactor, LatFactor: f.LatFactor,
			Core:  topology.CoreID(f.Core),
			Queue: f.Queue,
			Node:  topology.NodeID(f.Node),
		}
		if f.Dir != "" {
			if d, err := parseDir(f.Dir); err == nil {
				ev.Dir = d
			}
		}
		if f.DurPct > 0 {
			ev.Duration = frac(f.DurPct)
		} else {
			ev.Duration = f.Dur
		}
		plan.Events = append(plan.Events, ev)
	}
	return plan
}

// Marshal renders the spec as indented JSON (the on-disk form
// -scenario loads).
func (sp *Spec) Marshal() ([]byte, error) {
	return json.MarshalIndent(sp, "", "  ")
}

// Parse decodes and validates a JSON spec. Unknown fields are errors:
// a typo in a check name must not silently weaken a scenario.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Load resolves a -scenario argument: a builtin name, or a path to a
// JSON spec file.
func Load(nameOrPath string) (*Spec, error) {
	if sp, ok := builtins[nameOrPath]; ok {
		return sp(), nil
	}
	data, err := os.ReadFile(nameOrPath)
	if err != nil {
		return nil, fmt.Errorf("scenario: %q is neither a builtin (%s) nor a readable file: %w",
			nameOrPath, strings.Join(Builtins(), ", "), err)
	}
	return Parse(data)
}

// builtins are the named specs shipped with the repo: the declarative
// ports of the hand-wired runners they are byte-identity-pinned
// against.
var builtins = map[string]func() *Spec{
	"fig2":  Fig2,
	"chaos": Chaos,
}

// Builtins lists the builtin scenario names, sorted.
func Builtins() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Fig2 is the declarative port of the hand-wired fig2 runner: the §2.6
// technology-trend dataset as data. Running it is byte-identical to
// `ioctobench -fig fig2` (pinned by TestBuiltinsMatchHandWiredRunners
// and the scripts/check.sh scenario gate).
func Fig2() *Spec {
	return &Spec{
		Name:  "fig2",
		Title: "NIC vs CPU bandwidth trend, 2008-2020 (§2.6)",
		Trend: &TrendSpec{
			TableTitle: "Figure 2: throughput [Gb/s]",
			Rows: []TrendRow{
				{2008, "10GbE", 20, 40, 4},
				{2010, "10GbE", 20, 40, 8},
				{2012, "40GbE", 80, 160, 10},
				{2014, "100GbE", 200, 400, 12},
				{2016, "100GbE", 200, 400, 18},
				{2017, "100GbE", 200, 400, 24},
				{2018, "200GbE", 400, 800, 28},
				{2019, "200GbE", 400, 800, 32},
				{2020, "400GbE", 800, 1600, 48},
			},
			CloudPerCoreGbs:          0.513,
			BareMetalPerCoreGbs:      10.0,
			SingleExceedsCloudName:   "single-port NIC always exceeds measured cloud per-CPU demand",
			SingleExceedsCloudDetail: "NIC line above 513 Mb/s-per-core CPU line for every year",
			DualCoversAggressiveName: "dual-port NIC covers even the 10 Gb/s-per-core bound in most years",
			Notes: []string{
				"static dataset reconstructed from the figure's cited sources; no simulation involved",
			},
		},
	}
}

// Chaos is the declarative port of the hand-wired chaos harness
// (experiments/chaos.go): the same fault schedule, streams, windows,
// counters and checks as data. Running it is byte-identical to
// `ioctobench -fig chaos` at any durations and shard count.
func Chaos() *Spec {
	return &Spec{
		Name:  "chaos",
		Title: "fault injection: PF failover + retransmission under a seeded schedule",
		Seed:  42,
		Sim: &SimSpec{
			Topology: TopoSpec{
				Server: MachineSpec{Preset: "dual-broadwell"},
				Client: MachineSpec{Preset: "dual-broadwell"},
			},
			Mode: "ioctopus",
			Retx: &RetxSpec{Timeout: 2 * time.Millisecond, MaxTries: 12},
			Workloads: []WorkloadSpec{
				{
					Kind: "stream", Port: 7, MsgSize: 65536,
					SinkName: "netserver", SrcName: "netperf",
					SinkNode: 0, SinkCoreIdx: 0, SrcNode: 0, SrcCoreIdx: 0,
				},
				{
					Kind: "stream", FromServer: true, Port: 9, MsgSize: 65536,
					SinkName: "revsink", SrcName: "revsrc",
					SinkNode: 0, SinkCoreIdx: 1, SrcNode: 0, SrcCoreIdx: 1,
				},
			},
			Faults: []FaultSpec{
				{Kind: "link-flap", AtPct: 30, PF: 0, DurPct: 20},
				{Kind: "loss", AtPct: 55, Dir: "client-to-server", Prob: 0.02, DurPct: 10},
				{Kind: "burst", AtPct: 58, Dir: "server-to-client", DurPct: 2},
				{Kind: "stall", AtPct: 62, Core: 0, Dur: time.Millisecond},
				{Kind: "degrade", AtPct: 68, From: 0, To: 1, BWFactor: 0.5, LatFactor: 2, DurPct: 10},
			},
			Samples: []SampleSpec{
				{Name: "delivered Gb/s", Source: "workload:0"},
				{Name: "pf0 Gb/s", Source: "pf:0"},
				{Name: "pf1 Gb/s", Source: "pf:1"},
			},
			Windows: []WindowSpec{
				{Name: "pre-fault", FromPct: 10, ToPct: 30},
				{Name: "PF0 dead, failover", FromPct: 35, ToPct: 48},
				{Name: "recovered", FromPct: 80, ToPct: 100},
			},
			WindowTable: "chaos recovery summary",
			Counters: []CounterSpec{
				{Label: "faults: link transitions", Source: "faults/link_transitions"},
				{Label: "faults: frames dropped on wire", Source: "faults/wire_drops"},
				{Label: "nic: frames dropped at dead PF0", Source: "nic/pf0/link_drops"},
				{Label: "driver: failovers", Source: "driver/failovers"},
				{Label: "driver: failbacks", Source: "driver/failbacks"},
				{Label: "driver: descriptors reposted", Source: "driver/reposted"},
				{Label: "stack: segments retransmitted", Source: "stack/retx"},
				{Label: "stack: duplicate segments discarded", Source: "server/stack/dup"},
				{Label: "stack: segments abandoned", Source: "stack/abandoned"},
			},
			CounterTable: "fault and recovery counters",
			Recovery: &RecoverySpec{
				Sample: 0, FaultFromPct: 30, FaultToPct: 80,
				RecoverAfterPct: 50, Threshold: 0.95,
			},
			Checks: []CheckSpec{
				{Kind: "wire-drops-positive", Name: "faults actually dropped traffic"},
				{Kind: "failover-and-back", Name: "driver failed over and back"},
				{Kind: "reposted", Name: "driver reposted stranded Tx descriptors", Min: 1},
				{Kind: "retx-recovered", Name: "retransmission recovered lost segments", Min: 1},
				{Kind: "no-abandoned", Name: "no segment abandoned"},
				{Kind: "stream-conserved", Name: "zero end-to-end loss forward (gap <= in-flight bound)", Workload: 0},
				{Kind: "stream-conserved", Name: "zero end-to-end loss reverse (gap <= in-flight bound)", Workload: 1},
				{Kind: "window-ratio", Name: "throughput during failover (PF1 serving) vs pre", Window: 1, Lo: 0.95, Hi: 2.5},
				{Kind: "window-ratio", Name: "throughput after recovery vs pre", Window: 2, Lo: 0.95, Hi: 1.10},
			},
		},
	}
}
