package scenario_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"ioctopus/internal/experiments"
	"ioctopus/internal/scenario"
)

// chaosTestDurations matches the reduced timeline the experiments
// package's own determinism test uses: long enough for failover and
// retransmission to play out, short enough for CI.
func chaosTestDurations() experiments.Durations {
	return experiments.Durations{
		Timeline:    200 * time.Millisecond,
		SampleEvery: 5 * time.Millisecond,
	}
}

// TestBuiltinsMatchHandWiredRunners is the port's proof obligation: the
// declarative fig2 and chaos specs must render byte-identically to the
// hand-wired runners they replace.
func TestBuiltinsMatchHandWiredRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs take a few seconds")
	}
	for _, tc := range []struct {
		id string
		d  experiments.Durations
	}{
		{"fig2", experiments.Quick()},
		{"chaos", chaosTestDurations()},
	} {
		t.Run(tc.id, func(t *testing.T) {
			want, err := experiments.Run(tc.id, tc.d)
			if err != nil {
				t.Fatalf("hand-wired runner: %v", err)
			}
			sp, err := scenario.Load(tc.id)
			if err != nil {
				t.Fatalf("builtin spec: %v", err)
			}
			got, err := scenario.Run(sp, tc.d)
			if err != nil {
				t.Fatalf("scenario run: %v", err)
			}
			if got.Render() != want.Render() {
				t.Errorf("scenario output diverges from the hand-wired runner\n--- hand-wired ---\n%s\n--- scenario ---\n%s",
					want.Render(), got.Render())
			}
		})
	}
}

// TestJSONRoundTrip: marshal → unmarshal must reproduce the spec
// exactly, and running the round-tripped spec must render
// byte-identically to running the original Go literal.
func TestJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("round-trip runs a full chaos timeline")
	}
	for _, tc := range []struct {
		name string
		sp   *scenario.Spec
		d    experiments.Durations
	}{
		{"fig2", scenario.Fig2(), experiments.Quick()},
		{"chaos", scenario.Chaos(), chaosTestDurations()},
		{"generated", scenario.Generate(7), scenario.FuzzDurations()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data, err := tc.sp.Marshal()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			back, err := scenario.Parse(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if !reflect.DeepEqual(tc.sp, back) {
				t.Fatalf("round-tripped spec differs from the literal:\n%s", data)
			}
			a, err := scenario.Run(tc.sp, tc.d)
			if err != nil {
				t.Fatalf("literal run: %v", err)
			}
			b, err := scenario.Run(back, tc.d)
			if err != nil {
				t.Fatalf("round-trip run: %v", err)
			}
			if a.Render() != b.Render() {
				t.Error("round-tripped spec renders differently from the literal")
			}
		})
	}
}

// TestGenerateDeterministic: the generator is a pure function of its
// seed, and so is a full run of what it generates.
func TestGenerateDeterministic(t *testing.T) {
	if !reflect.DeepEqual(scenario.Generate(3), scenario.Generate(3)) {
		t.Fatal("Generate(3) differs between calls")
	}
	if reflect.DeepEqual(scenario.Generate(3), scenario.Generate(4)) {
		t.Fatal("different seeds produced identical specs")
	}
	if testing.Short() {
		t.Skip("double fuzz run takes a few seconds")
	}
	sp := scenario.Generate(3)
	a, err := scenario.Run(sp, scenario.FuzzDurations())
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	b, err := scenario.Run(scenario.Generate(3), scenario.FuzzDurations())
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if a.Render() != b.Render() {
		t.Fatal("same-seed fuzz runs are not byte-identical")
	}
}

// TestGenerateAlwaysValid sweeps seeds: every generated spec must pass
// the same validation gate a hand-written JSON file faces.
func TestGenerateAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		if err := scenario.Generate(seed).Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestFuzzInvariantsHold runs a handful of generated scenarios
// end-to-end and requires every declared invariant to pass — the
// in-process version of the check.sh fuzz gate.
func TestFuzzInvariantsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz runs take a few seconds")
	}
	for seed := int64(1); seed <= 4; seed++ {
		sp := scenario.Generate(seed)
		r, err := scenario.Run(sp, scenario.FuzzDurations())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !r.Passed() {
			t.Errorf("seed %d: invariant failed\n%s", seed, r.Render())
		}
	}
}

// TestValidateRejects spot-checks the validator's coverage: each
// mutation must be named in the error.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*scenario.Spec)
		want string
	}{
		{"bad mode", func(sp *scenario.Spec) { sp.Sim.Mode = "turbo" }, "unknown mode"},
		{"bad wiring", func(sp *scenario.Spec) { sp.Sim.Wiring = "duct-tape" }, "unknown wiring"},
		{"no workloads", func(sp *scenario.Spec) { sp.Sim.Workloads = nil }, "at least one workload"},
		{"bad fault kind", func(sp *scenario.Spec) { sp.Sim.Faults[0].Kind = "gremlin" }, "unknown fault kind"},
		{"fault past end", func(sp *scenario.Spec) { sp.Sim.Faults[0].AtPct = 95; sp.Sim.Faults[0].DurPct = 20 }, "outside the timeline"},
		{"bad pf", func(sp *scenario.Spec) { sp.Sim.Faults[0].PF = 9 }, "no PF 9"},
		{"overlapping windows", func(sp *scenario.Spec) {
			sp.Sim.Faults = append(sp.Sim.Faults, sp.Sim.Faults[1]) // second loss window on the same direction
		}, "overlapping"},
		{"sample names tx stream", func(sp *scenario.Spec) { sp.Sim.Samples[0].Source = "workload:1" }, "forward stream"},
		{"window order", func(sp *scenario.Spec) { sp.Sim.Windows[1].FromPct = 5 }, "overlaps or precedes"},
		{"check without window", func(sp *scenario.Spec) { sp.Sim.Checks[7].Window = 9 }, "no window 9"},
		{"duplicate port", func(sp *scenario.Spec) { sp.Sim.Workloads[1].Port = sp.Sim.Workloads[0].Port }, "share port"},
		{"bad datapath", func(sp *scenario.Spec) { sp.Sim.Datapath = "zero-copy" }, "unknown datapath"},
		{"busypoll needs spare cores", func(sp *scenario.Spec) {
			sp.Sim.Datapath = "busypoll"
			sp.Sim.Topology.Server = scenario.MachineSpec{Sockets: 2, CoresPerSocket: 1}
		}, ">= 2 cores per server node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := scenario.Chaos()
			tc.mut(sp)
			err := sp.Validate()
			if err == nil {
				t.Fatal("validator accepted a malformed spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDatapathRoundTrips: every datapath spelling survives marshal →
// parse (including the omitted default), and validation accepts all of
// them on a topology with spare cores.
func TestDatapathRoundTrips(t *testing.T) {
	for _, dp := range []string{"", "interrupt", "busypoll", "hybrid"} {
		sp := scenario.Chaos()
		sp.Sim.Datapath = dp
		data, err := sp.Marshal()
		if err != nil {
			t.Fatalf("datapath %q: marshal: %v", dp, err)
		}
		back, err := scenario.Parse(data)
		if err != nil {
			t.Fatalf("datapath %q: parse: %v", dp, err)
		}
		if back.Sim.Datapath != dp {
			t.Errorf("datapath %q round-tripped to %q", dp, back.Sim.Datapath)
		}
	}
}

// TestGenerateDrawsDatapaths: the fuzz generator exercises all three
// datapaths across a modest seed sweep, so `-fuzz` coverage includes
// the poll-mode delivery paths.
func TestGenerateDrawsDatapaths(t *testing.T) {
	seen := map[string]bool{}
	for seed := int64(0); seed < 50; seed++ {
		dp := scenario.Generate(seed).Sim.Datapath
		if dp == "" {
			dp = "interrupt"
		}
		seen[dp] = true
	}
	for _, dp := range []string{"interrupt", "busypoll", "hybrid"} {
		if !seen[dp] {
			t.Errorf("50 seeds never drew datapath %q", dp)
		}
	}
}

// TestLoadResolvesBuiltinsAndRejectsJunk covers the -scenario argument
// resolution path.
func TestLoadResolvesBuiltinsAndRejectsJunk(t *testing.T) {
	for _, name := range scenario.Builtins() {
		if _, err := scenario.Load(name); err != nil {
			t.Errorf("builtin %s: %v", name, err)
		}
	}
	if _, err := scenario.Load("no-such-scenario-or-file"); err == nil {
		t.Error("Load accepted a bogus name")
	}
}

// TestValidateRejectsDeviceFaults covers the device-failure-domain
// additions: physically impossible schedules (a poller stall with no
// poll loop to wedge, a queue index the driver layout never creates)
// and checks/counters that need machinery the spec did not arm.
func TestValidateRejectsDeviceFaults(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*scenario.Spec)
		want string
	}{
		{"poller-stall on interrupt datapath", func(sp *scenario.Spec) {
			sp.Sim.Faults = append(sp.Sim.Faults, scenario.FaultSpec{Kind: "poller-stall", Node: 0, AtPct: 30, DurPct: 10})
		}, "runs no dedicated poll loops"},
		{"poller-stall unknown node", func(sp *scenario.Spec) {
			sp.Sim.Datapath = "busypoll"
			sp.Sim.Faults = append(sp.Sim.Faults, scenario.FaultSpec{Kind: "poller-stall", Node: 9, AtPct: 30, DurPct: 10})
		}, "no node 9"},
		{"poller-stall without duration", func(sp *scenario.Spec) {
			sp.Sim.Datapath = "busypoll"
			sp.Sim.Faults = append(sp.Sim.Faults, scenario.FaultSpec{Kind: "poller-stall", Node: 0, AtPct: 30})
		}, "positive duration"},
		{"queue-stall unknown pf", func(sp *scenario.Spec) {
			sp.Sim.Faults = append(sp.Sim.Faults, scenario.FaultSpec{Kind: "queue-stall", PF: 9, Queue: 0, AtPct: 30, DurPct: 10})
		}, "no PF 9"},
		{"queue-stall queue outside driver layout", func(sp *scenario.Spec) {
			sp.Sim.Faults = append(sp.Sim.Faults, scenario.FaultSpec{Kind: "queue-stall", PF: 0, Queue: 999, AtPct: 30, DurPct: 10})
		}, "not 999"},
		{"queue-stall without duration", func(sp *scenario.Spec) {
			sp.Sim.Faults = append(sp.Sim.Faults, scenario.FaultSpec{Kind: "queue-stall", PF: 0, Queue: 0, AtPct: 30})
		}, "positive duration"},
		{"overlapping queue stalls same pair", func(sp *scenario.Spec) {
			sp.Sim.Faults = append(sp.Sim.Faults,
				scenario.FaultSpec{Kind: "queue-stall", PF: 0, Queue: 0, AtPct: 30, DurPct: 20},
				scenario.FaultSpec{Kind: "queue-stall", PF: 0, Queue: 0, AtPct: 40, DurPct: 20})
		}, "overlapping"},
		{"watchdog non-positive interval", func(sp *scenario.Spec) {
			sp.Sim.Watchdog = &scenario.WatchdogSpec{Interval: 0}
		}, "positive interval"},
		{"watchdog negative backoff", func(sp *scenario.Spec) {
			sp.Sim.Watchdog = &scenario.WatchdogSpec{Interval: time.Millisecond, Backoff: -1}
		}, "non-negative"},
		{"fw-recovered without fw-reset", func(sp *scenario.Spec) {
			sp.Sim.Checks = append(sp.Sim.Checks, scenario.CheckSpec{Kind: "fw-recovered", Name: "x"})
		}, "no fw-reset fault"},
		{"queue-recovered without queue-stall", func(sp *scenario.Spec) {
			sp.Sim.Checks = append(sp.Sim.Checks, scenario.CheckSpec{Kind: "queue-recovered", Name: "x"})
		}, "no queue-stall fault"},
		{"queue-recovered min without watchdog", func(sp *scenario.Spec) {
			sp.Sim.Faults = append(sp.Sim.Faults, scenario.FaultSpec{Kind: "queue-stall", PF: 0, Queue: 0, AtPct: 30, DurPct: 10})
			sp.Sim.Checks = append(sp.Sim.Checks, scenario.CheckSpec{Kind: "queue-recovered", Name: "x", Min: 1})
		}, "needs the watchdog armed"},
		{"poller check on interrupt datapath", func(sp *scenario.Spec) {
			sp.Sim.Checks = append(sp.Sim.Checks, scenario.CheckSpec{Kind: "poller-fallback-and-back", Name: "x"})
		}, "needs the busypoll datapath"},
		{"watchdog counter without watchdog", func(sp *scenario.Spec) {
			sp.Sim.Counters = append(sp.Sim.Counters, scenario.CounterSpec{Label: "x", Source: "watchdog/queue_resets"})
		}, "needs the watchdog armed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := scenario.Chaos()
			tc.mut(sp)
			err := sp.Validate()
			if err == nil {
				t.Fatal("validator accepted a malformed spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestGenerateDrawsDeviceFaultKinds: the fuzz generator reaches every
// device fault kind across a modest seed sweep — and arms the watchdog
// whenever it schedules one, so the recovery checks it emits can pass.
func TestGenerateDrawsDeviceFaultKinds(t *testing.T) {
	seen := map[string]bool{}
	for seed := int64(0); seed < 120; seed++ {
		sp := scenario.Generate(seed)
		hasDev := false
		for _, f := range sp.Sim.Faults {
			seen[f.Kind] = true
			switch f.Kind {
			case "fw-reset", "queue-stall", "poller-stall":
				hasDev = true
			}
		}
		if hasDev && sp.Sim.Watchdog == nil {
			t.Fatalf("seed %d: device fault scheduled without arming the watchdog", seed)
		}
	}
	for _, kind := range []string{"fw-reset", "queue-stall", "poller-stall"} {
		if !seen[kind] {
			t.Errorf("120 seeds never drew fault kind %q", kind)
		}
	}
}
