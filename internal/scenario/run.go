package scenario

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/driver"
	"ioctopus/internal/eth"
	"ioctopus/internal/experiments"
	"ioctopus/internal/kernel"
	"ioctopus/internal/metrics"
	"ioctopus/internal/netstack"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
	"ioctopus/internal/workloads"
)

// Run executes a validated spec and returns its Result. The run is a
// pure function of (spec, durations, experiments.Shards()): running
// the same spec twice — or its JSON round-trip — renders byte-identical
// text, which is what the check.sh fuzz gate diffs.
func Run(sp *Spec, d experiments.Durations) (*experiments.Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if sp.Trend != nil {
		return runTrend(sp), nil
	}
	return runSim(sp, d)
}

// runTrend evaluates a static trend dataset — the declarative twin of
// the hand-wired fig2 runner, row for row and check for check.
func runTrend(sp *Spec) *experiments.Result {
	tr := sp.Trend
	r := &experiments.Result{ID: sp.Name, Title: sp.Title}
	t := metrics.NewTable(tr.TableTitle,
		"year", "ethernet", "NIC 1-port", "NIC 2-port", "cores", "CPU cloud", "CPU 10G/core")
	nicAlwaysExceedsCloud := true
	dualExceedsAggressive := 0
	for _, p := range tr.Rows {
		cloud := tr.CloudPerCoreGbs * float64(p.MaxCores)
		aggressive := tr.BareMetalPerCoreGbs * float64(p.MaxCores)
		t.AddRow(p.Year, p.Ethernet, p.SinglePortGbs, p.DualPortGbs, p.MaxCores, cloud, aggressive)
		if p.SinglePortGbs <= cloud {
			nicAlwaysExceedsCloud = false
		}
		if p.DualPortGbs >= aggressive {
			dualExceedsAggressive++
		}
	}
	r.Tables = append(r.Tables, t)
	r.Checks = append(r.Checks,
		experiments.Check{
			Name: tr.SingleExceedsCloudName, Pass: nicAlwaysExceedsCloud,
			Detail: tr.SingleExceedsCloudDetail,
		},
		experiments.Check{
			Name: tr.DualCoversAggressiveName, Pass: dualExceedsAggressive >= len(tr.Rows)/2,
			Detail: fmt.Sprintf("%d of %d years", dualExceedsAggressive, len(tr.Rows)),
		})
	r.Notes = append(r.Notes, tr.Notes...)
	return r
}

// streamState is one raw-stream workload's byte accounting. tx is
// written by the sending host's shard and rx by the receiving host's;
// both are only read after the engines have joined (end of a Run), and
// rx of a forward stream — the one source samplers may probe — lives on
// the server shard the sampler runs on.
type streamState struct {
	tx, rx int64
}

// runErrs collects workload failures across both engine shards.
type runErrs struct {
	mu   sync.Mutex
	errs []string
}

func (re *runErrs) add(format string, args ...any) {
	re.mu.Lock()
	re.errs = append(re.errs, fmt.Sprintf(format, args...))
	re.mu.Unlock()
}

func (re *runErrs) all() []string {
	re.mu.Lock()
	defer re.mu.Unlock()
	return append([]string(nil), re.errs...)
}

// ratio guards against division blowups in reporting (the experiments
// package's convention).
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// pctT renders a percent-of-timeline instant the way the hand-wired
// runners label windows: "0.30T", or plain "T" at the end of the run.
func pctT(pct int) string {
	if pct == 100 {
		return "T"
	}
	return fmt.Sprintf("0.%02dT", pct)
}

// runSim assembles the cluster a SimSpec describes, drives its
// workloads and fault plan over the timeline, and evaluates the
// declarative checks.
func runSim(sp *Spec, d experiments.Durations) (*experiments.Result, error) {
	sim2 := sp.Sim
	T := d.Timeline
	frac := func(pct int) time.Duration { return T * time.Duration(pct) / 100 }

	mode, _ := parseMode(sim2.Mode)
	wiring, _ := parseWiring(sim2.Wiring)
	datapath, _ := core.ParseDatapath(sim2.Datapath)
	serverTopo, err := sim2.Topology.Server.build()
	if err != nil {
		return nil, err
	}
	clientTopo, err := sim2.Topology.Client.build()
	if err != nil {
		return nil, err
	}

	stackParams := netstack.DefaultParams()
	if sim2.Retx != nil {
		stackParams.RetxTimeout = sim2.Retx.Timeout
		stackParams.RetxMaxTries = sim2.Retx.MaxTries
	}
	var drvParams *driver.Params
	if sim2.Watchdog != nil {
		dp := driver.DefaultParams()
		dp.WatchdogInterval = sim2.Watchdog.Interval
		dp.WatchdogTicks = sim2.Watchdog.Ticks
		dp.WatchdogBackoff = sim2.Watchdog.Backoff
		drvParams = &dp
	}

	cl, err := core.NewClusterE(core.Config{
		Mode:         mode,
		EnableSG:     sim2.EnableSG,
		Wiring:       wiring,
		Datapath:     datapath,
		ServerTopo:   serverTopo,
		ClientTopo:   clientTopo,
		StackParams:  &stackParams,
		DriverParams: drvParams,
		FaultPlan:    sim2.faultPlan(sp.Seed, T),
		Seed:         sp.Seed,
		Shards:       experiments.Shards(),
	})
	if err != nil {
		return nil, err
	}
	defer cl.Drain()

	r := &experiments.Result{ID: sp.Name, Title: sp.Title}
	var errs runErrs

	// Workloads, in spec order. Stream workloads are wired inline so the
	// runner owns per-stream sent/delivered counters; netperf and
	// memcached go through the workloads package.
	streams := make([]*streamState, len(sim2.Workloads))
	netperfs := make([]*workloads.Stream, len(sim2.Workloads))
	memcacheds := make([]*workloads.Memcached, len(sim2.Workloads))
	for i, w := range sim2.Workloads {
		switch w.Kind {
		case "stream":
			st := &streamState{}
			streams[i] = st
			startStream(cl, i, w, st, &errs)
		case "netperf":
			dir := workloads.Rx
			if w.Direction == "tx" {
				dir = workloads.Tx
			}
			var serverCores, clientCores []topology.CoreID
			serverPool := cl.Server.Topo.CoresOn(topology.NodeID(w.ServerNode))
			clientPool := cl.Client.Topo.CoresOn(0)
			for k := 0; k < w.Instances; k++ {
				serverCores = append(serverCores, serverPool[k].ID)
				clientCores = append(clientCores, clientPool[k%len(clientPool)].ID)
			}
			netperfs[i] = workloads.StartStream(cl, workloads.StreamConfig{
				MsgSize:     w.MsgSize,
				Direction:   dir,
				ServerCores: serverCores,
				ClientCores: clientCores,
				ServerIP:    core.IPServerPF0,
				Port:        w.Port,
			})
		case "memcached":
			cfg := workloads.DefaultMemcachedConfig(topology.NodeID(w.ServerNode), cl)
			cfg.ClientCores = cfg.ClientCores[:w.Clients]
			cfg.KeySize = w.KeySize
			cfg.ValueSize = w.ValueSize
			cfg.SetRatio = w.SetRatio
			cfg.Port = w.Port
			if w.OpCost > 0 {
				cfg.OpCost = w.OpCost
			}
			cfg.Pipeline = w.Pipeline
			memcacheds[i] = workloads.StartMemcached(cl, cfg)
		}
	}

	// Sampled series, in spec order, on the server shard.
	var sampler *metrics.Sampler
	series := make([]*metrics.Series, len(sim2.Samples))
	if len(sim2.Samples) > 0 {
		sampler = metrics.NewSampler(cl.Eng, d.SampleEvery)
		for i, s := range sim2.Samples {
			series[i] = sampler.TrackRate(s.Name, sampleProbe(cl, s.Source, streams))
		}
		sampler.Start()
	}

	// Windowed aggregate NIC receive rates, each bracketed by engine
	// runs; the tail of the timeline runs after the last window so
	// counters are read at T.
	nicRx := func() float64 {
		var total float64
		for i := 0; i < cl.Server.Topo.NumNodes(); i++ {
			total += cl.Server.NIC.PF(i).RxBytes()
		}
		return total
	}
	var cursor time.Duration
	advance := func(to time.Duration) {
		cl.Run(to - cursor)
		cursor = to
	}
	rates := make([]float64, len(sim2.Windows))
	for i, w := range sim2.Windows {
		advance(frac(w.FromPct))
		start := nicRx()
		advance(frac(w.ToPct))
		rates[i] = (nicRx() - start) * 8 / (frac(w.ToPct) - frac(w.FromPct)).Seconds() / 1e9
	}
	if cursor < T {
		advance(T)
	}

	// Dip depth and recovery time from the sampled series.
	dip, recoverAt := 0.0, -1.0
	if rec := sim2.Recovery; rec != nil {
		pre := rates[0]
		dip = pre
		s := series[rec.Sample]
		for i, tm := range s.Times {
			v := s.Values[i]
			if tm > sim.Time(frac(rec.FaultFromPct)) && tm < sim.Time(frac(rec.FaultToPct)) && v < dip {
				dip = v
			}
			if recoverAt < 0 && tm >= sim.Time(frac(rec.RecoverAfterPct)) && v >= rec.Threshold*pre {
				recoverAt = tm.Seconds() - frac(rec.RecoverAfterPct).Seconds()
			}
		}
	}

	// End-of-run counters.
	var linkDrops uint64
	for i := 0; i < cl.Server.Topo.NumNodes(); i++ {
		linkDrops += cl.Server.NIC.PF(i).RxLinkDrops() + cl.Server.NIC.PF(i).TxLinkDrops()
	}
	var wireDrops, transitions uint64
	if cl.Faults != nil {
		wireDrops = cl.Faults.TotalWireDrops()
		transitions = cl.Faults.LinkTransitions()
	}
	retx := cl.Client.Stack.RetxRetransmits() + cl.Server.Stack.RetxRetransmits()
	abandoned := cl.Client.Stack.RetxAbandoned() + cl.Server.Stack.RetxAbandoned()
	lost := wireDrops + linkDrops

	if len(sim2.Windows) > 0 {
		t := metrics.NewTable(sim2.WindowTable, "window", "Gb/s", "vs pre")
		for i, w := range sim2.Windows {
			label := fmt.Sprintf("%s [%s,%s)", w.Name, pctT(w.FromPct), pctT(w.ToPct))
			if i == 0 {
				t.AddRow(label, rates[i], 1.0)
			} else {
				t.AddRow(label, rates[i], ratio(rates[i], rates[0]))
			}
		}
		r.Tables = append(r.Tables, t)
	}

	if len(sim2.Counters) > 0 {
		ct := metrics.NewTable(sim2.CounterTable, "counter", "value")
		for _, c := range sim2.Counters {
			ct.AddRow(c.Label, counterValue(cl, c.Source, transitions, wireDrops, retx, abandoned))
		}
		r.Tables = append(r.Tables, ct)
	}

	r.Series = append(r.Series, series...)

	if sim2.Recovery != nil {
		r.Notes = append(r.Notes,
			fmt.Sprintf("seed %d; deepest delivered-rate sample during faults %.1f Gb/s (%.0f%% of pre)",
				sp.Seed, dip, 100*ratio(dip, rates[0])),
			fmt.Sprintf("recovery time after failback: %.1f ms (first sample back above %.0f%% of pre)",
				recoverAt*1e3, 100*sim2.Recovery.Threshold))
	}
	var fwdTx, fwdRx, revTx, revRx int64
	var haveFwd, haveRev bool
	for i, w := range sim2.Workloads {
		if w.Kind != "stream" {
			continue
		}
		if w.FromServer {
			haveRev = true
			revTx += streams[i].tx
			revRx += streams[i].rx
		} else {
			haveFwd = true
			fwdTx += streams[i].tx
			fwdRx += streams[i].rx
		}
	}
	if haveFwd && haveRev {
		r.Notes = append(r.Notes,
			fmt.Sprintf("forward sent %d bytes, delivered %d; reverse sent %d, delivered %d; gaps are in-flight/buffered data",
				fwdTx, fwdRx, revTx, revRx))
	}
	r.Notes = append(r.Notes, sim2.Notes...)

	// Declarative checks, in spec order.
	inFlightBound := stackParams.SendWindow + stackParams.RxBufBytes
	workloadErrs := errs.all()
	for i := range sim2.Workloads {
		if netperfs[i] != nil {
			workloadErrs = append(workloadErrs, netperfs[i].Errors()...)
		}
		if memcacheds[i] != nil {
			workloadErrs = append(workloadErrs, memcacheds[i].Errors()...)
		}
	}
	checkTrue := func(name string, ok bool, detail string) {
		r.Checks = append(r.Checks, experiments.Check{Name: name, Pass: ok, Detail: detail})
	}
	sawNoErrors := false
	for _, c := range sim2.Checks {
		switch c.Kind {
		case "wire-drops-positive":
			checkTrue(c.Name, lost > 0,
				fmt.Sprintf("%d frames killed (wire %d, dead PF %d)", lost, wireDrops, linkDrops))
		case "failover-and-back":
			checkTrue(c.Name, cl.Octo.Failovers() >= 1 && cl.Octo.Failbacks() >= 1,
				fmt.Sprintf("failovers=%d failbacks=%d", cl.Octo.Failovers(), cl.Octo.Failbacks()))
		case "reposted":
			checkTrue(c.Name, cl.Octo.Reposted() >= c.Min,
				fmt.Sprintf("reposted=%d", cl.Octo.Reposted()))
		case "retx-recovered":
			checkTrue(c.Name, retx >= c.Min, fmt.Sprintf("retransmits=%d", retx))
		case "no-abandoned":
			checkTrue(c.Name, abandoned == 0, fmt.Sprintf("abandoned=%d", abandoned))
		case "stream-conserved":
			st := streams[c.Workload]
			checkTrue(c.Name, st.tx-st.rx <= inFlightBound,
				fmt.Sprintf("gap=%d bound=%d", st.tx-st.rx, inFlightBound))
		case "progress":
			var done int64
			switch {
			case streams[c.Workload] != nil:
				done = streams[c.Workload].rx
			case netperfs[c.Workload] != nil:
				done = netperfs[c.Workload].Bytes()
			case memcacheds[c.Workload] != nil:
				done = int64(memcacheds[c.Workload].Transactions())
			}
			checkTrue(c.Name, done > 0, fmt.Sprintf("delivered=%d", done))
		case "window-ratio":
			v := ratio(rates[c.Window], rates[0])
			r.Checks = append(r.Checks, experiments.Check{
				Name: c.Name, Pass: v >= c.Lo && v <= c.Hi,
				Detail: fmt.Sprintf("%.3f (want %.2f..%.2f)", v, c.Lo, c.Hi),
			})
		case "no-errors":
			sawNoErrors = true
			detail := "0 errors"
			if len(workloadErrs) > 0 {
				detail = strings.Join(workloadErrs, "; ")
			}
			checkTrue(c.Name, len(workloadErrs) == 0, detail)
		case "fw-recovered":
			resets, replayed := fwRecovery(cl)
			checkTrue(c.Name, resets >= 1 && replayed >= 1,
				fmt.Sprintf("fw resets=%d rules replayed=%d", resets, replayed))
		case "queue-recovered":
			held := heldCompletions(cl)
			wd := watchdogTotals(cl)
			checkTrue(c.Name, held == 0 && wd.QueueResets >= c.Min,
				fmt.Sprintf("held completions=%d queue resets=%d", held, wd.QueueResets))
		case "poller-fallback-and-back":
			wd := watchdogTotals(cl)
			checkTrue(c.Name, wd.PollerFallbacks >= 1 && wd.PollerReenters >= 1,
				fmt.Sprintf("fallbacks=%d reenters=%d", wd.PollerFallbacks, wd.PollerReenters))
		}
	}
	// A workload failure must fail the run even when the spec's author
	// forgot to ask for it: a fuzzed fault plan that kills a connect
	// phase produces a failed check, never a silently passing run.
	if len(workloadErrs) > 0 && !sawNoErrors {
		checkTrue("workload errors", false, strings.Join(workloadErrs, "; "))
	}
	return r, nil
}

// startStream wires one raw-stream workload: a Listen+sink thread on
// the receiving host and a Dial+send loop on the transmitting host,
// with explicit core placement from the spec.
func startStream(cl *core.Cluster, idx int, w WorkloadSpec, st *streamState, errs *runErrs) {
	sinkHost, srcHost := cl.Server, cl.Client
	dialIP := core.IPServerPF0
	if w.FromServer {
		sinkHost, srcHost = cl.Client, cl.Server
		dialIP = core.IPClient
	}
	sinkCore := sinkHost.Topo.CoresOn(topology.NodeID(w.SinkNode))[w.SinkCoreIdx].ID
	srcCore := srcHost.Topo.CoresOn(topology.NodeID(w.SrcNode))[w.SrcCoreIdx].ID

	sinkHost.Stack.Listen(w.Port, func(s *netstack.Socket) {
		sinkHost.Kernel.Spawn(w.SinkName, sinkCore, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				st.rx += n
			}
		})
	})
	srcHost.Kernel.Spawn(w.SrcName, srcCore, func(th *kernel.Thread) {
		sock, err := srcHost.Stack.Dial(th, dialIP, w.Port, eth.ProtoTCP)
		if err != nil {
			errs.add("workload %d (%s): dial: %v", idx, w.SrcName, err)
			return
		}
		for {
			sock.Send(th, w.MsgSize)
			st.tx += w.MsgSize
		}
	})
}

// sampleProbe builds the closure one SampleSpec tracks. All sources
// live on the server engine shard, matching the sampler.
func sampleProbe(cl *core.Cluster, source string, streams []*streamState) func() float64 {
	if n, ok := parseSource(source, "workload"); ok {
		st := streams[n]
		return func() float64 { return float64(st.rx) * 8 / 1e9 }
	}
	n, _ := parseSource(source, "pf")
	pf := cl.Server.NIC.PF(n)
	return func() float64 { return pf.RxBytes() * 8 / 1e9 }
}

// serverDrivers lists the server-side netdevices (one octo driver, or
// one standard driver per PF).
func serverDrivers(cl *core.Cluster) []netstack.NetDevice {
	var devs []netstack.NetDevice
	for _, d := range []netstack.NetDevice{cl.Dev0, cl.Dev1} {
		if d != nil {
			devs = append(devs, d)
		}
	}
	return devs
}

// fwRecovery sums firmware resets handled and rules replayed across the
// server drivers (both driver flavors journal and replay).
func fwRecovery(cl *core.Cluster) (resets, replayed uint64) {
	for _, d := range serverDrivers(cl) {
		if fr, ok := d.(interface {
			FwResets() uint64
			RulesReplayed() uint64
		}); ok {
			resets += fr.FwResets()
			replayed += fr.RulesReplayed()
		}
	}
	return resets, replayed
}

// watchdogTotals sums the watchdog counters across the server drivers
// (zero when the watchdog is disabled).
func watchdogTotals(cl *core.Cluster) driver.WatchdogStats {
	var t driver.WatchdogStats
	for _, d := range serverDrivers(cl) {
		wd, ok := d.(interface{ WatchdogStats() driver.WatchdogStats })
		if !ok {
			continue
		}
		s := wd.WatchdogStats()
		t.Ticks += s.Ticks
		t.QueueResets += s.QueueResets
		t.FwReprograms += s.FwReprograms
		t.PFDead += s.PFDead
		t.PFRecovered += s.PFRecovered
		t.PollerFallbacks += s.PollerFallbacks
		t.PollerReenters += s.PollerReenters
	}
	return t
}

// heldCompletions counts writebacks still stranded device-side across
// every server NIC queue — the queue-recovered check's failure signal.
func heldCompletions(cl *core.Cluster) int {
	var held int
	for _, pf := range cl.Server.NIC.PFs() {
		for _, q := range pf.RxQueues() {
			held += q.HeldCompletions()
		}
		for _, q := range pf.TxQueues() {
			held += q.HeldCompletions()
		}
	}
	return held
}

// counterValue resolves one counter-table source at end of run.
func counterValue(cl *core.Cluster, src string, transitions, wireDrops, retx, abandoned uint64) float64 {
	switch src {
	case "faults/link_transitions":
		return float64(transitions)
	case "faults/wire_drops":
		return float64(wireDrops)
	case "driver/failovers":
		return float64(cl.Octo.Failovers())
	case "driver/failbacks":
		return float64(cl.Octo.Failbacks())
	case "driver/reposted":
		return float64(cl.Octo.Reposted())
	case "driver/parked_overflow":
		return float64(cl.Octo.ParkedOverflow())
	case "driver/concurrent_ignored":
		return float64(cl.Octo.ConcurrentIgnored())
	case "nic/fw_resets":
		return float64(cl.Server.NIC.FwResets())
	case "driver/fw_resets":
		resets, _ := fwRecovery(cl)
		return float64(resets)
	case "driver/rules_replayed":
		_, replayed := fwRecovery(cl)
		return float64(replayed)
	case "watchdog/queue_resets":
		return float64(watchdogTotals(cl).QueueResets)
	case "watchdog/fw_reprograms":
		return float64(watchdogTotals(cl).FwReprograms)
	case "watchdog/pf_dead":
		return float64(watchdogTotals(cl).PFDead)
	case "watchdog/poller_fallbacks":
		return float64(watchdogTotals(cl).PollerFallbacks)
	case "watchdog/poller_reenters":
		return float64(watchdogTotals(cl).PollerReenters)
	case "stack/retx":
		return float64(retx)
	case "server/stack/dup":
		return float64(cl.Server.Stack.RetxDuplicates())
	case "stack/abandoned":
		return float64(abandoned)
	case "nic/link_drops":
		var total uint64
		for i := 0; i < cl.Server.Topo.NumNodes(); i++ {
			total += cl.Server.NIC.PF(i).RxLinkDrops() + cl.Server.NIC.PF(i).TxLinkDrops()
		}
		return float64(total)
	}
	var pf int
	if _, err := fmt.Sscanf(src, "nic/pf%d/link_drops", &pf); err == nil {
		return float64(cl.Server.NIC.PF(pf).RxLinkDrops() + cl.Server.NIC.PF(pf).TxLinkDrops())
	}
	return 0
}
