package scenario

import (
	"fmt"
	"time"

	"ioctopus/internal/experiments"
	"ioctopus/internal/sim"
)

// FuzzDurations returns the windows fuzz runs use: long enough that a
// fault window (≤15% of the timeline) plus its retransmission tail fits
// before the post-fault measurement window, short enough that a CI
// smoke gate can afford dozens of seeds.
func FuzzDurations() experiments.Durations {
	return experiments.Durations{
		Warmup:      4 * time.Millisecond,
		Measure:     16 * time.Millisecond,
		Timeline:    120 * time.Millisecond,
		SampleEvery: 5 * time.Millisecond,
	}
}

// Generate draws a random — but always valid — scenario from the given
// seed: a topology pair, a NIC mode and wiring, a workload mix anchored
// by a forward stream, and a fault schedule, plus the invariant checks
// the drawn combination must uphold (conservation, no abandoned
// segments, failover when the octo driver takes a flap, sane windowed
// throughput). It is a pure function of the seed: the same seed yields
// a deeply equal spec, and running it twice renders byte-identical
// output — which is exactly what `ioctobench -fuzz` and the check.sh
// gate verify. The DICE-style point is adversarial coverage: schedules
// no curated figN runner would ever wire by hand.
func Generate(seed int64) *Spec {
	rng := sim.NewRNG(seed)
	pickInt := func(xs ...int) int { return xs[rng.Intn(len(xs))] }

	serverSockets := pickInt(1, 2, 2, 2, 4)
	serverCores := pickInt(2, 4, 6)
	clientSockets := pickInt(1, 2)
	clientCores := pickInt(2, 4)

	mode := "standard"
	if rng.Float64() < 0.7 {
		mode = "ioctopus"
	}
	wiring := []string{"bifurcated", "extender", "riser", "switch"}[rng.Intn(4)]
	// Datapath axis: half the seeds stay on the interrupt path, the rest
	// split between busypoll and hybrid. Generated servers always have
	// >= 2 cores per socket, so busypoll's spare-core requirement holds
	// by construction.
	datapath := ""
	switch rng.Intn(4) {
	case 0:
		datapath = "busypoll"
	case 1:
		datapath = "hybrid"
	}

	sim2 := &SimSpec{
		Topology: TopoSpec{
			Server: MachineSpec{Sockets: serverSockets, CoresPerSocket: serverCores},
			Client: MachineSpec{Sockets: clientSockets, CoresPerSocket: clientCores},
		},
		Mode:     mode,
		Wiring:   wiring,
		Datapath: datapath,
		// Retransmission is always on: most of the invariants worth
		// fuzzing (conservation, no-abandoned) only exist above it.
		Retx: &RetxSpec{Timeout: 2 * time.Millisecond, MaxTries: 12},
	}

	// Workload mix: always a forward stream first (so the wire's
	// client->server direction always carries data and workload:0 is a
	// valid sample source), then up to two more drawn from the menu.
	msgSizes := []int64{4096, 16384, 65536}
	sim2.Workloads = append(sim2.Workloads, WorkloadSpec{
		Kind: "stream", Port: 7000, MsgSize: msgSizes[rng.Intn(len(msgSizes))],
		SinkName: "fwd-sink", SrcName: "fwd-src",
		SinkNode: rng.Intn(serverSockets), SinkCoreIdx: rng.Intn(serverCores),
		SrcNode: rng.Intn(clientSockets), SrcCoreIdx: rng.Intn(clientCores),
	})
	extra := rng.Intn(3)
	for i := 0; i < extra; i++ {
		port := uint16(7000 + 100*(i+1))
		switch rng.Intn(4) {
		case 0: // reverse stream (server transmits)
			sim2.Workloads = append(sim2.Workloads, WorkloadSpec{
				Kind: "stream", FromServer: true, Port: port,
				MsgSize:  msgSizes[rng.Intn(len(msgSizes))],
				SinkName: fmt.Sprintf("rev-sink-%d", i), SrcName: fmt.Sprintf("rev-src-%d", i),
				SinkNode: rng.Intn(clientSockets), SinkCoreIdx: rng.Intn(clientCores),
				SrcNode: rng.Intn(serverSockets), SrcCoreIdx: rng.Intn(serverCores),
			})
		case 1, 2: // netperf instances
			dir := "rx"
			if rng.Float64() < 0.5 {
				dir = "tx"
			}
			sim2.Workloads = append(sim2.Workloads, WorkloadSpec{
				Kind: "netperf", Port: port, Direction: dir,
				MsgSize:    msgSizes[rng.Intn(len(msgSizes))],
				Instances:  1 + rng.Intn(2),
				ServerNode: rng.Intn(serverSockets),
			})
		case 3: // memcached, sized down to the fuzz timeline
			sim2.Workloads = append(sim2.Workloads, WorkloadSpec{
				Kind: "memcached", Port: port,
				ServerNode: rng.Intn(serverSockets),
				Clients:    1 + rng.Intn(2),
				KeySize:    64,
				ValueSize:  []int64{1024, 4096, 8192}[rng.Intn(3)],
				SetRatio:   0.1 * float64(rng.Intn(3)),
				OpCost:     10 * time.Microsecond,
				Pipeline:   1 + rng.Intn(3),
			})
		}
	}

	// Fault schedule: windows land in [5%,70%] of the timeline so the
	// post-fault window ([75%,100%)) always measures a healed system.
	// Same-state windows are de-overlapped deterministically (shifted
	// past the previous window's end, dropped if that pushes them past
	// 70%) so every generated plan passes ValidateSchedule by
	// construction.
	kinds := []string{"loss", "burst", "corrupt", "stall", "fw-reset", "queue-stall"}
	if serverSockets >= 2 {
		kinds = append(kinds, "link-flap", "degrade")
	}
	if datapath == "busypoll" {
		// Only the busypoll datapath runs dedicated poll loops to wedge.
		kinds = append(kinds, "poller-stall")
	}
	drawDir := func() string {
		// Prefer client->server: the forward stream guarantees that
		// direction carries frames, so the fault provably bites.
		if rng.Float64() < 0.7 {
			return "client-to-server"
		}
		return "server-to-client"
	}
	lastEnd := map[string]int{}
	hasFlap, hasC2S := false, false
	hasFwReset, hasQueueStall, hasPollerStall := false, false, false
	nFaults := rng.Intn(5)
	for i := 0; i < nFaults; i++ {
		kind := kinds[rng.Intn(len(kinds))]
		at := 5 + rng.Intn(56)
		dur := 3 + rng.Intn(13)
		f := FaultSpec{Kind: kind, AtPct: at, DurPct: dur}
		var key string
		switch kind {
		case "loss":
			f.Dir = drawDir()
			f.Prob = 0.05 + 0.25*rng.Float64()
			key = "loss/" + f.Dir
		case "burst":
			f.Dir = drawDir()
			f.DurPct = 2 + rng.Intn(4)
			key = "burst/" + f.Dir
		case "corrupt":
			f.Dir = drawDir()
			f.Prob = 0.01 + 0.09*rng.Float64()
			key = "corrupt/" + f.Dir
		case "stall":
			f.Core = rng.Intn(serverSockets * serverCores)
			f.DurPct = 0
			f.Dur = time.Duration(500+rng.Intn(501)) * time.Microsecond
		case "link-flap":
			f.PF = rng.Intn(serverSockets)
			key = fmt.Sprintf("flap/%d", f.PF)
		case "degrade":
			f.From = rng.Intn(serverSockets)
			f.To = rng.Intn(serverSockets - 1)
			if f.To >= f.From {
				f.To++
			}
			f.BWFactor = 0.3 + 0.4*rng.Float64()
			f.LatFactor = 1.5 + rng.Float64()
			key = fmt.Sprintf("degrade/%d-%d", f.From, f.To)
		case "fw-reset":
			// Instantaneous table wipe; the drivers' journal replay is the
			// recovery under test.
			f.DurPct = 0
		case "queue-stall":
			// rng.Intn(serverCores) is a valid per-PF queue index in both
			// modes: the octo driver gives each PF a pair per local core
			// (serverCores of them) and the standard driver gives its PF a
			// pair per machine core (serverSockets*serverCores >= that).
			f.PF = rng.Intn(serverSockets)
			f.Queue = rng.Intn(serverCores)
			key = fmt.Sprintf("qstall/%d-%d", f.PF, f.Queue)
		case "poller-stall":
			f.Node = rng.Intn(serverSockets)
			key = fmt.Sprintf("pstall/%d", f.Node)
		}
		if key != "" {
			if end, clash := lastEnd[key]; clash && f.AtPct < end {
				f.AtPct = end
			}
			if f.AtPct+f.DurPct > 70 {
				continue
			}
			lastEnd[key] = f.AtPct + f.DurPct
		}
		sim2.Faults = append(sim2.Faults, f)
		switch kind {
		case "link-flap":
			hasFlap = true
		case "fw-reset":
			hasFwReset = true
		case "queue-stall":
			hasQueueStall = true
		case "poller-stall":
			hasPollerStall = true
		}
		if (kind == "loss" || kind == "burst" || kind == "corrupt") && f.Dir == "client-to-server" {
			hasC2S = true
		}
	}
	// A device fault arms the self-healing watchdog: its staged recovery
	// is the invariant under test (and the poller-stall fallback check is
	// meaningless without a watchdog to notice the wedge).
	if hasFwReset || hasQueueStall || hasPollerStall {
		sim2.Watchdog = &WatchdogSpec{Interval: 500 * time.Microsecond}
	}

	sim2.Samples = append(sim2.Samples, SampleSpec{Name: "delivered Gb/s", Source: "workload:0"})
	for i := 0; i < serverSockets; i++ {
		sim2.Samples = append(sim2.Samples,
			SampleSpec{Name: fmt.Sprintf("pf%d Gb/s", i), Source: fmt.Sprintf("pf:%d", i)})
	}
	sim2.Windows = []WindowSpec{
		{Name: "pre", FromPct: 10, ToPct: 30},
		{Name: "faulted", FromPct: 35, ToPct: 60},
		{Name: "post", FromPct: 75, ToPct: 100},
	}
	sim2.WindowTable = "windowed server NIC throughput"
	sim2.Counters = []CounterSpec{
		{Label: "faults: link transitions", Source: "faults/link_transitions"},
		{Label: "faults: frames dropped on wire", Source: "faults/wire_drops"},
		{Label: "nic: frames dropped at dead links", Source: "nic/link_drops"},
		{Label: "stack: segments retransmitted", Source: "stack/retx"},
		{Label: "stack: segments abandoned", Source: "stack/abandoned"},
	}
	if mode == "ioctopus" {
		sim2.Counters = append(sim2.Counters,
			CounterSpec{Label: "driver: failovers", Source: "driver/failovers"},
			CounterSpec{Label: "driver: failbacks", Source: "driver/failbacks"},
			CounterSpec{Label: "driver: descriptors reposted", Source: "driver/reposted"})
	}
	sim2.CounterTable = "invariant counters"

	sim2.Checks = append(sim2.Checks, CheckSpec{Kind: "no-errors", Name: "no workload errors"})
	for i, w := range sim2.Workloads {
		sim2.Checks = append(sim2.Checks, CheckSpec{
			Kind: "progress", Name: fmt.Sprintf("workload %d (%s) makes progress", i, w.Kind), Workload: i,
		})
		if w.Kind == "stream" {
			sim2.Checks = append(sim2.Checks, CheckSpec{
				Kind: "stream-conserved",
				Name: fmt.Sprintf("stream %d conserved (gap <= in-flight bound)", i), Workload: i,
			})
		}
	}
	sim2.Checks = append(sim2.Checks, CheckSpec{Kind: "no-abandoned", Name: "no segment abandoned"})
	if hasC2S {
		sim2.Checks = append(sim2.Checks,
			CheckSpec{Kind: "wire-drops-positive", Name: "faults actually dropped traffic"},
			CheckSpec{Kind: "retx-recovered", Name: "retransmission recovered lost segments", Min: 1})
	}
	if mode == "ioctopus" && hasFlap {
		sim2.Checks = append(sim2.Checks,
			CheckSpec{Kind: "failover-and-back", Name: "driver failed over and back"})
	}
	if hasFwReset {
		sim2.Checks = append(sim2.Checks,
			CheckSpec{Kind: "fw-recovered", Name: "fw reset: rules replayed and steering restored"})
	}
	if hasQueueStall {
		sim2.Checks = append(sim2.Checks,
			CheckSpec{Kind: "queue-recovered", Name: "queue stall: no completion left stranded"})
	}
	if hasPollerStall {
		sim2.Checks = append(sim2.Checks,
			CheckSpec{Kind: "poller-fallback-and-back", Name: "poller stall: fallback to interrupt and back"})
	}
	// Wide bounds: a fault inside the pre window legitimately skews the
	// ratio; the check is a sanity rail against a wedged post-fault
	// datapath, not a performance assertion.
	sim2.Checks = append(sim2.Checks, CheckSpec{
		Kind: "window-ratio", Name: "post/pre throughput ratio sane", Window: 2, Lo: 0.05, Hi: 20,
	})

	return &Spec{
		Name:  fmt.Sprintf("fuzz-%d", seed),
		Title: fmt.Sprintf("generated scenario (seed %d)", seed),
		Seed:  seed,
		Sim:   sim2,
	}
}
