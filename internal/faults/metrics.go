package faults

import "ioctopus/internal/metrics"

// RegisterMetrics exports the injector's counters: how many scheduled
// faults have fired and what they cost the wire. Recovery-side counts
// (failovers, retransmissions) live with the subsystems that perform
// them — the injector only knows what it broke.
func (inj *Injector) RegisterMetrics(r metrics.Registrar) {
	r.Counter("events_fired", func() float64 { return float64(inj.eventsFired.Load()) })
	r.Counter("link_transitions", func() float64 { return float64(inj.linkTransitions.Load()) })
	r.Counter("loss_drops", func() float64 { return float64(inj.lossDrops.Load()) })
	r.Counter("burst_drops", func() float64 { return float64(inj.burstDrops.Load()) })
	r.Counter("corrupt_drops", func() float64 { return float64(inj.corruptDrops.Load()) })
	r.Counter("degrades", func() float64 { return float64(inj.degrades.Load()) })
	r.Counter("stalls", func() float64 { return float64(inj.stalls.Load()) })
	r.Counter("fw_resets", func() float64 { return float64(inj.fwResets.Load()) })
	r.Counter("queue_stalls", func() float64 { return float64(inj.queueStalls.Load()) })
	r.Counter("poller_stalls", func() float64 { return float64(inj.pollerStalls.Load()) })
}
