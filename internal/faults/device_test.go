package faults

import (
	"strings"
	"testing"
	"time"

	"ioctopus/internal/device"
	"ioctopus/internal/eth"
	"ioctopus/internal/interconnect"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/nic"
	"ioctopus/internal/pcie"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// devRig extends the base rig with what the device-fault kinds need: a
// loaded firmware, one queue pair on PF0 and a busy-poll loop pinned to
// a node-0 core.
type devRig struct {
	eng    *sim.Engine
	nic    *nic.NIC
	fw     nic.Firmware
	k      *kernel.Kernel
	poller *kernel.Poller
}

func newDevRig(t *testing.T) *devRig {
	t.Helper()
	e := sim.NewEngine()
	topo := topology.DualBroadwell()
	fab := interconnect.New(e, topo)
	mem := memsys.New(e, topo, fab, memsys.DefaultParams())
	pc := pcie.New(e, mem, pcie.DefaultParams())
	eps := pc.AttachCard(pcie.CardConfig{
		Name: "cx5", Gen: pcie.Gen3, TotalLanes: 16,
		Wiring: pcie.WiringBifurcated, Nodes: []topology.NodeID{0, 1},
	})
	n := nic.New(e, mem, "cx5", eps, nic.DefaultParams())
	fw := nic.NewOctoFirmware(n, false)
	n.LoadFirmware(fw)
	pf0 := n.PF(0)
	var bufs []*memsys.Buffer
	for i := 0; i < 8; i++ {
		bufs = append(bufs, mem.NewBuffer("rxbuf", 0, 64*1024))
	}
	pf0.AddRxQueue(device.NewRing(mem, "rxc", 0, 1024, 64), bufs, 0, nil)
	pf0.AddTxQueue(device.NewRing(mem, "txd", 0, 1024, 64), device.NewRing(mem, "txc", 0, 1024, 64), 0, nil)
	k := kernel.New(e, topo, mem, kernel.DefaultParams())
	p := k.Core(0).StartPoller("test", func() time.Duration { return time.Microsecond })
	return &devRig{eng: e, nic: n, fw: fw, k: k, poller: p}
}

func (r *devRig) targets() Targets {
	return Targets{Engine: r.eng, NIC: r.nic, Kernel: r.k, Pollers: []*kernel.Poller{r.poller}}
}

func TestValidateRejectsMalformedDeviceEvents(t *testing.T) {
	r := newDevRig(t)
	ms := time.Millisecond
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"queue-stall unknown pf", Event{Kind: QueueStall, PF: 9, Duration: ms}, "no PF 9"},
		{"queue-stall unknown queue", Event{Kind: QueueStall, PF: 0, Queue: 7, Duration: ms}, "no queue 7"},
		{"queue-stall negative queue", Event{Kind: QueueStall, PF: 0, Queue: -1, Duration: ms}, "no queue -1"},
		{"queue-stall without duration", Event{Kind: QueueStall, PF: 0, Queue: 0}, "positive duration"},
		{"poller-stall wrong node", Event{Kind: PollerStall, Node: 1, Duration: ms}, "no busy-poll loop on node 1"},
		{"poller-stall without duration", Event{Kind: PollerStall, Node: 0}, "positive duration"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Arm(&Plan{Events: []Event{c.ev}}, r.targets())
			if err == nil {
				t.Fatalf("Arm accepted %+v", c.ev)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestValidateRejectsDeviceEventsWithoutTargets(t *testing.T) {
	eng := sim.NewEngine()
	ms := time.Millisecond
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"fw-reset without nic", Event{Kind: FirmwareReset}, "no NIC target"},
		{"queue-stall without nic", Event{Kind: QueueStall, Duration: ms}, "no NIC target"},
		{"poller-stall without pollers", Event{Kind: PollerStall, Duration: ms}, "no busy-poll loop on node 0"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Arm(&Plan{Events: []Event{c.ev}}, Targets{Engine: eng})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
}

// TestValidateScheduleDeviceWindows: queue stalls and poller wedges are
// windowed state — two windows racing over one queue pair (or one
// node's poll loop) must be rejected, while independent targets and the
// instantaneous fw-reset compose freely.
func TestValidateScheduleDeviceWindows(t *testing.T) {
	ms := time.Millisecond
	reject := []struct {
		name string
		evs  []Event
		want string
	}{
		{"overlapping queue stalls same pair", []Event{
			{At: 0, Kind: QueueStall, PF: 0, Queue: 0, Duration: 2 * ms},
			{At: ms, Kind: QueueStall, PF: 0, Queue: 0, Duration: 2 * ms},
		}, "overlapping"},
		{"overlapping poller stalls same node", []Event{
			{At: 0, Kind: PollerStall, Node: 0, Duration: 2 * ms},
			{At: ms, Kind: PollerStall, Node: 0, Duration: 2 * ms},
		}, "overlapping"},
	}
	for _, c := range reject {
		t.Run(c.name, func(t *testing.T) {
			err := (&Plan{Events: c.evs}).ValidateSchedule()
			if err == nil {
				t.Fatalf("ValidateSchedule accepted %+v", c.evs)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}

	accept := []struct {
		name string
		evs  []Event
	}{
		{"overlapping queue stalls different queues", []Event{
			{At: 0, Kind: QueueStall, PF: 0, Queue: 0, Duration: 2 * ms},
			{At: ms, Kind: QueueStall, PF: 0, Queue: 1, Duration: 2 * ms},
		}},
		{"overlapping queue stalls different pfs", []Event{
			{At: 0, Kind: QueueStall, PF: 0, Queue: 0, Duration: 2 * ms},
			{At: ms, Kind: QueueStall, PF: 1, Queue: 0, Duration: 2 * ms},
		}},
		{"overlapping poller stalls different nodes", []Event{
			{At: 0, Kind: PollerStall, Node: 0, Duration: 2 * ms},
			{At: ms, Kind: PollerStall, Node: 1, Duration: 2 * ms},
		}},
		{"fw-resets are instantaneous", []Event{
			{At: 0, Kind: FirmwareReset},
			{At: 0, Kind: FirmwareReset},
		}},
		{"fw-reset inside a queue stall", []Event{
			{At: 0, Kind: QueueStall, PF: 0, Queue: 0, Duration: 2 * ms},
			{At: ms, Kind: FirmwareReset},
		}},
	}
	for _, c := range accept {
		t.Run(c.name, func(t *testing.T) {
			if err := (&Plan{Events: c.evs}).ValidateSchedule(); err != nil {
				t.Fatalf("ValidateSchedule rejected a sound schedule: %v", err)
			}
		})
	}
}

// TestDeviceFaultsArmAndFire drives all three device kinds through one
// armed plan and checks each hit its target: the firmware table is
// wiped, the queue pair stalls exactly for its window, and the poll
// loop's iteration counter goes flat for the wedge.
func TestDeviceFaultsArmAndFire(t *testing.T) {
	r := newDevRig(t)
	r.fw.ProgramFlow(eth.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: eth.ProtoTCP}, 0, 0)
	plan := &Plan{Events: []Event{
		{At: time.Millisecond, Kind: FirmwareReset},
		{At: time.Millisecond, Kind: QueueStall, PF: 0, Queue: 0, Duration: 2 * time.Millisecond},
		{At: time.Millisecond, Kind: PollerStall, Node: 0, Duration: 2 * time.Millisecond},
	}}
	inj, err := Arm(plan, r.targets())
	if err != nil {
		t.Fatalf("Arm: %v", err)
	}

	r.eng.RunFor(2 * time.Millisecond) // t=2ms: mid-window
	if r.fw.FlowCount() != 0 || r.nic.FwResets() != 1 {
		t.Fatalf("fw reset did not bite: flows=%d resets=%d", r.fw.FlowCount(), r.nic.FwResets())
	}
	if !r.nic.PF(0).RxQueues()[0].Stalled() {
		t.Fatal("queue pair should be stalled mid-window")
	}
	iterAtWedge := r.poller.Iterations()

	r.eng.RunFor(500 * time.Microsecond) // still inside the wedge
	if got := r.poller.Iterations(); got != iterAtWedge {
		t.Fatalf("poll loop advanced %d iterations while wedged", got-iterAtWedge)
	}

	r.eng.RunFor(2 * time.Millisecond) // t=4.5ms: everything released
	if r.nic.PF(0).RxQueues()[0].Stalled() {
		t.Fatal("queue stall outlived its window")
	}
	if r.poller.Iterations() == iterAtWedge {
		t.Fatal("poll loop never resumed after the wedge")
	}
	if inj.FwResets() != 1 || inj.QueueStalls() != 1 || inj.PollerStalls() != 1 {
		t.Fatalf("injector counters fw=%d qs=%d ps=%d, want 1/1/1",
			inj.FwResets(), inj.QueueStalls(), inj.PollerStalls())
	}
	if inj.EventsFired() != 3 {
		t.Fatalf("events fired = %d, want 3", inj.EventsFired())
	}
	r.poller.Stop()
}
