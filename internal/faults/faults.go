// Package faults is the deterministic fault-injection subsystem: a
// seed-driven schedule of failures armed against an assembled system.
// The paper's core resilience claim (§2.5) — the octopus device can
// migrate every flow to the surviving PF when a port dies — is only
// testable in a world where ports actually die, so this package teaches
// the simulation to break things on purpose:
//
//   - NIC PF link-down, link-up and link-flap (the device keeps its
//     PCIe side alive, so rings drain while frames die at the port);
//   - probabilistic, burst, and corruption loss on the Ethernet wire;
//   - interconnect degradation (bandwidth cut / latency inflation on a
//     fabric link, applied and restored mid-run);
//   - core stalls (SMI/thermal events; a long stall is a core gone
//     offline).
//
// Everything is scheduled on the simulation engine from a Plan whose
// Seed forks the loss RNG, so the same plan against the same cluster
// produces byte-identical runs. An empty plan arms nothing and leaves
// every hot path exactly as fast as an un-faulted build: the hooks this
// package drives are nil/false-checked defaults in their home packages.
package faults

import (
	"sync/atomic"

	"fmt"
	"sort"
	"time"

	"ioctopus/internal/eth"
	"ioctopus/internal/interconnect"
	"ioctopus/internal/kernel"
	"ioctopus/internal/nic"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// Kind is a fault type.
type Kind int

// Fault kinds.
const (
	// LinkDown takes a NIC PF's link down at At.
	LinkDown Kind = iota
	// LinkUp restores a PF's link at At.
	LinkUp
	// LinkFlap takes the link down at At and back up at At+Duration.
	LinkFlap
	// Loss drops each frame on a wire direction with probability Prob
	// during [At, At+Duration).
	Loss
	// Burst drops every frame on a wire direction during
	// [At, At+Duration) (a contiguous loss burst).
	Burst
	// Corrupt flips bits with probability Prob during [At, At+Duration);
	// at segment granularity a corrupted frame fails FCS at the receiver
	// and is discarded, so it behaves as loss but is counted separately.
	Corrupt
	// Degrade scales a fabric link's bandwidth (BWFactor) and base
	// latency (LatFactor) during [At, At+Duration), restoring the
	// healthy values at the end.
	Degrade
	// Stall occupies a core with non-preemptible busywork for Duration
	// starting at At; a Duration longer than the run models the core
	// going offline.
	Stall
	// FirmwareReset wipes the server NIC's steering tables at At: every
	// programmed flow rule vanishes and SteerRx degrades to the
	// firmware's fallback (RSS / MAC-only) until the drivers replay
	// their journaled rules.
	FirmwareReset
	// QueueStall freezes completion delivery on one queue pair (PF,
	// Queue) during [At, At+Duration): DMA still lands and descriptors
	// are still consumed, but completion writebacks are held
	// device-side until the window ends or the driver resets the queue.
	QueueStall
	// PollerStall wedges the busy-poll loops on server node Node for
	// Duration starting at At — a hung device read burning the
	// dedicated poll core (busypoll datapath only).
	PollerStall
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case LinkFlap:
		return "link-flap"
	case Loss:
		return "loss"
	case Burst:
		return "burst"
	case Corrupt:
		return "corrupt"
	case Degrade:
		return "degrade"
	case Stall:
		return "stall"
	case FirmwareReset:
		return "fw-reset"
	case QueueStall:
		return "queue-stall"
	case PollerStall:
		return "poller-stall"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Dir selects a wire direction for loss faults.
type Dir int

// Wire directions.
const (
	// ClientToServer drops frames the client transmits.
	ClientToServer Dir = iota
	// ServerToClient drops frames the server transmits.
	ServerToClient
)

// Event is one scheduled fault.
type Event struct {
	// At is the fault's offset from the instant the plan is armed.
	At time.Duration
	// Kind selects the fault; the remaining fields parameterize it.
	Kind Kind
	// PF targets a NIC physical function (LinkDown/LinkUp/LinkFlap).
	PF int
	// Duration is the fault window (LinkFlap/Loss/Burst/Corrupt/
	// Degrade/Stall).
	Duration time.Duration
	// Prob is the per-frame probability (Loss/Corrupt).
	Prob float64
	// Dir is the wire direction (Loss/Burst/Corrupt).
	Dir Dir
	// From/To name the fabric link (Degrade).
	From, To topology.NodeID
	// BWFactor/LatFactor scale the link (Degrade).
	BWFactor, LatFactor float64
	// Core is the stall target (Stall).
	Core topology.CoreID
	// Queue is the per-PF queue index (QueueStall).
	Queue int
	// Node is the server NUMA node whose poll loops wedge (PollerStall).
	Node topology.NodeID
}

// Plan is a seeded fault schedule.
type Plan struct {
	// Seed forks the loss RNG; the same seed and events replay
	// byte-identically.
	Seed int64
	// Events fire relative to the arm instant, in any order.
	Events []Event
}

// Targets binds a plan to the pieces of an assembled system it acts on.
type Targets struct {
	// Engine schedules the fault events.
	Engine *sim.Engine
	// ClientEngine, when the cluster is sharded, is the client host's
	// engine: loss/burst/corrupt windows in the ClientToServer direction
	// are scheduled there, so the state the client-side wire filter
	// reads is only ever touched by its own shard. Nil means Engine.
	ClientEngine *sim.Engine
	// NIC is the multi-PF device link faults act on.
	NIC *nic.NIC
	// Wire carries the loss faults; ServerPort/ClientPort identify its
	// two ends (the sending side selects the direction).
	Wire       *eth.Wire
	ServerPort eth.Port
	ClientPort eth.Port
	// Fabric takes the interconnect degradations.
	Fabric *interconnect.Fabric
	// Kernel takes the core stalls.
	Kernel *kernel.Kernel
	// Pollers are the server drivers' busy-poll loops (busypoll
	// datapath only, empty otherwise); PollerStall wedges every loop
	// pinned to the targeted node — a hung core hangs all of them.
	Pollers []*kernel.Poller
}

// winKey identifies the piece of mutable fault state a windowed event
// arms and disarms: loss/corrupt/burst probability per wire direction,
// the degradation of one fabric link, or one PF's link state. Two
// windows with the same key must not overlap — the first window's end
// event would disarm (or re-arm) state the second window still owns.
type winKey struct {
	kind Kind
	a, b int
}

// stateKey maps an event to the state it owns, and whether it is
// windowed at all (Stall occupies a core queue, it owns no shared
// toggle; LinkDown/LinkUp are edges, handled separately).
func stateKey(ev Event) (winKey, bool) {
	switch ev.Kind {
	case Loss, Burst, Corrupt:
		return winKey{kind: ev.Kind, a: int(ev.Dir)}, true
	case Degrade:
		return winKey{kind: Degrade, a: int(ev.From), b: int(ev.To)}, true
	case LinkFlap:
		return winKey{kind: LinkFlap, a: ev.PF}, true
	case QueueStall:
		return winKey{kind: QueueStall, a: ev.PF, b: ev.Queue}, true
	case PollerStall:
		// A wedge is one long iteration, not a toggle, but two wedges of
		// the same node's loops inside one window would stack into a
		// longer outage than either event describes; reject the overlap.
		return winKey{kind: PollerStall, a: int(ev.Node)}, true
	default:
		return winKey{}, false
	}
}

// String names the state a key guards, for error messages.
func (k winKey) String() string {
	switch k.kind {
	case Loss, Burst, Corrupt:
		return fmt.Sprintf("%s windows on direction %d", k.kind, k.a)
	case Degrade:
		return fmt.Sprintf("degrade windows on link %d->%d", k.a, k.b)
	case QueueStall:
		return fmt.Sprintf("queue-stall windows on PF %d queue %d", k.a, k.b)
	case PollerStall:
		return fmt.Sprintf("poller-stall windows on node %d", k.a)
	default:
		return fmt.Sprintf("link-flap windows on PF %d", k.a)
	}
}

// ValidateSchedule rejects schedules whose windowed events fight over
// the same state: two overlapping loss windows on one wire direction
// (the first window's end event would zero the probability mid-way
// through the second), overlapping degradations of the same fabric
// link (the first restore resets the link while the second degradation
// is live), overlapping flaps of one PF, and discrete link-up/down
// events landing inside a flap window on the same PF. It needs no
// targets, so plan generators can vet schedules before a cluster
// exists; Validate (and therefore Arm) always includes it.
func (p *Plan) ValidateSchedule() error {
	type win struct {
		idx      int
		from, to time.Duration
	}
	wins := map[winKey][]win{}
	for i, ev := range p.Events {
		if k, ok := stateKey(ev); ok && ev.Duration > 0 {
			wins[k] = append(wins[k], win{idx: i, from: ev.At, to: ev.At + ev.Duration})
		}
	}
	keys := make([]winKey, 0, len(wins))
	for k := range wins {
		keys = append(keys, k)
	}
	// Sorted keys keep the reported pair stable when several groups
	// overlap: the error is part of rendered output.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		ws := wins[k]
		for i := 0; i < len(ws); i++ {
			for j := i + 1; j < len(ws); j++ {
				// Half-open windows [from,to): back-to-back is fine,
				// any true overlap is not.
				if ws[i].from < ws[j].to && ws[j].from < ws[i].to {
					return fmt.Errorf("faults: events %d and %d: overlapping %s",
						ws[i].idx, ws[j].idx, k)
				}
			}
		}
	}
	// Discrete link transitions inside a flap window on the same PF
	// would flip the link under the flap's feet (an early link-up undoes
	// the outage; the flap's own restore then masks the discrete down).
	for i, ev := range p.Events {
		if ev.Kind != LinkDown && ev.Kind != LinkUp {
			continue
		}
		for _, w := range wins[winKey{kind: LinkFlap, a: ev.PF}] {
			if ev.At > w.from && ev.At < w.to {
				return fmt.Errorf("faults: event %d (%s) fires inside event %d's link-flap window on PF %d",
					i, ev.Kind, w.idx, ev.PF)
			}
		}
	}
	return nil
}

// Validate rejects malformed plans up front (probabilities out of
// range, unknown PFs, degenerate windows, windows racing for the same
// state) so faults never fire half configured mid-run.
func (p *Plan) Validate(tg Targets) error {
	for i, ev := range p.Events {
		if ev.At < 0 {
			return fmt.Errorf("faults: event %d (%s): negative offset %v", i, ev.Kind, ev.At)
		}
		switch ev.Kind {
		case LinkDown, LinkUp, LinkFlap:
			if tg.NIC == nil {
				return fmt.Errorf("faults: event %d (%s): no NIC target", i, ev.Kind)
			}
			if ev.PF < 0 || ev.PF >= len(tg.NIC.PFs()) {
				return fmt.Errorf("faults: event %d (%s): NIC %s has no PF %d", i, ev.Kind, tg.NIC.Name(), ev.PF)
			}
			if ev.Kind == LinkFlap && ev.Duration <= 0 {
				return fmt.Errorf("faults: event %d (link-flap): needs positive duration", i)
			}
		case Loss, Corrupt:
			if tg.Wire == nil {
				return fmt.Errorf("faults: event %d (%s): no wire target", i, ev.Kind)
			}
			if ev.Prob < 0 || ev.Prob > 1 {
				return fmt.Errorf("faults: event %d (%s): probability %v out of [0,1]", i, ev.Kind, ev.Prob)
			}
			if ev.Duration <= 0 {
				return fmt.Errorf("faults: event %d (%s): needs positive duration", i, ev.Kind)
			}
		case Burst:
			if tg.Wire == nil {
				return fmt.Errorf("faults: event %d (burst): no wire target", i)
			}
			if ev.Duration <= 0 {
				return fmt.Errorf("faults: event %d (burst): needs positive duration", i)
			}
		case Degrade:
			if tg.Fabric == nil {
				return fmt.Errorf("faults: event %d (degrade): no fabric target", i)
			}
			if ev.From == ev.To {
				return fmt.Errorf("faults: event %d (degrade): link %d->%d is not a fabric link", i, ev.From, ev.To)
			}
			if int(ev.From) < 0 || int(ev.From) >= tg.Fabric.Nodes() || int(ev.To) < 0 || int(ev.To) >= tg.Fabric.Nodes() {
				return fmt.Errorf("faults: event %d (degrade): link %d->%d outside %d-node fabric", i, ev.From, ev.To, tg.Fabric.Nodes())
			}
			if ev.BWFactor <= 0 || ev.LatFactor <= 0 {
				return fmt.Errorf("faults: event %d (degrade): factors must be positive (bw=%v lat=%v)", i, ev.BWFactor, ev.LatFactor)
			}
			if ev.Duration <= 0 {
				return fmt.Errorf("faults: event %d (degrade): needs positive duration", i)
			}
		case Stall:
			if tg.Kernel == nil {
				return fmt.Errorf("faults: event %d (stall): no kernel target", i)
			}
			if int(ev.Core) < 0 || int(ev.Core) >= tg.Kernel.NumCores() {
				return fmt.Errorf("faults: event %d (stall): no core %d", i, ev.Core)
			}
			if ev.Duration <= 0 {
				return fmt.Errorf("faults: event %d (stall): needs positive duration", i)
			}
		case FirmwareReset:
			if tg.NIC == nil {
				return fmt.Errorf("faults: event %d (fw-reset): no NIC target", i)
			}
		case QueueStall:
			if tg.NIC == nil {
				return fmt.Errorf("faults: event %d (queue-stall): no NIC target", i)
			}
			if ev.PF < 0 || ev.PF >= len(tg.NIC.PFs()) {
				return fmt.Errorf("faults: event %d (queue-stall): NIC %s has no PF %d", i, tg.NIC.Name(), ev.PF)
			}
			if nq := len(tg.NIC.PF(ev.PF).RxQueues()); ev.Queue < 0 || ev.Queue >= nq {
				return fmt.Errorf("faults: event %d (queue-stall): PF %d has %d queue pairs, no queue %d",
					i, ev.PF, nq, ev.Queue)
			}
			if ev.Duration <= 0 {
				return fmt.Errorf("faults: event %d (queue-stall): needs positive duration", i)
			}
		case PollerStall:
			found := false
			for _, pl := range tg.Pollers {
				if pl != nil && pl.Node() == ev.Node {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("faults: event %d (poller-stall): no busy-poll loop on node %d (the busypoll datapath runs one per node; interrupt and hybrid runs have none)",
					i, ev.Node)
			}
			if ev.Duration <= 0 {
				return fmt.Errorf("faults: event %d (poller-stall): needs positive duration", i)
			}
		default:
			return fmt.Errorf("faults: event %d: unknown kind %d", i, int(ev.Kind))
		}
	}
	return p.ValidateSchedule()
}

// dirState is one wire direction's active loss configuration, mutated
// by scheduled window starts/ends and read by the installed filter.
type dirState struct {
	inj         *Injector
	rng         *sim.RNG
	lossProb    float64
	corruptProb float64
	burst       bool
}

// filter implements eth.FaultFilter for one direction.
func (ds *dirState) filter(f *eth.Frame) bool {
	if ds.burst {
		ds.inj.burstDrops.Add(1)
		return true
	}
	// Bernoulli(p<=0) returns false without consuming the stream, so a
	// direction between windows draws nothing and stays in lockstep
	// with a run whose windows fire at different times.
	if ds.rng.Bernoulli(ds.lossProb) {
		ds.inj.lossDrops.Add(1)
		return true
	}
	if ds.rng.Bernoulli(ds.corruptProb) {
		ds.inj.corruptDrops.Add(1)
		return true
	}
	return false
}

// Injector is an armed plan: the scheduled events plus the counters
// they bump as they fire. Counters are atomic because on a sharded
// cluster the two wire directions' filters (and their window events)
// run on different shards concurrently; the totals are still
// deterministic — the same frames are dropped either way.
type Injector struct {
	plan *Plan
	tg   Targets

	c2s, s2c *dirState

	// Counters are bumped from both wire directions, which under -shards
	// run on different goroutines.
	// octolint:shard-shared
	eventsFired atomic.Uint64
	// octolint:shard-shared
	linkTransitions atomic.Uint64
	// octolint:shard-shared
	lossDrops atomic.Uint64
	// octolint:shard-shared
	burstDrops atomic.Uint64
	// octolint:shard-shared
	corruptDrops atomic.Uint64
	// octolint:shard-shared
	degrades atomic.Uint64
	// octolint:shard-shared
	stalls atomic.Uint64
	// octolint:shard-shared
	fwResets atomic.Uint64
	// octolint:shard-shared
	queueStalls atomic.Uint64
	// octolint:shard-shared
	pollerStalls atomic.Uint64
}

// engFor picks the engine owning a wire direction's sending side.
func (tg Targets) engFor(d Dir) *sim.Engine {
	if d == ClientToServer && tg.ClientEngine != nil {
		return tg.ClientEngine
	}
	return tg.Engine
}

// Arm validates the plan and schedules every event on the engine,
// relative to now. Wire filters are installed only for directions the
// plan actually targets, so an unarmed direction keeps its nil filter
// (one pointer compare per frame, the no-fault fast path).
func Arm(plan *Plan, tg Targets) (*Injector, error) {
	if tg.Engine == nil {
		return nil, fmt.Errorf("faults: Arm needs an engine")
	}
	if err := plan.Validate(tg); err != nil {
		return nil, err
	}
	inj := &Injector{plan: plan, tg: tg}
	root := sim.NewRNG(plan.Seed)
	for i := range plan.Events {
		ev := plan.Events[i] // copy: the closure must not alias the slice
		switch ev.Kind {
		case LinkDown:
			tg.Engine.After(ev.At, func() { inj.setLink(ev.PF, false) })
		case LinkUp:
			tg.Engine.After(ev.At, func() { inj.setLink(ev.PF, true) })
		case LinkFlap:
			tg.Engine.After(ev.At, func() { inj.setLink(ev.PF, false) })
			tg.Engine.After(ev.At+ev.Duration, func() { inj.setLink(ev.PF, true) })
		case Loss:
			// Window flips run on the engine whose shard reads the state
			// (the direction's sending side).
			eng := tg.engFor(ev.Dir)
			ds := inj.dir(ev.Dir, root)
			p := ev.Prob
			eng.After(ev.At, func() { inj.eventsFired.Add(1); ds.lossProb = p })
			eng.After(ev.At+ev.Duration, func() { ds.lossProb = 0 })
		case Corrupt:
			eng := tg.engFor(ev.Dir)
			ds := inj.dir(ev.Dir, root)
			p := ev.Prob
			eng.After(ev.At, func() { inj.eventsFired.Add(1); ds.corruptProb = p })
			eng.After(ev.At+ev.Duration, func() { ds.corruptProb = 0 })
		case Burst:
			eng := tg.engFor(ev.Dir)
			ds := inj.dir(ev.Dir, root)
			eng.After(ev.At, func() { inj.eventsFired.Add(1); ds.burst = true })
			eng.After(ev.At+ev.Duration, func() { ds.burst = false })
		case Degrade:
			tg.Engine.After(ev.At, func() {
				inj.eventsFired.Add(1)
				inj.degrades.Add(1)
				tg.Fabric.Degrade(ev.From, ev.To, ev.BWFactor, ev.LatFactor)
			})
			tg.Engine.After(ev.At+ev.Duration, func() {
				tg.Fabric.Degrade(ev.From, ev.To, 1, 1)
			})
		case Stall:
			tg.Engine.After(ev.At, func() {
				inj.eventsFired.Add(1)
				inj.stalls.Add(1)
				tg.Kernel.Core(ev.Core).Stall(ev.Duration)
			})
		case FirmwareReset:
			tg.Engine.After(ev.At, func() {
				inj.eventsFired.Add(1)
				inj.fwResets.Add(1)
				tg.NIC.ResetFirmware()
			})
		case QueueStall:
			tg.Engine.After(ev.At, func() {
				inj.eventsFired.Add(1)
				inj.queueStalls.Add(1)
				tg.NIC.SetQueueStall(ev.PF, ev.Queue, true)
			})
			tg.Engine.After(ev.At+ev.Duration, func() {
				tg.NIC.SetQueueStall(ev.PF, ev.Queue, false)
			})
		case PollerStall:
			tg.Engine.After(ev.At, func() {
				inj.eventsFired.Add(1)
				inj.pollerStalls.Add(1)
				for _, pl := range tg.Pollers {
					if pl != nil && pl.Node() == ev.Node {
						pl.Wedge(ev.Duration)
					}
				}
			})
		}
	}
	return inj, nil
}

// setLink flips a PF's link and counts the transition.
func (inj *Injector) setLink(pf int, up bool) {
	inj.eventsFired.Add(1)
	inj.linkTransitions.Add(1)
	inj.tg.NIC.SetPFLink(pf, up)
}

// dir lazily creates a direction's loss state and installs its wire
// filter; the RNG fork id is the direction, so the two streams are
// decorrelated but each is a pure function of the plan seed.
func (inj *Injector) dir(d Dir, root *sim.RNG) *dirState {
	switch d {
	case ClientToServer:
		if inj.c2s == nil {
			inj.c2s = &dirState{inj: inj, rng: root.Fork(1)}
			inj.tg.Wire.SetFaultFilter(inj.tg.ClientPort, inj.c2s.filter)
		}
		return inj.c2s
	default:
		if inj.s2c == nil {
			inj.s2c = &dirState{inj: inj, rng: root.Fork(2)}
			inj.tg.Wire.SetFaultFilter(inj.tg.ServerPort, inj.s2c.filter)
		}
		return inj.s2c
	}
}

// EventsFired returns fault activations so far.
func (inj *Injector) EventsFired() uint64 { return inj.eventsFired.Load() }

// LossDrops returns frames dropped by probabilistic loss windows.
func (inj *Injector) LossDrops() uint64 { return inj.lossDrops.Load() }

// BurstDrops returns frames dropped by burst windows.
func (inj *Injector) BurstDrops() uint64 { return inj.burstDrops.Load() }

// CorruptDrops returns frames discarded as corrupted.
func (inj *Injector) CorruptDrops() uint64 { return inj.corruptDrops.Load() }

// LinkTransitions returns PF link state flips performed.
func (inj *Injector) LinkTransitions() uint64 { return inj.linkTransitions.Load() }

// FwResets returns firmware table wipes performed.
func (inj *Injector) FwResets() uint64 { return inj.fwResets.Load() }

// QueueStalls returns queue-stall windows opened.
func (inj *Injector) QueueStalls() uint64 { return inj.queueStalls.Load() }

// PollerStalls returns poller wedges injected.
func (inj *Injector) PollerStalls() uint64 { return inj.pollerStalls.Load() }

// TotalWireDrops returns every frame the injector removed from a wire.
func (inj *Injector) TotalWireDrops() uint64 {
	return inj.lossDrops.Load() + inj.burstDrops.Load() + inj.corruptDrops.Load()
}
