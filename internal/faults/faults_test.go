package faults

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"ioctopus/internal/eth"
	"ioctopus/internal/interconnect"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/nic"
	"ioctopus/internal/pcie"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// stubPort is a wire endpoint that just records delivered frames.
type stubPort struct {
	mac eth.MAC
	got []*eth.Frame
}

func (p *stubPort) Receive(f *eth.Frame) { p.got = append(p.got, f) }
func (p *stubPort) PortMAC() eth.MAC     { return p.mac }
func (p *stubPort) Engine() *sim.Engine  { return nil }

// rig assembles every fault target once: a 2-PF NIC for link faults, a
// wire between two stub ports for loss faults, a fabric for degradation
// and a kernel for stalls. Traffic for the wire tests flows between the
// stubs, so no firmware or queues are needed on the NIC.
type rig struct {
	eng    *sim.Engine
	nic    *nic.NIC
	wire   *eth.Wire
	server *stubPort
	client *stubPort
	fab    *interconnect.Fabric
	k      *kernel.Kernel
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.NewEngine()
	topo := topology.DualBroadwell()
	fab := interconnect.New(e, topo)
	mem := memsys.New(e, topo, fab, memsys.DefaultParams())
	pf := pcie.New(e, mem, pcie.DefaultParams())
	eps := pf.AttachCard(pcie.CardConfig{
		Name: "cx5", Gen: pcie.Gen3, TotalLanes: 16,
		Wiring: pcie.WiringBifurcated, Nodes: []topology.NodeID{0, 1},
	})
	n := nic.New(e, mem, "cx5", eps, nic.DefaultParams())
	k := kernel.New(e, topo, mem, kernel.DefaultParams())
	server := &stubPort{mac: eth.MACFromInt(1)}
	client := &stubPort{mac: eth.MACFromInt(2)}
	w := eth.NewWire(e, eth.Wire100G("w"), server, client)
	return &rig{eng: e, nic: n, wire: w, server: server, client: client, fab: fab, k: k}
}

func (r *rig) targets() Targets {
	return Targets{
		Engine: r.eng, NIC: r.nic,
		Wire: r.wire, ServerPort: r.server, ClientPort: r.client,
		Fabric: r.fab, Kernel: r.k,
	}
}

// send puts one client->server (or server->client) frame on the wire.
func (r *rig) send(d Dir, seq uint64) {
	f := &eth.Frame{Payload: 100, Packets: 1, Seq: seq}
	if d == ClientToServer {
		f.Src, f.Dst = r.client.mac, r.server.mac
		r.wire.Send(r.client, f)
		return
	}
	f.Src, f.Dst = r.server.mac, r.client.mac
	r.wire.Send(r.server, f)
}

func TestValidateRejectsMalformedEvents(t *testing.T) {
	r := newRig(t)
	ms := time.Millisecond
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"negative offset", Event{At: -ms, Kind: LinkDown}, "negative offset"},
		{"unknown pf", Event{Kind: LinkDown, PF: 9}, "no PF 9"},
		{"flap without duration", Event{Kind: LinkFlap}, "positive duration"},
		{"loss prob above one", Event{Kind: Loss, Prob: 1.5, Duration: ms}, "out of [0,1]"},
		{"loss prob negative", Event{Kind: Loss, Prob: -0.1, Duration: ms}, "out of [0,1]"},
		{"loss without duration", Event{Kind: Loss, Prob: 0.5}, "positive duration"},
		{"burst without duration", Event{Kind: Burst}, "positive duration"},
		{"corrupt without duration", Event{Kind: Corrupt, Prob: 0.5}, "positive duration"},
		{"degrade self link", Event{Kind: Degrade, From: 1, To: 1, BWFactor: 0.5, LatFactor: 1, Duration: ms}, "not a fabric link"},
		{"degrade outside fabric", Event{Kind: Degrade, From: 0, To: 7, BWFactor: 0.5, LatFactor: 1, Duration: ms}, "outside"},
		{"degrade zero factor", Event{Kind: Degrade, From: 0, To: 1, BWFactor: 0, LatFactor: 1, Duration: ms}, "positive"},
		{"degrade without duration", Event{Kind: Degrade, From: 0, To: 1, BWFactor: 0.5, LatFactor: 2}, "positive duration"},
		{"stall unknown core", Event{Kind: Stall, Core: 999, Duration: ms}, "no core"},
		{"stall without duration", Event{Kind: Stall, Core: 0}, "positive duration"},
		{"unknown kind", Event{Kind: Kind(99)}, "unknown kind"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Arm(&Plan{Events: []Event{c.ev}}, r.targets())
			if err == nil {
				t.Fatalf("Arm accepted %+v", c.ev)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestValidateRejectsMissingTargets(t *testing.T) {
	eng := sim.NewEngine()
	ms := time.Millisecond
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"link without nic", Event{Kind: LinkDown}, "no NIC target"},
		{"loss without wire", Event{Kind: Loss, Prob: 0.5, Duration: ms}, "no wire target"},
		{"burst without wire", Event{Kind: Burst, Duration: ms}, "no wire target"},
		{"degrade without fabric", Event{Kind: Degrade, From: 0, To: 1, BWFactor: 0.5, LatFactor: 1, Duration: ms}, "no fabric target"},
		{"stall without kernel", Event{Kind: Stall, Core: 0, Duration: ms}, "no kernel target"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Arm(&Plan{Events: []Event{c.ev}}, Targets{Engine: eng})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
	if _, err := Arm(&Plan{}, Targets{}); err == nil {
		t.Fatal("Arm without an engine must fail")
	}
}

func TestEmptyPlanArmsNothing(t *testing.T) {
	r := newRig(t)
	inj, err := Arm(&Plan{Seed: 7}, r.targets())
	if err != nil {
		t.Fatalf("Arm: %v", err)
	}
	r.send(ClientToServer, 1)
	r.eng.RunFor(time.Millisecond)
	if inj.EventsFired() != 0 || inj.TotalWireDrops() != 0 {
		t.Fatalf("empty plan fired events: %d fired, %d drops", inj.EventsFired(), inj.TotalWireDrops())
	}
	// No direction was targeted, so no filter state was built: the wire
	// keeps its nil-filter fast path.
	if inj.c2s != nil || inj.s2c != nil {
		t.Fatal("empty plan must not install wire filters")
	}
	if len(r.server.got) != 1 {
		t.Fatalf("frame lost without any armed fault: got %d", len(r.server.got))
	}
}

func TestLinkFlapDrivesTransitions(t *testing.T) {
	r := newRig(t)
	plan := &Plan{Events: []Event{
		{At: time.Millisecond, Kind: LinkFlap, PF: 0, Duration: 2 * time.Millisecond},
	}}
	inj, err := Arm(plan, r.targets())
	if err != nil {
		t.Fatalf("Arm: %v", err)
	}
	r.eng.RunFor(2 * time.Millisecond) // t=2ms: inside the outage
	if r.nic.PF(0).LinkUp() {
		t.Fatal("PF0 link should be down mid-flap")
	}
	if r.nic.PF(1).LinkUp() != true {
		t.Fatal("PF1 must be untouched")
	}
	if inj.LinkTransitions() != 1 {
		t.Fatalf("transitions = %d, want 1", inj.LinkTransitions())
	}
	r.eng.RunFor(2 * time.Millisecond) // t=4ms: restored
	if !r.nic.PF(0).LinkUp() {
		t.Fatal("PF0 link should be restored after the flap")
	}
	if inj.LinkTransitions() != 2 || inj.EventsFired() != 2 {
		t.Fatalf("transitions = %d, fired = %d, want 2/2", inj.LinkTransitions(), inj.EventsFired())
	}
}

func TestLinkDownThenUpEvents(t *testing.T) {
	r := newRig(t)
	plan := &Plan{Events: []Event{
		{At: 0, Kind: LinkDown, PF: 1},
		{At: time.Millisecond, Kind: LinkUp, PF: 1},
	}}
	inj, err := Arm(plan, r.targets())
	if err != nil {
		t.Fatalf("Arm: %v", err)
	}
	r.eng.RunFor(500 * time.Microsecond)
	if r.nic.PF(1).LinkUp() {
		t.Fatal("PF1 should be down")
	}
	r.eng.RunFor(time.Millisecond)
	if !r.nic.PF(1).LinkUp() {
		t.Fatal("PF1 should be back up")
	}
	if inj.LinkTransitions() != 2 {
		t.Fatalf("transitions = %d, want 2", inj.LinkTransitions())
	}
}

// lossRun drives 300 spaced frames through a 30% loss window covering
// the first 200 and returns the delivered sequence numbers.
func lossRun(t *testing.T) ([]uint64, uint64) {
	t.Helper()
	r := newRig(t)
	plan := &Plan{Seed: 99, Events: []Event{
		{At: 0, Kind: Loss, Dir: ClientToServer, Prob: 0.3, Duration: 200 * time.Microsecond},
	}}
	inj, err := Arm(plan, r.targets())
	if err != nil {
		t.Fatalf("Arm: %v", err)
	}
	for i := 0; i < 300; i++ {
		seq := uint64(i + 1)
		r.eng.After(time.Duration(i)*time.Microsecond, func() { r.send(ClientToServer, seq) })
	}
	r.eng.RunFor(time.Millisecond)
	var delivered []uint64
	for _, f := range r.server.got {
		delivered = append(delivered, f.Seq)
	}
	return delivered, inj.LossDrops()
}

func TestLossIsSeededAndDeterministic(t *testing.T) {
	gotA, dropsA := lossRun(t)
	gotB, dropsB := lossRun(t)
	if dropsA == 0 || dropsA >= 200 {
		t.Fatalf("drops = %d, want some but not all of the windowed frames", dropsA)
	}
	if dropsA != dropsB || !reflect.DeepEqual(gotA, gotB) {
		t.Fatalf("same seed produced different runs: %d/%d drops, %d/%d delivered",
			dropsA, dropsB, len(gotA), len(gotB))
	}
	// Frames after the window must all survive.
	var after int
	for _, seq := range gotA {
		if seq > 200 {
			after++
		}
	}
	if after != 100 {
		t.Fatalf("post-window frames delivered = %d, want all 100", after)
	}
}

func TestBurstDropsEverythingInWindow(t *testing.T) {
	r := newRig(t)
	plan := &Plan{Events: []Event{
		{At: 100 * time.Microsecond, Kind: Burst, Dir: ServerToClient, Duration: 100 * time.Microsecond},
	}}
	inj, err := Arm(plan, r.targets())
	if err != nil {
		t.Fatalf("Arm: %v", err)
	}
	for _, at := range []time.Duration{50 * time.Microsecond, 150 * time.Microsecond, 250 * time.Microsecond} {
		at := at
		r.eng.After(at, func() { r.send(ServerToClient, uint64(at)) })
	}
	r.eng.RunFor(time.Millisecond)
	if len(r.client.got) != 2 {
		t.Fatalf("delivered = %d, want 2 (outside the burst)", len(r.client.got))
	}
	if inj.BurstDrops() != 1 || inj.TotalWireDrops() != 1 {
		t.Fatalf("burst drops = %d, total = %d, want 1/1", inj.BurstDrops(), inj.TotalWireDrops())
	}
	if r.wire.FaultDrops(r.server) != 1 {
		t.Fatalf("wire-side drop counter = %d, want 1", r.wire.FaultDrops(r.server))
	}
}

func TestCorruptionCountedSeparatelyFromLoss(t *testing.T) {
	r := newRig(t)
	plan := &Plan{Events: []Event{
		{At: 0, Kind: Corrupt, Dir: ClientToServer, Prob: 1, Duration: 100 * time.Microsecond},
	}}
	inj, err := Arm(plan, r.targets())
	if err != nil {
		t.Fatalf("Arm: %v", err)
	}
	for i := 0; i < 10; i++ {
		r.eng.After(time.Duration(i)*time.Microsecond, func() { r.send(ClientToServer, 1) })
	}
	r.eng.RunFor(time.Millisecond)
	if len(r.server.got) != 0 {
		t.Fatalf("delivered = %d, want 0 at corruption prob 1", len(r.server.got))
	}
	if inj.CorruptDrops() != 10 || inj.LossDrops() != 0 {
		t.Fatalf("corrupt = %d, loss = %d, want 10/0", inj.CorruptDrops(), inj.LossDrops())
	}
}

func TestFilterInstalledOnlyForTargetedDirection(t *testing.T) {
	r := newRig(t)
	plan := &Plan{Events: []Event{
		{At: 0, Kind: Burst, Dir: ClientToServer, Duration: time.Millisecond},
	}}
	inj, err := Arm(plan, r.targets())
	if err != nil {
		t.Fatalf("Arm: %v", err)
	}
	r.eng.After(100*time.Microsecond, func() { r.send(ServerToClient, 1) })
	r.eng.RunFor(time.Millisecond)
	if inj.s2c != nil {
		t.Fatal("untargeted direction grew filter state")
	}
	if len(r.client.got) != 1 || r.wire.FaultDrops(r.server) != 0 {
		t.Fatal("untargeted direction lost a frame")
	}
}

func TestDegradeInflatesLinkAndRestores(t *testing.T) {
	r := newRig(t)
	plan := &Plan{Events: []Event{
		{At: time.Millisecond, Kind: Degrade, From: 0, To: 1, BWFactor: 0.5, LatFactor: 2, Duration: time.Millisecond},
	}}
	inj, err := Arm(plan, r.targets())
	if err != nil {
		t.Fatalf("Arm: %v", err)
	}
	healthy := r.fab.Latency(0, 1, 4096)
	r.eng.RunFor(1500 * time.Microsecond) // mid-window
	if got := r.fab.Latency(0, 1, 4096); got <= healthy {
		t.Fatalf("degraded latency %v not above healthy %v", got, healthy)
	}
	r.eng.RunFor(time.Millisecond) // past the window
	if got := r.fab.Latency(0, 1, 4096); got != healthy {
		t.Fatalf("restored latency %v, want healthy %v", got, healthy)
	}
	if inj.degrades.Load() != 1 || inj.EventsFired() != 1 {
		t.Fatalf("degrades = %d, fired = %d, want 1/1", inj.degrades.Load(), inj.EventsFired())
	}
}

func TestStallDelaysQueuedWork(t *testing.T) {
	r := newRig(t)
	plan := &Plan{Events: []Event{
		{At: 0, Kind: Stall, Core: 0, Duration: time.Millisecond},
	}}
	inj, err := Arm(plan, r.targets())
	if err != nil {
		t.Fatalf("Arm: %v", err)
	}
	var doneAt sim.Time
	r.eng.After(100*time.Microsecond, func() {
		r.k.Core(0).SubmitFixed("probe", time.Microsecond, func() { doneAt = r.eng.Now() })
	})
	r.eng.RunFor(5 * time.Millisecond)
	if doneAt == 0 {
		t.Fatal("probe never ran")
	}
	if doneAt < sim.Time(time.Millisecond) {
		t.Fatalf("probe completed at %v, should have waited behind the 1ms stall", doneAt)
	}
	if inj.stalls.Load() != 1 {
		t.Fatalf("stalls = %d, want 1", inj.stalls.Load())
	}
}

// TestValidateScheduleRejectsRacingWindows is the structural-schedule
// table: windowed events that fight over one piece of state (the bug a
// generated plan can hit that a hand-wired one never did — the first
// window's end event disarms state the second window still owns) must
// be rejected, while adjacent or independent windows must pass.
func TestValidateScheduleRejectsRacingWindows(t *testing.T) {
	ms := time.Millisecond
	reject := []struct {
		name string
		evs  []Event
		want string
	}{
		{"overlapping loss same direction", []Event{
			{At: 0, Kind: Loss, Dir: ClientToServer, Prob: 0.1, Duration: 2 * ms},
			{At: ms, Kind: Loss, Dir: ClientToServer, Prob: 0.2, Duration: 2 * ms},
		}, "overlapping loss windows on direction 0"},
		{"overlapping burst same direction", []Event{
			{At: 0, Kind: Burst, Dir: ServerToClient, Duration: 2 * ms},
			{At: ms, Kind: Burst, Dir: ServerToClient, Duration: 2 * ms},
		}, "overlapping burst windows"},
		{"overlapping corrupt same direction", []Event{
			{At: 0, Kind: Corrupt, Dir: ClientToServer, Prob: 0.1, Duration: 2 * ms},
			{At: ms, Kind: Corrupt, Dir: ClientToServer, Prob: 0.1, Duration: 2 * ms},
		}, "overlapping corrupt windows"},
		{"overlapping degrade same link", []Event{
			{At: 0, Kind: Degrade, From: 0, To: 1, BWFactor: 0.5, LatFactor: 2, Duration: 2 * ms},
			{At: ms, Kind: Degrade, From: 0, To: 1, BWFactor: 0.7, LatFactor: 2, Duration: 2 * ms},
		}, "overlapping degrade windows on link 0->1"},
		{"overlapping flap same pf", []Event{
			{At: 0, Kind: LinkFlap, PF: 0, Duration: 2 * ms},
			{At: ms, Kind: LinkFlap, PF: 0, Duration: 2 * ms},
		}, "overlapping link-flap windows on PF 0"},
		{"containment counts as overlap", []Event{
			{At: 0, Kind: Loss, Dir: ClientToServer, Prob: 0.1, Duration: 10 * ms},
			{At: 2 * ms, Kind: Loss, Dir: ClientToServer, Prob: 0.2, Duration: ms},
		}, "overlapping loss windows"},
		{"link-up inside flap window", []Event{
			{At: 0, Kind: LinkFlap, PF: 0, Duration: 2 * ms},
			{At: ms, Kind: LinkUp, PF: 0},
		}, "fires inside"},
		{"link-down inside flap window", []Event{
			{At: 0, Kind: LinkFlap, PF: 1, Duration: 2 * ms},
			{At: ms, Kind: LinkDown, PF: 1},
		}, "fires inside"},
	}
	for _, c := range reject {
		t.Run(c.name, func(t *testing.T) {
			err := (&Plan{Events: c.evs}).ValidateSchedule()
			if err == nil {
				t.Fatalf("ValidateSchedule accepted %+v", c.evs)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}

	accept := []struct {
		name string
		evs  []Event
	}{
		{"adjacent loss windows same direction", []Event{
			{At: 0, Kind: Loss, Dir: ClientToServer, Prob: 0.1, Duration: ms},
			{At: ms, Kind: Loss, Dir: ClientToServer, Prob: 0.2, Duration: ms},
		}},
		{"overlapping loss different directions", []Event{
			{At: 0, Kind: Loss, Dir: ClientToServer, Prob: 0.1, Duration: 2 * ms},
			{At: ms, Kind: Loss, Dir: ServerToClient, Prob: 0.2, Duration: 2 * ms},
		}},
		{"overlapping loss and corrupt same direction", []Event{
			{At: 0, Kind: Loss, Dir: ClientToServer, Prob: 0.1, Duration: 2 * ms},
			{At: ms, Kind: Corrupt, Dir: ClientToServer, Prob: 0.1, Duration: 2 * ms},
		}},
		{"overlapping flaps different pfs", []Event{
			{At: 0, Kind: LinkFlap, PF: 0, Duration: 2 * ms},
			{At: ms, Kind: LinkFlap, PF: 1, Duration: 2 * ms},
		}},
		{"overlapping degrades different links", []Event{
			{At: 0, Kind: Degrade, From: 0, To: 1, BWFactor: 0.5, LatFactor: 2, Duration: 2 * ms},
			{At: ms, Kind: Degrade, From: 1, To: 0, BWFactor: 0.5, LatFactor: 2, Duration: 2 * ms},
		}},
		{"link-up at flap window edge", []Event{
			{At: 0, Kind: LinkFlap, PF: 0, Duration: 2 * ms},
			{At: 2 * ms, Kind: LinkUp, PF: 0},
		}},
		{"stall overlapping everything", []Event{
			{At: 0, Kind: Loss, Dir: ClientToServer, Prob: 0.1, Duration: 2 * ms},
			{At: 0, Kind: Stall, Core: 0, Duration: 2 * ms},
			{At: ms, Kind: Stall, Core: 1, Duration: 2 * ms},
		}},
	}
	for _, c := range accept {
		t.Run(c.name, func(t *testing.T) {
			if err := (&Plan{Events: c.evs}).ValidateSchedule(); err != nil {
				t.Fatalf("ValidateSchedule rejected a sound schedule: %v", err)
			}
		})
	}
}

// TestArmRejectsOverlappingWindows confirms the structural check is on
// the Arm path, not only available standalone.
func TestArmRejectsOverlappingWindows(t *testing.T) {
	r := newRig(t)
	plan := &Plan{Events: []Event{
		{At: 0, Kind: Loss, Dir: ClientToServer, Prob: 0.1, Duration: 2 * time.Millisecond},
		{At: time.Millisecond, Kind: Loss, Dir: ClientToServer, Prob: 0.2, Duration: 2 * time.Millisecond},
	}}
	if _, err := Arm(plan, r.targets()); err == nil || !strings.Contains(err.Error(), "overlapping") {
		t.Fatalf("Arm err = %v, want overlapping-window rejection", err)
	}
}
