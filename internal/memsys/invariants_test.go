package memsys

import (
	"testing"
	"testing/quick"

	"ioctopus/internal/interconnect"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// op is one randomized memory-system operation.
type op struct {
	Kind  uint8 // read/write x cpu/device
	Node  uint8
	Buf   uint8
	Bytes uint16
}

// applyOps replays a random operation sequence over a small buffer set
// and returns the system plus buffers for invariant checking.
func applyOps(ops []op) (*System, []*Buffer) {
	e := sim.NewEngine()
	srv := topology.DualBroadwell()
	fab := interconnect.New(e, srv)
	s := New(e, srv, fab, DefaultParams())
	bufs := []*Buffer{
		s.NewBuffer("a", 0, 4096),
		s.NewBuffer("b", 0, 64*1024),
		s.NewBuffer("c", 1, 4096),
		s.NewBuffer("d", 1, 2*1024*1024),
	}
	for _, o := range ops {
		b := bufs[int(o.Buf)%len(bufs)]
		node := topology.NodeID(o.Node % 2)
		n := int64(o.Bytes)
		switch o.Kind % 4 {
		case 0:
			s.CPURead(node, b, n)
		case 1:
			s.CPUWrite(node, b, n)
		case 2:
			s.DeviceRead(node, b, n)
		case 3:
			s.DeviceWrite(node, b, n)
		}
	}
	return s, bufs
}

// TestResidencyInvariants: after any operation sequence, every buffer's
// residency bookkeeping is self-consistent.
func TestResidencyInvariants(t *testing.T) {
	f := func(ops []op) bool {
		if len(ops) > 200 {
			ops = ops[:200]
		}
		s, bufs := applyOps(ops)
		for _, b := range bufs {
			// Cached bytes never exceed the buffer size, never negative.
			if b.CachedBytes() < 0 || b.CachedBytes() > b.Size() {
				return false
			}
			// Uncached buffers have no cached bytes and no dirty state.
			if b.CachedAt() == topology.NoNode && (b.CachedBytes() != 0 || b.Dirty()) {
				return false
			}
			// Cached buffers live on a real node.
			if b.CachedAt() != topology.NoNode && int(b.CachedAt()) >= 2 {
				return false
			}
		}
		// Per-LLC occupancy equals the sum of its residents, within each
		// partition.
		for n := 0; n < 2; n++ {
			l := s.node(topology.NodeID(n)).llc
			var main, ddio int64
			for _, b := range bufs {
				if b.CachedAt() == topology.NodeID(n) {
					if b.InDDIO() {
						ddio += b.CachedBytes()
					} else {
						main += b.CachedBytes()
					}
				}
			}
			if l.main.used != main || l.ddio.used != ddio {
				return false
			}
			// Occupancy never exceeds capacity.
			if l.main.used > l.effMain() || l.ddio.used > l.effDDIO() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCostsAreNonNegative: no operation ever returns a negative
// duration or moves counters backwards.
func TestCostsAreNonNegative(t *testing.T) {
	f := func(ops []op) bool {
		if len(ops) > 100 {
			ops = ops[:100]
		}
		e := sim.NewEngine()
		srv := topology.DualBroadwell()
		fab := interconnect.New(e, srv)
		s := New(e, srv, fab, DefaultParams())
		b := s.NewBuffer("x", 0, 64*1024)
		prev := 0.0
		for _, o := range ops {
			node := topology.NodeID(o.Node % 2)
			n := int64(o.Bytes)
			var d1, d2, d3, d4 int64
			d1 = int64(s.CPURead(node, b, n))
			d2 = int64(s.CPUWrite(node, b, n))
			d3 = int64(s.DeviceRead(node, b, n))
			d4 = int64(s.DeviceWrite(node, b, n))
			if d1 < 0 || d2 < 0 || d3 < 0 || d4 < 0 {
				return false
			}
			if s.TotalDRAMBytes() < prev {
				return false
			}
			prev = s.TotalDRAMBytes()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHitNeverExceedsAccess: the hit estimator is bounded by the access
// size and residency.
func TestHitNeverExceedsAccess(t *testing.T) {
	f := func(size16, cached16, n16 uint16, random bool) bool {
		size := int64(size16)%65536 + 64
		cached := int64(cached16) % (size + 1)
		n := int64(n16)%size + 1
		b := &Buffer{size: size, cached: cached, node: 0, randomAccess: random}
		h := b.hitBytesFor(n)
		return h >= 0 && h <= n && h <= size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
