// Package memsys models the server's memory system: per-socket DRAM
// behind memory controllers, per-socket last-level caches with a DDIO
// partition, and the coherence behaviour that couples them to DMA.
//
// This is the substrate where NUDMA lives. Every effect the paper
// measures reduces to a rule implemented here:
//
//   - DMA writes to memory homed on the device's socket allocate into
//     that socket's LLC (DDIO) and cost no DRAM bandwidth; remote DMA
//     writes go to DRAM, pay a read-for-ownership, and invalidate cached
//     copies, so the consuming CPU later misses to DRAM (~80 ns).
//   - DMA reads probe LLC and DRAM in parallel: a local cached read is
//     free of DRAM traffic, a remote read consumes DRAM bandwidth equal
//     to the bytes moved even when the data was cached (§5.1.1).
//   - CPU copies run at a bandwidth set by where the data is resident
//     (LLC, local DRAM, remote DRAM) and by current contention on the
//     memory controllers and interconnect.
//
// Residency is tracked per Buffer (a named region: a ring, a packet
// buffer, a user buffer) rather than per cache line; the workloads the
// paper runs touch buffers as units, so this granularity reproduces the
// measured effects with tractable event counts.
package memsys

import (
	"fmt"
	"time"

	"ioctopus/internal/interconnect"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// Params are the tunable cost-model constants. Defaults (see
// DefaultParams) are calibrated to the paper's Broadwell testbed.
type Params struct {
	// DDIO enables Data Direct I/O (§2.2). The llnd configuration of
	// Figure 9 sets it false.
	DDIO bool
	// CopyBWLLC is single-core copy bandwidth when the source is
	// LLC-resident, bytes/sec.
	CopyBWLLC float64
	// CopyBWDRAM is single-core copy bandwidth from local DRAM.
	CopyBWDRAM float64
	// CopyBWRemote is single-core copy bandwidth from remote DRAM on an
	// idle interconnect (congestion reduces it further).
	CopyBWRemote float64
	// CacheToCacheBW is cross-socket LLC-to-LLC transfer bandwidth.
	CacheToCacheBW float64
	// WriteRFO charges a DRAM read for the uncached portion of CPU
	// writes (write-allocate read-for-ownership).
	WriteRFO bool
	// DMAWriteRFO charges a DRAM read alongside remote DMA writes (home
	// agent ownership read); together with the write itself and the
	// consumer's later miss this yields the 3x memory traffic of Fig 6.
	DMAWriteRFO bool
	// BigBufferFraction caps how much of the LLC a single buffer may
	// occupy (a streaming buffer cannot displace the whole cache).
	BigBufferFraction float64
	// LatencySensitivity controls how strongly congestion-inflated
	// memory/interconnect latency slows CPU-side copies (loads have
	// limited MLP; DMA bursts don't care). 0 = bandwidth-share only,
	// 1 = fully latency-bound.
	LatencySensitivity float64
}

// DefaultParams returns the calibrated defaults.
func DefaultParams() Params {
	return Params{
		DDIO:               true,
		CopyBWLLC:          20e9,
		CopyBWDRAM:         11e9,
		CopyBWRemote:       8.2e9,
		CacheToCacheBW:     8e9,
		WriteRFO:           true,
		DMAWriteRFO:        true,
		BigBufferFraction:  0.5,
		LatencySensitivity: 0.5,
	}
}

// NodeStats aggregates one node's memory-system counters.
type NodeStats struct {
	DRAMReadBytes  float64
	DRAMWriteBytes float64
	LLCHitBytes    float64
	LLCMissBytes   float64
}

type nodeMem struct {
	id     topology.NodeID
	memctl *sim.Pipe // DRAM bandwidth + latency
	llc    *llc
	stats  NodeStats
}

// System is the runtime memory system of one server.
type System struct {
	eng    *sim.Engine
	topo   *topology.Server
	fabric *interconnect.Fabric
	nodes  []*nodeMem
	params Params
	nextID int
}

// New builds the memory system for a server over its interconnect fabric.
func New(e *sim.Engine, srv *topology.Server, fabric *interconnect.Fabric, params Params) *System {
	s := &System{eng: e, topo: srv, fabric: fabric, params: params}
	for _, sk := range srv.Sockets {
		s.nodes = append(s.nodes, &nodeMem{
			id: sk.ID,
			memctl: sim.NewPipe(e, sim.PipeConfig{
				Name:        fmt.Sprintf("memctl%d", sk.ID),
				BytesPerSec: sk.DRAM.BytesPerSec,
				BaseLatency: sk.DRAM.Latency,
				// Bank-level parallelism bounds DRAM latency growth
				// under saturation far below an interconnect link's.
				MaxInflation: 6,
			}),
			llc: newLLC(sk.LLC),
		})
	}
	return s
}

// Params returns the active cost-model parameters.
func (s *System) Params() Params { return s.params }

// SetDDIO toggles DDIO at runtime (Figure 9's llnd configuration).
func (s *System) SetDDIO(on bool) { s.params.DDIO = on }

// Fabric returns the interconnect the system charges remote traffic to.
func (s *System) Fabric() *interconnect.Fabric { return s.fabric }

// Topology returns the hardware description.
func (s *System) Topology() *topology.Server { return s.topo }

// MemCtl returns the memory-controller pipe of a node, letting bulk
// workloads (STREAM, PageRank) register fluid flows against it.
func (s *System) MemCtl(n topology.NodeID) *sim.Pipe { return s.node(n).memctl }

func (s *System) node(n topology.NodeID) *nodeMem {
	if int(n) < 0 || int(n) >= len(s.nodes) {
		panic(fmt.Sprintf("memsys: no node %d", n))
	}
	return s.nodes[n]
}

// AddLLCPressure registers cache pollution on a node's LLC: bps is the
// antagonist's streaming allocation rate in bytes/sec. Returns a
// release function.
func (s *System) AddLLCPressure(n topology.NodeID, bps float64) (release func()) {
	l := s.node(n).llc
	l.pollutionBps += bps
	return func() { l.pollutionBps -= bps }
}

// Stats returns a node's counters.
func (s *System) Stats(n topology.NodeID) NodeStats { return s.node(n).stats }

// TotalDRAMBytes returns DRAM read+write bytes across all nodes.
func (s *System) TotalDRAMBytes() float64 {
	var t float64
	for _, n := range s.nodes {
		t += n.stats.DRAMReadBytes + n.stats.DRAMWriteBytes
	}
	return t
}

// ResetStats zeroes all node counters (buffers keep their residency).
func (s *System) ResetStats() {
	for _, n := range s.nodes {
		n.stats = NodeStats{}
		n.memctl.ResetStats()
	}
}

// derate converts a base streaming bandwidth to its effective value
// under latency inflation: CPU-side accesses are partially
// latency-bound (limited memory-level parallelism), so a congested
// resource slows them more than its leftover bandwidth would suggest.
func (s *System) derate(baseBW, inflation float64) float64 {
	sens := s.params.LatencySensitivity
	return baseBW / (1 + (inflation-1)*sens)
}

// dramRead charges a DRAM read of n bytes at home, requested from
// reqNode, and returns its latency contribution. For CPU requesters
// (cpu=true) baseBW is the core's copy bandwidth, derated by congestion
// latency; for DMA (cpu=false) the transfer runs at the discrete
// bandwidth share of the resources it traverses.
func (s *System) dramRead(reqNode, home topology.NodeID, n int64, baseBW float64, cpu bool) time.Duration {
	nm := s.node(home)
	nm.stats.DRAMReadBytes += float64(n)
	rate := baseBW
	infl := nm.memctl.Inflation()
	if !cpu {
		if a := nm.memctl.Available(); a < rate {
			rate = a
		}
	}
	lat := nm.memctl.Latency(0) // inflated DRAM latency, bytes priced below
	nm.memctl.Charge(n)
	if reqNode != home {
		fp := s.fabric.Pipe(home, reqNode)
		if !cpu {
			// DMA data serializes on the interconnect: queue behind
			// other DMA traffic at the discrete bandwidth share.
			fin := fp.Transfer(n, nil)
			lat += fin.Sub(s.eng.Now())
		} else {
			if fi := fp.Inflation(); fi > infl {
				infl = fi
			}
			lat += s.fabric.Charge(home, reqNode, n)
		}
	}
	if cpu {
		rate = s.derate(rate, infl)
	}
	return lat + time.Duration(float64(n)/rate*1e9)
}

// dramWrite charges a DRAM write of n bytes at home, issued from
// reqNode. Writes are posted: the returned latency is the controller's
// (inflated) accept latency plus serialization at the effective rate.
func (s *System) dramWrite(reqNode, home topology.NodeID, n int64, baseBW float64, cpu bool) time.Duration {
	nm := s.node(home)
	nm.stats.DRAMWriteBytes += float64(n)
	rate := baseBW
	infl := nm.memctl.Inflation()
	if !cpu {
		if a := nm.memctl.Available(); a < rate {
			rate = a
		}
	}
	lat := nm.memctl.Latency(0)
	nm.memctl.Charge(n)
	if reqNode != home {
		fp := s.fabric.Pipe(reqNode, home)
		if !cpu {
			fin := fp.Transfer(n, nil)
			lat += fin.Sub(s.eng.Now())
		} else {
			if fi := fp.Inflation(); fi > infl {
				infl = fi
			}
			lat += s.fabric.Charge(reqNode, home, n)
		}
	}
	if cpu {
		rate = s.derate(rate, infl)
	}
	return lat + time.Duration(float64(n)/rate*1e9)
}

// evictionWriteback flushes a dirty buffer's cached bytes home; called
// by LLC eviction. The cost is asynchronous to the forefront access, so
// only the bandwidth is charged.
func (s *System) evictionWriteback(fromNode topology.NodeID, b *Buffer) {
	nm := s.node(b.home)
	nm.stats.DRAMWriteBytes += float64(b.cached)
	nm.memctl.Charge(b.cached)
	if fromNode != b.home {
		s.fabric.Charge(fromNode, b.home, b.cached)
	}
}
