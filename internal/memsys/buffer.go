package memsys

import (
	"fmt"

	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// Buffer is a named region of memory with a DRAM home node and tracked
// cache residency: descriptor rings, packet buffers, user buffers,
// completion queues. A buffer is resident in at most one LLC at a time —
// the producer/consumer patterns of the modelled workloads never share a
// buffer read-write between sockets for long, and migration cost is
// charged when residency moves.
type Buffer struct {
	sys  *System
	id   int
	name string
	home topology.NodeID
	size int64

	// Residency.
	node   topology.NodeID // LLC holding it; topology.NoNode if none
	cached int64           // bytes resident (<= size)
	dirty  bool
	ddio   bool // resident in the DDIO partition

	// randomAccess marks buffers touched at uniformly random offsets
	// (a memcached slab, a graph): hits scale with the cached fraction.
	// The default (false) models recycled producer/consumer buffers,
	// where the freshly written bytes are exactly what is read next.
	randomAccess bool

	// LRU links within the holding LLC's partition.
	prev, next *Buffer
	lastTouch  sim.Time
}

// NewBuffer allocates a buffer homed on the given node, uncached.
func (s *System) NewBuffer(name string, home topology.NodeID, size int64) *Buffer {
	if size <= 0 {
		panic(fmt.Sprintf("memsys: buffer %q needs positive size", name))
	}
	s.node(home) // validate
	s.nextID++
	return &Buffer{
		sys:  s,
		id:   s.nextID,
		name: name,
		home: home,
		size: size,
		node: topology.NoNode,
	}
}

// Name returns the buffer's name.
func (b *Buffer) Name() string { return b.name }

// Home returns the buffer's DRAM home node.
func (b *Buffer) Home() topology.NodeID { return b.home }

// Size returns the buffer's size in bytes.
func (b *Buffer) Size() int64 { return b.size }

// CachedAt returns the node whose LLC holds the buffer, or
// topology.NoNode.
func (b *Buffer) CachedAt() topology.NodeID { return b.node }

// CachedBytes returns how many bytes are LLC-resident.
func (b *Buffer) CachedBytes() int64 { return b.cached }

// Dirty reports whether the cached copy is newer than DRAM.
func (b *Buffer) Dirty() bool { return b.dirty }

// InDDIO reports whether the buffer sits in the DDIO partition.
func (b *Buffer) InDDIO() bool { return b.ddio }

// Rehome changes the buffer's DRAM home (page migration). Any cached
// copy is flushed first so residency bookkeeping stays consistent.
func (b *Buffer) Rehome(to topology.NodeID) {
	b.sys.node(to) // validate
	if b.node != topology.NoNode {
		b.sys.invalidate(b)
	}
	b.home = to
}

// SetRandomAccess marks the buffer as randomly accessed (see the field
// comment); returns the buffer for chaining.
func (b *Buffer) SetRandomAccess(v bool) *Buffer {
	b.randomAccess = v
	return b
}

// hitBytesFor estimates how many of n accessed bytes hit the cached
// portion when the buffer is resident in the accessor's LLC.
func (b *Buffer) hitBytesFor(n int64) int64 {
	if b.node == topology.NoNode || b.size == 0 {
		return 0
	}
	if b.randomAccess {
		return int64(float64(n) * float64(b.cached) / float64(b.size))
	}
	// Recycled-buffer semantics: the most recently written bytes are
	// the ones consumed next, so residency up to n covers the access.
	if b.cached >= n {
		return n
	}
	return b.cached
}

// invalidate drops the buffer from whatever LLC holds it, writing back
// dirty data.
func (s *System) invalidate(b *Buffer) {
	if b.node == topology.NoNode {
		return
	}
	l := s.node(b.node).llc
	if b.dirty {
		s.evictionWriteback(b.node, b)
	}
	l.remove(b)
}
