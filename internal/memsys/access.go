package memsys

import (
	"time"

	"ioctopus/internal/topology"
)

// CPURead models a core on `node` reading n bytes from the buffer
// (copying it out, as recv() or a completion-entry read does) and
// returns the time the read costs that core. Side effects: DRAM and
// interconnect bandwidth are charged for the miss portion and the
// buffer becomes resident in the reader's LLC.
func (s *System) CPURead(node topology.NodeID, b *Buffer, n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	if n > b.size {
		n = b.size
	}
	now := s.eng.Now()
	nm := s.node(node)
	var cost time.Duration

	var hits int64
	if b.node == node {
		hits = b.hitBytesFor(n)
		// Antagonist pollution evicts resident lines while they sit
		// idle: hits degrade with time-since-touch (how STREAM erodes
		// DDIO's benefit in Figure 11 without hurting hot lines).
		if surv := nm.llc.survivingFraction(now.Sub(b.lastTouch)); surv < 1 {
			hits = int64(float64(hits) * surv)
		}
	}
	miss := n - hits
	if miss > 0 && miss < 64 && b.cached >= b.size-64 {
		// The buffer is fully resident up to sub-cacheline dust; the
		// fractional remainder is an estimator artifact, not a fetch.
		hits += miss
		miss = 0
	}

	if hits > 0 {
		nm.stats.LLCHitBytes += float64(hits)
		cost += b.llcSpec(s).HitLatency + bytesAt(hits, s.params.CopyBWLLC)
	}
	if miss > 0 {
		nm.stats.LLCMissBytes += float64(miss)
		switch {
		case b.node != topology.NoNode && b.node != node:
			// Cached in another socket's LLC: cache-to-cache transfer,
			// no invalidation of the source needed for a read, but our
			// model migrates residency to the reader (the common
			// producer/consumer handoff). Dirty data stays dirty.
			src := b.node
			rate := s.derate(s.params.CacheToCacheBW, s.fabric.Pipe(src, node).Inflation())
			cost += s.fabric.Charge(src, node, miss)
			cost += bytesAt(miss, rate)
			dirty := b.dirty
			cached := b.cached
			s.node(src).llc.list(b.ddio).remove(b)
			b.node = topology.NoNode
			b.cached = 0
			b.ddio = false
			nm.llc.insert(s, node, b, min64(cached+miss, b.size), false, now)
			b.dirty = dirty
		default:
			// Fetch from home DRAM.
			base := s.params.CopyBWDRAM
			if b.home != node {
				base = s.params.CopyBWRemote
			}
			cost += s.dramRead(node, b.home, miss, base, true)
			// Fetches fill whole cache lines: residency grows in line
			// units even when the estimated miss is fractional.
			nm.llc.insert(s, node, b, roundLines(miss), false, now)
		}
	} else {
		nm.llc.touch(b, now)
	}
	return cost
}

// CPUWrite models a core on `node` writing n bytes into the buffer and
// returns the core-time cost. The written range becomes dirty in the
// writer's LLC; copies on other sockets are invalidated (with writeback
// if dirty); the uncached portion pays a read-for-ownership.
func (s *System) CPUWrite(node topology.NodeID, b *Buffer, n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	if n > b.size {
		n = b.size
	}
	now := s.eng.Now()
	nm := s.node(node)
	var cost time.Duration

	if b.node != topology.NoNode && b.node != node {
		// Invalidate the remote copy; dirty data must reach DRAM first.
		cost += s.fabric.Latency(node, b.node, 64) // ownership request
		s.invalidate(b)
	}

	var hits int64
	if b.node == node {
		hits = b.hitBytesFor(n)
	}
	miss := n - hits
	if miss > 0 && miss < 64 && b.cached >= b.size-64 {
		hits += miss
		miss = 0
	}

	if miss > 0 && s.params.WriteRFO {
		base := s.params.CopyBWDRAM
		if b.home != node {
			base = s.params.CopyBWRemote
		}
		cost += s.dramRead(node, b.home, miss, base, true)
	}
	cost += bytesAt(n, s.params.CopyBWLLC)
	if miss > 0 {
		nm.llc.insert(s, node, b, roundLines(miss), false, now)
	} else {
		nm.llc.touch(b, now)
	}
	b.dirty = true
	return cost
}

// DeviceWrite models a DMA write of n bytes into the buffer by a device
// whose PCIe endpoint sits on devNode, returning the posting latency the
// device observes. PCIe link time is the caller's (the DMA engine paces
// its own link); this charges the memory side:
//
//   - local + DDIO: allocate into devNode's LLC DDIO ways; overflow
//     spills to DRAM;
//   - remote or DDIO off: DRAM write + read-for-ownership at the home
//     node, interconnect crossing, and invalidation of any cached copy —
//     the consuming CPU will miss.
func (s *System) DeviceWrite(devNode topology.NodeID, b *Buffer, n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	if n > b.size {
		n = b.size
	}
	now := s.eng.Now()
	local := b.home == devNode

	if local && s.params.DDIO {
		nm := s.node(devNode)
		if b.node != topology.NoNode && b.node != devNode {
			s.invalidate(b)
		}
		if b.node == devNode && !b.ddio {
			// DDIO write-update: lines already in the main ways are
			// updated in place.
			nm.llc.touch(b, now)
			b.dirty = true
			return nm.llc.spec.HitLatency
		}
		grow := n
		if b.node == devNode {
			grow = n - b.hitBytesFor(n)
		}
		var cost time.Duration
		got := nm.llc.insert(s, devNode, b, grow, true, now)
		if spill := grow - got; spill > 0 {
			// DDIO ways exhausted: the remainder lands in DRAM.
			cost += s.dramWrite(devNode, b.home, spill, s.topo.Socket(b.home).DRAM.BytesPerSec, false)
			if s.params.DMAWriteRFO {
				s.node(b.home).stats.DRAMReadBytes += float64(spill)
				s.node(b.home).memctl.Charge(spill)
			}
		}
		b.dirty = true
		return cost + nm.llc.spec.HitLatency
	}

	// Remote DMA write (or DDIO disabled).
	if b.node != topology.NoNode {
		s.invalidate(b)
	}
	cost := s.dramWrite(devNode, b.home, n, s.topo.Socket(b.home).DRAM.BytesPerSec, false)
	if s.params.DMAWriteRFO {
		// Home-agent ownership read accompanying the write.
		s.node(b.home).stats.DRAMReadBytes += float64(n)
		s.node(b.home).memctl.Charge(n)
	}
	return cost
}

// DeviceRead models a DMA read of n bytes from the buffer by a device on
// devNode, returning the latency to first data. Cached data is served
// from the LLC without invalidation; per the parallel-probe behaviour
// (§5.1.1), a read by a remote device consumes DRAM bandwidth equal to
// the bytes moved even when the LLC supplies the data.
func (s *System) DeviceRead(devNode topology.NodeID, b *Buffer, n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	if n > b.size {
		n = b.size
	}
	now := s.eng.Now()

	if b.node != topology.NoNode {
		l := s.node(b.node).llc
		l.touch(b, now)
		cost := l.spec.HitLatency
		if b.node != devNode {
			// Parallel DRAM probe consumes home bandwidth...
			s.node(b.home).stats.DRAMReadBytes += float64(n)
			s.node(b.home).memctl.Charge(n)
			// ...and the data crosses the interconnect to the device,
			// serialized with other DMA traffic.
			fin := s.fabric.Pipe(b.node, devNode).Transfer(n, nil)
			cost += fin.Sub(s.eng.Now())
		}
		return cost
	}

	// Uncached: DRAM read at home.
	rate := s.topo.Socket(b.home).DRAM.BytesPerSec
	return s.dramRead(devNode, b.home, n, rate, false)
}

// bytesAt converts a byte count and bandwidth to a duration.
func bytesAt(n int64, bw float64) time.Duration {
	if bw <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bw * 1e9)
}

// roundLines rounds a byte count up to whole 64-byte cache lines.
func roundLines(n int64) int64 { return (n + 63) / 64 * 64 }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// llcSpec returns the LLC spec of whatever node caches the buffer (or
// its home when uncached) for latency lookups.
func (b *Buffer) llcSpec(s *System) topology.LLCSpec {
	n := b.node
	if n == topology.NoNode {
		n = b.home
	}
	return s.node(n).llc.spec
}
