package memsys

import (
	"math"
	"time"

	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// llc models one socket's last-level cache as two LRU partitions: the
// main ways and the DDIO ways DMA writes are confined to. Occupancy is
// tracked per buffer; antagonist workloads apply pressure that shrinks
// the effective capacity instead of being simulated line by line.
type llc struct {
	spec    topology.LLCSpec
	ddioCap int64
	// pollutionBps is the aggregate antagonist allocation rate through
	// this LLC (bytes/sec): it sets how fast idle resident lines are
	// evicted and how much effective capacity shrinks.
	pollutionBps float64

	main lruList
	ddio lruList
}

func newLLC(spec topology.LLCSpec) *llc {
	return &llc{
		spec:    spec,
		ddioCap: int64(float64(spec.Size) * spec.DDIOFraction),
	}
}

// survivingFraction is the probability a line last touched idle ago is
// still resident: antagonists streaming at pollutionBps turn the cache
// over once every Size/pollutionBps seconds, so survival decays
// exponentially with idle time. Hot lines (reused within microseconds)
// survive; a buffer parked for a pool-recycle period does not.
func (l *llc) survivingFraction(idle time.Duration) float64 {
	if l.pollutionBps <= 0 || idle <= 0 {
		return 1
	}
	turnover := float64(l.spec.Size) / l.pollutionBps // seconds per full sweep
	f := math.Exp(-idle.Seconds() / turnover)
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// pressureFactor shrinks effective capacity under pollution (the
// antagonist working set occupies its share of the ways).
func (l *llc) pressureFactor() float64 {
	f := 1 - math.Min(0.85, l.pollutionBps/150e9)
	if f < 0.1 {
		f = 0.1
	}
	return f
}

// effMain returns the usable main-partition capacity under pressure.
func (l *llc) effMain() int64 {
	return int64(float64(l.spec.Size-l.ddioCap) * l.pressureFactor())
}

// effDDIO returns the usable DDIO-partition capacity under pressure.
func (l *llc) effDDIO() int64 {
	return int64(float64(l.ddioCap) * l.pressureFactor())
}

func (l *llc) list(ddio bool) *lruList {
	if ddio {
		return &l.ddio
	}
	return &l.main
}

// remove detaches the buffer from its partition and clears residency.
func (l *llc) remove(b *Buffer) {
	l.list(b.ddio).remove(b)
	b.node = topology.NoNode
	b.cached = 0
	b.dirty = false
	b.ddio = false
}

// insert grows buffer b's residency at node n by `grow` new bytes in the
// chosen partition, evicting LRU victims as needed, and returns how many
// bytes were actually accommodated. The shortfall (spill) is the
// caller's to charge to DRAM. The buffer must not be resident in a
// different LLC when called (the caller migrates/invalidates first).
func (l *llc) insert(s *System, n topology.NodeID, b *Buffer, grow int64, ddio bool, now sim.Time) int64 {
	if b.node != topology.NoNode && b.node != n {
		panic("memsys: insert of buffer resident in another LLC")
	}
	// Attach or switch partitions.
	switch {
	case b.node == topology.NoNode:
		b.node = n
		b.ddio = ddio
		b.cached = 0
		l.list(ddio).pushFront(b)
	case b.ddio != ddio:
		// Promote/demote between partitions, carrying occupancy
		// (lruList.remove releases it; re-add below).
		l.list(b.ddio).remove(b)
		b.ddio = ddio
		l.list(ddio).pushFront(b)
		l.list(ddio).used += b.cached
	default:
		l.list(ddio).moveToFront(b)
	}
	b.lastTouch = now

	part := l.list(ddio)
	capBytes := l.effMain()
	if ddio {
		capBytes = l.effDDIO()
	}
	// Cap a single buffer's footprint so one streaming buffer cannot
	// displace the whole partition.
	maxPerBuffer := int64(float64(capBytes) * s.params.BigBufferFraction)
	if maxPerBuffer < 4096 {
		maxPerBuffer = 4096
	}
	if b.cached+grow > maxPerBuffer {
		grow = maxPerBuffer - b.cached
	}
	if b.cached+grow > b.size {
		grow = b.size - b.cached
	}
	if grow <= 0 {
		return 0
	}

	// Evict from the back until the growth fits.
	for part.used+grow > capBytes {
		victim := part.back()
		if victim == nil || victim == b {
			room := capBytes - part.used
			if room < 0 {
				room = 0
			}
			if grow > room {
				grow = room
			}
			break
		}
		if victim.dirty {
			s.evictionWriteback(n, victim)
		}
		part.remove(victim)
		victim.node = topology.NoNode
		victim.cached = 0
		victim.dirty = false
		victim.ddio = false
	}
	b.cached += grow
	part.used += grow
	return grow
}

// touch refreshes LRU position.
func (l *llc) touch(b *Buffer, now sim.Time) {
	l.list(b.ddio).moveToFront(b)
	b.lastTouch = now
}

// lruList is an intrusive doubly-linked LRU of buffers; most recent at
// the front. used tracks resident bytes.
type lruList struct {
	head, tail *Buffer
	used       int64
	count      int
}

func (l *lruList) pushFront(b *Buffer) {
	b.prev = nil
	b.next = l.head
	if l.head != nil {
		l.head.prev = b
	}
	l.head = b
	if l.tail == nil {
		l.tail = b
	}
	l.count++
}

// remove detaches b and releases its occupancy.
func (l *lruList) remove(b *Buffer) {
	if b.prev != nil {
		b.prev.next = b.next
	} else if l.head == b {
		l.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else if l.tail == b {
		l.tail = b.prev
	}
	l.used -= b.cached
	if l.used < 0 {
		l.used = 0
	}
	l.count--
	b.prev, b.next = nil, nil
}

func (l *lruList) moveToFront(b *Buffer) {
	if l.head == b {
		return
	}
	if b.prev != nil {
		b.prev.next = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else if l.tail == b {
		l.tail = b.prev
	}
	b.prev = nil
	b.next = l.head
	if l.head != nil {
		l.head.prev = b
	}
	l.head = b
	if l.tail == nil {
		l.tail = b
	}
}

func (l *lruList) back() *Buffer { return l.tail }
