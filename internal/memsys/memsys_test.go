package memsys

import (
	"testing"
	"time"

	"ioctopus/internal/interconnect"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// newSys builds a dual-Broadwell memory system for tests.
func newSys(t *testing.T) (*sim.Engine, *System) {
	t.Helper()
	e := sim.NewEngine()
	srv := topology.DualBroadwell()
	fab := interconnect.New(e, srv)
	return e, New(e, srv, fab, DefaultParams())
}

func TestLocalDDIOWriteStaysOutOfDRAM(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("pkt", 0, 1500)
	s.DeviceWrite(0, b, 1500) // NIC on node 0, memory homed on node 0
	if got := s.Stats(0).DRAMWriteBytes; got != 0 {
		t.Fatalf("local DDIO write moved %v DRAM bytes, want 0", got)
	}
	if b.CachedAt() != 0 || !b.InDDIO() || !b.Dirty() {
		t.Fatalf("buffer state after DDIO write: node=%d ddio=%v dirty=%v", b.CachedAt(), b.InDDIO(), b.Dirty())
	}
}

func TestRemoteDMAWriteCostsDRAMAndRFO(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("pkt", 1, 1500) // memory on node 1
	s.DeviceWrite(0, b, 1500)        // NIC on node 0: remote DMA
	st := s.Stats(1)
	if st.DRAMWriteBytes != 1500 {
		t.Fatalf("DRAM writes = %v, want 1500", st.DRAMWriteBytes)
	}
	if st.DRAMReadBytes != 1500 {
		t.Fatalf("DRAM RFO reads = %v, want 1500", st.DRAMReadBytes)
	}
	if b.CachedAt() != topology.NoNode {
		t.Fatal("remote DMA write must not allocate in any LLC")
	}
	// The write crossed the interconnect.
	if s.Fabric().Pipe(0, 1).DiscreteBytes() != 1500 {
		t.Fatalf("fabric bytes = %v, want 1500", s.Fabric().Pipe(0, 1).DiscreteBytes())
	}
}

func TestRemoteDMAWriteInvalidatesCachedCopy(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("ring-entry", 1, 64)
	s.CPURead(1, b, 64) // CPU on node 1 caches it
	if b.CachedAt() != 1 {
		t.Fatal("setup: buffer should be cached on node 1")
	}
	s.ResetStats()
	s.DeviceWrite(0, b, 64) // remote NIC writes it
	if b.CachedAt() != topology.NoNode {
		t.Fatal("DMA write did not invalidate the cached copy")
	}
	// Consumer now misses to DRAM — the ~80ns completion-entry miss.
	lat := s.CPURead(1, b, 64)
	if lat < 80*time.Nanosecond {
		t.Fatalf("post-invalidation read latency = %v, want >= ~85ns DRAM", lat)
	}
	if s.Stats(1).DRAMReadBytes < 64 {
		t.Fatal("post-invalidation read should hit DRAM")
	}
}

func TestDDIOWriteUpdateHitsExistingLines(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("ring", 0, 4096)
	s.CPURead(0, b, 4096) // resident in node 0 main ways
	s.ResetStats()
	lat := s.DeviceWrite(0, b, 4096)
	if s.Stats(0).DRAMWriteBytes != 0 {
		t.Fatal("write-update should not touch DRAM")
	}
	if lat > 100*time.Nanosecond {
		t.Fatalf("write-update latency = %v, want ~LLC", lat)
	}
	if !b.Dirty() {
		t.Fatal("buffer should be dirty after device write")
	}
}

func TestDDIODisabledWritesGoToDRAM(t *testing.T) {
	_, s := newSys(t)
	s.SetDDIO(false)
	b := s.NewBuffer("pkt", 0, 1500)
	s.DeviceWrite(0, b, 1500) // local, but DDIO off (llnd config)
	if s.Stats(0).DRAMWriteBytes != 1500 {
		t.Fatalf("DRAM writes = %v, want 1500 with DDIO off", s.Stats(0).DRAMWriteBytes)
	}
}

func TestDDIOSpillsWhenPartitionFull(t *testing.T) {
	_, s := newSys(t)
	// DDIO partition = 10% of 35 MiB = 3.5 MiB. Write 8 MiB of distinct
	// buffers; a good part must spill to DRAM.
	var total int64
	for i := 0; i < 64; i++ {
		b := s.NewBuffer("blk", 0, 128*1024)
		s.DeviceWrite(0, b, 128*1024)
		total += 128 * 1024
	}
	spilled := s.Stats(0).DRAMWriteBytes
	if spilled == 0 {
		t.Fatal("expected DDIO spill to DRAM")
	}
	if spilled >= float64(total) {
		t.Fatalf("everything spilled (%v of %v); DDIO ways not used", spilled, total)
	}
}

func TestLocalDeviceReadFromLLCIsFree(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("txbuf", 0, 1500)
	s.CPUWrite(0, b, 1500) // producer dirties it in LLC 0
	s.ResetStats()
	s.DeviceRead(0, b, 1500) // local NIC DMA read
	if s.Stats(0).DRAMReadBytes != 0 {
		t.Fatalf("local cached DMA read moved %v DRAM bytes, want 0", s.Stats(0).DRAMReadBytes)
	}
	if b.CachedAt() != 0 || !b.Dirty() {
		t.Fatal("DMA read must not invalidate or clean the line")
	}
}

func TestRemoteDeviceReadConsumesDRAMEvenWhenCached(t *testing.T) {
	// The Figure 7 observation: remote DMA reads probe LLC and DRAM in
	// parallel, so memory bandwidth equals throughput even on LLC hits.
	_, s := newSys(t)
	b := s.NewBuffer("txbuf", 1, 1500)
	s.CPUWrite(1, b, 1500) // hot in LLC 1
	s.ResetStats()
	s.DeviceRead(0, b, 1500) // remote NIC reads it
	if s.Stats(1).DRAMReadBytes != 1500 {
		t.Fatalf("parallel-probe DRAM reads = %v, want 1500", s.Stats(1).DRAMReadBytes)
	}
	if b.CachedAt() != 1 {
		t.Fatal("remote DMA read must not invalidate the cached copy")
	}
	if s.Fabric().Pipe(1, 0).DiscreteBytes() != 1500 {
		t.Fatal("data should cross the interconnect to the device")
	}
}

func TestUncachedDeviceReadFromDRAM(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("cold", 1, 4096)
	lat := s.DeviceRead(1, b, 4096)
	if s.Stats(1).DRAMReadBytes != 4096 {
		t.Fatalf("DRAM reads = %v, want 4096", s.Stats(1).DRAMReadBytes)
	}
	if lat < 85*time.Nanosecond {
		t.Fatalf("cold read latency = %v, want >= DRAM latency", lat)
	}
}

func TestCPUReadHitVsMissLatency(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("data", 0, 4096)
	miss := s.CPURead(0, b, 4096)
	hit := s.CPURead(0, b, 4096)
	if hit >= miss {
		t.Fatalf("hit (%v) should be cheaper than miss (%v)", hit, miss)
	}
}

func TestCPUReadRemoteDRAMSlowerThanLocal(t *testing.T) {
	_, s := newSys(t)
	local := s.NewBuffer("l", 0, 64*1024)
	remote := s.NewBuffer("r", 1, 64*1024)
	lLocal := s.CPURead(0, local, 64*1024)
	lRemote := s.CPURead(0, remote, 64*1024)
	if lRemote <= lLocal {
		t.Fatalf("remote read (%v) should cost more than local (%v)", lRemote, lLocal)
	}
}

func TestCPUWriteInvalidatesOtherSocket(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("shared", 0, 4096)
	s.CPURead(1, b, 4096) // cached on node 1
	if b.CachedAt() != 1 {
		t.Fatal("setup failed")
	}
	s.CPUWrite(0, b, 4096)
	if b.CachedAt() != 0 {
		t.Fatalf("writer should own the buffer, cached at %d", b.CachedAt())
	}
	if !b.Dirty() {
		t.Fatal("written buffer must be dirty")
	}
}

func TestDirtyRemoteInvalidationWritesBack(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("shared", 1, 4096)
	s.CPUWrite(1, b, 4096) // dirty on node 1
	s.ResetStats()
	s.CPUWrite(0, b, 4096) // node 0 takes ownership: node 1 must write back
	if s.Stats(1).DRAMWriteBytes < 4096 {
		t.Fatalf("writeback bytes = %v, want >= 4096", s.Stats(1).DRAMWriteBytes)
	}
}

func TestCacheToCacheReadMigratesResidency(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("msg", 0, 4096)
	s.CPUWrite(0, b, 4096)
	s.ResetStats()
	lat := s.CPURead(1, b, 4096)
	if b.CachedAt() != 1 {
		t.Fatalf("residency at %d, want 1 after consumer read", b.CachedAt())
	}
	if s.Fabric().Pipe(0, 1).DiscreteBytes() == 0 {
		t.Fatal("cache-to-cache transfer should cross the fabric")
	}
	if lat <= 0 {
		t.Fatal("c2c read must cost time")
	}
	if !b.Dirty() {
		t.Fatal("dirty data stays dirty across c2c migration")
	}
}

func TestLLCEvictionUnderCapacity(t *testing.T) {
	_, s := newSys(t)
	// Fill node 0's main partition (31.5 MiB effective) with 2 MiB
	// buffers, then verify the earliest is evicted.
	first := s.NewBuffer("first", 0, 2*1024*1024)
	s.CPURead(0, first, 2*1024*1024)
	for i := 0; i < 20; i++ {
		b := s.NewBuffer("filler", 0, 2*1024*1024)
		s.CPURead(0, b, 2*1024*1024)
	}
	if first.CachedAt() == 0 && first.CachedBytes() > 0 {
		t.Fatal("LRU buffer survived capacity pressure")
	}
}

func TestDirtyEvictionChargesWriteback(t *testing.T) {
	_, s := newSys(t)
	dirty := s.NewBuffer("dirty", 0, 2*1024*1024)
	s.CPUWrite(0, dirty, 2*1024*1024)
	s.ResetStats()
	for i := 0; i < 20; i++ {
		b := s.NewBuffer("filler", 0, 2*1024*1024)
		s.CPURead(0, b, 2*1024*1024)
	}
	if dirty.CachedAt() == 0 {
		t.Skip("dirty buffer not evicted under this capacity; adjust fillers")
	}
	if s.Stats(0).DRAMWriteBytes < 2*1024*1024 {
		t.Fatalf("writeback bytes = %v, want >= 2MiB", s.Stats(0).DRAMWriteBytes)
	}
}

func TestBigBufferCannotMonopolizeLLC(t *testing.T) {
	_, s := newSys(t)
	huge := s.NewBuffer("huge", 0, 256*1024*1024)
	s.CPURead(0, huge, 256*1024*1024)
	capMain := int64(float64(35*topology.MiB) * 0.9) // minus DDIO ways
	if huge.CachedBytes() > capMain/2+4096 {
		t.Fatalf("huge buffer cached %v bytes, want <= half the partition", huge.CachedBytes())
	}
}

func TestLLCPressureShrinksCapacity(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("ws", 0, 8*1024*1024)
	s.CPURead(0, b, 8*1024*1024)
	noPressure := b.CachedBytes()

	_, s2 := newSys(t)
	release := s2.AddLLCPressure(0, 400e9)
	b2 := s2.NewBuffer("ws", 0, 8*1024*1024)
	s2.CPURead(0, b2, 8*1024*1024)
	underPressure := b2.CachedBytes()
	if underPressure >= noPressure {
		t.Fatalf("pressure did not shrink residency: %v vs %v", underPressure, noPressure)
	}
	release()
}

func TestPressureReleaseRestores(t *testing.T) {
	_, s := newSys(t)
	release := s.AddLLCPressure(0, 60e9)
	release()
	b := s.NewBuffer("ws", 0, 8*1024*1024)
	s.CPURead(0, b, 8*1024*1024)
	if b.CachedBytes() < 4*1024*1024 {
		t.Fatalf("capacity not restored after release: %v", b.CachedBytes())
	}
}

func TestRehomeFlushesResidency(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("page", 0, 4096)
	s.CPUWrite(0, b, 4096)
	b.Rehome(1)
	if b.Home() != 1 || b.CachedAt() != topology.NoNode {
		t.Fatalf("rehome left home=%d cached=%d", b.Home(), b.CachedAt())
	}
}

func TestStatsAndReset(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("x", 0, 4096)
	s.CPURead(0, b, 4096)
	if s.TotalDRAMBytes() == 0 {
		t.Fatal("miss should move DRAM bytes")
	}
	s.ResetStats()
	if s.TotalDRAMBytes() != 0 {
		t.Fatal("ResetStats did not zero DRAM counters")
	}
}

func TestInterconnectCongestionSlowsRemoteCopies(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("r", 1, 64*1024)
	idle := s.CPURead(0, b, 64*1024)
	s.invalidate(b)

	// Saturate the 1->0 direction with a fluid antagonist.
	s.Fabric().AddFlow("stream", 1, 0, 38e9)
	b2 := s.NewBuffer("r2", 1, 64*1024)
	loaded := s.CPURead(0, b2, 64*1024)
	if loaded < 2*idle {
		t.Fatalf("congested remote read %v, want >= 2x idle %v", loaded, idle)
	}
}

func TestMemCtlContentionSlowsLocalMisses(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("l", 0, 64*1024)
	idle := s.CPURead(0, b, 64*1024)
	s.invalidate(b)

	s.MemCtl(0).AddFlow("stream", 59e9) // nearly saturate 60 GB/s
	b2 := s.NewBuffer("l2", 0, 64*1024)
	loaded := s.CPURead(0, b2, 64*1024)
	if loaded <= idle {
		t.Fatalf("contended local read %v, want > idle %v", loaded, idle)
	}
}

func TestZeroAndOversizedAccesses(t *testing.T) {
	_, s := newSys(t)
	b := s.NewBuffer("b", 0, 100)
	if s.CPURead(0, b, 0) != 0 {
		t.Fatal("zero-byte read should cost nothing")
	}
	if s.DeviceWrite(0, b, 0) != 0 {
		t.Fatal("zero-byte write should cost nothing")
	}
	// n > size clamps rather than corrupting occupancy accounting.
	s.CPURead(0, b, 1000)
	if b.CachedBytes() > 100 {
		t.Fatalf("cached %v bytes of a 100-byte buffer", b.CachedBytes())
	}
}

func TestNewBufferValidation(t *testing.T) {
	_, s := newSys(t)
	defer func() {
		if recover() == nil {
			t.Error("zero-size buffer should panic")
		}
	}()
	s.NewBuffer("bad", 0, 0)
}
