package memsys

import (
	"fmt"

	"ioctopus/internal/metrics"
)

// RegisterMetrics wires per-node memory-system telemetry into a
// registry: the NodeStats counters that Figures 6 and 9 aggregate, and
// each node's memory-controller pipe (bandwidth, utilization, latency)
// under "node<i>/memctl".
func (s *System) RegisterMetrics(r metrics.Registrar) {
	for _, n := range s.nodes {
		n := n
		sc := r.Scope(fmt.Sprintf("node%d", n.id))
		sc.Counter("dram_read_bytes", func() float64 { return n.stats.DRAMReadBytes })
		sc.Counter("dram_write_bytes", func() float64 { return n.stats.DRAMWriteBytes })
		sc.Counter("llc_hit_bytes", func() float64 { return n.stats.LLCHitBytes })
		sc.Counter("llc_miss_bytes", func() float64 { return n.stats.LLCMissBytes })
		metrics.RegisterPipe(sc.Scope("memctl"), n.memctl)
	}
}
