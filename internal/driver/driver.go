// Package driver implements the NIC drivers of §4.2: a standard per-PF
// driver (one netdevice per PCIe function, mlx5-style) and the octoNIC
// driver — the IOctopus mode of the team driver — which presents all
// PFs as a single netdevice, transmits through the PF local to the
// sending CPU, and keeps the device's IOctoRFS/MPFS tables in sync with
// thread placement via an asynchronous kernel worker, with periodic
// rule expiry.
package driver

import (
	"fmt"
	"strconv"
	"time"

	"ioctopus/internal/device"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/netstack"
	"ioctopus/internal/nic"
	"ioctopus/internal/topology"
)

// Params are driver cost/behaviour constants.
type Params struct {
	// NAPIBudget bounds segments per poll.
	NAPIBudget int
	// DoorbellCPU is the core-side cost of ringing a doorbell (the
	// posted write itself; flight time is the device's problem).
	DoorbellCPU time.Duration
	// TxFreePerPacket is skb-free cost per packet at Tx completion.
	TxFreePerPacket time.Duration
	// MPFSUpdateDelay is the latency of the asynchronous kernel worker
	// that pushes IOctoRFS/MPFS rule updates to the device (§4.2).
	MPFSUpdateDelay time.Duration
	// MPFSUpdateCPU is the worker's per-update CPU cost.
	MPFSUpdateCPU time.Duration
	// RuleExpiry ages out steering rules not refreshed for this long;
	// ExpiryScanPeriod is how often the scanner thread looks.
	RuleExpiry       time.Duration
	ExpiryScanPeriod time.Duration
	// LinkEventDelay is how long after a PHY carrier change the driver's
	// link-state handler runs (interrupt + workqueue latency). Zero
	// means synchronous delivery.
	LinkEventDelay time.Duration
	// CompRingNode overrides where completion rings are homed
	// (topology.NoNode = each queue's core node, the default). §2.4's
	// remote-DDIO measurement allocates response rings local to the
	// device instead.
	CompRingNode topology.NodeID
	// Datapath selects interrupt/NAPI delivery (the default), the
	// busy-poll PMD loop, or adaptive hybrid polling (see pmd.go).
	Datapath Datapath
	// BurstSize bounds segments per PMD Rx/Tx burst.
	BurstSize int
	// PollCost is the fixed CPU price of one poll-loop iteration (the
	// ring tail checks), charged whether or not the rings had work. It
	// must be positive: a free iteration would spin the poll core at a
	// single instant of simulated time.
	PollCost time.Duration
	// HybridIdlePolls is how many consecutive empty poll iterations the
	// hybrid datapath spins through before re-arming the interrupt.
	HybridIdlePolls int
	// WatchdogInterval enables the driver self-healing watchdog (see
	// watchdog.go): every interval it samples per-queue Tx progress and
	// the PMD pollers, escalating stuck queues through the recovery
	// ladder. Zero — the default — disables the watchdog entirely: no
	// timer, no per-tick work, no metrics scopes.
	WatchdogInterval time.Duration
	// WatchdogTicks is how many consecutive no-progress samples mark a
	// queue stuck; zero means the default (2).
	WatchdogTicks int
	// WatchdogBackoff is the holdoff after a recovery action before the
	// watchdog may escalate again; it doubles per ladder stage. Zero
	// means the default (2 × WatchdogInterval).
	WatchdogBackoff time.Duration
	// MaxParked caps the octo driver's parked-descriptor list (segments
	// stranded by a total outage, awaiting any live queue). Overflow
	// segments are released back to the pool — data loss recovered by
	// retransmission — and counted. Zero means the default (1024).
	MaxParked int
}

// DefaultParams returns calibrated defaults.
func DefaultParams() Params {
	return Params{
		NAPIBudget:       64,
		CompRingNode:     topology.NoNode,
		DoorbellCPU:      60 * time.Nanosecond,
		TxFreePerPacket:  40 * time.Nanosecond,
		MPFSUpdateDelay:  2 * time.Microsecond,
		MPFSUpdateCPU:    500 * time.Nanosecond,
		RuleExpiry:       30 * time.Second,
		ExpiryScanPeriod: time.Second,
		LinkEventDelay:   time.Millisecond,
		BurstSize:        32,
		PollCost:         200 * time.Nanosecond,
		HybridIdlePolls:  16,
	}
}

// queuePair is the per-core queue set a driver owns on some PF.
type queuePair struct {
	core   topology.CoreID
	node   topology.NodeID
	rx     *nic.RxQueue
	rxDesc *device.Ring
	tx     *nic.TxQueue

	// Prepared interrupt vectors and their NAPI handlers, built once at
	// queue setup so interrupt delivery allocates nothing.
	rxLine *kernel.IRQLine
	txLine *kernel.IRQLine

	// hybrid is the pair's adaptive-polling loop (DatapathHybrid only).
	hybrid *hybridState
}

// base carries the machinery shared by both drivers.
type base struct {
	k      *kernel.Kernel
	name   string
	params Params
	stack  *netstack.Stack
	pairs  []*queuePair // indexed by core id

	// scratch holds each thread's reusable xmit state. A thread has at
	// most one ExecFn in flight, so its scratch record is stable from
	// submission until the cost callback runs.
	scratch map[*kernel.Thread]*xmitScratch

	// repost, when set (octo failover), is offered Tx completions that
	// came back flagged Dropped (transmitted into a dead link) before
	// they are recycled; returning true means the driver took ownership
	// (re-posted on a surviving queue, or parked awaiting one) and the
	// packet must not be recycled or reported sent.
	repost func(qp *queuePair, pkt *nic.TxPacket) bool

	// pmd carries the poll-mode counters and pollers; nil on the
	// interrupt datapath (see pmd.go).
	pmd *pmdStats

	// wd is the self-healing watchdog; nil unless Params.WatchdogInterval
	// is set (see watchdog.go).
	wd *watchdog
}

// xmitScratch is one thread's cached transmit-cost state: the cost
// callback is built once per (driver, thread) pair and reads the
// per-call fields, replacing a closure per transmitted segment.
type xmitScratch struct {
	b     *base
	t     *kernel.Thread
	qp    *queuePair
	descs int
	cost  func() time.Duration
}

// run prices the descriptor write + doorbell on the thread's current
// node (evaluated at execution time, as the inline closure did).
func (sc *xmitScratch) run() time.Duration {
	cost := sc.qp.tx.DescRing().HostWrite(sc.t.Node(), sc.descs)
	cost += sc.b.params.DoorbellCPU
	// Doorbell flight time is charged to the device side via MMIOWrite
	// (it also accounts interconnect crossing if remote).
	return cost
}

// scratchFor returns (lazily creating) the thread's xmit scratch.
func (b *base) scratchFor(t *kernel.Thread) *xmitScratch {
	if b.scratch == nil {
		b.scratch = make(map[*kernel.Thread]*xmitScratch)
	}
	sc := b.scratch[t]
	if sc == nil {
		sc = &xmitScratch{b: b, t: t}
		sc.cost = sc.run
		b.scratch[t] = sc
	}
	return sc
}

// Bind attaches the driver to a stack; must be called before traffic
// flows (drivers deliver received segments into the stack).
func (b *base) bind(st *netstack.Stack) { b.stack = st }

// Name implements netstack.NetDevice.
func (b *base) Name() string { return b.name }

// NumTxQueues implements netstack.NetDevice: one queue per core.
func (b *base) NumTxQueues() int { return len(b.pairs) }

// TxQueueForCore implements netstack.NetDevice (the XPS map): queue i
// belongs to core i.
func (b *base) TxQueueForCore(c topology.CoreID) int { return int(c) }

// TxInFlight implements netstack.NetDevice.
func (b *base) TxInFlight(q int) int {
	if q < 0 || q >= len(b.pairs) {
		return 0
	}
	return b.pairs[q].tx.InFlight()
}

// buildQueues creates one rx/tx queue pair per core on the PF chosen
// by pfFor, with rings and packet buffers homed on the core's node and
// the interrupt targeted at that core (the paper's "descriptor ring per
// core with even distribution of interrupts").
func (b *base) buildQueues(mem *memsys.System, pfFor func(c topology.CoreID) *nic.PF) {
	topo := b.k.Topology()
	nicParams := pfFor(0).NIC().Params()
	for c := 0; c < topo.NumCores(); c++ {
		core := topology.CoreID(c)
		node := topo.NodeOf(core)
		pf := pfFor(core)
		qp := &queuePair{core: core, node: node}

		compHome := node
		if b.params.CompRingNode != topology.NoNode {
			compHome = b.params.CompRingNode
		}
		// Names are diagnostics-only; plain concatenation instead of
		// Sprintf keeps cluster construction cheap (it runs once per
		// measurement point, and rxbuf count × cores adds up).
		cs := strconv.Itoa(c)
		rxComp := device.NewRing(mem, b.name+":rxc"+cs, compHome, nicParams.RxRingEntries, nicParams.DescBytes)
		qp.rxDesc = device.NewRing(mem, b.name+":rxd"+cs, node, nicParams.RxRingEntries, nicParams.DescBytes)
		bufs := make([]*memsys.Buffer, 0, nicParams.RxBufCount)
		bufName := b.name + ":rxbuf" + cs
		for i := 0; i < nicParams.RxBufCount; i++ {
			bufs = append(bufs, mem.NewBuffer(bufName, node, nicParams.RxBufBytes))
		}
		qp.rxLine = b.k.Core(core).NewIRQLine(b.name+":rx", func() time.Duration { return b.napiRx(qp) })
		qp.rx = pf.AddRxQueue(rxComp, bufs, node, qp.rxLine.Raise)

		txDesc := device.NewRing(mem, b.name+":txd"+cs, node, nicParams.TxRingEntries, nicParams.DescBytes)
		txComp := device.NewRing(mem, b.name+":txc"+cs, compHome, nicParams.TxRingEntries, nicParams.DescBytes)
		qp.txLine = b.k.Core(core).NewIRQLine(b.name+":tx", func() time.Duration { return b.napiTx(qp) })
		qp.tx = pf.AddTxQueue(txDesc, txComp, node, qp.txLine.Raise)

		b.pairs = append(b.pairs, qp)
	}
	b.initDatapath()
	b.initWatchdog()
}

// Pollers returns the driver's busy-poll loops (busypoll datapath
// only; empty otherwise) — the fault injector's PollerStall targets.
func (b *base) Pollers() []*kernel.Poller {
	if b.pmd == nil {
		return nil
	}
	var out []*kernel.Poller
	for _, p := range b.pmd.pollers {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// napiRx is the NAPI poll: reap completions, charge driver+protocol
// per-packet costs, refill the ring, hand segments to the stack. Under
// the hybrid datapath the IRQ instead enters the pair's adaptive poll
// loop.
func (b *base) napiRx(qp *queuePair) time.Duration {
	if qp.hybrid != nil {
		return b.hybridEnter(qp)
	}
	var cost time.Duration
	batch := qp.rx.Poll(b.params.NAPIBudget)
	pkts := 0
	for _, rxp := range batch {
		// Read the completion entries the device wrote (the per-packet
		// LLC-miss of §5.1.1 when the write was remote).
		cost += qp.rx.CompletionRing().HostRead(qp.node, rxp.Packets)
		cost += b.stack.RxStackCost(rxp)
		pkts += rxp.Packets
		b.stack.DeliverRx(rxp)
	}
	if pkts > 0 {
		// Refill: post fresh buffers for the consumed descriptors.
		cost += qp.rxDesc.HostWrite(qp.node, pkts)
	}
	qp.rx.NapiComplete()
	return cost
}

// napiTx reaps Tx completions: per-packet completion-entry reads and
// skb frees, then OnSent callbacks. Reap is the Tx recycle point: the
// driver owns the packet here and returns it to the NIC's pool.
func (b *base) napiTx(qp *queuePair) time.Duration {
	if qp.hybrid != nil {
		return b.hybridEnter(qp)
	}
	var cost time.Duration
	for _, pkt := range qp.tx.Reap(b.params.NAPIBudget) {
		cost += qp.tx.CompletionRing().HostRead(qp.node, pkt.Packets)
		if pkt.Dropped && b.repost != nil && b.repost(qp, pkt) {
			// Re-posted on a surviving PF: ownership went back to the
			// device; OnSent fires when the re-send's completion reaps.
			continue
		}
		cost += time.Duration(pkt.Packets) * b.params.TxFreePerPacket
		if pkt.OnSent != nil {
			pkt.OnSent()
		}
		pkt.Recycle()
	}
	qp.tx.NapiComplete()
	return cost
}

// xmit runs the common transmit path: descriptor write + doorbell on
// the caller's core, then the hardware takes over.
func (b *base) xmit(t *kernel.Thread, pkt *netstack.Packet, txq int) {
	if txq < 0 || txq >= len(b.pairs) {
		panic(fmt.Sprintf("driver %s: bad txq %d", b.name, txq))
	}
	qp := b.pairs[txq]
	descs := pkt.Descriptors
	if descs <= 0 {
		descs = 1
	}
	sc := b.scratchFor(t)
	sc.qp, sc.descs = qp, descs
	t.ExecFn(sc.cost)
	flight := qp.tx.PF().Endpoint().MMIOWrite(t.Node())
	txPkt := qp.tx.PF().NIC().LeaseTxPacket()
	txPkt.Payload = pkt.Payload
	txPkt.Packets = pkt.Packets
	txPkt.Descriptors = descs
	txPkt.Flow = pkt.Flow
	txPkt.Dst = pkt.DstMAC
	txPkt.Seq = pkt.Seq
	txPkt.Meta = pkt.Meta
	txPkt.OnSent = pkt.OnSent
	// The leased packet keeps its fragment backing array across
	// recycles; append re-fills it without reallocating.
	for _, f := range pkt.Frags {
		txPkt.Frags = append(txPkt.Frags, nic.TxFrag{Buf: f.Buf, Bytes: f.Bytes})
	}
	b.k.Engine().After(flight, txPkt.DeferPost(qp.tx))
}

// RawTx exposes the queue-level transmit path for in-kernel packet
// generators (pktgen) that bypass the socket layer.
func (b *base) RawTx(t *kernel.Thread, pkt *netstack.Packet, txq int) {
	b.xmit(t, pkt, txq)
}

// RxQueuePair returns the rx queue serving a core (tests, inspection).
func (b *base) RxQueueFor(c topology.CoreID) *nic.RxQueue { return b.pairs[c].rx }

// TxQueueObjFor returns the hardware tx queue serving a core.
func (b *base) TxQueueObjFor(c topology.CoreID) *nic.TxQueue { return b.pairs[c].tx }
