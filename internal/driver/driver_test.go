package driver

import (
	"testing"
	"time"

	"ioctopus/internal/eth"
	"ioctopus/internal/interconnect"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/netstack"
	"ioctopus/internal/nic"
	"ioctopus/internal/pcie"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// drvRig assembles a host with a bifurcated NIC and no peer: enough to
// exercise driver-side behaviour directly.
type drvRig struct {
	eng *sim.Engine
	k   *kernel.Kernel
	mem *memsys.System
	nic *nic.NIC
	st  *netstack.Stack
	far *sinkPort
}

type sinkPort struct {
	mac eth.MAC
	got []*eth.Frame
}

func (s *sinkPort) Receive(f *eth.Frame) { s.got = append(s.got, f) }
func (s *sinkPort) PortMAC() eth.MAC     { return s.mac }
func (s *sinkPort) Engine() *sim.Engine  { return nil }

func newDrvRig(t *testing.T) *drvRig {
	t.Helper()
	e := sim.NewEngine()
	topo := topology.DualBroadwell()
	fab := interconnect.New(e, topo)
	mem := memsys.New(e, topo, fab, memsys.DefaultParams())
	pc := pcie.New(e, mem, pcie.DefaultParams())
	eps := pc.AttachCard(pcie.CardConfig{
		Name: "cx5", Gen: pcie.Gen3, TotalLanes: 16,
		Wiring: pcie.WiringBifurcated, Nodes: []topology.NodeID{0, 1},
	})
	n := nic.New(e, mem, "cx5", eps, nic.DefaultParams())
	k := kernel.New(e, topo, mem, kernel.DefaultParams())
	net := netstack.NewNetwork()
	st := netstack.NewStack(k, "host", net, netstack.DefaultParams())
	far := &sinkPort{mac: eth.MACFromInt(0xFA5)}
	n.AttachWire(eth.NewWire(e, eth.Wire100G("w"), n, far))
	return &drvRig{eng: e, k: k, mem: mem, nic: n, st: st, far: far}
}

func TestStandardDriverQueueLayout(t *testing.T) {
	r := newDrvRig(t)
	r.nic.LoadFirmware(nic.NewStandardFirmware(r.nic))
	d := NewStandard(r.k, r.mem, r.nic.PF(0), "eth0", DefaultParams())
	d.Bind(r.st)
	if d.NumTxQueues() != 28 {
		t.Fatalf("tx queues = %d, want one per core", d.NumTxQueues())
	}
	// Queue i serves core i; its rings live on core i's node.
	for c := 0; c < 28; c++ {
		q := d.RxQueueFor(topology.CoreID(c))
		wantNode := r.k.Topology().NodeOf(topology.CoreID(c))
		if q.CompletionRing().Buffer().Home() != wantNode {
			t.Fatalf("core %d completion ring homed on %d, want %d",
				c, q.CompletionRing().Buffer().Home(), wantNode)
		}
		if q.IRQNode() != wantNode {
			t.Fatalf("core %d irq targets node %d, want %d", c, q.IRQNode(), wantNode)
		}
	}
	// All queues belong to PF0 under the standard driver.
	if len(r.nic.PF(0).RxQueues()) != 28 || len(r.nic.PF(1).RxQueues()) != 0 {
		t.Fatal("standard driver must put every queue on its own PF")
	}
	e := r.eng
	e.Drain()
}

func TestOctoDriverQueuesAreSocketLocal(t *testing.T) {
	r := newDrvRig(t)
	r.nic.LoadFirmware(nic.NewOctoFirmware(r.nic, false))
	d := NewOcto(r.k, r.mem, r.nic, "octo0", DefaultParams())
	d.Bind(r.st)
	// 14 queues per PF: each core's queue lives on its local PF.
	if len(r.nic.PF(0).RxQueues()) != 14 || len(r.nic.PF(1).RxQueues()) != 14 {
		t.Fatalf("queue split = %d/%d, want 14/14",
			len(r.nic.PF(0).RxQueues()), len(r.nic.PF(1).RxQueues()))
	}
	for c := 0; c < 28; c++ {
		tx := d.TxQueueObjFor(topology.CoreID(c))
		if tx.PF().Node() != r.k.Topology().NodeOf(topology.CoreID(c)) {
			t.Fatalf("core %d tx queue on PF node %d", c, tx.PF().Node())
		}
	}
	r.eng.Drain()
}

func TestOctoSteerFlowGoesThroughAsyncWorker(t *testing.T) {
	r := newDrvRig(t)
	fw := nic.NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	d := NewOcto(r.k, r.mem, r.nic, "octo0", DefaultParams())
	d.Bind(r.st)
	ft := eth.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: eth.ProtoTCP}
	d.SteerFlow(ft, 20) // core 20 = node 1
	// The device table write is asynchronous: not yet applied.
	if fw.FlowCount() != 0 {
		t.Fatal("MPFS update should be deferred to the worker")
	}
	r.eng.RunFor(time.Millisecond)
	if fw.FlowCount() != 1 {
		t.Fatal("worker did not apply the update")
	}
	if d.UpdatesApplied() != 1 {
		t.Fatalf("updates applied = %d", d.UpdatesApplied())
	}
	// Steering the same flow to the same place refreshes without a new
	// device write.
	d.SteerFlow(ft, 21) // same node -> same PF+queue? no: queue differs per core
	r.eng.RunFor(time.Millisecond)
	if d.UpdatesApplied() != 2 {
		t.Fatalf("cross-core same-node steer should still update queue: %d", d.UpdatesApplied())
	}
	d.SteerFlow(ft, 21) // identical: refresh only
	r.eng.RunFor(time.Millisecond)
	if d.UpdatesApplied() != 2 {
		t.Fatal("identical steer must not push a device update")
	}
	r.eng.Drain()
}

func TestOctoRuleExpiry(t *testing.T) {
	r := newDrvRig(t)
	fw := nic.NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	params := DefaultParams()
	params.RuleExpiry = 5 * time.Millisecond
	params.ExpiryScanPeriod = time.Millisecond
	d := NewOcto(r.k, r.mem, r.nic, "octo0", params)
	d.Bind(r.st)
	ft := eth.FiveTuple{SrcIP: 9, DstIP: 8, SrcPort: 7, DstPort: 6, Proto: eth.ProtoTCP}
	d.SteerFlow(ft, 0)
	r.eng.RunFor(2 * time.Millisecond)
	if fw.FlowCount() != 1 || d.RuleCount() != 1 {
		t.Fatal("rule not installed")
	}
	r.eng.RunFor(20 * time.Millisecond)
	if fw.FlowCount() != 0 || d.RuleCount() != 0 {
		t.Fatalf("stale rule not expired: fw=%d drv=%d", fw.FlowCount(), d.RuleCount())
	}
	if d.RulesExpired() != 1 {
		t.Fatalf("expired = %d", d.RulesExpired())
	}
	r.eng.Drain()
}

func TestOctoExpireNowDeterministic(t *testing.T) {
	r := newDrvRig(t)
	fw := nic.NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	params := DefaultParams()
	params.RuleExpiry = time.Nanosecond
	d := NewOcto(r.k, r.mem, r.nic, "octo0", params)
	d.Bind(r.st)
	for p := uint16(0); p < 50; p++ {
		d.SteerFlow(eth.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: p, DstPort: 4, Proto: eth.ProtoTCP}, 0)
	}
	r.eng.RunFor(time.Millisecond)
	d.ExpireNow()
	if d.RuleCount() != 0 {
		t.Fatalf("rules left: %d", d.RuleCount())
	}
	r.eng.Drain()
}

func TestBondHashesFlowsAcrossMembers(t *testing.T) {
	r := newDrvRig(t)
	r.nic.LoadFirmware(nic.NewStandardFirmware(r.nic))
	d0 := NewStandard(r.k, r.mem, r.nic.PF(0), "eth0", DefaultParams())
	d1 := NewStandard(r.k, r.mem, r.nic.PF(1), "eth1", DefaultParams())
	d0.Bind(r.st)
	d1.Bind(r.st)
	bond := NewBond("bond0", d0, d1)
	if bond.HWAddr() != d0.HWAddr() {
		t.Fatal("bond should adopt the first member's MAC")
	}
	// The member is a pure function of the flow hash: the host cannot
	// re-steer a flow between members (the §2.5 argument).
	hits := map[string]int{}
	for p := uint16(0); p < 64; p++ {
		ft := eth.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: p, DstPort: 80, Proto: eth.ProtoTCP}
		hits[bond.member(ft).Name()]++
		if bond.member(ft) != bond.member(ft) {
			t.Fatal("member must be stable per flow")
		}
	}
	if hits["eth0"] == 0 || hits["eth1"] == 0 {
		t.Fatalf("bond did not spread flows: %v", hits)
	}
	r.eng.Drain()
}

func TestBondXmitDelegates(t *testing.T) {
	r := newDrvRig(t)
	r.nic.LoadFirmware(nic.NewStandardFirmware(r.nic))
	d0 := NewStandard(r.k, r.mem, r.nic.PF(0), "eth0", DefaultParams())
	d1 := NewStandard(r.k, r.mem, r.nic.PF(1), "eth1", DefaultParams())
	d0.Bind(r.st)
	d1.Bind(r.st)
	bond := NewBond("bond0", d0, d1)
	buf := r.mem.NewBuffer("p", 0, 1500)
	done := 0
	r.k.Spawn("tx", 0, func(th *kernel.Thread) {
		for p := uint16(0); p < 8; p++ {
			bond.Xmit(th, &netstack.Packet{
				Flow:    eth.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: p, DstPort: 80, Proto: eth.ProtoTCP},
				DstMAC:  r.far.mac,
				Payload: 1500, Packets: 1,
				Frags: []netstack.Frag{{Buf: buf, Bytes: 1500}},
			}, bond.TxQueueForCore(0))
			done++
		}
	})
	r.eng.RunFor(10 * time.Millisecond)
	if done != 8 {
		t.Fatalf("xmit loop incomplete: %d", done)
	}
	if len(r.far.got) != 8 {
		t.Fatalf("frames at far end = %d, want 8", len(r.far.got))
	}
	// Both PFs transmitted (flows hash across members).
	if r.nic.PF(0).TxBytes() == 0 || r.nic.PF(1).TxBytes() == 0 {
		t.Fatalf("tx split = %v/%v", r.nic.PF(0).TxBytes(), r.nic.PF(1).TxBytes())
	}
	r.eng.Drain()
}

func TestDriverTxInFlightTracksPostedWork(t *testing.T) {
	r := newDrvRig(t)
	r.nic.LoadFirmware(nic.NewStandardFirmware(r.nic))
	d := NewStandard(r.k, r.mem, r.nic.PF(0), "eth0", DefaultParams())
	d.Bind(r.st)
	buf := r.mem.NewBuffer("p", 0, 64*1024)
	r.k.Spawn("tx", 0, func(th *kernel.Thread) {
		d.Xmit(th, &netstack.Packet{
			Flow:    eth.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 1, DstPort: 80, Proto: eth.ProtoTCP},
			DstMAC:  r.far.mac,
			Payload: 64 * 1024, Packets: 44,
			Frags: []netstack.Frag{{Buf: buf, Bytes: 64 * 1024}},
		}, 0)
	})
	r.eng.RunFor(5 * time.Microsecond)
	if d.TxInFlight(0) != 1 {
		t.Fatalf("in flight = %d during transmit", d.TxInFlight(0))
	}
	r.eng.RunFor(10 * time.Millisecond)
	if d.TxInFlight(0) != 0 {
		t.Fatalf("in flight = %d after completion reap", d.TxInFlight(0))
	}
	if d.TxInFlight(-1) != 0 || d.TxInFlight(999) != 0 {
		t.Fatal("out-of-range queue should report 0")
	}
	r.eng.Drain()
}
