// Poll-mode (DPDK-style) datapaths: instead of the IRQ→softirq→NAPI
// chain, dedicated cores spin on the Rx/Tx rings in batched bursts and
// hand received segments straight to the sockets. Three modes:
//
//   - DatapathInterrupt: the default NAPI path, untouched.
//   - DatapathBusyPoll: every queue is switched to polled mode at
//     construction (no interrupts, no coalesce timers, ever) and one
//     dedicated poll core per NUMA node — the last core of the node, so
//     workload pinning on the low cores is undisturbed — spins on all
//     of the node's queue pairs. The spin burns the core by
//     construction: busy-poll occupancy lands in the core's BusyTime
//     integral through kernel.Poller, so CPU-efficiency figures show
//     the true cost of the bypass.
//   - DatapathHybrid: adaptive polling. The queue pair runs in
//     interrupt mode until an IRQ arrives, then switches itself to
//     polled mode and spins on its own core while traffic keeps the
//     ring non-empty; after HybridIdlePolls consecutive empty polls it
//     re-arms the interrupt (completions that landed meanwhile refire
//     it exactly once — the NAPI re-arm rule).
//
// Burst processing reuses the queues' Poll/Reap backing arrays (the
// PR 4 scheme) and every loop body, cost callback and work item below
// is built once at construction, so the steady-state poll path
// allocates nothing (BenchmarkBusyPollPath gates this).
package driver

import (
	"fmt"
	"strconv"
	"time"

	"ioctopus/internal/kernel"
	"ioctopus/internal/topology"
)

// Datapath selects how completions reach the driver.
type Datapath int

// Datapaths. The zero value is the interrupt path so that existing
// configs (and the serialized zero value) mean "exactly today's
// behavior".
const (
	DatapathInterrupt Datapath = iota
	DatapathBusyPoll
	DatapathHybrid
)

// String returns the CLI/scenario spelling.
func (d Datapath) String() string {
	switch d {
	case DatapathInterrupt:
		return "interrupt"
	case DatapathBusyPoll:
		return "busypoll"
	case DatapathHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("Datapath(%d)", int(d))
}

// ParseDatapath maps the CLI/scenario spelling back; the empty string
// is the default (interrupt).
func ParseDatapath(s string) (Datapath, error) {
	switch s {
	case "", "interrupt":
		return DatapathInterrupt, nil
	case "busypoll":
		return DatapathBusyPoll, nil
	case "hybrid":
		return DatapathHybrid, nil
	}
	return 0, fmt.Errorf("driver: unknown datapath %q (want interrupt, busypoll or hybrid)", s)
}

// pmdStats are the poll-mode counters exported under the driver's
// pmd/ metrics scope.
type pmdStats struct {
	polls      uint64 // poll-loop iterations
	emptyPolls uint64 // iterations that found no work in any direction
	bursts     uint64 // non-empty Rx/Tx bursts processed
	burstPkts  uint64 // segments across those bursts (occupancy numerator)
	// pollers/pollerPairs are indexed by NUMA node (nil/empty for nodes
	// without queue pairs); the watchdog's PMD fallback needs to know
	// which pairs a wedged loop owns.
	pollers     []*kernel.Poller
	pollerPairs [][]*queuePair
}

// initDatapath arms the configured poll-mode machinery after the queue
// pairs exist; called from buildQueues, a no-op for the interrupt path.
func (b *base) initDatapath() {
	if b.params.Datapath != DatapathInterrupt {
		// A caller-supplied Params may predate the PMD knobs; zero
		// values mean the calibrated defaults, not a free (and
		// non-terminating) poll loop.
		if b.params.BurstSize <= 0 {
			b.params.BurstSize = 32
		}
		if b.params.PollCost <= 0 {
			b.params.PollCost = 200 * time.Nanosecond
		}
		if b.params.HybridIdlePolls <= 0 {
			b.params.HybridIdlePolls = 16
		}
	}
	switch b.params.Datapath {
	case DatapathBusyPoll:
		b.pmd = &pmdStats{}
		b.startPollers()
	case DatapathHybrid:
		b.pmd = &pmdStats{}
		for _, qp := range b.pairs {
			h := &hybridState{b: b, qp: qp, name: b.name + ":hybrid" + strconv.Itoa(int(qp.core))}
			h.runFn = h.iterate
			qp.hybrid = h
		}
	}
}

// startPollers switches every queue to polled mode and pins one
// busy-poll loop per NUMA node, on the node's last core, spinning over
// that node's queue pairs.
func (b *base) startPollers() {
	topo := b.k.Topology()
	b.pmd.pollers = make([]*kernel.Poller, topo.NumNodes())
	b.pmd.pollerPairs = make([][]*queuePair, topo.NumNodes())
	for n := 0; n < topo.NumNodes(); n++ {
		node := topology.NodeID(n)
		var pairs []*queuePair
		for _, qp := range b.pairs {
			if qp.node != node {
				continue
			}
			pairs = append(pairs, qp)
			qp.rx.SetPolled(true)
			qp.tx.SetPolled(true)
		}
		if len(pairs) == 0 {
			continue
		}
		cores := topo.CoresOn(node)
		pollCore := cores[len(cores)-1].ID
		owned := pairs // bind the per-node slice once; the body reuses it
		p := b.k.Core(pollCore).StartPoller(b.name+":node"+strconv.Itoa(n), func() time.Duration {
			return b.pmdPoll(owned)
		})
		b.pmd.pollers[n] = p
		b.pmd.pollerPairs[n] = owned
	}
}

// pmdPoll is one busy-poll iteration: a fixed tail-check cost plus one
// Rx and one Tx burst per owned queue pair.
func (b *base) pmdPoll(pairs []*queuePair) time.Duration {
	cost := b.params.PollCost
	work := 0
	for _, qp := range pairs {
		c, n := b.burstRx(qp)
		cost += c
		work += n
		c, n = b.burstTx(qp)
		cost += c
		work += n
	}
	b.pmd.polls++
	if work == 0 {
		b.pmd.emptyPolls++
	}
	return cost
}

// burstRx drains up to one burst of received segments straight into the
// sockets via the stack's burst-delivery path: completion-entry reads
// and ring refill are priced as on the NAPI path, but the per-packet
// softirq overhead and the IRQ entry never happen. The batch is a view
// into the queue's reused backing array; DeliverRxBurst transfers
// ownership of every segment in it.
func (b *base) burstRx(qp *queuePair) (time.Duration, int) {
	batch := qp.rx.Poll(b.params.BurstSize)
	if len(batch) == 0 {
		return 0, 0
	}
	var cost time.Duration
	pkts := 0
	for _, rxp := range batch {
		cost += qp.rx.CompletionRing().HostRead(qp.node, rxp.Packets)
		pkts += rxp.Packets
	}
	cost += b.stack.DeliverRxBurst(batch)
	cost += qp.rxDesc.HostWrite(qp.node, pkts)
	b.pmd.bursts++
	b.pmd.burstPkts += uint64(len(batch))
	return cost, len(batch)
}

// burstTx reaps up to one burst of Tx completions: identical semantics
// to the NAPI reap (repost-on-drop, OnSent, recycle), only the caller
// and its pricing differ.
func (b *base) burstTx(qp *queuePair) (time.Duration, int) {
	batch := qp.tx.Reap(b.params.BurstSize)
	if len(batch) == 0 {
		return 0, 0
	}
	var cost time.Duration
	for _, pkt := range batch {
		cost += qp.tx.CompletionRing().HostRead(qp.node, pkt.Packets)
		if pkt.Dropped && b.repost != nil && b.repost(qp, pkt) {
			continue
		}
		cost += time.Duration(pkt.Packets) * b.params.TxFreePerPacket
		if pkt.OnSent != nil {
			pkt.OnSent()
		}
		pkt.Recycle()
	}
	b.pmd.bursts++
	b.pmd.burstPkts += uint64(len(batch))
	return cost, len(batch)
}

// hybridState is one queue pair's adaptive-polling loop.
type hybridState struct {
	b      *base
	qp     *queuePair
	name   string
	active bool
	idle   int
	runFn  func() time.Duration // cached iterate, for Core.Submit
}

// hybridEnter runs in the queue pair's IRQ context: switch the pair to
// polled mode and run the first poll iteration right there; the loop
// then self-submits on the same core until it goes idle.
func (b *base) hybridEnter(qp *queuePair) time.Duration {
	h := qp.hybrid
	if h.active {
		// The other direction's IRQ raced the loop entry; the active
		// loop already polls both rings.
		return 0
	}
	h.active = true
	h.idle = 0
	qp.rx.SetPolled(true)
	qp.tx.SetPolled(true)
	return h.iterate()
}

// iterate is one adaptive-poll iteration over both directions. Work
// resets the idle count; HybridIdlePolls consecutive empty iterations
// end the loop and re-arm the interrupt.
func (h *hybridState) iterate() time.Duration {
	b, qp := h.b, h.qp
	cost := b.params.PollCost
	c, n := b.burstRx(qp)
	cost += c
	work := n
	c, n = b.burstTx(qp)
	cost += c
	work += n
	b.pmd.polls++
	if work == 0 {
		b.pmd.emptyPolls++
		h.idle++
	} else {
		h.idle = 0
	}
	if h.idle >= b.params.HybridIdlePolls {
		h.exit()
		return cost
	}
	b.k.Core(qp.core).Submit(h.name, h.runFn, nil)
	return cost
}

// exit leaves polled mode. SetPolled(false) and NapiComplete re-run the
// interrupt decision with NAPI gating cleared, so completions that
// arrived during the polled window fire the interrupt exactly once.
func (h *hybridState) exit() {
	h.active = false
	h.qp.rx.SetPolled(false)
	h.qp.tx.SetPolled(false)
	h.qp.rx.NapiComplete()
	h.qp.tx.NapiComplete()
}
