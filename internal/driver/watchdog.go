// The driver watchdog: self-healing against device failure domains.
//
// Real drivers (mlx5's tx_timeout, ixgbe's watchdog task) assume the
// device can wedge underneath them — firmware resets wipe steering
// tables, queues stop delivering completions, and (since kernel-bypass)
// a dedicated poll core can hang on a dead register read with no
// interrupt path watching it. The watchdog is the driver-side answer:
// a periodic tick that samples per-queue Tx progress and poll-loop
// liveness, escalating stuck queues through a staged recovery ladder
//
//	stage 0: queue reset — re-initialize the queue pair and re-post
//	         its descriptors, recovering writebacks stranded
//	         device-side;
//	stage 1: firmware reprogram — replay the driver's journaled flow
//	         rules (the table-wipe repair, octo's resteer machinery
//	         run unconditionally);
//	stage 2: declare the PF dead and hand off to the link-failover
//	         path, which re-steers every flow to surviving PFs.
//
// Each action is followed by an exponential backoff (doubling per
// stage) so the watchdog gives recovery time to take effect instead of
// hammering the ladder; a queue that shows progress for two consecutive
// ticks resets its stage, and a PF the watchdog declared dead is
// brought back through the same failover path once its queues move
// again. PMD degradation is handled per poll loop: a loop whose
// iteration counter stops advancing has its queues flipped back to
// interrupt mode (SetPolled(false) — the exactly-once re-arm), and
// flipped back to polled mode when the loop breathes again.
//
// The tick runs on the simulation engine's timer wheel (kernel-timer
// fiction: a real watchdog burns microseconds per second, below this
// model's resolution of interest), so a disabled watchdog — the
// default — costs exactly nothing: no timer is armed, no state exists.
package driver

import (
	"time"

	"ioctopus/internal/kernel"
	"ioctopus/internal/sim"
)

// WatchdogStats is a snapshot of the watchdog's counters.
type WatchdogStats struct {
	Ticks           uint64 // watchdog tick invocations
	QueueResets     uint64 // stage-0 queue resets performed
	FwReprograms    uint64 // stage-1 firmware rule replays triggered
	PFDead          uint64 // stage-2 PF-dead declarations
	PFRecovered     uint64 // watchdog-declared-dead PFs brought back
	PollerFallbacks uint64 // wedged poll loops degraded to interrupts
	PollerReenters  uint64 // recovered loops returned to polled mode
}

// watchdog is one driver's self-healing state.
type watchdog struct {
	b          *base
	interval   time.Duration
	stuckAfter int
	backoff    time.Duration
	tickFn     func() // cached tick, rescheduled every interval

	queues  []wdQueue
	pollers []wdPoller

	// Ladder hooks, installed by the owning driver after construction;
	// a nil stage is skipped (the standard driver has no failover path,
	// so its ladder tops out at the firmware reprogram).
	fwReplay func() int            // stage 1: replay journaled rules
	setPFUp  func(pf int, up bool) // stage 2: declare a PF dead / recovered

	// pfDead tracks PFs this watchdog declared dead, so one stuck PF
	// with many queues fails over once and fails back once.
	pfDead map[int]bool

	stats WatchdogStats
}

// wdQueue is one queue pair's progress-tracking state.
type wdQueue struct {
	qp       *queuePair
	lastSent uint64
	stuck    int // consecutive no-progress ticks
	healthy  int // consecutive progressing ticks
	stage    int // next ladder stage to try
	nextTry  sim.Time
}

// wdPoller is one busy-poll loop's liveness state.
type wdPoller struct {
	p        *kernel.Poller
	pairs    []*queuePair
	lastIter uint64
	fellBack bool
}

// initWatchdog arms the watchdog if Params enable it; called from
// buildQueues after the queue pairs and pollers exist.
func (b *base) initWatchdog() {
	iv := b.params.WatchdogInterval
	if iv <= 0 {
		return
	}
	w := &watchdog{
		b:          b,
		interval:   iv,
		stuckAfter: b.params.WatchdogTicks,
		backoff:    b.params.WatchdogBackoff,
		pfDead:     make(map[int]bool),
	}
	if w.stuckAfter <= 0 {
		w.stuckAfter = 2
	}
	if w.backoff <= 0 {
		w.backoff = 2 * w.interval
	}
	for _, qp := range b.pairs {
		w.queues = append(w.queues, wdQueue{qp: qp})
	}
	if b.pmd != nil {
		for n, p := range b.pmd.pollers {
			if p == nil {
				continue
			}
			w.pollers = append(w.pollers, wdPoller{p: p, pairs: b.pmd.pollerPairs[n]})
		}
	}
	w.tickFn = w.tick
	b.wd = w
	b.k.Engine().After(iv, w.tickFn)
}

// WatchdogStats returns a snapshot of the watchdog's counters (zero
// value when the watchdog is disabled).
func (b *base) WatchdogStats() WatchdogStats {
	if b.wd == nil {
		return WatchdogStats{}
	}
	return b.wd.stats
}

// tick is one watchdog pass; it reschedules itself.
func (w *watchdog) tick() {
	w.stats.Ticks++
	now := w.b.k.Engine().Now()
	for i := range w.queues {
		w.checkQueue(&w.queues[i], now)
	}
	for i := range w.pollers {
		w.checkPoller(&w.pollers[i])
	}
	w.b.k.Engine().After(w.interval, w.tickFn)
}

// checkQueue samples one queue pair's Tx progress. "Stuck" is the real
// drivers' tx_timeout condition: descriptors in flight and no
// completion delivered since the last sample.
func (w *watchdog) checkQueue(ws *wdQueue, now sim.Time) {
	sent := ws.qp.tx.Sent()
	if sent != ws.lastSent || ws.qp.tx.InFlight() == 0 {
		ws.lastSent = sent
		ws.stuck = 0
		ws.healthy++
		if ws.healthy >= 2 && ws.stage > 0 {
			w.recovered(ws)
		}
		return
	}
	ws.healthy = 0
	ws.stuck++
	if ws.stuck < w.stuckAfter || now < ws.nextTry {
		return
	}
	w.escalate(ws, now)
}

// escalate runs the queue's next ladder stage and arms the backoff.
func (w *watchdog) escalate(ws *wdQueue, now sim.Time) {
	switch ws.stage {
	case 0:
		// Queue reset: recover completions stranded device-side. If the
		// device fault persists, new writebacks stall again and the next
		// escalation climbs the ladder.
		w.stats.QueueResets++
		ws.qp.rx.FlushStalled()
		ws.qp.tx.FlushStalled()
	case 1:
		// Firmware reprogram: replay the journal in case the device lost
		// its steering state along with the queue.
		if w.fwReplay != nil {
			w.stats.FwReprograms++
			w.fwReplay()
		}
	default:
		// Give up on the PF: declare it dead and let the failover path
		// move every flow to the survivors. Guarded per PF — the first
		// stuck queue pulls the trigger for all of them.
		pf := ws.qp.tx.PF().Index()
		if w.setPFUp != nil && !w.pfDead[pf] {
			w.pfDead[pf] = true
			w.stats.PFDead++
			w.setPFUp(pf, false)
		}
	}
	ws.nextTry = now.Add(w.backoff << ws.stage)
	if ws.stage < 2 {
		ws.stage++
	}
	// The action needs stuckAfter fresh no-progress ticks (plus the
	// backoff) before the next rung fires.
	ws.stuck = 0
}

// recovered resets a queue's ladder after sustained progress and brings
// back a PF the watchdog had declared dead.
func (w *watchdog) recovered(ws *wdQueue) {
	ws.stage = 0
	ws.nextTry = 0
	pf := ws.qp.tx.PF().Index()
	if w.pfDead[pf] {
		delete(w.pfDead, pf)
		w.stats.PFRecovered++
		if w.setPFUp != nil {
			w.setPFUp(pf, true)
		}
	}
}

// checkPoller samples one busy-poll loop's liveness: a loop whose
// iteration count stops advancing is wedged (no interrupt path notices
// — that is the bypass bargain), so its queues fall back to interrupt
// mode until the loop breathes again.
func (w *watchdog) checkPoller(wp *wdPoller) {
	it := wp.p.Iterations()
	alive := it != wp.lastIter
	wp.lastIter = it
	if !alive && !wp.fellBack {
		wp.fellBack = true
		w.stats.PollerFallbacks++
		for _, qp := range wp.pairs {
			// Exactly-once re-arm: leaving polled mode re-runs the
			// interrupt decision, so completions the wedged loop never
			// reaped fire immediately on the NAPI path.
			qp.rx.SetPolled(false)
			qp.tx.SetPolled(false)
		}
		return
	}
	if alive && wp.fellBack {
		wp.fellBack = false
		w.stats.PollerReenters++
		for _, qp := range wp.pairs {
			qp.rx.SetPolled(true)
			qp.tx.SetPolled(true)
		}
	}
}
