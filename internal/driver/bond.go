package driver

import (
	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/netstack"
	"ioctopus/internal/topology"
)

// Bond is the link-aggregation baseline of §2.5: a team/bonding device
// over multiple lower netdevices that hashes each flow to a member.
// It demonstrates why aggregation does not solve NUDMA: the member
// carrying a flow is fixed by the hash — the host has no way to move a
// flow to the NIC local to wherever its thread runs, and the switch
// picks the inbound member by its own hash.
type Bond struct {
	name   string
	lowers []netstack.NetDevice
}

var _ netstack.NetDevice = (*Bond)(nil)

// NewBond aggregates lower devices.
func NewBond(name string, lowers ...netstack.NetDevice) *Bond {
	if len(lowers) == 0 {
		panic("driver: bond needs members")
	}
	return &Bond{name: name, lowers: lowers}
}

// Name implements netstack.NetDevice.
func (d *Bond) Name() string { return d.name }

// HWAddr implements netstack.NetDevice: bonds adopt the first member's
// address.
func (d *Bond) HWAddr() eth.MAC { return d.lowers[0].HWAddr() }

// member returns the link a flow hashes to.
func (d *Bond) member(ft eth.FiveTuple) netstack.NetDevice {
	return d.lowers[int(ft.Hash())%len(d.lowers)]
}

// NumTxQueues implements netstack.NetDevice (queues of the widest
// member; the member is chosen per flow at Xmit).
func (d *Bond) NumTxQueues() int {
	n := 0
	for _, l := range d.lowers {
		if q := l.NumTxQueues(); q > n {
			n = q
		}
	}
	return n
}

// TxQueueForCore implements netstack.NetDevice.
func (d *Bond) TxQueueForCore(c topology.CoreID) int {
	return d.lowers[0].TxQueueForCore(c)
}

// TxInFlight implements netstack.NetDevice.
func (d *Bond) TxInFlight(q int) int {
	n := 0
	for _, l := range d.lowers {
		n += l.TxInFlight(q)
	}
	return n
}

// Xmit implements netstack.NetDevice: the flow's hash — not the
// sender's location — picks the member.
func (d *Bond) Xmit(t *kernel.Thread, pkt *netstack.Packet, txq int) {
	d.member(pkt.Flow).Xmit(t, pkt, txq)
}

// SteerFlow implements netstack.NetDevice: the best a bond can do is
// steer within whichever member the flow hashed to.
func (d *Bond) SteerFlow(ft eth.FiveTuple, core topology.CoreID) {
	d.member(ft.Reverse()).SteerFlow(ft, core)
}
