package driver

import (
	"testing"
	"time"

	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/netstack"
	"ioctopus/internal/nic"
)

func TestWatchdogDisabledByDefault(t *testing.T) {
	r := newDrvRig(t)
	r.nic.LoadFirmware(nic.NewStandardFirmware(r.nic))
	d := NewStandard(r.k, r.mem, r.nic.PF(0), "eth0", DefaultParams())
	d.Bind(r.st)
	if d.wd != nil {
		t.Fatal("default params must not arm the watchdog (zero cost when idle)")
	}
	if st := d.WatchdogStats(); st != (WatchdogStats{}) {
		t.Fatalf("disabled watchdog reported stats: %+v", st)
	}
	r.eng.Drain()
}

// TestWatchdogStageZeroHealsStalledQueue: a transient completion stall
// is healed by the first ladder rung alone — the queue reset flushes
// the stranded writebacks, the queue shows progress again and the
// ladder never climbs to firmware reprogram or PF-dead.
func TestWatchdogStageZeroHealsStalledQueue(t *testing.T) {
	r := newDrvRig(t)
	r.nic.LoadFirmware(nic.NewStandardFirmware(r.nic))
	params := DefaultParams()
	params.WatchdogInterval = 100 * time.Microsecond
	d := NewStandard(r.k, r.mem, r.nic.PF(0), "eth0", params)
	d.Bind(r.st)
	if d.wd == nil {
		t.Fatal("watchdog not armed")
	}

	r.nic.SetQueueStall(0, 0, true)
	buf := r.mem.NewBuffer("p", 0, 64*1024)
	r.k.Spawn("tx", 0, func(th *kernel.Thread) {
		d.Xmit(th, &netstack.Packet{
			Flow:    eth.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 1, DstPort: 80, Proto: eth.ProtoTCP},
			DstMAC:  r.far.mac,
			Payload: 64 * 1024, Packets: 44,
			Frags: []netstack.Frag{{Buf: buf, Bytes: 64 * 1024}},
		}, 0)
	})
	r.eng.RunFor(2 * time.Millisecond)

	st := d.WatchdogStats()
	if st.QueueResets != 1 {
		t.Fatalf("queue resets = %d, want exactly 1 (stage 0 heals, backoff holds)", st.QueueResets)
	}
	if st.FwReprograms != 0 || st.PFDead != 0 {
		t.Fatalf("ladder climbed past stage 0: reprograms=%d pf dead=%d", st.FwReprograms, st.PFDead)
	}
	if d.TxInFlight(0) != 0 {
		t.Fatalf("in flight = %d after the reset; flush did not recover the writebacks", d.TxInFlight(0))
	}
	if held := r.nic.PF(0).TxQueues()[0].HeldCompletions(); held != 0 {
		t.Fatalf("held completions = %d after the reset", held)
	}
	if st.Ticks == 0 {
		t.Fatal("watchdog never ticked")
	}
}

// TestWatchdogLadderEscalatesToFailoverAndBack is the full staircase: a
// persistent stall defeats the queue reset (new writebacks stall right
// back), defeats the firmware reprogram, and ends in a PF-dead
// declaration that rides the link-failover path. When the stall lifts,
// sustained progress brings the PF back through the same path.
func TestWatchdogLadderEscalatesToFailoverAndBack(t *testing.T) {
	r := newDrvRig(t)
	r.nic.LoadFirmware(nic.NewOctoFirmware(r.nic, false))
	params := DefaultParams()
	params.WatchdogInterval = 100 * time.Microsecond
	d := NewOcto(r.k, r.mem, r.nic, "octo0", params)
	d.Bind(r.st)
	ft := eth.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: eth.ProtoTCP}
	d.SteerFlow(ft, 0)
	r.eng.RunFor(time.Millisecond) // let the steering worker apply

	r.nic.SetQueueStall(0, 0, true)
	buf := r.mem.NewBuffer("p", 0, 1500)
	sent := 0
	var pump func()
	pump = func() {
		if sent >= 40 {
			return
		}
		sent++
		r.k.Spawn("tx", 0, func(th *kernel.Thread) {
			d.Xmit(th, &netstack.Packet{
				Flow: ft, DstMAC: r.far.mac,
				Payload: 1500, Packets: 1,
				Frags: []netstack.Frag{{Buf: buf, Bytes: 1500}},
			}, d.TxQueueForCore(0))
		})
		r.eng.After(100*time.Microsecond, pump)
	}
	r.eng.After(0, pump)
	r.eng.After(2500*time.Microsecond, func() { r.nic.SetQueueStall(0, 0, false) })
	r.eng.RunFor(8 * time.Millisecond)

	st := d.WatchdogStats()
	if st.QueueResets < 1 || st.FwReprograms < 1 || st.PFDead != 1 {
		t.Fatalf("ladder incomplete: resets=%d reprograms=%d pf dead=%d",
			st.QueueResets, st.FwReprograms, st.PFDead)
	}
	if d.RulesReplayed() < 1 {
		t.Fatalf("rules replayed = %d; stage 1 did not push the journal", d.RulesReplayed())
	}
	if d.Failovers() != 1 || d.Failbacks() != 1 {
		t.Fatalf("failovers=%d failbacks=%d, want 1/1", d.Failovers(), d.Failbacks())
	}
	if st.PFRecovered != 1 {
		t.Fatalf("pf recovered = %d, want 1", st.PFRecovered)
	}
	if held := r.nic.PF(0).TxQueues()[0].HeldCompletions(); held != 0 {
		t.Fatalf("held completions = %d after recovery", held)
	}
}

// TestWatchdogPollerFallbackAndReenter: a wedged busy-poll loop is
// detected by its flat iteration counter; its queues fall back to
// interrupt delivery (exactly-once re-arm) and re-enter polled mode
// when the loop breathes again.
func TestWatchdogPollerFallbackAndReenter(t *testing.T) {
	r := newDrvRig(t)
	r.nic.LoadFirmware(nic.NewOctoFirmware(r.nic, false))
	params := DefaultParams()
	params.Datapath = DatapathBusyPoll
	params.WatchdogInterval = 100 * time.Microsecond
	d := NewOcto(r.k, r.mem, r.nic, "octo0", params)
	d.Bind(r.st)
	if len(d.Pollers()) == 0 {
		t.Fatal("busypoll datapath started no pollers")
	}
	r.eng.RunFor(time.Millisecond) // loop running, watchdog sampling

	d.pmd.pollers[0].Wedge(2 * time.Millisecond)
	r.eng.RunFor(time.Millisecond)
	st := d.WatchdogStats()
	if st.PollerFallbacks != 1 {
		t.Fatalf("fallbacks = %d mid-wedge, want 1", st.PollerFallbacks)
	}
	for _, qp := range d.pmd.pollerPairs[0] {
		if qp.rx.Polled() || qp.tx.Polled() {
			t.Fatal("fallen-back queues must be in interrupt mode")
		}
	}
	// Node 1's loop is untouched.
	for _, qp := range d.pmd.pollerPairs[1] {
		if !qp.rx.Polled() {
			t.Fatal("healthy node's queues must stay polled")
		}
	}

	r.eng.RunFor(3 * time.Millisecond) // wedge over, loop resumes
	st = d.WatchdogStats()
	if st.PollerReenters != 1 {
		t.Fatalf("reenters = %d after the wedge, want 1", st.PollerReenters)
	}
	for _, qp := range d.pmd.pollerPairs[0] {
		if !qp.rx.Polled() || !qp.tx.Polled() {
			t.Fatal("recovered queues must re-enter polled mode")
		}
	}
	if st.PollerFallbacks != 1 {
		t.Fatalf("fallbacks = %d at end, want exactly 1", st.PollerFallbacks)
	}
}
