package driver

import (
	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/netstack"
	"ioctopus/internal/nic"
	"ioctopus/internal/topology"
)

// Standard is the shipping vendor driver: it manages ONE physical
// function and presents it as an independent netdevice with its own MAC
// and IP. On a bifurcated NIC the OS therefore sees two NICs (Figure
// 5a/b) — the configuration whose NUDMA behaviour the paper measures as
// `local`/`remote`.
type Standard struct {
	base
	pf *nic.PF
}

var _ netstack.NetDevice = (*Standard)(nil)

// NewStandard builds the per-PF driver: a queue pair per core (on every
// core of the machine, as the testbed configures), rings and buffers
// homed on each queue's core.
func NewStandard(k *kernel.Kernel, mem *memsys.System, pf *nic.PF, name string, params Params) *Standard {
	d := &Standard{
		base: base{k: k, name: name, params: params},
		pf:   pf,
	}
	d.buildQueues(mem, func(topology.CoreID) *nic.PF { return pf })
	return d
}

// Bind attaches the driver to the host stack.
func (d *Standard) Bind(st *netstack.Stack) { d.bind(st) }

// HWAddr implements netstack.NetDevice: the PF's own MAC.
func (d *Standard) HWAddr() eth.MAC { return d.pf.MAC() }

// PF returns the managed physical function.
func (d *Standard) PF() *nic.PF { return d.pf }

// Xmit implements netstack.NetDevice. The standard driver can only
// transmit through its own PF — if the sender's CPU is remote to it,
// every descriptor, doorbell and payload read crosses the interconnect.
func (d *Standard) Xmit(t *kernel.Thread, pkt *netstack.Packet, txq int) {
	d.xmit(t, pkt, txq)
}

// SteerFlow implements netstack.NetDevice: the ARFS path. The rule can
// only choose a queue within this PF; it cannot move the flow to
// another PCIe function, which is exactly why the standard architecture
// cannot escape NUDMA (§2.3).
func (d *Standard) SteerFlow(ft eth.FiveTuple, core topology.CoreID) {
	fw := d.pf.NIC().Firmware()
	if fw == nil {
		return
	}
	fw.ProgramFlow(ft, d.pf.Index(), int(core))
}
