package driver

import (
	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/netstack"
	"ioctopus/internal/nic"
	"ioctopus/internal/topology"
)

// Standard is the shipping vendor driver: it manages ONE physical
// function and presents it as an independent netdevice with its own MAC
// and IP. On a bifurcated NIC the OS therefore sees two NICs (Figure
// 5a/b) — the configuration whose NUDMA behaviour the paper measures as
// `local`/`remote`.
type Standard struct {
	base
	pf *nic.PF

	// rules journals the ARFS programming this driver issued (flow →
	// queue), so a firmware table wipe can be repaired by replay. ARFS
	// has no expiry in this driver, matching the firmware side: the
	// per-PF tables only shrink via RemoveFlow, which nothing calls on
	// the standard path.
	rules map[eth.FiveTuple]int

	fwResets      uint64
	rulesReplayed uint64
}

var _ netstack.NetDevice = (*Standard)(nil)

// NewStandard builds the per-PF driver: a queue pair per core (on every
// core of the machine, as the testbed configures), rings and buffers
// homed on each queue's core.
func NewStandard(k *kernel.Kernel, mem *memsys.System, pf *nic.PF, name string, params Params) *Standard {
	d := &Standard{
		base:  base{k: k, name: name, params: params},
		pf:    pf,
		rules: make(map[eth.FiveTuple]int),
	}
	d.buildQueues(mem, func(topology.CoreID) *nic.PF { return pf })
	// Firmware-reset recovery: replay the journaled ARFS rules after the
	// async event reaches the handler. The watchdog's stage-1 hook is
	// the same replay; there is no stage-2 failover — a standard driver
	// has no second PF to move flows to.
	pf.NIC().OnFirmwareReset(func() {
		if delay := d.base.params.LinkEventDelay; delay > 0 {
			d.k.Engine().After(delay, d.onFwReset)
			return
		}
		d.onFwReset()
	})
	if d.base.wd != nil {
		d.base.wd.fwReplay = d.replayRules
	}
	return d
}

// onFwReset counts the reset and replays the ARFS journal.
func (d *Standard) onFwReset() {
	d.fwResets++
	d.replayRules()
}

// replayRules reprograms every journaled ARFS rule into the wiped
// per-PF table, in deterministic 5-tuple order; returns rules replayed.
func (d *Standard) replayRules() int {
	fw := d.pf.NIC().Firmware()
	if fw == nil {
		return 0
	}
	fts := make([]eth.FiveTuple, 0, len(d.rules))
	for ft := range d.rules {
		fts = append(fts, ft)
	}
	sortTuples(fts)
	for _, ft := range fts {
		d.rulesReplayed++
		fw.ProgramFlow(ft, d.pf.Index(), d.rules[ft])
	}
	return len(fts)
}

// FwResets returns firmware resets the driver has handled.
func (d *Standard) FwResets() uint64 { return d.fwResets }

// RulesReplayed returns journaled rules replayed after table wipes.
func (d *Standard) RulesReplayed() uint64 { return d.rulesReplayed }

// Bind attaches the driver to the host stack.
func (d *Standard) Bind(st *netstack.Stack) { d.bind(st) }

// HWAddr implements netstack.NetDevice: the PF's own MAC.
func (d *Standard) HWAddr() eth.MAC { return d.pf.MAC() }

// PF returns the managed physical function.
func (d *Standard) PF() *nic.PF { return d.pf }

// Xmit implements netstack.NetDevice. The standard driver can only
// transmit through its own PF — if the sender's CPU is remote to it,
// every descriptor, doorbell and payload read crosses the interconnect.
func (d *Standard) Xmit(t *kernel.Thread, pkt *netstack.Packet, txq int) {
	d.xmit(t, pkt, txq)
}

// SteerFlow implements netstack.NetDevice: the ARFS path. The rule can
// only choose a queue within this PF; it cannot move the flow to
// another PCIe function, which is exactly why the standard architecture
// cannot escape NUDMA (§2.3).
func (d *Standard) SteerFlow(ft eth.FiveTuple, core topology.CoreID) {
	fw := d.pf.NIC().Firmware()
	if fw == nil {
		return
	}
	d.rules[ft] = int(core)
	fw.ProgramFlow(ft, d.pf.Index(), int(core))
}
