package driver

import (
	"ioctopus/internal/metrics"
)

// RegisterMetrics wires the driver-side view of the datapath into a
// registry: aggregate ring occupancy across the driver's queue pairs.
// (Per-queue hardware counters live under the NIC's own scope.)
func (b *base) RegisterMetrics(r metrics.Registrar) {
	r.Gauge("rx_pending", func() float64 {
		var s int
		for _, qp := range b.pairs {
			s += qp.rx.Pending()
		}
		return float64(s)
	})
	r.Gauge("tx_in_flight", func() float64 {
		var s int
		for _, qp := range b.pairs {
			s += qp.tx.InFlight()
		}
		return float64(s)
	})
	if b.pmd != nil {
		// Poll-mode counters (busypoll and hybrid datapaths only, so the
		// interrupt path's registry snapshot is unchanged).
		pm := r.Scope("pmd")
		pm.Counter("polls", func() float64 { return float64(b.pmd.polls) })
		pm.Counter("empty_polls", func() float64 { return float64(b.pmd.emptyPolls) })
		pm.Counter("bursts", func() float64 { return float64(b.pmd.bursts) })
		pm.Gauge("burst_occupancy", func() float64 {
			if b.pmd.bursts == 0 {
				return 0
			}
			return float64(b.pmd.burstPkts) / float64(b.pmd.bursts)
		})
	}
	if b.wd != nil {
		// Self-healing counters (watchdog-enabled runs only, same gating
		// rule as pmd/: the default registry snapshot is unchanged).
		wd := r.Scope("watchdog")
		wd.Counter("ticks", func() float64 { return float64(b.wd.stats.Ticks) })
		wd.Counter("queue_resets", func() float64 { return float64(b.wd.stats.QueueResets) })
		wd.Counter("fw_reprograms", func() float64 { return float64(b.wd.stats.FwReprograms) })
		wd.Counter("pf_dead", func() float64 { return float64(b.wd.stats.PFDead) })
		wd.Counter("pf_recovered", func() float64 { return float64(b.wd.stats.PFRecovered) })
		wd.Counter("poller_fallbacks", func() float64 { return float64(b.wd.stats.PollerFallbacks) })
		wd.Counter("poller_reenters", func() float64 { return float64(b.wd.stats.PollerReenters) })
	}
}

// RegisterMetrics adds the standard driver's firmware-recovery
// counters on top of the shared ring gauges, gated like the watchdog
// scope so the default registry snapshot is unchanged.
func (d *Standard) RegisterMetrics(r metrics.Registrar) {
	d.base.RegisterMetrics(r)
	if d.base.wd != nil {
		fr := r.Scope("fw/recovery")
		fr.Counter("resets", func() float64 { return float64(d.fwResets) })
		fr.Counter("rules_replayed", func() float64 { return float64(d.rulesReplayed) })
	}
}

// RegisterMetrics adds the octoNIC steering machinery on top of the
// shared ring gauges: IOctoRFS update-worker counters and rule-table
// occupancy under "steer".
func (d *Octo) RegisterMetrics(r metrics.Registrar) {
	d.base.RegisterMetrics(r)
	sc := r.Scope("steer")
	sc.Counter("updates_pushed", func() float64 { return float64(d.updatesPushed) })
	sc.Counter("updates_applied", func() float64 { return float64(d.updatesApplied) })
	sc.Counter("rules_expired", func() float64 { return float64(d.rulesExpired) })
	sc.Gauge("rule_count", func() float64 { return float64(len(d.rules)) })
	fo := r.Scope("failover")
	fo.Counter("failovers", func() float64 { return float64(d.failovers) })
	fo.Counter("failbacks", func() float64 { return float64(d.failbacks) })
	fo.Counter("reposted", func() float64 { return float64(d.reposted) })
	fo.Counter("rules_resteered", func() float64 { return float64(d.rulesResteered) })
	fo.Counter("parked_overflow", func() float64 { return float64(d.parkedOverflow) })
	fo.Counter("concurrent_ignored", func() float64 { return float64(d.concurrentIgnored) })
	fo.Gauge("degraded", func() float64 {
		if d.downPF >= 0 {
			return 1
		}
		return 0
	})
	if d.base.wd != nil {
		// Firmware-recovery counters ride the watchdog gate: both exist
		// only on self-healing-enabled runs.
		fr := r.Scope("fw/recovery")
		fr.Counter("resets", func() float64 { return float64(d.fwResets) })
		fr.Counter("rules_replayed", func() float64 { return float64(d.rulesReplayed) })
	}
}
