package driver

import (
	"fmt"
	"sort"

	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/netstack"
	"ioctopus/internal/nic"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// Octo is the octoNIC driver (§4.2): the IOctopus mode of the team
// driver. It presents the whole multi-PF device as ONE netdevice with
// one MAC and one IP. Each core's queue pair lives on the PF local to
// that core's node, so:
//
//   - transmits go through the PCIe endpoint local to the sending CPU
//     (the XPS map composed with per-core queues guarantees it);
//   - the ARFS callback becomes an IOctoRFS update: the flow's MPFS
//     rule moves to the PF (and queue) local to the thread's new core,
//     pushed to the device asynchronously by a kernel worker;
//   - a scanner thread periodically expires stale rules, as the Linux
//     ARFS implementation does.
type Octo struct {
	base
	nic *nic.NIC

	// rxSlot[core] = the queue index of that core's rx queue *within
	// its PF* (IOctoRFS rules name per-PF queues).
	rxSlot []int
	pfIdx  []int // per-core PF index

	updates *sim.Queue[steerUpdate]
	rules   map[eth.FiveTuple]*steerRule

	updatesPushed  uint64
	updatesApplied uint64
	rulesExpired   uint64
}

type steerUpdate struct {
	ft        eth.FiveTuple
	pf, queue int
}

type steerRule struct {
	pf, queue int
	refreshed sim.Time
}

var _ netstack.NetDevice = (*Octo)(nil)

// NewOcto builds the octoNIC driver over a multi-PF NIC running the
// IOctopus firmware. Every node must have a PF (that is the octoNIC
// wiring contract).
func NewOcto(k *kernel.Kernel, mem *memsys.System, n *nic.NIC, name string, params Params) *Octo {
	d := &Octo{
		base:  base{k: k, name: name, params: params},
		nic:   n,
		rules: make(map[eth.FiveTuple]*steerRule),
	}
	topo := k.Topology()
	perPFCount := make(map[int]int)
	pfByNode := make(map[topology.NodeID]*nic.PF)
	for _, pf := range n.PFs() {
		pfByNode[pf.Node()] = pf
	}
	for c := 0; c < topo.NumCores(); c++ {
		node := topo.NodeOf(topology.CoreID(c))
		pf, ok := pfByNode[node]
		if !ok {
			panic(fmt.Sprintf("driver %s: octoNIC has no PF on node %d", name, node))
		}
		d.pfIdx = append(d.pfIdx, pf.Index())
		d.rxSlot = append(d.rxSlot, perPFCount[pf.Index()])
		perPFCount[pf.Index()]++
	}
	d.buildQueues(mem, func(c topology.CoreID) *nic.PF {
		return n.PF(d.pfIdx[c])
	})
	d.updates = sim.NewQueue[steerUpdate](k.Engine(), 0)
	d.startWorker()
	d.startExpiryScanner()
	return d
}

// Bind attaches the driver to the host stack.
func (d *Octo) Bind(st *netstack.Stack) { d.bind(st) }

// HWAddr implements netstack.NetDevice: the device's single MAC.
func (d *Octo) HWAddr() eth.MAC { return d.nic.MAC() }

// NIC returns the managed device.
func (d *Octo) NIC() *nic.NIC { return d.nic }

// Xmit implements netstack.NetDevice. Because queue txq belongs to core
// txq and that core's queue pair sits on its local PF, transmission is
// always through the PCIe endpoint local to the sending CPU.
func (d *Octo) Xmit(t *kernel.Thread, pkt *netstack.Packet, txq int) {
	d.xmit(t, pkt, txq)
}

// SteerFlow implements netstack.NetDevice: the IOctoRFS update. The
// mapping to (PF, queue) is computed here; the device table write is
// pushed through the asynchronous kernel worker (§4.2: "the MPFS table
// is updated asynchronously by a separate kernel worker thread").
func (d *Octo) SteerFlow(ft eth.FiveTuple, core topology.CoreID) {
	pf, queue := d.pfIdx[core], d.rxSlot[core]
	now := d.k.Engine().Now()
	if r, ok := d.rules[ft]; ok {
		r.refreshed = now
		if r.pf == pf && r.queue == queue {
			return // already steered correctly; just refreshed
		}
		r.pf, r.queue = pf, queue
	} else {
		d.rules[ft] = &steerRule{pf: pf, queue: queue, refreshed: now}
	}
	d.updatesPushed++
	d.updates.ForcePut(steerUpdate{ft: ft, pf: pf, queue: queue})
}

// UpdatesApplied returns device table writes completed by the worker.
func (d *Octo) UpdatesApplied() uint64 { return d.updatesApplied }

// RulesExpired returns rules removed by the expiry scanner.
func (d *Octo) RulesExpired() uint64 { return d.rulesExpired }

// RuleCount returns driver-side rule table occupancy.
func (d *Octo) RuleCount() int { return len(d.rules) }

// startWorker launches the MPFS update worker thread (pinned to core 0,
// as an unbound kworker would typically land).
func (d *Octo) startWorker() {
	d.k.Spawn(d.name+":mpfs-worker", 0, func(t *kernel.Thread) {
		for {
			u, ok := d.updates.Get(t.Proc())
			if !ok {
				return
			}
			t.Sleep(d.params.MPFSUpdateDelay)
			t.Exec(d.params.MPFSUpdateCPU)
			if fw := d.nic.Firmware(); fw != nil {
				fw.ProgramFlow(u.ft, u.pf, u.queue)
			}
			d.updatesApplied++
		}
	})
}

// startExpiryScanner launches the periodic rule reaper.
func (d *Octo) startExpiryScanner() {
	d.k.Spawn(d.name+":rule-expiry", 0, func(t *kernel.Thread) {
		for {
			t.Sleep(d.params.ExpiryScanPeriod)
			now := t.Now()
			expired := d.expiredRules(now)
			for _, ft := range expired {
				delete(d.rules, ft)
				d.rulesExpired++
				if fw := d.nic.Firmware(); fw != nil {
					fw.RemoveFlow(ft)
				}
				t.Exec(d.params.MPFSUpdateCPU)
			}
		}
	})
}

// ExpireNow forces one expiry scan pass at the current instant (tests
// and manual administration).
func (d *Octo) ExpireNow() {
	for _, ft := range d.expiredRules(d.k.Engine().Now()) {
		delete(d.rules, ft)
		d.rulesExpired++
		if fw := d.nic.Firmware(); fw != nil {
			fw.RemoveFlow(ft)
		}
	}
}

// expiredRules returns stale rules in a deterministic order (map
// iteration order would leak into event ordering otherwise).
func (d *Octo) expiredRules(now sim.Time) []eth.FiveTuple {
	var expired []eth.FiveTuple
	for ft, r := range d.rules {
		if now.Sub(r.refreshed) > d.params.RuleExpiry {
			expired = append(expired, ft)
		}
	}
	sort.Slice(expired, func(i, j int) bool {
		a, b := expired[i], expired[j]
		if a.SrcIP != b.SrcIP {
			return a.SrcIP < b.SrcIP
		}
		if a.SrcPort != b.SrcPort {
			return a.SrcPort < b.SrcPort
		}
		if a.DstIP != b.DstIP {
			return a.DstIP < b.DstIP
		}
		if a.DstPort != b.DstPort {
			return a.DstPort < b.DstPort
		}
		return a.Proto < b.Proto
	})
	return expired
}
