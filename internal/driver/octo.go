package driver

import (
	"fmt"
	"sort"

	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/netstack"
	"ioctopus/internal/nic"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// Octo is the octoNIC driver (§4.2): the IOctopus mode of the team
// driver. It presents the whole multi-PF device as ONE netdevice with
// one MAC and one IP. Each core's queue pair lives on the PF local to
// that core's node, so:
//
//   - transmits go through the PCIe endpoint local to the sending CPU
//     (the XPS map composed with per-core queues guarantees it);
//   - the ARFS callback becomes an IOctoRFS update: the flow's MPFS
//     rule moves to the PF (and queue) local to the thread's new core,
//     pushed to the device asynchronously by a kernel worker;
//   - a scanner thread periodically expires stale rules, as the Linux
//     ARFS implementation does.
type Octo struct {
	base
	nic *nic.NIC

	// rxSlot[core] = the queue index of that core's rx queue *within
	// its PF* (IOctoRFS rules name per-PF queues).
	rxSlot []int
	pfIdx  []int // per-core PF index

	updates *sim.Queue[steerUpdate]
	rules   map[eth.FiveTuple]*steerRule

	updatesPushed  uint64
	updatesApplied uint64
	rulesExpired   uint64

	// Failover state (§2.5: "the team driver can migrate every flow to
	// the surviving PF"). remap[core] is the core whose queue pair
	// carries core's traffic — itself while every link is up; a core
	// whose local PF died is remapped to a surviving core, so both XPS
	// (TxQueueForCore) and re-steered IOctoRFS rules route around the
	// dead limb. Only single-PF failure is handled; with every PF down
	// there is nothing to fail over to and losses fall through to
	// retransmission.
	remap  []topology.CoreID
	downPF int // index of the failed PF, -1 while all links are up

	// parked holds Dropped Tx completions reaped before a failover (or
	// failback) gave them a live queue; the link handler flushes them in
	// arrival order once the remap lands.
	parked []parkedTx

	failovers      uint64
	failbacks      uint64
	reposted       uint64
	rulesResteered uint64

	// parkedOverflow counts segments given up at the MaxParked cap
	// during a total outage (released to the pool; retransmission
	// recovers the data). concurrentIgnored counts link-down events
	// ridden out because another PF's failure was already being handled
	// — the single-failure contract, DESIGN.md §10.
	parkedOverflow    uint64
	concurrentIgnored uint64

	// Firmware-reset recovery: resets observed and journaled rules
	// replayed into the wiped device tables.
	fwResets      uint64
	rulesReplayed uint64
}

// parkedTx is a stranded Tx segment awaiting a live queue.
type parkedTx struct {
	qp  *queuePair
	pkt *nic.TxPacket
}

type steerUpdate struct {
	ft        eth.FiveTuple
	pf, queue int
}

type steerRule struct {
	pf, queue int
	// core is the flow's home core (the ARFS target), kept so failover
	// can re-steer relative to it and failback can restore it.
	core      topology.CoreID
	refreshed sim.Time
}

var _ netstack.NetDevice = (*Octo)(nil)

// NewOcto builds the octoNIC driver over a multi-PF NIC running the
// IOctopus firmware. Every node must have a PF (that is the octoNIC
// wiring contract).
func NewOcto(k *kernel.Kernel, mem *memsys.System, n *nic.NIC, name string, params Params) *Octo {
	d := &Octo{
		base:  base{k: k, name: name, params: params},
		nic:   n,
		rules: make(map[eth.FiveTuple]*steerRule),
	}
	topo := k.Topology()
	perPFCount := make(map[int]int)
	pfByNode := make(map[topology.NodeID]*nic.PF)
	for _, pf := range n.PFs() {
		pfByNode[pf.Node()] = pf
	}
	for c := 0; c < topo.NumCores(); c++ {
		node := topo.NodeOf(topology.CoreID(c))
		pf, ok := pfByNode[node]
		if !ok {
			panic(fmt.Sprintf("driver %s: octoNIC has no PF on node %d", name, node))
		}
		d.pfIdx = append(d.pfIdx, pf.Index())
		d.rxSlot = append(d.rxSlot, perPFCount[pf.Index()])
		perPFCount[pf.Index()]++
	}
	d.buildQueues(mem, func(c topology.CoreID) *nic.PF {
		return n.PF(d.pfIdx[c])
	})
	d.remap = make([]topology.CoreID, topo.NumCores())
	for c := range d.remap {
		d.remap[c] = topology.CoreID(c)
	}
	d.downPF = -1
	d.base.repost = d.repostDropped
	// Carrier changes reach the driver through the link-state interrupt
	// and a workqueue, not instantaneously: the handler runs
	// LinkEventDelay after the PHY event. Descriptors posted into the
	// dead PF during that window complete flagged Dropped and are
	// re-posted by repostDropped once the remap is in place.
	n.OnLinkChange(func(pf int, up bool) {
		if delay := d.base.params.LinkEventDelay; delay > 0 {
			d.k.Engine().After(delay, func() { d.onLinkChange(pf, up) })
			return
		}
		d.onLinkChange(pf, up)
	})
	// A firmware reset reaches the driver the same way a carrier change
	// does (async event + workqueue); until the handler replays the
	// journal, unprogrammed flows ride the firmware's RSS fallback.
	n.OnFirmwareReset(func() {
		if delay := d.base.params.LinkEventDelay; delay > 0 {
			d.k.Engine().After(delay, d.onFwReset)
			return
		}
		d.onFwReset()
	})
	// Watchdog ladder hooks (no-ops while the watchdog is disabled):
	// stage 1 replays the rule journal, stage 2 feeds the PR 5 failover
	// path as if the PF's carrier had dropped.
	if d.base.wd != nil {
		d.base.wd.fwReplay = d.replayRules
		d.base.wd.setPFUp = d.onLinkChange
	}
	d.updates = sim.NewQueue[steerUpdate](k.Engine(), 0)
	d.startWorker()
	d.startExpiryScanner()
	return d
}

// Bind attaches the driver to the host stack.
func (d *Octo) Bind(st *netstack.Stack) { d.bind(st) }

// HWAddr implements netstack.NetDevice: the device's single MAC.
func (d *Octo) HWAddr() eth.MAC { return d.nic.MAC() }

// NIC returns the managed device.
func (d *Octo) NIC() *nic.NIC { return d.nic }

// Xmit implements netstack.NetDevice. Because queue txq belongs to core
// txq and that core's queue pair sits on its local PF, transmission is
// always through the PCIe endpoint local to the sending CPU.
func (d *Octo) Xmit(t *kernel.Thread, pkt *netstack.Packet, txq int) {
	d.xmit(t, pkt, txq)
}

// SteerFlow implements netstack.NetDevice: the IOctoRFS update. The
// mapping to (PF, queue) is computed here; the device table write is
// pushed through the asynchronous kernel worker (§4.2: "the MPFS table
// is updated asynchronously by a separate kernel worker thread").
func (d *Octo) SteerFlow(ft eth.FiveTuple, core topology.CoreID) {
	// During failover the flow's home core may sit on the dead PF;
	// steer to the remapped core's queue while remembering the home so
	// failback can restore it.
	tc := d.remap[core]
	pf, queue := d.pfIdx[tc], d.rxSlot[tc]
	now := d.k.Engine().Now()
	if r, ok := d.rules[ft]; ok {
		r.refreshed = now
		r.core = core
		if r.pf == pf && r.queue == queue {
			return // already steered correctly; just refreshed
		}
		r.pf, r.queue = pf, queue
	} else {
		d.rules[ft] = &steerRule{pf: pf, queue: queue, core: core, refreshed: now}
	}
	d.updatesPushed++
	d.updates.ForcePut(steerUpdate{ft: ft, pf: pf, queue: queue})
}

// TxQueueForCore implements netstack.NetDevice: normally queue i
// belongs to core i; while a PF is down, cores local to it transmit
// through the queue pair of the surviving core they were remapped to.
func (d *Octo) TxQueueForCore(c topology.CoreID) int { return int(d.remap[c]) }

// onLinkChange is the team driver's failover engine, registered with
// the device. Link down: remap every core whose local PF died onto
// surviving cores and re-steer all IOctoRFS rules through the async
// MPFS worker (recovery latency is the worker's real re-programming
// cost). Link up: restore the home mapping the same way. Pending Tx
// descriptors on the dead PF are not touched here — their completions
// come back flagged Dropped and repostDropped re-posts them on the
// surviving PF.
func (d *Octo) onLinkChange(pf int, up bool) {
	if !up {
		if d.downPF != -1 {
			// Single-failure contract (DESIGN.md §10): a second
			// concurrent PF failure is ridden out, not handled — with
			// one PF already down there is no healthy limb to remap the
			// second one's flows onto. Counted so operators can see how
			// often the contract was actually exercised.
			d.concurrentIgnored++
			return
		}
		// Collect surviving cores (deterministic order: core id).
		var survivors []topology.CoreID
		for c := range d.pfIdx {
			if d.pfIdx[c] != pf && d.nic.PF(d.pfIdx[c]).LinkUp() {
				survivors = append(survivors, topology.CoreID(c))
			}
		}
		if len(survivors) == 0 {
			return // total outage: nothing to fail over to
		}
		d.downPF = pf
		d.failovers++
		i := 0
		for c := range d.remap {
			if d.pfIdx[c] == pf {
				d.remap[c] = survivors[i%len(survivors)]
				i++
			} else {
				d.remap[c] = topology.CoreID(c)
			}
		}
		d.resteerAll()
		d.flushParked()
		return
	}
	if d.downPF != pf {
		return
	}
	d.downPF = -1
	d.failbacks++
	for c := range d.remap {
		d.remap[c] = topology.CoreID(c)
	}
	d.resteerAll()
	d.flushParked()
}

// flushParked re-posts every parked segment whose remapped queue is now
// on a live link, preserving arrival order; segments whose target is
// still dead stay parked for the next transition.
func (d *Octo) flushParked() {
	pending := d.parked
	d.parked = d.parked[:0]
	for _, p := range pending {
		if !d.post(p.qp, p.pkt) {
			d.parked = append(d.parked, p)
		}
	}
}

// post re-posts a recovered segment on the remapped core's queue (after
// the doorbell flight, as any post); false if that link is down too.
func (d *Octo) post(qp *queuePair, pkt *nic.TxPacket) bool {
	nq := d.pairs[d.remap[qp.core]]
	if !nq.tx.PF().LinkUp() {
		return false
	}
	pkt.Dropped = false
	d.reposted++
	flight := nq.tx.PF().Endpoint().MMIOWrite(qp.node)
	d.k.Engine().After(flight, pkt.DeferPost(nq.tx))
	return true
}

// resteerAll re-pushes every installed rule at its (possibly remapped)
// target, in deterministic 5-tuple order, through the async worker,
// skipping rules already at their target.
func (d *Octo) resteerAll() { d.resteer(false) }

// replayRules is the firmware-recovery twin of resteerAll: after a
// table wipe the device-side state is gone, so every journaled rule is
// re-pushed unconditionally — "unchanged" driver-side state means
// nothing to a device that forgot it. Returns rules replayed.
func (d *Octo) replayRules() int { return d.resteer(true) }

// resteer walks the rule journal and pushes updates through the async
// worker; force re-pushes even rules whose target is unchanged (the
// firmware-reset repair). Recovery latency is honest either way: each
// update pays the worker's MPFS delay and CPU cost.
func (d *Octo) resteer(force bool) int {
	fts := make([]eth.FiveTuple, 0, len(d.rules))
	for ft := range d.rules {
		fts = append(fts, ft)
	}
	sortTuples(fts)
	n := 0
	for _, ft := range fts {
		r := d.rules[ft]
		tc := d.remap[r.core]
		pf, queue := d.pfIdx[tc], d.rxSlot[tc]
		if !force && r.pf == pf && r.queue == queue {
			continue
		}
		r.pf, r.queue = pf, queue
		if force {
			d.rulesReplayed++
		} else {
			d.rulesResteered++
		}
		d.updatesPushed++
		n++
		d.updates.ForcePut(steerUpdate{ft: ft, pf: pf, queue: queue})
	}
	return n
}

// onFwReset is the driver's firmware-reset handler: count it and replay
// the journal so the wiped IOctoRFS table is rebuilt.
func (d *Octo) onFwReset() {
	d.fwResets++
	d.replayRules()
}

// defaultMaxParked bounds the parked list when Params.MaxParked is
// zero: roughly one Tx ring's worth of stranded descriptors.
const defaultMaxParked = 1024

// repostDropped recovers a Tx segment whose completion came back
// flagged Dropped: re-post it on the remapped core's queue, or park it
// until a link transition provides a live one. Returns true when the
// driver took ownership (re-posted or parked), so napiTx neither
// recycles the packet nor reports it sent; returns false when the
// parked list is at its cap — the segment is given up to napiTx's
// normal completion path (freed, OnSent, recycled), modeling a driver
// that drops the skb during a total outage and lets retransmission
// recover the data.
func (d *Octo) repostDropped(qp *queuePair, pkt *nic.TxPacket) bool {
	if d.post(qp, pkt) {
		return true
	}
	// The remap hasn't landed yet (the carrier event is still in flight
	// to the handler) or the target is dead too: park the segment; the
	// next link transition re-posts it. Ownership stays with the driver,
	// so napiTx must not recycle it.
	limit := d.params.MaxParked
	if limit <= 0 {
		limit = defaultMaxParked
	}
	if len(d.parked) >= limit {
		d.parkedOverflow++
		return false
	}
	d.parked = append(d.parked, parkedTx{qp: qp, pkt: pkt})
	return true
}

// Failovers returns link-down failover transitions performed.
func (d *Octo) Failovers() uint64 { return d.failovers }

// Failbacks returns link-recovery failback transitions performed.
func (d *Octo) Failbacks() uint64 { return d.failbacks }

// Reposted returns Tx segments recovered onto a surviving PF.
func (d *Octo) Reposted() uint64 { return d.reposted }

// ParkedOverflow returns segments given up at the parked-list cap.
func (d *Octo) ParkedOverflow() uint64 { return d.parkedOverflow }

// ConcurrentIgnored returns link-down events ridden out under the
// single-failure contract while another PF's failure was in hand.
func (d *Octo) ConcurrentIgnored() uint64 { return d.concurrentIgnored }

// FwResets returns firmware resets the driver has handled.
func (d *Octo) FwResets() uint64 { return d.fwResets }

// RulesReplayed returns journaled rules replayed after table wipes.
func (d *Octo) RulesReplayed() uint64 { return d.rulesReplayed }

// Parked returns the current parked-descriptor count.
func (d *Octo) Parked() int { return len(d.parked) }

// UpdatesApplied returns device table writes completed by the worker.
func (d *Octo) UpdatesApplied() uint64 { return d.updatesApplied }

// RulesExpired returns rules removed by the expiry scanner.
func (d *Octo) RulesExpired() uint64 { return d.rulesExpired }

// RuleCount returns driver-side rule table occupancy.
func (d *Octo) RuleCount() int { return len(d.rules) }

// startWorker launches the MPFS update worker thread (pinned to core 0,
// as an unbound kworker would typically land).
func (d *Octo) startWorker() {
	d.k.Spawn(d.name+":mpfs-worker", 0, func(t *kernel.Thread) {
		for {
			u, ok := d.updates.Get(t.Proc())
			if !ok {
				return
			}
			t.Sleep(d.params.MPFSUpdateDelay)
			t.Exec(d.params.MPFSUpdateCPU)
			if fw := d.nic.Firmware(); fw != nil {
				fw.ProgramFlow(u.ft, u.pf, u.queue)
			}
			d.updatesApplied++
		}
	})
}

// startExpiryScanner launches the periodic rule reaper.
func (d *Octo) startExpiryScanner() {
	d.k.Spawn(d.name+":rule-expiry", 0, func(t *kernel.Thread) {
		for {
			t.Sleep(d.params.ExpiryScanPeriod)
			now := t.Now()
			expired := d.expiredRules(now)
			for _, ft := range expired {
				delete(d.rules, ft)
				d.rulesExpired++
				if fw := d.nic.Firmware(); fw != nil {
					fw.RemoveFlow(ft)
				}
				t.Exec(d.params.MPFSUpdateCPU)
			}
		}
	})
}

// ExpireNow forces one expiry scan pass at the current instant (tests
// and manual administration).
func (d *Octo) ExpireNow() {
	for _, ft := range d.expiredRules(d.k.Engine().Now()) {
		delete(d.rules, ft)
		d.rulesExpired++
		if fw := d.nic.Firmware(); fw != nil {
			fw.RemoveFlow(ft)
		}
	}
}

// expiredRules returns stale rules in a deterministic order (map
// iteration order would leak into event ordering otherwise).
func (d *Octo) expiredRules(now sim.Time) []eth.FiveTuple {
	// Raw arithmetic, not Time.Add: Add clamps negative results, which
	// would mark everything expired while now < RuleExpiry.
	cutoff := now - sim.Time(d.params.RuleExpiry)
	var expired []eth.FiveTuple
	for ft, r := range d.rules {
		if r.refreshed < cutoff {
			expired = append(expired, ft)
		}
	}
	sortTuples(expired)
	return expired
}

// sortTuples orders 5-tuples canonically (rule iteration must never
// inherit map order, which would leak into event ordering).
func sortTuples(fts []eth.FiveTuple) {
	sort.Slice(fts, func(i, j int) bool {
		a, b := fts[i], fts[j]
		if a.SrcIP != b.SrcIP {
			return a.SrcIP < b.SrcIP
		}
		if a.SrcPort != b.SrcPort {
			return a.SrcPort < b.SrcPort
		}
		if a.DstIP != b.DstIP {
			return a.DstIP < b.DstIP
		}
		if a.DstPort != b.DstPort {
			return a.DstPort < b.DstPort
		}
		return a.Proto < b.Proto
	})
}
