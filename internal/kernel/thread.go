package kernel

import (
	"fmt"
	"time"

	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// Thread is a schedulable kernel thread. Thread code runs as a sim
// process and consumes CPU through Exec/ExecFn, which FIFO-share the
// thread's current core with softirq and worker activity.
type Thread struct {
	k    *Kernel
	tid  int
	name string
	core *Core
	proc *sim.Proc

	migrations int
	cpuTime    time.Duration

	// Exec/ExecFn scratch. A thread has at most one Exec in flight
	// (Submit then Yield until completion), so the wrapper closures can
	// be built once at Spawn and reused for every call instead of
	// allocating per Exec on the hot path.
	execRun   func() time.Duration // caller's fn for the in-flight ExecFn
	execTook  time.Duration
	execDur   time.Duration        // fixed duration for Exec
	execWrap  func() time.Duration // cached: runs execRun, records execTook
	execFixed func() time.Duration // cached: returns execDur
}

// Spawn creates a thread pinned initially to the given core and starts
// fn on it.
func (k *Kernel) Spawn(name string, core topology.CoreID, fn func(t *Thread)) *Thread {
	k.nextTID++
	t := &Thread{k: k, tid: k.nextTID, name: name, core: k.Core(core)}
	t.execWrap = func() time.Duration {
		t.execTook = t.execRun()
		return t.execTook
	}
	t.execFixed = func() time.Duration { return t.execDur }
	t.proc = k.eng.Go(fmt.Sprintf("thread:%s", name), func(p *sim.Proc) {
		fn(t)
	})
	return t
}

// Name returns the thread name.
func (t *Thread) Name() string { return t.name }

// TID returns the thread id.
func (t *Thread) TID() int { return t.tid }

// Core returns the thread's current core id.
func (t *Thread) Core() topology.CoreID { return t.core.id }

// Node returns the NUMA node of the thread's current core.
func (t *Thread) Node() topology.NodeID { return t.core.node }

// Migrations returns how many times the thread has moved cores.
func (t *Thread) Migrations() int { return t.migrations }

// CPUTime returns the thread's accumulated execution time.
func (t *Thread) CPUTime() time.Duration { return t.cpuTime }

// Proc exposes the underlying sim process for queue/signal waits.
func (t *Thread) Proc() *sim.Proc { return t.proc }

// Now returns the current simulation time.
func (t *Thread) Now() sim.Time { return t.k.eng.Now() }

// Exec consumes d of CPU time on the thread's current core, blocking
// until the core has executed it.
func (t *Thread) Exec(d time.Duration) {
	t.execDur = d
	t.ExecFn(t.execFixed)
}

// ExecFn consumes CPU time computed at execution start — use it when
// the cost involves memory-system charges that must be priced when the
// core actually runs the work.
func (t *Thread) ExecFn(run func() time.Duration) {
	c := t.core // bind at submit: migration moves subsequent work only
	t.execRun = run
	c.Submit(t.name, t.execWrap, t.proc.ResumeFunc())
	t.proc.Yield()
	t.execRun = nil
	t.cpuTime += t.execTook
}

// Sleep blocks the thread without consuming CPU.
func (t *Thread) Sleep(d time.Duration) { t.proc.Sleep(d) }

// Wait blocks the thread on a signal.
func (t *Thread) Wait(s *sim.Signal) { s.Wait(t.proc) }

// SetAffinity migrates the thread to another core (the
// sched_setaffinity path of §5.3): charges a context switch on the
// destination and fires the kernel's migration hooks — through which
// the network stack issues ARFS/IOctoRFS updates.
func (k *Kernel) SetAffinity(t *Thread, core topology.CoreID) {
	dst := k.Core(core)
	if dst == t.core {
		return
	}
	from := t.core.id
	t.core = dst
	t.migrations++
	dst.SubmitFixed("migrate:"+t.name, k.params.ContextSwitch, nil)
	for _, h := range k.migrateHooks {
		h(t, from, core)
	}
}
