package kernel

import (
	"time"

	"ioctopus/internal/topology"
)

// Poller is a busy-poll loop pinned to a core: the DPDK-style PMD
// thread. Each iteration runs through the core's ordinary dispatch
// loop, so the spin time lands in the core's BusyTime integral — a
// busy-polling core reads as 100% occupied, which keeps the
// CPU-efficiency figures honest — and any other work submitted to the
// core (IRQs for queues still in interrupt mode, stalls from fault
// injection) FIFO-interleaves with the poll iterations instead of
// starving.
//
// The loop self-resubmits through the iteration's completion callback
// rather than running as a Thread: three events per iteration (queue
// put, sleep, completion), all allocation-free (coreWork is a value
// type and the run/resubmit closures are built once here).
type Poller struct {
	c       *Core
	name    string
	body    func() time.Duration
	run     func() time.Duration // cached dispatch wrapper
	resub   func()               // cached self-resubmission
	stopped bool

	// wedgeFor is consumed by the next iteration: instead of polling,
	// the loop burns the core for that long — a hung register read or
	// firmware doorbell that never returns — then resumes. Set by
	// Wedge (fault injection).
	wedgeFor   time.Duration
	iterations uint64
}

// StartPoller pins a busy-poll loop to this core. body runs once per
// iteration and returns how long the iteration occupied the core (the
// fixed poll cost plus whatever work the burst did); it must be
// positive, or the loop would spin at a single instant of simulated
// time. The loop runs until Stop.
func (c *Core) StartPoller(name string, body func() time.Duration) *Poller {
	p := &Poller{c: c, name: "pmd:" + name, body: body}
	p.run = func() time.Duration {
		if p.stopped {
			return 0
		}
		if w := p.wedgeFor; w > 0 {
			// One pathologically long iteration that never reaches the
			// rings: the core reads as busy (it is — spinning on a dead
			// device) but Iterations stays flat, which is exactly the
			// liveness signal a driver watchdog keys on.
			p.wedgeFor = 0
			return w
		}
		d := p.body()
		if d <= 0 {
			panic("kernel: poller iteration must consume time")
		}
		p.iterations++
		return d
	}
	p.resub = func() {
		if p.stopped {
			return
		}
		c.queue.ForcePut(coreWork{name: p.name, run: p.run, done: p.resub})
	}
	p.resub()
	return p
}

// Wedge hangs the poll loop for d starting at its next dispatch: the
// core burns the whole duration in a single iteration without touching
// the rings, then the loop resumes on its own. Subsequent wedges before
// dispatch accumulate.
func (p *Poller) Wedge(d time.Duration) {
	if d <= 0 {
		return
	}
	p.wedgeFor += d
}

// Iterations counts completed (non-wedged) poll iterations — the
// liveness counter a driver watchdog samples to detect a wedged loop.
func (p *Poller) Iterations() uint64 { return p.iterations }

// Node is the NUMA node of the core the loop is pinned to.
func (p *Poller) Node() topology.NodeID { return p.c.node }

// Stop ends the loop: the current iteration (if one is queued or
// running) completes at zero further cost and nothing is resubmitted.
func (p *Poller) Stop() { p.stopped = true }

// Stopped reports whether the poller has been stopped.
func (p *Poller) Stopped() bool { return p.stopped }
