package kernel

import "time"

// Poller is a busy-poll loop pinned to a core: the DPDK-style PMD
// thread. Each iteration runs through the core's ordinary dispatch
// loop, so the spin time lands in the core's BusyTime integral — a
// busy-polling core reads as 100% occupied, which keeps the
// CPU-efficiency figures honest — and any other work submitted to the
// core (IRQs for queues still in interrupt mode, stalls from fault
// injection) FIFO-interleaves with the poll iterations instead of
// starving.
//
// The loop self-resubmits through the iteration's completion callback
// rather than running as a Thread: three events per iteration (queue
// put, sleep, completion), all allocation-free (coreWork is a value
// type and the run/resubmit closures are built once here).
type Poller struct {
	c       *Core
	name    string
	body    func() time.Duration
	run     func() time.Duration // cached dispatch wrapper
	resub   func()               // cached self-resubmission
	stopped bool
}

// StartPoller pins a busy-poll loop to this core. body runs once per
// iteration and returns how long the iteration occupied the core (the
// fixed poll cost plus whatever work the burst did); it must be
// positive, or the loop would spin at a single instant of simulated
// time. The loop runs until Stop.
func (c *Core) StartPoller(name string, body func() time.Duration) *Poller {
	p := &Poller{c: c, name: "pmd:" + name, body: body}
	p.run = func() time.Duration {
		if p.stopped {
			return 0
		}
		d := p.body()
		if d <= 0 {
			panic("kernel: poller iteration must consume time")
		}
		return d
	}
	p.resub = func() {
		if p.stopped {
			return
		}
		c.queue.ForcePut(coreWork{name: p.name, run: p.run, done: p.resub})
	}
	p.resub()
	return p
}

// Stop ends the loop: the current iteration (if one is queued or
// running) completes at zero further cost and nothing is resubmitted.
func (p *Poller) Stop() { p.stopped = true }

// Stopped reports whether the poller has been stopped.
func (p *Poller) Stopped() bool { return p.stopped }
