package kernel

import (
	"testing"
	"time"

	"ioctopus/internal/interconnect"
	"ioctopus/internal/memsys"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

func newKernel(t *testing.T) (*sim.Engine, *Kernel) {
	t.Helper()
	e := sim.NewEngine()
	srv := topology.DualBroadwell()
	ic := interconnect.New(e, srv)
	mem := memsys.New(e, srv, ic, memsys.DefaultParams())
	return e, New(e, srv, mem, DefaultParams())
}

func TestSpawnAndExec(t *testing.T) {
	e, k := newKernel(t)
	var end sim.Time
	th := k.Spawn("worker", 3, func(t *Thread) {
		t.Exec(100 * time.Microsecond)
		end = t.Now()
	})
	e.RunUntilIdle()
	if end != sim.Time(100*time.Microsecond) {
		t.Fatalf("end = %v, want 100us", end)
	}
	if th.CPUTime() != 100*time.Microsecond {
		t.Fatalf("cpu time = %v", th.CPUTime())
	}
	if k.Core(3).BusyTime() != 100*time.Microsecond {
		t.Fatalf("core busy = %v", k.Core(3).BusyTime())
	}
	e.Drain()
}

func TestCoreFIFOSharing(t *testing.T) {
	e, k := newKernel(t)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		k.Spawn("w", 0, func(t *Thread) {
			t.Exec(50 * time.Microsecond)
			ends = append(ends, t.Now())
		})
	}
	e.RunUntilIdle()
	if len(ends) != 2 {
		t.Fatal("threads did not finish")
	}
	if ends[0] != sim.Time(50*time.Microsecond) || ends[1] != sim.Time(100*time.Microsecond) {
		t.Fatalf("ends = %v, want FIFO serialization on one core", ends)
	}
	e.Drain()
}

func TestThreadsOnDifferentCoresRunInParallel(t *testing.T) {
	e, k := newKernel(t)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		k.Spawn("w", topology.CoreID(i), func(t *Thread) {
			t.Exec(50 * time.Microsecond)
			ends = append(ends, t.Now())
		})
	}
	e.RunUntilIdle()
	for _, end := range ends {
		if end != sim.Time(50*time.Microsecond) {
			t.Fatalf("ends = %v, want parallel completion", ends)
		}
	}
	e.Drain()
}

func TestThreadNodeTracksCore(t *testing.T) {
	e, k := newKernel(t)
	var nodes []topology.NodeID
	th := k.Spawn("mover", 0, func(t *Thread) {
		nodes = append(nodes, t.Node())
		t.Sleep(time.Millisecond)
		nodes = append(nodes, t.Node())
	})
	e.After(500*time.Microsecond, func() { k.SetAffinity(th, 20) }) // core 20 is node 1
	e.RunUntilIdle()
	if nodes[0] != 0 || nodes[1] != 1 {
		t.Fatalf("nodes = %v, want [0 1]", nodes)
	}
	if th.Migrations() != 1 {
		t.Fatalf("migrations = %d", th.Migrations())
	}
	e.Drain()
}

func TestMigrationHookFires(t *testing.T) {
	e, k := newKernel(t)
	var hookFrom, hookTo topology.CoreID = -1, -1
	k.OnMigrate(func(t *Thread, from, to topology.CoreID) { hookFrom, hookTo = from, to })
	th := k.Spawn("mover", 2, func(t *Thread) { t.Sleep(time.Millisecond) })
	e.After(100*time.Microsecond, func() { k.SetAffinity(th, 17) })
	e.RunUntilIdle()
	if hookFrom != 2 || hookTo != 17 {
		t.Fatalf("hook saw %d->%d, want 2->17", hookFrom, hookTo)
	}
	e.Drain()
}

func TestSetAffinitySameCoreIsNoop(t *testing.T) {
	e, k := newKernel(t)
	fired := false
	k.OnMigrate(func(t *Thread, from, to topology.CoreID) { fired = true })
	th := k.Spawn("p", 5, func(t *Thread) { t.Sleep(time.Millisecond) })
	e.After(10*time.Microsecond, func() { k.SetAffinity(th, 5) })
	e.RunUntilIdle()
	if fired || th.Migrations() != 0 {
		t.Fatal("same-core SetAffinity should be a no-op")
	}
	e.Drain()
}

func TestExecFnPricesAtRunTime(t *testing.T) {
	e, k := newKernel(t)
	var priced sim.Time
	k.Spawn("a", 0, func(t *Thread) { t.Exec(100 * time.Microsecond) })
	k.Spawn("b", 0, func(t *Thread) {
		t.ExecFn(func() time.Duration {
			priced = t.Now() // must be when the core picks it up, not submit time
			return time.Microsecond
		})
	})
	e.RunUntilIdle()
	if priced < sim.Time(100*time.Microsecond) {
		t.Fatalf("cost function ran at %v, want after predecessor", priced)
	}
	e.Drain()
}

func TestIRQCostsEntryPlusHandler(t *testing.T) {
	e, k := newKernel(t)
	c := k.Core(0)
	c.IRQ("nic", func() time.Duration { return 700 * time.Nanosecond })
	e.RunUntilIdle()
	want := DefaultParams().IRQEntry + 700*time.Nanosecond
	if c.BusyTime() != want {
		t.Fatalf("busy = %v, want %v", c.BusyTime(), want)
	}
	e.Drain()
}

func TestSubmitFixedAndQueueLen(t *testing.T) {
	e, k := newKernel(t)
	c := k.Core(1)
	done := 0
	e.At(0, func() {
		c.SubmitFixed("a", time.Microsecond, func() { done++ })
		c.SubmitFixed("b", time.Microsecond, func() { done++ })
	})
	e.RunUntilIdle()
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	e.Drain()
}

func TestResetBusy(t *testing.T) {
	e, k := newKernel(t)
	k.Spawn("w", 0, func(t *Thread) { t.Exec(time.Millisecond) })
	e.RunUntilIdle()
	k.Core(0).ResetBusy()
	if k.Core(0).BusyTime() != 0 {
		t.Fatal("ResetBusy failed")
	}
	e.Drain()
}

func TestAllocIsNodeHomed(t *testing.T) {
	e, k := newKernel(t)
	b := k.Alloc("buf", 1, 4096)
	if b.Home() != 1 {
		t.Fatalf("home = %d, want 1", b.Home())
	}
	e.Drain()
}

func TestMigrationChargesContextSwitch(t *testing.T) {
	e, k := newKernel(t)
	th := k.Spawn("p", 0, func(t *Thread) { t.Sleep(time.Millisecond) })
	e.After(time.Microsecond, func() { k.SetAffinity(th, 14) })
	e.RunUntilIdle()
	if k.Core(14).BusyTime() < DefaultParams().ContextSwitch {
		t.Fatalf("destination core busy = %v, want >= context switch", k.Core(14).BusyTime())
	}
	e.Drain()
}
