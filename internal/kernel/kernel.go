// Package kernel models the operating system layer the paper modifies:
// cores that execute work run-to-completion (threads, softirqs and
// deferred work FIFO-share a core), kernel threads with affinity, the
// scheduler's thread migration (sched_setaffinity) with migration hooks
// — the notification path that drives ARFS and IOctoRFS updates — and
// NUMA-aware memory allocation.
package kernel

import (
	"fmt"
	"time"

	"ioctopus/internal/memsys"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// Params are OS cost constants.
type Params struct {
	// IRQEntry is the cost of taking a hardware interrupt.
	IRQEntry time.Duration
	// ContextSwitch is the cost of a thread context switch (charged on
	// wakeups that preempt and on migrations).
	ContextSwitch time.Duration
	// WakeupLatency is scheduling delay from wake to run when the
	// target core is idle.
	WakeupLatency time.Duration
}

// DefaultParams returns calibrated defaults.
func DefaultParams() Params {
	return Params{
		IRQEntry:      300 * time.Nanosecond,
		ContextSwitch: 1200 * time.Nanosecond,
		WakeupLatency: 500 * time.Nanosecond,
	}
}

// Kernel is the OS instance of one simulated host.
type Kernel struct {
	eng    *sim.Engine
	topo   *topology.Server
	mem    *memsys.System
	params Params
	cores  []*Core

	migrateHooks []func(t *Thread, from, to topology.CoreID)
	nextTID      int
}

// New boots a kernel on the given hardware.
func New(e *sim.Engine, topo *topology.Server, mem *memsys.System, params Params) *Kernel {
	k := &Kernel{eng: e, topo: topo, mem: mem, params: params}
	for i := 0; i < topo.NumCores(); i++ {
		c := &Core{
			k:    k,
			id:   topology.CoreID(i),
			node: topo.NodeOf(topology.CoreID(i)),
		}
		c.queue = sim.NewQueue[coreWork](e, 0)
		k.cores = append(k.cores, c)
		c.start()
	}
	return k
}

// Engine returns the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Memory returns the host memory system.
func (k *Kernel) Memory() *memsys.System { return k.mem }

// Topology returns the hardware description.
func (k *Kernel) Topology() *topology.Server { return k.topo }

// Params returns the OS cost constants.
func (k *Kernel) Params() Params { return k.params }

// Core returns a core handle.
func (k *Kernel) Core(id topology.CoreID) *Core {
	if int(id) < 0 || int(id) >= len(k.cores) {
		panic(fmt.Sprintf("kernel: no core %d", id))
	}
	return k.cores[id]
}

// NumCores returns the core count.
func (k *Kernel) NumCores() int { return len(k.cores) }

// Alloc allocates a buffer on the given NUMA node (the first-touch /
// local allocation policy production kernels use, §2.1).
func (k *Kernel) Alloc(name string, node topology.NodeID, size int64) *memsys.Buffer {
	return k.mem.NewBuffer(name, node, size)
}

// OnMigrate registers a hook invoked after a thread migrates between
// cores; the network stack uses it for the ARFS flow-steering callback.
func (k *Kernel) OnMigrate(hook func(t *Thread, from, to topology.CoreID)) {
	k.migrateHooks = append(k.migrateHooks, hook)
}

// coreWork is one unit of work on a core's run queue. run executes when
// the core picks it up and returns how long the core is occupied; done
// (optional) fires when that time has elapsed.
type coreWork struct {
	name string
	run  func() time.Duration
	done func()
}

// Core is one CPU core: a FIFO run queue consumed run-to-completion.
// Interleaving threads, softirq and worker items by FIFO approximates
// the preemptive scheduler closely enough for throughput accounting
// while keeping the model deterministic.
type Core struct {
	k     *Kernel
	id    topology.CoreID
	node  topology.NodeID
	queue *sim.Queue[coreWork]
	busy  time.Duration
}

// ID returns the core id.
func (c *Core) ID() topology.CoreID { return c.id }

// Node returns the core's NUMA node.
func (c *Core) Node() topology.NodeID { return c.node }

// BusyTime returns accumulated execution time.
func (c *Core) BusyTime() time.Duration { return c.busy }

// ResetBusy zeroes the busy-time integral (measurement windows).
func (c *Core) ResetBusy() { c.busy = 0 }

// QueueLen returns the number of work items waiting.
func (c *Core) QueueLen() int { return c.queue.Len() }

// start launches the core's dispatch loop.
func (c *Core) start() {
	c.k.eng.Go(fmt.Sprintf("core%d", c.id), func(p *sim.Proc) {
		for {
			w, ok := c.queue.Get(p)
			if !ok {
				return
			}
			d := w.run()
			if d < 0 {
				d = 0
			}
			c.busy += d
			p.Sleep(d)
			if w.done != nil {
				// Fire completions from engine context so they can
				// resume other processes without nesting handoffs.
				c.k.eng.After(0, w.done)
			}
		}
	})
}

// Submit enqueues work whose duration is computed when it starts
// running (so memory-system charges happen at execution time). done
// fires when it completes.
func (c *Core) Submit(name string, run func() time.Duration, done func()) {
	c.queue.ForcePut(coreWork{name: name, run: run, done: done})
}

// SubmitFixed enqueues work of a known duration.
func (c *Core) SubmitFixed(name string, d time.Duration, done func()) {
	c.Submit(name, func() time.Duration { return d }, done)
}

// Stall occupies the core with non-preemptible busywork for the given
// duration: queued work items and newly raised interrupts wait behind
// it, exactly as behind any other run-to-completion item. Fault
// injection uses it to model firmware-level stalls (SMIs, thermal
// throttling events) and — with a long duration — a core going offline.
func (c *Core) Stall(d time.Duration) {
	if d <= 0 {
		return
	}
	c.SubmitFixed("fault:stall", d, nil)
}

// IRQ delivers a hardware interrupt to this core: the handler runs at
// queue-head priority after the IRQ entry cost. Interrupts preempt in
// real kernels; FIFO placement is close enough at the interrupt rates
// the model produces (coalesced NAPI).
func (c *Core) IRQ(name string, handler func() time.Duration) {
	c.Submit("irq:"+name, func() time.Duration {
		return c.k.params.IRQEntry + handler()
	}, nil)
}

// IRQLine is a prepared interrupt vector: the name string and the
// entry-cost wrapper are built once when the driver wires its queues,
// so raising an interrupt on the hot path allocates nothing. This is
// the MSI-X vector table analogue of Core.IRQ.
type IRQLine struct {
	c       *Core
	name    string
	handler func() time.Duration
	run     func() time.Duration
}

// NewIRQLine prepares an interrupt vector targeting this core.
func (c *Core) NewIRQLine(name string, handler func() time.Duration) *IRQLine {
	l := &IRQLine{c: c, name: "irq:" + name, handler: handler}
	l.run = func() time.Duration { return c.k.params.IRQEntry + l.handler() }
	return l
}

// Raise delivers the interrupt (equivalent to Core.IRQ, allocation-free).
func (l *IRQLine) Raise() {
	l.c.queue.ForcePut(coreWork{name: l.name, run: l.run})
}
