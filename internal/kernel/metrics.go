package kernel

import (
	"fmt"

	"ioctopus/internal/metrics"
)

// RegisterMetrics wires per-core execution telemetry into a registry
// under "core<i>": accumulated busy time (a gauge, since ResetBusy
// rewinds it at measurement-window edges) and run-queue depth.
func (k *Kernel) RegisterMetrics(r metrics.Registrar) {
	for _, c := range k.cores {
		c := c
		sc := r.Scope(fmt.Sprintf("core%d", c.id))
		sc.Gauge("busy_seconds", func() float64 { return c.busy.Seconds() })
		sc.Gauge("queue_depth", func() float64 { return float64(c.queue.Len()) })
	}
}
