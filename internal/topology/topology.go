// Package topology describes the hardware of a simulated multi-socket
// server: sockets (NUMA nodes) with cores, DRAM, last-level cache, memory
// and I/O controllers, and the CPU interconnect joining them. It is pure
// description — runtime behaviour lives in internal/memsys,
// internal/interconnect and internal/pcie, which are built from these
// specs.
package topology

import (
	"fmt"
	"time"
)

// NodeID identifies a NUMA node (== socket in this model).
type NodeID int

// NoNode is the sentinel for "not on any node".
const NoNode NodeID = -1

// CoreID identifies a core globally (across sockets).
type CoreID int

// Core is one CPU core.
type Core struct {
	ID      CoreID
	Node    NodeID
	FreqGHz float64
}

// LLCSpec describes a socket's last-level cache.
type LLCSpec struct {
	// Size is the total LLC capacity in bytes.
	Size int64
	// DDIOFraction is the fraction of capacity DMA writes may allocate
	// into (Intel dedicates 2 of 20 ways ≈ 10%).
	DDIOFraction float64
	// HitLatency is the load-to-use latency of an LLC hit.
	HitLatency time.Duration
}

// DRAMSpec describes a socket's memory subsystem.
type DRAMSpec struct {
	// Capacity in bytes.
	Capacity int64
	// BytesPerSec is the sustained memory-controller bandwidth.
	BytesPerSec float64
	// Latency is the idle load-to-use latency of a local DRAM access.
	Latency time.Duration
}

// InterconnectSpec describes the socket-to-socket links (QPI/UPI/HT).
type InterconnectSpec struct {
	// Name, e.g. "QPI 9.6GT/s" or "UPI 10.4GT/s".
	Name string
	// LinksPerPair is how many parallel links join each socket pair.
	LinksPerPair int
	// BytesPerSecPerLink is one link's bandwidth per direction.
	BytesPerSecPerLink float64
	// BaseLatency is the idle one-way crossing latency.
	BaseLatency time.Duration
}

// AggregateBandwidth returns the total one-direction bandwidth between a
// socket pair.
func (s InterconnectSpec) AggregateBandwidth() float64 {
	return float64(s.LinksPerPair) * s.BytesPerSecPerLink
}

// Socket is one CPU package and its local resources.
type Socket struct {
	ID    NodeID
	Cores []*Core
	LLC   LLCSpec
	DRAM  DRAMSpec
	// IOLanes is the number of PCIe lanes the socket's I/O controller
	// exposes (for fabric validation).
	IOLanes int
}

// Server is a complete machine description.
type Server struct {
	Name         string
	Sockets      []*Socket
	Interconnect InterconnectSpec
}

// NumNodes returns the socket count.
func (s *Server) NumNodes() int { return len(s.Sockets) }

// NumCores returns the total core count.
func (s *Server) NumCores() int {
	n := 0
	for _, sk := range s.Sockets {
		n += len(sk.Cores)
	}
	return n
}

// Socket returns the socket with the given node id.
func (s *Server) Socket(n NodeID) *Socket {
	if int(n) < 0 || int(n) >= len(s.Sockets) {
		panic(fmt.Sprintf("topology: no socket %d on %s", n, s.Name))
	}
	return s.Sockets[n]
}

// Core returns the core with the given global id.
func (s *Server) Core(c CoreID) *Core {
	for _, sk := range s.Sockets {
		for _, co := range sk.Cores {
			if co.ID == c {
				return co
			}
		}
	}
	panic(fmt.Sprintf("topology: no core %d on %s", c, s.Name))
}

// CoresOn returns the cores of one node.
func (s *Server) CoresOn(n NodeID) []*Core { return s.Socket(n).Cores }

// NodeOf returns the node a core belongs to.
func (s *Server) NodeOf(c CoreID) NodeID { return s.Core(c).Node }

// Validate checks internal consistency of the description.
func (s *Server) Validate() error {
	if len(s.Sockets) == 0 {
		return fmt.Errorf("topology %s: no sockets", s.Name)
	}
	seen := make(map[CoreID]bool)
	for i, sk := range s.Sockets {
		if sk.ID != NodeID(i) {
			return fmt.Errorf("topology %s: socket %d has id %d", s.Name, i, sk.ID)
		}
		if len(sk.Cores) == 0 {
			return fmt.Errorf("topology %s: socket %d has no cores", s.Name, i)
		}
		if sk.LLC.Size <= 0 || sk.LLC.DDIOFraction < 0 || sk.LLC.DDIOFraction > 1 {
			return fmt.Errorf("topology %s: socket %d has bad LLC spec %+v", s.Name, i, sk.LLC)
		}
		if sk.DRAM.BytesPerSec <= 0 || sk.DRAM.Capacity <= 0 {
			return fmt.Errorf("topology %s: socket %d has bad DRAM spec %+v", s.Name, i, sk.DRAM)
		}
		for _, c := range sk.Cores {
			if c.Node != sk.ID {
				return fmt.Errorf("topology %s: core %d claims node %d, lives on %d", s.Name, c.ID, c.Node, sk.ID)
			}
			if seen[c.ID] {
				return fmt.Errorf("topology %s: duplicate core id %d", s.Name, c.ID)
			}
			seen[c.ID] = true
		}
	}
	if len(s.Sockets) > 1 {
		ic := s.Interconnect
		if ic.LinksPerPair <= 0 || ic.BytesPerSecPerLink <= 0 {
			return fmt.Errorf("topology %s: multi-socket server needs an interconnect, got %+v", s.Name, ic)
		}
	}
	return nil
}

// Build constructs a server with the given socket count and cores per
// socket, applying the per-socket template. Core IDs are dense, socket-
// major, matching Linux's numbering for the evaluated machines.
func Build(name string, sockets, coresPerSocket int, freqGHz float64, llc LLCSpec, dram DRAMSpec, ic InterconnectSpec) *Server {
	srv := &Server{Name: name, Interconnect: ic}
	id := CoreID(0)
	for s := 0; s < sockets; s++ {
		sk := &Socket{ID: NodeID(s), LLC: llc, DRAM: dram, IOLanes: 48}
		for c := 0; c < coresPerSocket; c++ {
			sk.Cores = append(sk.Cores, &Core{ID: id, Node: NodeID(s), FreqGHz: freqGHz})
			id++
		}
		srv.Sockets = append(srv.Sockets, sk)
	}
	if err := srv.Validate(); err != nil {
		panic(err)
	}
	return srv
}

// GB is 10^9 bytes (bandwidth contexts); GiB is 2^30 bytes (capacities).
const (
	GB  = 1e9
	GiB = int64(1) << 30
	MiB = int64(1) << 20
	KiB = int64(1) << 10
)

// DualBroadwell returns the paper's networking testbed: Dell PowerEdge
// R730 with two 14-core 2.0 GHz Xeon E5-2660 v4 (Broadwell) CPUs joined
// by two 9.6 GT/s QPI links, 4x16 GB DIMMs per socket (§5, "Experimental
// setup").
func DualBroadwell() *Server {
	return Build("dual-broadwell-r730",
		2, 14, 2.0,
		LLCSpec{
			Size:         35 * MiB, // 2.5 MB/core x 14
			DDIOFraction: 0.10,     // 2 of 20 ways
			HitLatency:   18 * time.Nanosecond,
		},
		DRAMSpec{
			Capacity:    64 * GiB, // 4x16 GB per socket
			BytesPerSec: 60 * GB,  // 4ch DDR4-2400, sustained
			Latency:     85 * time.Nanosecond,
		},
		InterconnectSpec{
			Name:               "QPI 9.6GT/s x2",
			LinksPerPair:       2,
			BytesPerSecPerLink: 19.2 * GB, // 9.6 GT/s x 2 B/T per direction
			BaseLatency:        60 * time.Nanosecond,
		})
}

// DualSkylake returns the paper's storage testbed: two 24-core Intel Xeon
// Platinum 8160 (Skylake) CPUs joined by two 10.4 GT/s UPI links, 6x8 GB
// DIMMs per socket (§5.4).
func DualSkylake() *Server {
	return Build("dual-skylake-8160",
		2, 24, 2.1,
		LLCSpec{
			Size:         33 * MiB,
			DDIOFraction: 0.10,
			HitLatency:   20 * time.Nanosecond,
		},
		DRAMSpec{
			Capacity:    48 * GiB, // 6x8 GB per socket
			BytesPerSec: 90 * GB,  // 6ch DDR4-2666, sustained
			Latency:     90 * time.Nanosecond,
		},
		InterconnectSpec{
			Name:               "UPI 10.4GT/s x2",
			LinksPerPair:       2,
			BytesPerSecPerLink: 20.8 * GB,
			BaseLatency:        70 * time.Nanosecond,
		})
}

// SingleSocket returns a uniform-memory machine, useful as a NUDMA-free
// control in tests.
func SingleSocket(cores int) *Server {
	return Build("single-socket", 1, cores, 2.0,
		LLCSpec{Size: 35 * MiB, DDIOFraction: 0.10, HitLatency: 18 * time.Nanosecond},
		DRAMSpec{Capacity: 64 * GiB, BytesPerSec: 60 * GB, Latency: 85 * time.Nanosecond},
		InterconnectSpec{})
}

// QuadSocket returns a four-socket server (fully connected interconnect),
// exercising the octoNIC's ability to scale past two PFs (§3.3 describes
// up to four, Figure 4).
func QuadSocket(coresPerSocket int) *Server {
	return Build("quad-socket", 4, coresPerSocket, 2.2,
		LLCSpec{Size: 33 * MiB, DDIOFraction: 0.10, HitLatency: 20 * time.Nanosecond},
		DRAMSpec{Capacity: 48 * GiB, BytesPerSec: 90 * GB, Latency: 90 * time.Nanosecond},
		InterconnectSpec{
			Name:               "UPI 10.4GT/s",
			LinksPerPair:       1,
			BytesPerSecPerLink: 20.8 * GB,
			BaseLatency:        70 * time.Nanosecond,
		})
}
