package topology

import (
	"testing"
	"time"
)

func TestDualBroadwellShape(t *testing.T) {
	s := DualBroadwell()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2", s.NumNodes())
	}
	if s.NumCores() != 28 {
		t.Fatalf("cores = %d, want 28", s.NumCores())
	}
	if got := s.NodeOf(0); got != 0 {
		t.Fatalf("core 0 on node %d, want 0", got)
	}
	if got := s.NodeOf(14); got != 1 {
		t.Fatalf("core 14 on node %d, want 1", got)
	}
	if bw := s.Interconnect.AggregateBandwidth(); bw != 2*19.2e9 {
		t.Fatalf("QPI bandwidth = %v, want 38.4 GB/s", bw)
	}
}

func TestDualSkylakeShape(t *testing.T) {
	s := DualSkylake()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumCores() != 48 {
		t.Fatalf("cores = %d, want 48", s.NumCores())
	}
	if s.Sockets[1].DRAM.Capacity != 48*GiB {
		t.Fatalf("DRAM = %d", s.Sockets[1].DRAM.Capacity)
	}
}

func TestSingleAndQuad(t *testing.T) {
	if s := SingleSocket(8); s.NumCores() != 8 || s.NumNodes() != 1 {
		t.Fatal("single-socket shape wrong")
	}
	q := QuadSocket(12)
	if q.NumCores() != 48 || q.NumNodes() != 4 {
		t.Fatal("quad-socket shape wrong")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCoresOn(t *testing.T) {
	s := DualBroadwell()
	for node := 0; node < 2; node++ {
		cores := s.CoresOn(NodeID(node))
		if len(cores) != 14 {
			t.Fatalf("node %d has %d cores, want 14", node, len(cores))
		}
		for _, c := range cores {
			if c.Node != NodeID(node) {
				t.Fatalf("core %d on wrong node", c.ID)
			}
		}
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	s := DualBroadwell()
	s.Sockets[0].Cores[3].Node = 1
	if err := s.Validate(); err == nil {
		t.Error("mismatched core node not caught")
	}

	s = DualBroadwell()
	s.Sockets[1].LLC.DDIOFraction = 1.5
	if err := s.Validate(); err == nil {
		t.Error("bad DDIO fraction not caught")
	}

	s = DualBroadwell()
	s.Interconnect.LinksPerPair = 0
	if err := s.Validate(); err == nil {
		t.Error("missing interconnect not caught")
	}

	s = DualBroadwell()
	s.Sockets[0].Cores[1].ID = s.Sockets[0].Cores[0].ID
	if err := s.Validate(); err == nil {
		t.Error("duplicate core id not caught")
	}

	if err := (&Server{Name: "empty"}).Validate(); err == nil {
		t.Error("empty server not caught")
	}
}

func TestSocketPanicsOutOfRange(t *testing.T) {
	s := DualBroadwell()
	defer func() {
		if recover() == nil {
			t.Error("Socket(9) should panic")
		}
	}()
	s.Socket(9)
}

func TestCorePanicsUnknown(t *testing.T) {
	s := DualBroadwell()
	defer func() {
		if recover() == nil {
			t.Error("Core(999) should panic")
		}
	}()
	s.Core(999)
}

func TestSpecConstants(t *testing.T) {
	b := DualBroadwell()
	if b.Sockets[0].LLC.Size != 35*MiB {
		t.Error("Broadwell LLC size wrong")
	}
	if b.Sockets[0].LLC.HitLatency != 18*time.Nanosecond {
		t.Error("LLC latency wrong")
	}
	if b.Sockets[0].DRAM.Latency != 85*time.Nanosecond {
		t.Error("DRAM latency wrong")
	}
	if b.Interconnect.BaseLatency != 60*time.Nanosecond {
		t.Error("QPI latency wrong")
	}
}
