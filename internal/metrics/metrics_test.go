package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ioctopus/internal/sim"
)

func TestHistogramPercentiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Percentile(50); got < 49*time.Microsecond || got > 51*time.Microsecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(99); got < 98*time.Microsecond || got > 100*time.Microsecond {
		t.Fatalf("p99 = %v", got)
	}
	if h.Min() != time.Microsecond || h.Max() != 100*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 50500*time.Nanosecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	h.Reset()
	if h.Count() != 0 || h.Percentile(50) != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogramPercentilesOrdered(t *testing.T) {
	f := func(samples []int16) bool {
		h := &Histogram{}
		for _, s := range samples {
			d := time.Duration(s)
			if d < 0 {
				d = -d
			}
			h.Add(d)
		}
		return h.Percentile(10) <= h.Percentile(50) &&
			h.Percentile(50) <= h.Percentile(90) &&
			h.Percentile(90) <= h.Percentile(100)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestSamplerRates(t *testing.T) {
	e := sim.NewEngine()
	var counter float64
	e.Go("gen", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Millisecond)
			counter += 10 // 10 units per ms = 10000/s
		}
	})
	s := NewSampler(e, 10*time.Millisecond)
	series := s.TrackRate("rate", func() float64 { return counter })
	gauge := s.Track("gauge", func() float64 { return counter })
	s.Start()
	e.Run(sim.Time(95 * time.Millisecond))
	s.Stop()
	e.Drain()
	if series.Len() < 8 {
		t.Fatalf("samples = %d", series.Len())
	}
	// Steady rate of 10 per ms = 10000/s.
	for i := 1; i < series.Len(); i++ {
		if series.Values[i] < 9000 || series.Values[i] > 11000 {
			t.Fatalf("rate sample %d = %v, want ~10000", i, series.Values[i])
		}
	}
	if gauge.Values[gauge.Len()-1] <= gauge.Values[0] {
		t.Fatal("gauge should grow")
	}
}

// TestHistogramPercentileEdges: the documented clamping contract.
// Min()/Max() call Percentile(0)/Percentile(100) and must work on any
// non-empty histogram; an empty histogram reports zero everywhere.
func TestHistogramPercentileEdges(t *testing.T) {
	empty := &Histogram{}
	for _, p := range []float64{-5, 0, 50, 100, 150} {
		if got := empty.Percentile(p); got != 0 {
			t.Fatalf("empty Percentile(%v) = %v", p, got)
		}
	}
	if empty.Min() != 0 || empty.Max() != 0 {
		t.Fatalf("empty min/max = %v/%v", empty.Min(), empty.Max())
	}

	single := &Histogram{}
	single.Add(7 * time.Microsecond)
	for _, p := range []float64{-1, 0, 0.001, 50, 100, 101} {
		if got := single.Percentile(p); got != 7*time.Microsecond {
			t.Fatalf("single-sample Percentile(%v) = %v", p, got)
		}
	}
	if single.Min() != 7*time.Microsecond || single.Max() != 7*time.Microsecond {
		t.Fatalf("single min/max = %v/%v", single.Min(), single.Max())
	}

	h := &Histogram{}
	h.Add(3 * time.Microsecond)
	h.Add(time.Microsecond)
	h.Add(2 * time.Microsecond)
	if h.Percentile(0) != time.Microsecond || h.Min() != time.Microsecond {
		t.Fatalf("p0/min = %v/%v", h.Percentile(0), h.Min())
	}
	if h.Percentile(100) != 3*time.Microsecond || h.Max() != 3*time.Microsecond {
		t.Fatalf("p100/max = %v/%v", h.Percentile(100), h.Max())
	}
	if h.Percentile(200) != 3*time.Microsecond || h.Percentile(-200) != time.Microsecond {
		t.Fatal("out-of-range p must clamp")
	}
}

// TestSamplerRestart: a Stop/Start cycle must resume sampling (the old
// stopped flag was never cleared, silently sampling nothing forever).
func TestSamplerRestart(t *testing.T) {
	e := sim.NewEngine()
	var counter float64
	e.Go("gen", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			p.Sleep(time.Millisecond)
			counter += 10
		}
	})
	s := NewSampler(e, 10*time.Millisecond)
	rate := s.TrackRate("rate", func() float64 { return counter })

	s.Start()
	e.Run(sim.Time(50 * time.Millisecond))
	s.Stop()
	afterFirst := rate.Len()
	if afterFirst == 0 {
		t.Fatal("no samples in first window")
	}

	// Stopped gap: nothing may be recorded.
	e.Run(sim.Time(100 * time.Millisecond))
	if rate.Len() != afterFirst {
		t.Fatalf("sampler recorded while stopped: %d -> %d", afterFirst, rate.Len())
	}

	// Restart: sampling resumes, and the 500 units grown during the gap
	// must not be attributed to the first new tick.
	s.Start()
	if !s.Running() {
		t.Fatal("Start after Stop did not schedule a tick")
	}
	e.Run(sim.Time(150 * time.Millisecond))
	s.Stop()
	e.Drain()
	if rate.Len() <= afterFirst {
		t.Fatal("sampler did not resume after Stop/Start")
	}
	for i := afterFirst; i < rate.Len(); i++ {
		if rate.Values[i] < 9000 || rate.Values[i] > 11000 {
			t.Fatalf("post-restart sample %d = %v, want ~10000 (gap growth leaked in)", i, rate.Values[i])
		}
	}
}

// TestSamplerDoubleStart: a second Start while running must not
// double-schedule ticks (which double-counted rate deltas by sampling
// each interval twice).
func TestSamplerDoubleStart(t *testing.T) {
	e := sim.NewEngine()
	var counter float64
	e.Go("gen", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Millisecond)
			counter += 10
		}
	})
	s := NewSampler(e, 10*time.Millisecond)
	rate := s.TrackRate("rate", func() float64 { return counter })
	s.Start()
	s.Start() // must be a no-op
	e.Run(sim.Time(95 * time.Millisecond))
	s.Stop()
	e.Drain()
	if rate.Len() > 10 {
		t.Fatalf("double Start doubled the tick train: %d samples", rate.Len())
	}
	for i, v := range rate.Values {
		if v < 9000 || v > 11000 {
			t.Fatalf("sample %d = %v, want ~10000", i, v)
		}
	}
}

// TestSamplerTrackRateFirstTick: the first tick reports the rate since
// Start, not an absolute-counter spike (TrackRate primes the baseline).
func TestSamplerTrackRateFirstTick(t *testing.T) {
	e := sim.NewEngine()
	counter := 1e12 // huge pre-existing total: an unprimed delta would explode
	e.Go("gen", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			p.Sleep(time.Millisecond)
			counter += 10
		}
	})
	s := NewSampler(e, 10*time.Millisecond)
	rate := s.TrackRate("rate", func() float64 { return counter })
	s.Start()
	e.Run(sim.Time(15 * time.Millisecond))
	s.Stop()
	e.Drain()
	if rate.Len() == 0 {
		t.Fatal("no first tick")
	}
	if v := rate.Values[0]; v < 9000 || v > 11000 {
		t.Fatalf("first tick = %v, want ~10000 (baseline not primed)", v)
	}
}

// TestTableRenderOverflowRow: a row with more cells than headers must
// render (extra unlabeled columns), not panic with index out of range.
func TestTableRenderOverflowRow(t *testing.T) {
	tb := NewTable("overflow", "a", "b")
	tb.AddRow("x", "y")
	tb.AddRow("one", "two", "three-extra", 4)
	tb.AddRow("short")
	out := tb.Render() // must not panic
	if !strings.Contains(out, "three-extra") || !strings.Contains(out, "4") {
		t.Fatalf("overflow cells missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta-long-name", 250*time.Nanosecond)
	out := tb.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
}

func TestConversions(t *testing.T) {
	if Gbps(1.25e9, time.Second) != 10 {
		t.Fatal("Gbps wrong")
	}
	if GBs(2e9, 2*time.Second) != 1 {
		t.Fatal("GBs wrong")
	}
	if Gbps(100, 0) != 0 {
		t.Fatal("zero window should not divide by zero")
	}
}

func TestSpark(t *testing.T) {
	s := &Series{}
	for i, v := range []float64{0, 25, 50, 75, 100} {
		s.Add(sim.Time(i), v)
	}
	spark := s.Spark()
	if len([]rune(spark)) != 5 {
		t.Fatalf("spark = %q", spark)
	}
	runes := []rune(spark)
	if runes[0] != '▁' || runes[4] != '█' {
		t.Fatalf("spark scaling wrong: %q", spark)
	}
	if s.Max() != 100 {
		t.Fatalf("max = %v", s.Max())
	}
	if (&Series{}).Spark() != "" {
		t.Fatal("empty series should render empty")
	}
}

func TestTableCells(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow(1, 2.5)
	cells := tb.Cells()
	if len(cells) != 1 || cells[0][0] != "1" || cells[0][1] != "2.5" {
		t.Fatalf("cells = %v", cells)
	}
	cells[0][0] = "mutated"
	if tb.Cells()[0][0] == "mutated" {
		t.Fatal("Cells must return a copy")
	}
}
