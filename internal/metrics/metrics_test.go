package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ioctopus/internal/sim"
)

func TestHistogramPercentiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Percentile(50); got < 49*time.Microsecond || got > 51*time.Microsecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(99); got < 98*time.Microsecond || got > 100*time.Microsecond {
		t.Fatalf("p99 = %v", got)
	}
	if h.Min() != time.Microsecond || h.Max() != 100*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 50500*time.Nanosecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	h.Reset()
	if h.Count() != 0 || h.Percentile(50) != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogramPercentilesOrdered(t *testing.T) {
	f := func(samples []int16) bool {
		h := &Histogram{}
		for _, s := range samples {
			d := time.Duration(s)
			if d < 0 {
				d = -d
			}
			h.Add(d)
		}
		return h.Percentile(10) <= h.Percentile(50) &&
			h.Percentile(50) <= h.Percentile(90) &&
			h.Percentile(90) <= h.Percentile(100)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestSamplerRates(t *testing.T) {
	e := sim.NewEngine()
	var counter float64
	e.Go("gen", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Millisecond)
			counter += 10 // 10 units per ms = 10000/s
		}
	})
	s := NewSampler(e, 10*time.Millisecond)
	series := s.TrackRate("rate", func() float64 { return counter })
	gauge := s.Track("gauge", func() float64 { return counter })
	s.Start()
	e.Run(sim.Time(95 * time.Millisecond))
	s.Stop()
	e.Drain()
	if series.Len() < 8 {
		t.Fatalf("samples = %d", series.Len())
	}
	// Steady rate of 10 per ms = 10000/s.
	for i := 1; i < series.Len(); i++ {
		if series.Values[i] < 9000 || series.Values[i] > 11000 {
			t.Fatalf("rate sample %d = %v, want ~10000", i, series.Values[i])
		}
	}
	if gauge.Values[gauge.Len()-1] <= gauge.Values[0] {
		t.Fatal("gauge should grow")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta-long-name", 250*time.Nanosecond)
	out := tb.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
}

func TestConversions(t *testing.T) {
	if Gbps(1.25e9, time.Second) != 10 {
		t.Fatal("Gbps wrong")
	}
	if GBs(2e9, 2*time.Second) != 1 {
		t.Fatal("GBs wrong")
	}
	if Gbps(100, 0) != 0 {
		t.Fatal("zero window should not divide by zero")
	}
}

func TestSpark(t *testing.T) {
	s := &Series{}
	for i, v := range []float64{0, 25, 50, 75, 100} {
		s.Add(sim.Time(i), v)
	}
	spark := s.Spark()
	if len([]rune(spark)) != 5 {
		t.Fatalf("spark = %q", spark)
	}
	runes := []rune(spark)
	if runes[0] != '▁' || runes[4] != '█' {
		t.Fatalf("spark scaling wrong: %q", spark)
	}
	if s.Max() != 100 {
		t.Fatalf("max = %v", s.Max())
	}
	if (&Series{}).Spark() != "" {
		t.Fatal("empty series should render empty")
	}
}

func TestTableCells(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow(1, 2.5)
	cells := tb.Cells()
	if len(cells) != 1 || cells[0][0] != "1" || cells[0][1] != "2.5" {
		t.Fatalf("cells = %v", cells)
	}
	cells[0][0] = "mutated"
	if tb.Cells()[0][0] == "mutated" {
		t.Fatal("Cells must return a copy")
	}
}
