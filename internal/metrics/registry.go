// Registry: the unified observability layer. Every subsystem of an
// assembled host (pipes, LLC/DRAM, NIC queues and firmware, kernel
// cores, driver rings) registers named counter/gauge probes into one
// per-cluster registry at construction time; a Snapshot then reads all
// of them at a defined simulation instant, producing the
// machine-readable telemetry `ioctobench -json` exports.
//
// Names are namespaced with '/' by nesting scopes, e.g.
// "server/nic/cx5/pf0/rx_bytes". Probes are closures over live model
// state: registration costs nothing on the simulation hot path, and a
// registry that is never snapshotted is free.
package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"ioctopus/internal/sim"
)

// Kind distinguishes monotonically increasing counters from
// point-in-time gauges.
type Kind uint8

// Metric kinds.
const (
	// KindCounter is a monotonically non-decreasing total (bytes moved,
	// frames dropped). Rates are derived by differencing snapshots.
	KindCounter Kind = iota
	// KindGauge is an instantaneous level (utilization, queue depth).
	KindGauge
)

// String names the kind as it appears in JSON exports.
func (k Kind) String() string {
	if k == KindCounter {
		return "counter"
	}
	return "gauge"
}

// MarshalJSON emits the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses the string form back (report validation).
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "counter":
		*k = KindCounter
	case "gauge":
		*k = KindGauge
	default:
		return fmt.Errorf("metrics: unknown kind %q", s)
	}
	return nil
}

// Sample is one probed value at snapshot time.
type Sample struct {
	Name  string  `json:"name"`
	Kind  Kind    `json:"kind"`
	Value float64 `json:"value"`
}

// Registrar is the registration surface handed to subsystems: register
// counters and gauges under the current namespace, or open a nested
// scope. Both *Registry (the root, empty namespace) and the scopes it
// returns implement it.
type Registrar interface {
	// Counter registers a monotonic total probe under the scope.
	Counter(name string, probe func() float64)
	// Gauge registers an instantaneous level probe under the scope.
	Gauge(name string, probe func() float64)
	// Scope returns a Registrar that prefixes names with name + "/".
	Scope(name string) Registrar
}

type probeEntry struct {
	kind  Kind
	probe func() float64
}

// Registry holds a cluster's registered probes. The zero value is not
// usable; construct with NewRegistry. Registration and Snapshot are
// safe for concurrent use (distinct clusters run on distinct
// goroutines under the parallel harness; a single cluster's registry
// is also shared by its subsystems during assembly).
type Registry struct {
	mu      sync.Mutex
	entries map[string]probeEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]probeEntry)}
}

// register adds a probe under its full name; duplicate names are a
// wiring bug and panic so they surface in tests, not as silently
// clobbered telemetry.
func (r *Registry) register(kind Kind, name string, probe func() float64) {
	if probe == nil {
		panic(fmt.Sprintf("metrics: nil probe for %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	r.entries[name] = probeEntry{kind: kind, probe: probe}
}

// Counter implements Registrar at the root (empty) namespace.
func (r *Registry) Counter(name string, probe func() float64) {
	r.register(KindCounter, name, probe)
}

// Gauge implements Registrar at the root namespace.
func (r *Registry) Gauge(name string, probe func() float64) {
	r.register(KindGauge, name, probe)
}

// Scope implements Registrar: names registered through the returned
// Registrar are prefixed with name + "/".
func (r *Registry) Scope(name string) Registrar {
	return scope{reg: r, prefix: name + "/"}
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Value reads one metric by full name.
func (r *Registry) Value(name string) (float64, bool) {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	return e.probe(), true
}

// Snapshot probes every registered metric and returns the samples
// sorted by name, so snapshots are deterministic and diffable.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	entries := make([]probeEntry, len(names))
	for i, n := range names {
		entries[i] = r.entries[n]
	}
	r.mu.Unlock()
	// Probe outside the lock: probes may touch model state that in turn
	// reads the registry-owning cluster, and holding the mutex during
	// arbitrary callbacks invites deadlock.
	out := make([]Sample, len(names))
	for i, n := range names {
		out[i] = Sample{Name: n, Kind: entries[i].kind, Value: entries[i].probe()}
	}
	return out
}

// SnapshotTable renders a snapshot as a plain-text metrics table
// (debugging, octotrace-style dumps).
func SnapshotTable(samples []Sample) *Table {
	t := NewTable("metrics", "name", "kind", "value")
	for _, s := range samples {
		t.AddRow(s.Name, s.Kind.String(), s.Value)
	}
	return t
}

// scope is a prefixed view of a registry.
type scope struct {
	reg    *Registry
	prefix string
}

func (s scope) Counter(name string, probe func() float64) {
	s.reg.register(KindCounter, s.prefix+name, probe)
}

func (s scope) Gauge(name string, probe func() float64) {
	s.reg.register(KindGauge, s.prefix+name, probe)
}

func (s scope) Scope(name string) Registrar {
	return scope{reg: s.reg, prefix: s.prefix + name + "/"}
}

// RegisterPipe registers a sim.Pipe's counters and gauges under the
// given scope: total discrete/fluid bytes and ops plus live
// utilization and latency. Pipes live in the sim package, which metrics
// imports (and not vice versa), so the glue lives here.
func RegisterPipe(r Registrar, p *sim.Pipe) {
	r.Counter("discrete_bytes", p.DiscreteBytes)
	r.Counter("discrete_ops", func() float64 { return float64(p.DiscreteOps()) })
	r.Counter("fluid_bytes", p.FluidBytes)
	r.Gauge("utilization", p.Utilization)
	r.Gauge("fluid_rate_bps", p.FluidRate)
	r.Gauge("mean_latency_seconds", func() float64 { return p.MeanLatency().Seconds() })
}

// RegisterEngine registers the simulation engine's own health metrics.
func RegisterEngine(r Registrar, e *sim.Engine) {
	r.Counter("events_executed", func() float64 { return float64(e.Executed) })
	r.Gauge("events_pending", func() float64 { return float64(e.Pending()) })
	r.Gauge("now_seconds", func() float64 { return e.Now().Seconds() })
}

// RegisterEngines registers the same health metrics for a sharded
// cluster, summed over the shards, under the same names — a sharded
// run's snapshot is indistinguishable from a serial run's (event
// dispatch is 1:1 between the modes, and the shard clocks are
// equalized at every sync barrier, where snapshots happen).
func RegisterEngines(r Registrar, engines []*sim.Engine) {
	if len(engines) == 1 {
		RegisterEngine(r, engines[0])
		return
	}
	r.Counter("events_executed", func() float64 {
		var n uint64
		for _, e := range engines {
			n += e.Executed
		}
		return float64(n)
	})
	r.Gauge("events_pending", func() float64 {
		n := 0
		for _, e := range engines {
			n += e.Pending()
		}
		return float64(n)
	})
	r.Gauge("now_seconds", func() float64 { return engines[0].Now().Seconds() })
}
