// Package metrics provides the measurement utilities the benchmark
// harness reports with: latency histograms with percentiles, periodic
// time-series samplers (the 50 ms per-PF throughput samples of Figure
// 14), and plain-text table rendering for the figure reproductions.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ioctopus/internal/sim"
)

// Histogram collects duration samples and reports order statistics.
type Histogram struct {
	samples []time.Duration
	sorted  bool
	sum     time.Duration
}

// Add records a sample.
func (h *Histogram) Add(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sorted = false
	h.sum += d
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the average sample.
func (h *Histogram) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// Percentile returns the p-th percentile by nearest rank. p is clamped
// to [0, 100]: p <= 0 returns the smallest sample (what Min relies on),
// p >= 100 the largest, and an empty histogram reports 0 for any p.
func (h *Histogram) Percentile(p float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(p/100*float64(len(h.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(h.samples) {
		rank = len(h.samples) - 1
	}
	return h.samples[rank]
}

// Min returns the smallest sample.
func (h *Histogram) Min() time.Duration { return h.Percentile(0) }

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.Percentile(100) }

// Reset clears the histogram.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sum = 0
	h.sorted = false
}

// Series is a sampled time series.
type Series struct {
	Name   string
	Times  []sim.Time
	Values []float64
}

// Add appends a point.
func (s *Series) Add(t sim.Time, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the point count.
func (s *Series) Len() int { return len(s.Values) }

// Sampler periodically samples counters into Series, e.g. per-PF
// byte counters every 50 ms for Figure 14.
type Sampler struct {
	eng      *sim.Engine
	interval time.Duration
	series   []*Series
	probes   []func() float64
	prev     []float64
	rate     []bool
	stopped  bool
	timer    sim.Timer
}

// NewSampler creates a sampler with the given period; call Start to
// begin.
func NewSampler(e *sim.Engine, interval time.Duration) *Sampler {
	return &Sampler{eng: e, interval: interval}
}

// Track adds a gauge probe: the probe's value is recorded each tick.
func (s *Sampler) Track(name string, probe func() float64) *Series {
	se := &Series{Name: name}
	s.series = append(s.series, se)
	s.probes = append(s.probes, probe)
	s.prev = append(s.prev, 0)
	s.rate = append(s.rate, false)
	return se
}

// TrackRate adds a counter probe: each tick records the delta since the
// previous tick divided by the interval (a rate).
func (s *Sampler) TrackRate(name string, probe func() float64) *Series {
	se := s.Track(name, probe)
	s.rate[len(s.rate)-1] = true
	s.prev[len(s.prev)-1] = probe()
	return se
}

// Start begins sampling; the sampler reschedules itself until Stop.
// Start is idempotent — calling it while a tick is already pending
// changes nothing, so a double Start cannot double-schedule ticks or
// double-count rate deltas — and it undoes Stop, so a Stop/Start cycle
// resumes sampling. On (re)start the rate baselines are re-primed, so
// counter growth during a stopped gap is not attributed to the first
// new tick.
func (s *Sampler) Start() {
	s.stopped = false
	if s.timer.Pending() {
		return
	}
	for i, isRate := range s.rate {
		if isRate {
			s.prev[i] = s.probes[i]()
		}
	}
	s.timer = s.eng.After(s.interval, s.tick)
}

// Stop halts sampling immediately: the pending tick is cancelled and no
// further samples are recorded until Start is called again.
func (s *Sampler) Stop() {
	s.stopped = true
	s.timer.Stop()
	s.timer = sim.Timer{}
}

// Running reports whether the sampler has a tick scheduled.
func (s *Sampler) Running() bool { return s.timer.Pending() }

func (s *Sampler) tick() {
	s.timer = sim.Timer{}
	if s.stopped {
		return
	}
	now := s.eng.Now()
	for i, probe := range s.probes {
		v := probe()
		if s.rate[i] {
			delta := v - s.prev[i]
			s.prev[i] = v
			s.series[i].Add(now, delta/s.interval.Seconds())
		} else {
			s.series[i].Add(now, v)
		}
	}
	s.timer = s.eng.After(s.interval, s.tick)
}

// Table renders aligned plain-text result tables.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with 3
// significant decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case time.Duration:
			row[i] = v.Round(10 * time.Nanosecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the formatted row count.
func (t *Table) Rows() int { return len(t.rows) }

// Render returns the aligned table text. Rows wider than the header
// get extra unlabeled columns rather than panicking; rows narrower than
// the header simply end early.
func (t *Table) Render() string {
	ncols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Gbps converts a byte count over a window to gigabits per second.
func Gbps(bytes float64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return bytes * 8 / window.Seconds() / 1e9
}

// GBs converts a byte count over a window to gigabytes per second.
func GBs(bytes float64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return bytes / window.Seconds() / 1e9
}

// sparkLevels are the eight block glyphs used by Spark.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders the series' values as a unicode sparkline, scaled to
// the series' own maximum — enough to see the Figure 14 handoff in a
// terminal.
func (s *Series) Spark() string {
	if len(s.Values) == 0 {
		return ""
	}
	maxV := s.Values[0]
	for _, v := range s.Values {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]rune, len(s.Values))
	for i, v := range s.Values {
		if maxV <= 0 || v <= 0 {
			out[i] = sparkLevels[0]
			continue
		}
		idx := int(v / maxV * float64(len(sparkLevels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		out[i] = sparkLevels[idx]
	}
	return string(out)
}

// Max returns the series' largest value (0 when empty).
func (s *Series) Max() float64 {
	var m float64
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Cells returns a copy of the table's formatted rows (for JSON export).
func (t *Table) Cells() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}
