package metrics

import (
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"testing"

	"ioctopus/internal/sim"
)

func TestRegistryScopesAndSnapshot(t *testing.T) {
	r := NewRegistry()
	var frames float64 = 41
	r.Counter("rx_frames", func() float64 { return frames })
	nic := r.Scope("nic").Scope("pf0")
	nic.Counter("rx_bytes", func() float64 { return 1500 })
	nic.Gauge("queue_depth", func() float64 { return 3 })

	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	frames++
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Name < snap[j].Name }) {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
	want := map[string]struct {
		kind  Kind
		value float64
	}{
		"rx_frames":           {KindCounter, 42},
		"nic/pf0/rx_bytes":    {KindCounter, 1500},
		"nic/pf0/queue_depth": {KindGauge, 3},
	}
	for _, s := range snap {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected sample %q", s.Name)
		}
		if s.Kind != w.kind || s.Value != w.value {
			t.Fatalf("sample %q = %v/%v, want %v/%v", s.Name, s.Kind, s.Value, w.kind, w.value)
		}
	}
	if v, ok := r.Value("nic/pf0/rx_bytes"); !ok || v != 1500 {
		t.Fatalf("Value = %v/%v", v, ok)
	}
	if _, ok := r.Value("nope"); ok {
		t.Fatal("Value of unknown name must report !ok")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.Gauge("x", func() float64 { return 0 })
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := r.Scope("worker" + string(rune('a'+i)))
			for j := 0; j < 50; j++ {
				sc.Counter("c"+string(rune('a'+j%26))+string(rune('a'+j/26)), func() float64 { return 1 })
			}
		}(i)
	}
	wg.Wait()
	if r.Len() != 8*50 {
		t.Fatalf("len = %d", r.Len())
	}
	if got := len(r.Snapshot()); got != 8*50 {
		t.Fatalf("snapshot = %d", got)
	}
}

func TestRegisterPipeAndEngine(t *testing.T) {
	e := sim.NewEngine()
	p := sim.NewPipe(e, sim.PipeConfig{Name: "link", BytesPerSec: 1e9})
	r := NewRegistry()
	RegisterPipe(r.Scope("link"), p)
	RegisterEngine(r.Scope("engine"), e)

	done := 0
	p.Transfer(1000, func() { done++ })
	e.RunUntilIdle()

	mustValue := func(name string, want float64) {
		t.Helper()
		v, ok := r.Value(name)
		if !ok {
			t.Fatalf("metric %q not registered", name)
		}
		if v != want {
			t.Fatalf("%s = %v, want %v", name, v, want)
		}
	}
	mustValue("link/discrete_bytes", 1000)
	mustValue("link/discrete_ops", 1)
	mustValue("engine/events_executed", 1)
	mustValue("engine/events_pending", 0)
	if v, _ := r.Value("engine/now_seconds"); v <= 0 {
		t.Fatalf("now_seconds = %v", v)
	}
}

func TestSampleJSON(t *testing.T) {
	b, err := json.Marshal(Sample{Name: "a/b", Kind: KindGauge, Value: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"name":"a/b","kind":"gauge","value":1.5}` {
		t.Fatalf("json = %s", b)
	}
}

func TestSnapshotTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("total", func() float64 { return 12 })
	tb := SnapshotTable(r.Snapshot())
	out := tb.Render()
	if !strings.Contains(out, "total") || !strings.Contains(out, "counter") {
		t.Fatalf("table:\n%s", out)
	}
}
