// Allow directives: the escape hatch for findings that are understood
// and justified. A comment of the form
//
//	//octolint:allow <rule> <reason>
//
// suppresses <rule>'s findings on its own line and on the line below
// (so it can trail the offending line or stand alone above it). The
// reason is mandatory: a bare "//octolint:allow simdeterminism" is
// itself a finding (reserved rule "directive"), as is a directive that
// suppresses nothing or names a rule the run does not know. The policy
// is deliberately strict; the directive is an audit record, not a
// mute button.

package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces an allow directive. The space-free form
// follows the Go convention for machine-readable comments
// (//go:build, //nolint), so gofmt leaves it alone.
const directivePrefix = "//octolint:allow"

// DirectiveRule is the reserved rule name under which problems with
// the directives themselves are reported. It cannot be suppressed.
const DirectiveRule = "directive"

type directive struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

// parseDirectives extracts every octolint directive from a file.
// Malformed directives (no rule, or no reason) are reported
// immediately and excluded from suppression.
func parseDirectives(fset *token.FileSet, f *ast.File, report func(Diagnostic)) []*directive {
	var ds []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			// The reason ends at an embedded comment marker, so fixture
			// "// want" annotations (linttest) don't read as justification.
			if i := strings.Index(text, "//"); i >= 0 {
				text = text[:i]
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) == 0 {
				report(Diagnostic{Pos: pos, Rule: DirectiveRule,
					Message: "octolint:allow directive names no rule"})
				continue
			}
			if len(fields) < 2 {
				report(Diagnostic{Pos: pos, Rule: DirectiveRule,
					Message: "octolint:allow " + fields[0] + " has no justification; write //octolint:allow " + fields[0] + " <reason>"})
				continue
			}
			ds = append(ds, &directive{
				pos:    pos,
				rule:   fields[0],
				reason: strings.Join(fields[1:], " "),
			})
		}
	}
	return ds
}

// applyDirectives filters raw findings through the allow directives of
// every package and appends directive-hygiene findings: unknown rules
// and directives that suppressed nothing.
func applyDirectives(pkgs []*Package, raw []Diagnostic, known map[string]bool) []Diagnostic {
	var all []*directive
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			all = append(all, parseDirectives(pkg.Fset, f, func(d Diagnostic) { out = append(out, d) })...)
		}
	}
	// byKey indexes directives by (file, line, rule) for the two lines
	// each covers: its own and the next.
	type key struct {
		file string
		line int
		rule string
	}
	byKey := map[key]*directive{}
	for _, d := range all {
		byKey[key{d.pos.Filename, d.pos.Line, d.rule}] = d
		byKey[key{d.pos.Filename, d.pos.Line + 1, d.rule}] = d
	}
	for _, diag := range raw {
		if diag.Rule != DirectiveRule {
			if d, ok := byKey[key{diag.Pos.Filename, diag.Pos.Line, diag.Rule}]; ok {
				d.used = true
				continue
			}
		}
		out = append(out, diag)
	}
	for _, d := range all {
		if !known[d.rule] {
			out = append(out, Diagnostic{Pos: d.pos, Rule: DirectiveRule,
				Message: "octolint:allow names unknown rule " + d.rule})
			continue
		}
		if !d.used {
			out = append(out, Diagnostic{Pos: d.pos, Rule: DirectiveRule,
				Message: "octolint:allow " + d.rule + " suppresses nothing; remove the stale directive"})
		}
	}
	return out
}
