// Package loading: a stdlib-only substitute for
// golang.org/x/tools/go/packages, sufficient for this single module.
// The module path comes from go.mod, package discovery is a directory
// walk (skipping testdata, hidden and underscore directories, exactly
// as the go tool does), and type information comes from go/types with
// the compiler's source importer, which resolves both stdlib and
// intra-module imports from source — no pre-built export data, no
// network, no module downloads.

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path ("ioctopus/internal/sim")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files, sorted by filename
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages. One Loader shares a FileSet
// and an import cache across every package it loads.
type Loader struct {
	fset *token.FileSet
	imp  types.ImporterFrom
	// IncludeTests loads _test.go files of the package under test
	// (external test packages are not loaded). Off by default: the
	// invariants octolint enforces are about model code, and tests
	// legitimately use maps, wall-clock deadlines via testing, etc.
	IncludeTests bool
}

// NewLoader returns a loader with an empty import cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// ModulePath reads the module path out of root's go.mod.
func ModulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// LoadModule loads every package under root (the module root), in
// deterministic directory order. Directories named testdata, hidden
// directories, and underscore-prefixed directories are skipped, like
// the go tool skips them.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, importPath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir, returning
// nil (no error) when the directory holds no Go files. Test files are
// included only when IncludeTests is set.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	parsed := make([]*ast.File, len(names))
	for i, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed[i] = f
	}
	// The package name is set by the non-test files; external test
	// packages ("foo_test") type-check against the package under test,
	// so they are left out to keep LoadDir a single self-consistent
	// unit.
	pkgName := ""
	for i, f := range parsed {
		if !strings.HasSuffix(names[i], "_test.go") {
			if pkgName != "" && f.Name.Name != pkgName {
				return nil, fmt.Errorf("lint: %s: mixed packages %q and %q", dir, pkgName, f.Name.Name)
			}
			pkgName = f.Name.Name
		}
	}
	var files []*ast.File
	for _, f := range parsed {
		if pkgName == "" || f.Name.Name == pkgName {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
