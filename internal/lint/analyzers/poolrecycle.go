package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"ioctopus/internal/lint"
)

// PoolRecycle is a flow-sensitive intra-procedural check of the packet
// pool lease discipline (internal/nic/pool.go, internal/eth's
// FramePool): a leased *nic.TxPacket, *nic.RxPacket or *eth.Frame must
// be recycled exactly once and not touched afterwards, or its
// ownership must be transferred (passed to a callee, stored into a
// structure, returned, captured). It front-runs the pool's runtime
// "recycled twice" panics and the leak class the pool/{rx,tx,frame}
// live gauges only reveal after a run. Reported:
//
//   - recycle when the lease may already be recycled (double recycle);
//   - any use of a lease after a path recycled it;
//   - a lease acquired in a function that on some fall-through path is
//     neither recycled nor transferred (a live-count leak).
//
// The analysis is deliberately conservative: passing a lease anywhere
// (argument, field store, closure capture, channel, return) counts as
// an ownership transfer and ends tracking on that alias.
var PoolRecycle = &lint.Analyzer{
	Name: "poolrecycle",
	Doc:  "pooled packet leases must be recycled exactly once or explicitly transferred",
	Run:  runPoolRecycle,
}

// Lease state bits. Merging control-flow paths unions the bits; a
// definite fact is a single-bit state.
type pstate uint8

const (
	psLive pstate = 1 << iota
	psRecycled
	psMoved
)

// acquireFuncs name the pool entry points that hand out a fresh lease
// as their single result.
var acquireFuncs = map[string]bool{"LeaseTxPacket": true, "Lease": true, "Get": true, "get": true}

// acquireBatchFuncs return a slice of leases; ranging over a direct
// call makes the range value a fresh per-iteration lease.
var acquireBatchFuncs = map[string]bool{"Poll": true, "Reap": true}

// recycleMethods release a lease back to its pool, by tracked type
// name.
var recycleMethods = map[string]string{"TxPacket": "Recycle", "RxPacket": "Recycle", "Frame": "Release"}

func runPoolRecycle(pass *lint.Pass) error {
	pr := &poolPass{pass: pass, seen: map[string]bool{}}
	forEachFunc(pass, func(fd *ast.FuncDecl) {
		pr.checkFunc(fd.Body)
		// Function literals get the same treatment as their enclosing
		// function, independently: a lease acquired inside a callback
		// must be settled inside it (captures of outer leases were
		// already treated as transfers by the outer walk).
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				pr.checkFunc(fl.Body)
			}
			return true
		})
	})
	return nil
}

type poolPass struct {
	pass *lint.Pass
	seen map[string]bool // dedup across the loop double-walk
	// per-function state
	state    map[types.Object]pstate
	acquired map[types.Object]token.Pos
	deferred map[types.Object]bool
	// contExits collects the states at continue statements of the loop
	// body currently being walked (nil outside a loop); walkLoopBody
	// folds them into the body's exit state.
	contExits *[]map[types.Object]pstate
}

func (pr *poolPass) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := pr.pass.Fset.Position(pos).String() + msg
	if pr.seen[key] {
		return
	}
	pr.seen[key] = true
	pr.pass.Reportf(pos, "%s", msg)
}

// tracked reports whether t is a pointer to one of the pooled packet
// types, returning the type name.
func tracked(t types.Type) (string, bool) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	for _, tn := range []struct{ pkg, name string }{
		{"ioctopus/internal/nic", "TxPacket"},
		{"ioctopus/internal/nic", "RxPacket"},
		{"ioctopus/internal/eth", "Frame"},
	} {
		if lint.IsNamedType(ptr.Elem(), tn.pkg, tn.name) {
			return tn.name, true
		}
	}
	return "", false
}

func (pr *poolPass) checkFunc(body *ast.BlockStmt) {
	pr.state = map[types.Object]pstate{}
	pr.acquired = map[types.Object]token.Pos{}
	pr.deferred = map[types.Object]bool{}
	pr.contExits = nil
	st := pr.walkStmts(body.List, pr.state)
	if st != nil {
		pr.leakCheck(st, body.End())
	}
}

func clone(st map[types.Object]pstate) map[types.Object]pstate {
	c := make(map[types.Object]pstate, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

// merge unions path states; a nil state (path ended in return) is the
// identity.
func merge(a, b map[types.Object]pstate) map[types.Object]pstate {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	for k, v := range b {
		a[k] |= v
	}
	return a
}

// leakCheck reports leases that are definitely still live — never
// recycled, never transferred on any path — when control leaves the
// function.
func (pr *poolPass) leakCheck(st map[types.Object]pstate, pos token.Pos) {
	//octolint:allow simdeterminism reports are deduplicated by position and sorted before output
	for obj, s := range st {
		if s == psLive && !pr.deferred[obj] {
			at := pr.acquired[obj]
			if !at.IsValid() {
				at = pos
			}
			pr.reportf(at, "lease %q escapes without Recycle or an ownership transfer (pool live count leaks)", obj.Name())
		}
	}
}

// trackedIdent resolves expr to a tracked lease variable currently in
// the state map.
func (pr *poolPass) trackedIdent(st map[types.Object]pstate, expr ast.Expr) (types.Object, bool) {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := objectOf(pr.pass, id)
	if obj == nil {
		return nil, false
	}
	_, ok = st[obj]
	return obj, ok
}

// moveIdents transfers ownership of every tracked lease mentioned in n.
func (pr *poolPass) moveIdents(st map[types.Object]pstate, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok {
			if obj := pr.pass.Info.Uses[id]; obj != nil {
				if _, tracked := st[obj]; tracked {
					st[obj] = st[obj]&^psLive | psMoved
				}
			}
		}
		return true
	})
}

// scanExpr checks uses (use-after-recycle) and applies transfer
// semantics: a tracked ident inside a call argument, composite
// literal, address-of, or function literal loses its lease.
func (pr *poolPass) scanExpr(st map[types.Object]pstate, expr ast.Expr) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pr.moveIdents(st, n.Body)
			return false
		case *ast.CallExpr:
			pr.scanExpr(st, n.Fun)
			for _, arg := range n.Args {
				pr.useCheck(st, arg)
				pr.moveIdents(st, arg)
			}
			return false
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				pr.useCheck(st, elt)
				pr.moveIdents(st, elt)
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				pr.useCheck(st, n.X)
				pr.moveIdents(st, n.X)
				return false
			}
		case *ast.Ident:
			pr.useCheck(st, n)
		}
		return true
	})
}

// useCheck reports mentions of leases that some path has recycled.
func (pr *poolPass) useCheck(st map[types.Object]pstate, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pr.pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		s, isTracked := st[obj]
		if !isTracked || s&psRecycled == 0 {
			return true
		}
		if s == psRecycled {
			pr.reportf(id.Pos(), "lease %q used after Recycle; the pool may already have re-leased it", id.Name)
		} else {
			pr.reportf(id.Pos(), "lease %q may be used after Recycle (recycled on one path through this function)", id.Name)
		}
		return true
	})
}

// recycleCall matches v.Recycle() / v.Release() on a tracked lease.
func (pr *poolPass) recycleCall(st map[types.Object]pstate, call *ast.CallExpr) (types.Object, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	obj, ok := pr.trackedIdent(st, sel.X)
	if !ok {
		return nil, false
	}
	name, _ := tracked(obj.Type())
	if recycleMethods[name] != sel.Sel.Name {
		return nil, false
	}
	return obj, true
}

// acquireCall matches a call whose single result is a fresh lease.
func (pr *poolPass) acquireCall(call *ast.CallExpr) bool {
	obj := lint.CalleeObject(pr.pass.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok || !acquireFuncs[fn.Name()] {
		return false
	}
	tv, ok := pr.pass.Info.Types[call]
	if !ok {
		return false
	}
	_, isTracked := tracked(tv.Type)
	return isTracked
}

// walkStmts interprets a statement list, returning the exit state (nil
// when every path returns).
func (pr *poolPass) walkStmts(stmts []ast.Stmt, st map[types.Object]pstate) map[types.Object]pstate {
	for _, s := range stmts {
		st = pr.walkStmt(s, st)
		if st == nil {
			return nil
		}
	}
	return st
}

func (pr *poolPass) walkStmt(s ast.Stmt, st map[types.Object]pstate) map[types.Object]pstate {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if obj, ok := pr.recycleCall(st, call); ok {
				if st[obj]&psRecycled != 0 {
					pr.reportf(call.Pos(), "lease %q recycled twice (the pool panics on double recycle)", obj.Name())
				}
				st[obj] = psRecycled
				return st
			}
		}
		pr.scanExpr(st, s.X)
		return st
	case *ast.AssignStmt:
		return pr.walkAssign(s, st)
	case *ast.DeferStmt:
		if obj, ok := pr.recycleCall(st, s.Call); ok {
			if pr.deferred[obj] {
				pr.reportf(s.Pos(), "lease %q recycled twice via defer", obj.Name())
			}
			pr.deferred[obj] = true
			return st
		}
		pr.scanExpr(st, s.Call)
		return st
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			pr.useCheck(st, r)
			pr.moveIdents(st, r)
		}
		pr.leakCheck(st, s.Pos())
		return nil
	case *ast.IfStmt:
		if s.Init != nil {
			st = pr.walkStmt(s.Init, st)
			if st == nil {
				return nil
			}
		}
		pr.scanExpr(st, s.Cond)
		then := pr.walkStmts(s.Body.List, clone(st))
		var els map[types.Object]pstate = st
		if s.Else != nil {
			els = pr.walkStmt(s.Else, clone(st))
		}
		return merge(then, els)
	case *ast.BlockStmt:
		return pr.walkStmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st = pr.walkStmt(s.Init, st)
			if st == nil {
				return nil
			}
		}
		pr.scanExpr(st, s.Cond)
		// Two passes so second-iteration facts (use after a recycle at
		// the end of the body) are seen; reports dedup.
		once := pr.walkLoopBody(s.Body.List, clone(st))
		if s.Post != nil && once != nil {
			once = pr.walkStmt(s.Post, once)
		}
		again := pr.walkLoopBody(s.Body.List, merge(clone(st), once))
		return merge(st, again)
	case *ast.RangeStmt:
		return pr.walkRange(s, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return pr.walkSwitch(s, st)
	case *ast.SelectStmt, *ast.GoStmt:
		// Concurrency hand-off: everything mentioned escapes.
		pr.moveIdents(st, s)
		return st
	case *ast.SendStmt:
		pr.useCheck(st, s.Value)
		pr.moveIdents(st, s.Value)
		pr.scanExpr(st, s.Chan)
		return st
	case *ast.IncDecStmt:
		pr.scanExpr(st, s.X)
		return st
	case *ast.LabeledStmt:
		return pr.walkStmt(s.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						pr.scanExpr(st, v)
					}
				}
			}
		}
		return st
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE && pr.contExits != nil {
			// continue ends the iteration: its state joins the loop
			// body's exit merge instead of flowing into the statements
			// textually below it.
			*pr.contExits = append(*pr.contExits, clone(st))
			return nil
		}
		return st
	case *ast.EmptyStmt:
		return st
	}
	// Unknown statement kinds: scan conservatively.
	pr.useCheck(st, s)
	pr.moveIdents(st, s)
	return st
}

func (pr *poolPass) walkAssign(s *ast.AssignStmt, st map[types.Object]pstate) map[types.Object]pstate {
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		lid, lhsIsIdent := ast.Unparen(lhs).(*ast.Ident)
		if rhs != nil {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && pr.acquireCall(call) && lhsIsIdent && len(s.Rhs) == len(s.Lhs) {
				// Fresh lease bound to a variable.
				pr.scanExpr(st, call)
				if obj := objectOf(pr.pass, lid); obj != nil {
					if old, ok := st[obj]; ok && old == psLive {
						pr.reportf(s.Pos(), "lease %q overwritten while still live (pool live count leaks)", lid.Name)
					}
					st[obj] = psLive
					pr.acquired[obj] = s.Pos()
				}
				continue
			}
			if obj, ok := pr.trackedIdent(st, rhs); ok && len(s.Rhs) == len(s.Lhs) {
				pr.useCheck(st, rhs)
				if lhsIsIdent && lid.Name != "_" {
					// Alias: the new name carries the lease onward.
					if nobj := objectOf(pr.pass, lid); nobj != nil {
						st[nobj] = st[obj]
						pr.acquired[nobj] = pr.acquired[obj]
					}
				}
				st[obj] = st[obj]&^psLive | psMoved
				continue
			}
			pr.scanExpr(st, rhs)
		}
		if !lhsIsIdent {
			// Store target expression itself (index/selector receivers).
			pr.scanExpr(st, lhs)
		}
	}
	return st
}

// walkRange handles range statements; ranging over a Poll/Reap batch
// makes the value variable a fresh lease each iteration that must be
// settled within the body.
func (pr *poolPass) walkRange(s *ast.RangeStmt, st map[types.Object]pstate) map[types.Object]pstate {
	var perIter types.Object
	if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
		if fn, ok := lint.CalleeObject(pr.pass.Info, call).(*types.Func); ok && acquireBatchFuncs[fn.Name()] {
			if tv, ok := pr.pass.Info.Types[s.X]; ok {
				if sl, ok := tv.Type.Underlying().(*types.Slice); ok {
					if _, isTracked := tracked(sl.Elem()); isTracked {
						if vid, ok := s.Value.(*ast.Ident); ok && vid.Name != "_" {
							perIter = objectOf(pr.pass, vid)
						}
					}
				}
			}
		}
	}
	pr.scanExpr(st, s.X)
	entry := clone(st)
	if perIter != nil {
		entry[perIter] = psLive
		pr.acquired[perIter] = s.Pos()
	}
	exit := pr.walkLoopBody(s.Body.List, entry)
	if exit != nil && perIter != nil {
		// A per-iteration lease lives only inside the body, so any
		// exit path — fall-through or continue — still holding it
		// live is a leak on the iterations that take it.
		if exit[perIter]&psLive != 0 {
			pr.reportf(s.Pos(), "per-iteration lease %q is not recycled or transferred by the loop body (pool live count leaks)", perIter.Name())
		}
		delete(exit, perIter)
	}
	// Second pass for wraparound facts on outer leases.
	exit2 := pr.walkLoopBody(s.Body.List, merge(clone(st), exit))
	if perIter != nil && exit2 != nil {
		delete(exit2, perIter)
	}
	return merge(st, exit2)
}

// walkLoopBody walks a loop body and folds the states collected at its
// continue statements into the fall-through exit state: a continue ends
// the iteration exactly like falling off the end of the body does.
// Breaks keep their conservative fall-through treatment (a break inside
// a switch clause targets the switch, not the loop, and telling the two
// apart is not worth the precision here).
func (pr *poolPass) walkLoopBody(stmts []ast.Stmt, st map[types.Object]pstate) map[types.Object]pstate {
	var conts []map[types.Object]pstate
	saved := pr.contExits
	pr.contExits = &conts
	exit := pr.walkStmts(stmts, st)
	pr.contExits = saved
	for _, c := range conts {
		exit = merge(exit, c)
	}
	return exit
}

func (pr *poolPass) walkSwitch(s ast.Stmt, st map[types.Object]pstate) map[types.Object]pstate {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = pr.walkStmt(s.Init, st)
		}
		if st == nil {
			return nil
		}
		pr.scanExpr(st, s.Tag)
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = pr.walkStmt(s.Init, st)
		}
		if st == nil {
			return nil
		}
		body = s.Body
	}
	var out map[types.Object]pstate
	for _, cc := range body.List {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		for _, e := range clause.List {
			pr.scanExpr(st, e)
		}
		out = merge(out, pr.walkStmts(clause.Body, clone(st)))
	}
	if !hasDefault {
		out = merge(out, st)
	}
	if out == nil {
		return st
	}
	return out
}
