package analyzers_test

import (
	"path/filepath"
	"testing"

	"ioctopus/internal/lint/analyzers"
	"ioctopus/internal/lint/linttest"
)

func fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata"}, parts...)...)
}

func TestSimDeterminism(t *testing.T) {
	linttest.Run(t, fixture("simdeterminism", "a"), "fixture/simdeterminism", analyzers.SimDeterminism)
}

// TestSimDeterminismRNGHome loads the fixture under the import path of
// the seeded-RNG home package, where the math/rand import (and its
// seeded constructors — but not the global functions) are allowed.
func TestSimDeterminismRNGHome(t *testing.T) {
	linttest.Run(t, fixture("simdeterminism", "sim"), "ioctopus/internal/sim", analyzers.SimDeterminism)
}

func TestCrossShard(t *testing.T) {
	linttest.Run(t, fixture("crossshard", "a"), "fixture/crossshard", analyzers.CrossShard)
}

func TestPoolRecycle(t *testing.T) {
	linttest.Run(t, fixture("poolrecycle", "a"), "fixture/poolrecycle", analyzers.PoolRecycle)
}

func TestMetricNames(t *testing.T) {
	linttest.Run(t, fixture("metricnames", "a"), "fixture/metricnames", analyzers.MetricNames)
}

func TestShadow(t *testing.T) {
	linttest.Run(t, fixture("shadow", "a"), "fixture/shadow", analyzers.Shadow)
}

func TestUnusedWrite(t *testing.T) {
	linttest.Run(t, fixture("unusedwrite", "a"), "fixture/unusedwrite", analyzers.UnusedWrite)
}

// TestDirectives exercises the //octolint:allow escape hatch end to
// end: justified directives suppress, and unjustified, ruleless,
// unknown-rule, and stale directives are themselves findings.
func TestDirectives(t *testing.T) {
	linttest.Run(t, fixture("directive", "a"), "fixture/directive", analyzers.SimDeterminism)
}
