// Package analyzers holds the octolint rules: repo-specific static
// checks that enforce, at compile time, the invariants the simulator
// otherwise defends with runtime panics and double-run byte-identity
// gates (scripts/check.sh). Each analyzer's Doc names the runtime
// failure it front-runs; DESIGN.md §"Statically enforced invariants"
// is the prose version.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ioctopus/internal/lint"
)

// All returns every analyzer in the suite, in reporting order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		SimDeterminism,
		CrossShard,
		PoolRecycle,
		MetricNames,
		Shadow,
		UnusedWrite,
	}
}

// Marker comments: structural facts the analyzers need that the type
// system cannot express are declared next to the code they describe.
const (
	// markerBoundary tags a struct field (or package var) holding a
	// reference that crosses a shard boundary — e.g. a peer socket, or
	// a pipe's remote engine. Engines reached through a marked hop are
	// foreign: scheduling on them must use Post/PostAfter.
	markerBoundary = "octolint:crossshard-boundary"
	// markerShardShared tags a field or package var that is read and
	// written by concurrent shard goroutines. Its type must be atomic
	// (sync/atomic) or mutex-guarded, and plain-typed marked fields may
	// only be touched through sync/atomic calls.
	markerShardShared = "octolint:shard-shared"
)

// fieldComment returns the comment text attached to a struct field or
// value spec: the doc comment plus any trailing line comment.
func fieldComment(doc, line *ast.CommentGroup) string {
	var sb strings.Builder
	if doc != nil {
		sb.WriteString(doc.Text())
	}
	if line != nil {
		sb.WriteString(line.Text())
	}
	return sb.String()
}

// hasMarker reports whether the comment text declares the marker: it
// must start a line, so prose that merely mentions a marker string (an
// analyzer's own doc, say) does not mark anything.
func hasMarker(text, marker string) bool {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), marker) {
			return true
		}
	}
	return false
}

// markedObjects collects the objects of struct fields and package-level
// vars whose comments contain the marker string.
func markedObjects(pass *lint.Pass, marker string) map[types.Object]bool {
	marked := map[types.Object]bool{}
	add := func(names []*ast.Ident) {
		for _, name := range names {
			if obj := pass.Info.Defs[name]; obj != nil {
				marked[obj] = true
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, fld := range n.Fields.List {
					if hasMarker(fieldComment(fld.Doc, fld.Comment), marker) {
						add(fld.Names)
					}
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					text := fieldComment(vs.Doc, vs.Comment) + fieldComment(n.Doc, nil)
					if hasMarker(text, marker) {
						add(vs.Names)
					}
				}
			}
			return true
		})
	}
	return marked
}

// forEachFunc invokes fn for every function and method body in the
// package (declared functions only; function literals are reached by
// the analyses that need them from within their enclosing function).
func forEachFunc(pass *lint.Pass, fn func(decl *ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// mentions reports whether any identifier inside n refers to obj.
func mentions(pass *lint.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}
