package analyzers

import (
	"go/ast"
	"go/types"

	"ioctopus/internal/lint"
)

// CrossShard enforces the sharded engine's scheduling discipline. The
// conservative parallel engine (internal/sim/shard.go) is only correct
// if events cross shard boundaries through mailboxes: Engine.Post /
// PostAfter carry the sender's (at, sub, seq) key and respect link
// floors, while a direct At/After/Go on another shard's engine mutates
// its heap from the wrong goroutine — a race the runtime only catches
// when the "cross-shard post arrived in the past" panic happens to
// fire. Statically:
//
//   - fields and vars that hold references across the shard cut (a peer
//     socket, a pipe's remote engine) are marked with an
//     "octolint:crossshard-boundary" comment; any *sim.Engine reached
//     through a marked hop — directly or via a local variable — is
//     foreign, and scheduling on it (At, After, Go) is an error;
//   - fields marked "octolint:shard-shared" must be atomic
//     (sync/atomic) or mutex-guarded types; plain-typed marked fields
//     may only be accessed as arguments to sync/atomic calls.
var CrossShard = &lint.Analyzer{
	Name: "crossshard",
	Doc:  "cross-shard scheduling must use Post/PostAfter mailboxes; shard-shared fields must be atomic",
	Run:  runCrossShard,
}

const simPkg = "ioctopus/internal/sim"

// schedulingMethods mutate the receiving engine's heap and therefore
// must only ever run on the engine's own shard goroutine.
var schedulingMethods = map[string]bool{"At": true, "After": true, "Go": true}

func runCrossShard(pass *lint.Pass) error {
	boundary := markedObjects(pass, markerBoundary)
	shared := markedObjects(pass, markerShardShared)
	forEachFunc(pass, func(fd *ast.FuncDecl) {
		checkForeignScheduling(pass, fd.Body, boundary)
	})
	checkSharedFields(pass, shared)
	return nil
}

// isEngine reports whether t is *sim.Engine (or sim.Engine).
func isEngine(t types.Type) bool { return lint.IsNamedType(t, simPkg, "Engine") }

// checkForeignScheduling flags At/After/Go calls on engines reached
// through a boundary hop. Taint flows through local assignments in
// source order: `peng := p.stack.Engine()` with p marked taints peng.
func checkForeignScheduling(pass *lint.Pass, body *ast.BlockStmt, boundary map[types.Object]bool) {
	if len(boundary) == 0 {
		return
	}
	tainted := map[types.Object]bool{}
	crossesBoundary := func(expr ast.Expr) bool {
		found := false
		ast.Inspect(expr, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.Info.Selections[n]; ok && boundary[sel.Obj()] {
					found = true
					return false
				}
			case *ast.Ident:
				if obj := pass.Info.Uses[n]; obj != nil && (boundary[obj] || tainted[obj]) {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Propagate taint into locals bound from boundary-crossing
			// expressions (handles both := and =; one RHS per LHS or a
			// single multi-value RHS tainting every LHS).
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := objectOf(pass, id)
				if obj == nil {
					continue
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if crossesBoundary(rhs) {
					tainted[obj] = true
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || !schedulingMethods[sel.Sel.Name] {
				return true
			}
			obj := lint.CalleeObject(pass.Info, n)
			if !lint.MethodOn(obj, simPkg, "Engine", sel.Sel.Name) {
				return true
			}
			if crossesBoundary(sel.X) {
				pass.Reportf(n.Pos(), "%s on an engine reached through a crossshard-boundary reference mutates another shard's heap; use Post/PostAfter", sel.Sel.Name)
			}
		}
		return true
	})
}

// checkSharedFields validates octolint:shard-shared declarations: the
// type must be atomic or mutex-guarded; if it is a plain type, every
// access must go through sync/atomic.
func checkSharedFields(pass *lint.Pass, shared map[types.Object]bool) {
	if len(shared) == 0 {
		return
	}
	plain := map[types.Object]bool{}
	//octolint:allow simdeterminism pure predicate filtering a set into a set; no order can escape
	for obj := range shared {
		if !concurrencySafeType(obj.Type(), 2) {
			plain[obj] = true
		}
	}
	if len(plain) == 0 {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Accesses inside atomic.XxxInt64(&x.f, ...) calls are the
			// sanctioned pattern for plain shard-shared fields.
			if call, ok := n.(*ast.CallExpr); ok {
				if fn, ok := lint.CalleeObject(pass.Info, call).(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
					return false
				}
			}
			// A selector access resolves through Uses on its Sel ident,
			// so one Ident case covers both n.misses and bare vars.
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && plain[obj] {
					pass.Reportf(id.Pos(), "shard-shared %s has a non-atomic type and is accessed outside sync/atomic; make it atomic.%s-typed or wrap the access", id.Name, suggestAtomic(obj.Type()))
				}
			}
			return true
		})
	}
}

// concurrencySafeType reports whether t is safe to share between shard
// goroutines by construction: a sync/atomic type, a sync mutex, or a
// named struct composed of such (the mailbox/atomicTime pattern — a
// struct with a mutex guards its plain fields).
func concurrencySafeType(t types.Type, depth int) bool {
	if depth < 0 {
		return false
	}
	// A pointer to a safe type is shareable; the pointee synchronizes.
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync/atomic":
				return true
			case "sync":
				return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
			}
		}
		t = named.Underlying()
	}
	st, ok := t.(*types.Struct)
	if !ok {
		return false
	}
	allSafe := st.NumFields() > 0
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if lint.IsNamedType(ft, "sync", "Mutex") || lint.IsNamedType(ft, "sync", "RWMutex") {
			return true // a mutex inside the struct guards its siblings
		}
		if !concurrencySafeType(ft, depth-1) {
			allSafe = false
		}
	}
	return allSafe
}

// suggestAtomic names the atomic wrapper matching the field's type, for
// the diagnostic text.
func suggestAtomic(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32, types.Uint32:
			return "Int32"
		case types.Bool:
			return "Bool"
		case types.Uint64:
			return "Uint64"
		}
	}
	return "Int64"
}
