package analyzers

import (
	"go/ast"
	"go/types"

	"ioctopus/internal/lint"
)

// Shadow is a reduced-scope port of x/tools' vet "shadow" analyzer
// (which this module deliberately does not depend on): it reports an
// inner declaration of a name that shadows an outer variable of the
// same function when the outer variable is still used after the inner
// scope ends — the pattern where a write to the inner variable was
// probably meant for the outer one. Idiomatic reuse of err/ok and
// blank identifiers is exempt, as are shadows of package-level names.
var Shadow = &lint.Analyzer{
	Name: "shadow",
	Doc:  "report shadowed variables whose outer binding is used after the inner scope ends",
	Run:  runShadow,
}

// shadowExempt names whose redeclaration is idiomatic, never a lurking
// bug worth the noise.
var shadowExempt = map[string]bool{"err": true, "ok": true, "_": true}

func runShadow(pass *lint.Pass) error {
	// Collect the use positions of every local variable up front.
	uses := map[types.Object][]ast.Node{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj, ok := pass.Info.Uses[id].(*types.Var); ok {
					uses[obj] = append(uses[obj], id)
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || shadowExempt[id.Name] {
				return true
			}
			inner, ok := pass.Info.Defs[id].(*types.Var)
			if !ok || inner.IsField() {
				return true
			}
			scope := inner.Parent()
			if scope == nil || scope.Parent() == nil {
				return true
			}
			// The object the name would have bound to without this
			// declaration.
			_, outerObj := scope.Parent().LookupParent(id.Name, id.Pos())
			outer, ok := outerObj.(*types.Var)
			if !ok || outer.IsField() || outer.Pkg() == nil {
				return true
			}
			// Only same-function shadows: the outer variable must be
			// function-scoped, not package-level.
			if outer.Parent() == nil || outer.Parent() == pass.Pkg.Scope() || outer.Parent().Parent() == types.Universe {
				return true
			}
			// Risky only if the outer binding is read again after the
			// inner scope closes.
			for _, use := range uses[outer] {
				if use.Pos() > scope.End() {
					pass.Reportf(id.Pos(), "declaration of %q shadows declaration at %s; the outer %q is used again after this scope",
						id.Name, pass.Fset.Position(outer.Pos()), id.Name)
					break
				}
			}
			return true
		})
	}
	return nil
}
