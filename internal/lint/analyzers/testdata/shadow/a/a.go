// Fixture for the shadow analyzer.
package fixture

func riskyShadow(xs []int) int {
	total := 0
	for _, x := range xs {
		if x > 0 {
			total := x * 2 // want `declaration of "total" shadows declaration`
			_ = total
		}
	}
	return total // the outer total is read here, after the inner scope
}

func harmlessShadow(xs []int) int {
	v := len(xs)
	out := v
	{
		v := out * 2 // outer v is never read again: no finding
		out += v
	}
	return out
}

func errReuseOK() error {
	err := step()
	if err != nil {
		return err
	}
	if err := step(); err != nil { // err is exempt by convention
		return err
	}
	return nil
}

func step() error { return nil }
