// Fixture for the poolrecycle analyzer: lease lifecycle over
// nic.TxPacket / nic.RxPacket / eth.Frame.
package fixture

import (
	"ioctopus/internal/eth"
	"ioctopus/internal/nic"
)

func doubleRecycle(n *nic.NIC) {
	p := n.LeaseTxPacket()
	p.Recycle()
	p.Recycle() // want `lease "p" recycled twice`
}

func useAfterRecycle(n *nic.NIC) {
	p := n.LeaseTxPacket()
	p.Recycle()
	_ = p.Generation() // want `lease "p" used after Recycle`
}

func maybeUseAfterRecycle(n *nic.NIC, early bool) {
	p := n.LeaseTxPacket()
	if early {
		p.Recycle()
	}
	_ = p.Generation() // want `lease "p" may be used after Recycle`
}

func leak(n *nic.NIC) {
	p := n.LeaseTxPacket() // want `lease "p" escapes without Recycle or an ownership transfer`
	_ = p.Generation()
}

func overwriteWhileLive(n *nic.NIC) {
	p := n.LeaseTxPacket()
	p = n.LeaseTxPacket() // want `lease "p" overwritten while still live`
	p.Recycle()
}

func deferredRecycle(n *nic.NIC) {
	p := n.LeaseTxPacket()
	defer p.Recycle()
	_ = p.Generation()
}

func transferToCallee(n *nic.NIC) {
	p := n.LeaseTxPacket()
	enqueue(p) // ownership moves with the argument
}

func transferByReturn(n *nic.NIC) *nic.TxPacket {
	p := n.LeaseTxPacket()
	return p
}

func branchesSettled(n *nic.NIC, send bool) {
	p := n.LeaseTxPacket()
	if send {
		enqueue(p)
	} else {
		p.Recycle()
	}
}

func pollLeak(q *nic.RxQueue) {
	for _, p := range q.Poll(32) { // want `per-iteration lease "p" is not recycled or transferred`
		_ = p.Generation()
	}
}

func pollRecycled(q *nic.RxQueue) {
	for _, p := range q.Poll(32) {
		_ = p.Generation()
		p.Recycle()
	}
}

func reapTransferred(q *nic.TxQueue) {
	for _, p := range q.Reap(32) {
		enqueue(p)
	}
}

func frameDoubleRelease(fp *eth.FramePool) {
	f := fp.Get()
	f.Release()
	f.Release() // want `lease "f" recycled twice`
}

func frameReleased(fp *eth.FramePool) {
	f := fp.Get()
	f.Release()
}

func enqueue(*nic.TxPacket) {}
