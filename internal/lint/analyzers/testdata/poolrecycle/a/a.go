// Fixture for the poolrecycle analyzer: lease lifecycle over
// nic.TxPacket / nic.RxPacket / eth.Frame.
package fixture

import (
	"ioctopus/internal/eth"
	"ioctopus/internal/nic"
)

func doubleRecycle(n *nic.NIC) {
	p := n.LeaseTxPacket()
	p.Recycle()
	p.Recycle() // want `lease "p" recycled twice`
}

func useAfterRecycle(n *nic.NIC) {
	p := n.LeaseTxPacket()
	p.Recycle()
	_ = p.Generation() // want `lease "p" used after Recycle`
}

func maybeUseAfterRecycle(n *nic.NIC, early bool) {
	p := n.LeaseTxPacket()
	if early {
		p.Recycle()
	}
	_ = p.Generation() // want `lease "p" may be used after Recycle`
}

func leak(n *nic.NIC) {
	p := n.LeaseTxPacket() // want `lease "p" escapes without Recycle or an ownership transfer`
	_ = p.Generation()
}

func overwriteWhileLive(n *nic.NIC) {
	p := n.LeaseTxPacket()
	p = n.LeaseTxPacket() // want `lease "p" overwritten while still live`
	p.Recycle()
}

func deferredRecycle(n *nic.NIC) {
	p := n.LeaseTxPacket()
	defer p.Recycle()
	_ = p.Generation()
}

func transferToCallee(n *nic.NIC) {
	p := n.LeaseTxPacket()
	enqueue(p) // ownership moves with the argument
}

func transferByReturn(n *nic.NIC) *nic.TxPacket {
	p := n.LeaseTxPacket()
	return p
}

func branchesSettled(n *nic.NIC, send bool) {
	p := n.LeaseTxPacket()
	if send {
		enqueue(p)
	} else {
		p.Recycle()
	}
}

func pollLeak(q *nic.RxQueue) {
	for _, p := range q.Poll(32) { // want `per-iteration lease "p" is not recycled or transferred`
		_ = p.Generation()
	}
}

func pollRecycled(q *nic.RxQueue) {
	for _, p := range q.Poll(32) {
		_ = p.Generation()
		p.Recycle()
	}
}

func reapTransferred(q *nic.TxQueue) {
	for _, p := range q.Reap(32) {
		enqueue(p)
	}
}

// The PMD burst shapes: a batch view into the queue's reused backing
// array is drained in one loop, and every element's lease must end
// inside it — recycled, or transferred to the burst-delivery path.

func burstRecycledInLoop(q *nic.RxQueue) {
	var pkts int
	for _, p := range q.Poll(32) {
		pkts += p.Packets
		p.Recycle()
	}
	_ = pkts
}

func burstBatchTransferred(q *nic.RxQueue, deliver func([]*nic.RxPacket)) {
	// Assigned-batch form: ownership of every element moves with the
	// slice into the delivery function.
	batch := q.Poll(32)
	deliver(batch)
}

func burstConditionalRepost(q *nic.TxQueue, repost func(*nic.TxPacket) bool) {
	for _, p := range q.Reap(32) {
		if p.Dropped && repost(p) {
			continue // reposted: ownership moved with the call
		}
		p.Recycle()
	}
}

func burstLeakOnContinue(q *nic.TxQueue) {
	for _, p := range q.Reap(32) { // want `per-iteration lease "p" is not recycled or transferred`
		if p.Dropped {
			continue // dropped packets leak out of the loop un-recycled
		}
		p.Recycle()
	}
}

func frameDoubleRelease(fp *eth.FramePool) {
	f := fp.Get()
	f.Release()
	f.Release() // want `lease "f" recycled twice`
}

func frameReleased(fp *eth.FramePool) {
	f := fp.Get()
	f.Release()
}

func enqueue(*nic.TxPacket) {}
