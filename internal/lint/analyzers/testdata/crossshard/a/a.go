// Fixture for the crossshard analyzer: scheduling through marked
// boundary references, and shard-shared field discipline.
package fixture

import (
	"sync/atomic"
	"time"

	"ioctopus/internal/sim"
)

type node struct {
	eng *sim.Engine
	// peer lives on another shard's engine.
	// octolint:crossshard-boundary
	peer *node

	// octolint:crossshard-boundary
	remote *sim.Engine

	// hits is bumped by every shard.
	// octolint:shard-shared
	hits atomic.Uint64

	misses uint64 // octolint:shard-shared

	// The marker must start a comment line: prose that merely mentions
	// "octolint:shard-shared" mid-sentence marks nothing.
	prose int
}

func (n *node) direct() {
	n.remote.At(5, func() {}) // want `At on an engine reached through a crossshard-boundary reference`
}

func (n *node) viaPeer() {
	n.peer.eng.After(time.Millisecond, func() {}) // want `After on an engine reached through a crossshard-boundary reference`
}

func (n *node) viaLocal() {
	e := n.peer.eng
	e.Go("proc", func(p *sim.Proc) {}) // want `Go on an engine reached through a crossshard-boundary reference`
}

func (n *node) ownEngine() {
	n.eng.At(5, func() {}) // the component's own engine: fine
	n.eng.After(time.Millisecond, func() {})
}

func (n *node) mailbox() {
	n.eng.Post(n.remote, 5, func() {}) // Post/PostAfter are the sanctioned cross-shard path
	n.eng.PostAfter(n.remote, time.Millisecond, func() {})
}

func (n *node) counters() {
	n.hits.Add(1)                  // atomic-typed shard-shared field: fine
	n.misses++                     // want `shard-shared misses has a non-atomic type`
	atomic.AddUint64(&n.misses, 1) // plain field inside a sync/atomic call: fine
}
