// Fixture for directive hygiene: the //octolint:allow escape hatch is
// an audit record, so malformed, unjustified, unknown-rule, and stale
// directives are all findings (reserved rule "directive") — run here
// against the simdeterminism analyzer.
package fixture

import "time"

func justified() time.Time {
	//octolint:allow simdeterminism run banner reports real start time, never simulated
	return time.Now()
}

func trailingDirective() time.Time {
	return time.Now() //octolint:allow simdeterminism wall clock feeds the log prefix only
}

func unjustified() time.Time {
	//octolint:allow simdeterminism // want `octolint:allow simdeterminism has no justification`
	return time.Now() // want `wall-clock time.Now`
}

func ruleless() time.Time {
	//octolint:allow // want `octolint:allow directive names no rule`
	return time.Now() // want `wall-clock time.Now`
}

func unknownRule() time.Time {
	//octolint:allow nosuchrule the rule name has a typo // want `octolint:allow names unknown rule nosuchrule`
	return time.Now() // want `wall-clock time.Now`
}

func stale() {
	//octolint:allow simdeterminism there is nothing here to suppress // want `octolint:allow simdeterminism suppresses nothing`
	return
}
