// Fixture for the simdeterminism analyzer: wall-clock reads, global
// math/rand, and order-leaking map iteration.
package fixture

import (
	"math/rand" // want `import of math/rand outside ioctopus/internal/sim`
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `wall-clock time.Now breaks seeded reproducibility`
	return time.Since(start) // want `wall-clock time.Since breaks seeded reproducibility`
}

func allowedWallClock() time.Time {
	//octolint:allow simdeterminism reported wall-clock for the run banner, never simulated
	return time.Now()
}

func globalRand() int {
	return rand.Intn(4) // want `global math/rand.Intn draws from process-wide state`
}

func seededOK(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors are fine; the import was the finding
}

func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative accumulation: order cannot leak
		total += v
	}
	return total
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collected, then sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func helperSortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // a local sort helper counts as sorting
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(ks []string) { sort.Strings(ks) }

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `collects into "keys" in nondeterministic order and "keys" is never sorted afterwards`
		keys = append(keys, k)
	}
	return keys
}

func orderLeaks(m map[string]int) {
	for k, v := range m { // want `map iteration order is nondeterministic and this loop body does more than order-insensitive accumulation`
		emit(k, v)
	}
}

func lastWins(m map[string]int) string {
	winner := ""
	for k := range m { // want `more than order-insensitive accumulation`
		winner = k
	}
	return winner
}

func keyedRewrite(src, dst map[string]int) {
	for k, v := range src { // keyed inserts and deletes are per-key, order-insensitive
		dst[k] = v + 1
		delete(src, k)
	}
}

func emit(string, int) {}
