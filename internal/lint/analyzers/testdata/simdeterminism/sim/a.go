// Fixture loaded under the import path ioctopus/internal/sim, the one
// package allowed to import math/rand — but only its explicitly seeded
// constructors; the global functions stay forbidden even here.
package fixture

import "math/rand"

func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func zipf(r *rand.Rand) *rand.Zipf {
	return rand.NewZipf(r, 1.1, 1, 1<<20)
}

func global() int {
	return rand.Intn(4) // want `global math/rand.Intn draws from process-wide state`
}
