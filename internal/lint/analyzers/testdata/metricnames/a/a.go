// Fixture for the metricnames analyzer: registration sites on the
// internal/metrics registrar surface.
package fixture

import (
	"fmt"

	"ioctopus/internal/metrics"
)

func probe() float64 { return 0 }

const frames = "rx/frames"

func registrations(r *metrics.Registry, dyn string, pf int) {
	r.Counter("rx/frames", probe)
	r.Counter(frames, probe) // want `metric "rx/frames" registered twice on r`
	r.Gauge("rx/bytes_total", probe)
	r.Counter(dyn, probe)         // want `metric Counter name must be a constant string`
	r.Counter("Rx/Frames", probe) // want `metric name "Rx/Frames" must be lowercase`
	r.Counter("rx frames", probe) // want `metric name "rx frames" must be lowercase`

	r.Gauge(fmt.Sprintf("pf%d/util", pf), probe) // constant format: fine
	r.Gauge(fmt.Sprintf(dyn, pf), probe)         // want `metric Gauge name must be a constant string`
	r.Gauge(fmt.Sprintf("PF%d/util", pf), probe) // want `must be lowercase`

	s := r.Scope(fmt.Sprintf("core%d", pf))
	s.Counter("cycles", probe) // distinct registrar: not a duplicate of anything on r
	s.Counter("rx/frames", probe)
}

func scopesNotDuplicates(r *metrics.Registry) {
	a := r.Scope("pf0")
	b := r.Scope("pf0") // re-opening a scope is fine; only metric registration panics
	a.Counter("tx", probe)
	b.Gauge("rx", probe)
}
