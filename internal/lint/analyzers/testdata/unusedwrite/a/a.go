// Fixture for the unusedwrite analyzer.
package fixture

func deadStore(a, b int) int {
	x := 0
	_ = x
	x = a // want `value written to "x" is overwritten below before ever being read`
	x = b
	return x
}

func finalWriteNeverRead(a int) int {
	x := a
	y := x + 1
	x = y // want `value written to "x" is never read`
	return y
}

func interleavedReadsOK(a, b int) int {
	x := a
	x = x + b // reads the previous write: fine (and self-referencing writes are skipped)
	y := x
	x = a // want `value written to "x" is never read`
	return y
}

func loopCarriedOK(xs []int) int {
	s := 0
	for _, v := range xs {
		s = s + v // loop bodies run more than once: never reported
	}
	return s
}

func capturedOK() func() int {
	x := 1
	f := func() int { return x }
	x = 2 // visible through the closure: never reported
	return f
}

func addressTakenOK(a int) int {
	x := a
	p := &x
	x = a + 1 // visible through p: never reported
	return *p
}
