package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ioctopus/internal/lint"
)

// SimDeterminism enforces the repo's reproducibility contract: a run is
// a pure function of its seed. It front-runs the double-run `cmp` gates
// in scripts/check.sh by rejecting, at compile time,
//
//   - wall-clock reads (time.Now/Since/Until) — the engine clock
//     (sim.Engine.Now) is the only time source;
//   - global math/rand state — components must draw from the run's
//     seeded sim.RNG (internal/sim/rng.go, the one allowed importer);
//   - map iteration whose order can leak into observable output: a
//     `range` over a map is accepted only when its body is limited to
//     order-insensitive accumulation (commutative numeric updates,
//     keyed inserts, deletes) or collects into a slice that is sorted
//     before use.
var SimDeterminism = &lint.Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock time, global math/rand, and order-leaking map iteration in model code",
	Run:  runSimDeterminism,
}

// randImportAllowed is the one file set allowed to import math/rand:
// the seeded RNG wrapper every component draws from.
const randImportAllowed = "ioctopus/internal/sim"

func runSimDeterminism(pass *lint.Pass) error {
	checkRandImport(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkForbiddenCall(pass, call)
			}
			return true
		})
	}
	forEachFunc(pass, func(fd *ast.FuncDecl) {
		checkMapRanges(pass, fd.Body)
	})
	return nil
}

// checkRandImport flags math/rand imports outside the seeded-RNG home
// package. Everything else must take randomness from sim.RNG, which is
// derived from the run seed.
func checkRandImport(pass *lint.Pass) {
	if pass.Pkg.Path() == randImportAllowed {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "import of %s outside %s: draw randomness from the run's seeded sim.RNG", strings.Trim(imp.Path.Value, `"`), randImportAllowed)
			}
		}
	}
}

// randConstructors are the only package-level math/rand functions the
// RNG wrapper itself may call: explicitly seeded constructors.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func checkForbiddenCall(pass *lint.Pass, call *ast.CallExpr) {
	obj := lint.CalleeObject(pass.Info, call)
	if obj == nil {
		return
	}
	for _, name := range []string{"Now", "Since", "Until"} {
		if lint.IsPkgFunc(obj, "time", name) {
			pass.Reportf(call.Pos(), "wall-clock time.%s breaks seeded reproducibility; derive timestamps from the engine clock (sim.Engine.Now)", name)
			return
		}
	}
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !randConstructors[fn.Name()] {
				pass.Reportf(call.Pos(), "global math/rand.%s draws from process-wide state; use the run's seeded sim.RNG", fn.Name())
			}
		}
	}
}

// checkMapRanges inspects every `range` over a map value inside body.
func checkMapRanges(pass *lint.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		var collectors []types.Object
		if !accumulationOnly(pass, rs.Body, rs, &collectors) {
			pass.Reportf(rs.Pos(), "map iteration order is nondeterministic and this loop body does more than order-insensitive accumulation; iterate sorted keys instead")
			return true
		}
		for _, c := range collectors {
			if !sortedAfter(pass, body, rs, c) {
				pass.Reportf(rs.Pos(), "map iteration collects into %q in nondeterministic order and %q is never sorted afterwards; sort it before use", c.Name(), c.Name())
			}
		}
		return true
	})
	// Note: nested function literals are traversed by the same Inspect.
}

// accumulationOnly reports whether every statement in the loop body is
// an order-insensitive form. Slice collectors (`s = append(s, ...)`)
// are legal only if sorted after the loop; they are returned for the
// caller to verify.
func accumulationOnly(pass *lint.Pass, body *ast.BlockStmt, rs *ast.RangeStmt, collectors *[]types.Object) bool {
	var stmtOK func(s ast.Stmt) bool
	stmtOK = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.IncDecStmt:
			return true
		case *ast.BranchStmt:
			return s.Tok == token.CONTINUE
		case *ast.BlockStmt:
			for _, c := range s.List {
				if !stmtOK(c) {
					return false
				}
			}
			return true
		case *ast.IfStmt:
			if s.Init != nil && !stmtOK(s.Init) {
				return false
			}
			if hasCall(pass, s.Cond) {
				return false
			}
			if !stmtOK(s.Body) {
				return false
			}
			return s.Else == nil || stmtOK(s.Else)
		case *ast.ExprStmt:
			// delete(m, k) is keyed (order-insensitive) removal.
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
						return true
					}
				}
			}
			return false
		case *ast.AssignStmt:
			return assignOK(pass, s, body, collectors)
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return false
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						if hasCall(pass, v) {
							return false
						}
					}
				}
			}
			return true
		}
		return false
	}
	for _, s := range body.List {
		if !stmtOK(s) {
			return false
		}
	}
	return true
}

// commutativeOps are compound assignments whose final value does not
// depend on iteration order (over distinct map keys).
var commutativeOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.OR_ASSIGN: true, token.AND_ASSIGN: true, token.XOR_ASSIGN: true,
}

func assignOK(pass *lint.Pass, s *ast.AssignStmt, loopBody *ast.BlockStmt, collectors *[]types.Object) bool {
	if commutativeOps[s.Tok] {
		for _, r := range s.Rhs {
			if hasCall(pass, r) {
				return false
			}
		}
		return true
	}
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		return false
	}
	// s = append(s, ...): a collector, legal if sorted later.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
					if lid, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok {
						if aid, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && aid.Name == lid.Name {
							if obj := objectOf(pass, lid); obj != nil {
								*collectors = append(*collectors, obj)
								return true
							}
						}
					}
				}
			}
		}
	}
	for _, r := range s.Rhs {
		if hasCall(pass, r) {
			return false
		}
	}
	for _, l := range s.Lhs {
		switch l := ast.Unparen(l).(type) {
		case *ast.IndexExpr:
			// m[k] = v: keyed insert, order-insensitive per key.
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			// Writing a variable that outlives the loop makes the final
			// value "last iteration wins" — order-dependent. Temporaries
			// declared inside the loop are fine.
			obj := objectOf(pass, l)
			if obj == nil || obj.Pos() < loopBody.Pos() || obj.Pos() > loopBody.End() {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// objectOf resolves an identifier to its object (definition or use).
func objectOf(pass *lint.Pass, id *ast.Ident) types.Object {
	if o := pass.Info.Defs[id]; o != nil {
		return o
	}
	return pass.Info.Uses[id]
}

// hasCall reports whether expr contains any function call other than
// len or cap (which are pure and cannot observe iteration order).
func hasCall(pass *lint.Pass, expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "min", "max":
					return true
				}
			}
		}
		// A type conversion is not a call.
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		found = true
		return false
	})
	return found
}

// sortedAfter reports whether, somewhere after the range statement in
// the enclosing function body, the collector is passed to a sort: a
// sort.* / slices.* call, or a local helper whose name says it sorts
// (the repo's sortTuples idiom). Position-based: any later mention
// inside a sorting call qualifies.
func sortedAfter(pass *lint.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, collector types.Object) bool {
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		obj := lint.CalleeObject(pass.Info, call)
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" && !strings.Contains(strings.ToLower(fn.Name()), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if mentions(pass, arg, collector) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
