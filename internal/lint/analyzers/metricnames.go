package analyzers

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"ioctopus/internal/lint"
)

// MetricNames validates metric registration sites
// (internal/metrics.Registrar: Counter, Gauge, Scope). Names become
// the '/'-namespaced keys of the JSON report schema, so they must be
// compile-time constants — either a constant string or fmt.Sprintf
// with a constant format — lowercase, and composed of [a-z0-9_]
// segments separated by '/'. Statically identical registrations on the
// same registrar within one function are reported as duplicates,
// front-running the registry's "duplicate metric" panic, which
// otherwise only fires for wirings a test happens to assemble.
var MetricNames = &lint.Analyzer{
	Name: "metricnames",
	Doc:  "metric names must be constant, lowercase, '/'-namespaced, and not duplicated",
	Run:  runMetricNames,
}

const metricsPkg = "ioctopus/internal/metrics"

// registrarMethods take a metric (or scope) name as their first
// argument.
var registrarMethods = map[string]bool{"Counter": true, "Gauge": true, "Scope": true}

// metricSegment is one '/'-separated component of a metric name after
// Sprintf verbs are substituted out.
var metricSegment = regexp.MustCompile(`^[a-z0-9_]+$`)

// sprintfVerb matches the printf verbs that may appear in dynamic
// scope names ("pf%d", "link%dto%d").
var sprintfVerb = regexp.MustCompile(`%[-+ #0]*[0-9*]*(\.[0-9*]+)?[a-zA-Z]`)

func runMetricNames(pass *lint.Pass) error {
	type regKey struct {
		recv string // receiver expression, printed
		name string
		kind string // Counter/Gauge vs Scope namespaces are disjoint
	}
	forEachFunc(pass, func(fd *ast.FuncDecl) {
		seen := map[regKey]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !registrarMethods[sel.Sel.Name] {
				return true
			}
			if !isRegistrarMethod(pass, call, sel.Sel.Name) {
				return true
			}
			arg := call.Args[0]
			name, constant := lint.ConstString(pass.Info, arg)
			if !constant {
				var viaSprintf bool
				name, viaSprintf = sprintfConstFormat(pass, arg)
				if !viaSprintf {
					pass.Reportf(arg.Pos(), "metric %s name must be a constant string (or fmt.Sprintf of one); dynamic names defeat static duplicate checking and stable report keys", sel.Sel.Name)
					return true
				}
				name = sprintfVerb.ReplaceAllString(name, "0")
			}
			if !validMetricName(name) {
				pass.Reportf(arg.Pos(), "metric name %q must be lowercase [a-z0-9_] segments separated by '/'", name)
				return true
			}
			kind := "metric"
			if sel.Sel.Name == "Scope" {
				kind = "scope"
			}
			key := regKey{recv: exprString(pass, sel.X), name: name, kind: kind}
			if kind == "metric" && seen[key] {
				pass.Reportf(arg.Pos(), "metric %q registered twice on %s in this function; the registry panics on duplicates", name, key.recv)
			}
			seen[key] = true
			return true
		})
	})
	return nil
}

// isRegistrarMethod reports whether the call resolves to a method of
// the internal/metrics registrar surface (the Registrar interface, the
// *Registry root, or its scope type).
func isRegistrarMethod(pass *lint.Pass, call *ast.CallExpr, name string) bool {
	obj := lint.CalleeObject(pass.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != metricsPkg {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// sprintfConstFormat matches fmt.Sprintf(constFormat, ...) and returns
// the format string.
func sprintfConstFormat(pass *lint.Pass, expr ast.Expr) (string, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	if !lint.IsPkgFunc(lint.CalleeObject(pass.Info, call), "fmt", "Sprintf") {
		return "", false
	}
	return lint.ConstString(pass.Info, call.Args[0])
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for _, seg := range strings.Split(name, "/") {
		if !metricSegment.MatchString(seg) {
			return false
		}
	}
	return true
}

// exprString renders a (short) expression for use in a diagnostic and
// as a duplicate-detection key.
func exprString(pass *lint.Pass, expr ast.Expr) string {
	start := pass.Fset.Position(expr.Pos())
	end := pass.Fset.Position(expr.End())
	if start.Filename != end.Filename || start.Line != end.Line {
		return "<registrar>"
	}
	var sb strings.Builder
	printExpr(&sb, expr)
	return sb.String()
}

// printExpr is a minimal expression printer covering the receiver
// shapes registrars take (identifiers, selector chains, calls).
func printExpr(sb *strings.Builder, expr ast.Expr) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		sb.WriteString(e.Name)
	case *ast.SelectorExpr:
		printExpr(sb, e.X)
		sb.WriteByte('.')
		sb.WriteString(e.Sel.Name)
	case *ast.CallExpr:
		printExpr(sb, e.Fun)
		sb.WriteString("(…)")
	default:
		sb.WriteString("<expr>")
	}
}
