package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"ioctopus/internal/lint"
)

// UnusedWrite is a reduced-scope port of x/tools' SSA-based
// "unusedwrite" analyzer: it reports assignments to local variables
// whose value is provably never read. Two patterns are covered,
// both without a CFG by restricting where they apply:
//
//   - a dead store: two consecutive plain writes to the same variable
//     in one block with no intervening statement mentioning it;
//   - a final write that no later expression in the function reads.
//
// Variables that are captured by closures, have their address taken,
// appear inside loops, or live in functions using goto are skipped —
// position order stops implying execution order there.
var UnusedWrite = &lint.Analyzer{
	Name: "unusedwrite",
	Doc:  "report writes to local variables that are never read",
	Run:  runUnusedWrite,
}

func runUnusedWrite(pass *lint.Pass) error {
	forEachFunc(pass, func(fd *ast.FuncDecl) {
		checkDeadStores(pass, fd.Body)
		checkFinalWrites(pass, fd)
	})
	return nil
}

// checkDeadStores flags back-to-back writes in the same block.
func checkDeadStores(pass *lint.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		lastWrite := map[types.Object]ast.Stmt{}
		for _, s := range block.List {
			w, obj := plainWrite(pass, s)
			if w != nil && obj != nil {
				if prev, ok := lastWrite[obj]; ok {
					pass.Reportf(prev.Pos(), "value written to %q is overwritten below before ever being read", obj.Name())
				}
				lastWrite[obj] = s
				continue
			}
			// Any other statement invalidates facts about the variables
			// it mentions; control-flow statements invalidate everything.
			switch s.(type) {
			case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
				*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt,
				*ast.BranchStmt, *ast.DeferStmt, *ast.GoStmt:
				lastWrite = map[types.Object]ast.Stmt{}
			default:
				//octolint:allow simdeterminism pure predicate driving keyed deletes; no order can escape
				for obj := range lastWrite {
					if mentions(pass, s, obj) {
						delete(lastWrite, obj)
					}
				}
			}
		}
		return true
	})
}

// plainWrite matches `x = expr` (single LHS, pure assignment, RHS free
// of calls that could panic or depend on x indirectly) and returns the
// written variable.
func plainWrite(pass *lint.Pass, s ast.Stmt) (ast.Stmt, types.Object) {
	as, ok := s.(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, nil
	}
	obj, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || obj.IsField() || isPackageLevel(pass, obj) {
		return nil, nil
	}
	if mentions(pass, as.Rhs[0], obj) || hasCall(pass, as.Rhs[0]) {
		return nil, nil
	}
	return s, obj
}

// checkFinalWrites flags the last write to a variable when nothing in
// the function reads the variable afterwards.
func checkFinalWrites(pass *lint.Pass, fd *ast.FuncDecl) {
	// Disqualify whole functions containing goto labels.
	disqualified := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			disqualified = true
		}
		return !disqualified
	})
	if disqualified {
		return
	}
	type varFacts struct {
		lastWrite  ast.Node
		lastRead   token.Pos
		skip       bool
		namedRet   bool
		writeCount int
	}
	facts := map[types.Object]*varFacts{}
	get := func(obj types.Object) *varFacts {
		f := facts[obj]
		if f == nil {
			f = &varFacts{}
			facts[obj] = f
		}
		return f
	}
	if fd.Type.Results != nil {
		for _, r := range fd.Type.Results.List {
			for _, name := range r.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					get(obj).namedRet = true
				}
			}
		}
	}
	var inLoopOrLit []ast.Node // stack of loop/funclit nodes
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			inLoopOrLit = append(inLoopOrLit, n)
			for _, c := range children(n) {
				walk(c)
			}
			inLoopOrLit = inLoopOrLit[:len(inLoopOrLit)-1]
			return
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj, ok := pass.Info.Uses[id].(*types.Var); ok {
						get(obj).skip = true
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
					if obj, ok := pass.Info.Uses[id].(*types.Var); ok && !obj.IsField() && !isPackageLevel(pass, obj) {
						f := get(obj)
						if len(inLoopOrLit) > 0 {
							f.skip = true
						}
						f.lastWrite = n
						f.writeCount++
						walk(n.Rhs[0])
						return
					}
				}
			}
			for _, c := range children(n) {
				walk(c)
			}
			return
		case *ast.Ident:
			if obj, ok := pass.Info.Uses[n].(*types.Var); ok {
				f := get(obj)
				if len(inLoopOrLit) > 0 {
					f.skip = true
				}
				if n.Pos() > f.lastRead {
					f.lastRead = n.Pos()
				}
			}
		}
		for _, c := range children(n) {
			walk(c)
		}
	}
	walk(fd.Body)
	//octolint:allow simdeterminism reports are sorted by position before output
	for obj, f := range facts {
		if f.skip || f.namedRet || f.lastWrite == nil || obj.Pkg() == nil {
			continue
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || isPackageLevel(pass, v) {
			continue
		}
		if f.lastRead < f.lastWrite.Pos() {
			pass.Reportf(f.lastWrite.Pos(), "value written to %q is never read", obj.Name())
		}
	}
}

// children returns a node's direct children, via ast.Inspect depth
// control.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

func isPackageLevel(pass *lint.Pass, obj types.Object) bool {
	return obj.Parent() == pass.Pkg.Scope() || (obj.Parent() != nil && obj.Parent().Parent() == types.Universe)
}
