// Package linttest drives analyzer fixtures, the stdlib analog of
// golang.org/x/tools/go/analysis/analysistest. A fixture is an
// ordinary Go package under a testdata directory (invisible to the go
// tool) whose lines carry "want" comments:
//
//	eng.At(5, fn) // want `use Post/PostAfter`
//
// Each backquoted or double-quoted string after "want" is a regexp that
// must match exactly one diagnostic reported on that line, rendered as
// "[rule] message" so expectations may pin the rule. Diagnostics with
// no matching expectation, and expectations with no matching
// diagnostic, both fail the test. Directive processing runs exactly as
// in cmd/octolint, so fixtures also cover the //octolint:allow escape
// hatch and its hygiene findings.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ioctopus/internal/lint"
)

// wantRe splits the expectation list out of a want comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// tokenRe matches one quoted expectation: a Go double-quoted string or
// a backquoted raw string.
var tokenRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads the fixture package rooted at dir as importPath, applies
// the analyzers, and checks every diagnostic against the fixture's
// want comments. importPath matters: some rules key on it (the
// simdeterminism math/rand exemption applies only inside
// ioctopus/internal/sim).
func Run(t *testing.T, dir, importPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	loader := lint.NewLoader()
	pkg, err := loader.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s holds no Go files", dir)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				toks := tokenRe.FindAllString(m[1], -1)
				if len(toks) == 0 {
					t.Errorf("%s:%d: want comment carries no quoted expectation", pos.Filename, pos.Line)
					continue
				}
				for _, tok := range toks {
					pat := strings.Trim(tok, "`")
					if strings.HasPrefix(tok, `"`) {
						var uerr error
						pat, uerr = strconv.Unquote(tok)
						if uerr != nil {
							t.Errorf("%s:%d: bad expectation %s: %v", pos.Filename, pos.Line, tok, uerr)
							continue
						}
					}
					re, rerr := regexp.Compile(pat)
					if rerr != nil {
						t.Errorf("%s:%d: bad expectation regexp %q: %v", pos.Filename, pos.Line, pat, rerr)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		rendered := fmt.Sprintf("[%s] %s", d.Rule, d.Message)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(rendered) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected a diagnostic matching %q; got none", w.file, w.line, w.re)
		}
	}
}
