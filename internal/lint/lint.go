// Package lint is a dependency-light static-analysis framework for this
// repository: the stdlib (go/parser + go/types) analog of
// golang.org/x/tools/go/analysis, which the module deliberately does not
// depend on. It exists to front-run, at compile time, the invariants the
// simulator otherwise enforces with runtime panics and double-run
// byte-identity gates: determinism (no wall clock, no global RNG, no
// ordering leaks out of map iteration), mailbox-only cross-shard
// scheduling, packet-pool lease discipline, and metric naming.
//
// An Analyzer inspects one type-checked package at a time through a
// Pass and reports Diagnostics. The Runner applies a set of analyzers
// to a set of packages, applies `//octolint:allow <rule> <reason>`
// suppression directives (see directives.go), and returns the surviving
// diagnostics in deterministic (file, line, column, rule) order.
// cmd/octolint is the multichecker front end; analyzers live in
// internal/lint/analyzers with fixture-based tests driven by
// internal/lint/linttest.
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named rule. Run inspects a single package via the
// Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name identifies the rule in output lines and allow directives
	// (lowercase, no spaces).
	Name string
	// Doc is a one-paragraph description: what the rule enforces and
	// which runtime failure it front-runs.
	Doc string
	// Run performs the analysis. An error aborts the whole run (loader
	// or internal failures only — findings are diagnostics, not errors).
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// sortDiagnostics orders diagnostics by (file, line, column, rule,
// message) so runs are deterministic and diffable.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// Run applies every analyzer to every package, filters the findings
// through the allow directives found in the packages' files, and
// returns the surviving diagnostics sorted. Directive problems
// (missing justification, suppressing nothing, naming an unknown rule)
// are themselves diagnostics under the reserved rule name "directive".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ds := applyDirectives(pkgs, raw, known)
	sortDiagnostics(ds)
	return ds, nil
}

// --- shared type/AST helpers used by the analyzers ---

// IsNamedType reports whether t (after unwrapping pointers and aliases)
// is the named type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// CalleeObject resolves the function or method object a call invokes,
// or nil for indirect calls, builtins, and type conversions.
func CalleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call
	}
	return nil
}

// IsPkgFunc reports whether obj is the package-level function
// pkgPath.name.
func IsPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// MethodOn reports whether obj is a method named name whose receiver
// (after unwrapping the pointer) is pkgPath.typeName.
func MethodOn(obj types.Object, pkgPath, typeName, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return IsNamedType(sig.Recv().Type(), pkgPath, typeName)
}

// ConstString returns the compile-time string value of expr, if it has
// one (a literal, a named constant, or constant concatenation).
func ConstString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
