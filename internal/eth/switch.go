package eth

import (
	"fmt"
	"time"

	"ioctopus/internal/sim"
)

// Switch is a learning Ethernet switch: frames are forwarded to the
// port that last sourced the destination MAC, flooded otherwise. It
// supports static link-aggregation groups (EtherChannel / 802.3ad) whose
// member selection hashes the flow 5-tuple — the §2.5 bonding baseline,
// which deliberately gives the server no way to steer a flow to a
// particular member link.
type Switch struct {
	eng     *sim.Engine
	name    string
	latency time.Duration
	ports   []*switchPort
	fdb     map[MAC]int // MAC -> port index (or LAG id via lagOf)
	lags    map[int][]int
	lagOf   map[int]int // member port -> LAG id
	flooded uint64
}

type switchPort struct {
	sw   *Switch
	idx  int
	wire *Wire
}

// Receive ingests a frame arriving at this switch port.
func (p *switchPort) Receive(f *Frame) { p.sw.forward(p.idx, f) }

// PortMAC returns a per-port switch address (not used for forwarding).
func (p *switchPort) PortMAC() MAC { return MACFromInt(uint64(0x5157)<<16 | uint64(p.idx)) }

// Engine places all of a switch's ports on the switch's engine.
func (p *switchPort) Engine() *sim.Engine { return p.sw.eng }

// NewSwitch builds a switch with the given forwarding latency.
func NewSwitch(e *sim.Engine, name string, latency time.Duration) *Switch {
	return &Switch{
		eng:     e,
		name:    name,
		latency: latency,
		fdb:     make(map[MAC]int),
		lags:    make(map[int][]int),
		lagOf:   make(map[int]int),
	}
}

// Connect cables a device port to the switch with the given wire config
// and returns the switch port index.
func (s *Switch) Connect(cfg WireConfig, dev Port) int {
	p := &switchPort{sw: s, idx: len(s.ports)}
	p.wire = NewWire(s.eng, cfg, p, dev)
	s.ports = append(s.ports, p)
	return p.idx
}

// ConnectWire is Connect returning the cable itself, so the device side
// can transmit on it (a NIC needs its wire handle).
func (s *Switch) ConnectWire(cfg WireConfig, dev Port) *Wire {
	return s.ports[s.Connect(cfg, dev)].wire
}

// AggregateLinks forms a LAG from member ports; traffic to a MAC learned
// on any member is distributed over the members by flow hash.
func (s *Switch) AggregateLinks(id int, members []int) {
	s.lags[id] = append([]int(nil), members...)
	for _, m := range members {
		s.lagOf[m] = id
	}
}

// forward implements learning + forwarding.
func (s *Switch) forward(inPort int, f *Frame) {
	s.fdb[f.Src] = inPort
	s.eng.After(s.latency, func() {
		out, ok := s.fdb[f.Dst]
		if !ok || f.Dst == Broadcast {
			s.flooded++
			for i, p := range s.ports {
				if i == inPort {
					continue
				}
				// Value copies must not inherit the original's pool
				// identity or cached delivery thunk.
				cp := *f
				cp.detach()
				p.wire.Send(p, &cp)
			}
			// The original is consumed here: only its copies travel on.
			f.Release()
			return
		}
		if lag, ok := s.lagOf[out]; ok {
			members := s.lags[lag]
			out = members[int(f.Flow.Hash())%len(members)]
		}
		s.ports[out].wire.Send(s.ports[out], f)
	})
}

// Flooded returns how many frames were flooded (unknown destination).
func (s *Switch) Flooded() uint64 { return s.flooded }

// Ports returns the number of connected ports.
func (s *Switch) Ports() int { return len(s.ports) }

// String describes the switch.
func (s *Switch) String() string {
	return fmt.Sprintf("switch %s (%d ports, %d LAGs)", s.name, len(s.ports), len(s.lags))
}
