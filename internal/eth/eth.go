// Package eth models the Ethernet substrate: MAC addresses, IP flow
// 5-tuples, frames (simulated at segment granularity with explicit
// packet counts), point-to-point wires, a learning switch, and the link
// aggregation (bonding) baseline the paper argues cannot solve NUDMA
// (§2.5).
package eth

import (
	"fmt"
	"time"

	"ioctopus/internal/sim"
)

// MAC is an Ethernet address.
type MAC [6]byte

// String formats the MAC conventionally.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// MACFromInt derives a locally administered MAC from an integer id.
func MACFromInt(id uint64) MAC {
	return MAC{0x02, byte(id >> 32), byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id)}
}

// Broadcast is the broadcast MAC.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// Protocol numbers used by the flow 5-tuple.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// FiveTuple uniquely identifies an IP flow (§2.3, footnote 1).
type FiveTuple struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// Reverse returns the tuple of the opposite direction.
func (ft FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		SrcIP: ft.DstIP, DstIP: ft.SrcIP,
		SrcPort: ft.DstPort, DstPort: ft.SrcPort,
		Proto: ft.Proto,
	}
}

// String formats the tuple.
func (ft FiveTuple) String() string {
	return fmt.Sprintf("%d:%d>%d:%d/%d", ft.SrcIP, ft.SrcPort, ft.DstIP, ft.DstPort, ft.Proto)
}

// Hash returns a stable flow hash (FNV-1a over the tuple), used for RSS
// and bonding hash policies.
func (ft FiveTuple) Hash() uint32 {
	h := uint32(2166136261)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= 16777619
	}
	for i := 0; i < 4; i++ {
		mix(byte(ft.SrcIP >> (8 * i)))
		mix(byte(ft.DstIP >> (8 * i)))
	}
	mix(byte(ft.SrcPort))
	mix(byte(ft.SrcPort >> 8))
	mix(byte(ft.DstPort))
	mix(byte(ft.DstPort >> 8))
	mix(ft.Proto)
	return h
}

// MTU is the wire MTU used throughout (standard 1500-byte Ethernet).
const MTU = 1500

// HeaderBytes approximates per-packet Ethernet+IP+TCP header overhead.
const HeaderBytes = 66

// Frame is a unit of traffic on the wire. To keep event counts
// tractable the simulation moves "segments": a frame may represent up
// to a TSO window of MTU-sized packets; Packets says how many, and
// per-packet costs on both ends are charged per packet.
type Frame struct {
	Src, Dst MAC
	Flow     FiveTuple
	// Payload is application bytes carried.
	Payload int64
	// Packets is how many wire packets this segment represents.
	Packets int
	// Seq is a per-flow sequence number for ordering checks.
	Seq uint64
	// SentAt timestamps wire entry, for latency measurement.
	SentAt sim.Time
	// Meta carries simulation-side context (e.g. message ids).
	Meta any

	// Pool plumbing: frames leased from a FramePool carry their origin
	// and a cached delivery thunk so Wire.Send does not allocate a
	// closure per frame. All fields are zero for plain &Frame{} frames,
	// which keep the original (allocating) behaviour.
	pool   *FramePool
	leased bool
	gen    uint32
	rxPort Port
	// deliver is the cached f.runDeliver method value.
	deliver func()
}

// runDeliver hands the frame to the port recorded by Wire.Send.
func (f *Frame) runDeliver() {
	p := f.rxPort
	f.rxPort = nil
	p.Receive(f)
}

// Release returns a pooled frame to its pool; the device that consumed
// the frame (a NIC after steering, a switch after flooding copies)
// calls it once the frame is dead. Releasing twice is a lifecycle bug
// and panics; Release on an unpooled frame is a no-op.
func (f *Frame) Release() {
	p := f.pool
	if p == nil {
		return
	}
	if !f.leased {
		panic("eth: Frame released twice")
	}
	f.leased = false
	f.gen++
	f.Meta = nil
	f.rxPort = nil
	p.stats.Live--
	p.stats.Recycled++
	p.free = append(p.free, f)
}

// detach strips pool identity from a frame copy (switch flooding makes
// value copies whose cached thunks would still point at the original).
func (f *Frame) detach() {
	f.pool = nil
	f.leased = false
	f.rxPort = nil
	f.deliver = nil
}

// PoolStats counts pool traffic: Hits/Misses split leases between
// recycled and freshly allocated objects; Live is leases not yet
// returned.
type PoolStats struct {
	Hits, Misses, Recycled uint64
	Live                   int
}

// FramePool recycles Frames for a transmitting device. With pooled
// false (the pre-pooling A/B baseline) Get returns fresh unpooled
// frames and Release is a no-op.
type FramePool struct {
	pooled bool
	free   []*Frame
	stats  PoolStats

	// Cross-shard sends park the original frame here until sim time
	// reaches the wire finish — the instant the serial simulation's
	// receiver would have recycled it — so pool telemetry is a function
	// of sim time, not of shard interleaving. The queue drains lazily in
	// Get and is flushed at every shard-sync barrier.
	eng      *sim.Engine
	pending  []pendingRelease
	pendHead int
}

type pendingRelease struct {
	f  *Frame
	at sim.Time
}

// NewFramePool returns a frame pool; pooled=false disables recycling.
func NewFramePool(pooled bool) *FramePool {
	return &FramePool{pooled: pooled}
}

// BindEngine ties the pool to the engine its frames are sent from, so
// deferred releases know the clock. On a grouped (sharded) engine the
// pool also flushes its queue at every shard-sync barrier.
func (p *FramePool) BindEngine(e *sim.Engine) {
	p.eng = e
	if e != nil && e.ShardGroup() != nil {
		e.OnShardSync(func() { p.reap(e.Now()) })
	}
}

// releaseAt queues f to rejoin the free list once the pool's engine
// reaches t. Without a bound engine it degenerates to Release now.
func (p *FramePool) releaseAt(f *Frame, t sim.Time) {
	if p.eng == nil {
		f.Release()
		return
	}
	p.pending = append(p.pending, pendingRelease{f: f, at: t})
}

// reap releases every queued frame whose due time has passed.
func (p *FramePool) reap(now sim.Time) {
	for p.pendHead < len(p.pending) && p.pending[p.pendHead].at <= now {
		f := p.pending[p.pendHead].f
		p.pending[p.pendHead] = pendingRelease{}
		p.pendHead++
		f.Release()
	}
	if p.pendHead == len(p.pending) {
		p.pending = p.pending[:0]
		p.pendHead = 0
	}
}

// Get leases a frame. Payload fields are the previous use's leftovers;
// the caller fills every field it sends.
func (p *FramePool) Get() *Frame {
	if p.pendHead < len(p.pending) {
		p.reap(p.eng.Now())
	}
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		f.leased = true
		p.stats.Hits++
		p.stats.Live++
		return f
	}
	f := &Frame{}
	f.deliver = f.runDeliver
	if p.pooled {
		f.pool = p
		f.leased = true
		p.stats.Misses++
		p.stats.Live++
	}
	return f
}

// Stats returns the pool counters.
func (p *FramePool) Stats() PoolStats { return p.stats }

// WireBytes returns the frame's size on the wire including per-packet
// header overhead.
func (f *Frame) WireBytes() int64 {
	n := f.Packets
	if n <= 0 {
		n = 1
	}
	return f.Payload + int64(n)*HeaderBytes
}

// SegmentPackets returns how many MTU packets carry `payload` bytes.
func SegmentPackets(payload int64) int {
	if payload <= 0 {
		return 1
	}
	n := (payload + MTU - 1) / MTU
	return int(n)
}

// Port is anything that can receive frames: a NIC port or a switch
// port.
type Port interface {
	// Receive ingests a frame; called when the last bit arrives.
	Receive(f *Frame)
	// PortMAC is the primary address of the port (switch learning).
	PortMAC() MAC
	// Engine is the engine the port's events run on. A wire whose two
	// ports answer with different engines of one shard group becomes a
	// cross-shard cut point; nil means "whatever engine the wire got".
	Engine() *sim.Engine
}

// FaultFilter inspects a frame about to enter a wire direction and
// returns true to drop it (simulated loss/corruption — a corrupted
// frame fails FCS at the receiver and is discarded, which at segment
// granularity is a drop). Filters run after serialization cost would be
// paid in reality, but dropping before Transfer keeps the lost frame
// from occupying wire bandwidth, matching a cut cable more closely than
// a noisy one; at the loss rates the chaos harness injects the
// difference is negligible.
type FaultFilter func(f *Frame) bool

// Wire is a point-to-point full-duplex cable. Each direction is an
// independent bandwidth pipe.
type Wire struct {
	eng  *sim.Engine
	a, b Port
	ab   *sim.Pipe
	ba   *sim.Pipe

	// Per-direction sending engines. Equal in serial mode; when they are
	// distinct shards of one group, the wire is a cut point: deliveries
	// cross via Engine.Post and pooled frames travel as detached copies
	// (see Send).
	aEng  *sim.Engine
	bEng  *sim.Engine
	cross bool

	// Per-direction fault filters; nil (the default) costs one pointer
	// compare per Send.
	abFilter FaultFilter
	baFilter FaultFilter
	abDrops  uint64
	baDrops  uint64
}

// WireConfig configures a cable.
type WireConfig struct {
	Name        string
	BytesPerSec float64
	Latency     time.Duration
}

// Wire100G returns the standard config for a 100GbE cable.
func Wire100G(name string) WireConfig {
	return WireConfig{Name: name, BytesPerSec: 12.5e9, Latency: 300 * time.Nanosecond}
}

// NewWire connects two ports back to back. Each direction's pipe lives
// on the sending port's engine (ports that answer Engine() with nil
// fall back to e); when the two ends sit on different shards of one
// group, the wire registers itself as the shards' cut point — the
// propagation latency is the conservative lookahead floor, and each
// direction's FIFO next-free time extends it dynamically.
func NewWire(e *sim.Engine, cfg WireConfig, a, b Port) *Wire {
	engFor := func(p Port) *sim.Engine {
		if pe := p.Engine(); pe != nil {
			return pe
		}
		return e
	}
	aEng, bEng := engFor(a), engFor(b)
	mk := func(owner *sim.Engine, suffix string) *sim.Pipe {
		return sim.NewPipe(owner, sim.PipeConfig{
			Name:        cfg.Name + suffix,
			BytesPerSec: cfg.BytesPerSec,
			BaseLatency: cfg.Latency,
		})
	}
	w := &Wire{eng: e, a: a, b: b, aEng: aEng, bEng: bEng,
		ab: mk(aEng, ":a>b"), ba: mk(bEng, ":b>a")}
	if aEng != bEng {
		g := aEng.ShardGroup()
		if g == nil || g != bEng.ShardGroup() {
			panic(fmt.Sprintf("eth: wire %q spans engines outside a common shard group", cfg.Name))
		}
		w.cross = true
		w.ab.SetRemoteDelivery(bEng)
		w.ba.SetRemoteDelivery(aEng)
		g.Link(aEng, bEng, cfg.Latency, w.ab.Horizon())
		g.Link(bEng, aEng, cfg.Latency, w.ba.Horizon())
	}
	return w
}

// SetFaultFilter installs (or, with nil, removes) a loss/corruption
// filter on the direction out of `from`. Fault injection only.
func (w *Wire) SetFaultFilter(from Port, filt FaultFilter) {
	switch from {
	case w.a:
		w.abFilter = filt
	case w.b:
		w.baFilter = filt
	default:
		panic("eth: SetFaultFilter from a port not on this wire")
	}
}

// FaultDrops returns frames dropped by the filter on the direction out
// of `from`.
func (w *Wire) FaultDrops(from Port) uint64 {
	if from == w.a {
		return w.abDrops
	}
	return w.baDrops
}

// Pipe exposes the bandwidth pipe of the direction out of `from`
// (fault injection degrades it; metrics sample it).
func (w *Wire) Pipe(from Port) *sim.Pipe {
	if from == w.a {
		return w.ab
	}
	return w.ba
}

// Send transmits a frame from the given side; it is delivered to the
// other end after serialization + propagation.
func (w *Wire) Send(from Port, f *Frame) {
	var pipe *sim.Pipe
	var to Port
	var filt FaultFilter
	var drops *uint64
	var eng *sim.Engine
	switch from {
	case w.a:
		pipe, to = w.ab, w.b
		filt, drops = w.abFilter, &w.abDrops
		eng = w.aEng
	case w.b:
		pipe, to = w.ba, w.a
		filt, drops = w.baFilter, &w.baDrops
		eng = w.bEng
	default:
		panic("eth: Send from a port not on this wire")
	}
	f.SentAt = eng.Now()
	if filt != nil && filt(f) {
		*drops++
		f.Release()
		return
	}
	if w.cross && f.pool != nil {
		// Cross-shard pooled frame: the receiver's shard must never touch
		// pool state, so a detached value copy crosses the cut while the
		// original goes back to this shard's pool at the instant the
		// serial simulation would have recycled it — when the last bit
		// arrives — keeping pool telemetry identical in both modes.
		cp := new(Frame)
		*cp = *f
		cp.detach()
		cp.rxPort = to
		cp.deliver = cp.runDeliver
		finish := pipe.Transfer(cp.WireBytes(), cp.deliver)
		f.rxPort = nil
		f.pool.releaseAt(f, finish)
		return
	}
	if f.deliver != nil {
		// Pooled frame: the cached thunk delivers to rxPort, saving a
		// closure per frame. A frame is on at most one wire at a time.
		f.rxPort = to
		pipe.Transfer(f.WireBytes(), f.deliver)
		return
	}
	pipe.Transfer(f.WireBytes(), func() { to.Receive(f) })
}

// Utilization returns the utilization of the direction out of `from`.
func (w *Wire) Utilization(from Port) float64 {
	if from == w.a {
		return w.ab.Utilization()
	}
	return w.ba.Utilization()
}
