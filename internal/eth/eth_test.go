package eth

import (
	"testing"
	"testing/quick"
	"time"

	"ioctopus/internal/sim"
)

func TestMACFormatting(t *testing.T) {
	m := MACFromInt(0x0102030405)
	if m.String() != "02:01:02:03:04:05" {
		t.Fatalf("mac = %s", m)
	}
	if MACFromInt(1) == MACFromInt(2) {
		t.Fatal("distinct ids must give distinct MACs")
	}
}

func TestFiveTupleReverse(t *testing.T) {
	ft := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 100, DstPort: 200, Proto: ProtoTCP}
	r := ft.Reverse()
	if r.SrcIP != 2 || r.DstIP != 1 || r.SrcPort != 200 || r.DstPort != 100 {
		t.Fatalf("reverse = %+v", r)
	}
	if r.Reverse() != ft {
		t.Fatal("double reverse should be identity")
	}
}

func TestFiveTupleReverseProperty(t *testing.T) {
	f := func(a, b uint32, p, q uint16, proto uint8) bool {
		ft := FiveTuple{SrcIP: a, DstIP: b, SrcPort: p, DstPort: q, Proto: proto}
		return ft.Reverse().Reverse() == ft
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFiveTupleHashStability(t *testing.T) {
	ft := FiveTuple{SrcIP: 10, DstIP: 20, SrcPort: 1000, DstPort: 2000, Proto: ProtoTCP}
	if ft.Hash() != ft.Hash() {
		t.Fatal("hash must be deterministic")
	}
	other := ft
	other.SrcPort++
	if ft.Hash() == other.Hash() {
		t.Fatal("adjacent tuples should hash apart (w.h.p.)")
	}
}

func TestSegmentPackets(t *testing.T) {
	cases := map[int64]int{0: 1, 1: 1, 1500: 1, 1501: 2, 64 * 1024: 44}
	for payload, want := range cases {
		if got := SegmentPackets(payload); got != want {
			t.Errorf("SegmentPackets(%d) = %d, want %d", payload, got, want)
		}
	}
}

func TestFrameWireBytes(t *testing.T) {
	f := &Frame{Payload: 3000, Packets: 2}
	if f.WireBytes() != 3000+2*HeaderBytes {
		t.Fatalf("wire bytes = %d", f.WireBytes())
	}
	// Zero packets defaults to one header.
	f2 := &Frame{Payload: 64}
	if f2.WireBytes() != 64+HeaderBytes {
		t.Fatalf("wire bytes = %d", f2.WireBytes())
	}
}

// sink is a trivial Port collecting frames.
type sink struct {
	mac MAC
	got []*Frame
	at  []sim.Time
	eng *sim.Engine
}

func (s *sink) Receive(f *Frame) {
	s.got = append(s.got, f)
	if s.eng != nil {
		s.at = append(s.at, s.eng.Now())
	}
}
func (s *sink) PortMAC() MAC        { return s.mac }
func (s *sink) Engine() *sim.Engine { return nil }

func TestWireDelivery(t *testing.T) {
	e := sim.NewEngine()
	a := &sink{mac: MACFromInt(1), eng: e}
	b := &sink{mac: MACFromInt(2), eng: e}
	w := NewWire(e, Wire100G("w"), a, b)
	f := &Frame{Src: a.mac, Dst: b.mac, Payload: 12500 - HeaderBytes, Packets: 1}
	w.Send(a, f)
	e.RunUntilIdle()
	if len(b.got) != 1 {
		t.Fatal("frame not delivered")
	}
	// 12500 bytes at 12.5 GB/s = 1us, + 300ns propagation.
	if b.at[0] != sim.Time(1300) {
		t.Fatalf("arrival = %v, want 1300ns", b.at[0])
	}
	if len(a.got) != 0 {
		t.Fatal("sender should not hear its own frame")
	}
}

func TestWireFullDuplex(t *testing.T) {
	e := sim.NewEngine()
	a := &sink{mac: MACFromInt(1), eng: e}
	b := &sink{mac: MACFromInt(2), eng: e}
	w := NewWire(e, Wire100G("w"), a, b)
	w.Send(a, &Frame{Payload: 125000})
	w.Send(b, &Frame{Payload: 125000})
	e.RunUntilIdle()
	if len(a.got) != 1 || len(b.got) != 1 {
		t.Fatal("directions should not contend")
	}
	if a.at[0] != b.at[0] {
		t.Fatalf("full duplex broken: %v vs %v", a.at[0], b.at[0])
	}
}

func TestSwitchLearningAndForwarding(t *testing.T) {
	e := sim.NewEngine()
	h1 := &sink{mac: MACFromInt(1), eng: e}
	h2 := &sink{mac: MACFromInt(2), eng: e}
	cfg := Wire100G("w")
	sw2 := NewSwitch(e, "tor", 0)
	p1 := sw2.Connect(cfg, h1)
	p2 := sw2.Connect(cfg, h2)
	_ = p2
	// Unknown destination floods (reaching h2).
	sw2.forward(p1, &Frame{Src: h1.mac, Dst: h2.mac, Payload: 100, Packets: 1})
	e.RunUntilIdle()
	if len(h2.got) != 1 {
		t.Fatalf("flood did not reach h2 (got %d)", len(h2.got))
	}
	if sw2.Flooded() != 1 {
		t.Fatalf("flooded = %d, want 1", sw2.Flooded())
	}
	// h2 replies; switch has learned h1's port, so no flood.
	sw2.forward(p2, &Frame{Src: h2.mac, Dst: h1.mac, Payload: 100, Packets: 1})
	e.RunUntilIdle()
	if len(h1.got) != 1 {
		t.Fatal("learned forward did not reach h1")
	}
	if sw2.Flooded() != 1 {
		t.Fatal("learned forward should not flood")
	}
}

func TestSwitchLAGHashesFlows(t *testing.T) {
	e := sim.NewEngine()
	cfg := Wire100G("w")
	sw := NewSwitch(e, "tor", 0)
	src := &sink{mac: MACFromInt(9), eng: e}
	m0 := &sink{mac: MACFromInt(10), eng: e}
	m1 := &sink{mac: MACFromInt(11), eng: e}
	pSrc := sw.Connect(cfg, src)
	pm0 := sw.Connect(cfg, m0)
	pm1 := sw.Connect(cfg, m1)
	sw.AggregateLinks(1, []int{pm0, pm1})

	// Teach the switch that dstMAC lives behind member 0.
	dst := MACFromInt(10)
	sw.forward(pm0, &Frame{Src: dst, Dst: src.mac, Payload: 1, Packets: 1})
	e.RunUntilIdle()

	// Many flows to dst: LAG must spread them across both members.
	for port := uint16(0); port < 64; port++ {
		f := &Frame{
			Src: src.mac, Dst: dst, Payload: 100, Packets: 1,
			Flow: FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 1000 + port, DstPort: 80, Proto: ProtoTCP},
		}
		sw.forward(pSrc, f)
	}
	e.RunUntilIdle()
	if len(m0.got) == 0 || len(m1.got) == 0 {
		t.Fatalf("LAG did not spread flows: m0=%d m1=%d", len(m0.got), len(m1.got))
	}
	// Crucially (§2.5): the host cannot choose the member — the same
	// flow always hashes to the same link.
	f := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 1000, DstPort: 80, Proto: ProtoTCP}
	first := int(f.Hash()) % 2
	for i := 0; i < 10; i++ {
		if int(f.Hash())%2 != first {
			t.Fatal("flow hash must be stable per flow")
		}
	}
}

func TestSwitchConnectWireRoundTrip(t *testing.T) {
	// Full path through real wires: host A -> switch -> host B.
	e := sim.NewEngine()
	cfg := Wire100G("w")
	sw := NewSwitch(e, "tor", 200*time.Nanosecond)
	a := &sink{mac: MACFromInt(1), eng: e}
	b := &sink{mac: MACFromInt(2), eng: e}
	wa := sw.ConnectWire(cfg, a)
	wb := sw.ConnectWire(cfg, b)
	_ = wb

	// A sends to B: unknown MAC floods; B replies: learned unicast.
	wa.Send(a, &Frame{Src: a.mac, Dst: b.mac, Payload: 1000, Packets: 1})
	e.RunUntilIdle()
	if len(b.got) != 1 {
		t.Fatalf("b received %d frames", len(b.got))
	}
	wb2 := sw.ports[1].wire
	wb2.Send(b, &Frame{Src: b.mac, Dst: a.mac, Payload: 1000, Packets: 1})
	e.RunUntilIdle()
	if len(a.got) != 1 {
		t.Fatalf("a received %d frames", len(a.got))
	}
	if sw.Flooded() != 1 {
		t.Fatalf("flooded = %d, want 1 (reply was unicast)", sw.Flooded())
	}
	// Arrival includes two wire hops + switch latency.
	if a.at[0] <= b.at[0] {
		t.Fatal("timestamps out of order")
	}
}
