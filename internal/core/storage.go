package core

import (
	"fmt"
	"time"

	"ioctopus/internal/interconnect"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/netstack"
	"ioctopus/internal/nvme"
	"ioctopus/internal/pcie"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// StorageConfig describes the §5.4 storage testbed: a dual-socket
// Skylake server with NVMe drives on one socket and the I/O workload on
// the other.
type StorageConfig struct {
	// Drives is the SSD count (paper: 4 Samsung PM1725a).
	Drives int
	// SSDNode is the socket the drives' primary port attaches to.
	SSDNode topology.NodeID
	// DualPort wires each drive to both sockets (the customized
	// backplane of §5.4).
	DualPort bool
	// Policy selects the driver routing (SinglePath or OctoSSD).
	Policy nvme.Policy
	// Topo overrides the default dual-Skylake machine.
	Topo *topology.Server
	// Seed drives randomized workload behaviour.
	Seed int64
}

// StorageRig is the assembled storage testbed.
type StorageRig struct {
	Eng    *sim.Engine
	Host   *Host
	Drives []*nvme.Driver
	RNG    *sim.RNG
}

// NewStorageRig builds the testbed.
func NewStorageRig(cfg StorageConfig) *StorageRig {
	if cfg.Drives <= 0 {
		cfg.Drives = 4
	}
	if cfg.Topo == nil {
		cfg.Topo = topology.DualSkylake()
	}
	e := sim.NewEngine()
	net := netstack.NewNetwork()
	h := buildHost(e, net, "storage-server", cfg.Topo, true, netstack.DefaultParams())
	rig := &StorageRig{Eng: e, Host: h, RNG: sim.NewRNG(cfg.Seed + 7)}
	for i := 0; i < cfg.Drives; i++ {
		name := fmt.Sprintf("nvme%d", i)
		var eps []*pcie.Endpoint
		if cfg.DualPort {
			// Port 0 stays on the SSD node (the primary path a stock
			// multipath setup would use); the second port reaches the
			// other socket.
			nodes := []topology.NodeID{cfg.SSDNode}
			for n := 0; n < cfg.Topo.NumNodes(); n++ {
				if topology.NodeID(n) != cfg.SSDNode {
					nodes = append(nodes, topology.NodeID(n))
				}
			}
			eps = h.PCIe.AttachCard(pcie.CardConfig{
				Name: name, Gen: pcie.Gen3, TotalLanes: 8,
				Wiring: pcie.WiringBifurcated, Nodes: nodes,
			})
		} else {
			eps = h.PCIe.AttachCard(pcie.CardConfig{
				Name: name, Gen: pcie.Gen3, TotalLanes: 8,
				Wiring: pcie.WiringDirect, Nodes: []topology.NodeID{cfg.SSDNode},
			})
		}
		ctrl := nvme.New(e, h.Mem, name, eps, nvme.DefaultParams())
		rig.Drives = append(rig.Drives, nvme.NewDriver(h.Kernel, ctrl, cfg.Policy, nvme.DefaultDriverParams()))
	}
	return rig
}

// Run advances the rig by d.
func (r *StorageRig) Run(d time.Duration) { r.Eng.RunFor(d) }

// Drain terminates simulation processes.
func (r *StorageRig) Drain() { r.Eng.Drain() }

// Kernel returns the host kernel.
func (r *StorageRig) Kernel() *kernel.Kernel { return r.Host.Kernel }

// Mem returns the host memory system.
func (r *StorageRig) Mem() *memsys.System { return r.Host.Mem }

// Fabric returns the host interconnect.
func (r *StorageRig) Fabric() *interconnect.Fabric { return r.Host.Fabric }
