package core_test

import (
	"strings"
	"testing"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/topology"
	"ioctopus/internal/workloads"
)

// TestPMDSmoke runs a short Rx stream under each poll-mode datapath and
// checks the cluster moves bytes and the drivers report pmd/ activity —
// the core-level sanity check under the pmd figure's full sweep.
func TestPMDSmoke(t *testing.T) {
	for _, dp := range []core.Datapath{core.DatapathBusyPoll, core.DatapathHybrid} {
		t.Run(dp.String(), func(t *testing.T) {
			cl := core.NewCluster(core.Config{Mode: core.ModeStandard, Datapath: dp})
			defer cl.Drain()
			w := workloads.StartStream(cl, workloads.StreamConfig{
				MsgSize: 65536, Direction: workloads.Rx,
				ServerCores: []topology.CoreID{0}, ServerIP: core.IPServerPF0,
			})
			cl.Run(5 * time.Millisecond)
			w.MeasureStart()
			cl.Run(10 * time.Millisecond)
			if w.Bytes() == 0 {
				t.Fatalf("%s moved no bytes", dp)
			}
			t.Logf("%s: %.2f Gb/s", dp, float64(w.Bytes())*8/0.010/1e9)
			var polls, bursts float64
			for _, s := range cl.Reg.Snapshot() {
				if !strings.HasPrefix(s.Name, "server/") || !strings.Contains(s.Name, "/pmd/") {
					continue
				}
				switch {
				case strings.HasSuffix(s.Name, "/polls"):
					polls += s.Value
				case strings.HasSuffix(s.Name, "/bursts"):
					bursts += s.Value
				}
			}
			if polls == 0 || bursts == 0 {
				t.Fatalf("%s: pmd counters flat (%.0f polls, %.0f bursts)", dp, polls, bursts)
			}
		})
	}
}
