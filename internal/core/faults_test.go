package core

import (
	"strings"
	"testing"
	"time"

	"ioctopus/internal/driver"
	"ioctopus/internal/eth"
	"ioctopus/internal/faults"
	"ioctopus/internal/kernel"
	"ioctopus/internal/netstack"
	"ioctopus/internal/pcie"
	"ioctopus/internal/topology"
)

func TestValidateConfigRejectsBrokenMachines(t *testing.T) {
	corelessNode := topology.DualBroadwell()
	corelessNode.Sockets[1].Cores = nil
	noCores := topology.DualBroadwell()
	for _, sk := range noCores.Sockets {
		sk.Cores = nil
	}
	// More sockets than a x16 card can bifurcate across.
	many := &topology.Server{Name: "many-sockets"}
	for i := 0; i < 17; i++ {
		many.Sockets = append(many.Sockets, &topology.Socket{
			ID:    topology.NodeID(i),
			Cores: []*topology.Core{{ID: topology.CoreID(i), Node: topology.NodeID(i), FreqGHz: 2}},
		})
	}
	badRings := driver.DefaultParams()
	badRings.CompRingNode = 5

	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"core-less server node", Config{ServerTopo: corelessNode}, "has no cores"},
		{"core-less client node", Config{ClientTopo: corelessNode}, "has no cores"},
		{"no cores at all", Config{ServerTopo: noCores}, "no cores"},
		{"over-bifurcated card", Config{ServerTopo: many}, "cannot bifurcate"},
		{"unknown wiring", Config{Wiring: pcie.Wiring(42)}, "unknown PCIe wiring"},
		{"unknown mode", Config{Mode: NICMode(9)}, "unknown NIC mode"},
		{"completion ring off-machine", Config{DriverParams: &badRings}, "5"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateConfig(c.cfg)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("ValidateConfig = %v, want mention of %q", err, c.want)
			}
			if _, err := NewClusterE(c.cfg); err == nil {
				t.Fatal("NewClusterE accepted the config ValidateConfig rejected")
			}
		})
	}
}

func TestNewClusterERejectsBadFaultPlan(t *testing.T) {
	cfg := Config{FaultPlan: &faults.Plan{Events: []faults.Event{
		{Kind: faults.Loss, Prob: 2, Duration: time.Millisecond},
	}}}
	if _, err := NewClusterE(cfg); err == nil || !strings.Contains(err.Error(), "out of [0,1]") {
		t.Fatalf("NewClusterE = %v, want probability error", err)
	}
}

func TestNewClusterPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCluster should keep the historical panic behaviour")
		}
	}()
	NewCluster(Config{Mode: NICMode(9)})
}

// TestEmptyFaultPlanIsByteIdentical is the no-fault regression gate:
// arming an empty plan must leave the simulation bit-for-bit identical
// to a build with no plan at all — same delivered bytes, same value for
// every registry probe. This is what keeps the fault hooks zero-cost on
// the no-fault path.
func TestEmptyFaultPlanIsByteIdentical(t *testing.T) {
	run := func(plan *faults.Plan) (int64, map[string]float64) {
		got, cl := runStream(t, Config{Mode: ModeIOctopus, FaultPlan: plan}, 0, IPServerPF0, 64*1024, 10*time.Millisecond)
		vals := make(map[string]float64)
		for _, s := range cl.Reg.Snapshot() {
			if strings.HasPrefix(s.Name, "faults/") {
				continue // the injector's own (all-zero) counters
			}
			vals[s.Name] = s.Value
		}
		return got, vals
	}
	gotNil, snapNil := run(nil)
	gotEmpty, snapEmpty := run(&faults.Plan{Seed: 123})
	if gotNil != gotEmpty {
		t.Fatalf("delivered bytes diverged: nil plan %d, empty plan %d", gotNil, gotEmpty)
	}
	if len(snapNil) != len(snapEmpty) {
		t.Fatalf("registry shape diverged: %d vs %d probes", len(snapNil), len(snapEmpty))
	}
	for name, v := range snapNil {
		if ev, ok := snapEmpty[name]; !ok || ev != v {
			t.Errorf("%s: nil plan %v, empty plan %v", name, v, ev)
		}
	}
}

// runFaultStream is runStream plus a sent-bytes count, for end-to-end
// loss accounting under injected faults.
func runFaultStream(t *testing.T, cfg Config, dur time.Duration) (sent, received int64, cl *Cluster) {
	t.Helper()
	cl = NewCluster(cfg)
	cl.Server.Stack.Listen(7, func(s *netstack.Socket) {
		cl.Server.Kernel.Spawn("netserver", 0, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				received += n
			}
		})
	})
	cl.Client.Kernel.Spawn("netperf", 0, func(th *kernel.Thread) {
		sock, err := cl.Client.Stack.Dial(th, IPServerPF0, 7, eth.ProtoTCP)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for {
			sock.Send(th, 64*1024)
			sent += 64 * 1024
		}
	})
	cl.Run(dur)
	cl.Drain()
	return sent, received, cl
}

// retxParams enables the retransmission timer the recovery tests need.
func retxParams() *netstack.Params {
	sp := netstack.DefaultParams()
	sp.RetxTimeout = 2 * time.Millisecond
	sp.RetxMaxTries = 12
	return &sp
}

func TestPFFailoverKeepsStreamAlive(t *testing.T) {
	sp := retxParams()
	cfg := Config{
		Mode:        ModeIOctopus,
		StackParams: sp,
		FaultPlan: &faults.Plan{Events: []faults.Event{
			{At: 10 * time.Millisecond, Kind: faults.LinkFlap, PF: 0, Duration: 10 * time.Millisecond},
		}},
	}
	sent, received, cl := runFaultStream(t, cfg, 40*time.Millisecond)
	if cl.Faults.LinkTransitions() != 2 {
		t.Fatalf("link transitions = %d, want 2", cl.Faults.LinkTransitions())
	}
	if cl.Octo.Failovers() < 1 || cl.Octo.Failbacks() < 1 {
		t.Fatalf("failovers = %d, failbacks = %d, want >= 1 each", cl.Octo.Failovers(), cl.Octo.Failbacks())
	}
	// Traffic really hit the dead link before the driver re-steered.
	drops := cl.Server.NIC.PF(0).RxLinkDrops() + cl.Server.NIC.PF(0).TxLinkDrops()
	if drops == 0 {
		t.Fatal("nothing died at the downed PF; the fault did not bite")
	}
	// Everything dropped was recovered: the sender may only be ahead by
	// in-flight/buffered data, and nothing was abandoned.
	bound := sp.SendWindow + sp.RxBufBytes
	if gap := sent - received; gap > bound {
		t.Fatalf("lost data across failover: gap %d > bound %d", gap, bound)
	}
	abandoned := cl.Client.Stack.RetxAbandoned() + cl.Server.Stack.RetxAbandoned()
	if abandoned != 0 {
		t.Fatalf("abandoned %d segments", abandoned)
	}
	// Failover telemetry is wired into the cluster registry.
	if v, ok := cl.Reg.Value("server/driver/octo0/failover/failovers"); !ok || v != float64(cl.Octo.Failovers()) {
		t.Fatalf("registry failover counter = %v (ok=%v)", v, ok)
	}
	if v, ok := cl.Reg.Value("faults/link_transitions"); !ok || v != 2 {
		t.Fatalf("registry faults counter = %v (ok=%v)", v, ok)
	}
}

func TestWireLossRecoveredByRetransmission(t *testing.T) {
	cfg := Config{
		Mode:        ModeIOctopus,
		StackParams: retxParams(),
		FaultPlan: &faults.Plan{
			Seed: 7,
			Events: []faults.Event{
				{At: 5 * time.Millisecond, Kind: faults.Loss, Dir: faults.ClientToServer, Prob: 0.05, Duration: 10 * time.Millisecond},
			},
		},
	}
	sent, received, cl := runFaultStream(t, cfg, 30*time.Millisecond)
	if cl.Faults.LossDrops() == 0 {
		t.Fatal("loss window dropped nothing")
	}
	retx := cl.Client.Stack.RetxRetransmits()
	if retx == 0 {
		t.Fatal("drops happened but nothing was retransmitted")
	}
	sp := retxParams()
	if gap := sent - received; gap > sp.SendWindow+sp.RxBufBytes {
		t.Fatalf("retransmission failed to recover: gap %d", gap)
	}
	if ab := cl.Client.Stack.RetxAbandoned(); ab != 0 {
		t.Fatalf("abandoned %d segments at 5%% loss", ab)
	}
}

// TestRxDropsRecycledUnderPooling floods a tiny UDP receive buffer so
// the stack exercises its drop paths with pooled packets: every dropped
// segment must be recycled exactly once (a double recycle panics the
// run) and, once the receiver drains, the Rx pool's live-lease gauge
// must return to zero — no leaks on the drop path.
func TestRxDropsRecycledUnderPooling(t *testing.T) {
	sp := netstack.DefaultParams()
	sp.RxBufBytes = 64 * 1024
	cl := NewCluster(Config{Mode: ModeIOctopus, StackParams: &sp})
	var srv *netstack.Socket
	cl.Server.Stack.Listen(7, func(s *netstack.Socket) { srv = s })
	cl.Client.Kernel.Spawn("flood", 0, func(th *kernel.Thread) {
		sock, err := cl.Client.Stack.Dial(th, IPServerPF0, 7, eth.ProtoUDP)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		// No receiver is consuming: most of this overflows the 64KB
		// socket buffer and is dropped by the stack.
		for i := 0; i < 400; i++ {
			sock.Send(th, 16*1024)
		}
	})
	cl.Run(20 * time.Millisecond)
	if cl.Server.Stack.RxDrops() == 0 {
		t.Fatal("flood did not overflow the receive buffer")
	}
	// Drain the survivors, then check the pool.
	cl.Server.Kernel.Spawn("drain", 0, func(th *kernel.Thread) {
		srv.SetOwner(th)
		for {
			if _, _, ok := srv.Recv(th); !ok {
				return
			}
		}
	})
	cl.Run(20 * time.Millisecond)
	live, ok := cl.Reg.Value("server/nic/pool/rx/live")
	if !ok {
		t.Fatal("pool/rx/live not registered")
	}
	if live != 0 {
		t.Fatalf("pool/rx live = %v after drain, want 0 (leaked leases)", live)
	}
	if rec, _ := cl.Reg.Value("server/nic/pool/rx/recycled"); rec == 0 {
		t.Fatal("nothing was recycled; the drop path bypassed the pool")
	}
	cl.Drain()
}

// TestConcurrentPFFailureRiddenOut: the failover contract is
// single-failure (DESIGN.md §10) — a second PF dying while the first
// failover is in flight is counted and ridden out, not acted on, and
// retransmission carries the stream across the double-fault window.
func TestConcurrentPFFailureRiddenOut(t *testing.T) {
	sp := retxParams()
	cfg := Config{
		Mode:        ModeIOctopus,
		StackParams: sp,
		FaultPlan: &faults.Plan{Events: []faults.Event{
			{At: 10 * time.Millisecond, Kind: faults.LinkFlap, PF: 0, Duration: 10 * time.Millisecond},
			{At: 12 * time.Millisecond, Kind: faults.LinkFlap, PF: 1, Duration: 5 * time.Millisecond},
		}},
	}
	sent, received, cl := runFaultStream(t, cfg, 60*time.Millisecond)
	if cl.Octo.ConcurrentIgnored() < 1 {
		t.Fatalf("concurrent ignored = %d; the PF1 failure inside PF0's outage was not counted",
			cl.Octo.ConcurrentIgnored())
	}
	if cl.Octo.Failovers() != 1 || cl.Octo.Failbacks() != 1 {
		t.Fatalf("failovers=%d failbacks=%d; the second failure must not trigger its own failover",
			cl.Octo.Failovers(), cl.Octo.Failbacks())
	}
	bound := sp.SendWindow + sp.RxBufBytes
	if gap := sent - received; gap > bound {
		t.Fatalf("lost data across the double fault: gap %d > bound %d", gap, bound)
	}
	if ab := cl.Client.Stack.RetxAbandoned() + cl.Server.Stack.RetxAbandoned(); ab != 0 {
		t.Fatalf("abandoned %d segments", ab)
	}
	if v, ok := cl.Reg.Value("server/driver/octo0/failover/concurrent_ignored"); !ok || v != float64(cl.Octo.ConcurrentIgnored()) {
		t.Fatalf("registry concurrent_ignored = %v (ok=%v), driver says %d", v, ok, cl.Octo.ConcurrentIgnored())
	}
}

// TestParkedOverflowSpillsToPool: with the parked list capped tightly,
// descriptors stranded past the cap are recycled (counted as overflow)
// instead of growing the list without bound, and retransmission — not
// the parked list — recovers their payload. Parking is a server-Tx
// phenomenon (a segment transmitted into a dead link whose remap target
// is dead too), so the workload is a server→client stream under the
// double-fault schedule: PF0's flows fail over onto PF1, then PF1 dies
// under them.
func TestParkedOverflowSpillsToPool(t *testing.T) {
	sp := retxParams()
	dp := driver.DefaultParams()
	dp.MaxParked = 1
	cl := NewCluster(Config{
		Mode:         ModeIOctopus,
		StackParams:  sp,
		DriverParams: &dp,
		FaultPlan: &faults.Plan{Events: []faults.Event{
			{At: 10 * time.Millisecond, Kind: faults.LinkFlap, PF: 0, Duration: 10 * time.Millisecond},
			{At: 12 * time.Millisecond, Kind: faults.LinkFlap, PF: 1, Duration: 5 * time.Millisecond},
		}},
	})
	var sent, received int64
	cl.Client.Stack.Listen(9, func(s *netstack.Socket) {
		cl.Client.Kernel.Spawn("sink", 0, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				received += n
			}
		})
	})
	cl.Server.Kernel.Spawn("netperf-tx", 0, func(th *kernel.Thread) {
		sock, err := cl.Server.Stack.Dial(th, IPClient, 9, eth.ProtoTCP)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for {
			sock.Send(th, 64*1024)
			sent += 64 * 1024
		}
	})
	cl.Run(50 * time.Millisecond)
	cl.Drain()
	if cl.Octo.ParkedOverflow() < 1 {
		t.Fatalf("parked overflow = %d; the 1-entry cap never spilled", cl.Octo.ParkedOverflow())
	}
	if cl.Octo.Parked() != 0 {
		t.Fatalf("parked = %d at end of run, want 0", cl.Octo.Parked())
	}
	bound := sp.SendWindow + sp.RxBufBytes
	if gap := sent - received; gap > bound {
		t.Fatalf("overflowed descriptors were not recovered: gap %d > bound %d", gap, bound)
	}
	if ab := cl.Client.Stack.RetxAbandoned() + cl.Server.Stack.RetxAbandoned(); ab != 0 {
		t.Fatalf("abandoned %d segments", ab)
	}
	if v, ok := cl.Reg.Value("server/driver/octo0/failover/parked_overflow"); !ok || v != float64(cl.Octo.ParkedOverflow()) {
		t.Fatalf("registry parked_overflow = %v (ok=%v), driver says %d", v, ok, cl.Octo.ParkedOverflow())
	}
}

// TestOverlappingFaultWindowsDeterministicAcrossShards runs the gnarly
// overlap — a short PF0 flap whose failback races flushParked, a PF1
// failure inside PF0's outage, and a loss window over the whole thing —
// and requires the serial and 2-shard runs to agree byte-for-byte on
// delivered work and every recovery counter, per seed.
func TestOverlappingFaultWindowsDeterministicAcrossShards(t *testing.T) {
	type outcome struct {
		sent, received    int64
		failovers         uint64
		failbacks         uint64
		concurrentIgnored uint64
		reposted          uint64
		abandoned         uint64
	}
	run := func(shards int, seed int64) outcome {
		sp := retxParams()
		cfg := Config{
			Mode:        ModeIOctopus,
			StackParams: sp,
			Shards:      shards,
			FaultPlan: &faults.Plan{
				Seed: seed,
				Events: []faults.Event{
					{At: 10 * time.Millisecond, Kind: faults.LinkFlap, PF: 0, Duration: 3 * time.Millisecond},
					{At: 12 * time.Millisecond, Kind: faults.LinkFlap, PF: 1, Duration: 5 * time.Millisecond},
					{At: 5 * time.Millisecond, Kind: faults.Loss, Dir: faults.ClientToServer, Prob: 0.02, Duration: 20 * time.Millisecond},
				},
			},
		}
		sent, received, cl := runFaultStream(t, cfg, 50*time.Millisecond)
		return outcome{
			sent: sent, received: received,
			failovers:         cl.Octo.Failovers(),
			failbacks:         cl.Octo.Failbacks(),
			concurrentIgnored: cl.Octo.ConcurrentIgnored(),
			reposted:          cl.Octo.Reposted(),
			abandoned:         cl.Client.Stack.RetxAbandoned() + cl.Server.Stack.RetxAbandoned(),
		}
	}
	for _, seed := range []int64{1, 99} {
		serial := run(1, seed)
		sharded := run(2, seed)
		if serial != sharded {
			t.Fatalf("seed %d: serial %+v != sharded %+v", seed, serial, sharded)
		}
		if serial.failovers != 1 || serial.failbacks != 1 {
			t.Fatalf("seed %d: failovers=%d failbacks=%d, want 1/1", seed, serial.failovers, serial.failbacks)
		}
		if serial.abandoned != 0 {
			t.Fatalf("seed %d: abandoned %d segments", seed, serial.abandoned)
		}
	}
}
