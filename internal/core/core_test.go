package core

import (
	"testing"
	"time"

	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/netstack"
	"ioctopus/internal/topology"
)

// runStream wires a one-way client->server stream for dur and returns
// the bytes the server application received.
func runStream(t *testing.T, cfg Config, serverCore topology.CoreID, serverIP uint32, msg int64, dur time.Duration) (int64, *Cluster) {
	t.Helper()
	cl := NewCluster(cfg)
	var received int64
	cl.Server.Stack.Listen(7, func(s *netstack.Socket) {
		cl.Server.Kernel.Spawn("netserver", serverCore, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				received += n
			}
		})
	})
	cl.Client.Kernel.Spawn("netperf", 0, func(th *kernel.Thread) {
		sock, err := cl.Client.Stack.Dial(th, serverIP, 7, eth.ProtoTCP)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for {
			sock.Send(th, msg)
		}
	})
	cl.Run(dur)
	cl.Drain()
	return received, cl
}

func TestEndToEndStreamDelivers(t *testing.T) {
	got, cl := runStream(t, Config{Mode: ModeStandard}, 0, IPServerPF0, 64*1024, 5*time.Millisecond)
	if got == 0 {
		t.Fatal("no data delivered end to end")
	}
	if cl.Server.Stack.RxDrops() > 0 {
		t.Fatalf("unexpected rx drops: %d", cl.Server.Stack.RxDrops())
	}
}

func TestLocalThroughputNearPaper(t *testing.T) {
	// Paper Fig 6: single-core TCP Rx at 64KB messages, local: ~22 Gb/s.
	got, _ := runStream(t, Config{Mode: ModeStandard}, 0, IPServerPF0, 64*1024, 20*time.Millisecond)
	gbps := float64(got) * 8 / 0.020 / 1e9
	if gbps < 15 || gbps > 32 {
		t.Fatalf("local single-core Rx = %.1f Gb/s, want ~22 (15..32)", gbps)
	}
}

func TestRemoteSlowerThanLocal(t *testing.T) {
	local, _ := runStream(t, Config{Mode: ModeStandard}, 0, IPServerPF0, 64*1024, 20*time.Millisecond)
	remote, _ := runStream(t, Config{Mode: ModeStandard}, 14, IPServerPF0, 64*1024, 20*time.Millisecond)
	ratio := float64(local) / float64(remote)
	if ratio < 1.10 || ratio > 1.6 {
		t.Fatalf("local/remote = %.2f (local %d, remote %d), want ~1.25", ratio, local, remote)
	}
}

func TestIOctopusMatchesLocalEitherSocket(t *testing.T) {
	local, _ := runStream(t, Config{Mode: ModeStandard}, 0, IPServerPF0, 64*1024, 20*time.Millisecond)
	octo0, _ := runStream(t, Config{Mode: ModeIOctopus}, 0, IPServerPF0, 64*1024, 20*time.Millisecond)
	octo1, _ := runStream(t, Config{Mode: ModeIOctopus}, 14, IPServerPF0, 64*1024, 20*time.Millisecond)
	for name, got := range map[string]int64{"octo-node0": octo0, "octo-node1": octo1} {
		r := float64(got) / float64(local)
		if r < 0.9 || r > 1.15 {
			t.Fatalf("%s/local = %.2f (octo %d, local %d), want ~1.0", name, r, got, local)
		}
	}
}

func TestRemoteMemoryBandwidthIs3xThroughput(t *testing.T) {
	// Paper Fig 6b: remote Rx moves ~3x the network throughput in DRAM.
	cl := NewCluster(Config{Mode: ModeStandard})
	var received int64
	cl.Server.Stack.Listen(7, func(s *netstack.Socket) {
		cl.Server.Kernel.Spawn("netserver", 14, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				received += n
			}
		})
	})
	cl.Client.Kernel.Spawn("netperf", 0, func(th *kernel.Thread) {
		sock, err := cl.Client.Stack.Dial(th, IPServerPF0, 7, eth.ProtoTCP)
		if err != nil {
			return
		}
		for {
			sock.Send(th, 64*1024)
		}
	})
	cl.Run(5 * time.Millisecond) // warmup
	cl.ResetStats()
	before := received
	cl.Run(20 * time.Millisecond)
	window := received - before
	dram := cl.Server.Mem.TotalDRAMBytes()
	ratio := dram / float64(window)
	cl.Drain()
	if ratio < 2.0 || ratio > 4.2 {
		t.Fatalf("DRAM/throughput = %.2f (dram %.0f, net %d), want ~3", ratio, dram, window)
	}
}

func TestLocalMemoryBandwidthNearZero(t *testing.T) {
	cl := NewCluster(Config{Mode: ModeStandard})
	var received int64
	cl.Server.Stack.Listen(7, func(s *netstack.Socket) {
		cl.Server.Kernel.Spawn("netserver", 0, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				received += n
			}
		})
	})
	cl.Client.Kernel.Spawn("netperf", 0, func(th *kernel.Thread) {
		sock, err := cl.Client.Stack.Dial(th, IPServerPF0, 7, eth.ProtoTCP)
		if err != nil {
			return
		}
		for {
			sock.Send(th, 64*1024)
		}
	})
	cl.Run(5 * time.Millisecond)
	cl.ResetStats()
	before := received
	cl.Run(20 * time.Millisecond)
	window := received - before
	dram := cl.Server.Mem.TotalDRAMBytes()
	ratio := dram / float64(window)
	cl.Drain()
	if ratio > 0.5 {
		t.Fatalf("local DRAM/throughput = %.2f, want ~0 (DDIO)", ratio)
	}
}

func TestOctoSteersAfterMigration(t *testing.T) {
	// The Fig 14 mechanism: traffic follows the thread to the other PF.
	cl := NewCluster(Config{Mode: ModeIOctopus})
	var srv *netstack.Socket
	var serverThread *kernel.Thread
	cl.Server.Stack.Listen(7, func(s *netstack.Socket) {
		srv = s
		serverThread = cl.Server.Kernel.Spawn("netserver", 0, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				if _, _, ok := s.Recv(th); !ok {
					return
				}
			}
		})
	})
	cl.Client.Kernel.Spawn("netperf", 0, func(th *kernel.Thread) {
		sock, err := cl.Client.Stack.Dial(th, IPServerPF0, 7, eth.ProtoTCP)
		if err != nil {
			return
		}
		for {
			sock.Send(th, 64*1024)
		}
	})
	cl.Run(10 * time.Millisecond)
	if srv == nil || serverThread == nil {
		t.Fatal("connection not established")
	}
	pf0Before := cl.Server.NIC.PF(0).RxBytes()
	pf1Before := cl.Server.NIC.PF(1).RxBytes()
	if pf0Before == 0 {
		t.Fatal("traffic should start on PF0 (thread on node 0)")
	}
	if pf1Before != 0 {
		t.Fatalf("PF1 got %v bytes before migration", pf1Before)
	}
	// Migrate the server thread to socket 1.
	cl.Server.Kernel.SetAffinity(serverThread, 14)
	cl.Run(10 * time.Millisecond)
	pf1Delta := cl.Server.NIC.PF(1).RxBytes() - pf1Before
	cl.Drain()
	if pf1Delta == 0 {
		t.Fatal("IOctoRFS did not move traffic to PF1 after migration")
	}
	if cl.Octo.UpdatesApplied() == 0 {
		t.Fatal("no MPFS updates applied")
	}
}

func TestStandardModeDoesNotFollowMigration(t *testing.T) {
	cl := NewCluster(Config{Mode: ModeStandard})
	var serverThread *kernel.Thread
	cl.Server.Stack.Listen(7, func(s *netstack.Socket) {
		serverThread = cl.Server.Kernel.Spawn("netserver", 0, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				if _, _, ok := s.Recv(th); !ok {
					return
				}
			}
		})
	})
	cl.Client.Kernel.Spawn("netperf", 0, func(th *kernel.Thread) {
		sock, err := cl.Client.Stack.Dial(th, IPServerPF0, 7, eth.ProtoTCP)
		if err != nil {
			return
		}
		for {
			sock.Send(th, 64*1024)
		}
	})
	cl.Run(10 * time.Millisecond)
	cl.Server.Kernel.SetAffinity(serverThread, 14)
	cl.Run(10 * time.Millisecond)
	pf1 := cl.Server.NIC.PF(1).RxBytes()
	cl.Drain()
	if pf1 != 0 {
		t.Fatalf("standard firmware moved %v bytes to PF1; MAC steering cannot do that", pf1)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, _ := runStream(t, Config{Mode: ModeIOctopus, Seed: 42}, 0, IPServerPF0, 16*1024, 5*time.Millisecond)
	b, _ := runStream(t, Config{Mode: ModeIOctopus, Seed: 42}, 0, IPServerPF0, 16*1024, 5*time.Millisecond)
	if a != b {
		t.Fatalf("same seed, different results: %d vs %d", a, b)
	}
}

func TestTxStreamServerToClient(t *testing.T) {
	// Server transmits (Fig 7 direction): single core, TSO.
	cl := NewCluster(Config{Mode: ModeStandard})
	var received int64
	cl.Client.Stack.Listen(7, func(s *netstack.Socket) {
		// Softirq on core 0, app on core 1 (both node 0, NIC-local):
		// the receive work splits across two client cores, so the
		// measured server transmit path is the bottleneck, as in §5.1.
		s.SteerTo(0)
		cl.Client.Kernel.Spawn("sink", 1, func(th *kernel.Thread) {
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				received += n
			}
		})
	})
	cl.Server.Kernel.Spawn("netperf-tx", 0, func(th *kernel.Thread) {
		sock, err := cl.Server.Stack.Dial(th, IPClient, 7, eth.ProtoTCP)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for {
			sock.Send(th, 64*1024)
		}
	})
	cl.Run(20 * time.Millisecond)
	gbps := float64(received) * 8 / 0.020 / 1e9
	cl.Drain()
	if gbps < 25 {
		t.Fatalf("Tx throughput = %.1f Gb/s, want ~45 (>25)", gbps)
	}
}

func TestModeString(t *testing.T) {
	if ModeStandard.String() != "standard" || ModeIOctopus.String() != "ioctopus" {
		t.Fatal("mode names wrong")
	}
}

func TestByteConservation(t *testing.T) {
	// Property: on the lossless TCP testbed, what the client app sends
	// equals what the server app receives plus bounded in-flight bytes.
	for _, mode := range []NICMode{ModeStandard, ModeIOctopus} {
		cl := NewCluster(Config{Mode: mode})
		var received int64
		cl.Server.Stack.Listen(7, func(s *netstack.Socket) {
			cl.Server.Kernel.Spawn("srv", 0, func(th *kernel.Thread) {
				s.SetOwner(th)
				for {
					n, _, ok := s.Recv(th)
					if !ok {
						return
					}
					received += n
				}
			})
		})
		var clientSock *netstack.Socket
		cl.Client.Kernel.Spawn("cli", 0, func(th *kernel.Thread) {
			sock, err := cl.Client.Stack.Dial(th, IPServerPF0, 7, eth.ProtoTCP)
			if err != nil {
				return
			}
			clientSock = sock
			for {
				sock.Send(th, 16*1024)
			}
		})
		cl.Run(20 * time.Millisecond)
		sent := clientSock.SentBytes()
		inFlightBound := int64(12 << 20) // window + receive buffer + wire
		if received > sent {
			t.Fatalf("%v: received %d > sent %d", mode, received, sent)
		}
		if sent-received > inFlightBound {
			t.Fatalf("%v: %d bytes unaccounted (sent %d, received %d)", mode, sent-received, sent, received)
		}
		if cl.Server.NIC.RxDrops() != 0 || cl.Server.Stack.RxDrops() != 0 {
			t.Fatalf("%v: drops on a windowed TCP stream", mode)
		}
		cl.Drain()
	}
}

func TestRandomizedMixedTrafficConservation(t *testing.T) {
	// Fuzz-ish: random message sizes in both directions on several
	// sockets; everything sent must arrive, in order, without drops.
	cl := NewCluster(Config{Mode: ModeIOctopus, Seed: 99})
	defer cl.Drain()
	const conns = 4
	var sent, received [conns]int64
	for i := 0; i < conns; i++ {
		i := i
		port := uint16(9000 + i)
		cl.Server.Stack.Listen(port, func(s *netstack.Socket) {
			cl.Server.Kernel.Spawn("srv", topology.CoreID(i*3%28), func(th *kernel.Thread) {
				s.SetOwner(th)
				for {
					n, _, ok := s.Recv(th)
					if !ok {
						return
					}
					received[i] += n
					// Echo a random-sized reply to mix directions.
					s.SendMsg(th, (n%3000)+1, nil)
				}
			})
		})
		cl.Client.Kernel.Spawn("cli", topology.CoreID(i%14), func(th *kernel.Thread) {
			sock, err := cl.Client.Stack.Dial(th, IPServerPF0, port, eth.ProtoTCP)
			if err != nil {
				return
			}
			rng := cl.RNG.Fork(int64(i))
			for {
				n := int64(rng.Intn(96*1024) + 1)
				sock.SendMsg(th, n, nil)
				sent[i] += n
				if _, _, ok := sock.Recv(th); !ok {
					return
				}
			}
		})
	}
	cl.Run(30 * time.Millisecond)
	for i := 0; i < conns; i++ {
		if sent[i] == 0 {
			t.Fatalf("conn %d never sent", i)
		}
		if received[i] > sent[i] {
			t.Fatalf("conn %d: received %d > sent %d", i, received[i], sent[i])
		}
	}
	if cl.Server.Stack.RxDrops() != 0 || cl.Client.Stack.RxDrops() != 0 {
		t.Fatal("drops under mixed randomized TCP traffic")
	}
}

// TestClusterRegistryWired: every subsystem of both hosts shows up in
// the cluster registry, and the probes observe real traffic.
func TestClusterRegistryWired(t *testing.T) {
	got, cl := runStream(t, Config{Mode: ModeIOctopus}, 0, IPServerPF0, 64*1024, 5*time.Millisecond)
	if got == 0 {
		t.Fatal("no data delivered")
	}
	if cl.Reg == nil {
		t.Fatal("cluster registry not built")
	}
	for _, name := range []string{
		"engine/events_executed",
		"server/nic/rx_frames",
		"server/nic/pf0/rx_bytes",
		"server/nic/pf0/rx/delivered",
		"server/mem/node0/dram_read_bytes",
		"server/mem/node0/memctl/discrete_bytes",
		"server/fabric/link0to1/discrete_bytes",
		"server/kernel/core0/busy_seconds",
		"server/driver/octo0/rx_pending",
		"server/driver/octo0/steer/updates_applied",
		"client/nic/pf0/tx_bytes",
		"client/driver/eth0/tx_in_flight",
	} {
		if _, ok := cl.Reg.Value(name); !ok {
			t.Fatalf("metric %q not registered", name)
		}
	}
	if v, _ := cl.Reg.Value("server/nic/pf0/rx_bytes"); v <= 0 {
		t.Fatalf("server rx_bytes = %v, want > 0 after a stream", v)
	}
	if v, _ := cl.Reg.Value("engine/events_executed"); v <= 0 {
		t.Fatalf("events_executed = %v", v)
	}
	snap := cl.Reg.Snapshot()
	if len(snap) != cl.Reg.Len() {
		t.Fatalf("snapshot %d entries, registry %d", len(snap), cl.Reg.Len())
	}
}
