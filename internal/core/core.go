// Package core assembles the complete IOctopus system — the paper's
// contribution — out of the substrates: a dual-socket server whose
// bifurcated 100 Gb/s NIC can run either the standard firmware (two
// per-PF netdevices, the local/remote baselines) or the IOctopus
// firmware + octoNIC team driver (one netdevice, one MAC, IOctoRFS
// steering), wired back-to-back to a client machine, exactly as §5's
// experimental setup describes.
package core

import (
	"fmt"
	"time"

	"ioctopus/internal/driver"
	"ioctopus/internal/eth"
	"ioctopus/internal/faults"
	"ioctopus/internal/interconnect"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/metrics"
	"ioctopus/internal/netstack"
	"ioctopus/internal/nic"
	"ioctopus/internal/pcie"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// NICMode selects how the server's bifurcated NIC is presented to the
// OS (§5, "Evaluated configurations").
type NICMode int

// Modes.
const (
	// ModeStandard runs the shipping firmware: the NIC appears as two
	// NICs, one per socket. Combined with workload placement this gives
	// the paper's `local` and `remote` configurations.
	ModeStandard NICMode = iota
	// ModeIOctopus flashes the IOctopus firmware and loads the octoNIC
	// team driver: one netdevice, no NUDMA.
	ModeIOctopus
)

// String names the mode.
func (m NICMode) String() string {
	switch m {
	case ModeStandard:
		return "standard"
	case ModeIOctopus:
		return "ioctopus"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Datapath selects how the server drivers consume NIC completions:
// interrupt/NAPI (the default), the busy-poll PMD loop, or hybrid
// adaptive polling (see internal/driver/pmd.go).
type Datapath = driver.Datapath

// Datapaths.
const (
	DatapathInterrupt = driver.DatapathInterrupt
	DatapathBusyPoll  = driver.DatapathBusyPoll
	DatapathHybrid    = driver.DatapathHybrid
)

// ParseDatapath maps the CLI/scenario spelling ("", "interrupt",
// "busypoll", "hybrid") to a Datapath.
func ParseDatapath(s string) (Datapath, error) { return driver.ParseDatapath(s) }

// Well-known addresses of the testbed.
const (
	IPServerPF0 uint32 = 0x0A000001 // 10.0.0.1 — standard netdev on PF0 / octo netdev
	IPServerPF1 uint32 = 0x0A000002 // 10.0.0.2 — standard netdev on PF1
	IPClient    uint32 = 0x0A000064 // 10.0.0.100
)

// Config describes a cluster build.
type Config struct {
	// Mode selects the server NIC presentation.
	Mode NICMode
	// EnableSG turns on the IOctoSG extension (octo mode only).
	EnableSG bool
	// DisableCoalescing zeroes interrupt moderation (latency runs).
	DisableCoalescing bool
	// DisableDDIO models the llnd configuration of Figure 9 (both
	// hosts).
	DisableDDIO bool
	// Wiring chooses how the server NIC reaches both sockets; default
	// bifurcated x16 -> 2 x8 (the prototype).
	Wiring pcie.Wiring
	// ServerTopo/ClientTopo override the default dual-Broadwell
	// machines.
	ServerTopo *topology.Server
	ClientTopo *topology.Server
	// DriverParams overrides the server drivers' defaults (the §2.4
	// remote-DDIO measurement homes completion rings on the NIC node).
	DriverParams *driver.Params
	// Datapath selects the server drivers' completion delivery:
	// interrupt/NAPI (the zero value — byte-identical to a config that
	// predates the field), busypoll, or hybrid. The client machine
	// always runs the interrupt path, as the paper's testbed did.
	Datapath Datapath
	// StackParams overrides both hosts' netstack defaults (the chaos
	// experiment enables retransmission via RetxTimeout/RetxMaxTries).
	StackParams *netstack.Params
	// FaultPlan, when non-nil, is armed against the assembled cluster;
	// its events fire relative to simulated time zero. A nil plan arms
	// nothing and leaves every fault hook at its zero-cost default.
	FaultPlan *faults.Plan
	// Seed drives all randomized workload behaviour.
	Seed int64
	// Shards splits the cluster across parallel engine shards: 0 or 1
	// is the serial engine (the default); 2 puts the server and client
	// hosts on their own goroutines, synchronized conservatively at the
	// wire and control-plane boundaries (sim.Group). Values above the
	// number of hosts clamp — the testbed has two machines, so the cut
	// is per host. Results are byte-identical to serial at any
	// GOMAXPROCS.
	Shards int
}

// Host is one assembled machine.
type Host struct {
	Name   string
	Topo   *topology.Server
	Fabric *interconnect.Fabric
	Mem    *memsys.System
	PCIe   *pcie.Fabric
	Kernel *kernel.Kernel
	Stack  *netstack.Stack
	NIC    *nic.NIC
}

// Cluster is the two-machine testbed.
type Cluster struct {
	Eng *sim.Engine
	// ClientEng is the client host's engine: Eng itself when serial,
	// the second shard when Config.Shards ≥ 2.
	ClientEng *sim.Engine
	// Group is the shard group driving both engines, nil when serial.
	Group  *sim.Group
	Net    *netstack.Network
	Server *Host
	Client *Host
	Mode   NICMode
	RNG    *sim.RNG

	// Server-side netdevices. Standard mode: Dev0 on PF0 (node 0) and
	// Dev1 on PF1 (node 1). Octo mode: Dev0 is the single octo
	// netdevice and Dev1 is nil.
	Dev0, Dev1 netstack.NetDevice
	// Octo is the octoNIC driver when Mode == ModeIOctopus.
	Octo *driver.Octo
	// ClientDev is the client's netdevice.
	ClientDev netstack.NetDevice

	Wire *eth.Wire

	// Faults is the armed injector when Config.FaultPlan was set.
	Faults *faults.Injector

	// Reg is the cluster-wide metrics registry: every subsystem of both
	// hosts registers its probes here during assembly, namespaced as
	// "<host>/<subsystem>/..." ("server/nic/pf0/rx_bytes",
	// "client/mem/node0/dram_read_bytes", ...) plus "engine/..." for
	// the simulation engine itself. Snapshot it at any simulation
	// instant for a full-system telemetry dump.
	Reg *metrics.Registry
}

// buildHost assembles kernel+memory+pcie+stack for one machine.
func buildHost(e *sim.Engine, net *netstack.Network, name string, topo *topology.Server, ddio bool, stackParams netstack.Params) *Host {
	fab := interconnect.New(e, topo)
	memParams := memsys.DefaultParams()
	memParams.DDIO = ddio
	mem := memsys.New(e, topo, fab, memParams)
	pc := pcie.New(e, mem, pcie.DefaultParams())
	k := kernel.New(e, topo, mem, kernel.DefaultParams())
	st := netstack.NewStack(k, name, net, stackParams)
	return &Host{
		Name:   name,
		Topo:   topo,
		Fabric: fab,
		Mem:    mem,
		PCIe:   pc,
		Kernel: k,
		Stack:  st,
	}
}

// normalize fills a config's defaulted fields in place.
func (cfg *Config) normalize() {
	if cfg.ServerTopo == nil {
		cfg.ServerTopo = topology.DualBroadwell()
	}
	if cfg.ClientTopo == nil {
		cfg.ClientTopo = topology.DualBroadwell()
	}
	if cfg.Wiring == pcie.WiringDirect {
		cfg.Wiring = pcie.WiringBifurcated
	}
}

// ValidateConfig rejects cluster configs that would assemble a broken
// machine — a PF with zero queues, a card wired to a socket the
// topology doesn't have, a lane budget that bifurcates to nothing —
// with an error naming the problem instead of a panic from deep inside
// a substrate package.
func ValidateConfig(cfg Config) error {
	cfg.normalize()
	for _, tp := range []struct {
		name string
		topo *topology.Server
	}{{"server", cfg.ServerTopo}, {"client", cfg.ClientTopo}} {
		if tp.topo.NumNodes() <= 0 {
			return fmt.Errorf("core: %s topology has no NUMA nodes", tp.name)
		}
		if tp.topo.NumCores() <= 0 {
			return fmt.Errorf("core: %s topology has no cores", tp.name)
		}
		for n := 0; n < tp.topo.NumNodes(); n++ {
			if len(tp.topo.CoresOn(topology.NodeID(n))) == 0 {
				// Queue pairs are per-core on the PF local to the core's
				// node; a core-less socket would leave its PF with zero
				// queues and nothing to drain its rings.
				return fmt.Errorf("core: %s node %d has no cores (its PF would have zero queues)", tp.name, n)
			}
		}
	}
	switch cfg.Wiring {
	case pcie.WiringBifurcated, pcie.WiringRiser:
		if 16/cfg.ServerTopo.NumNodes() == 0 {
			return fmt.Errorf("core: cannot bifurcate a x16 card across %d sockets (zero lanes per PF)", cfg.ServerTopo.NumNodes())
		}
	case pcie.WiringExtender, pcie.WiringSwitch:
		// Full-width endpoints per socket: always feasible.
	default:
		return fmt.Errorf("core: unknown PCIe wiring %v", cfg.Wiring)
	}
	switch cfg.Mode {
	case ModeStandard, ModeIOctopus:
	default:
		return fmt.Errorf("core: unknown NIC mode %v", cfg.Mode)
	}
	if cfg.DriverParams != nil {
		if n := cfg.DriverParams.CompRingNode; n != topology.NoNode && (int(n) < 0 || int(n) >= cfg.ServerTopo.NumNodes()) {
			return fmt.Errorf("core: completion rings homed on node %d but the server has %d nodes", n, cfg.ServerTopo.NumNodes())
		}
	}
	dp := cfg.Datapath
	if dp == DatapathInterrupt && cfg.DriverParams != nil {
		dp = cfg.DriverParams.Datapath
	}
	switch dp {
	case DatapathInterrupt, DatapathHybrid:
	case DatapathBusyPoll:
		// Busy-polling dedicates the last core of every server node to
		// the PMD loop; a single-core node would hand its only core to
		// the poller and leave nothing to run applications.
		for n := 0; n < cfg.ServerTopo.NumNodes(); n++ {
			if len(cfg.ServerTopo.CoresOn(topology.NodeID(n))) < 2 {
				return fmt.Errorf("core: busypoll datapath needs >= 2 cores per server node (node %d has %d; the poll core would starve the workload)",
					n, len(cfg.ServerTopo.CoresOn(topology.NodeID(n))))
			}
		}
	default:
		return fmt.Errorf("core: unknown datapath %v", dp)
	}
	return nil
}

// NewCluster builds the full testbed per the config, panicking on an
// invalid one (the historical behaviour; experiment code builds from
// vetted configs). Callers assembling from external input should use
// NewClusterE.
func NewCluster(cfg Config) *Cluster {
	cl, err := NewClusterE(cfg)
	if err != nil {
		panic(err)
	}
	return cl
}

// NewClusterE builds the full testbed per the config, returning an
// error for invalid topologies or fault plans.
func NewClusterE(cfg Config) (*Cluster, error) {
	if err := ValidateConfig(cfg); err != nil {
		return nil, err
	}
	e := sim.NewEngine()
	net := netstack.NewNetwork()
	cfg.normalize()

	stackParams := netstack.DefaultParams()
	if cfg.StackParams != nil {
		stackParams = *cfg.StackParams
	}

	// Sharding: the natural cut is per host — the only couplings between
	// the two machines are the wire (300 ns propagation) and the
	// netstack's control plane (ACK/connect flights), every one of which
	// has a physical latency to serve as conservative lookahead. The
	// testbed has two machines, so shard counts above 2 clamp.
	ce := e
	var group *sim.Group
	if cfg.Shards > 1 {
		if stackParams.AckLatency <= 0 || stackParams.ConnectLatency <= 0 {
			return nil, fmt.Errorf("core: sharded cluster needs positive AckLatency and ConnectLatency (the control-plane lookahead floor)")
		}
		ce = sim.NewEngine()
		group = sim.NewGroup(e, ce)
		floor := stackParams.AckLatency
		if stackParams.ConnectLatency < floor {
			floor = stackParams.ConnectLatency
		}
		// Control-plane posts (connection setup/teardown, ACK flights)
		// flow both ways with at least `floor` of delay; the wire adds
		// its own links (with dynamic horizons) in eth.NewWire.
		group.Link(e, ce, floor, nil)
		group.Link(ce, e, floor, nil)
	}

	cl := &Cluster{
		Eng:       e,
		ClientEng: ce,
		Group:     group,
		Net:       net,
		Mode:      cfg.Mode,
		RNG:       sim.NewRNG(cfg.Seed + 1),
	}
	cl.Server = buildHost(e, net, "server", cfg.ServerTopo, !cfg.DisableDDIO, stackParams)
	cl.Client = buildHost(ce, net, "client", cfg.ClientTopo, !cfg.DisableDDIO, stackParams)

	nicParams := nic.DefaultParams()
	if cfg.DisableCoalescing {
		nicParams.CoalesceDelay = 0
	}

	// Server NIC: ConnectX-5-like, x16 bifurcated (or alternative
	// wiring) across both sockets.
	var serverNodes []topology.NodeID
	for i := 0; i < cfg.ServerTopo.NumNodes(); i++ {
		serverNodes = append(serverNodes, topology.NodeID(i))
	}
	sEPs := cl.Server.PCIe.AttachCard(pcie.CardConfig{
		Name: "cx5", Gen: pcie.Gen3, TotalLanes: 16,
		Wiring: cfg.Wiring, Nodes: serverNodes,
	})
	cl.Server.NIC = nic.New(e, cl.Server.Mem, "cx5", sEPs, nicParams)

	// Client NIC: ConnectX-4-like, x16 direct on node 0.
	cEPs := cl.Client.PCIe.AttachCard(pcie.CardConfig{
		Name: "cx4", Gen: pcie.Gen3, TotalLanes: 16,
		Wiring: pcie.WiringDirect, Nodes: []topology.NodeID{0},
	})
	cl.Client.NIC = nic.New(ce, cl.Client.Mem, "cx4", cEPs, nicParams)

	// Cable them back to back.
	cl.Wire = eth.NewWire(e, eth.Wire100G("b2b"), cl.Server.NIC, cl.Client.NIC)
	cl.Server.NIC.AttachWire(cl.Wire)
	cl.Client.NIC.AttachWire(cl.Wire)

	drvParams := driver.DefaultParams()
	if cfg.DriverParams != nil {
		drvParams = *cfg.DriverParams
	}
	if cfg.Datapath != driver.DatapathInterrupt {
		drvParams.Datapath = cfg.Datapath
	}

	// Client side: always the standard single-PF driver, always the
	// interrupt datapath (the paper's client machine is stock Linux; the
	// datapath axis is a server-side experiment).
	clientParams := drvParams
	clientParams.Datapath = driver.DatapathInterrupt
	// The self-healing watchdog is a server-side experiment too: the
	// client keeps the zero-cost disabled default.
	clientParams.WatchdogInterval = 0
	cl.Client.NIC.LoadFirmware(nic.NewStandardFirmware(cl.Client.NIC))
	cDrv := driver.NewStandard(cl.Client.Kernel, cl.Client.Mem, cl.Client.NIC.PF(0), "eth0", clientParams)
	cDrv.Bind(cl.Client.Stack)
	cl.Client.Stack.AddDevice(cDrv, IPClient)
	cl.ClientDev = cDrv

	// Server side: mode-dependent.
	switch cfg.Mode {
	case ModeStandard:
		cl.Server.NIC.LoadFirmware(nic.NewStandardFirmware(cl.Server.NIC))
		d0 := driver.NewStandard(cl.Server.Kernel, cl.Server.Mem, cl.Server.NIC.PF(0), "eth0", drvParams)
		d0.Bind(cl.Server.Stack)
		cl.Server.Stack.AddDevice(d0, IPServerPF0)
		cl.Dev0 = d0
		if len(cl.Server.NIC.PFs()) > 1 {
			d1 := driver.NewStandard(cl.Server.Kernel, cl.Server.Mem, cl.Server.NIC.PF(1), "eth1", drvParams)
			d1.Bind(cl.Server.Stack)
			cl.Server.Stack.AddDevice(d1, IPServerPF1)
			cl.Dev1 = d1
		}
	case ModeIOctopus:
		cl.Server.NIC.LoadFirmware(nic.NewOctoFirmware(cl.Server.NIC, cfg.EnableSG))
		od := driver.NewOcto(cl.Server.Kernel, cl.Server.Mem, cl.Server.NIC, "octo0", drvParams)
		od.Bind(cl.Server.Stack)
		cl.Server.Stack.AddDevice(od, IPServerPF0)
		cl.Dev0 = od
		cl.Octo = od
	}

	// Fault injection: armed against the fully cabled system so link,
	// wire, fabric and core faults all have live targets. With no plan
	// nothing is installed and the datapath keeps its no-fault fast
	// paths (nil filters, link-up flags).
	if cfg.FaultPlan != nil {
		// PollerStall needs the server drivers' busy-poll loops; the
		// interface assertion keeps interrupt-mode runs (no pollers) and
		// the client (always interrupt) out of the target list.
		var pollers []*kernel.Poller
		for _, dev := range []netstack.NetDevice{cl.Dev0, cl.Dev1} {
			if pd, ok := dev.(interface{ Pollers() []*kernel.Poller }); ok {
				pollers = append(pollers, pd.Pollers()...)
			}
		}
		inj, err := faults.Arm(cfg.FaultPlan, faults.Targets{
			Engine:       e,
			ClientEngine: ce,
			NIC:          cl.Server.NIC,
			Wire:         cl.Wire,
			ServerPort:   cl.Server.NIC,
			ClientPort:   cl.Client.NIC,
			Fabric:       cl.Server.Fabric,
			Kernel:       cl.Server.Kernel,
			Pollers:      pollers,
		})
		if err != nil {
			return nil, err
		}
		cl.Faults = inj
	}

	// Observability: registration happens last, after the drivers have
	// attached their queues, so every probe sees the assembled system.
	// Probes are closures over live state — nothing here runs on the
	// simulation hot path, and an unsnapshotted registry costs nothing.
	cl.Reg = metrics.NewRegistry()
	if group != nil {
		metrics.RegisterEngines(cl.Reg.Scope("engine"), group.Engines())
	} else {
		metrics.RegisterEngine(cl.Reg.Scope("engine"), e)
	}
	cl.Server.registerMetrics(cl.Reg.Scope("server"))
	cl.Client.registerMetrics(cl.Reg.Scope("client"))
	if cl.Faults != nil {
		cl.Faults.RegisterMetrics(cl.Reg.Scope("faults"))
	}
	return cl, nil
}

// registerMetrics wires one host's subsystems into the cluster registry.
func (h *Host) registerMetrics(r metrics.Registrar) {
	h.Mem.RegisterMetrics(r.Scope("mem"))
	h.Fabric.RegisterMetrics(r.Scope("fabric"))
	h.Kernel.RegisterMetrics(r.Scope("kernel"))
	h.Stack.RegisterMetrics(r.Scope("stack"))
	if h.NIC != nil {
		h.NIC.RegisterMetrics(r.Scope("nic"))
	}
	for _, dev := range h.Stack.Devices() {
		type registrable interface {
			RegisterMetrics(metrics.Registrar)
		}
		if d, ok := dev.(registrable); ok {
			d.RegisterMetrics(r.Scope(fmt.Sprintf("driver/%s", dev.Name())))
		}
	}
}

// Run advances the whole cluster by d: one engine serially, or every
// shard concurrently with conservative synchronization.
func (cl *Cluster) Run(d time.Duration) {
	if cl.Group != nil {
		cl.Group.RunFor(d)
		return
	}
	cl.Eng.RunFor(d)
}

// Shards returns how many engine shards drive the cluster (1 = serial).
func (cl *Cluster) Shards() int {
	if cl.Group == nil {
		return 1
	}
	return len(cl.Group.Engines())
}

// Drain terminates all simulation processes; call once per cluster when
// done.
func (cl *Cluster) Drain() {
	if cl.Group != nil {
		cl.Group.Drain()
		return
	}
	cl.Eng.Drain()
}

// FirstCoreOn returns the lowest core id on the given server node
// (workload pinning helper).
func (cl *Cluster) FirstCoreOn(node topology.NodeID) topology.CoreID {
	return cl.Server.Topo.CoresOn(node)[0].ID
}

// ResetStats zeroes measurement counters on both hosts (after warmup).
func (cl *Cluster) ResetStats() {
	for _, h := range []*Host{cl.Server, cl.Client} {
		h.Mem.ResetStats()
		h.Fabric.ResetStats()
		for c := 0; c < h.Kernel.NumCores(); c++ {
			h.Kernel.Core(topology.CoreID(c)).ResetBusy()
		}
		if h.NIC != nil {
			for _, pf := range h.NIC.PFs() {
				pf.Endpoint().ResetStats()
			}
		}
	}
}
