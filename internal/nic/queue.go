package nic

import (
	"fmt"

	"ioctopus/internal/device"
	"ioctopus/internal/eth"
	"ioctopus/internal/memsys"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// RxPacket is a received segment handed to the driver: payload already
// DMA'd into Buf, completion entries written to the queue's ring.
type RxPacket struct {
	Queue     *RxQueue
	Buf       *memsys.Buffer
	Payload   int64
	Packets   int
	Flow      eth.FiveTuple
	Meta      any
	ArrivedAt sim.Time
}

// RxQueue is one receive queue: a completion ring the device writes and
// the host reads, plus a pool of packet buffers recycled round-robin.
type RxQueue struct {
	pf    *PF
	index int

	compRing *device.Ring
	bufs     []*memsys.Buffer
	bufNext  int

	irqNode topology.NodeID
	onIRQ   func()

	pending    []*RxPacket
	napiActive bool
	coalesce   sim.Timer

	drops      uint64
	delivered  uint64
	interrupts uint64
}

// AddRxQueue attaches a receive queue to the PF. The driver supplies
// the completion ring and packet buffers (allocated NUMA-appropriately)
// and the interrupt target+handler.
func (p *PF) AddRxQueue(compRing *device.Ring, bufs []*memsys.Buffer, irqNode topology.NodeID, onIRQ func()) *RxQueue {
	if len(bufs) == 0 {
		panic("nic: rx queue needs packet buffers")
	}
	q := &RxQueue{
		pf:       p,
		index:    len(p.rxQueues),
		compRing: compRing,
		bufs:     bufs,
		irqNode:  irqNode,
		onIRQ:    onIRQ,
	}
	p.rxQueues = append(p.rxQueues, q)
	return q
}

// Index returns the queue number within its PF.
func (q *RxQueue) Index() int { return q.index }

// PF returns the owning physical function.
func (q *RxQueue) PF() *PF { return q.pf }

// IRQNode returns the node whose core handles this queue's interrupts.
func (q *RxQueue) IRQNode() topology.NodeID { return q.irqNode }

// SetIRQ retargets the queue's interrupt (driver IRQ affinity).
func (q *RxQueue) SetIRQ(node topology.NodeID, onIRQ func()) {
	q.irqNode = node
	q.onIRQ = onIRQ
}

// CompletionRing returns the queue's completion ring (for driver-side
// entry reads).
func (q *RxQueue) CompletionRing() *device.Ring { return q.compRing }

// Drops returns frames dropped by this queue.
func (q *RxQueue) Drops() uint64 { return q.drops }

// Pending returns how many received segments await the driver.
func (q *RxQueue) Pending() int { return len(q.pending) }

// receive runs the hardware Rx datapath for one steered frame.
func (q *RxQueue) receive(f *eth.Frame) {
	// Ring occupancy check: completions not yet consumed by the host
	// hold ring entries.
	if len(q.pending) >= q.compRing.Capacity() {
		q.drops++
		q.pf.nic.rxDrops++
		return
	}
	buf := q.bufs[q.bufNext]
	q.bufNext = (q.bufNext + 1) % len(q.bufs)
	pkts := max(1, f.Packets)
	ep := q.pf.ep
	// Payload DMA, then completion writeback, then interrupt decision.
	ep.DMAWrite(buf, f.Payload, func() {
		ep.DMAWrite(q.compRing.Buffer(), int64(pkts)*q.pf.nic.params.DescBytes, func() {
			q.pf.rxBytes += float64(f.Payload)
			q.pending = append(q.pending, &RxPacket{
				Queue:     q,
				Buf:       buf,
				Payload:   f.Payload,
				Packets:   pkts,
				Flow:      f.Flow,
				Meta:      f.Meta,
				ArrivedAt: q.pf.nic.eng.Now(),
			})
			q.delivered++
			q.maybeInterrupt()
		})
	})
}

// maybeInterrupt fires the queue's interrupt respecting NAPI gating and
// the coalescing holdoff.
func (q *RxQueue) maybeInterrupt() {
	if q.napiActive || q.onIRQ == nil || len(q.pending) == 0 {
		return
	}
	delay := q.pf.nic.params.CoalesceDelay
	if delay == 0 {
		q.fireInterrupt()
		return
	}
	if q.coalesce.Pending() {
		return
	}
	q.coalesce = q.pf.nic.eng.After(delay, q.fireInterrupt)
}

func (q *RxQueue) fireInterrupt() {
	if q.napiActive || len(q.pending) == 0 {
		return
	}
	q.napiActive = true
	q.interrupts++
	q.pf.ep.Interrupt(q.irqNode, q.onIRQ)
}

// Poll removes up to budget pending segments (the NAPI poll).
func (q *RxQueue) Poll(budget int) []*RxPacket {
	n := len(q.pending)
	if n > budget {
		n = budget
	}
	batch := q.pending[:n]
	q.pending = q.pending[n:]
	return batch
}

// NapiComplete re-enables interrupts; if work arrived meanwhile the
// interrupt refires (the standard NAPI race resolution).
func (q *RxQueue) NapiComplete() {
	q.napiActive = false
	q.maybeInterrupt()
}

// TxFrag is one fragment of a transmitted packet; fragments may live on
// different NUMA nodes (sendfile from the page cache, §3.3), which is
// what IOctoSG exists for.
type TxFrag struct {
	Buf   *memsys.Buffer
	Bytes int64
}

// TxPacket is a segment handed to the device for transmission.
type TxPacket struct {
	Frags   []TxFrag
	Payload int64
	Packets int
	// Descriptors is how many ring descriptors describe the segment
	// (1 for a TSO segment; per-packet generators post one each).
	Descriptors int
	Flow        eth.FiveTuple
	Dst         eth.MAC
	Meta        any
	// OnSent fires after the driver reaps the Tx completion.
	OnSent func()
}

// TxQueue is one transmit queue: descriptor ring (host writes, device
// reads) and completion ring (device writes, host reads).
type TxQueue struct {
	pf    *PF
	index int

	descRing *device.Ring
	compRing *device.Ring

	irqNode topology.NodeID
	onIRQ   func()

	completed  []*TxPacket
	napiActive bool
	coalesce   sim.Timer

	posted     uint64
	sent       uint64
	interrupts uint64
}

// AddTxQueue attaches a transmit queue to the PF.
func (p *PF) AddTxQueue(descRing, compRing *device.Ring, irqNode topology.NodeID, onIRQ func()) *TxQueue {
	q := &TxQueue{
		pf:       p,
		index:    len(p.txQueues),
		descRing: descRing,
		compRing: compRing,
		irqNode:  irqNode,
		onIRQ:    onIRQ,
	}
	p.txQueues = append(p.txQueues, q)
	return q
}

// Index returns the queue number within its PF.
func (q *TxQueue) Index() int { return q.index }

// PF returns the owning physical function.
func (q *TxQueue) PF() *PF { return q.pf }

// DescRing returns the descriptor ring (driver posts into it).
func (q *TxQueue) DescRing() *device.Ring { return q.descRing }

// CompletionRing returns the completion ring.
func (q *TxQueue) CompletionRing() *device.Ring { return q.compRing }

// InFlight returns descriptors posted but not yet reaped.
func (q *TxQueue) InFlight() int { return int(q.posted - q.sent) }

// Post hands a packet to the hardware after the driver has written its
// descriptor and rung the doorbell (the driver charges those CPU
// costs). The device fetches the descriptor, DMA-reads the payload
// fragments — through this PF, or fragment-local PFs when the firmware
// has IOctoSG — transmits on the wire, and writes a Tx completion.
func (q *TxQueue) Post(pkt *TxPacket) {
	nic := q.pf.nic
	if nic.wire == nil {
		panic(fmt.Sprintf("nic %s: no wire attached", nic.name))
	}
	q.posted++
	if pkt.Descriptors <= 0 {
		pkt.Descriptors = 1
	}
	if per := pkt.Payload / int64(pkt.Descriptors); per > nic.params.MaxSegment {
		panic(fmt.Sprintf("nic %s: %d bytes per descriptor exceeds TSO max %d", nic.name, per, nic.params.MaxSegment))
	}
	frags := pkt.Frags
	if len(frags) == 0 {
		panic("nic: TxPacket needs at least one fragment")
	}
	// Descriptor fetch, then payload fetch(es), then wire + completion.
	q.descRing.DeviceRead(q.pf.ep, pkt.Descriptors, func() {
		remaining := len(frags)
		for _, fr := range frags {
			ep := q.pf.ep
			if nic.fw != nil && nic.fw.SGEnabled() {
				// IOctoSG: read each fragment through the PF local to
				// its memory so no fragment crosses the interconnect.
				if local := nic.pfOn(fr.Buf.Home()); local != nil {
					ep = local.ep
				}
			}
			ep.DMARead(fr.Buf, fr.Bytes, func() {
				remaining--
				if remaining == 0 {
					q.transmit(pkt)
				}
			})
		}
	})
}

// transmit puts the assembled frame on the wire and completes.
func (q *TxQueue) transmit(pkt *TxPacket) {
	nic := q.pf.nic
	src := q.pf.mac
	if nic.fw != nil && nic.fw.SingleMAC() {
		src = nic.mac
	}
	frame := &eth.Frame{
		Src:     src,
		Dst:     pkt.Dst,
		Flow:    pkt.Flow,
		Payload: pkt.Payload,
		Packets: max(1, pkt.Packets),
		Meta:    pkt.Meta,
	}
	nic.wire.Send(nic, frame)
	q.pf.txBytes += float64(pkt.Payload)
	// Completion writeback for the segment's packets.
	q.pf.ep.DMAWrite(q.compRing.Buffer(), int64(frame.Packets)*nic.params.DescBytes, func() {
		q.sent++
		q.completed = append(q.completed, pkt)
		q.maybeInterrupt()
	})
}

// maybeInterrupt mirrors the Rx side's NAPI gating.
func (q *TxQueue) maybeInterrupt() {
	if q.napiActive || q.onIRQ == nil || len(q.completed) == 0 {
		return
	}
	delay := q.pf.nic.params.CoalesceDelay
	if delay == 0 {
		q.fireInterrupt()
		return
	}
	if q.coalesce.Pending() {
		return
	}
	q.coalesce = q.pf.nic.eng.After(delay, q.fireInterrupt)
}

func (q *TxQueue) fireInterrupt() {
	if q.napiActive || len(q.completed) == 0 {
		return
	}
	q.napiActive = true
	q.interrupts++
	q.pf.ep.Interrupt(q.irqNode, q.onIRQ)
}

// Reap removes up to budget completed packets for driver cleanup.
func (q *TxQueue) Reap(budget int) []*TxPacket {
	n := len(q.completed)
	if n > budget {
		n = budget
	}
	batch := q.completed[:n]
	q.completed = q.completed[n:]
	return batch
}

// NapiComplete re-enables Tx interrupts.
func (q *TxQueue) NapiComplete() {
	q.napiActive = false
	q.maybeInterrupt()
}

// pfOn returns the PF attached to the given node, or nil.
func (n *NIC) pfOn(node topology.NodeID) *PF {
	for _, p := range n.pfs {
		if p.ep.Node() == node {
			return p
		}
	}
	return nil
}
