package nic

import (
	"fmt"

	"ioctopus/internal/device"
	"ioctopus/internal/eth"
	"ioctopus/internal/memsys"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// RxPacket is a received segment handed to the driver: payload already
// DMA'd into Buf, completion entries written to the queue's ring.
// Packets are leased from the NIC's pool at frame arrival and must be
// recycled exactly once by their final consumer (see pool.go for the
// ownership contract).
type RxPacket struct {
	Queue   *RxQueue
	Buf     *memsys.Buffer
	Payload int64
	Packets int
	Flow    eth.FiveTuple
	// Seq is the segment's per-flow sequence number, carried from the
	// wire frame so the stack can detect retransmitted duplicates.
	Seq       uint64
	Meta      any
	ArrivedAt sim.Time

	// Pool plumbing (zero for plain &RxPacket{} packets, whose Recycle
	// is a no-op) and the cached DMA-stage callbacks: one payload-DMA
	// completion and one writeback completion per packet, built once
	// per pooled object instead of two closures per received frame.
	pool        *rxPacketPool
	gen         uint32
	leased      bool
	payloadDone func() // cached rxp.runPayloadDone
	compDone    func() // cached rxp.runCompDone
}

// runPayloadDone is stage 2 of the Rx datapath: the payload landed in
// the packet buffer; write the completion entries.
func (rxp *RxPacket) runPayloadDone() {
	q := rxp.Queue
	q.pf.ep.DMAWrite(q.compRing.Buffer(), int64(rxp.Packets)*q.pf.nic.params.DescBytes, rxp.compDone)
}

// runCompDone is stage 3: the completion writeback is observable; the
// segment becomes visible to the driver and may raise an interrupt. A
// stalled queue holds the writeback device-side instead (fault
// injection): the segment stays invisible until the stall clears.
func (rxp *RxPacket) runCompDone() {
	q := rxp.Queue
	if q.stalled {
		q.held = append(q.held, rxp)
		return
	}
	q.deliver(rxp)
}

// deliver makes one completed segment visible to the driver — the tail
// of runCompDone, shared with the stall-release flush.
func (q *RxQueue) deliver(rxp *RxPacket) {
	q.pf.rxBytes += float64(rxp.Payload)
	rxp.ArrivedAt = q.pf.nic.eng.Now()
	q.pending = append(q.pending, rxp)
	q.delivered++
	q.maybeInterrupt()
}

// RxQueue is one receive queue: a completion ring the device writes and
// the host reads, plus a pool of packet buffers recycled round-robin.
type RxQueue struct {
	pf    *PF
	index int

	compRing *device.Ring
	bufs     []*memsys.Buffer
	bufNext  int

	irqNode topology.NodeID
	onIRQ   func()

	// pending plus a consumed-head index: Poll returns views into the
	// backing array and the array is reused once drained, so the poll
	// path does not reallocate per batch.
	pending  []*RxPacket
	pendHead int

	napiActive bool
	polled     bool
	coalesce   sim.Timer
	fireFn     func() // cached q.fireInterrupt

	// stalled freezes completion delivery (QueueStall fault): writebacks
	// that land while stalled are held, in order, until the stall clears
	// or the driver resets the queue. Held completions still occupy ring
	// entries — a long stall fills the ring and drops frames, exactly
	// like real silicon.
	stalled bool
	held    []*RxPacket

	drops      uint64
	delivered  uint64
	interrupts uint64
}

// AddRxQueue attaches a receive queue to the PF. The driver supplies
// the completion ring and packet buffers (allocated NUMA-appropriately)
// and the interrupt target+handler.
func (p *PF) AddRxQueue(compRing *device.Ring, bufs []*memsys.Buffer, irqNode topology.NodeID, onIRQ func()) *RxQueue {
	if len(bufs) == 0 {
		panic("nic: rx queue needs packet buffers")
	}
	q := &RxQueue{
		pf:       p,
		index:    len(p.rxQueues),
		compRing: compRing,
		bufs:     bufs,
		irqNode:  irqNode,
		onIRQ:    onIRQ,
	}
	q.fireFn = q.fireInterrupt
	p.rxQueues = append(p.rxQueues, q)
	return q
}

// Index returns the queue number within its PF.
func (q *RxQueue) Index() int { return q.index }

// PF returns the owning physical function.
func (q *RxQueue) PF() *PF { return q.pf }

// IRQNode returns the node whose core handles this queue's interrupts.
func (q *RxQueue) IRQNode() topology.NodeID { return q.irqNode }

// SetIRQ retargets the queue's interrupt (driver IRQ affinity).
func (q *RxQueue) SetIRQ(node topology.NodeID, onIRQ func()) {
	q.irqNode = node
	q.onIRQ = onIRQ
}

// CompletionRing returns the queue's completion ring (for driver-side
// entry reads).
func (q *RxQueue) CompletionRing() *device.Ring { return q.compRing }

// Drops returns frames dropped by this queue.
func (q *RxQueue) Drops() uint64 { return q.drops }

// Pending returns how many received segments await the driver.
func (q *RxQueue) Pending() int { return len(q.pending) - q.pendHead }

// receive runs the hardware Rx datapath for one steered frame. The
// RxPacket is leased and filled here, before the DMA stages run, so
// the frame itself is dead once this returns (the NIC releases it) and
// the DMA completions are the packet's own cached callbacks.
func (q *RxQueue) receive(f *eth.Frame) {
	// Ring occupancy check: completions not yet consumed by the host —
	// including writebacks held by a stalled queue — hold ring entries.
	if q.Pending()+len(q.held) >= q.compRing.Capacity() {
		q.drops++
		q.pf.nic.rxDrops++
		return
	}
	buf := q.bufs[q.bufNext]
	q.bufNext = (q.bufNext + 1) % len(q.bufs)
	rxp := q.pf.nic.rxPool.get()
	rxp.Queue = q
	rxp.Buf = buf
	rxp.Payload = f.Payload
	rxp.Packets = max(1, f.Packets)
	rxp.Flow = f.Flow
	rxp.Seq = f.Seq
	rxp.Meta = f.Meta
	// Payload DMA, then completion writeback, then interrupt decision.
	q.pf.ep.DMAWrite(buf, f.Payload, rxp.payloadDone)
}

// SetPolled switches the queue between interrupt and poll-mode
// operation. While polled, completions never raise interrupts and no
// coalesce timer is armed — a busy-poll driver consumes the ring with
// Poll directly. Leaving polled mode re-runs the interrupt decision, so
// completions that landed during the polled window fire exactly once
// (the NAPI re-arm rule, same as NapiComplete).
func (q *RxQueue) SetPolled(on bool) {
	if q.polled == on {
		return
	}
	q.polled = on
	if on {
		q.coalesce.Stop()
		return
	}
	q.maybeInterrupt()
}

// Polled reports whether the queue is in poll-mode operation.
func (q *RxQueue) Polled() bool { return q.polled }

// SetStalled freezes or releases completion delivery (QueueStall fault
// injection). Releasing flushes every held writeback in arrival order.
func (q *RxQueue) SetStalled(on bool) {
	if q.stalled == on {
		return
	}
	q.stalled = on
	if !on {
		q.FlushStalled()
	}
}

// Stalled reports whether the queue is holding completions.
func (q *RxQueue) Stalled() bool { return q.stalled }

// HeldCompletions returns writebacks held by an active stall.
func (q *RxQueue) HeldCompletions() int { return len(q.held) }

// FlushStalled delivers every held completion now and returns how many
// there were — the driver-visible effect of a watchdog queue reset
// (re-initialize the queue, re-post descriptors, recover stranded
// writebacks). The stall flag itself is device state: if the fault
// window is still open, new completions stall again and the watchdog
// escalates.
func (q *RxQueue) FlushStalled() int {
	held := q.held
	q.held = q.held[:0]
	for _, rxp := range held {
		q.deliver(rxp)
	}
	return len(held)
}

// maybeInterrupt fires the queue's interrupt respecting poll mode, NAPI
// gating and the coalescing holdoff.
func (q *RxQueue) maybeInterrupt() {
	if q.polled || q.napiActive || q.onIRQ == nil || q.Pending() == 0 {
		return
	}
	delay := q.pf.nic.params.CoalesceDelay
	if delay == 0 {
		q.fireInterrupt()
		return
	}
	if q.coalesce.Pending() {
		return
	}
	q.coalesce = q.pf.nic.eng.After(delay, q.fireFn)
}

func (q *RxQueue) fireInterrupt() {
	if q.polled || q.napiActive || q.Pending() == 0 {
		return
	}
	q.napiActive = true
	q.interrupts++
	q.pf.ep.Interrupt(q.irqNode, q.onIRQ)
}

// Poll removes up to budget pending segments (the NAPI poll). The
// returned batch aliases the queue's backing array and is valid until
// the next event that appends to this queue — i.e. for the duration of
// the synchronous NAPI loop consuming it.
func (q *RxQueue) Poll(budget int) []*RxPacket {
	n := q.Pending()
	if n > budget {
		n = budget
	}
	batch := q.pending[q.pendHead : q.pendHead+n]
	q.pendHead += n
	if q.pendHead == len(q.pending) {
		// Drained: reuse the backing array from the top.
		q.pending = q.pending[:0]
		q.pendHead = 0
	}
	return batch
}

// NapiComplete re-enables interrupts; if work arrived meanwhile the
// interrupt refires (the standard NAPI race resolution).
func (q *RxQueue) NapiComplete() {
	q.napiActive = false
	q.maybeInterrupt()
}

// TxFrag is one fragment of a transmitted packet; fragments may live on
// different NUMA nodes (sendfile from the page cache, §3.3), which is
// what IOctoSG exists for.
type TxFrag struct {
	Buf   *memsys.Buffer
	Bytes int64
}

// TxPacket is a segment handed to the device for transmission.
// Drivers lease them from the NIC's pool (NIC.LeaseTxPacket) and
// recycle them after reaping the completion; plain &TxPacket{} values
// still work (Recycle is then a no-op).
type TxPacket struct {
	Frags   []TxFrag
	Payload int64
	Packets int
	// Descriptors is how many ring descriptors describe the segment
	// (1 for a TSO segment; per-packet generators post one each).
	Descriptors int
	Flow        eth.FiveTuple
	Dst         eth.MAC
	// Seq is the segment's per-flow sequence number, copied onto the
	// wire frame (retransmission dedup at the receiver).
	Seq  uint64
	Meta any
	// OnSent fires after the driver reaps the Tx completion.
	OnSent func()
	// Dropped is set by the device when the segment died on a down
	// link: the completion still writes back (the PCIe side is alive)
	// so the driver reaps the descriptor, sees the flag, and may
	// repost the segment on a surviving PF instead of recycling it.
	Dropped bool

	// Pool plumbing plus the packet's cached DMA-stage callbacks: the
	// per-fragment payload reads of one packet form a single batch
	// completed by one shared callback and countdown, instead of a
	// fresh closure per fragment.
	pool         *txPacketPool
	gen          uint32
	leased       bool
	q            *TxQueue // posting queue, set by Post
	postQ        *TxQueue // DeferPost target
	dmaRemaining int
	fetchDone    func() // cached pkt.runFetchDone
	fragDone     func() // cached pkt.runFragDone
	compDone     func() // cached pkt.runCompDone
	postFn       func() // cached pkt.runPost
}

// initCallbacks caches the stage callbacks as method values; called
// once when the object is first constructed (pool.get or first Post).
func (pkt *TxPacket) initCallbacks() {
	pkt.fetchDone = pkt.runFetchDone
	pkt.fragDone = pkt.runFragDone
	pkt.compDone = pkt.runCompDone
	pkt.postFn = pkt.runPost
}

// DeferPost binds the queue the packet will be posted to and returns
// the cached thunk that performs the post — the driver schedules it
// after the doorbell flight time without allocating a closure.
func (pkt *TxPacket) DeferPost(q *TxQueue) func() {
	if pkt.postFn == nil {
		pkt.initCallbacks()
	}
	pkt.postQ = q
	return pkt.postFn
}

// runPost delivers a deferred post.
func (pkt *TxPacket) runPost() {
	q := pkt.postQ
	pkt.postQ = nil
	q.Post(pkt)
}

// runFetchDone is stage 2 of the Tx datapath: descriptors fetched;
// start the payload DMA batch.
func (pkt *TxPacket) runFetchDone() { pkt.q.startPayloadDMA(pkt) }

// runFragDone counts down the packet's fragment batch; the last
// fragment puts the frame on the wire.
func (pkt *TxPacket) runFragDone() {
	pkt.dmaRemaining--
	if pkt.dmaRemaining == 0 {
		pkt.q.transmit(pkt)
	}
}

// runCompDone is the final stage: the completion writeback is
// observable; the packet waits for the driver's reap. A stalled queue
// holds the writeback device-side (fault injection) — the descriptor
// stays in flight, which is what a driver watchdog's Tx-progress check
// keys on.
func (pkt *TxPacket) runCompDone() {
	q := pkt.q
	if q.stalled {
		q.held = append(q.held, pkt)
		return
	}
	q.deliverComp(pkt)
}

// deliverComp makes one Tx completion visible to the driver — the tail
// of runCompDone, shared with the stall-release flush.
func (q *TxQueue) deliverComp(pkt *TxPacket) {
	q.sent++
	q.completed = append(q.completed, pkt)
	q.maybeInterrupt()
}

// TxQueue is one transmit queue: descriptor ring (host writes, device
// reads) and completion ring (device writes, host reads).
type TxQueue struct {
	pf    *PF
	index int

	descRing *device.Ring
	compRing *device.Ring

	irqNode topology.NodeID
	onIRQ   func()

	// completed plus a consumed-head index (same array-reuse scheme as
	// RxQueue.pending/Poll).
	completed []*TxPacket
	compHead  int

	napiActive bool
	polled     bool
	coalesce   sim.Timer
	fireFn     func() // cached q.fireInterrupt

	// stalled/held mirror the Rx side's completion freeze (QueueStall
	// fault): held writebacks keep their descriptors in flight.
	stalled bool
	held    []*TxPacket

	posted     uint64
	sent       uint64
	interrupts uint64
}

// AddTxQueue attaches a transmit queue to the PF.
func (p *PF) AddTxQueue(descRing, compRing *device.Ring, irqNode topology.NodeID, onIRQ func()) *TxQueue {
	q := &TxQueue{
		pf:       p,
		index:    len(p.txQueues),
		descRing: descRing,
		compRing: compRing,
		irqNode:  irqNode,
		onIRQ:    onIRQ,
	}
	q.fireFn = q.fireInterrupt
	p.txQueues = append(p.txQueues, q)
	return q
}

// Index returns the queue number within its PF.
func (q *TxQueue) Index() int { return q.index }

// PF returns the owning physical function.
func (q *TxQueue) PF() *PF { return q.pf }

// DescRing returns the descriptor ring (driver posts into it).
func (q *TxQueue) DescRing() *device.Ring { return q.descRing }

// CompletionRing returns the completion ring.
func (q *TxQueue) CompletionRing() *device.Ring { return q.compRing }

// InFlight returns descriptors posted but not yet reaped.
func (q *TxQueue) InFlight() int { return int(q.posted - q.sent) }

// Sent returns completions delivered to the host so far — the
// monotonic progress counter a driver watchdog samples to detect a
// stuck queue (posted work whose Sent never advances).
func (q *TxQueue) Sent() uint64 { return q.sent }

// Post hands a packet to the hardware after the driver has written its
// descriptor and rung the doorbell (the driver charges those CPU
// costs). The device fetches the descriptor, DMA-reads the payload
// fragments — through this PF, or fragment-local PFs when the firmware
// has IOctoSG — transmits on the wire, and writes a Tx completion.
func (q *TxQueue) Post(pkt *TxPacket) {
	nic := q.pf.nic
	if nic.wire == nil {
		panic(fmt.Sprintf("nic %s: no wire attached", nic.name))
	}
	q.posted++
	if pkt.Descriptors <= 0 {
		pkt.Descriptors = 1
	}
	if per := pkt.Payload / int64(pkt.Descriptors); per > nic.params.MaxSegment {
		panic(fmt.Sprintf("nic %s: %d bytes per descriptor exceeds TSO max %d", nic.name, per, nic.params.MaxSegment))
	}
	if len(pkt.Frags) == 0 {
		panic("nic: TxPacket needs at least one fragment")
	}
	pkt.q = q
	if pkt.fetchDone == nil {
		pkt.initCallbacks()
	}
	// Descriptor fetch, then the payload batch, then wire + completion.
	q.descRing.DeviceRead(q.pf.ep, pkt.Descriptors, pkt.fetchDone)
}

// startPayloadDMA issues the packet's payload reads as one batch: the
// fragments are fetched in descriptor order — through this PF, or
// fragment-local PFs when the firmware has IOctoSG — and all share the
// packet's cached countdown callback, so fragment count never changes
// the number of closures (zero) or the event sequence.
func (q *TxQueue) startPayloadDMA(pkt *TxPacket) {
	nic := q.pf.nic
	frags := pkt.Frags
	pkt.dmaRemaining = len(frags)
	sg := nic.fw != nil && nic.fw.SGEnabled()
	for i := range frags {
		fr := &frags[i]
		ep := q.pf.ep
		if sg {
			// IOctoSG: read each fragment through the PF local to
			// its memory so no fragment crosses the interconnect.
			if local := nic.pfOn(fr.Buf.Home()); local != nil {
				ep = local.ep
			}
		}
		ep.DMARead(fr.Buf, fr.Bytes, pkt.fragDone)
	}
}

// transmit puts the assembled frame on the wire and completes. On a
// down link the frame is never built: the segment dies at the port, but
// the completion writeback still happens (flagged Dropped) so the
// descriptor ring drains and the driver can recover the segment.
func (q *TxQueue) transmit(pkt *TxPacket) {
	nic := q.pf.nic
	if !q.pf.linkUp {
		pkt.Dropped = true
		q.pf.txLinkDrops++
		q.pf.ep.DMAWrite(q.compRing.Buffer(), int64(max(1, pkt.Packets))*nic.params.DescBytes, pkt.compDone)
		return
	}
	src := q.pf.mac
	if nic.fw != nil && nic.fw.SingleMAC() {
		src = nic.mac
	}
	frame := nic.frames.Get()
	frame.Src = src
	frame.Dst = pkt.Dst
	frame.Flow = pkt.Flow
	frame.Payload = pkt.Payload
	frame.Packets = max(1, pkt.Packets)
	frame.Seq = pkt.Seq
	frame.Meta = pkt.Meta
	nic.wire.Send(nic, frame)
	q.pf.txBytes += float64(pkt.Payload)
	// Completion writeback for the segment's packets.
	q.pf.ep.DMAWrite(q.compRing.Buffer(), int64(frame.Packets)*nic.params.DescBytes, pkt.compDone)
}

// completedPending returns completions awaiting the driver's reap.
func (q *TxQueue) completedPending() int { return len(q.completed) - q.compHead }

// SetPolled mirrors RxQueue.SetPolled for the transmit side.
func (q *TxQueue) SetPolled(on bool) {
	if q.polled == on {
		return
	}
	q.polled = on
	if on {
		q.coalesce.Stop()
		return
	}
	q.maybeInterrupt()
}

// Polled reports whether the queue is in poll-mode operation.
func (q *TxQueue) Polled() bool { return q.polled }

// SetStalled mirrors RxQueue.SetStalled for the transmit side.
func (q *TxQueue) SetStalled(on bool) {
	if q.stalled == on {
		return
	}
	q.stalled = on
	if !on {
		q.FlushStalled()
	}
}

// Stalled reports whether the queue is holding completions.
func (q *TxQueue) Stalled() bool { return q.stalled }

// HeldCompletions returns writebacks held by an active stall.
func (q *TxQueue) HeldCompletions() int { return len(q.held) }

// FlushStalled delivers every held Tx completion now and returns how
// many there were; see RxQueue.FlushStalled for the reset semantics.
func (q *TxQueue) FlushStalled() int {
	held := q.held
	q.held = q.held[:0]
	for _, pkt := range held {
		q.deliverComp(pkt)
	}
	return len(held)
}

// maybeInterrupt mirrors the Rx side's poll-mode and NAPI gating.
func (q *TxQueue) maybeInterrupt() {
	if q.polled || q.napiActive || q.onIRQ == nil || q.completedPending() == 0 {
		return
	}
	delay := q.pf.nic.params.CoalesceDelay
	if delay == 0 {
		q.fireInterrupt()
		return
	}
	if q.coalesce.Pending() {
		return
	}
	q.coalesce = q.pf.nic.eng.After(delay, q.fireFn)
}

func (q *TxQueue) fireInterrupt() {
	if q.polled || q.napiActive || q.completedPending() == 0 {
		return
	}
	q.napiActive = true
	q.interrupts++
	q.pf.ep.Interrupt(q.irqNode, q.onIRQ)
}

// Reap removes up to budget completed packets for driver cleanup. Like
// RxQueue.Poll, the batch aliases the queue's backing array and is
// valid for the synchronous reap loop consuming it.
func (q *TxQueue) Reap(budget int) []*TxPacket {
	n := q.completedPending()
	if n > budget {
		n = budget
	}
	batch := q.completed[q.compHead : q.compHead+n]
	q.compHead += n
	if q.compHead == len(q.completed) {
		q.completed = q.completed[:0]
		q.compHead = 0
	}
	return batch
}

// NapiComplete re-enables Tx interrupts.
func (q *TxQueue) NapiComplete() {
	q.napiActive = false
	q.maybeInterrupt()
}

// pfOn returns the PF attached to the given node, or nil.
func (n *NIC) pfOn(node topology.NodeID) *PF {
	for _, p := range n.pfs {
		if p.ep.Node() == node {
			return p
		}
	}
	return nil
}
