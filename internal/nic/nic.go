// Package nic models a 100 Gb/s Ethernet adapter with one or more PCIe
// physical functions (PFs), after the Mellanox ConnectX-5 with a
// bifurcated PCIe interface the paper prototypes on.
//
// The device side implements:
//
//   - per-PF receive and transmit queues backed by descriptor rings in
//     host memory (package device), with DMA through the PF's PCIe
//     endpoint so all NUDMA effects apply;
//   - an integrated multi-PF Ethernet switch (MPFS) steering arriving
//     frames to a PF, and per-PF ARFS tables steering to a queue;
//   - TSO-style segment transmission and NAPI-compatible interrupt
//     moderation;
//   - two firmwares (package-local implementations of Firmware): the
//     standard one, where each PF has its own MAC and is a separate
//     logical NIC, and the IOctopus firmware, where the device exposes a
//     single MAC and the MPFS maps flow 5-tuples to PFs (IOctoRFS, §4.1).
package nic

import (
	"fmt"
	"time"

	"ioctopus/internal/eth"
	"ioctopus/internal/memsys"
	"ioctopus/internal/pcie"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// Params are device cost/behaviour constants.
type Params struct {
	// CoalesceDelay is the adaptive interrupt-moderation holdoff; zero
	// fires an interrupt as soon as a completion lands and NAPI is idle
	// (the "adaptive interrupt coalescing disabled" latency setup).
	CoalesceDelay time.Duration
	// MaxSegment is the largest TSO segment accepted from the host.
	MaxSegment int64
	// RxRingEntries / TxRingEntries size each queue's rings.
	RxRingEntries int
	TxRingEntries int
	// DescBytes is the descriptor/completion entry size.
	DescBytes int64
	// RxBufBytes / RxBufCount size each Rx queue's packet-buffer pool;
	// defaults approximate a 1024 x MTU real ring's footprint.
	RxBufBytes int64
	RxBufCount int
}

// DefaultParams returns calibrated defaults (coalescing on).
func DefaultParams() Params {
	return Params{
		CoalesceDelay: 8 * time.Microsecond,
		MaxSegment:    64 * 1024,
		RxRingEntries: 1024,
		TxRingEntries: 1024,
		DescBytes:     64,
		RxBufBytes:    64 * 1024,
		RxBufCount:    40,
	}
}

// NIC is the adapter: one physical port, one or more PFs.
type NIC struct {
	eng    *sim.Engine
	mem    *memsys.System
	name   string
	mac    eth.MAC // the port's primary (octo: only) MAC
	pfs    []*PF
	fw     Firmware
	wire   *eth.Wire
	params Params

	// Packet-object pools (see pool.go): Rx/Tx packet free lists plus
	// the frame pool backing this NIC's transmissions.
	rxPool *rxPacketPool
	txPool *txPacketPool
	frames *eth.FramePool

	rxDrops   uint64
	rxFrames  uint64
	rxPackets uint64

	// linkHooks fire after a PF's link state changes (driver failover).
	linkHooks []func(pf int, up bool)
	// fwResetHooks fire after a firmware reset wipes the steering
	// tables (driver rule replay).
	fwResetHooks []func()
	fwResets     uint64
}

// New builds a NIC over the given PCIe endpoints (one per PF, in PF
// order). The firmware is installed separately with LoadFirmware.
func New(e *sim.Engine, mem *memsys.System, name string, eps []*pcie.Endpoint, params Params) *NIC {
	if len(eps) == 0 {
		panic("nic: need at least one PF endpoint")
	}
	pooled := PoolingEnabled()
	n := &NIC{
		eng:    e,
		mem:    mem,
		name:   name,
		mac:    eth.MACFromInt(hashName(name)),
		params: params,
		rxPool: &rxPacketPool{pooled: pooled},
		txPool: &txPacketPool{pooled: pooled},
		frames: eth.NewFramePool(pooled),
	}
	n.frames.BindEngine(e)
	for i, ep := range eps {
		n.pfs = append(n.pfs, &PF{
			nic:    n,
			index:  i,
			ep:     ep,
			mac:    eth.MACFromInt(hashName(name) + uint64(i)),
			linkUp: true,
		})
	}
	return n
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h & 0xffffffffff
}

// Name returns the device name.
func (n *NIC) Name() string { return n.name }

// PortMAC implements eth.Port: the port's primary address.
func (n *NIC) PortMAC() eth.MAC { return n.mac }

// Engine implements eth.Port: the engine the NIC's host runs on, which
// places each direction of an attached wire on its sender's shard.
func (n *NIC) Engine() *sim.Engine { return n.eng }

// MAC returns the port's primary address.
func (n *NIC) MAC() eth.MAC { return n.mac }

// PFs returns the physical functions.
func (n *NIC) PFs() []*PF { return n.pfs }

// PF returns one physical function.
func (n *NIC) PF(i int) *PF {
	if i < 0 || i >= len(n.pfs) {
		panic(fmt.Sprintf("nic %s: no PF %d", n.name, i))
	}
	return n.pfs[i]
}

// Params returns the device constants.
func (n *NIC) Params() Params { return n.params }

// LoadFirmware installs (or replaces — the paper flashes the prototype
// back and forth) the device firmware.
func (n *NIC) LoadFirmware(fw Firmware) { n.fw = fw }

// Firmware returns the active firmware.
func (n *NIC) Firmware() Firmware { return n.fw }

// AttachWire connects the port to a cable. The NIC transmits with
// wire.Send(n, f) and receives via Receive.
func (n *NIC) AttachWire(w *eth.Wire) { n.wire = w }

// Wire returns the attached cable.
func (n *NIC) Wire() *eth.Wire { return n.wire }

// RxDrops returns frames dropped for lack of ring space.
func (n *NIC) RxDrops() uint64 { return n.rxDrops }

// OnLinkChange registers a hook invoked after a PF's link state flips;
// the octo team driver uses it to fail flows over to surviving PFs.
func (n *NIC) OnLinkChange(hook func(pf int, up bool)) {
	n.linkHooks = append(n.linkHooks, hook)
}

// SetPFLink forces a PF's link state (fault injection). While down the
// PF exchanges no frames — arriving frames steered to it are dropped
// and transmissions die silently, exactly as on a dead port — but its
// PCIe side stays alive, so descriptor fetches and completion
// writebacks still drain (the device is up; the port is not). Hooks run
// synchronously so the driver's failover latency is purely its own
// re-steering cost.
func (n *NIC) SetPFLink(pf int, up bool) {
	p := n.PF(pf)
	if p.linkUp == up {
		return
	}
	p.linkUp = up
	for _, h := range n.linkHooks {
		h(pf, up)
	}
}

// OnFirmwareReset registers a hook invoked after a firmware reset wipes
// the steering tables; drivers use it to replay their journaled rules.
func (n *NIC) OnFirmwareReset(hook func()) {
	n.fwResetHooks = append(n.fwResetHooks, hook)
}

// ResetFirmware models a firmware-level fault (fault injection): the
// steering tables are wiped — SteerRx degrades to the firmware's
// fallback until reprogrammed — while link state, queues and in-flight
// DMA survive. Hooks run synchronously, so observed recovery latency is
// purely the drivers' own replay cost.
func (n *NIC) ResetFirmware() {
	n.fwResets++
	if n.fw != nil {
		n.fw.Reset()
	}
	for _, h := range n.fwResetHooks {
		h()
	}
}

// FwResets returns firmware resets suffered.
func (n *NIC) FwResets() uint64 { return n.fwResets }

// SetQueueStall freezes (or releases) completion delivery on one queue
// pair (fault injection): both directions of PF pf's queue index q hold
// their writebacks while stalled. Out-of-range queue indexes panic via
// PF; callers validate against RxQueues/TxQueues lengths first.
func (n *NIC) SetQueueStall(pf, queue int, on bool) {
	p := n.PF(pf)
	if queue < 0 || queue >= len(p.rxQueues) || queue >= len(p.txQueues) {
		panic(fmt.Sprintf("nic %s: PF %d has no queue pair %d", n.name, pf, queue))
	}
	p.rxQueues[queue].SetStalled(on)
	p.txQueues[queue].SetStalled(on)
}

// Receive implements eth.Port: a frame has fully arrived at the port.
// The MPFS/firmware steers it to a PF and queue, then the Rx datapath
// DMAs it to host memory.
func (n *NIC) Receive(f *eth.Frame) {
	if n.fw == nil {
		panic(fmt.Sprintf("nic %s: no firmware loaded", n.name))
	}
	n.rxFrames++
	n.rxPackets += uint64(max(1, f.Packets))
	pf, queue := n.fw.SteerRx(f)
	if pf < 0 || pf >= len(n.pfs) {
		n.rxDrops++
	} else if !n.pfs[pf].linkUp {
		// Steered to a dead port: the frame has nowhere to land. The
		// MPFS cannot re-steer on its own — recovery is the driver's
		// job (failover re-steers flows; retransmission recovers what
		// was in flight).
		n.pfs[pf].rxLinkDrops++
		n.rxDrops++
	} else {
		n.pfs[pf].receive(queue, f)
	}
	// The Rx datapath copies everything it needs out of the frame
	// before any DMA runs, so the frame dies here (no-op if unpooled).
	f.Release()
}

// PF is one physical function: a PCIe endpoint plus its queues. Under
// the standard firmware each PF is an independent logical NIC with its
// own MAC; under the IOctopus firmware the PFs are limbs of one device.
type PF struct {
	nic   *NIC
	index int
	ep    *pcie.Endpoint
	mac   eth.MAC

	rxQueues []*RxQueue
	txQueues []*TxQueue
	vfs      []*VF

	rxBytes float64 // payload delivered to host via this PF
	txBytes float64

	// Link state (fault injection): up by default. Counters track
	// frames lost to a down link in each direction.
	linkUp      bool
	rxLinkDrops uint64
	txLinkDrops uint64
}

// Index returns the PF number.
func (p *PF) Index() int { return p.index }

// Endpoint returns the PF's PCIe endpoint.
func (p *PF) Endpoint() *pcie.Endpoint { return p.ep }

// Node returns the socket this PF is attached to.
func (p *PF) Node() topology.NodeID { return p.ep.Node() }

// MAC returns the PF's own address (meaningful under standard
// firmware).
func (p *PF) MAC() eth.MAC { return p.mac }

// NIC returns the owning device.
func (p *PF) NIC() *NIC { return p.nic }

// RxQueues returns the PF's receive queues.
func (p *PF) RxQueues() []*RxQueue { return p.rxQueues }

// TxQueues returns the PF's transmit queues.
func (p *PF) TxQueues() []*TxQueue { return p.txQueues }

// LinkUp reports whether the PF's link is up.
func (p *PF) LinkUp() bool { return p.linkUp }

// RxLinkDrops returns frames lost because they were steered to this PF
// while its link was down.
func (p *PF) RxLinkDrops() uint64 { return p.rxLinkDrops }

// TxLinkDrops returns transmit segments lost to a down link on this PF.
func (p *PF) TxLinkDrops() uint64 { return p.txLinkDrops }

// RxBytes returns payload bytes DMA'd to the host through this PF —
// the per-PF throughput series of Figure 14.
func (p *PF) RxBytes() float64 { return p.rxBytes }

// TxBytes returns payload bytes transmitted through this PF.
func (p *PF) TxBytes() float64 { return p.txBytes }

// receive runs the Rx datapath for a steered frame.
func (p *PF) receive(queue int, f *eth.Frame) {
	if queue < 0 || queue >= len(p.rxQueues) {
		p.nic.rxDrops++
		return
	}
	p.rxQueues[queue].receive(f)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
