package nic

import (
	"testing"

	"ioctopus/internal/eth"
)

// TestRxQueueStallHoldsCompletions: a stalled Rx queue keeps delivering
// DMA (the payload lands) but holds the completion writebacks — nothing
// becomes visible to the driver, no interrupt fires, and the held
// completions flush in arrival order when the stall lifts.
func TestRxQueueStallHoldsCompletions(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	interrupted := 0
	q := r.addRxQueue(0, 0, func() { interrupted++ })
	r.addTxQueue(0, 0, nil) // SetQueueStall freezes the full pair
	fw.ProgramFlow(flow(1), 0, 0)

	r.nic.SetQueueStall(0, 0, true)
	for i := 0; i < 3; i++ {
		r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 1000 * int64(i+1), Packets: 1, Seq: uint64(i + 1)})
	}
	r.eng.RunUntilIdle()

	if q.Pending() != 0 || q.HeldCompletions() != 3 {
		t.Fatalf("pending=%d held=%d, want 0/3 while stalled", q.Pending(), q.HeldCompletions())
	}
	if interrupted != 0 {
		t.Fatalf("interrupts = %d, a stalled queue must stay silent", interrupted)
	}
	if !q.Stalled() {
		t.Fatal("Stalled() should report the freeze")
	}

	// Releasing the stall flushes everything in arrival order and
	// re-runs the interrupt decision.
	r.nic.SetQueueStall(0, 0, false)
	r.eng.RunUntilIdle()
	if q.HeldCompletions() != 0 || q.Pending() != 3 {
		t.Fatalf("held=%d pending=%d after release, want 0/3", q.HeldCompletions(), q.Pending())
	}
	if interrupted == 0 {
		t.Fatal("release must fire the pending interrupt")
	}
	batch := q.Poll(64)
	for i, rxp := range batch {
		if rxp.Seq != uint64(i+1) {
			t.Fatalf("flush reordered completions: batch[%d].Seq = %d", i, rxp.Seq)
		}
	}
}

// TestTxQueueStallHoldsCompletions mirrors the Rx test on the Tx side:
// the frame still goes out on the wire (transmit already happened),
// only the completion writeback is stranded, so InFlight never drains —
// exactly the tx_timeout signal a driver watchdog samples.
func TestTxQueueStallHoldsCompletions(t *testing.T) {
	r := newRig(t)
	r.nic.LoadFirmware(NewOctoFirmware(r.nic, false))
	r.addRxQueue(0, 0, nil) // SetQueueStall freezes the full pair
	q := r.addTxQueue(0, 0, nil)
	buf := r.mem.NewBuffer("p", 0, 1500)

	r.nic.SetQueueStall(0, 0, true)
	q.Post(&TxPacket{
		Frags: []TxFrag{{Buf: buf, Bytes: 1500}}, Payload: 1500, Packets: 1,
		Flow: flow(1), Dst: r.far.mac,
	})
	r.eng.RunUntilIdle()

	if len(r.far.got) != 1 {
		t.Fatalf("frames on the wire = %d; the stall freezes writebacks, not DMA", len(r.far.got))
	}
	if q.InFlight() != 1 || q.HeldCompletions() != 1 {
		t.Fatalf("inflight=%d held=%d, want 1/1 while stalled", q.InFlight(), q.HeldCompletions())
	}
	if got := q.FlushStalled(); got != 1 {
		t.Fatalf("FlushStalled = %d, want 1", got)
	}
	if q.InFlight() != 0 || len(q.Reap(64)) != 1 {
		t.Fatal("flushed completion did not reach the reap path")
	}
}

// TestSetQueueStallPanicsOnBadIndex: the hook is fault-injection
// plumbing; a nonexistent queue is a harness bug, not a device state.
func TestSetQueueStallPanicsOnBadIndex(t *testing.T) {
	r := newRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("SetQueueStall accepted a queue the PF does not have")
		}
	}()
	r.nic.SetQueueStall(0, 99, true)
}

// TestFirmwareResetWipesSteeringState: a reset empties both firmware
// flavors' flow tables (RSS fallback keeps the queue mapping), bumps
// the NIC's reset counter and fires the registered hooks synchronously.
func TestFirmwareResetWipesSteeringState(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	q0 := r.addRxQueue(0, 0, nil)
	r.addRxQueue(1, 1, nil)
	fw.ProgramFlow(flow(1), 0, 0)
	if fw.FlowCount() != 1 {
		t.Fatal("rule not installed")
	}

	hooks := 0
	r.nic.OnFirmwareReset(func() { hooks++ })
	r.nic.ResetFirmware()
	if fw.FlowCount() != 0 {
		t.Fatalf("flow table survived the reset: %d rules", fw.FlowCount())
	}
	if r.nic.FwResets() != 1 || hooks != 1 {
		t.Fatalf("resets=%d hooks=%d, want 1/1", r.nic.FwResets(), hooks)
	}

	// Post-reset traffic still lands somewhere: the RSS fallback spreads
	// over existing queues instead of dropping on the wiped table.
	r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 1500, Packets: 1})
	r.eng.RunUntilIdle()
	if r.nic.RxDrops() != 0 {
		t.Fatal("frame dropped after reset; RSS fallback should cover it")
	}
	total := q0.Pending()
	for _, q := range r.nic.PF(1).RxQueues() {
		total += q.Pending()
	}
	if total != 1 {
		t.Fatalf("delivered = %d, want 1 via fallback", total)
	}
}

// TestStandardFirmwareResetWipesARFS covers the per-PF table flavor.
func TestStandardFirmwareResetWipesARFS(t *testing.T) {
	r := newRig(t)
	fw := NewStandardFirmware(r.nic)
	r.nic.LoadFirmware(fw)
	r.addRxQueue(0, 0, nil)
	fw.ProgramFlow(flow(1), 0, 0)
	if fw.FlowCount() != 1 {
		t.Fatal("ARFS rule not installed")
	}
	r.nic.ResetFirmware()
	if fw.FlowCount() != 0 {
		t.Fatalf("ARFS table survived the reset: %d rules", fw.FlowCount())
	}
}
