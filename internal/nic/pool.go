// Packet pools: generation-counted free lists for the per-packet model
// objects of the datapath, mirroring the engine's event-slot arena
// (sim.Engine). A steady-state packet costs zero heap allocations: the
// RxQueue leases RxPackets at frame arrival and the socket layer
// recycles them after Recv (or on drop); the driver leases TxPackets at
// xmit and recycles them after reaping the Tx completion. Each pooled
// object carries its DMA-stage callbacks as method values cached at
// first construction, so the per-fragment/per-stage closures of the
// pre-pool datapath disappear with the objects.
//
// Ownership contract:
//
//   - An RxPacket handed out by RxQueue.Poll is owned by the driver,
//     then by the socket layer once DeliverRx accepts it. Whoever
//     consumes it (Socket.Recv internally, a TryRecvNoCopy caller, a
//     drop path) must call Recycle exactly once and must not touch the
//     packet afterwards.
//   - A TxPacket leased via NIC.LeaseTxPacket is owned by the device
//     from Post until the driver reaps it; the driver recycles it after
//     the OnSent callback. Nothing may retain a packet across its
//     Recycle.
//
// Recycle bumps the object's generation and a second Recycle panics, so
// lifetime bugs surface immediately instead of as corrupted traffic.
package nic

import "sync/atomic"

// poolingOff disables packet/frame pooling globally when set. It is
// read once per NIC at construction (so a concurrently-built cluster
// sees a consistent setting) and exists for the A/B regression test
// that proves pooled and unpooled runs emit byte-identical results.
//
// octolint:shard-shared
var poolingOff atomic.Bool

// SetPooling enables or disables packet pooling for NICs constructed
// afterwards. Pooling is on by default; disabling restores the
// allocate-per-packet behaviour (same simulated timing, more GC).
func SetPooling(enabled bool) { poolingOff.Store(!enabled) }

// PoolingEnabled reports whether new NICs will pool packet objects.
func PoolingEnabled() bool { return !poolingOff.Load() }

// PoolStats counts pool traffic: Hits/Misses split leases between
// recycled and freshly allocated objects; Live is leases not yet
// recycled.
type PoolStats struct {
	Hits, Misses, Recycled uint64
	Live                   int
}

// rxPacketPool recycles RxPackets for one NIC.
type rxPacketPool struct {
	pooled bool
	free   []*RxPacket
	stats  PoolStats
}

// get leases an RxPacket. The caller fills every public field; stale
// values from the previous lease are not cleared on the hot path.
func (p *rxPacketPool) get() *RxPacket {
	if n := len(p.free); n > 0 {
		rxp := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		rxp.leased = true
		p.stats.Hits++
		p.stats.Live++
		return rxp
	}
	rxp := &RxPacket{}
	rxp.payloadDone = rxp.runPayloadDone
	rxp.compDone = rxp.runCompDone
	if p.pooled {
		rxp.pool = p
		rxp.leased = true
		p.stats.Misses++
		p.stats.Live++
	}
	return rxp
}

// Recycle returns the packet to its pool. Safe (a no-op) on unpooled
// packets, so drop paths and tests need not care how a packet was
// built; recycling the same lease twice panics.
func (rxp *RxPacket) Recycle() {
	p := rxp.pool
	if p == nil {
		return
	}
	if !rxp.leased {
		panic("nic: RxPacket recycled twice")
	}
	rxp.leased = false
	rxp.gen++
	rxp.Queue = nil
	rxp.Buf = nil
	rxp.Meta = nil
	p.stats.Live--
	p.stats.Recycled++
	p.free = append(p.free, rxp)
}

// Generation returns the packet's recycle generation; a held pointer
// whose generation has moved on is a stale reference.
func (rxp *RxPacket) Generation() uint32 { return rxp.gen }

// txPacketPool recycles TxPackets for one NIC.
type txPacketPool struct {
	pooled bool
	free   []*TxPacket
	stats  PoolStats
}

// get leases a TxPacket with an empty (capacity-preserving) Frags
// slice.
func (p *txPacketPool) get() *TxPacket {
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		pkt.leased = true
		p.stats.Hits++
		p.stats.Live++
		return pkt
	}
	pkt := &TxPacket{}
	pkt.initCallbacks()
	if p.pooled {
		pkt.pool = p
		pkt.leased = true
		p.stats.Misses++
		p.stats.Live++
	}
	return pkt
}

// Recycle returns the packet to its pool, keeping the fragment backing
// array for the next lease. No-op on unpooled packets; a double recycle
// panics.
func (pkt *TxPacket) Recycle() {
	p := pkt.pool
	if p == nil {
		return
	}
	if !pkt.leased {
		panic("nic: TxPacket recycled twice")
	}
	pkt.leased = false
	pkt.gen++
	for i := range pkt.Frags {
		pkt.Frags[i] = TxFrag{}
	}
	pkt.Frags = pkt.Frags[:0]
	pkt.Meta = nil
	pkt.OnSent = nil
	pkt.Dropped = false
	pkt.q = nil
	pkt.postQ = nil
	p.stats.Live--
	p.stats.Recycled++
	p.free = append(p.free, pkt)
}

// Generation returns the packet's recycle generation.
func (pkt *TxPacket) Generation() uint32 { return pkt.gen }

// LeaseTxPacket takes a TxPacket from the NIC's pool (drivers call this
// on the xmit path instead of allocating).
func (n *NIC) LeaseTxPacket() *TxPacket { return n.txPool.get() }

// RxPoolStats returns the receive packet pool counters.
func (n *NIC) RxPoolStats() PoolStats { return n.rxPool.stats }

// TxPoolStats returns the transmit packet pool counters.
func (n *NIC) TxPoolStats() PoolStats { return n.txPool.stats }
