package nic

import (
	"fmt"

	"ioctopus/internal/eth"
)

// VF is an SR-IOV virtual function: a logical NIC with its own MAC
// address hosted on one physical function, steered by the integrated
// multi-PF switch. Footnote 4 of the paper: "The MPFS exists to support
// configurable MAC addresses and SR-IOV" — this is that machinery,
// which the IOctopus firmware repurposes for 5-tuple steering.
type VF struct {
	pf     *PF
	index  int
	mac    eth.MAC
	queues []int // indices into the PF's rx queue array owned by this VF
}

// AddVF creates a virtual function on the PF with the given MAC. Its
// receive queues are registered afterwards with AssignQueue.
func (p *PF) AddVF(mac eth.MAC) *VF {
	for _, v := range p.vfs {
		if v.mac == mac {
			panic(fmt.Sprintf("nic %s: duplicate VF MAC %s", p.nic.name, mac))
		}
	}
	vf := &VF{pf: p, index: len(p.vfs), mac: mac}
	p.vfs = append(p.vfs, vf)
	return vf
}

// VFs returns the PF's virtual functions.
func (p *PF) VFs() []*VF { return p.vfs }

// Index returns the VF number within its PF.
func (v *VF) Index() int { return v.index }

// MAC returns the VF's address.
func (v *VF) MAC() eth.MAC { return v.mac }

// PF returns the hosting physical function.
func (v *VF) PF() *PF { return v.pf }

// SetMAC reconfigures the VF's address (the "configurable MAC
// addresses" half of footnote 4); the MPFS steers by the new MAC from
// the next frame on.
func (v *VF) SetMAC(mac eth.MAC) { v.mac = mac }

// AssignQueue hands one of the PF's receive queues to the VF; steered
// frames spread over the VF's queues by flow hash.
func (v *VF) AssignQueue(q *RxQueue) {
	if q.pf != v.pf {
		panic(fmt.Sprintf("nic %s: queue belongs to another PF", v.pf.nic.name))
	}
	v.queues = append(v.queues, q.index)
}

// Queues returns the PF-queue indices owned by the VF.
func (v *VF) Queues() []int { return v.queues }

// nativeQueues returns the PF's receive-queue indices not owned by any
// VF (the PF's own RSS indirection table).
func (p *PF) nativeQueues() []int {
	owned := make(map[int]bool)
	for _, vf := range p.vfs {
		for _, q := range vf.queues {
			owned[q] = true
		}
	}
	var native []int
	for i := range p.rxQueues {
		if !owned[i] {
			native = append(native, i)
		}
	}
	return native
}

// steerVF resolves a frame addressed to a VF MAC, if any. Returns
// (pf, queue, true) on a match.
func (fw *StandardFirmware) steerVF(f *eth.Frame) (int, int, bool) {
	for pi, p := range fw.nic.pfs {
		for _, vf := range p.vfs {
			if vf.mac != f.Dst || len(vf.queues) == 0 {
				continue
			}
			q := vf.queues[int(f.Flow.Hash())%len(vf.queues)]
			return pi, q, true
		}
	}
	return 0, 0, false
}
