package nic

import (
	"testing"
	"time"

	"ioctopus/internal/device"
	"ioctopus/internal/eth"
	"ioctopus/internal/interconnect"
	"ioctopus/internal/memsys"
	"ioctopus/internal/pcie"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// rig is a test harness: dual-socket server, bifurcated 2-PF NIC wired
// to a frame sink/source.
type rig struct {
	eng  *sim.Engine
	mem  *memsys.System
	nic  *NIC
	far  *farEnd
	wire *eth.Wire
}

// farEnd is the other side of the cable.
type farEnd struct {
	mac  eth.MAC
	got  []*eth.Frame
	wire *eth.Wire
}

func (f *farEnd) Receive(fr *eth.Frame) { f.got = append(f.got, fr) }
func (f *farEnd) PortMAC() eth.MAC      { return f.mac }
func (f *farEnd) Engine() *sim.Engine   { return nil }

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.NewEngine()
	srv := topology.DualBroadwell()
	ic := interconnect.New(e, srv)
	mem := memsys.New(e, srv, ic, memsys.DefaultParams())
	pf := pcie.New(e, mem, pcie.DefaultParams())
	eps := pf.AttachCard(pcie.CardConfig{
		Name: "cx5", Gen: pcie.Gen3, TotalLanes: 16,
		Wiring: pcie.WiringBifurcated, Nodes: []topology.NodeID{0, 1},
	})
	n := New(e, mem, "cx5", eps, DefaultParams())
	far := &farEnd{mac: eth.MACFromInt(0xC11E)}
	w := eth.NewWire(e, eth.Wire100G("cable"), n, far)
	n.AttachWire(w)
	far.wire = w
	return &rig{eng: e, mem: mem, nic: n, far: far, wire: w}
}

// addRxQueue wires a minimal Rx queue on the given PF with buffers on
// the PF's node.
func (r *rig) addRxQueue(pf int, irqNode topology.NodeID, onIRQ func()) *RxQueue {
	p := r.nic.PF(pf)
	ring := device.NewRing(r.mem, "rxc", p.Node(), 1024, 64)
	var bufs []*memsys.Buffer
	for i := 0; i < 8; i++ {
		bufs = append(bufs, r.mem.NewBuffer("rxbuf", irqNode, 64*1024))
	}
	return p.AddRxQueue(ring, bufs, irqNode, onIRQ)
}

func (r *rig) addTxQueue(pf int, irqNode topology.NodeID, onIRQ func()) *TxQueue {
	p := r.nic.PF(pf)
	desc := device.NewRing(r.mem, "txd", p.Node(), 1024, 64)
	comp := device.NewRing(r.mem, "txc", p.Node(), 1024, 64)
	return p.AddTxQueue(desc, comp, irqNode, onIRQ)
}

func flow(port uint16) eth.FiveTuple {
	return eth.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: port, DstPort: 5000, Proto: eth.ProtoTCP}
}

func TestNICConstruction(t *testing.T) {
	r := newRig(t)
	if len(r.nic.PFs()) != 2 {
		t.Fatalf("PFs = %d, want 2", len(r.nic.PFs()))
	}
	if r.nic.PF(0).Node() != 0 || r.nic.PF(1).Node() != 1 {
		t.Fatal("PF nodes wrong")
	}
	if r.nic.PF(0).MAC() == r.nic.PF(1).MAC() {
		t.Fatal("PF MACs must differ")
	}
}

func TestStandardFirmwareSteersByMAC(t *testing.T) {
	r := newRig(t)
	fw := NewStandardFirmware(r.nic)
	r.nic.LoadFirmware(fw)
	r.addRxQueue(0, 0, nil)
	r.addRxQueue(1, 1, nil)
	pf, _ := fw.SteerRx(&eth.Frame{Dst: r.nic.PF(1).MAC(), Flow: flow(1)})
	if pf != 1 {
		t.Fatalf("MPFS steered to PF %d, want 1 (by MAC)", pf)
	}
	pf, _ = fw.SteerRx(&eth.Frame{Dst: r.nic.PF(0).MAC(), Flow: flow(1)})
	if pf != 0 {
		t.Fatalf("MPFS steered to PF %d, want 0", pf)
	}
}

func TestStandardFirmwareARFSWithinPF(t *testing.T) {
	r := newRig(t)
	fw := NewStandardFirmware(r.nic)
	r.nic.LoadFirmware(fw)
	r.addRxQueue(0, 0, nil)
	r.addRxQueue(0, 0, nil) // two queues on PF0
	ft := flow(7)
	fw.ProgramFlow(ft, 0, 1)
	if _, q := fw.SteerRx(&eth.Frame{Dst: r.nic.PF(0).MAC(), Flow: ft}); q != 1 {
		t.Fatalf("ARFS steered to queue %d, want 1", q)
	}
	fw.RemoveFlow(ft)
	if fw.FlowCount() != 0 {
		t.Fatal("RemoveFlow failed")
	}
}

func TestOctoFirmwareSteersByFiveTuple(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	r.addRxQueue(0, 0, nil)
	r.addRxQueue(1, 1, nil)
	ft := flow(9)
	fw.ProgramFlow(ft, 1, 0)
	// Destination MAC is the octoNIC's single MAC; steering ignores it.
	pf, q := fw.SteerRx(&eth.Frame{Dst: r.nic.MAC(), Flow: ft})
	if pf != 1 || q != 0 {
		t.Fatalf("IOctoRFS steered to pf%d/q%d, want pf1/q0", pf, q)
	}
	// Re-program to the other PF: the move §5.3 exercises.
	fw.ProgramFlow(ft, 0, 0)
	if pf, _ = fw.SteerRx(&eth.Frame{Dst: r.nic.MAC(), Flow: ft}); pf != 0 {
		t.Fatalf("IOctoRFS update did not move flow, pf=%d", pf)
	}
}

func TestOctoFirmwareRSSFallbackCoversAllQueues(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	r.addRxQueue(0, 0, nil)
	r.addRxQueue(1, 1, nil)
	seen := map[int]bool{}
	for p := uint16(0); p < 200; p++ {
		pf, _ := fw.SteerRx(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(p)})
		seen[pf] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("RSS fallback did not spread over PFs: %v", seen)
	}
}

func TestRxDatapathDeliversAndCounts(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	interrupted := 0
	q := r.addRxQueue(0, 0, func() { interrupted++ })
	fw.ProgramFlow(flow(1), 0, 0)

	r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 3000, Packets: 2})
	r.eng.RunUntilIdle()

	if q.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", q.Pending())
	}
	if interrupted != 1 {
		t.Fatalf("interrupts = %d, want 1", interrupted)
	}
	batch := q.Poll(64)
	if len(batch) != 1 || batch[0].Payload != 3000 || batch[0].Packets != 2 {
		t.Fatalf("batch = %+v", batch)
	}
	if r.nic.PF(0).RxBytes() != 3000 {
		t.Fatalf("pf0 rx bytes = %v", r.nic.PF(0).RxBytes())
	}
	// Payload landed via DDIO on node 0 (local PF, local buffer).
	if batch[0].Buf.CachedAt() != 0 {
		t.Fatal("payload should be DDIO-resident on node 0")
	}
}

func TestRxNAPIGatingCoalescesInterrupts(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	interrupted := 0
	q := r.addRxQueue(0, 0, func() { interrupted++ })
	fw.ProgramFlow(flow(1), 0, 0)

	for i := 0; i < 10; i++ {
		r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 1500, Packets: 1})
	}
	r.eng.RunUntilIdle()
	if interrupted != 1 {
		t.Fatalf("interrupts = %d, want 1 (NAPI gating + coalescing)", interrupted)
	}
	if q.Pending() != 10 {
		t.Fatalf("pending = %d, want 10", q.Pending())
	}
	// Driver polls and completes; with the queue drained no new IRQ.
	q.Poll(64)
	q.NapiComplete()
	r.eng.RunUntilIdle()
	if interrupted != 1 {
		t.Fatalf("spurious interrupt after NapiComplete: %d", interrupted)
	}
}

func TestRxInterruptRefiresForLateArrivals(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	interrupted := 0
	q := r.addRxQueue(0, 0, func() { interrupted++ })
	fw.ProgramFlow(flow(1), 0, 0)

	r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 1500, Packets: 1})
	r.eng.RunUntilIdle()
	q.Poll(64)
	q.NapiComplete()
	r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 1500, Packets: 1})
	r.eng.RunUntilIdle()
	if interrupted != 2 {
		t.Fatalf("interrupts = %d, want 2", interrupted)
	}
}

func TestRxDropWhenRingFull(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	p := r.nic.PF(0)
	ring := device.NewRing(r.mem, "rxc", 0, 2, 64) // tiny ring
	bufs := []*memsys.Buffer{r.mem.NewBuffer("b", 0, 64*1024)}
	q := p.AddRxQueue(ring, bufs, 0, nil)
	fw.ProgramFlow(flow(1), 0, 0)
	for i := 0; i < 5; i++ {
		r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 1500, Packets: 1})
		r.eng.RunUntilIdle()
	}
	if q.Drops() == 0 || r.nic.RxDrops() == 0 {
		t.Fatal("expected drops with a 2-entry ring")
	}
}

func TestTxDatapathSendsFrame(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	q := r.addTxQueue(0, 0, nil)
	buf := r.mem.NewBuffer("payload", 0, 64*1024)
	r.mem.CPUWrite(0, buf, 64*1024)
	sent := false
	q.Post(&TxPacket{
		Frags:   []TxFrag{{Buf: buf, Bytes: 64 * 1024}},
		Payload: 64 * 1024,
		Packets: 44,
		Flow:    flow(1),
		Dst:     r.far.mac,
		OnSent:  func() { sent = true },
	})
	r.eng.RunUntilIdle()
	if len(r.far.got) != 1 {
		t.Fatalf("frames at far end = %d, want 1", len(r.far.got))
	}
	f := r.far.got[0]
	if f.Payload != 64*1024 || f.Packets != 44 {
		t.Fatalf("frame = %+v", f)
	}
	if f.Src != r.nic.MAC() {
		t.Fatal("octo firmware should stamp the single device MAC")
	}
	// Completion reaped by the driver.
	batch := q.Reap(64)
	if len(batch) != 1 {
		t.Fatalf("reaped = %d", len(batch))
	}
	if sent {
		t.Fatal("OnSent is the driver's to call after reaping")
	}
	if r.nic.PF(0).TxBytes() != 64*1024 {
		t.Fatalf("pf0 tx bytes = %v", r.nic.PF(0).TxBytes())
	}
}

func TestTxStandardFirmwareStampsPFMAC(t *testing.T) {
	r := newRig(t)
	fw := NewStandardFirmware(r.nic)
	r.nic.LoadFirmware(fw)
	q := r.addTxQueue(1, 1, nil)
	buf := r.mem.NewBuffer("p", 1, 1500)
	q.Post(&TxPacket{
		Frags: []TxFrag{{Buf: buf, Bytes: 1500}}, Payload: 1500, Packets: 1,
		Flow: flow(1), Dst: r.far.mac,
	})
	r.eng.RunUntilIdle()
	if r.far.got[0].Src != r.nic.PF(1).MAC() {
		t.Fatal("standard firmware should stamp the PF's own MAC")
	}
}

func TestIOctoSGReadsFragmentsLocally(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, true) // SG enabled
	r.nic.LoadFirmware(fw)
	q := r.addTxQueue(0, 0, nil)
	// A packet spanning both nodes (the sendfile case of §3.3).
	b0 := r.mem.NewBuffer("frag0", 0, 4096)
	b1 := r.mem.NewBuffer("frag1", 1, 4096)
	q.Post(&TxPacket{
		Frags:   []TxFrag{{Buf: b0, Bytes: 4096}, {Buf: b1, Bytes: 4096}},
		Payload: 8192, Packets: 6, Flow: flow(1), Dst: r.far.mac,
	})
	r.eng.RunUntilIdle()
	// With SG, the node-1 fragment is read by PF1: no QPI crossing.
	if got := r.mem.Fabric().Pipe(1, 0).DiscreteBytes(); got != 0 {
		t.Fatalf("IOctoSG let %v bytes cross the interconnect", got)
	}
	if r.nic.PF(1).Endpoint().DMAReadBytes() != 4096 {
		t.Fatalf("pf1 should have read the node-1 fragment, read %v", r.nic.PF(1).Endpoint().DMAReadBytes())
	}
}

func TestWithoutSGFragmentsCrossInterconnect(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false) // SG disabled, like the prototype
	r.nic.LoadFirmware(fw)
	q := r.addTxQueue(0, 0, nil)
	b1 := r.mem.NewBuffer("frag1", 1, 4096)
	q.Post(&TxPacket{
		Frags:   []TxFrag{{Buf: b1, Bytes: 4096}},
		Payload: 4096, Packets: 3, Flow: flow(1), Dst: r.far.mac,
	})
	r.eng.RunUntilIdle()
	if got := r.mem.Fabric().Pipe(1, 0).DiscreteBytes(); got == 0 {
		t.Fatal("remote fragment should cross QPI without IOctoSG")
	}
}

func TestZeroCoalesceDelayInterruptsImmediately(t *testing.T) {
	e := sim.NewEngine()
	srv := topology.DualBroadwell()
	ic := interconnect.New(e, srv)
	mem := memsys.New(e, srv, ic, memsys.DefaultParams())
	pcf := pcie.New(e, mem, pcie.DefaultParams())
	eps := pcf.AttachCard(pcie.CardConfig{Name: "cx5", Gen: pcie.Gen3, TotalLanes: 16, Wiring: pcie.WiringBifurcated, Nodes: []topology.NodeID{0, 1}})
	params := DefaultParams()
	params.CoalesceDelay = 0
	n := New(e, mem, "cx5", eps, params)
	fw := NewOctoFirmware(n, false)
	n.LoadFirmware(fw)
	far := &farEnd{mac: eth.MACFromInt(0xC11E)}
	n.AttachWire(eth.NewWire(e, eth.Wire100G("w"), n, far))
	var irqAt sim.Time
	ring := device.NewRing(mem, "rxc", 0, 1024, 64)
	bufs := []*memsys.Buffer{mem.NewBuffer("b", 0, 64*1024)}
	n.PF(0).AddRxQueue(ring, bufs, 0, func() { irqAt = e.Now() })
	fw.ProgramFlow(flow(1), 0, 0)
	n.Receive(&eth.Frame{Dst: n.MAC(), Flow: flow(1), Payload: 64, Packets: 1})
	e.RunUntilIdle()
	if irqAt == 0 {
		t.Fatal("no interrupt delivered")
	}
	if irqAt > sim.Time(5*time.Microsecond) {
		t.Fatalf("immediate interrupt at %v, too late", irqAt)
	}
}

func TestCoalesceDelayHoldsInterruptBack(t *testing.T) {
	r := newRig(t) // default 8us coalescing
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	var irqAt sim.Time
	r.addRxQueue(0, 0, func() { irqAt = r.eng.Now() })
	fw.ProgramFlow(flow(1), 0, 0)
	r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 64, Packets: 1})
	r.eng.RunUntilIdle()
	if irqAt < sim.Time(8*time.Microsecond) {
		t.Fatalf("interrupt at %v, want held back >= 8us", irqAt)
	}
}

func TestSRIOVVFSteering(t *testing.T) {
	r := newRig(t)
	fw := NewStandardFirmware(r.nic)
	r.nic.LoadFirmware(fw)
	pfQ := r.addRxQueue(0, 0, nil) // the PF's own queue
	vfQ := r.addRxQueue(0, 0, nil) // will belong to the VF
	vf := r.nic.PF(0).AddVF(eth.MACFromInt(0xBEEF))
	vf.AssignQueue(vfQ)

	// Frames to the VF MAC land on the VF's queue; frames to the PF MAC
	// do not.
	r.nic.Receive(&eth.Frame{Dst: vf.MAC(), Flow: flow(1), Payload: 1500, Packets: 1})
	r.nic.Receive(&eth.Frame{Dst: r.nic.PF(0).MAC(), Flow: flow(2), Payload: 1500, Packets: 1})
	r.eng.RunUntilIdle()
	if vfQ.Pending() != 1 {
		t.Fatalf("vf queue pending = %d, want 1", vfQ.Pending())
	}
	if pfQ.Pending() != 1 {
		t.Fatalf("pf queue pending = %d, want 1", pfQ.Pending())
	}

	// Reconfigure the VF MAC: steering follows.
	vf.SetMAC(eth.MACFromInt(0xCAFE))
	r.nic.Receive(&eth.Frame{Dst: eth.MACFromInt(0xCAFE), Flow: flow(3), Payload: 64, Packets: 1})
	r.eng.RunUntilIdle()
	if vfQ.Pending() != 2 {
		t.Fatalf("vf queue pending = %d after MAC change, want 2", vfQ.Pending())
	}
}

func TestVFValidation(t *testing.T) {
	r := newRig(t)
	mac := eth.MACFromInt(77)
	r.nic.PF(0).AddVF(mac)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate VF MAC should panic")
			}
		}()
		r.nic.PF(0).AddVF(mac)
	}()
	// A queue from another PF cannot be assigned.
	vf := r.nic.PF(0).AddVF(eth.MACFromInt(78))
	q1 := r.addRxQueue(1, 1, nil)
	defer func() {
		if recover() == nil {
			t.Error("cross-PF queue assignment should panic")
		}
	}()
	vf.AssignQueue(q1)
}

// TestPolledRxSuppressesInterruptsAndCoalesce: a queue in polled mode
// delivers completions to the ring but never interrupts — the pending
// coalesce timer is cancelled on entry and no new one is armed.
func TestPolledRxSuppressesInterruptsAndCoalesce(t *testing.T) {
	r := newRig(t) // default 8us coalescing
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	interrupted := 0
	q := r.addRxQueue(0, 0, func() { interrupted++ })
	fw.ProgramFlow(flow(1), 0, 0)

	// Arm the coalesce timer with one arrival, then enter polled mode
	// before it expires: the window must die with the mode switch.
	r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 64, Packets: 1})
	q.SetPolled(true)
	if !q.Polled() {
		t.Fatal("SetPolled(true) did not stick")
	}
	for i := 0; i < 5; i++ {
		r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 1500, Packets: 1})
	}
	r.eng.RunUntilIdle()
	if interrupted != 0 {
		t.Fatalf("interrupts = %d in polled mode, want 0", interrupted)
	}
	if q.Pending() != 6 {
		t.Fatalf("pending = %d, want 6 (ring still fills under polling)", q.Pending())
	}
	if got := len(q.Poll(64)); got != 6 {
		t.Fatalf("Poll drained %d, want 6", got)
	}
}

// TestPolledRxExitFiresExactlyOnce: completions that landed during a
// polled window fire the interrupt exactly once when interrupts are
// re-enabled, and the NAPI re-arm cycle is undisturbed afterwards.
func TestPolledRxExitFiresExactlyOnce(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	interrupted := 0
	q := r.addRxQueue(0, 0, func() { interrupted++ })
	fw.ProgramFlow(flow(1), 0, 0)

	q.SetPolled(true)
	for i := 0; i < 4; i++ {
		r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 1500, Packets: 1})
	}
	r.eng.RunUntilIdle()
	if interrupted != 0 {
		t.Fatalf("interrupts = %d before exit, want 0", interrupted)
	}
	q.SetPolled(false)
	r.eng.RunUntilIdle()
	if interrupted != 1 {
		t.Fatalf("interrupts = %d after leaving polled mode, want exactly 1", interrupted)
	}
	// The normal NAPI cycle resumes: drain, complete, next arrival
	// refires.
	q.Poll(64)
	q.NapiComplete()
	r.eng.RunUntilIdle()
	if interrupted != 1 {
		t.Fatalf("spurious interrupt after NapiComplete: %d", interrupted)
	}
	r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 1500, Packets: 1})
	r.eng.RunUntilIdle()
	if interrupted != 2 {
		t.Fatalf("interrupts = %d after fresh arrival, want 2 (re-arm undisturbed)", interrupted)
	}
}

// TestPolledRxExitWithEmptyRingStaysQuiet: leaving polled mode with
// nothing pending must not invent an interrupt.
func TestPolledRxExitWithEmptyRingStaysQuiet(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	interrupted := 0
	q := r.addRxQueue(0, 0, func() { interrupted++ })
	fw.ProgramFlow(flow(1), 0, 0)

	q.SetPolled(true)
	r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 1500, Packets: 1})
	r.eng.RunUntilIdle()
	q.Poll(64) // drained inside the polled window
	q.SetPolled(false)
	r.eng.RunUntilIdle()
	if interrupted != 0 {
		t.Fatalf("interrupts = %d after clean polled exit, want 0", interrupted)
	}
}

// TestPolledTxSuppressesAndRefiresOnce: the Tx mirror — completions
// during a polled window are reapable without interrupts, and
// re-enabling fires once for what is still unreaped.
func TestPolledTxSuppressesAndRefiresOnce(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	interrupted := 0
	q := r.addTxQueue(0, 0, func() { interrupted++ })
	buf := r.mem.NewBuffer("payload", 0, 64*1024)
	r.mem.CPUWrite(0, buf, 64*1024)

	q.SetPolled(true)
	for i := 0; i < 2; i++ {
		q.Post(&TxPacket{
			Frags: []TxFrag{{Buf: buf, Bytes: 1500}}, Payload: 1500, Packets: 1,
			Flow: flow(1), Dst: r.far.mac,
		})
	}
	r.eng.RunUntilIdle()
	if interrupted != 0 {
		t.Fatalf("tx interrupts = %d in polled mode, want 0", interrupted)
	}
	q.SetPolled(false)
	r.eng.RunUntilIdle()
	if interrupted != 1 {
		t.Fatalf("tx interrupts = %d after leaving polled mode, want exactly 1", interrupted)
	}
	if got := len(q.Reap(64)); got != 2 {
		t.Fatalf("reaped %d completions, want 2", got)
	}
}

// TestPolledModeLeavesZeroCoalesceUntouched: after a polled window on a
// CoalesceDelay=0 NIC, the immediate-interrupt behavior is exactly as
// before the window — the polled flag must not linger in the timing
// decision.
func TestPolledModeLeavesZeroCoalesceUntouched(t *testing.T) {
	e := sim.NewEngine()
	srv := topology.DualBroadwell()
	ic := interconnect.New(e, srv)
	mem := memsys.New(e, srv, ic, memsys.DefaultParams())
	pcf := pcie.New(e, mem, pcie.DefaultParams())
	eps := pcf.AttachCard(pcie.CardConfig{Name: "cx5", Gen: pcie.Gen3, TotalLanes: 16, Wiring: pcie.WiringBifurcated, Nodes: []topology.NodeID{0, 1}})
	params := DefaultParams()
	params.CoalesceDelay = 0
	n := New(e, mem, "cx5", eps, params)
	fw := NewOctoFirmware(n, false)
	n.LoadFirmware(fw)
	far := &farEnd{mac: eth.MACFromInt(0xC11E)}
	n.AttachWire(eth.NewWire(e, eth.Wire100G("w"), n, far))
	var irqAt sim.Time
	ring := device.NewRing(mem, "rxc", 0, 1024, 64)
	bufs := []*memsys.Buffer{mem.NewBuffer("b", 0, 64*1024)}
	q := n.PF(0).AddRxQueue(ring, bufs, 0, func() { irqAt = e.Now() })
	fw.ProgramFlow(flow(1), 0, 0)

	q.SetPolled(true)
	n.Receive(&eth.Frame{Dst: n.MAC(), Flow: flow(1), Payload: 64, Packets: 1})
	e.RunUntilIdle()
	if irqAt != 0 {
		t.Fatal("polled window interrupted on a zero-coalesce NIC")
	}
	q.Poll(64)
	q.SetPolled(false)
	e.RunUntilIdle()

	before := e.Now()
	n.Receive(&eth.Frame{Dst: n.MAC(), Flow: flow(1), Payload: 64, Packets: 1})
	e.RunUntilIdle()
	if irqAt <= before {
		t.Fatal("no interrupt after the polled window ended")
	}
	if irqAt-before > sim.Time(5*time.Microsecond) {
		t.Fatalf("post-window interrupt took %v, want immediate (CoalesceDelay=0)", irqAt-before)
	}
}
