package nic

import (
	"ioctopus/internal/eth"
)

// Firmware is the device's steering brain: it decides which PF and
// queue an arriving frame lands on and exposes the host-facing flow
// programming API. The two implementations are the point of the paper:
// StandardFirmware decomposes the device into per-PF logical NICs,
// OctoFirmware unifies the PFs behind one MAC with 5-tuple steering.
type Firmware interface {
	// Name identifies the firmware build.
	Name() string
	// SteerRx maps an arriving frame to (pf, rxQueue).
	SteerRx(f *eth.Frame) (pf, queue int)
	// ProgramFlow installs or updates a flow-steering rule. Under
	// standard firmware pf selects which per-PF ARFS table is written
	// and arriving traffic reaches that table only if the MPFS (MAC
	// steering) already chose that PF; under octo firmware the rule is
	// the IOctoRFS mapping itself.
	ProgramFlow(ft eth.FiveTuple, pf, queue int)
	// RemoveFlow deletes a rule (driver rule expiry).
	RemoveFlow(ft eth.FiveTuple)
	// FlowCount returns installed rule count.
	FlowCount() int
	// SingleMAC reports whether the device presents one MAC for all
	// PFs (octo) or one MAC per PF (standard).
	SingleMAC() bool
	// SGEnabled reports whether IOctoSG fragment steering is active.
	SGEnabled() bool
	// Reset wipes the steering tables — a firmware-level fault, not an
	// API the host calls. Installed flow rules vanish and SteerRx
	// degrades to its fallback (RSS / MAC-only) until the host
	// reprograms them; link state, queues and DMA state survive.
	Reset()
}

// StandardFirmware is the shipping multi-PF firmware: the integrated
// multi-PF Ethernet switch (MPFS) steers by destination MAC, so each PF
// is a separate logical NIC, and each PF has a private ARFS table
// mapping flows to its queues (§2.3, §4.1).
type StandardFirmware struct {
	nic  *NIC
	arfs []map[eth.FiveTuple]int // per-PF flow -> rx queue
}

// NewStandardFirmware builds the default firmware for the NIC.
func NewStandardFirmware(n *NIC) *StandardFirmware {
	fw := &StandardFirmware{nic: n}
	for range n.pfs {
		fw.arfs = append(fw.arfs, make(map[eth.FiveTuple]int))
	}
	return fw
}

// Name implements Firmware.
func (fw *StandardFirmware) Name() string { return "standard" }

// SingleMAC implements Firmware: each PF has its own MAC.
func (fw *StandardFirmware) SingleMAC() bool { return false }

// SGEnabled implements Firmware: no fragment steering.
func (fw *StandardFirmware) SGEnabled() bool { return false }

// SteerRx implements Firmware: MPFS by destination MAC — PF MACs and
// SR-IOV VF MACs — then the PF's ARFS table (RSS hash fallback).
func (fw *StandardFirmware) SteerRx(f *eth.Frame) (int, int) {
	if pf, q, ok := fw.steerVF(f); ok {
		return pf, q
	}
	pf := -1
	for i, p := range fw.nic.pfs {
		if p.mac == f.Dst {
			pf = i
			break
		}
	}
	if pf < 0 {
		// Unknown MAC: the MPFS floods to PF0 (covers broadcast and the
		// port's primary address).
		pf = 0
	}
	p := fw.nic.pfs[pf]
	if len(p.rxQueues) == 0 {
		return pf, -1
	}
	if q, ok := fw.arfs[pf][f.Flow]; ok && q < len(p.rxQueues) {
		return pf, q
	}
	// RSS fallback over the PF's own queues; VF-owned queues are not in
	// the PF's indirection table.
	native := p.nativeQueues()
	if len(native) == 0 {
		return pf, -1
	}
	return pf, native[int(f.Flow.Hash())%len(native)]
}

// ProgramFlow implements Firmware: writes the PF-private ARFS table.
func (fw *StandardFirmware) ProgramFlow(ft eth.FiveTuple, pf, queue int) {
	if pf < 0 || pf >= len(fw.arfs) {
		return
	}
	fw.arfs[pf][ft] = queue
}

// RemoveFlow implements Firmware.
func (fw *StandardFirmware) RemoveFlow(ft eth.FiveTuple) {
	for _, t := range fw.arfs {
		delete(t, ft)
	}
}

// FlowCount implements Firmware.
func (fw *StandardFirmware) FlowCount() int {
	n := 0
	for _, t := range fw.arfs {
		n += len(t)
	}
	return n
}

// Reset implements Firmware: every PF's ARFS table is wiped; the MPFS
// MAC and VF steering is burned-in switch configuration and survives.
func (fw *StandardFirmware) Reset() {
	for i := range fw.arfs {
		fw.arfs[i] = make(map[eth.FiveTuple]int)
	}
}

// pfQueue is an IOctoRFS table entry.
type pfQueue struct {
	pf, queue int
}

// OctoFirmware is the IOctopus firmware (§4.1): the MPFS is modified to
// map packets to a PF by flow 5-tuple instead of MAC (IOctoRFS), the
// device exposes a single MAC and port, and — beyond the paper's
// prototype — IOctoSG can steer individual Tx fragments through the PF
// local to their memory.
type OctoFirmware struct {
	nic   *NIC
	table map[eth.FiveTuple]pfQueue
	sg    bool
}

// NewOctoFirmware builds the IOctopus firmware. enableSG turns on the
// IOctoSG extension (the paper's prototype left it unimplemented).
func NewOctoFirmware(n *NIC, enableSG bool) *OctoFirmware {
	return &OctoFirmware{nic: n, table: make(map[eth.FiveTuple]pfQueue), sg: enableSG}
}

// Name implements Firmware.
func (fw *OctoFirmware) Name() string { return "ioctopus" }

// SingleMAC implements Firmware: the octoNIC is one logical entity.
func (fw *OctoFirmware) SingleMAC() bool { return true }

// SGEnabled implements Firmware.
func (fw *OctoFirmware) SGEnabled() bool { return fw.sg }

// SteerRx implements Firmware: IOctoRFS steering by 5-tuple, falling
// back to RSS across every queue of every PF for unprogrammed flows.
func (fw *OctoFirmware) SteerRx(f *eth.Frame) (int, int) {
	if e, ok := fw.table[f.Flow]; ok {
		return e.pf, e.queue
	}
	// RSS over link-up PFs only: the MPFS knows port state and does not
	// hash unprogrammed flows onto a dead limb. With every link up (the
	// only case outside fault injection) the arithmetic is unchanged.
	var total int
	for _, p := range fw.nic.pfs {
		if p.linkUp {
			total += len(p.rxQueues)
		}
	}
	if total == 0 {
		return 0, -1
	}
	idx := int(f.Flow.Hash()) % total
	for i, p := range fw.nic.pfs {
		if !p.linkUp {
			continue
		}
		if idx < len(p.rxQueues) {
			return i, idx
		}
		idx -= len(p.rxQueues)
	}
	return 0, -1
}

// ProgramFlow implements Firmware: the IOctoRFS update the octoNIC
// driver issues from the ARFS callback.
func (fw *OctoFirmware) ProgramFlow(ft eth.FiveTuple, pf, queue int) {
	fw.table[ft] = pfQueue{pf: pf, queue: queue}
}

// RemoveFlow implements Firmware.
func (fw *OctoFirmware) RemoveFlow(ft eth.FiveTuple) { delete(fw.table, ft) }

// FlowCount implements Firmware.
func (fw *OctoFirmware) FlowCount() int { return len(fw.table) }

// Reset implements Firmware: the IOctoRFS table is wiped and every flow
// degrades to the link-up RSS fallback until the driver replays its
// rule journal.
func (fw *OctoFirmware) Reset() { fw.table = make(map[eth.FiveTuple]pfQueue) }
