package nic

import (
	"testing"

	"ioctopus/internal/device"
	"ioctopus/internal/eth"
	"ioctopus/internal/memsys"
)

// postAndReap drives one TxPacket through the full Tx datapath and
// returns it at the driver's recycle point (after Reap).
func postAndReap(t *testing.T, r *rig, q *TxQueue) *TxPacket {
	t.Helper()
	buf := r.mem.NewBuffer("payload", 0, 64*1024)
	pkt := r.nic.LeaseTxPacket()
	pkt.Frags = append(pkt.Frags, TxFrag{Buf: buf, Bytes: 64 * 1024})
	pkt.Payload = 64 * 1024
	pkt.Packets = 44
	pkt.Flow = flow(1)
	pkt.Dst = r.far.mac
	q.Post(pkt)
	r.eng.RunUntilIdle()
	batch := q.Reap(64)
	if len(batch) != 1 {
		t.Fatalf("reaped = %d, want 1", len(batch))
	}
	q.NapiComplete()
	return batch[0]
}

func TestTxPoolRecyclesThroughDatapath(t *testing.T) {
	r := newRig(t)
	r.nic.LoadFirmware(NewOctoFirmware(r.nic, false))
	q := r.addTxQueue(0, 0, nil)

	first := postAndReap(t, r, q)
	gen := first.Generation()
	fragPtr := &first.Frags[0]
	first.Recycle()
	if st := r.nic.TxPoolStats(); st.Misses != 1 || st.Recycled != 1 || st.Live != 0 {
		t.Fatalf("stats after first recycle = %+v", st)
	}

	second := postAndReap(t, r, q)
	if second != first {
		t.Fatal("pool should hand back the recycled packet")
	}
	if second.Generation() != gen+1 {
		t.Fatalf("generation = %d, want %d", second.Generation(), gen+1)
	}
	if &second.Frags[0] != fragPtr {
		t.Fatal("fragment backing array should survive the recycle")
	}
	if st := r.nic.TxPoolStats(); st.Hits != 1 || st.Live != 1 {
		t.Fatalf("stats after reuse = %+v", st)
	}
}

func TestRxPoolRecyclesThroughDatapath(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	q := r.addRxQueue(0, 0, nil)
	fw.ProgramFlow(flow(1), 0, 0)

	deliver := func() *RxPacket {
		r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 1500, Packets: 1})
		r.eng.RunUntilIdle()
		batch := q.Poll(64)
		q.NapiComplete()
		if len(batch) != 1 {
			t.Fatalf("polled = %d, want 1", len(batch))
		}
		return batch[0]
	}

	first := deliver()
	gen := first.Generation()
	first.Recycle()
	if st := r.nic.RxPoolStats(); st.Misses != 1 || st.Recycled != 1 || st.Live != 0 {
		t.Fatalf("stats after first recycle = %+v", st)
	}

	second := deliver()
	if second != first {
		t.Fatal("pool should hand back the recycled packet")
	}
	if second.Generation() != gen+1 {
		t.Fatalf("generation = %d, want %d", second.Generation(), gen+1)
	}
	if st := r.nic.RxPoolStats(); st.Hits != 1 || st.Live != 1 {
		t.Fatalf("stats after reuse = %+v", st)
	}
}

func TestRxDoubleRecyclePanics(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	q := r.addRxQueue(0, 0, nil)
	fw.ProgramFlow(flow(1), 0, 0)
	r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 1500, Packets: 1})
	r.eng.RunUntilIdle()
	rxp := q.Poll(64)[0]
	rxp.Recycle()
	defer func() {
		if recover() == nil {
			t.Error("second Recycle should panic")
		}
	}()
	rxp.Recycle()
}

func TestTxDoubleRecyclePanics(t *testing.T) {
	r := newRig(t)
	r.nic.LoadFirmware(NewOctoFirmware(r.nic, false))
	q := r.addTxQueue(0, 0, nil)
	pkt := postAndReap(t, r, q)
	pkt.Recycle()
	defer func() {
		if recover() == nil {
			t.Error("second Recycle should panic")
		}
	}()
	pkt.Recycle()
}

// TestUnpooledRecycleIsNoop: packets built by hand (tests, drop-path
// fakes) have no pool; Recycle must be a harmless no-op, repeatedly.
func TestUnpooledRecycleIsNoop(t *testing.T) {
	rxp := &RxPacket{Payload: 1}
	rxp.Recycle()
	rxp.Recycle()
	pkt := &TxPacket{Payload: 1}
	pkt.Recycle()
	pkt.Recycle()
}

// TestSetPoolingDisablesReuse: with pooling off, every lease allocates
// fresh, Recycle is a no-op and the counters stay silent — the A/B
// configuration the byte-identity regression test runs under.
func TestSetPoolingDisablesReuse(t *testing.T) {
	SetPooling(false)
	defer SetPooling(true)
	r := newRig(t)
	r.nic.LoadFirmware(NewOctoFirmware(r.nic, false))
	q := r.addTxQueue(0, 0, nil)
	first := postAndReap(t, r, q)
	first.Recycle()
	second := postAndReap(t, r, q)
	if second == first {
		t.Fatal("unpooled leases must be fresh objects")
	}
	if st := r.nic.TxPoolStats(); st != (PoolStats{}) {
		t.Fatalf("unpooled stats should stay zero, got %+v", st)
	}
}

// TestRxRingFullDropsLeaveNoLiveLeases: frames that overflow a full
// completion ring are dropped before a pool lease is ever taken, so a
// storm of ring-full drops cannot leak pooled packets. After polling
// and recycling the survivors the live gauge must read zero, with each
// delivered packet recycled exactly once.
func TestRxRingFullDropsLeaveNoLiveLeases(t *testing.T) {
	r := newRig(t)
	fw := NewOctoFirmware(r.nic, false)
	r.nic.LoadFirmware(fw)
	p := r.nic.PF(0)
	ring := device.NewRing(r.mem, "rxc", 0, 2, 64) // tiny ring
	bufs := []*memsys.Buffer{r.mem.NewBuffer("b", 0, 64*1024)}
	q := p.AddRxQueue(ring, bufs, 0, nil)
	fw.ProgramFlow(flow(1), 0, 0)
	for i := 0; i < 6; i++ {
		r.nic.Receive(&eth.Frame{Dst: r.nic.MAC(), Flow: flow(1), Payload: 1500, Packets: 1})
		r.eng.RunUntilIdle()
	}
	if q.Drops() == 0 {
		t.Fatal("expected ring-full drops")
	}
	st := r.nic.RxPoolStats()
	if st.Live != q.Pending() {
		t.Fatalf("live leases = %d, want one per pending packet (%d): dropped frames must not lease", st.Live, q.Pending())
	}
	batch := q.Poll(64)
	q.NapiComplete()
	for _, rxp := range batch {
		rxp.Recycle()
	}
	st = r.nic.RxPoolStats()
	if st.Live != 0 {
		t.Fatalf("live leases = %d after recycle, want 0", st.Live)
	}
	if st.Recycled != uint64(len(batch)) {
		t.Fatalf("recycled = %d, want exactly %d (once per delivered packet)", st.Recycled, len(batch))
	}
}
