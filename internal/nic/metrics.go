package nic

import (
	"fmt"

	"ioctopus/internal/metrics"
)

// RegisterMetrics wires the device into an observability registry:
// port-level frame counters, the active firmware's steering-table
// occupancy, and per-PF datapath counters (nested under "pf<i>").
func (n *NIC) RegisterMetrics(r metrics.Registrar) {
	r.Counter("rx_frames", func() float64 { return float64(n.rxFrames) })
	r.Counter("rx_packets", func() float64 { return float64(n.rxPackets) })
	r.Counter("rx_drops", func() float64 { return float64(n.rxDrops) })
	// The firmware can be reflashed mid-run; probe through the field.
	r.Gauge("flow_rules", func() float64 {
		if n.fw == nil {
			return 0
		}
		return float64(n.fw.FlowCount())
	})
	registerPool(r.Scope("pool/rx"), func() PoolStats { return n.rxPool.stats })
	registerPool(r.Scope("pool/tx"), func() PoolStats { return n.txPool.stats })
	registerPool(r.Scope("pool/frame"), func() PoolStats {
		s := n.frames.Stats()
		return PoolStats{Hits: s.Hits, Misses: s.Misses, Recycled: s.Recycled, Live: s.Live}
	})
	for _, pf := range n.pfs {
		pf.RegisterMetrics(r.Scope(fmt.Sprintf("pf%d", pf.index)))
	}
}

// registerPool wires one packet pool's counters/gauges: pool/<kind>/
// {hits,misses,recycled} counters plus the live-lease gauge.
func registerPool(r metrics.Registrar, stats func() PoolStats) {
	r.Counter("hits", func() float64 { return float64(stats().Hits) })
	r.Counter("misses", func() float64 { return float64(stats().Misses) })
	r.Counter("recycled", func() float64 { return float64(stats().Recycled) })
	r.Gauge("live", func() float64 { return float64(stats().Live) })
}

// RegisterMetrics registers one PF's byte counters plus its queue-set
// aggregates ("rx" and "tx" scopes). Queue counters are summed across
// the PF's queues at probe time, so queues added after registration are
// still observed.
func (p *PF) RegisterMetrics(r metrics.Registrar) {
	r.Counter("rx_bytes", func() float64 { return p.rxBytes })
	r.Counter("tx_bytes", func() float64 { return p.txBytes })
	r.Gauge("link_up", func() float64 {
		if p.linkUp {
			return 1
		}
		return 0
	})
	r.Counter("rx_link_drops", func() float64 { return float64(p.rxLinkDrops) })
	r.Counter("tx_link_drops", func() float64 { return float64(p.txLinkDrops) })

	rx := r.Scope("rx")
	rx.Gauge("queues", func() float64 { return float64(len(p.rxQueues)) })
	rx.Counter("delivered", func() float64 {
		var s uint64
		for _, q := range p.rxQueues {
			s += q.delivered
		}
		return float64(s)
	})
	rx.Counter("drops", func() float64 {
		var s uint64
		for _, q := range p.rxQueues {
			s += q.drops
		}
		return float64(s)
	})
	rx.Counter("interrupts", func() float64 {
		var s uint64
		for _, q := range p.rxQueues {
			s += q.interrupts
		}
		return float64(s)
	})
	rx.Gauge("pending", func() float64 {
		var s int
		for _, q := range p.rxQueues {
			s += q.Pending()
		}
		return float64(s)
	})

	tx := r.Scope("tx")
	tx.Gauge("queues", func() float64 { return float64(len(p.txQueues)) })
	tx.Counter("posted", func() float64 {
		var s uint64
		for _, q := range p.txQueues {
			s += q.posted
		}
		return float64(s)
	})
	tx.Counter("sent", func() float64 {
		var s uint64
		for _, q := range p.txQueues {
			s += q.sent
		}
		return float64(s)
	})
	tx.Counter("interrupts", func() float64 {
		var s uint64
		for _, q := range p.txQueues {
			s += q.interrupts
		}
		return float64(s)
	})
	tx.Gauge("in_flight", func() float64 {
		var s int
		for _, q := range p.txQueues {
			s += q.InFlight()
		}
		return float64(s)
	})
}
