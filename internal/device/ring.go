// Package device provides the building blocks shared by DMA devices
// (the NIC and the NVMe controller): descriptor rings and completion
// queues whose entries live in host memory and are touched by both the
// driver (CPU accesses) and the device (DMA), so that every NUDMA effect
// on the datapath's metadata — the ~80 ns completion-entry miss of
// §5.1.1 in particular — falls out of the memory-system model.
package device

import (
	"fmt"
	"time"

	"ioctopus/internal/memsys"
	"ioctopus/internal/pcie"
	"ioctopus/internal/topology"
)

// Ring is a cyclic descriptor array in host DRAM with single-producer
// single-consumer index management. The backing memsys.Buffer carries
// cache residency, so host reads after device writes cost what the
// paper measures.
type Ring struct {
	name      string
	mem       *memsys.System
	buf       *memsys.Buffer
	entries   int
	entrySize int64

	head  uint64 // produced
	tail  uint64 // consumed
	slots []any  // metadata carried alongside each entry
}

// NewRing allocates a ring of entries*entrySize bytes homed on the given
// node.
func NewRing(mem *memsys.System, name string, home topology.NodeID, entries int, entrySize int64) *Ring {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("device: ring %q size %d must be a power of two", name, entries))
	}
	if entrySize <= 0 {
		panic(fmt.Sprintf("device: ring %q needs positive entry size", name))
	}
	// Ring entries are distinct cache lines consumed one by one: hits
	// scale with how much of the ring is resident, so a remote DMA
	// write that invalidates the region costs the host one miss per
	// entry read — the §5.1.1 per-packet completion miss.
	return &Ring{
		name:      name,
		mem:       mem,
		buf:       mem.NewBuffer(name, home, int64(entries)*entrySize).SetRandomAccess(true),
		entries:   entries,
		entrySize: entrySize,
		slots:     make([]any, entries),
	}
}

// Name returns the ring's name.
func (r *Ring) Name() string { return r.name }

// Buffer returns the backing memory region.
func (r *Ring) Buffer() *memsys.Buffer { return r.buf }

// EntrySize returns the bytes per descriptor.
func (r *Ring) EntrySize() int64 { return r.entrySize }

// Capacity returns the number of entries.
func (r *Ring) Capacity() int { return r.entries }

// Len returns the number of in-flight (produced, unconsumed) entries.
func (r *Ring) Len() int { return int(r.head - r.tail) }

// Full reports whether no entries are free.
func (r *Ring) Full() bool { return r.Len() >= r.entries }

// Empty reports whether no entries are pending.
func (r *Ring) Empty() bool { return r.head == r.tail }

// Push produces one entry carrying v and returns its slot index.
func (r *Ring) Push(v any) int {
	if r.Full() {
		panic(fmt.Sprintf("device: ring %q overflow", r.name))
	}
	idx := int(r.head) & (r.entries - 1)
	r.slots[idx] = v
	r.head++
	return idx
}

// Pop consumes the oldest entry and returns its metadata.
func (r *Ring) Pop() (v any, ok bool) {
	if r.Empty() {
		return nil, false
	}
	idx := int(r.tail) & (r.entries - 1)
	v = r.slots[idx]
	r.slots[idx] = nil
	r.tail++
	return v, true
}

// Peek returns the oldest entry without consuming it.
func (r *Ring) Peek() (v any, ok bool) {
	if r.Empty() {
		return nil, false
	}
	return r.slots[int(r.tail)&(r.entries-1)], true
}

// HostWrite charges the CPU cost of a core on `node` writing n
// descriptor entries (posting requests).
func (r *Ring) HostWrite(node topology.NodeID, n int) time.Duration {
	return r.mem.CPUWrite(node, r.buf, int64(n)*r.entrySize)
}

// HostRead charges the CPU cost of reading n entries one by one — each
// freshly device-written entry is its own cache line, so per-entry
// misses accumulate exactly as they do on hardware.
func (r *Ring) HostRead(node topology.NodeID, n int) time.Duration {
	var total time.Duration
	for i := 0; i < n; i++ {
		total += r.mem.CPURead(node, r.buf, r.entrySize)
	}
	return total
}

// DeviceWrite DMA-writes n entries through the endpoint (completion
// writeback) and schedules done when they are observable.
func (r *Ring) DeviceWrite(ep *pcie.Endpoint, n int, done func()) {
	ep.DMAWrite(r.buf, int64(n)*r.entrySize, done)
}

// DeviceRead DMA-reads n entries through the endpoint (descriptor
// fetch) and schedules done when they arrive.
func (r *Ring) DeviceRead(ep *pcie.Endpoint, n int, done func()) {
	ep.DMARead(r.buf, int64(n)*r.entrySize, done)
}
