package device

import (
	"testing"
	"testing/quick"

	"ioctopus/internal/interconnect"
	"ioctopus/internal/memsys"
	"ioctopus/internal/pcie"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

func newRingRig(t *testing.T) (*sim.Engine, *memsys.System, *pcie.Fabric) {
	t.Helper()
	e := sim.NewEngine()
	srv := topology.DualBroadwell()
	fab := interconnect.New(e, srv)
	mem := memsys.New(e, srv, fab, memsys.DefaultParams())
	return e, mem, pcie.New(e, mem, pcie.DefaultParams())
}

func TestRingIndexManagement(t *testing.T) {
	_, mem, _ := newRingRig(t)
	r := NewRing(mem, "ring", 0, 8, 64)
	if !r.Empty() || r.Full() || r.Len() != 0 || r.Capacity() != 8 {
		t.Fatal("fresh ring state wrong")
	}
	for i := 0; i < 8; i++ {
		r.Push(i)
	}
	if !r.Full() || r.Len() != 8 {
		t.Fatal("full ring state wrong")
	}
	for i := 0; i < 8; i++ {
		v, ok := r.Pop()
		if !ok || v.(int) != i {
			t.Fatalf("pop %d = %v/%v", i, v, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop on empty ring should fail")
	}
}

func TestRingWrapsAround(t *testing.T) {
	_, mem, _ := newRingRig(t)
	r := NewRing(mem, "ring", 0, 4, 64)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			r.Push(round*10 + i)
		}
		for i := 0; i < 3; i++ {
			v, _ := r.Pop()
			if v.(int) != round*10+i {
				t.Fatalf("round %d: got %v", round, v)
			}
		}
	}
}

func TestRingOverflowPanics(t *testing.T) {
	_, mem, _ := newRingRig(t)
	r := NewRing(mem, "ring", 0, 2, 64)
	r.Push(1)
	r.Push(2)
	defer func() {
		if recover() == nil {
			t.Error("overflow should panic")
		}
	}()
	r.Push(3)
}

func TestRingValidation(t *testing.T) {
	_, mem, _ := newRingRig(t)
	for _, bad := range []struct {
		entries int
		size    int64
	}{{0, 64}, {3, 64}, {8, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("entries=%d size=%d should panic", bad.entries, bad.size)
				}
			}()
			NewRing(mem, "bad", 0, bad.entries, bad.size)
		}()
	}
}

func TestRingPeek(t *testing.T) {
	_, mem, _ := newRingRig(t)
	r := NewRing(mem, "ring", 0, 4, 64)
	if _, ok := r.Peek(); ok {
		t.Fatal("peek on empty should fail")
	}
	r.Push("a")
	r.Push("b")
	if v, _ := r.Peek(); v != "a" {
		t.Fatalf("peek = %v", v)
	}
	if r.Len() != 2 {
		t.Fatal("peek must not consume")
	}
}

func TestRingHostAccessCosts(t *testing.T) {
	_, mem, _ := newRingRig(t)
	r := NewRing(mem, "ring", 0, 1024, 64)
	// First write misses (RFO); after residency it is cheap.
	first := r.HostWrite(0, 16)
	second := r.HostWrite(0, 16)
	if second >= first {
		t.Fatalf("warm write (%v) should be cheaper than cold (%v)", second, first)
	}
	// Remote reads of a locally-dirty ring pay cache-to-cache/DRAM.
	local := r.HostRead(0, 4)
	remote := r.HostRead(1, 4)
	if remote <= local {
		t.Fatalf("remote read (%v) should cost more than local (%v)", remote, local)
	}
}

func TestRingDeviceAccessRoundTrip(t *testing.T) {
	e, mem, pc := newRingRig(t)
	ep := pc.NewEndpoint("dev", 0, pcie.Gen3, 8)
	r := NewRing(mem, "cq", 0, 1024, 64)
	done := 0
	r.DeviceWrite(ep, 16, func() { done++ })
	r.DeviceRead(ep, 16, func() { done++ })
	e.RunUntilIdle()
	if done != 2 {
		t.Fatalf("device accesses completed = %d", done)
	}
	if ep.DMAWriteBytes() != 16*64 || ep.DMAReadBytes() != 16*64 {
		t.Fatalf("bytes = %v/%v", ep.DMAWriteBytes(), ep.DMAReadBytes())
	}
}

func TestRingCompletionMissAfterRemoteWrite(t *testing.T) {
	// The §5.1.1 mechanism end to end at ring granularity: a remote
	// device write invalidates the ring; per-entry host reads then miss.
	e, mem, pc := newRingRig(t)
	remoteEp := pc.NewEndpoint("dev", 1, pcie.Gen3, 8) // device on node 1
	r := NewRing(mem, "cq", 0, 1024, 64)               // ring on node 0
	r.HostRead(0, 1024)                                // warm the ring
	warm := r.HostRead(0, 32)
	doneCh := false
	r.DeviceWrite(remoteEp, 1024, func() { doneCh = true })
	e.RunUntilIdle()
	if !doneCh {
		t.Fatal("device write incomplete")
	}
	cold := r.HostRead(0, 32)
	if cold <= warm*2 {
		t.Fatalf("post-invalidation reads (%v) should be much slower than warm (%v)", cold, warm)
	}
}

func TestRingLenInvariant(t *testing.T) {
	// Property: after any valid push/pop sequence, Len == pushes - pops.
	_, mem, _ := newRingRig(t)
	f := func(ops []bool) bool {
		r := NewRing(mem, "ring", 0, 64, 64)
		pushes, pops := 0, 0
		for _, push := range ops {
			if push && !r.Full() {
				r.Push(pushes)
				pushes++
			} else if !push && !r.Empty() {
				r.Pop()
				pops++
			}
		}
		return r.Len() == pushes-pops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
