package experiments

import (
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/metrics"
	"ioctopus/internal/topology"
	"ioctopus/internal/workloads"
)

func init() { register("fig10", runFig10) }

// mcOut is one memcached measurement.
type mcOut struct {
	KTps   float64 // thousand transactions/sec
	MemGBs float64 // server DRAM GB/s
}

// measureMemcached runs the §5.1.3 workload: one memcached server (on
// the config's socket), 14 memslap clients, 256 B keys / 512 KB values.
func measureMemcached(c config, setRatio float64, d Durations) mcOut {
	cl := clusterFor(c, core.Config{Seed: 11})
	defer cl.Drain()
	node := topology.NodeID(0)
	if c == cfgRemote {
		node = 1
	}
	cfg := workloads.DefaultMemcachedConfig(node, cl)
	cfg.SetRatio = setRatio
	w := workloads.StartMemcached(cl, cfg)
	warm := d.Warmup * 3 // large values need longer rampup
	cl.Run(warm)
	cl.ResetStats()
	w.MeasureStart()
	window := d.Measure * 4
	cl.Run(window)
	return mcOut{
		KTps:   float64(w.Transactions()) / window.Seconds() / 1e3,
		MemGBs: cl.Server.Mem.TotalDRAMBytes() / window.Seconds() / 1e9,
	}
}

// runFig10 reproduces Figure 10: memcached throughput and server memory
// bandwidth as the SET ratio grows 0..100%. The ioct/local advantage
// grows with the SET ratio (SETs are Rx traffic, where NUDMA bites).
func runFig10(d Durations) *Result {
	r := &Result{ID: "fig10", Title: "memcached throughput + memBW vs SET ratio (Fig 10)"}
	t := metrics.NewTable("Figure 10",
		"SET%", "ioct KT/s", "remote KT/s", "ioct/remote", "ioct memGB/s", "remote memGB/s", "mem ratio")
	setPcts := []int{0, 25, 50, 75, 100}
	cfgs := []config{cfgIOct, cfgRemote}
	rows := grid(len(setPcts), len(cfgs), func(o, i int) mcOut {
		return measureMemcached(cfgs[i], float64(setPcts[o])/100, d)
	})
	ratios := make([]float64, 0, len(setPcts))
	for i, setPct := range setPcts {
		ioct, remote := rows[i][0], rows[i][1]
		t.AddRow(setPct, ioct.KTps, remote.KTps, ratio(ioct.KTps, remote.KTps),
			ioct.MemGBs, remote.MemGBs, ratio(ioct.MemGBs, remote.MemGBs))
		ratios = append(ratios, ratio(ioct.KTps, remote.KTps))
	}
	r.Tables = append(r.Tables, t)
	// Paper: advantage grows from ~1.10 to ~1.16 as SET% rises; ioct
	// uses less memory bandwidth (annotations 0.57-0.75).
	var meanSet float64
	for _, v := range ratios[1:] {
		meanSet += v
	}
	meanSet /= float64(len(ratios) - 1)
	r.check("mean advantage with SETs present (paper 1.10-1.16)", meanSet, 1.02, 1.40)
	// Slack covers quick-mode quantization: a window holds ~100
	// transactions per point, so one transaction moves a ratio by ~2%.
	r.checkTrue("advantage grows with SET ratio",
		ratios[len(ratios)-1] >= ratios[0]-0.05, "ratio at 100% >= ratio at 0%")
	return r
}

// window helper for callers needing consistent durations.
var _ = time.Second
