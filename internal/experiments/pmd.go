package experiments

import (
	"fmt"
	"strings"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/metrics"
	"ioctopus/internal/topology"
	"ioctopus/internal/workloads"
)

// The kernel-bypass sweep is hidden: it is not part of the paper's
// artifact set (`-fig all` stays byte-identical to the NAPI-only
// harness) but runs by name — `ioctobench -fig pmd -quick` — and in
// the check.sh determinism gates.
func init() { registerHidden("pmd", runPMD) }

// pmdSizes keeps the sweep affordable: busy-poll points simulate every
// empty poll as an event, so the figure sweeps three sizes, not six.
var pmdSizes = []int64{1024, 16384, 65536}

// pmdOut is one datapath measurement point.
type pmdOut struct {
	streamOut
	polls      float64
	emptyPolls float64
	bursts     float64
	occupancy  float64
}

// measurePMD runs a single-core TCP Rx stream on the standard firmware
// under one datapath, local (node 0, same socket as PF0) or remote
// (node 1), and collects the pmd/ counters across the server's drivers.
func measurePMD(dp core.Datapath, remote bool, msg int64, d Durations) pmdOut {
	cl := newCluster(core.Config{Mode: core.ModeStandard, Datapath: dp})
	defer cl.Drain()
	node := topology.NodeID(0)
	if remote {
		node = 1
	}
	w := workloads.StartStream(cl, workloads.StreamConfig{
		MsgSize:     msg,
		Direction:   workloads.Rx,
		ServerCores: []topology.CoreID{cl.Server.Topo.CoresOn(node)[0].ID},
		ServerIP:    core.IPServerPF0,
	})
	cl.Run(d.Warmup)
	cl.ResetStats()
	w.MeasureStart()
	cl.Run(d.Measure)

	var busy time.Duration
	for i := 0; i < cl.Server.Kernel.NumCores(); i++ {
		busy += cl.Server.Kernel.Core(topology.CoreID(i)).BusyTime()
	}
	out := pmdOut{streamOut: streamOut{
		Gbps:    metrics.Gbps(float64(w.Bytes()), d.Measure),
		MemGbps: metrics.Gbps(cl.Server.Mem.TotalDRAMBytes(), d.Measure),
		CPU:     busy.Seconds() / d.Measure.Seconds(),
	}}
	// pmd/ counters are cumulative (ResetStats does not zero driver
	// counters), which is fine for the shape checks: nonzero is nonzero.
	var occSum, occN float64
	for _, s := range cl.Reg.Snapshot() {
		if !strings.HasPrefix(s.Name, "server/") || !strings.Contains(s.Name, "/pmd/") {
			continue
		}
		switch {
		case strings.HasSuffix(s.Name, "/polls"):
			out.polls += s.Value
		case strings.HasSuffix(s.Name, "/empty_polls"):
			out.emptyPolls += s.Value
		case strings.HasSuffix(s.Name, "/bursts"):
			out.bursts += s.Value
		case strings.HasSuffix(s.Name, "/burst_occupancy"):
			if s.Value > 0 {
				occSum += s.Value
				occN++
			}
		}
	}
	if occN > 0 {
		out.occupancy = occSum / occN
	}
	return out
}

// runPMD sweeps the three datapaths over placement and message size:
// single-core TCP Rx on the standard firmware, workload local to PF0 or
// on the remote socket. Busy polling trades dedicated spin cores
// (visible as CPU) for an IRQ-and-softirq-free delivery path; hybrid
// buys most of that without burning idle cores.
func runPMD(d Durations) *Result {
	r := &Result{ID: "pmd", Title: "kernel-bypass datapaths: interrupt vs busypoll vs hybrid (single-core TCP Rx)"}
	dps := []core.Datapath{core.DatapathInterrupt, core.DatapathBusyPoll, core.DatapathHybrid}
	places := []bool{false, true} // local, remote
	for _, remote := range places {
		place := "local"
		if remote {
			place = "remote"
		}
		t := metrics.NewTable("PMD sweep ("+place+")",
			"msg", "intr Gb/s", "busypoll Gb/s", "hybrid Gb/s",
			"intr cpu", "busypoll cpu", "hybrid cpu",
			"bp polls", "bp empty", "hy polls", "hy occupancy")
		rows := grid(len(pmdSizes), len(dps), func(o, i int) pmdOut {
			return measurePMD(dps[i], remote, pmdSizes[o], d)
		})
		var big [3]pmdOut
		for i, msg := range pmdSizes {
			intr, bp, hy := rows[i][0], rows[i][1], rows[i][2]
			t.AddRow(msg, intr.Gbps, bp.Gbps, hy.Gbps,
				intr.CPU, bp.CPU, hy.CPU,
				bp.polls, bp.emptyPolls, hy.polls, hy.occupancy)
			if msg == 65536 {
				big[0], big[1], big[2] = intr, bp, hy
			}
		}
		r.Tables = append(r.Tables, t)
		intr, bp, hy := big[0], big[1], big[2]
		r.check(place+": busypoll throughput vs interrupt at 64K",
			ratio(bp.Gbps, intr.Gbps), 0.9, 3.0)
		r.check(place+": hybrid throughput vs interrupt at 64K",
			ratio(hy.Gbps, intr.Gbps), 0.9, 2.5)
		r.checkTrue(place+": busypoll burns its dedicated poll cores",
			bp.CPU > intr.CPU+0.5, fmt.Sprintf("busypoll %.2f vs interrupt %.2f cores", bp.CPU, intr.CPU))
		r.checkTrue(place+": busypoll polls the rings",
			bp.polls > 0 && bp.bursts > 0, fmt.Sprintf("%.0f polls, %.0f bursts", bp.polls, bp.bursts))
		r.checkTrue(place+": hybrid polls only under load (fewer empty polls than busypoll)",
			hy.emptyPolls < bp.emptyPolls, fmt.Sprintf("hybrid %.0f vs busypoll %.0f empty", hy.emptyPolls, bp.emptyPolls))
		r.checkTrue(place+": interrupt path reports no pmd activity",
			intr.polls == 0, fmt.Sprintf("%.0f polls", intr.polls))
	}
	return r
}
