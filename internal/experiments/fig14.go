package experiments

import (
	"fmt"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/metrics"
	"ioctopus/internal/netstack"
)

func init() { register("fig14", runFig14) }

// timeline runs the §5.3 migration experiment under one mode and
// returns the per-PF throughput series plus split throughput sums.
func timeline(mode core.NICMode, d Durations) (pf0, pf1 *metrics.Series, preRate, postRate float64) {
	cl := newCluster(core.Config{Mode: mode})
	defer cl.Drain()
	var serverThread *kernel.Thread
	cl.Server.Stack.Listen(7, func(s *netstack.Socket) {
		serverThread = cl.Server.Kernel.Spawn("netserver", 0, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				if _, _, ok := s.Recv(th); !ok {
					return
				}
			}
		})
	})
	cl.Client.Kernel.Spawn("netperf", 0, func(th *kernel.Thread) {
		sock, err := cl.Client.Stack.Dial(th, core.IPServerPF0, 7, eth.ProtoTCP)
		if err != nil {
			panic(err)
		}
		for {
			sock.Send(th, 65536)
		}
	})

	sampler := metrics.NewSampler(cl.Eng, d.SampleEvery)
	pf0 = sampler.TrackRate("pf0 Gb/s", func() float64 { return cl.Server.NIC.PF(0).RxBytes() * 8 / 1e9 })
	pf1 = sampler.TrackRate("pf1 Gb/s", func() float64 { return cl.Server.NIC.PF(1).RxBytes() * 8 / 1e9 })
	sampler.Start()

	migrateAt := time.Duration(float64(d.Timeline) * 0.45)
	cl.Run(migrateAt)
	preStart0, preStart1 := cl.Server.NIC.PF(0).RxBytes(), cl.Server.NIC.PF(1).RxBytes()
	cl.Server.Kernel.SetAffinity(serverThread, cl.Server.Topo.CoresOn(1)[0].ID)
	cl.Run(d.Timeline - migrateAt)
	post := d.Timeline - migrateAt
	postBytes := cl.Server.NIC.PF(0).RxBytes() - preStart0 + cl.Server.NIC.PF(1).RxBytes() - preStart1
	preRate = (preStart0 + preStart1) * 8 / migrateAt.Seconds() / 1e9
	postRate = postBytes * 8 / post.Seconds() / 1e9
	return pf0, pf1, preRate, postRate
}

// runFig14 reproduces Figure 14: per-PF throughput while a netperf TCP
// Rx process migrates between sockets mid-run. The octoNIC steers
// traffic to the new socket's PF with no throughput loss; the standard
// firmware keeps serving through the original PF and throughput falls
// to the remote level.
func runFig14(d Durations) *Result {
	r := &Result{ID: "fig14", Title: "per-PF throughput across a thread migration (Fig 14)"}

	type tlOut struct {
		pf0, pf1  *metrics.Series
		pre, post float64
	}
	modes := []core.NICMode{core.ModeIOctopus, core.ModeStandard}
	outs := points(len(modes), func(i int) tlOut {
		var o tlOut
		o.pf0, o.pf1, o.pre, o.post = timeline(modes[i], d)
		return o
	})
	oPF0, oPF1, oPre, oPost := outs[0].pf0, outs[0].pf1, outs[0].pre, outs[0].post
	ePF0, ePF1, ePre, ePost := outs[1].pf0, outs[1].pf1, outs[1].pre, outs[1].post
	oPF0.Name, oPF1.Name = "octoNIC pf0 Gb/s", "octoNIC pf1 Gb/s"
	ePF0.Name, ePF1.Name = "ethNIC pf0 Gb/s", "ethNIC pf1 Gb/s"
	r.Series = append(r.Series, oPF0, oPF1, ePF0, ePF1)

	t := metrics.NewTable("Figure 14 summary",
		"mode", "pre-migration Gb/s", "post-migration Gb/s", "post/pre")
	t.AddRow("octoNIC", oPre, oPost, ratio(oPost, oPre))
	t.AddRow("ethNIC", ePre, ePost, ratio(ePost, ePre))
	r.Tables = append(r.Tables, t)

	// Post-migration the octoNIC's traffic must flow through PF1.
	lastOct1 := 0.0
	if oPF1.Len() > 0 {
		lastOct1 = oPF1.Values[oPF1.Len()-1]
	}
	lastEth1 := 0.0
	if ePF1.Len() > 0 {
		lastEth1 = ePF1.Values[ePF1.Len()-1]
	}
	r.checkTrue("octoNIC moves traffic to PF1 after migration",
		lastOct1 > oPost*0.5, fmt.Sprintf("final pf1 sample %.1f Gb/s", lastOct1))
	r.checkTrue("ethNIC never uses PF1", lastEth1 == 0, fmt.Sprintf("final pf1 sample %.1f", lastEth1))
	r.check("octoNIC post/pre throughput (no loss)", ratio(oPost, oPre), 0.9, 1.15)
	r.check("ethNIC post/pre throughput (drops to remote level)", ratio(ePost, ePre), 0.6, 0.93)
	return r
}
