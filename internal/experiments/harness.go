package experiments

import (
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/metrics"
	"ioctopus/internal/topology"
	"ioctopus/internal/workloads"
)

// config names the three evaluated configurations of §5.
type config int

const (
	cfgLocal config = iota
	cfgRemote
	cfgIOct
)

func (c config) String() string {
	switch c {
	case cfgLocal:
		return "local"
	case cfgRemote:
		return "remote"
	default:
		return "ioct"
	}
}

// clusterFor builds the testbed for a configuration. Under local and
// remote the NIC runs the standard firmware and the workload uses the
// PF0 netdevice; the difference is which socket the workload (and its
// interrupts, via ARFS) runs on.
func clusterFor(c config, opts core.Config) *core.Cluster {
	if c == cfgIOct {
		opts.Mode = core.ModeIOctopus
	} else {
		opts.Mode = core.ModeStandard
	}
	return newCluster(opts)
}

// newCluster builds a cluster with the harness-wide engine shard count
// and datapath applied; every experiment cluster goes through here so
// -shards and -datapath affect all of them uniformly. An explicit
// per-point Datapath (the PMD sweep figure) wins over the global.
func newCluster(opts core.Config) *core.Cluster {
	opts.Shards = Shards()
	if opts.Datapath == core.DatapathInterrupt {
		opts.Datapath = GetDatapath()
	}
	return core.NewCluster(opts)
}

// serverCoreFor places the single-core workload: node 0 (PF0-local)
// for local and ioct, node 1 for remote.
func serverCoreFor(c config, cl *core.Cluster) topology.CoreID {
	if c == cfgRemote {
		return cl.Server.Topo.CoresOn(1)[0].ID
	}
	return cl.Server.Topo.CoresOn(0)[0].ID
}

// streamOut is one stream measurement.
type streamOut struct {
	Gbps    float64 // application throughput
	MemGbps float64 // server DRAM traffic
	CPU     float64 // server cores busy (in cores)
}

// measureStream runs a single- or multi-instance TCP_STREAM under a
// configuration, with optional STREAM antagonist pairs on the server.
func measureStream(c config, msg int64, dir workloads.Direction, instances int, pairs int, d Durations) streamOut {
	cl := clusterFor(c, core.Config{})
	defer cl.Drain()

	var serverCores, clientCores []topology.CoreID
	node := topology.NodeID(0)
	if c == cfgRemote {
		node = 1
	}
	clientPool := cl.Client.Topo.CoresOn(0)
	for i := 0; i < instances; i++ {
		serverCores = append(serverCores, cl.Server.Topo.CoresOn(node)[i].ID)
		clientCores = append(clientCores, clientPool[i%len(clientPool)].ID)
	}
	w := workloads.StartStream(cl, workloads.StreamConfig{
		MsgSize:     msg,
		Direction:   dir,
		ServerCores: serverCores,
		ClientCores: clientCores,
		ServerIP:    core.IPServerPF0,
	})
	if pairs > 0 {
		workloads.StartAntagonist(cl.Server, workloads.DefaultAntagonistConfig(pairs))
	}
	cl.Run(d.Warmup)
	cl.ResetStats()
	w.MeasureStart()
	cl.Run(d.Measure)

	var busy time.Duration
	for i := 0; i < cl.Server.Kernel.NumCores(); i++ {
		busy += cl.Server.Kernel.Core(topology.CoreID(i)).BusyTime()
	}
	return streamOut{
		Gbps:    metrics.Gbps(float64(w.Bytes()), d.Measure),
		MemGbps: metrics.Gbps(cl.Server.Mem.TotalDRAMBytes(), d.Measure),
		CPU:     busy.Seconds() / d.Measure.Seconds(),
	}
}

// measureRR runs a request/response latency test. ddio=false models the
// llnd configuration (DDIO off in hardware on both machines).
func measureRR(c config, msg int64, proto uint8, ddio bool, pairs int, d Durations) *workloads.RR {
	cl := clusterFor(c, core.Config{DisableCoalescing: true, DisableDDIO: !ddio})
	defer cl.Drain()
	w := workloads.StartRR(cl, workloads.RRConfig{
		MsgSize:    msg,
		ServerCore: serverCoreFor(c, cl),
		ClientCore: 0,
		ServerIP:   core.IPServerPF0,
		Proto:      proto,
	})
	if pairs > 0 {
		workloads.StartAntagonist(cl.Server, workloads.DefaultAntagonistConfig(pairs))
	}
	cl.Run(d.Warmup)
	w.MeasureStart()
	// Latency runs need transaction counts, not bandwidth: use a longer
	// window so percentiles are stable.
	cl.Run(4 * d.Measure)
	return w
}

// ratio guards against division blowups in reporting.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
