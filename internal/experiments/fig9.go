package experiments

import (
	"ioctopus/internal/eth"
	"ioctopus/internal/metrics"
	"ioctopus/internal/workloads"
)

var rrSizes = []int64{1, 64, 256, 1024, 4096, 16384, 65536}

func init() { register("fig9", runFig9) }

// runFig9 reproduces Figure 9: netperf TCP_RR latency with NUDMA on the
// critical path (rr) normalized to without (ll), plus the llnd
// configuration (DDIO disabled on both hosts) that isolates the QPI
// crossing cost from the DDIO loss.
func runFig9(d Durations) *Result {
	r := &Result{ID: "fig9", Title: "TCP_RR latency: rr and llnd normalized to ll (Fig 9)"}
	t := metrics.NewTable("Figure 9 (RTT)",
		"msg", "ll us", "rr us", "llnd us", "rr/ll", "llnd/ll", "rr/ll p99")
	var sumRR, sumND, sumP99 float64
	var maxRR float64
	rows := grid(len(rrSizes), 3, func(o, i int) *workloads.RR {
		msg := rrSizes[o]
		switch i {
		case 0:
			return measureRR(cfgLocal, msg, eth.ProtoTCP, true, 0, d)
		case 1:
			return measureRR(cfgRemote, msg, eth.ProtoTCP, true, 0, d)
		default:
			return measureRR(cfgLocal, msg, eth.ProtoTCP, false, 0, d)
		}
	})
	for i, msg := range rrSizes {
		ll, rr, nd := rows[i][0], rows[i][1], rows[i][2]
		llU := ll.Mean().Seconds() * 1e6
		rrU := rr.Mean().Seconds() * 1e6
		ndU := nd.Mean().Seconds() * 1e6
		p99 := ratio(rr.Hist.Percentile(99).Seconds(), ll.Hist.Percentile(99).Seconds())
		t.AddRow(msg, llU, rrU, ndU, ratio(rrU, llU), ratio(ndU, llU), p99)
		sumRR += ratio(rrU, llU)
		sumND += ratio(ndU, llU)
		sumP99 += p99
		if ratio(rrU, llU) > maxRR {
			maxRR = ratio(rrU, llU)
		}
	}
	n := float64(len(rrSizes))
	r.Tables = append(r.Tables, t)
	// Paper: rr adds 10-25% over ll; llnd (pure QPI cost) adds 5-15%.
	r.check("mean rr/ll across sizes (paper 1.10-1.25)", sumRR/n, 1.05, 1.30)
	r.check("max rr/ll (paper up to ~1.25)", maxRR, 1.08, 1.45)
	r.check("mean llnd/ll across sizes (paper 1.05-1.15)", sumND/n, 1.02, 1.25)
	// "The 90th and 99th percentile latency behaves similarly" (§5.1.2).
	r.check("p99 rr/ll tracks the mean", (sumP99/n)/(sumRR/n), 0.85, 1.2)
	r.Notes = append(r.Notes,
		"llnd isolates interconnect crossing cost: even with remote DDIO, IOctopus would still remove this")
	return r
}
