package experiments

import (
	"fmt"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/metrics"
	"ioctopus/internal/topology"
	"ioctopus/internal/workloads"
)

func init() { register("fig13", runFig13) }

// coLocOut is one co-location measurement.
type coLocOut struct {
	PRRuntime time.Duration
	IOKTps    float64 // memcached transactions (KT/s), when applicable
	IOGbps    float64 // netperf throughput, when applicable
}

// ioKind selects the co-located I/O workload.
type ioKind int

const (
	ioNetperf ioKind = iota
	ioMemcached
)

// measureCoLocation runs the Figure 13 setup: a 16-thread PageRank (8
// threads per socket) sharing the machine with an I/O workload on six
// cores of socket 1 — local to the octoNIC's PF1 under ioct, remote to
// PF0 under the standard firmware.
func measureCoLocation(c config, kind ioKind, d Durations) coLocOut {
	cl := clusterFor(c, core.Config{Seed: 5})
	defer cl.Drain()

	prCfg := workloads.DefaultPageRankConfig()
	prCfg.WorkBytesPerThread = 8 * d.Measure.Seconds() * prCfg.DemandPerThread
	pr := workloads.StartPageRank(cl.Server, prCfg)

	// I/O threads on cores 22..27 (socket 1).
	var ioCores []topology.CoreID
	for i := 8; i < 14; i++ {
		ioCores = append(ioCores, cl.Server.Topo.CoresOn(1)[i].ID)
	}
	var out coLocOut
	window := time.Duration(float64(d.Measure) * 12)

	switch kind {
	case ioNetperf:
		clientCores := make([]topology.CoreID, len(ioCores))
		for i := range clientCores {
			clientCores[i] = topology.CoreID(i)
		}
		w := workloads.StartStream(cl, workloads.StreamConfig{
			MsgSize:     65536,
			Direction:   workloads.Rx,
			ServerCores: ioCores,
			ClientCores: clientCores,
			ServerIP:    core.IPServerPF0,
		})
		cl.Run(d.Warmup)
		w.MeasureStart()
		cl.Run(window)
		out.IOGbps = metrics.Gbps(float64(w.Bytes()), window)
	case ioMemcached:
		cfg := workloads.DefaultMemcachedConfig(1, cl)
		cfg.ServerCores = ioCores
		cfg.ClientCores = cfg.ClientCores[:6]
		cfg.SetRatio = 0.5
		w := workloads.StartMemcached(cl, cfg)
		cl.Run(d.Warmup)
		w.MeasureStart()
		cl.Run(window)
		out.IOKTps = float64(w.Transactions()) / window.Seconds() / 1e3
	}
	// Let PageRank finish if it has not.
	for i := 0; i < 40 && !pr.Done(); i++ {
		cl.Run(window / 4)
	}
	out.PRRuntime = pr.Runtime()
	return out
}

// runFig13 reproduces Figure 13: the effect of co-locating PageRank
// with memcached or netperf under ioct/local vs remote placement. The
// remote I/O workload's interconnect traffic slows PageRank (paper:
// +12% with netperf, +4% with memcached).
func runFig13(d Durations) *Result {
	r := &Result{ID: "fig13", Title: "PageRank co-located with memcached/netperf (Fig 13)"}
	t := metrics.NewTable("Figure 13",
		"io workload", "config", "PR time (ms)", "io throughput")

	kinds := []ioKind{ioNetperf, ioMemcached}
	cfgs := []config{cfgIOct, cfgRemote}
	rows := grid(len(kinds), len(cfgs), func(o, i int) coLocOut {
		return measureCoLocation(cfgs[i], kinds[o], d)
	})
	npIoct, npRemote := rows[0][0], rows[0][1]
	mcIoct, mcRemote := rows[1][0], rows[1][1]

	t.AddRow("netperf", "ioct/local", npIoct.PRRuntime.Seconds()*1e3, fmt.Sprintf("%.1f Gb/s", npIoct.IOGbps))
	t.AddRow("netperf", "remote", npRemote.PRRuntime.Seconds()*1e3, fmt.Sprintf("%.1f Gb/s", npRemote.IOGbps))
	t.AddRow("memcached", "ioct/local", mcIoct.PRRuntime.Seconds()*1e3, fmt.Sprintf("%.1f KT/s", mcIoct.IOKTps))
	t.AddRow("memcached", "remote", mcRemote.PRRuntime.Seconds()*1e3, fmt.Sprintf("%.1f KT/s", mcRemote.IOKTps))
	r.Tables = append(r.Tables, t)

	// Paper: PR 12% slower with remote netperf, 4% with remote memcached.
	r.check("PR slowdown from remote netperf (paper ~1.12)",
		ratio(npRemote.PRRuntime.Seconds(), npIoct.PRRuntime.Seconds()), 1.02, 1.45)
	r.check("PR slowdown from remote memcached (paper ~1.04)",
		ratio(mcRemote.PRRuntime.Seconds(), mcIoct.PRRuntime.Seconds()), 0.99, 1.25)
	r.check("netperf throughput comparable in both configs (paper)",
		ratio(npIoct.IOGbps, npRemote.IOGbps), 0.95, 2.2)
	r.checkTrue("memcached suffers when remote",
		mcIoct.IOKTps >= mcRemote.IOKTps*0.98,
		fmt.Sprintf("%.1f vs %.1f KT/s", mcIoct.IOKTps, mcRemote.IOKTps))
	return r
}
