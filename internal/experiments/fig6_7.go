package experiments

import (
	"fmt"

	"ioctopus/internal/metrics"
	"ioctopus/internal/workloads"
)

// streamSizes are the netperf buffer sizes swept in Figures 6 and 7.
var streamSizes = []int64{64, 256, 1024, 4096, 16384, 65536}

func init() {
	register("fig6", runFig6)
	register("fig7", runFig7)
	register("fig6-multicore", runFig6Multi)
}

// runFig6 reproduces Figure 6: single-core TCP stream receive —
// throughput, memory bandwidth and CPU utilization vs message size for
// ioct/local vs remote.
func runFig6(d Durations) *Result {
	r := &Result{ID: "fig6", Title: "single-core TCP Rx: throughput/memBW/CPU vs msg size (Fig 6)"}
	t := metrics.NewTable("Figure 6",
		"msg", "local Gb/s", "ioct Gb/s", "remote Gb/s", "ioct/remote",
		"local memGb/s", "remote memGb/s", "local cpu", "remote cpu")
	var big struct{ local, ioct, remote, remoteMem streamOut }
	cfgs := []config{cfgLocal, cfgIOct, cfgRemote}
	rows := grid(len(streamSizes), len(cfgs), func(o, i int) streamOut {
		return measureStream(cfgs[i], streamSizes[o], workloads.Rx, 1, 0, d)
	})
	for i, msg := range streamSizes {
		local, ioct, remote := rows[i][0], rows[i][1], rows[i][2]
		t.AddRow(msg, local.Gbps, ioct.Gbps, remote.Gbps, ratio(ioct.Gbps, remote.Gbps),
			local.MemGbps, remote.MemGbps, local.CPU, remote.CPU)
		if msg == 65536 {
			big.local, big.ioct, big.remote = local, ioct, remote
		}
	}
	r.Tables = append(r.Tables, t)
	// Paper: 1.25-1.26x at MTU-exceeding sizes; remote memBW ~ 3x net.
	r.check("ioct/remote throughput at 64K (paper ~1.26)", ratio(big.ioct.Gbps, big.remote.Gbps), 1.10, 1.45)
	r.check("ioct matches local", ratio(big.ioct.Gbps, big.local.Gbps), 0.90, 1.10)
	r.check("remote DRAM/net ratio at 64K (paper ~3)", ratio(big.remote.MemGbps, big.remote.Gbps), 2.2, 4.0)
	r.check("local DRAM/net ratio at 64K (DDIO, paper ~0)", ratio(big.local.MemGbps, big.local.Gbps), 0, 0.4)
	return r
}

// runFig7 reproduces Figure 7: single-core TCP transmit with TSO —
// both configurations comparable, remote memory bandwidth equal to its
// throughput (the parallel-probe DMA-read effect).
func runFig7(d Durations) *Result {
	r := &Result{ID: "fig7", Title: "single-core TCP Tx (TSO): throughput/memBW/CPU vs msg size (Fig 7)"}
	t := metrics.NewTable("Figure 7",
		"msg", "ioct Gb/s", "remote Gb/s", "ioct/remote",
		"ioct memGb/s", "remote memGb/s", "remote mem/net")
	var big struct{ ioct, remote streamOut }
	cfgs := []config{cfgIOct, cfgRemote}
	rows := grid(len(streamSizes), len(cfgs), func(o, i int) streamOut {
		return measureStream(cfgs[i], streamSizes[o], workloads.Tx, 1, 0, d)
	})
	for i, msg := range streamSizes {
		ioct, remote := rows[i][0], rows[i][1]
		t.AddRow(msg, ioct.Gbps, remote.Gbps, ratio(ioct.Gbps, remote.Gbps),
			ioct.MemGbps, remote.MemGbps, ratio(remote.MemGbps, remote.Gbps))
		if msg == 65536 {
			big.ioct, big.remote = ioct, remote
		}
	}
	r.Tables = append(r.Tables, t)
	r.check("Tx throughput parity (paper: comparable)", ratio(big.ioct.Gbps, big.remote.Gbps), 0.9, 1.25)
	r.check("remote Tx DRAM/net ratio (paper ~1, parallel probe)", ratio(big.remote.MemGbps, big.remote.Gbps), 0.6, 1.5)
	r.check("ioct Tx DRAM ~0 (DDIO reads from LLC)", ratio(big.ioct.MemGbps, big.ioct.Gbps), 0, 0.35)
	r.Notes = append(r.Notes, fmt.Sprintf("ioct Tx at 64K: %.1f Gb/s (paper ~47)", big.ioct.Gbps))
	return r
}

// runFig6Multi reproduces the multi-core paragraph of §5.1.1: with an
// instance per core the bottleneck moves to the wire and both
// configurations sustain line rate, but ioct/local now shows memory
// traffic (combined working set exceeds the LLC).
func runFig6Multi(d Durations) *Result {
	r := &Result{ID: "fig6-multicore", Title: "multi-core TCP Rx: both configs reach line rate (§5.1.1)"}
	t := metrics.NewTable("multi-core Rx (14 instances)",
		"config", "Gb/s", "memGb/s", "cpu")
	cfgs := []config{cfgIOct, cfgRemote}
	outs := points(len(cfgs), func(i int) streamOut {
		return measureStream(cfgs[i], 65536, workloads.Rx, 14, 0, d)
	})
	ioct, remote := outs[0], outs[1]
	t.AddRow("ioct/local", ioct.Gbps, ioct.MemGbps, ioct.CPU)
	t.AddRow("remote", remote.Gbps, remote.MemGbps, remote.CPU)
	r.Tables = append(r.Tables, t)
	r.check("both configs near wire limit", ratio(ioct.Gbps, remote.Gbps), 0.9, 1.6)
	r.checkTrue("ioct multi-core shows memory traffic (LLC exceeded)",
		ioct.MemGbps > 1, fmt.Sprintf("%.1f Gb/s DRAM", ioct.MemGbps))
	return r
}
