package experiments

import (
	"ioctopus/internal/core"
	"ioctopus/internal/metrics"
	"ioctopus/internal/topology"
	"ioctopus/internal/workloads"
)

var pktgenSizes = []int64{64, 128, 256, 512, 1024, 1500}

func init() { register("fig8", runFig8) }

// pktgenOut is one pktgen measurement.
type pktgenOut struct {
	MPPS    float64
	Gbps    float64
	MemGbps float64
}

// measurePktgen runs the in-kernel generator under a configuration.
func measurePktgen(c config, pktSize int64, d Durations) pktgenOut {
	cl := clusterFor(c, core.Config{})
	defer cl.Drain()
	var dev workloads.RawTxDevice
	var coreID topology.CoreID
	switch c {
	case cfgIOct:
		dev = cl.Octo
		coreID = cl.Server.Topo.CoresOn(0)[0].ID
	case cfgLocal:
		dev = cl.Dev0.(workloads.RawTxDevice)
		coreID = cl.Server.Topo.CoresOn(0)[0].ID
	default: // remote: PF0's netdev driven from socket 1
		dev = cl.Dev0.(workloads.RawTxDevice)
		coreID = cl.Server.Topo.CoresOn(1)[0].ID
	}
	w := workloads.StartPktgen(cl, dev, workloads.DefaultPktgenConfig(coreID, pktSize))
	cl.Run(d.Warmup)
	cl.ResetStats()
	w.MeasureStart()
	cl.Run(d.Measure)
	return pktgenOut{
		MPPS:    float64(w.Packets()) / d.Measure.Seconds() / 1e6,
		Gbps:    metrics.Gbps(float64(w.PayloadBytes()), d.Measure),
		MemGbps: metrics.Gbps(cl.Server.Mem.TotalDRAMBytes(), d.Measure),
	}
}

// runFig8 reproduces Figure 8: single-core pktgen transmit throughput
// and memory bandwidth vs packet size. Per-packet NUDMA costs dominate:
// ioct/local sustains ~1.3x remote's packet rate, and remote's memory
// bandwidth tracks its throughput (payload DMA-read probes DRAM).
func runFig8(d Durations) *Result {
	r := &Result{ID: "fig8", Title: "single-core pktgen: throughput + memBW vs packet size (Fig 8)"}
	t := metrics.NewTable("Figure 8",
		"pkt", "ioct MPPS", "remote MPPS", "ioct Gb/s", "remote Gb/s", "ratio",
		"ioct memGb/s", "remote memGb/s")
	var at64, atMTU struct{ ioct, remote pktgenOut }
	cfgs := []config{cfgIOct, cfgRemote}
	rows := grid(len(pktgenSizes), len(cfgs), func(o, i int) pktgenOut {
		return measurePktgen(cfgs[i], pktgenSizes[o], d)
	})
	for i, size := range pktgenSizes {
		ioct, remote := rows[i][0], rows[i][1]
		t.AddRow(size, ioct.MPPS, remote.MPPS, ioct.Gbps, remote.Gbps,
			ratio(ioct.MPPS, remote.MPPS), ioct.MemGbps, remote.MemGbps)
		if size == 64 {
			at64.ioct, at64.remote = ioct, remote
		}
		if size == 1500 {
			atMTU.ioct, atMTU.remote = ioct, remote
		}
	}
	r.Tables = append(r.Tables, t)
	// Paper: 4.1 vs 3.08 MPPS (1.33x), annotations 1.30-1.39 across sizes.
	r.check("ioct/remote packet rate at 64B (paper ~1.33)", ratio(at64.ioct.MPPS, at64.remote.MPPS), 1.15, 1.6)
	r.check("ioct 64B rate MPPS (paper ~4.1)", at64.ioct.MPPS, 2.5, 6.0)
	r.check("remote memBW tracks its throughput at MTU (parallel probe)",
		ratio(atMTU.remote.MemGbps, atMTU.remote.Gbps), 0.7, 1.8)
	r.check("ioct memBW ~0 (all-LLC datapath)", ratio(atMTU.ioct.MemGbps, atMTU.ioct.Gbps), 0, 0.3)
	return r
}
