package experiments

import (
	"testing"
	"time"
)

func TestChaosIsHiddenButRunnable(t *testing.T) {
	if !Has("chaos") {
		t.Fatal("chaos must be runnable by name")
	}
	if Has("no-such-experiment") {
		t.Fatal("Has accepted a bogus id")
	}
	for _, id := range IDs() {
		if id == "chaos" {
			t.Fatal("chaos must stay out of IDs() (and therefore out of -fig all)")
		}
	}
}

// TestChaosDeterministicAcrossRuns runs the fault-injection harness
// twice at a reduced timeline and requires byte-identical reports: the
// whole run — loss RNG, failover timing, sampled series — is a pure
// function of the plan seed. (scripts/check.sh repeats this at the full
// -quick scale via the CLI.)
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("two chaos runs take a few seconds")
	}
	d := Durations{Timeline: 200 * time.Millisecond, SampleEvery: 5 * time.Millisecond}
	a, err := Run("chaos", d)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	b, err := Run("chaos", d)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if a.Render() != b.Render() {
		t.Fatal("chaos is not byte-identical across same-seed runs")
	}
}
