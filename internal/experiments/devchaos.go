package experiments

import (
	"fmt"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/driver"
	"ioctopus/internal/eth"
	"ioctopus/internal/faults"
	"ioctopus/internal/kernel"
	"ioctopus/internal/metrics"
	"ioctopus/internal/netstack"
	"ioctopus/internal/sim"
)

// The device-chaos sweep is hidden, like chaos and pmd: not a paper
// figure (`-fig all` stays byte-identical), but runnable by name —
// `ioctobench -fig devchaos -quick` — and pinned by the check.sh
// double-run and serial-vs-sharded determinism gates.
func init() { registerHidden("devchaos", runDevChaos) }

// devChaosSeed drives every cell's cluster RNG.
const devChaosSeed = 42

// devCell is one datapath x device-fault measurement cell.
type devCell struct {
	name string
	dp   core.Datapath
	kind string // "fw-reset" | "queue-stall" | "poller-stall" | "escalate"
}

// devCellOut is what one cell run produces.
type devCellOut struct {
	pre, post float64 // windowed NIC Rx Gb/s
	recoverMs float64 // first sample back above 90% of pre, after the fault
	held      int     // completions still stranded device-side at T
	abandoned uint64
	fwdGap    int64 // forward stream tx-rx gap at T
	revGap    int64 // reverse stream tx-rx gap at T
	fwResets  uint64
	replayed  uint64
	failovers uint64
	failbacks uint64
	wd        driver.WatchdogStats
}

// runDevCell drives one cell: the ioctopus cluster under one datapath,
// a single forward TCP stream into core 0 (whose queue pair is PF0
// queue 0 — the queue the stall faults target), the watchdog armed at a
// device-realistic absolute cadence, and one device fault at 0.35T.
//
// Device recovery cadence is physics, not a fraction of the run, so the
// watchdog interval and the fault durations are absolute: the ladder
// climbs the same rungs under -quick and full windows, which is what
// makes the per-cell counter checks duration-independent.
func runDevCell(c devCell, d Durations) devCellOut {
	T := d.Timeline
	frac := func(pct int) time.Duration { return T * time.Duration(pct) / 100 }
	at := frac(35)

	plan := &faults.Plan{Seed: devChaosSeed}
	switch c.kind {
	case "fw-reset":
		plan.Events = []faults.Event{{At: at, Kind: faults.FirmwareReset}}
	case "queue-stall":
		// Short enough that stage 0 (queue reset) heals it before the
		// ladder reaches the PF-dead rung.
		plan.Events = []faults.Event{{At: at, Kind: faults.QueueStall, PF: 0, Queue: 0, Duration: 3 * time.Millisecond}}
	case "poller-stall":
		plan.Events = []faults.Event{{At: at, Kind: faults.PollerStall, Node: 0, Duration: 5 * time.Millisecond}}
	case "escalate":
		// Long enough that the ladder runs out of queue-local rungs and
		// declares PF0 dead: failover, then recovery and failback once
		// the stall clears.
		plan.Events = []faults.Event{{At: at, Kind: faults.QueueStall, PF: 0, Queue: 0, Duration: 30 * time.Millisecond}}
	}

	sp := netstack.DefaultParams()
	sp.RetxTimeout = 2 * time.Millisecond
	sp.RetxMaxTries = 12

	dp := driver.DefaultParams()
	dp.WatchdogInterval = 500 * time.Microsecond

	cl := newCluster(core.Config{
		Mode:         core.ModeIOctopus,
		Datapath:     c.dp,
		StackParams:  &sp,
		DriverParams: &dp,
		FaultPlan:    plan,
		Seed:         devChaosSeed,
	})
	defer cl.Drain()

	var rxBytes, txBytes int64
	cl.Server.Stack.Listen(7, func(s *netstack.Socket) {
		cl.Server.Kernel.Spawn("devsink", 0, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				rxBytes += n
			}
		})
	})
	cl.Client.Kernel.Spawn("devsrc", 0, func(th *kernel.Thread) {
		sock, err := cl.Client.Stack.Dial(th, core.IPServerPF0, 7, eth.ProtoTCP)
		if err != nil {
			panic(err)
		}
		for {
			sock.Send(th, 65536)
			txBytes += 65536
		}
	})

	// A reverse stream transmitted from server core 0 keeps descriptors
	// in flight on PF0 Tx queue 0 — the stall target. ACKs are modeled
	// as latency, not Tx descriptors, so without this the Tx-progress
	// watchdog (like a real tx_timeout) would have nothing to time out.
	var revRx, revTx int64
	cl.Client.Stack.Listen(9, func(s *netstack.Socket) {
		cl.Client.Kernel.Spawn("revsink", cl.Client.Topo.CoresOn(0)[1].ID, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				revRx += n
			}
		})
	})
	cl.Server.Kernel.Spawn("revsrc", 0, func(th *kernel.Thread) {
		sock, err := cl.Server.Stack.Dial(th, core.IPClient, 9, eth.ProtoTCP)
		if err != nil {
			panic(err)
		}
		for {
			sock.Send(th, 65536)
			revTx += 65536
		}
	})

	sampler := metrics.NewSampler(cl.Eng, d.SampleEvery)
	rate := sampler.TrackRate("delivered Gb/s", func() float64 { return float64(rxBytes) * 8 / 1e9 })
	sampler.Start()

	nicRx := func() float64 {
		var total float64
		for _, pf := range cl.Server.NIC.PFs() {
			total += pf.RxBytes()
		}
		return total
	}
	var cursor time.Duration
	advance := func(to time.Duration) {
		cl.Run(to - cursor)
		cursor = to
	}
	window := func(from, to time.Duration) float64 {
		advance(from)
		start := nicRx()
		advance(to)
		return (nicRx() - start) * 8 / (to - from).Seconds() / 1e9
	}
	out := devCellOut{}
	out.pre = window(frac(10), frac(30))
	out.post = window(frac(75), T)
	if cursor < T {
		advance(T)
	}

	// Windowed recovery latency: the first delivered-rate sample at or
	// after the fault window's end that is back above 90% of the
	// pre-fault rate. The device faults are milliseconds against a
	// sample period that may exceed them, so "the very next sample is
	// already healthy" is the expected (and checked) outcome.
	faultEnd := at
	for _, ev := range plan.Events {
		if end := ev.At + ev.Duration; end > faultEnd {
			faultEnd = end
		}
	}
	out.recoverMs = -1
	for i, tm := range rate.Times {
		if tm >= sim.Time(faultEnd) && rate.Values[i] >= 0.9*out.pre {
			out.recoverMs = (tm.Seconds() - faultEnd.Seconds()) * 1e3
			break
		}
	}

	for _, pf := range cl.Server.NIC.PFs() {
		for _, q := range pf.RxQueues() {
			out.held += q.HeldCompletions()
		}
		for _, q := range pf.TxQueues() {
			out.held += q.HeldCompletions()
		}
	}
	out.abandoned = cl.Client.Stack.RetxAbandoned() + cl.Server.Stack.RetxAbandoned()
	out.fwdGap = txBytes - rxBytes
	out.revGap = revTx - revRx
	out.fwResets = cl.Octo.FwResets()
	out.replayed = cl.Octo.RulesReplayed()
	out.failovers = cl.Octo.Failovers()
	out.failbacks = cl.Octo.Failbacks()
	out.wd = cl.Octo.WatchdogStats()
	return out
}

// runDevChaos sweeps device failure domains across datapaths: a
// firmware reset (steering tables wiped, journal replayed), a transient
// queue stall (healed by the watchdog's stage-0 queue reset), a wedged
// busy-poll loop (degraded to interrupt delivery and back), and a
// persistent stall that climbs the full ladder to PF-dead, failover,
// and failback. Every cell must return to the pre-fault rate with
// nothing abandoned and nothing left stranded device-side.
func runDevChaos(d Durations) *Result {
	r := &Result{ID: "devchaos", Title: "device failure domains: firmware/queue faults vs the driver watchdog ladder"}
	cells := []devCell{
		{"intr/fw-reset", core.DatapathInterrupt, "fw-reset"},
		{"busypoll/fw-reset", core.DatapathBusyPoll, "fw-reset"},
		{"hybrid/fw-reset", core.DatapathHybrid, "fw-reset"},
		{"intr/queue-stall", core.DatapathInterrupt, "queue-stall"},
		{"busypoll/queue-stall", core.DatapathBusyPoll, "queue-stall"},
		{"hybrid/queue-stall", core.DatapathHybrid, "queue-stall"},
		{"busypoll/poller-stall", core.DatapathBusyPoll, "poller-stall"},
		{"intr/escalate", core.DatapathInterrupt, "escalate"},
	}
	t := metrics.NewTable("device chaos: recovery by datapath x fault",
		"cell", "pre Gb/s", "post Gb/s", "post/pre",
		"q-resets", "fw-replays", "pf-dead", "fallbacks")
	sp := netstack.DefaultParams()
	inFlightBound := sp.SendWindow + sp.RxBufBytes

	for _, c := range cells {
		out := runDevCell(c, d)
		t.AddRow(c.name, out.pre, out.post, ratio(out.post, out.pre),
			float64(out.wd.QueueResets), float64(out.wd.FwReprograms),
			float64(out.wd.PFDead), float64(out.wd.PollerFallbacks))
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s: recovered %.1f ms after the fault window (first sample back above 90%% of pre)",
			c.name, out.recoverMs))

		r.check(c.name+": post/pre throughput", ratio(out.post, out.pre), 0.90, 1.15)
		r.checkTrue(c.name+": recovered before the post window",
			out.recoverMs >= 0 && out.recoverMs*1e-3 <= 0.40*d.Timeline.Seconds(),
			fmt.Sprintf("recovery latency %.1f ms", out.recoverMs))
		r.checkTrue(c.name+": nothing abandoned", out.abandoned == 0,
			fmt.Sprintf("abandoned=%d", out.abandoned))
		r.checkTrue(c.name+": nothing stranded device-side", out.held == 0,
			fmt.Sprintf("held completions=%d", out.held))
		r.checkTrue(c.name+": streams conserved (gaps <= in-flight bound)",
			out.fwdGap <= inFlightBound && out.revGap <= inFlightBound,
			fmt.Sprintf("fwd gap=%d rev gap=%d bound=%d", out.fwdGap, out.revGap, inFlightBound))
		switch c.kind {
		case "fw-reset":
			r.checkTrue(c.name+": rules replayed and steering restored",
				out.fwResets >= 1 && out.replayed >= 1,
				fmt.Sprintf("fw resets=%d rules replayed=%d", out.fwResets, out.replayed))
		case "queue-stall":
			r.checkTrue(c.name+": stage-0 queue reset healed the stall",
				out.wd.QueueResets >= 1 && out.wd.PFDead == 0,
				fmt.Sprintf("queue resets=%d pf dead=%d", out.wd.QueueResets, out.wd.PFDead))
		case "poller-stall":
			r.checkTrue(c.name+": fallback to interrupt and back",
				out.wd.PollerFallbacks >= 1 && out.wd.PollerReenters >= 1,
				fmt.Sprintf("fallbacks=%d reenters=%d", out.wd.PollerFallbacks, out.wd.PollerReenters))
		case "escalate":
			r.checkTrue(c.name+": ladder climbed every rung",
				out.wd.QueueResets >= 1 && out.wd.FwReprograms >= 1 && out.wd.PFDead >= 1,
				fmt.Sprintf("queue resets=%d fw reprograms=%d pf dead=%d",
					out.wd.QueueResets, out.wd.FwReprograms, out.wd.PFDead))
			r.checkTrue(c.name+": failed over to PF1 and back",
				out.failovers >= 1 && out.failbacks >= 1 && out.wd.PFRecovered >= 1,
				fmt.Sprintf("failovers=%d failbacks=%d pf recovered=%d",
					out.failovers, out.failbacks, out.wd.PFRecovered))
		}
	}
	r.Tables = append(r.Tables, t)
	return r
}
