package experiments

import (
	"fmt"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/driver"
	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/metrics"
	"ioctopus/internal/netstack"
	"ioctopus/internal/nic"
	"ioctopus/internal/pcie"
	"ioctopus/internal/topology"
	"ioctopus/internal/workloads"
)

func init() {
	register("baseline-bond", runBaselineBond)
	register("baseline-quad", runBaselineQuad)
}

// runBaselineBond demonstrates §2.5: bonding two per-socket NICs does
// not eliminate NUDMA, because neither the bond (egress: flow-hash) nor
// the switch (ingress: LAG hash) can steer a flow to the socket where
// its thread runs. The octoNIC, with identical physical resources,
// keeps every byte local.
func runBaselineBond(d Durations) *Result {
	r := &Result{ID: "baseline-bond", Title: "two NICs + bonding vs octoNIC (§2.5 baseline)"}
	t := metrics.NewTable("bond baseline: single-core Rx, thread on socket 1",
		"setup", "Gb/s", "server DRAM Gb/s")

	// The bond's inbound member is the switch's flow-hash choice: for a
	// thread on socket 1 there is a 50% chance the flow lands on the
	// remote NIC and nothing the host can do about it. We measure the
	// unlucky (hash->NIC0) case, which our deterministic tuple gives.
	type bondOut struct {
		bondGbps, bondMem float64
		octo              streamOut
	}
	outs := points(2, func(i int) bondOut {
		var o bondOut
		if i == 0 {
			o.bondGbps, o.bondMem = measureBondRx(d)
		} else {
			o.octo = measureStream(cfgIOct, 65536, workloads.Rx, 1, 0, d)
		}
		return o
	})
	bondGbps, bondMem := outs[0].bondGbps, outs[0].bondMem
	octo := outs[1].octo
	t.AddRow("2xNIC+bond (flow hashed to remote NIC)", bondGbps, bondMem)
	t.AddRow("octoNIC", octo.Gbps, octo.MemGbps)
	r.Tables = append(r.Tables, t)
	r.checkTrue("bond cannot avoid NUDMA for an unluckily hashed flow",
		bondGbps < octo.Gbps*0.93,
		fmt.Sprintf("bond %.1f vs octo %.1f Gb/s", bondGbps, octo.Gbps))
	r.checkTrue("bonded remote flow pays DRAM traffic",
		bondMem > bondGbps, fmt.Sprintf("%.1f Gb/s DRAM", bondMem))
	r.Notes = append(r.Notes,
		"same silicon budget as the octoNIC (one x8 endpoint per socket), but decomposed into two logical NICs")
	return r
}

// measureBondRx runs a single-core Rx stream over the bonded two-NIC
// server with the app on socket 1 and the flow hashed (by the switch's
// LAG policy) to the socket-0 NIC: the §2.5 worst case.
func measureBondRx(d Durations) (gbps, memGbps float64) {
	cl := newCluster(core.Config{Mode: core.ModeStandard})
	defer cl.Drain()
	srv := cl.Server
	eng := cl.Eng

	// Build two per-socket NICs wired via a LAG-capable switch.
	mk := func(name string, node topology.NodeID) *nic.NIC {
		eps := srv.PCIe.AttachCard(pcie.CardConfig{
			Name: name, Gen: pcie.Gen3, TotalLanes: 8,
			Wiring: pcie.WiringDirect, Nodes: []topology.NodeID{node},
		})
		n := nic.New(eng, srv.Mem, name, eps, nic.DefaultParams())
		n.LoadFirmware(nic.NewStandardFirmware(n))
		return n
	}
	n0, n1 := mk("sep0", 0), mk("sep1", 1)
	sw := eth.NewSwitch(eng, "tor", 500*time.Nanosecond)
	n0.AttachWire(sw.ConnectWire(eth.Wire100G("s0"), n0))
	n1.AttachWire(sw.ConnectWire(eth.Wire100G("s1"), n1))
	sw.AggregateLinks(1, []int{0, 1})
	// Client NIC joins the same switch on a fresh wire.
	clientNIC := cl.Client.NIC
	clientNIC.AttachWire(sw.ConnectWire(eth.Wire100G("c"), clientNIC))

	// Drivers + bond on the server.
	drvP := driver.DefaultParams()
	d0 := driver.NewStandard(srv.Kernel, srv.Mem, n0.PF(0), "sep-eth0", drvP)
	d1 := driver.NewStandard(srv.Kernel, srv.Mem, n1.PF(0), "sep-eth1", drvP)
	d0.Bind(srv.Stack)
	d1.Bind(srv.Stack)
	bond := driver.NewBond("bond0", d0, d1)
	srv.Stack.AddDevice(bond, 0x0A0000B0)

	var received int64
	srv.Stack.Listen(7, func(s *netstack.Socket) {
		srv.Kernel.Spawn("netserver", srv.Topo.CoresOn(1)[0].ID, func(th *kernel.Thread) {
			s.SetOwner(th) // the bond's best effort: ARFS within the hashed member
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				received += n
			}
		})
	})
	cl.Client.Kernel.Spawn("netperf", 0, func(th *kernel.Thread) {
		// Dial until the flow's hash lands on LAG member 0 (the
		// socket-0 NIC) while the app lives on socket 1: the case the
		// host cannot repair.
		for {
			sock, err := cl.Client.Stack.Dial(th, 0x0A0000B0, 7, eth.ProtoTCP)
			if err != nil {
				panic(err)
			}
			if int(sock.Flow().Hash())%2 == 0 {
				for {
					sock.Send(th, 65536)
				}
			}
			sock.Close()
		}
	})
	cl.Run(d.Warmup)
	cl.ResetStats()
	base := received
	cl.Run(d.Measure)
	gbps = metrics.Gbps(float64(received-base), d.Measure)
	memGbps = metrics.Gbps(srv.Mem.TotalDRAMBytes(), d.Measure)
	return
}

// runBaselineQuad scales the octoNIC to four sockets (Figure 4 shows
// four limbs): a thread hops across all four sockets and the traffic
// follows it through four PFs with no loss anywhere.
func runBaselineQuad(d Durations) *Result {
	r := &Result{ID: "baseline-quad", Title: "four-socket octoNIC: steering across 4 PFs (§3.3, Fig 4)"}
	cl := newCluster(core.Config{
		Mode:       core.ModeIOctopus,
		ServerTopo: topology.QuadSocket(8),
	})
	defer cl.Drain()

	var serverThread *kernel.Thread
	cl.Server.Stack.Listen(7, func(s *netstack.Socket) {
		serverThread = cl.Server.Kernel.Spawn("netserver", 0, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				if _, _, ok := s.Recv(th); !ok {
					return
				}
			}
		})
	})
	cl.Client.Kernel.Spawn("netperf", 0, func(th *kernel.Thread) {
		sock, err := cl.Client.Stack.Dial(th, core.IPServerPF0, 7, eth.ProtoTCP)
		if err != nil {
			panic(err)
		}
		for {
			sock.Send(th, 65536)
		}
	})

	t := metrics.NewTable("quad-socket migration", "phase", "Gb/s", "serving PF")
	window := d.Measure
	prevPF := make([]float64, 4)
	phase := func(label string) (gbps float64, pf int) {
		var before float64
		for i := 0; i < 4; i++ {
			before += cl.Server.NIC.PF(i).RxBytes()
		}
		cl.Run(window)
		var after float64
		best, bestDelta := 0, 0.0
		for i := 0; i < 4; i++ {
			cur := cl.Server.NIC.PF(i).RxBytes()
			if delta := cur - prevPF[i]; delta > bestDelta {
				best, bestDelta = i, delta
			}
			prevPF[i] = cur
			after += cur
		}
		gbps = (after - before) * 8 / window.Seconds() / 1e9
		t.AddRow(label, gbps, best)
		return gbps, best
	}

	cl.Run(d.Warmup)
	for i := 0; i < 4; i++ {
		prevPF[i] = cl.Server.NIC.PF(i).RxBytes()
	}
	var rates []float64
	var pfs []int
	for node := 0; node < 4; node++ {
		if node > 0 {
			cl.Server.Kernel.SetAffinity(serverThread, cl.Server.Topo.CoresOn(topology.NodeID(node))[0].ID)
		}
		g, pf := phase(fmt.Sprintf("thread on socket %d", node))
		rates = append(rates, g)
		pfs = append(pfs, pf)
	}
	r.Tables = append(r.Tables, t)

	followed := true
	for node, pf := range pfs {
		if pf != node {
			followed = false
		}
	}
	r.checkTrue("traffic follows the thread across all four PFs", followed,
		fmt.Sprintf("serving PFs per phase: %v", pfs))
	lo, hi := rates[0], rates[0]
	for _, g := range rates {
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	r.check("throughput steady across migrations", lo/hi, 0.85, 1.0)
	return r
}
