package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestReportGoldenRoundTrip pins the on-disk JSON layout: fig2 is a
// static dataset (no simulation), so the report built from it is fully
// deterministic once the environment-dependent meta fields are fixed.
// Regenerate with `go test ./internal/experiments/ -run Golden -update`
// after an intentional schema change (and bump ReportVersion).
func TestReportGoldenRoundTrip(t *testing.T) {
	res, err := Run("fig2", Quick())
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport([]string{"fig2"}, true, Quick(), []*Result{res})
	rep.Meta.GoVersion = "go-test"
	rep.Meta.Parallelism = 1

	got, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_fig2.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report JSON drifted from golden %s;\nrun with -update if the change is intentional.\ngot:\n%s", golden, got)
	}
	if err := ValidateReport(got); err != nil {
		t.Fatalf("golden report does not validate: %v", err)
	}
}

func TestValidateReportRejectsMalformed(t *testing.T) {
	res, err := Run("fig2", Quick())
	if err != nil {
		t.Fatal(err)
	}
	good := NewReport([]string{"fig2"}, true, Quick(), []*Result{res})

	cases := []struct {
		name   string
		mutate func(m map[string]any)
	}{
		{"wrong schema", func(m map[string]any) { m["schema"] = "something-else" }},
		{"wrong version", func(m map[string]any) { m["version"] = ReportVersion + 1 }},
		{"no results", func(m map[string]any) { m["results"] = []any{} }},
		{"figure count mismatch", func(m map[string]any) {
			meta := m["meta"].(map[string]any)
			meta["figures"] = []any{"fig2", "fig6"}
		}},
	}
	for _, tc := range cases {
		b, err := json.Marshal(good)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		tc.mutate(m)
		mutated, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateReport(mutated); err == nil {
			t.Fatalf("%s: validation passed, want error", tc.name)
		}
	}
	if err := ValidateReport([]byte("{not json")); err == nil {
		t.Fatal("garbage input validated")
	}
}

// TestRegistrySnapshotsDeterministic: the canonical smoke run produces
// one snapshot per NIC mode, sees real traffic, and is bit-stable
// across repetitions (the report is diffable).
func TestRegistrySnapshotsDeterministic(t *testing.T) {
	d := Quick()
	a := RegistrySnapshots(d)
	if len(a) != 2 {
		t.Fatalf("snapshots = %d, want 2 (standard, ioctopus)", len(a))
	}
	if a[0].Mode != "standard" || a[1].Mode != "ioctopus" {
		t.Fatalf("modes = %q, %q", a[0].Mode, a[1].Mode)
	}
	for _, rs := range a {
		if rs.SimSeconds <= 0 || len(rs.Samples) == 0 {
			t.Fatalf("snapshot %q empty: %+v", rs.Mode, rs)
		}
		found := false
		for _, s := range rs.Samples {
			if s.Name == "server/nic/pf0/rx_bytes" && s.Value > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("snapshot %q saw no server rx traffic", rs.Mode)
		}
	}
	b := RegistrySnapshots(d)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatal("registry snapshots are not deterministic across runs")
	}
}
