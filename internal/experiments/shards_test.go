package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
)

// shardRun renders fig2 + chaos and snapshots the canonical telemetry
// registry at the given shard count and GOMAXPROCS. Everything a report
// exports is covered: rendered tables, pass/fail checks, and the raw
// metrics samples (engine clocks, pool depths, pipe counters).
func shardRun(t *testing.T, shards, procs int) (rendered string, snapshots []byte) {
	t.Helper()
	oldProcs := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(oldProcs)
	oldShards := Shards()
	SetShards(shards)
	defer SetShards(oldShards)

	d := Quick()
	for _, id := range []string{"fig2", "chaos"} {
		res, err := Run(id, d)
		if err != nil {
			t.Fatalf("shards=%d procs=%d: %s: %v", shards, procs, id, err)
		}
		rendered += res.Render()
	}
	snaps, err := json.Marshal(RegistrySnapshots(d))
	if err != nil {
		t.Fatalf("shards=%d procs=%d: marshal snapshots: %v", shards, procs, err)
	}
	return rendered, snaps
}

// TestShardDeterminism is the tentpole's contract test: the sharded
// engine must be an invisible optimization. fig2 (the headline result)
// and chaos (fault windows, retransmission, PF failover — the hardest
// path to keep deterministic) must render byte-identically, with
// byte-identical metrics snapshots, at every shard count and at any
// GOMAXPROCS. Shard counts above one per host clamp, so 4 also proves
// the clamp changes nothing.
func TestShardDeterminism(t *testing.T) {
	refRender, refSnaps := shardRun(t, 1, runtime.NumCPU())
	if refRender == "" {
		t.Fatal("reference run rendered nothing")
	}

	cases := []struct{ shards, procs int }{
		{1, 1},
		{2, 1},
		{2, runtime.NumCPU()},
		{4, runtime.NumCPU()},
	}
	if testing.Short() {
		cases = cases[2:3] // the one case that actually runs shards concurrently
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("shards=%d/procs=%d", tc.shards, tc.procs), func(t *testing.T) {
			gotRender, gotSnaps := shardRun(t, tc.shards, tc.procs)
			if gotRender != refRender {
				t.Errorf("rendered output diverges from serial reference:\n--- got\n%s\n--- want\n%s",
					gotRender, refRender)
			}
			if string(gotSnaps) != string(refSnaps) {
				t.Errorf("metrics snapshots diverge from serial reference:\n--- got\n%s\n--- want\n%s",
					gotSnaps, refSnaps)
			}
		})
	}
}
