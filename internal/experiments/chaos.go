package experiments

import (
	"fmt"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/eth"
	"ioctopus/internal/faults"
	"ioctopus/internal/kernel"
	"ioctopus/internal/metrics"
	"ioctopus/internal/netstack"
	"ioctopus/internal/sim"
)

// The chaos run is not a paper figure, so it stays out of IDs() (and
// therefore out of `-fig all`); it is invoked by name.
func init() { registerHidden("chaos", runChaos) }

// chaosSeed drives the loss RNG; the whole run is a pure function of it.
const chaosSeed = 42

// runChaos drives a single netperf-style TCP stream into the octoNIC
// server while a seeded fault schedule tries to break it:
//
//	0.30T  PF0 link down   — the PF serving the flow dies; the octo team
//	                         driver fails every flow over to PF1 and
//	                         re-posts the descriptors stranded in PF0's
//	                         rings.
//	0.50T  PF0 link up     — the driver fails back.
//	0.55T  2% loss         — client->server frames drop for 0.10T; the
//	                         retransmission timer recovers each one.
//	0.62T  core stall      — the client's send core loses 1ms to an
//	                         SMI-like event.
//	0.68T  fabric degrade  — the server's node0->node1 link runs at half
//	                         bandwidth, double latency for 0.10T.
//
// Recovery is judged against the pre-fault steady state: throughput
// during the PF0 outage (served via PF1) and after failback must both
// return to >=95%, no segment may be lost end to end, and the whole
// run must be byte-identical for a fixed seed (scripts/check.sh runs it
// twice and diffs).
func runChaos(d Durations) *Result {
	r := &Result{ID: "chaos", Title: "fault injection: PF failover + retransmission under a seeded schedule"}
	T := d.Timeline

	sp := netstack.DefaultParams()
	sp.RetxTimeout = 2 * time.Millisecond
	sp.RetxMaxTries = 12

	frac := func(pct int) time.Duration { return T * time.Duration(pct) / 100 }
	plan := &faults.Plan{
		Seed: chaosSeed,
		Events: []faults.Event{
			{At: frac(30), Kind: faults.LinkFlap, PF: 0, Duration: frac(20)},
			{At: frac(55), Kind: faults.Loss, Dir: faults.ClientToServer, Prob: 0.02, Duration: frac(10)},
			{At: frac(58), Kind: faults.Burst, Dir: faults.ServerToClient, Duration: frac(2)},
			{At: frac(62), Kind: faults.Stall, Core: 0, Duration: time.Millisecond},
			{At: frac(68), Kind: faults.Degrade, From: 0, To: 1, BWFactor: 0.5, LatFactor: 2, Duration: frac(10)},
		},
	}

	cl := newCluster(core.Config{
		Mode:        core.ModeIOctopus,
		StackParams: &sp,
		FaultPlan:   plan,
		Seed:        chaosSeed,
	})
	defer cl.Drain()

	var rxBytes int64
	cl.Server.Stack.Listen(7, func(s *netstack.Socket) {
		cl.Server.Kernel.Spawn("netserver", 0, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				rxBytes += n
			}
		})
	})
	var txBytes int64
	cl.Client.Kernel.Spawn("netperf", 0, func(th *kernel.Thread) {
		sock, err := cl.Client.Stack.Dial(th, core.IPServerPF0, 7, eth.ProtoTCP)
		if err != nil {
			panic(err)
		}
		for {
			sock.Send(th, 65536)
			txBytes += 65536
		}
	})

	// A reverse stream (server -> client) exercises the Tx side of the
	// outage: segments the server posts into PF0's rings while the link
	// is dead complete flagged Dropped and must be re-posted on PF1.
	var revRx int64
	cl.Client.Stack.Listen(9, func(s *netstack.Socket) {
		cl.Client.Kernel.Spawn("revsink", cl.Client.Topo.CoresOn(0)[1].ID, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				revRx += n
			}
		})
	})
	var revTx int64
	cl.Server.Kernel.Spawn("revsrc", cl.Server.Topo.CoresOn(0)[1].ID, func(th *kernel.Thread) {
		sock, err := cl.Server.Stack.Dial(th, core.IPClient, 9, eth.ProtoTCP)
		if err != nil {
			panic(err)
		}
		for {
			sock.Send(th, 65536)
			revTx += 65536
		}
	})

	nicRx := func() float64 {
		return cl.Server.NIC.PF(0).RxBytes() + cl.Server.NIC.PF(1).RxBytes()
	}
	sampler := metrics.NewSampler(cl.Eng, d.SampleEvery)
	rate := sampler.TrackRate("delivered Gb/s", func() float64 { return float64(rxBytes) * 8 / 1e9 })
	pf0 := sampler.TrackRate("pf0 Gb/s", func() float64 { return cl.Server.NIC.PF(0).RxBytes() * 8 / 1e9 })
	pf1 := sampler.TrackRate("pf1 Gb/s", func() float64 { return cl.Server.NIC.PF(1).RxBytes() * 8 / 1e9 })
	sampler.Start()

	// Windowed rates, each bracketed by engine runs: pre-fault steady
	// state, mid-outage (PF0 dead, PF1 serving), and post-recovery.
	var cursor time.Duration
	advance := func(to time.Duration) {
		cl.Run(to - cursor)
		cursor = to
	}
	window := func(from, to time.Duration) float64 {
		advance(from)
		start := nicRx()
		advance(to)
		return (nicRx() - start) * 8 / (to - from).Seconds() / 1e9
	}
	preRate := window(frac(10), frac(30))
	midRate := window(frac(35), frac(48))
	postRate := window(frac(80), T)

	// Dip depth and recovery time come from the sampled series: the
	// deepest delivered-rate sample inside the fault region, and the
	// first sample at/after the failback that is back within 95%.
	dip := preRate
	recoverAt := -1.0
	for i, tm := range rate.Times {
		v := rate.Values[i]
		if tm > sim.Time(frac(30)) && tm < sim.Time(frac(80)) && v < dip {
			dip = v
		}
		if recoverAt < 0 && tm >= sim.Time(frac(50)) && v >= 0.95*preRate {
			recoverAt = tm.Seconds() - frac(50).Seconds()
		}
	}

	retx := cl.Client.Stack.RetxRetransmits() + cl.Server.Stack.RetxRetransmits()
	abandoned := cl.Client.Stack.RetxAbandoned() + cl.Server.Stack.RetxAbandoned()
	linkDrops := cl.Server.NIC.PF(0).RxLinkDrops() + cl.Server.NIC.PF(0).TxLinkDrops()
	lost := cl.Faults.TotalWireDrops() + linkDrops

	t := metrics.NewTable("chaos recovery summary",
		"window", "Gb/s", "vs pre")
	t.AddRow("pre-fault [0.10T,0.30T)", preRate, 1.0)
	t.AddRow("PF0 dead, failover [0.35T,0.48T)", midRate, ratio(midRate, preRate))
	t.AddRow("recovered [0.80T,T)", postRate, ratio(postRate, preRate))
	r.Tables = append(r.Tables, t)

	ct := metrics.NewTable("fault and recovery counters", "counter", "value")
	ct.AddRow("faults: link transitions", float64(cl.Faults.LinkTransitions()))
	ct.AddRow("faults: frames dropped on wire", float64(cl.Faults.TotalWireDrops()))
	ct.AddRow("nic: frames dropped at dead PF0", float64(linkDrops))
	ct.AddRow("driver: failovers", float64(cl.Octo.Failovers()))
	ct.AddRow("driver: failbacks", float64(cl.Octo.Failbacks()))
	ct.AddRow("driver: descriptors reposted", float64(cl.Octo.Reposted()))
	ct.AddRow("stack: segments retransmitted", float64(retx))
	ct.AddRow("stack: duplicate segments discarded", float64(cl.Server.Stack.RetxDuplicates()))
	ct.AddRow("stack: segments abandoned", float64(abandoned))
	r.Tables = append(r.Tables, ct)

	r.Series = append(r.Series, rate, pf0, pf1)
	r.Notes = append(r.Notes,
		fmt.Sprintf("seed %d; deepest delivered-rate sample during faults %.1f Gb/s (%.0f%% of pre)",
			chaosSeed, dip, 100*ratio(dip, preRate)),
		fmt.Sprintf("recovery time after failback: %.1f ms (first sample back above 95%% of pre)",
			recoverAt*1e3),
		fmt.Sprintf("forward sent %d bytes, delivered %d; reverse sent %d, delivered %d; gaps are in-flight/buffered data",
			txBytes, rxBytes, revTx, revRx))

	// A flow may hold SendWindow unacked bytes plus RxBufBytes queued at
	// the receiver awaiting Recv; anything beyond that bound would be a
	// segment that was truly lost (dropped and never retransmitted).
	inFlightBound := sp.SendWindow + sp.RxBufBytes

	r.checkTrue("faults actually dropped traffic", lost > 0,
		fmt.Sprintf("%d frames killed (wire %d, dead PF %d)", lost, cl.Faults.TotalWireDrops(), linkDrops))
	r.checkTrue("driver failed over and back", cl.Octo.Failovers() >= 1 && cl.Octo.Failbacks() >= 1,
		fmt.Sprintf("failovers=%d failbacks=%d", cl.Octo.Failovers(), cl.Octo.Failbacks()))
	r.checkTrue("driver reposted stranded Tx descriptors", cl.Octo.Reposted() >= 1,
		fmt.Sprintf("reposted=%d", cl.Octo.Reposted()))
	r.checkTrue("retransmission recovered lost segments", retx >= 1,
		fmt.Sprintf("retransmits=%d", retx))
	r.checkTrue("no segment abandoned", abandoned == 0, fmt.Sprintf("abandoned=%d", abandoned))
	r.checkTrue("zero end-to-end loss forward (gap <= in-flight bound)",
		txBytes-rxBytes <= inFlightBound,
		fmt.Sprintf("gap=%d bound=%d", txBytes-rxBytes, inFlightBound))
	r.checkTrue("zero end-to-end loss reverse (gap <= in-flight bound)",
		revTx-revRx <= inFlightBound,
		fmt.Sprintf("gap=%d bound=%d", revTx-revRx, inFlightBound))
	// The outage can legitimately run FASTER than pre-fault: failover
	// moves softirq processing to the surviving PF's cores, unloading
	// the single app core — hence the generous upper bound.
	r.check("throughput during failover (PF1 serving) vs pre", ratio(midRate, preRate), 0.95, 2.5)
	r.check("throughput after recovery vs pre", ratio(postRate, preRate), 0.95, 1.10)
	return r
}
