package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"

	"ioctopus/internal/core"
	"ioctopus/internal/metrics"
	"ioctopus/internal/topology"
	"ioctopus/internal/workloads"
)

// The JSON export is versioned so plotting pipelines can detect what
// they are reading: Schema names the artifact, Version increments on
// incompatible layout changes.
const (
	ReportSchema  = "ioctobench-report"
	ReportVersion = 1
)

// ReportDurations is the window configuration a report was run with,
// in seconds.
type ReportDurations struct {
	WarmupS      float64 `json:"warmup_s"`
	MeasureS     float64 `json:"measure_s"`
	TimelineS    float64 `json:"timeline_s"`
	SampleEveryS float64 `json:"sample_every_s"`
}

// ReportMeta records how the report was produced.
type ReportMeta struct {
	Figures     []string        `json:"figures"`
	Quick       bool            `json:"quick"`
	Parallelism int             `json:"parallelism"`
	GoVersion   string          `json:"go_version"`
	Durations   ReportDurations `json:"durations"`
}

// RegistrySnapshot is a full-system telemetry dump from the canonical
// smoke run of one NIC mode (see RegistrySnapshots).
type RegistrySnapshot struct {
	Mode       string           `json:"mode"`
	SimSeconds float64          `json:"sim_seconds"`
	Samples    []metrics.Sample `json:"samples"`
}

// Report is the versioned machine-readable form of an ioctobench run:
// metadata, every figure's tables/series/checks, and optional registry
// snapshots.
type Report struct {
	Schema   string             `json:"schema"`
	Version  int                `json:"version"`
	Meta     ReportMeta         `json:"meta"`
	Results  []*Result          `json:"results"`
	Registry []RegistrySnapshot `json:"registry,omitempty"`
}

// NewReport assembles a report around already-computed results.
func NewReport(ids []string, quick bool, d Durations, results []*Result) *Report {
	return &Report{
		Schema:  ReportSchema,
		Version: ReportVersion,
		Meta: ReportMeta{
			Figures:     ids,
			Quick:       quick,
			Parallelism: Parallelism(),
			GoVersion:   runtime.Version(),
			Durations: ReportDurations{
				WarmupS:      d.Warmup.Seconds(),
				MeasureS:     d.Measure.Seconds(),
				TimelineS:    d.Timeline.Seconds(),
				SampleEveryS: d.SampleEvery.Seconds(),
			},
		},
		Results: results,
	}
}

// RegistrySnapshots runs the canonical smoke workload — a single
// client->server TCP stream for warmup+measure — once per NIC mode and
// snapshots each cluster's full metrics registry. The figure runners
// build and discard clusters internally, so this is how a report gets
// whole-system telemetry: a deterministic, mode-comparable dump rather
// than whichever cluster happened to die last.
func RegistrySnapshots(d Durations) []RegistrySnapshot {
	var out []RegistrySnapshot
	for _, mode := range []core.NICMode{core.ModeStandard, core.ModeIOctopus} {
		cl := newCluster(core.Config{Mode: mode})
		w := workloads.StartStream(cl, workloads.StreamConfig{
			MsgSize:     64 * 1024,
			Direction:   workloads.Rx,
			ServerCores: []topology.CoreID{0},
			ClientCores: []topology.CoreID{0},
			ServerIP:    core.IPServerPF0,
		})
		cl.Run(d.Warmup)
		w.MeasureStart()
		cl.Run(d.Measure)
		snap := cl.Reg.Snapshot()
		out = append(out, RegistrySnapshot{
			Mode:       mode.String(),
			SimSeconds: cl.Eng.Now().Seconds(),
			Samples:    snap,
		})
		cl.Drain()
	}
	return out
}

// reportWire mirrors Report for validation: Result marshals through
// jsonResult, so it must be decoded through the same shape.
type reportWire struct {
	Schema   string             `json:"schema"`
	Version  int                `json:"version"`
	Meta     ReportMeta         `json:"meta"`
	Results  []jsonResult       `json:"results"`
	Registry []RegistrySnapshot `json:"registry"`
}

// ValidateReport checks that data is a well-formed report of the
// current schema version: the round-trip check `ioctobench -json` runs
// before declaring success, and what scripts/check.sh gates on.
func ValidateReport(data []byte) error {
	var w reportWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("report: not valid JSON: %w", err)
	}
	if w.Schema != ReportSchema {
		return fmt.Errorf("report: schema %q, want %q", w.Schema, ReportSchema)
	}
	if w.Version != ReportVersion {
		return fmt.Errorf("report: version %d, want %d", w.Version, ReportVersion)
	}
	if len(w.Results) == 0 {
		return fmt.Errorf("report: no results")
	}
	if len(w.Meta.Figures) != len(w.Results) {
		return fmt.Errorf("report: meta names %d figures but has %d results",
			len(w.Meta.Figures), len(w.Results))
	}
	for i, r := range w.Results {
		if r.ID == "" {
			return fmt.Errorf("report: result %d has no id", i)
		}
		for _, t := range r.Tables {
			if len(t.Headers) == 0 {
				return fmt.Errorf("report: result %q table %q has no headers", r.ID, t.Title)
			}
		}
		for _, s := range r.Series {
			if len(s.TimesS) != len(s.Values) {
				return fmt.Errorf("report: result %q series %q has %d times for %d values",
					r.ID, s.Name, len(s.TimesS), len(s.Values))
			}
		}
	}
	for _, rs := range w.Registry {
		if rs.Mode == "" {
			return fmt.Errorf("report: registry snapshot without a mode")
		}
		for _, s := range rs.Samples {
			if s.Name == "" {
				return fmt.Errorf("report: registry snapshot %q has an unnamed sample", rs.Mode)
			}
		}
	}
	return nil
}

// Encode marshals the report with stable indentation (the on-disk
// format of `ioctobench -json <path>`).
func (r *Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
