// Package experiments reproduces every evaluation artifact of the paper
// — Figures 6 through 15 plus the §2.6 trend data of Figure 2 — and a
// set of ablations for the design choices DESIGN.md calls out. Each
// runner builds the §5 testbed, drives the same workload with the same
// parameters, and emits the rows/series the paper plots, together with
// shape checks (who wins, by what factor, where the crossover falls).
package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"ioctopus/internal/metrics"
	"ioctopus/internal/sim"
)

// Check is one shape assertion against the paper.
type Check struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	Series []*metrics.Series
	Notes  []string
	Checks []Check
}

// check records a bounded-ratio assertion.
func (r *Result) check(name string, value, lo, hi float64) {
	r.Checks = append(r.Checks, Check{
		Name:   name,
		Pass:   value >= lo && value <= hi,
		Detail: fmt.Sprintf("%.3f (want %.2f..%.2f)", value, lo, hi),
	})
}

// checkTrue records a boolean assertion.
func (r *Result) checkTrue(name string, ok bool, detail string) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: ok, Detail: detail})
}

// Passed reports whether every check passed.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Render formats the full result as text.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	for _, s := range r.Series {
		span := ""
		if s.Len() > 0 {
			span = fmt.Sprintf("  [%.2fs..%.2fs, max %.1f]",
				s.Times[0].Seconds(), s.Times[s.Len()-1].Seconds(), s.Max())
		}
		fmt.Fprintf(&b, "series %-22s %s%s\n", s.Name, s.Spark(), span)
	}
	if len(r.Series) > 0 {
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "check [%s] %s: %s\n", status, c.Name, c.Detail)
	}
	return b.String()
}

// Durations scales simulated warmup/measurement windows.
type Durations struct {
	Warmup  time.Duration
	Measure time.Duration
	// Timeline is the Figure 14 run length.
	Timeline time.Duration
	// SampleEvery is the Figure 14 sampling period.
	SampleEvery time.Duration
}

// Quick returns short windows for tests and CI.
func Quick() Durations {
	return Durations{
		Warmup:      4 * time.Millisecond,
		Measure:     16 * time.Millisecond,
		Timeline:    900 * time.Millisecond,
		SampleEvery: 10 * time.Millisecond,
	}
}

// Full returns the windows the committed EXPERIMENTS.md numbers use.
func Full() Durations {
	return Durations{
		Warmup:      10 * time.Millisecond,
		Measure:     60 * time.Millisecond,
		Timeline:    9 * time.Second,
		SampleEvery: 50 * time.Millisecond,
	}
}

// Runner is an experiment entry point.
type Runner func(d Durations) *Result

var registry = map[string]Runner{}
var registryOrder []string

func register(id string, fn Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = fn
	registryOrder = append(registryOrder, id)
}

// registerHidden registers a runner that is runnable by name but not
// part of IDs() — so `-fig all` and its committed output never change
// when a non-figure harness (the chaos run) is added.
func registerHidden(id string, fn Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = fn
}

// Has reports whether id names a runnable experiment, including hidden
// ones (CLI flag validation).
func Has(id string) bool {
	_, ok := registry[id]
	return ok
}

// Run executes one experiment by id.
func Run(id string, d Durations) (*Result, error) {
	fn, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return fn(d), nil
}

// jsonResult is the machine-readable form of a Result.
type jsonResult struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	Tables []jsonTable  `json:"tables,omitempty"`
	Series []jsonSeries `json:"series,omitempty"`
	Notes  []string     `json:"notes,omitempty"`
	Checks []Check      `json:"checks"`
	Passed bool         `json:"passed"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

type jsonSeries struct {
	Name   string    `json:"name"`
	TimesS []float64 `json:"times_s"`
	Values []float64 `json:"values"`
}

// MarshalJSON exports the result for plotting pipelines
// (ioctobench -json).
func (r *Result) MarshalJSON() ([]byte, error) {
	out := jsonResult{
		ID: r.ID, Title: r.Title, Notes: r.Notes,
		Checks: r.Checks, Passed: r.Passed(),
	}
	for _, t := range r.Tables {
		out.Tables = append(out.Tables, jsonTable{
			Title: t.Title, Headers: t.Headers, Rows: t.Cells(),
		})
	}
	for _, s := range r.Series {
		js := jsonSeries{Name: s.Name, Values: s.Values}
		for _, tm := range s.Times {
			js.TimesS = append(js.TimesS, sim.Time(tm).Seconds())
		}
		out.Series = append(out.Series, js)
	}
	return json.Marshal(out)
}

// IDs lists experiment ids: paper figures in figure order, then the
// ablations and baselines alphabetically.
func IDs() []string {
	ids := append([]string(nil), registryOrder...)
	rank := func(id string) (int, string) {
		var n int
		if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
			return n, id
		}
		return 1000, id
	}
	sort.SliceStable(ids, func(i, j int) bool {
		ni, si := rank(ids[i])
		nj, sj := rank(ids[j])
		if ni != nj {
			return ni < nj
		}
		return si < sj
	})
	return ids
}
