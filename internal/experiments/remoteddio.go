package experiments

import (
	"fmt"

	"ioctopus/internal/core"
	"ioctopus/internal/driver"
	"ioctopus/internal/metrics"
	"ioctopus/internal/topology"
	"ioctopus/internal/workloads"
)

func init() { register("ablation-remote-ddio", runAblationRemoteDDIO) }

// runAblationRemoteDDIO makes §2.4's measurement executable: remote
// DDIO "already partially works" when a response ring is allocated
// local to the device and remote to the CPU — the NIC's completion
// writes then land in its local LLC instead of the CPU's DRAM. The
// paper found this yields at most a ~2% improvement on pktgen, because
// the CPU's read of the entry still crosses the interconnect either
// way; IOctopus removes the crossing itself.
func runAblationRemoteDDIO(d Durations) *Result {
	r := &Result{ID: "ablation-remote-ddio", Title: "remote DDIO does not solve NUDMA (§2.4)"}

	run := func(ringsOnNICNode bool) float64 {
		cfg := core.Config{Mode: core.ModeStandard}
		if ringsOnNICNode {
			p := driver.DefaultParams()
			p.CompRingNode = 0 // the NIC's node; pktgen runs on node 1
			cfg.DriverParams = &p
		}
		cl := newCluster(cfg)
		defer cl.Drain()
		coreID := cl.Server.Topo.CoresOn(1)[0].ID // remote to PF0
		w := workloads.StartPktgen(cl, cl.Dev0.(workloads.RawTxDevice),
			workloads.DefaultPktgenConfig(coreID, 64))
		cl.Run(d.Warmup)
		w.MeasureStart()
		cl.Run(d.Measure)
		return float64(w.Packets()) / d.Measure.Seconds() / 1e6
	}

	type ddioOut struct {
		mpps float64
		pkt  pktgenOut
	}
	outs := points(3, func(i int) ddioOut {
		switch i {
		case 0: // rings CPU-local: completion writes go to DRAM
			return ddioOut{mpps: run(false)}
		case 1: // rings NIC-local: completion writes DDIO, CPU reads cross
			return ddioOut{mpps: run(true)}
		default:
			return ddioOut{pkt: measurePktgen(cfgIOct, 64, d)}
		}
	})
	baseline, remoteDDIO, ioct := outs[0].mpps, outs[1].mpps, outs[2].pkt

	t := metrics.NewTable("remote pktgen, 64B packets",
		"configuration", "MPPS", "vs baseline")
	t.AddRow("remote (rings CPU-local)", baseline, 1.0)
	t.AddRow("remote + response ring NIC-local (remote DDIO)", remoteDDIO, ratio(remoteDDIO, baseline))
	t.AddRow("ioctopus", ioct.MPPS, ratio(ioct.MPPS, baseline))
	r.Tables = append(r.Tables, t)

	// Paper: "a marginal performance improvement of up to 2%"; §2.4 also
	// predicts the downside — "cache line ping-pongs between nodes" —
	// which is what the model's residency migration produces. Either
	// way: remote DDIO does not meaningfully help.
	r.check("remote DDIO does not meaningfully help (paper <= ~2% gain)",
		ratio(remoteDDIO, baseline), 0.75, 1.10)
	r.checkTrue("IOctopus improvement is not",
		ioct.MPPS > baseline*1.15,
		fmt.Sprintf("%.2f vs %.2f MPPS", ioct.MPPS, baseline))
	_ = topology.NoNode
	return r
}
