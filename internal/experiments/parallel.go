package experiments

import (
	"runtime"
	"sync"

	"ioctopus/internal/core"
)

// Every measurement point builds its own Cluster with its own Engine
// and seeds, so points are independent simulations: running them
// concurrently cannot change their results, only the wall-clock time.
// The figure runners fan their points across a bounded worker pool and
// slot results by index, so rendered output is identical at any
// parallelism level.

var (
	parMu sync.RWMutex
	// sem bounds the number of simulations in flight across all
	// experiments; its capacity is the parallelism level.
	sem = make(chan struct{}, runtime.GOMAXPROCS(0))
)

// SetParallelism bounds the number of concurrently running simulation
// points across all experiments. n < 1 is treated as 1 (fully serial).
// The default is runtime.GOMAXPROCS(0). Call between runs, not while
// experiments are in flight.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parMu.Lock()
	sem = make(chan struct{}, n)
	parMu.Unlock()
}

// Parallelism returns the current bound.
func Parallelism() int {
	parMu.RLock()
	defer parMu.RUnlock()
	return cap(sem)
}

// shardCount is the engine shard count applied to every cluster the
// harness builds. 1 (the default) is the serial engine.
var shardCount = 1

// SetShards sets how many engine shards each simulated cluster runs on
// (intra-point parallelism, vs SetParallelism's across-point
// parallelism). n < 1 is treated as 1; the testbed clamps at one shard
// per host. Results are byte-identical at any value. Call between
// runs, not while experiments are in flight.
func SetShards(n int) {
	if n < 1 {
		n = 1
	}
	parMu.Lock()
	shardCount = n
	parMu.Unlock()
}

// Shards returns the per-cluster engine shard count.
func Shards() int {
	parMu.RLock()
	defer parMu.RUnlock()
	return shardCount
}

// datapath is the completion-delivery mode applied to every cluster the
// harness builds. The zero value (interrupt) is byte-identical to the
// pre-PMD harness.
var datapath core.Datapath

// SetDatapath sets the datapath (interrupt, busypoll, hybrid) every
// harness-built cluster runs with — the `ioctobench -datapath` axis.
// Call between runs, not while experiments are in flight.
func SetDatapath(d core.Datapath) {
	parMu.Lock()
	datapath = d
	parMu.Unlock()
}

// GetDatapath returns the harness datapath.
func GetDatapath() core.Datapath {
	parMu.RLock()
	defer parMu.RUnlock()
	return datapath
}

// points runs fn(0..n-1) on the worker pool and returns the results
// slotted by index. With parallelism 1 it runs inline, in order; at any
// level the returned slice is identical because each point is an
// isolated deterministic simulation.
func points[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	parMu.RLock()
	s := sem
	parMu.RUnlock()
	if n <= 1 || cap(s) == 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		// Per-iteration loop variable (Go 1.22): capture directly.
		go func() {
			defer wg.Done()
			s <- struct{}{}
			defer func() { <-s }()
			out[i] = fn(i)
		}()
	}
	wg.Wait()
	return out
}

// grid runs fn over the cross product [0,outer) x [0,inner) and returns
// results indexed [o][i]. It flattens to a single fan-out so all
// outer*inner simulations can run concurrently.
func grid[T any](outer, inner int, fn func(o, i int) T) [][]T {
	flat := points(outer*inner, func(k int) T {
		return fn(k/inner, k%inner)
	})
	out := make([][]T, outer)
	for o := range out {
		out[o] = flat[o*inner : (o+1)*inner]
	}
	return out
}
