package experiments

import (
	"fmt"

	"ioctopus/internal/metrics"
)

// trendPoint is one year of the §2.6 technology-trend dataset (Figure
// 2): the fastest shipping NIC versus what one CPU could consume.
type trendPoint struct {
	year          int
	ethernetGen   string
	singlePortGbs float64 // full-duplex throughput, single-port NIC
	dualPortGbs   float64
	maxCores      int // highest core count shipping that year (Intel/AMD)
}

// trendData reconstructs the figure's sources: Ethernet generation
// introductions and per-CPU core counts, 2008-2020.
var trendData = []trendPoint{
	{2008, "10GbE", 20, 40, 4},
	{2010, "10GbE", 20, 40, 8},
	{2012, "40GbE", 80, 160, 10},
	{2014, "100GbE", 200, 400, 12},
	{2016, "100GbE", 200, 400, 18},
	{2017, "100GbE", 200, 400, 24},
	{2018, "200GbE", 400, 800, 28},
	{2019, "200GbE", 400, 800, 32},
	{2020, "400GbE", 800, 1600, 48},
}

// Per-core consumption bounds the figure assumes: the cloud-measured
// upper bound (513 Mb/s/core) and the aggressive bare-metal bound
// (10 Gb/s/core at ~50% CPU).
const (
	cloudPerCoreGbs     = 0.513
	bareMetalPerCoreGbs = 10.0
)

func init() { register("fig2", runFig2) }

// runFig2 regenerates the Figure 2 trend series and verifies its claim:
// a single NIC's bandwidth exceeds what even an aggressively-driven CPU
// can consume, so one device per server is enough (§2.6).
func runFig2(d Durations) *Result {
	r := &Result{ID: "fig2", Title: "NIC vs CPU bandwidth trend, 2008-2020 (§2.6)"}
	t := metrics.NewTable("Figure 2: throughput [Gb/s]",
		"year", "ethernet", "NIC 1-port", "NIC 2-port", "cores", "CPU cloud", "CPU 10G/core")
	nicAlwaysExceedsCloud := true
	dualExceedsAggressive := 0
	for _, p := range trendData {
		cloud := cloudPerCoreGbs * float64(p.maxCores)
		aggressive := bareMetalPerCoreGbs * float64(p.maxCores)
		t.AddRow(p.year, p.ethernetGen, p.singlePortGbs, p.dualPortGbs, p.maxCores, cloud, aggressive)
		if p.singlePortGbs <= cloud {
			nicAlwaysExceedsCloud = false
		}
		if p.dualPortGbs >= aggressive {
			dualExceedsAggressive++
		}
	}
	r.Tables = append(r.Tables, t)
	r.checkTrue("single-port NIC always exceeds measured cloud per-CPU demand",
		nicAlwaysExceedsCloud, "NIC line above 513 Mb/s-per-core CPU line for every year")
	r.checkTrue("dual-port NIC covers even the 10 Gb/s-per-core bound in most years",
		dualExceedsAggressive >= len(trendData)/2,
		fmt.Sprintf("%d of %d years", dualExceedsAggressive, len(trendData)))
	r.Notes = append(r.Notes,
		"static dataset reconstructed from the figure's cited sources; no simulation involved")
	return r
}
