package experiments

import (
	"fmt"

	"ioctopus/internal/core"
	"ioctopus/internal/metrics"
	"ioctopus/internal/nvme"
	"ioctopus/internal/topology"
	"ioctopus/internal/workloads"
)

func init() {
	register("fig15", runFig15)
	register("fig15-octossd", runFig15OctoSSD)
}

// fioCores are the fio threads' cores: socket 0, remote from the SSDs.
func fig15Cores() []topology.CoreID {
	return []topology.CoreID{0, 1, 2, 3, 4, 5, 6, 7}
}

// measureFig15 runs fio (and optionally STREAM antagonists) on the
// Skylake storage rig, returning absolute rates in GB/s.
func measureFig15(streams int, withFio bool, policy nvme.Policy, dualPort bool, d Durations) (fioGBs, streamGBs float64) {
	rig := core.NewStorageRig(core.StorageConfig{
		Drives: 4, SSDNode: 1, Policy: policy, DualPort: dualPort,
	})
	defer rig.Drain()
	var f *workloads.Fio
	if withFio {
		f = workloads.StartFio(rig, workloads.DefaultFioConfig(fig15Cores()))
	}
	var ant *workloads.Antagonist
	if streams > 0 {
		ant = workloads.StartAntagonistOn(rig.Host, streams, 1, 0,
			workloads.AntagonistConfig{DemandPerInstance: 10e9})
	}
	rig.Run(d.Warmup * 10) // flash latencies need a longer rampup
	if f != nil {
		f.MeasureStart()
	}
	if ant != nil {
		ant.MeasureStart()
	}
	window := d.Measure * 5
	rig.Run(window)
	if f != nil {
		fioGBs = workloads.FioGBs(f.Bytes(), window)
	}
	if ant != nil {
		streamGBs = ant.WindowBytes() / window.Seconds() / 1e9
	}
	return
}

// runFig15 reproduces Figure 15: four NVMe drives read by fio from the
// remote socket while STREAM instances saturate the UPI. Throughputs
// are normalized to each workload's antagonist-free run; fio degrades
// by up to ~24% once the interconnect saturates.
func runFig15(d Durations) *Result {
	r := &Result{ID: "fig15", Title: "NVMe fio vs STREAM interconnect contention (Fig 15)"}
	counts := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	type f15Out struct{ fio, stream float64 }
	// Point 0 is the antagonist-free fio baseline; then per STREAM count
	// a solo-STREAM run and a contended run.
	outs := points(1+2*len(counts), func(i int) f15Out {
		var o f15Out
		switch {
		case i == 0:
			o.fio, _ = measureFig15(0, true, nvme.SinglePath, false, d)
		case i <= len(counts): // solo STREAM
			_, o.stream = measureFig15(counts[i-1], false, nvme.SinglePath, false, d)
		default: // fio + STREAM contention
			o.fio, o.stream = measureFig15(counts[i-1-len(counts)], true, nvme.SinglePath, false, d)
		}
		return o
	})
	fioSolo := outs[0].fio
	t := metrics.NewTable("Figure 15 (normalized)",
		"STREAMs", "fio GB/s", "fio norm", "STREAM GB/s", "STREAM norm")
	var fioNormAt2, fioNormAt10 float64
	for i, n := range counts {
		streamSolo := outs[1+i].stream
		fio, stream := outs[1+len(counts)+i].fio, outs[1+len(counts)+i].stream
		fioNorm := ratio(fio, fioSolo)
		t.AddRow(n, fio, fioNorm, stream, ratio(stream, streamSolo))
		if n == 2 {
			fioNormAt2 = fioNorm
		}
		if n == 10 {
			fioNormAt10 = fioNorm
		}
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes, fmt.Sprintf("fio solo: %.2f GB/s (4 x PM1725a-like drives)", fioSolo))
	// Paper: fio unaffected at low STREAM counts, degrades up to ~24%.
	r.check("fio unaffected by light STREAM load", fioNormAt2, 0.95, 1.05)
	r.check("fio degradation under UPI saturation (paper ~0.76)", fioNormAt10, 0.6, 0.9)
	return r
}

// runFig15OctoSSD runs the paper's future-work extension built here:
// dual-port drives with IOctopus-style local-port routing eliminate the
// degradation entirely.
func runFig15OctoSSD(d Durations) *Result {
	r := &Result{ID: "fig15-octossd", Title: "OctoSSD: dual-port local routing removes NVMe NUDMA (§5.4 extension)"}
	t := metrics.NewTable("OctoSSD under 10 STREAM instances",
		"policy", "fio GB/s", "normalized to solo")
	type job struct {
		streams int
		policy  nvme.Policy
	}
	jobs := []job{
		{0, nvme.SinglePath}, {0, nvme.OctoSSD},
		{10, nvme.SinglePath}, {10, nvme.OctoSSD},
	}
	outs := points(len(jobs), func(i int) float64 {
		fio, _ := measureFig15(jobs[i].streams, true, jobs[i].policy, true, d)
		return fio
	})
	soloSingle, soloOcto, heavySingle, heavyOcto := outs[0], outs[1], outs[2], outs[3]
	t.AddRow("single-path", heavySingle, ratio(heavySingle, soloSingle))
	t.AddRow("octossd", heavyOcto, ratio(heavyOcto, soloOcto))
	r.Tables = append(r.Tables, t)
	r.check("single-path degrades", ratio(heavySingle, soloSingle), 0.6, 0.9)
	r.check("OctoSSD does not", ratio(heavyOcto, soloOcto), 0.93, 1.05)
	return r
}
