package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"ioctopus/internal/metrics"
	"ioctopus/internal/sim"
)

// TestEveryFigureReproduces runs every experiment at quick durations and
// requires all paper-shape checks to pass. This is the repository's
// headline test: the full evaluation section, end to end.
func TestEveryFigureReproduces(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, Quick())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Checks) == 0 {
				t.Fatal("experiment has no shape checks")
			}
			for _, c := range res.Checks {
				if !c.Pass {
					t.Errorf("check %q failed: %s", c.Name, c.Detail)
				}
			}
			if !strings.Contains(res.Render(), res.ID) {
				t.Error("render should include the id")
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) < 12 {
		t.Fatalf("expected at least 12 experiments, have %d: %v", len(ids), ids)
	}
	want := []string{"fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15"}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, err := Run("nope", Quick()); err == nil {
		t.Error("unknown id should error")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{ID: "x", Title: "t"}
	r.check("in band", 1.0, 0.5, 1.5)
	r.check("out of band", 2.0, 0.5, 1.5)
	if r.Passed() {
		t.Error("Passed should be false with a failing check")
	}
	out := r.Render()
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "FAIL") {
		t.Errorf("render missing statuses:\n%s", out)
	}
}

func TestResultJSON(t *testing.T) {
	res, err := Run("fig2", Quick())
	if err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(enc, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["id"] != "fig2" || decoded["passed"] != true {
		t.Fatalf("json = %v", decoded)
	}
	if _, ok := decoded["tables"].([]any); !ok {
		t.Fatal("tables missing from json")
	}
}

func TestSeriesRenderUsesSparkline(t *testing.T) {
	r := &Result{ID: "x", Title: "t"}
	s := &metrics.Series{Name: "pf0"}
	for i := 0; i < 10; i++ {
		s.Add(sim.Time(i*1000), float64(i))
	}
	r.Series = append(r.Series, s)
	out := r.Render()
	if !strings.Contains(out, "█") {
		t.Fatalf("render should contain sparkline glyphs:\n%s", out)
	}
}
