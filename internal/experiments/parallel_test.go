package experiments

import (
	"sync/atomic"
	"testing"
)

// TestPointsOrderAndCoverage: results land at their own index, every
// index runs exactly once, at serial and parallel levels.
func TestPointsOrderAndCoverage(t *testing.T) {
	for _, par := range []int{1, 4} {
		old := Parallelism()
		SetParallelism(par)
		var calls atomic.Int64
		out := points(50, func(i int) int {
			calls.Add(1)
			return i * i
		})
		SetParallelism(old)
		if calls.Load() != 50 {
			t.Fatalf("par=%d: fn ran %d times, want 50", par, calls.Load())
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("par=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

// TestGridShape: grid slots results by (outer, inner).
func TestGridShape(t *testing.T) {
	g := grid(3, 4, func(o, i int) int { return 10*o + i })
	if len(g) != 3 {
		t.Fatalf("outer = %d, want 3", len(g))
	}
	for o := range g {
		if len(g[o]) != 4 {
			t.Fatalf("inner = %d, want 4", len(g[o]))
		}
		for i, v := range g[o] {
			if v != 10*o+i {
				t.Fatalf("g[%d][%d] = %d, want %d", o, i, v, 10*o+i)
			}
		}
	}
}

// TestSetParallelismClamps: n < 1 degrades to serial, not a panic.
func TestSetParallelismClamps(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(0)
	if Parallelism() != 1 {
		t.Fatalf("Parallelism() = %d, want 1", Parallelism())
	}
}

// TestFig9Deterministic guards both halves of the performance overhaul:
// the engine's value-heap rewrite (same run twice must render
// identically) and the parallel point-runner (a fanned-out run must
// render identically to the serial one, bit for bit).
func TestFig9Deterministic(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	d := Quick()

	SetParallelism(1)
	serial1, err := Run("fig9", d)
	if err != nil {
		t.Fatal(err)
	}
	serial2, err := Run("fig9", d)
	if err != nil {
		t.Fatal(err)
	}
	if serial1.Render() != serial2.Render() {
		t.Fatalf("two serial fig9 runs differ:\n--- first\n%s\n--- second\n%s",
			serial1.Render(), serial2.Render())
	}

	SetParallelism(8)
	par, err := Run("fig9", d)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := par.Render(), serial1.Render(); got != want {
		t.Fatalf("parallel fig9 differs from serial:\n--- parallel\n%s\n--- serial\n%s", got, want)
	}
}
