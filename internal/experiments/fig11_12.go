package experiments

import (
	"ioctopus/internal/eth"
	"ioctopus/internal/metrics"
	"ioctopus/internal/workloads"
)

func init() {
	register("fig11", runFig11)
	register("fig12", runFig12)
}

// runFig11 reproduces Figure 11: single-core TCP Rx co-located with
// 1..6 pairs of STREAM antagonists saturating the interconnect. Both
// configurations suffer, but ioct/local keeps 1.8-2.7x remote's
// throughput.
func runFig11(d Durations) *Result {
	r := &Result{ID: "fig11", Title: "TCP Rx under QPI congestion: 1-6 STREAM pairs (Fig 11)"}
	t := metrics.NewTable("Figure 11",
		"pairs", "ioct Gb/s", "remote Gb/s", "ratio", "ioct memGb/s", "remote memGb/s", "ioct cpu", "remote cpu")
	var maxRatio float64
	var ratioAt4 float64
	cfgs := []config{cfgIOct, cfgRemote}
	rows := grid(6, len(cfgs), func(o, i int) streamOut {
		return measureStream(cfgs[i], 65536, workloads.Rx, 1, o+1, d)
	})
	for pairs := 1; pairs <= 6; pairs++ {
		ioct, remote := rows[pairs-1][0], rows[pairs-1][1]
		rr := ratio(ioct.Gbps, remote.Gbps)
		t.AddRow(pairs, ioct.Gbps, remote.Gbps, rr, ioct.MemGbps, remote.MemGbps, ioct.CPU, remote.CPU)
		if rr > maxRatio {
			maxRatio = rr
		}
		if pairs == 4 {
			ratioAt4 = rr
		}
	}
	r.Tables = append(r.Tables, t)
	// Paper annotations: 1.82x, 2.67x, 2.17x.
	r.check("peak ioct/remote under congestion (paper up to 2.67)", maxRatio, 1.6, 3.4)
	r.check("ratio at 4 pairs (paper ~1.8-2.7)", ratioAt4, 1.4, 3.4)
	return r
}

// runFig12 reproduces Figure 12: 64-byte UDP (sockperf) latency under
// the same STREAM congestion. The remote configuration's latency grows
// with interconnect load; ioct/local stays flat.
func runFig12(d Durations) *Result {
	r := &Result{ID: "fig12", Title: "UDP latency under QPI congestion: 1-6 STREAM pairs (Fig 12)"}
	t := metrics.NewTable("Figure 12 (mean one-way-equivalent RTT us)",
		"pairs", "ioct us", "remote us", "ioct/remote")
	var ioct1, ioct6, remote1, remote6 float64
	cfgs := []config{cfgIOct, cfgRemote}
	rows := grid(6, len(cfgs), func(o, i int) *workloads.RR {
		return measureRR(cfgs[i], 64, eth.ProtoUDP, true, o+1, d)
	})
	for pairs := 1; pairs <= 6; pairs++ {
		ioct, remote := rows[pairs-1][0], rows[pairs-1][1]
		iU := ioct.Mean().Seconds() * 1e6
		rU := remote.Mean().Seconds() * 1e6
		t.AddRow(pairs, iU, rU, ratio(iU, rU))
		switch pairs {
		case 1:
			ioct1, remote1 = iU, rU
		case 6:
			ioct6, remote6 = iU, rU
		}
	}
	r.Tables = append(r.Tables, t)
	// Paper: ioct 10-22% lower latency (ratios 0.90/0.81/0.78); remote
	// grows with congestion while ioct stays flat.
	r.check("ioct/remote latency at 6 pairs (paper ~0.78)", ratio(ioct6, remote6), 0.45, 0.92)
	// Pool-granularity pollution modelling lets ioct grow slightly at
	// extreme STREAM counts where the paper's stays flat; the claim
	// that matters — ioct insensitive while remote balloons — holds.
	r.check("ioct latency near-flat across congestion", ratio(ioct6, ioct1), 0.9, 1.25)
	r.checkTrue("remote latency grows with congestion", remote6 > remote1*1.05,
		"remote mean grew with STREAM pairs")
	return r
}
