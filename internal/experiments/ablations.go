package experiments

import (
	"fmt"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/metrics"
	"ioctopus/internal/netstack"
	"ioctopus/internal/pcie"
	"ioctopus/internal/topology"
	"ioctopus/internal/workloads"
)

func init() {
	register("ablation-wiring", runAblationWiring)
	register("ablation-sg", runAblationSG)
	register("ablation-window", runAblationCoalescing)
}

// runAblationWiring compares the §3.2 wiring options for the octoNIC:
// bifurcation (x16 -> 2 x8, the prototype), extenders (full x16 to each
// socket) and a programmable PCIe switch (full width, extra hop).
func runAblationWiring(d Durations) *Result {
	r := &Result{ID: "ablation-wiring", Title: "octoNIC wiring options: bifurcated vs extender vs switch (§3.2)"}
	t := metrics.NewTable("wiring ablation",
		"wiring", "Rx Gb/s (1 core)", "Rx Gb/s (14 cores)", "RR mean us")
	type out struct{ one, many, rr float64 }
	wirings := []pcie.Wiring{pcie.WiringBifurcated, pcie.WiringExtender, pcie.WiringSwitch}
	rows := grid(len(wirings), 3, func(o, i int) float64 {
		switch i {
		case 0:
			return measureWired(wirings[o], 1, d)
		case 1:
			return measureWired(wirings[o], 14, d)
		default:
			return measureWiredRR(wirings[o], d)
		}
	})
	results := map[string]out{}
	for i, w := range wirings {
		run1, runN, rr := rows[i][0], rows[i][1], rows[i][2]
		results[w.String()] = out{run1, runN, rr}
		t.AddRow(w.String(), run1, runN, rr)
	}
	r.Tables = append(r.Tables, t)
	bif, ext, sw := results["bifurcated"], results["extender"], results["switch"]
	r.check("extender >= bifurcated at full load (more lanes)", ext.many/bif.many, 0.99, 2.0)
	r.checkTrue("switch adds latency over bifurcation",
		sw.rr > bif.rr, fmt.Sprintf("%.2f vs %.2f us", sw.rr, bif.rr))
	r.check("single-core throughput similar across wirings", ext.one/bif.one, 0.9, 1.2)
	return r
}

func measureWired(w pcie.Wiring, instances int, d Durations) float64 {
	cl := newCluster(core.Config{Mode: core.ModeIOctopus, Wiring: w})
	defer cl.Drain()
	var serverCores, clientCores []topology.CoreID
	for i := 0; i < instances; i++ {
		serverCores = append(serverCores, cl.Server.Topo.CoresOn(topology.NodeID(i % 2))[i/2].ID)
		clientCores = append(clientCores, topology.CoreID(i%14))
	}
	wl := workloads.StartStream(cl, workloads.StreamConfig{
		MsgSize: 65536, Direction: workloads.Rx,
		ServerCores: serverCores, ClientCores: clientCores,
		ServerIP: core.IPServerPF0,
	})
	cl.Run(d.Warmup)
	wl.MeasureStart()
	cl.Run(d.Measure)
	return metrics.Gbps(float64(wl.Bytes()), d.Measure)
}

func measureWiredRR(w pcie.Wiring, d Durations) float64 {
	cl := newCluster(core.Config{Mode: core.ModeIOctopus, Wiring: w, DisableCoalescing: true})
	defer cl.Drain()
	wl := workloads.StartRR(cl, workloads.RRConfig{
		MsgSize: 64, ServerCore: 0, ClientCore: 0, ServerIP: core.IPServerPF0,
	})
	cl.Run(d.Warmup)
	wl.MeasureStart()
	cl.Run(2 * d.Measure)
	return wl.Mean().Seconds() * 1e6
}

// runAblationSG exercises IOctoSG (§3.3), which the paper's prototype
// did not implement: transmitting sendfile-style segments whose
// fragments span both NUMA nodes. With SG each fragment is read through
// its local PF; without it the remote fragment crosses the
// interconnect.
func runAblationSG(d Durations) *Result {
	r := &Result{ID: "ablation-sg", Title: "IOctoSG: cross-node fragments with/without fragment steering (§3.3)"}
	t := metrics.NewTable("IOctoSG ablation",
		"config", "Gb/s", "QPI GB moved")
	run := func(sg bool) (gbps, qpiGB float64) {
		cl := newCluster(core.Config{Mode: core.ModeIOctopus, EnableSG: sg})
		defer cl.Drain()
		var received int64
		cl.Client.Stack.Listen(7, func(s *netstack.Socket) {
			s.SteerTo(0)
			cl.Client.Kernel.Spawn("sink", 1, func(th *kernel.Thread) {
				for {
					n, _, ok := s.Recv(th)
					if !ok {
						return
					}
					received += n
				}
			})
		})
		cl.Server.Kernel.Spawn("sendfile", 0, func(th *kernel.Thread) {
			sock, err := cl.Server.Stack.Dial(th, core.IPClient, 7, eth.ProtoTCP)
			if err != nil {
				panic(err)
			}
			// Page-cache pages interleaved across nodes (the corner
			// case of §3.3).
			page0 := cl.Server.Mem.NewBuffer("pages0", 0, 32*1024)
			page1 := cl.Server.Mem.NewBuffer("pages1", 1, 32*1024)
			for {
				sock.SendFrags(th, []netstack.Frag{
					{Buf: page0, Bytes: 32 * 1024},
					{Buf: page1, Bytes: 32 * 1024},
				}, nil)
			}
		})
		cl.Run(d.Warmup)
		cl.ResetStats()
		base := received
		cl.Run(d.Measure)
		gbps = metrics.Gbps(float64(received-base), d.Measure)
		qpiGB = cl.Server.Fabric.TotalBytes() / 1e9
		return
	}
	type sgOut struct{ gbps, qpi float64 }
	outs := points(2, func(i int) sgOut {
		g, q := run(i == 0)
		return sgOut{g, q}
	})
	withSG, qpiWith := outs[0].gbps, outs[0].qpi
	withoutSG, qpiWithout := outs[1].gbps, outs[1].qpi
	t.AddRow("IOctoSG", withSG, qpiWith)
	t.AddRow("no SG", withoutSG, qpiWithout)
	r.Tables = append(r.Tables, t)
	r.checkTrue("SG removes interconnect crossings",
		qpiWith < qpiWithout*0.2,
		fmt.Sprintf("%.3f vs %.3f GB", qpiWith, qpiWithout))
	r.check("SG throughput on par or better", withSG/withoutSG, 0.95, 1.6)
	return r
}

// runAblationCoalescing quantifies the interrupt-moderation tradeoff
// the testbed toggles between throughput and latency runs.
func runAblationCoalescing(d Durations) *Result {
	r := &Result{ID: "ablation-window", Title: "interrupt coalescing: latency vs efficiency"}
	t := metrics.NewTable("coalescing ablation",
		"coalescing", "RR mean us", "Rx Gb/s")
	run := func(disable bool) (rrUs, gbps float64) {
		cl := newCluster(core.Config{Mode: core.ModeIOctopus, DisableCoalescing: disable})
		rr := workloads.StartRR(cl, workloads.RRConfig{
			MsgSize: 64, ServerCore: 0, ClientCore: 0, ServerIP: core.IPServerPF0,
		})
		cl.Run(d.Warmup)
		rr.MeasureStart()
		cl.Run(2 * d.Measure)
		rrUs = rr.Mean().Seconds() * 1e6
		cl.Drain()

		cl2 := newCluster(core.Config{Mode: core.ModeIOctopus, DisableCoalescing: disable})
		defer cl2.Drain()
		st := workloads.StartStream(cl2, workloads.StreamConfig{
			MsgSize: 65536, Direction: workloads.Rx,
			ServerCores: []topology.CoreID{0}, ServerIP: core.IPServerPF0,
		})
		cl2.Run(d.Warmup)
		st.MeasureStart()
		cl2.Run(d.Measure)
		gbps = metrics.Gbps(float64(st.Bytes()), d.Measure)
		return
	}
	type coOut struct{ us, gbps float64 }
	outs := points(2, func(i int) coOut {
		us, g := run(i == 0)
		return coOut{us, g}
	})
	offUs, offGbps := outs[0].us, outs[0].gbps // coalescing disabled
	onUs, onGbps := outs[1].us, outs[1].gbps
	t.AddRow("disabled", offUs, offGbps)
	t.AddRow("enabled (8us)", onUs, onGbps)
	r.Tables = append(r.Tables, t)
	r.checkTrue("disabling coalescing lowers RR latency",
		offUs < onUs, fmt.Sprintf("%.2f vs %.2f us", offUs, onUs))
	r.check("stream throughput comparable either way", offGbps/onGbps, 0.8, 1.25)
	_ = time.Second
	return r
}
