package experiments

import (
	"fmt"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/metrics"
	"ioctopus/internal/netstack"
	"ioctopus/internal/topology"
)

func init() { register("ablation-scheduler", runAblationScheduler) }

// runAblationScheduler makes §3.4's promise executable: "achieving
// locality would allow the OS scheduler to disregard NUDMA
// considerations in its scheduling decisions." A NUDMA-oblivious load
// balancer bounces a busy network thread between sockets every few
// milliseconds. Under the standard firmware every stint on the remote
// socket costs throughput; under IOctopus the balancer is free.
func runAblationScheduler(d Durations) *Result {
	r := &Result{ID: "ablation-scheduler", Title: "NUDMA-oblivious load balancing (§3.4)"}
	t := metrics.NewTable("oblivious balancer, migration every 4 measurement slices",
		"mode", "pinned Gb/s", "balanced Gb/s", "balanced/pinned")

	measure := func(mode core.NICMode, balance bool) float64 {
		cl := newCluster(core.Config{Mode: mode})
		defer cl.Drain()
		var received int64
		var serverThread *kernel.Thread
		cl.Server.Stack.Listen(7, func(s *netstack.Socket) {
			serverThread = cl.Server.Kernel.Spawn("netserver", 0, func(th *kernel.Thread) {
				s.SetOwner(th)
				for {
					n, _, ok := s.Recv(th)
					if !ok {
						return
					}
					received += n
				}
			})
		})
		cl.Client.Kernel.Spawn("netperf", 0, func(th *kernel.Thread) {
			sock, err := cl.Client.Stack.Dial(th, core.IPServerPF0, 7, eth.ProtoTCP)
			if err != nil {
				panic(err)
			}
			for {
				sock.Send(th, 65536)
			}
		})
		if balance {
			// The oblivious balancer: alternate sockets on a fixed tick,
			// as a fairness-driven scheduler with no NUDMA model would.
			tick := d.Measure
			node := 0
			var rebalance func()
			rebalance = func() {
				if serverThread == nil {
					cl.Eng.After(tick, rebalance)
					return
				}
				node = 1 - node
				cl.Server.Kernel.SetAffinity(serverThread,
					cl.Server.Topo.CoresOn(topology.NodeID(node))[0].ID)
				cl.Eng.After(tick, rebalance)
			}
			cl.Eng.After(tick, rebalance)
		}
		cl.Run(d.Warmup)
		base := received
		window := 8 * d.Measure // several balancer periods
		cl.Run(window)
		return metrics.Gbps(float64(received-base), window)
	}

	modes := []core.NICMode{core.ModeStandard, core.ModeIOctopus}
	rows := grid(len(modes), 2, func(o, i int) float64 {
		return measure(modes[o], i == 1)
	})
	stdPinned, stdBalanced := rows[0][0], rows[0][1]
	octoPinned, octoBalanced := rows[1][0], rows[1][1]
	t.AddRow("standard", stdPinned, stdBalanced, ratio(stdBalanced, stdPinned))
	t.AddRow("ioctopus", octoPinned, octoBalanced, ratio(octoBalanced, octoPinned))
	r.Tables = append(r.Tables, t)

	r.check("standard firmware pays for oblivious balancing",
		ratio(stdBalanced, stdPinned), 0.70, 0.97)
	r.check("IOctopus makes the balancer free",
		ratio(octoBalanced, octoPinned), 0.95, 1.02)
	r.Notes = append(r.Notes, fmt.Sprintf(
		"balancer migrates every %v; the standard NIC spends half its time remote", d.Measure))
	_ = time.Second
	return r
}
