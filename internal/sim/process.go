package sim

import (
	"fmt"
	"time"
)

// Proc is a simulated process: model code written in a blocking style
// (Sleep, Wait, queue Get/Put) that runs on its own goroutine. The engine
// resumes exactly one process at a time, so process code needs no locking
// and runs deterministically.
type Proc struct {
	eng      *Engine
	name     string
	wake     chan struct{} // engine -> process: resume
	park     chan struct{} // process -> engine: yielded or finished
	killed   chan struct{}
	killSent bool // engine-side: killed channel closed
	dead     bool // process-side: unwound or finished
	// resumeFn caches the resume method value so the (very frequent)
	// Sleep/Wait/Broadcast paths don't allocate a closure per call.
	resumeFn func()
}

// killedError is the panic value used to unwind a killed process.
type killedError struct{ name string }

func (k killedError) Error() string { return "sim: process " + k.name + " killed" }

// Go starts fn as a simulated process at the current simulation time.
// The process begins running when the engine dispatches its start event.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		wake:   make(chan struct{}),
		park:   make(chan struct{}),
		killed: make(chan struct{}),
	}
	p.resumeFn = p.resume
	e.procs[p] = len(e.procList)
	e.procList = append(e.procList, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedError); ok {
					p.dead = true
					return // silent unwind of a killed process
				}
				panic(r)
			}
		}()
		<-p.wake
		fn(p)
		p.finish()
	}()
	e.After(0, p.resumeFn)
	return p
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name (diagnostics only).
func (p *Proc) Name() string { return p.name }

// Now returns the current simulation time.
func (p *Proc) Now() Time { return p.eng.Now() }

// resume hands control to the process goroutine and blocks the engine
// until the process yields or finishes. Must run in engine context.
func (p *Proc) resume() {
	if p.dead {
		return
	}
	p.wake <- struct{}{}
	<-p.park
}

// yield returns control to the engine. The process must have arranged to
// be resumed (scheduled a wakeup or registered on a signal/queue) before
// calling yield, or it will sleep forever.
func (p *Proc) yield() {
	p.park <- struct{}{}
	select {
	case <-p.wake:
	case <-p.killed:
		panic(killedError{p.name})
	}
}

// finish marks the process complete and releases the engine.
func (p *Proc) finish() {
	p.dead = true
	if i, ok := p.eng.procs[p]; ok {
		last := len(p.eng.procList) - 1
		moved := p.eng.procList[last]
		p.eng.procList[i] = moved
		p.eng.procs[moved] = i
		p.eng.procList[last] = nil
		p.eng.procList = p.eng.procList[:last]
		delete(p.eng.procs, p)
	}
	p.park <- struct{}{}
}

// kill unblocks a parked process and unwinds it. Engine context only.
// The process goroutine marks itself dead while unwinding; kill only
// tracks (engine-side) that the channel is closed, so the two sides
// never write shared state concurrently.
func (p *Proc) kill() {
	if p.killSent {
		return
	}
	p.killSent = true
	close(p.killed)
}

// Resume hands control back to a process parked with Yield. It must be
// invoked from engine event context (an event callback, or passed as a
// completion callback to a component that fires it from one).
func (p *Proc) Resume() { p.resume() }

// ResumeFunc returns the cached resume callback (the same function every
// call). Components that repeatedly pass "resume this process" as a
// completion callback should use it instead of the method value
// p.Resume, which allocates a fresh closure at every use site.
func (p *Proc) ResumeFunc() func() { return p.resumeFn }

// Yield parks the process until something calls Resume. The caller must
// have arranged for a Resume before yielding (registered a callback,
// scheduled an event) or the process sleeps forever.
func (p *Proc) Yield() { p.yield() }

// Sleep suspends the process for d of simulated time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.After(d, p.resumeFn)
	p.yield()
}

// SleepUntil suspends the process until absolute time t. If t is in the
// past the process continues immediately (after a zero-delay yield).
func (p *Proc) SleepUntil(t Time) {
	if t < p.eng.Now() {
		t = p.eng.Now()
	}
	p.eng.At(t, p.resumeFn)
	p.yield()
}

// Signal is a broadcast condition: processes Wait on it and a Broadcast
// (or Pulse) wakes them. There is no stored state; a Broadcast with no
// waiters is a no-op, like sync.Cond.
type Signal struct {
	eng     *Engine
	waiters []*Proc
}

// NewSignal returns a Signal bound to the engine.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Wait suspends the process until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.yield()
}

// Broadcast wakes all current waiters, in FIFO order, at the current time.
func (s *Signal) Broadcast() {
	// After only schedules the resume events; no process code runs here,
	// so nothing can re-enter Wait while we iterate. That makes it safe
	// to keep the backing array for reuse (cleared so it doesn't pin
	// the woken processes) instead of allocating a fresh one per cycle.
	for _, p := range s.waiters {
		s.eng.After(0, p.resumeFn)
	}
	clear(s.waiters)
	s.waiters = s.waiters[:0]
}

// Waiters returns the number of processes currently waiting.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Gate is a latched condition: Open releases all current and future
// waiters until Close is called. Useful for "link up" style conditions.
type Gate struct {
	sig  *Signal
	open bool
}

// NewGate returns a Gate, initially closed.
func NewGate(e *Engine) *Gate { return &Gate{sig: NewSignal(e)} }

// Wait blocks the process until the gate is open.
func (g *Gate) Wait(p *Proc) {
	for !g.open {
		g.sig.Wait(p)
	}
}

// Open opens the gate, releasing waiters.
func (g *Gate) Open() {
	if !g.open {
		g.open = true
		g.sig.Broadcast()
	}
}

// Close closes the gate; subsequent Wait calls block.
func (g *Gate) Close() { g.open = false }

// IsOpen reports whether the gate is open.
func (g *Gate) IsOpen() bool { return g.open }

// Semaphore is a counting semaphore for processes.
type Semaphore struct {
	eng   *Engine
	avail int
	sig   *Signal
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(e *Engine, n int) *Semaphore {
	if n < 0 {
		panic(fmt.Sprintf("sim: negative semaphore size %d", n))
	}
	return &Semaphore{eng: e, avail: n, sig: NewSignal(e)}
}

// Acquire takes one permit, blocking the process until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.avail == 0 {
		s.sig.Wait(p)
	}
	s.avail--
}

// TryAcquire takes a permit without blocking; it reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.avail == 0 {
		return false
	}
	s.avail--
	return true
}

// Release returns one permit and wakes waiters.
func (s *Semaphore) Release() {
	s.avail++
	s.sig.Broadcast()
}

// Available returns the number of free permits.
func (s *Semaphore) Available() int { return s.avail }
