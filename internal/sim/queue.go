package sim

// Queue is a FIFO queue of items connecting simulated processes, the
// analogue of a buffered channel. Capacity 0 means unbounded.
//
// Storage is items[head:]: pops advance head and the backing array is
// reused once the queue drains (or compacted when the dead prefix
// dominates), so steady-state put/get traffic does not reallocate.
type Queue[T any] struct {
	eng      *Engine
	items    []T
	head     int
	capacity int
	notEmpty *Signal
	notFull  *Signal
	closed   bool
}

// NewQueue returns a queue bound to the engine. capacity <= 0 means
// unbounded.
func NewQueue[T any](e *Engine, capacity int) *Queue[T] {
	return &Queue[T]{
		eng:      e,
		capacity: capacity,
		notEmpty: NewSignal(e),
		notFull:  NewSignal(e),
	}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Cap returns the queue capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.capacity }

// Full reports whether a bounded queue is at capacity.
func (q *Queue[T]) Full() bool { return q.capacity > 0 && q.Len() >= q.capacity }

// Put appends an item, blocking the process while the queue is full.
func (q *Queue[T]) Put(p *Proc, item T) {
	for q.Full() {
		q.notFull.Wait(p)
	}
	q.push(item)
}

// TryPut appends an item without blocking; it reports success. It can be
// called from event-callback context (no process needed).
func (q *Queue[T]) TryPut(item T) bool {
	if q.Full() {
		return false
	}
	q.push(item)
	return true
}

// ForcePut appends an item even past capacity (for sources, like a wire,
// that cannot exert backpressure; the consumer should police overflow).
func (q *Queue[T]) ForcePut(item T) { q.push(item) }

func (q *Queue[T]) push(item T) {
	q.items = append(q.items, item)
	q.notEmpty.Broadcast()
}

// pop removes the head item. The slot is zeroed so popped items do not
// pin garbage; the backing array is recycled when the queue drains and
// compacted when more than half of it is dead prefix.
func (q *Queue[T]) pop() T {
	item := q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	} else if q.head > 32 && q.head*2 > len(q.items) {
		n := copy(q.items, q.items[q.head:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	return item
}

// Get removes and returns the oldest item, blocking the process while the
// queue is empty. ok is false if the queue was closed and drained.
func (q *Queue[T]) Get(p *Proc) (item T, ok bool) {
	for q.Len() == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.notEmpty.Wait(p)
	}
	item = q.pop()
	q.notFull.Broadcast()
	return item, true
}

// TryGet removes the oldest item without blocking; ok reports success.
func (q *Queue[T]) TryGet() (item T, ok bool) {
	if q.Len() == 0 {
		var zero T
		return zero, false
	}
	item = q.pop()
	q.notFull.Broadcast()
	return item, true
}

// Peek returns the oldest item without removing it.
func (q *Queue[T]) Peek() (item T, ok bool) {
	if q.Len() == 0 {
		var zero T
		return zero, false
	}
	return q.items[q.head], true
}

// Close marks the queue closed; blocked Gets return ok=false once empty.
func (q *Queue[T]) Close() {
	q.closed = true
	q.notEmpty.Broadcast()
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }
