package sim

import (
	"fmt"
	"math"
	"time"
)

// Pipe models a bandwidth-limited channel: a QPI/UPI link direction, a
// PCIe link, a memory controller, or an Ethernet wire. It carries two
// kinds of traffic:
//
//   - Discrete transfers (Transfer): individual DMA/packet moves that are
//     serialized FIFO at the pipe's available bandwidth and experience the
//     pipe's base latency inflated by utilization (a 1/(1-rho) queueing
//     approximation, capped).
//
//   - Fluid flows (AddFlow): long-running bulk traffic such as STREAM or
//     PageRank memory scans. Modelling these per-cacheline would need
//     millions of events; instead each flow declares a demand in bytes/sec
//     and the pipe allocates capacity by water-filling. Fluid load reduces
//     the bandwidth available to discrete transfers and inflates their
//     latency, which is exactly the contention effect Figures 11, 12 and
//     15 of the paper measure.
//
// The split is a deliberate hybrid: packet-level fidelity where the paper
// reasons per-packet, fluid approximation where it reasons in GB/s.
type Pipe struct {
	eng  *Engine
	name string

	capacity     float64 // bytes/sec (current, possibly degraded)
	baseLatency  time.Duration
	maxInflation float64
	minShare     float64

	// Healthy-state values, recorded at construction so fault injection
	// can degrade the pipe mid-run and restore it exactly.
	healthyCapacity float64
	healthyLatency  time.Duration

	// Discrete traffic: FIFO serialization and a leaky-bucket rate
	// estimate (exponential kernel) used to size the fluid share.
	nextFree   Time
	discRate   float64 // bytes/sec, decayed estimate
	discRateAt Time
	tau        float64 // estimator time constant, seconds

	// Cross-shard delivery (see shard.go): when the pipe's completions
	// land on a different shard's engine, they travel via Post, and the
	// pipe mirrors nextFree into horizon so the receiving shard's
	// lookahead tracks the FIFO backlog instead of the latency floor.
	// octolint:crossshard-boundary
	remote *Engine
	// octolint:shard-shared
	horizon *atomicTime

	// Fluid traffic.
	flows     []*FluidFlow
	fluidAt   Time // last time fluid byte counters were integrated
	fluidRate float64

	// Stats.
	discreteBytes  float64
	discreteOps    uint64
	fluidBytes     float64
	latencySamples uint64
	latencySum     time.Duration
}

// PipeConfig configures a Pipe.
type PipeConfig struct {
	Name         string
	BytesPerSec  float64       // capacity
	BaseLatency  time.Duration // propagation + serialization floor
	MaxInflation float64       // cap on queueing-delay multiplier (default 20)
	EstimatorTau time.Duration // discrete rate estimator constant (default 200us)
	// MinDiscreteShare guarantees discrete traffic this fraction of
	// capacity regardless of fluid load (default 0.05). Fabrics whose
	// hardware arbitrates for DMA bursts (QPI/UPI home agents) use a
	// larger share.
	MinDiscreteShare float64
}

// NewPipe constructs a pipe.
func NewPipe(e *Engine, cfg PipeConfig) *Pipe {
	if cfg.BytesPerSec <= 0 {
		panic(fmt.Sprintf("sim: pipe %q needs positive capacity", cfg.Name))
	}
	if cfg.MaxInflation <= 1 {
		cfg.MaxInflation = 20
	}
	if cfg.EstimatorTau <= 0 {
		cfg.EstimatorTau = 200 * Microsecond
	}
	if cfg.MinDiscreteShare <= 0 {
		cfg.MinDiscreteShare = 0.05
	}
	return &Pipe{
		eng:             e,
		name:            cfg.Name,
		capacity:        cfg.BytesPerSec,
		baseLatency:     cfg.BaseLatency,
		healthyCapacity: cfg.BytesPerSec,
		healthyLatency:  cfg.BaseLatency,
		maxInflation:    cfg.MaxInflation,
		minShare:        cfg.MinDiscreteShare,
		tau:             cfg.EstimatorTau.Seconds(),
	}
}

// SetDegradation scales the pipe's capacity and base latency relative to
// its healthy (construction-time) values: bwFactor multiplies capacity,
// latFactor multiplies base latency. SetDegradation(1, 1) restores the
// pipe exactly. Fluid flows are integrated at the old rates first, then
// re-water-filled at the new capacity, so a mid-run degradation is
// accounted from the instant it fires. Pending discrete transfers keep
// their already-scheduled completion times (bits in flight stay in
// flight); new transfers see the degraded pipe.
func (pp *Pipe) SetDegradation(bwFactor, latFactor float64) {
	if bwFactor <= 0 {
		panic(fmt.Sprintf("sim: pipe %q bandwidth factor must be positive", pp.name))
	}
	if latFactor <= 0 {
		panic(fmt.Sprintf("sim: pipe %q latency factor must be positive", pp.name))
	}
	pp.integrateFluid()
	pp.capacity = pp.healthyCapacity * bwFactor
	pp.baseLatency = time.Duration(float64(pp.healthyLatency) * latFactor)
	if pp.discRate > pp.capacity {
		pp.discRate = pp.capacity
	}
	pp.reallocate()
}

// SetRemoteDelivery declares that the pipe's completion callbacks
// belong to dst's shard: Transfer routes them through Engine.Post, and
// the pipe starts publishing its next-free time as a dynamic horizon.
// Call Horizon afterwards to register the bound with Group.Link. A nil
// or same-engine dst resets the pipe to plain local delivery.
func (pp *Pipe) SetRemoteDelivery(dst *Engine) {
	if dst == nil || dst == pp.eng {
		pp.remote = nil
		pp.horizon = nil
		return
	}
	pp.remote = dst
	pp.horizon = &atomicTime{}
	pp.horizon.store(pp.nextFree)
}

// Horizon returns the pipe's published next-free mirror (nil unless
// SetRemoteDelivery armed it), for use as a Group.Link dynamic bound.
func (pp *Pipe) Horizon() *atomicTime { return pp.horizon }

// Name returns the pipe's name.
func (pp *Pipe) Name() string { return pp.name }

// Capacity returns the configured capacity in bytes/sec.
func (pp *Pipe) Capacity() float64 { return pp.capacity }

// decayDiscRate brings the discrete-rate estimate forward to now.
func (pp *Pipe) decayDiscRate(now Time) {
	dt := now.Sub(pp.discRateAt).Seconds()
	if dt > 0 {
		pp.discRate *= math.Exp(-dt / pp.tau)
		pp.discRateAt = now
	}
}

// bumpDiscRate accounts bytes into the rate estimate at now.
func (pp *Pipe) bumpDiscRate(now Time, bytes float64) {
	pp.decayDiscRate(now)
	pp.discRate += bytes / pp.tau
	if pp.discRate > pp.capacity {
		pp.discRate = pp.capacity
	}
}

// DiscreteRate returns the current discrete-traffic rate estimate
// (bytes/sec).
func (pp *Pipe) DiscreteRate() float64 {
	pp.decayDiscRate(pp.eng.Now())
	return pp.discRate
}

// Utilization returns the fraction of capacity in use (0..1), combining
// fluid allocations and the discrete rate estimate.
func (pp *Pipe) Utilization() float64 {
	pp.integrateFluid()
	u := (pp.fluidRate + pp.DiscreteRate()) / pp.capacity
	if u > 1 {
		u = 1
	}
	return u
}

// Inflation returns the current latency multiplier for discrete transfers.
func (pp *Pipe) Inflation() float64 {
	rho := pp.Utilization()
	const rhoCap = 0.97
	if rho > rhoCap {
		rho = rhoCap
	}
	inf := 1 / (1 - rho)
	if inf > pp.maxInflation {
		inf = pp.maxInflation
	}
	return inf
}

// available returns bandwidth usable by discrete transfers right now:
// whatever fluid flows are not consuming, floored at the pipe's
// guaranteed discrete share.
func (pp *Pipe) available() float64 {
	pp.integrateFluid()
	avail := pp.capacity - pp.fluidRate
	if floor := pp.capacity * pp.minShare; avail < floor {
		avail = floor
	}
	return avail
}

// Available returns the bandwidth currently usable by discrete traffic
// (capacity minus fluid allocations, floored at the guaranteed share).
func (pp *Pipe) Available() float64 { return pp.available() }

// Latency returns the one-way latency a discrete transfer of the given
// size would experience now, without enqueuing anything (for modelling
// read round trips priced elsewhere).
func (pp *Pipe) Latency(bytes int64) time.Duration {
	ser := time.Duration(float64(bytes) / pp.available() * 1e9)
	return time.Duration(float64(pp.baseLatency)*pp.Inflation()) + ser
}

// Transfer enqueues a discrete transfer of the given size and schedules
// done when the last byte has arrived. It returns the completion time.
// done may be nil when only the timing side effects matter.
func (pp *Pipe) Transfer(bytes int64, done func()) Time {
	if bytes < 0 {
		panic(fmt.Sprintf("sim: negative transfer on pipe %q", pp.name))
	}
	now := pp.eng.Now()
	rate := pp.available()
	ser := time.Duration(float64(bytes) / rate * 1e9)
	lat := time.Duration(float64(pp.baseLatency) * pp.Inflation())

	start := now
	if pp.nextFree > start {
		start = pp.nextFree
	}
	pp.nextFree = start.Add(ser)
	finish := pp.nextFree.Add(lat)
	if pp.horizon != nil {
		pp.horizon.store(pp.nextFree)
	}

	pp.bumpDiscRate(now, float64(bytes))
	pp.discreteBytes += float64(bytes)
	pp.discreteOps++
	pp.latencySamples++
	pp.latencySum += finish.Sub(now)
	pp.eng.traceTransfer(pp.name, bytes)

	if done != nil {
		if pp.remote != nil {
			pp.eng.Post(pp.remote, finish, done)
		} else {
			pp.eng.At(finish, done)
		}
	} else {
		// Fire-and-forget: nothing to call back, so keep the event heap
		// out of it and only extend the engine's quiescence horizon.
		pp.eng.stretchIdle(finish)
	}
	return finish
}

// Charge accounts bytes of discrete traffic against the pipe — feeding
// the rate estimator, utilization and byte counters — without occupying
// the FIFO. Use it for resources that serve many initiators concurrently
// (memory controllers, coherence fabrics) where contention should appear
// as latency inflation rather than strict serialization; price the access
// separately with Latency.
func (pp *Pipe) Charge(bytes int64) {
	if bytes <= 0 {
		return
	}
	now := pp.eng.Now()
	pp.bumpDiscRate(now, float64(bytes))
	pp.discreteBytes += float64(bytes)
	pp.discreteOps++
}

// TransferProc performs a discrete transfer and blocks the calling
// process until it completes.
func (pp *Pipe) TransferProc(p *Proc, bytes int64) {
	pp.Transfer(bytes, p.resume)
	p.yield()
}

// DiscreteBytes returns the total bytes moved by discrete transfers.
func (pp *Pipe) DiscreteBytes() float64 { return pp.discreteBytes }

// DiscreteOps returns the number of discrete transfers performed.
func (pp *Pipe) DiscreteOps() uint64 { return pp.discreteOps }

// MeanLatency returns the mean completion latency of discrete transfers.
func (pp *Pipe) MeanLatency() time.Duration {
	if pp.latencySamples == 0 {
		return 0
	}
	return pp.latencySum / time.Duration(pp.latencySamples)
}

// FluidFlow is a long-running bulk flow through a pipe. Its achieved rate
// is the water-filled share of the pipe's fluid capacity.
type FluidFlow struct {
	pipe   *Pipe
	name   string
	demand float64 // bytes/sec requested; math.Inf(1) = elastic
	alloc  float64 // bytes/sec granted
	bytes  float64 // integrated
	closed bool
}

// AddFlow registers a fluid flow with the given demand in bytes/sec.
// Use math.Inf(1) for an elastic flow that takes any spare bandwidth.
func (pp *Pipe) AddFlow(name string, demand float64) *FluidFlow {
	pp.integrateFluid()
	f := &FluidFlow{pipe: pp, name: name, demand: demand}
	pp.flows = append(pp.flows, f)
	pp.reallocate()
	pp.eng.traceFlow(pp.name, name, demand)
	return f
}

// RemoveFlow deregisters the flow; its byte counter stops advancing.
func (pp *Pipe) RemoveFlow(f *FluidFlow) {
	pp.integrateFluid()
	for i, g := range pp.flows {
		if g == f {
			pp.flows = append(pp.flows[:i], pp.flows[i+1:]...)
			break
		}
	}
	f.closed = true
	f.alloc = 0
	pp.reallocate()
}

// Remove deregisters the flow from its pipe (shorthand for
// Pipe.RemoveFlow when the caller no longer holds the pipe).
func (f *FluidFlow) Remove() {
	if !f.closed {
		f.pipe.RemoveFlow(f)
	}
}

// SetDemand updates the flow's demand.
func (f *FluidFlow) SetDemand(demand float64) {
	f.pipe.integrateFluid()
	f.demand = demand
	f.pipe.reallocate()
}

// Rate returns the flow's currently granted rate in bytes/sec.
func (f *FluidFlow) Rate() float64 {
	f.pipe.integrateFluid()
	return f.alloc
}

// Bytes returns the bytes the flow has moved so far.
func (f *FluidFlow) Bytes() float64 {
	f.pipe.integrateFluid()
	return f.bytes
}

// Demand returns the flow's demand.
func (f *FluidFlow) Demand() float64 { return f.demand }

// Name returns the flow's name.
func (f *FluidFlow) Name() string { return f.name }

// integrateFluid advances each flow's byte counter to now at its current
// allocation, and refreshes allocations (the discrete-rate estimate that
// feeds them decays over time).
func (pp *Pipe) integrateFluid() {
	now := pp.eng.Now()
	if now == pp.fluidAt {
		return
	}
	dt := now.Sub(pp.fluidAt).Seconds()
	pp.fluidAt = now
	for _, f := range pp.flows {
		f.bytes += f.alloc * dt
		pp.fluidBytes += f.alloc * dt
	}
	pp.reallocate()
}

// reallocate water-fills the fluid capacity among flows. Flows with
// finite demand are capped at it; elastic flows split the remainder.
// Discrete traffic's protected allocation is capped at the pipe's
// guaranteed share: light DMA load leaves everything to fluid flows,
// but a DMA stream cannot hold more than its share against saturating
// fluid demand (how QPI/UPI arbitration behaves under STREAM, §5.4).
func (pp *Pipe) reallocate() {
	protected := pp.DiscreteRate()
	if lim := pp.capacity * pp.minShare; protected > lim {
		protected = lim
	}
	capf := pp.capacity - protected
	if capf < 0 {
		capf = 0
	}
	// Water-fill the finite-demand flows first, fairly: repeatedly grant
	// min(demand, equal share) to unsatisfied flows.
	remaining := capf
	unsat := make([]*FluidFlow, 0, len(pp.flows))
	var elastic []*FluidFlow
	for _, f := range pp.flows {
		f.alloc = 0
		if math.IsInf(f.demand, 1) {
			elastic = append(elastic, f)
		} else if f.demand > 0 {
			unsat = append(unsat, f)
		}
	}
	for len(unsat) > 0 && remaining > 1e-9 {
		share := remaining / float64(len(unsat)+len(elastic))
		progressed := false
		next := unsat[:0]
		for _, f := range unsat {
			want := f.demand - f.alloc
			grant := math.Min(want, share)
			f.alloc += grant
			remaining -= grant
			if f.alloc < f.demand-1e-9 {
				next = append(next, f)
			} else {
				progressed = true
			}
		}
		unsat = next
		if !progressed {
			// Everyone is share-limited: grants are final this round.
			break
		}
	}
	if len(elastic) > 0 && remaining > 0 {
		share := remaining / float64(len(elastic))
		for _, f := range elastic {
			f.alloc = share
		}
	}
	pp.fluidRate = 0
	for _, f := range pp.flows {
		pp.fluidRate += f.alloc
	}
}

// FluidRate returns the total granted fluid rate in bytes/sec.
func (pp *Pipe) FluidRate() float64 {
	pp.integrateFluid()
	return pp.fluidRate
}

// FluidBytes returns total bytes moved by fluid flows.
func (pp *Pipe) FluidBytes() float64 {
	pp.integrateFluid()
	return pp.fluidBytes
}

// TotalBytes returns discrete+fluid bytes moved through the pipe.
func (pp *Pipe) TotalBytes() float64 {
	pp.integrateFluid()
	return pp.discreteBytes + pp.fluidBytes
}

// ResetStats zeroes byte/op counters (allocations are preserved), so a
// measurement interval can exclude warmup.
func (pp *Pipe) ResetStats() {
	pp.integrateFluid()
	pp.discreteBytes = 0
	pp.discreteOps = 0
	pp.fluidBytes = 0
	pp.latencySamples = 0
	pp.latencySum = 0
	for _, f := range pp.flows {
		f.bytes = 0
	}
}
