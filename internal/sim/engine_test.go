package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(30*Nanosecond, func() { order = append(order, 3) })
	e.After(10*Nanosecond, func() { order = append(order, 1) })
	e.After(20*Nanosecond, func() { order = append(order, 2) })
	e.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != Time(30) {
		t.Fatalf("clock = %v, want 30ns", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(100), func() { order = append(order, i) })
	}
	e.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.After(10*Nanosecond, func() { fired++ })
	e.After(100*Nanosecond, func() { fired++ })
	e.Run(Time(50))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != Time(50) {
		t.Fatalf("clock = %v, want 50", e.Now())
	}
	e.RunUntilIdle()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.After(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(Time(5), func() {})
	})
	e.RunUntilIdle()
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 5 {
			e.After(Nanosecond, rec)
		}
	}
	e.After(0, rec)
	e.RunUntilIdle()
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if e.Now() != Time(4) {
		t.Fatalf("clock = %v, want 4", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.After(10*Nanosecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report cancellation")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	e.RunUntilIdle()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestTimerStopAmongOthers(t *testing.T) {
	e := NewEngine()
	var fired []int
	timers := make([]*Timer, 5)
	for i := 0; i < 5; i++ {
		i := i
		timers[i] = e.After(time.Duration(i+1)*Nanosecond, func() { fired = append(fired, i) })
	}
	timers[2].Stop()
	e.RunUntilIdle()
	want := []int{0, 1, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.After(time.Duration(i)*Nanosecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.RunUntilIdle()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop should halt the loop)", count)
	}
}

func TestEngineMaxEventsGuard(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 10
	var loop func()
	loop = func() { e.After(Nanosecond, loop) }
	e.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("MaxEvents guard did not trip")
		}
	}()
	e.RunUntilIdle()
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(100)
	if tm.Add(50*Nanosecond) != Time(150) {
		t.Error("Add failed")
	}
	if tm.Add(-200*Nanosecond) != tm {
		t.Error("negative Add should clamp to t")
	}
	if tm.Sub(Time(40)) != 60*Nanosecond {
		t.Error("Sub failed")
	}
	if Time(2_500_000_000).Seconds() != 2.5 {
		t.Error("Seconds failed")
	}
}

func TestTimeAddMonotonic(t *testing.T) {
	// Property: Add never moves time backwards for non-negative d.
	f := func(base int64, d int64) bool {
		if base < 0 {
			base = -base
		}
		if d < 0 {
			d = -d
		}
		tm := Time(base)
		return tm.Add(time.Duration(d)) >= tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		g := NewRNG(42)
		var out []int
		for i := 0; i < 100; i++ {
			i := i
			e.After(g.Exp(100*Nanosecond), func() { out = append(out, i) })
		}
		e.RunUntilIdle()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
