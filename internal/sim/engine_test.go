package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(30*Nanosecond, func() { order = append(order, 3) })
	e.After(10*Nanosecond, func() { order = append(order, 1) })
	e.After(20*Nanosecond, func() { order = append(order, 2) })
	e.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != Time(30) {
		t.Fatalf("clock = %v, want 30ns", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(100), func() { order = append(order, i) })
	}
	e.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.After(10*Nanosecond, func() { fired++ })
	e.After(100*Nanosecond, func() { fired++ })
	e.Run(Time(50))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != Time(50) {
		t.Fatalf("clock = %v, want 50", e.Now())
	}
	e.RunUntilIdle()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.After(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(Time(5), func() {})
	})
	e.RunUntilIdle()
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 5 {
			e.After(Nanosecond, rec)
		}
	}
	e.After(0, rec)
	e.RunUntilIdle()
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if e.Now() != Time(4) {
		t.Fatalf("clock = %v, want 4", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.After(10*Nanosecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report cancellation")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	e.RunUntilIdle()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestTimerStopAmongOthers(t *testing.T) {
	e := NewEngine()
	var fired []int
	timers := make([]Timer, 5)
	for i := 0; i < 5; i++ {
		i := i
		timers[i] = e.After(time.Duration(i+1)*Nanosecond, func() { fired = append(fired, i) })
	}
	timers[2].Stop()
	e.RunUntilIdle()
	want := []int{0, 1, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.After(time.Duration(i)*Nanosecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.RunUntilIdle()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop should halt the loop)", count)
	}
}

func TestEngineMaxEventsGuard(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 10
	var loop func()
	loop = func() { e.After(Nanosecond, loop) }
	e.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("MaxEvents guard did not trip")
		}
	}()
	e.RunUntilIdle()
}

// TestScheduleDispatchAllocFree guards the free-list design: once the
// slot arena and heap have grown to steady-state size, scheduling and
// dispatching events allocates nothing.
func TestScheduleDispatchAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm the arena and the heap's backing array.
	for i := 0; i < 64; i++ {
		e.After(time.Duration(i)*Nanosecond, fn)
	}
	e.RunUntilIdle()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			e.After(time.Duration(i)*Nanosecond, fn)
		}
		e.RunUntilIdle()
	})
	if allocs > 0.5 {
		t.Fatalf("schedule+dispatch allocates %.1f allocs/run, want 0", allocs)
	}
}

// TestTimerStaleAfterFire: a Timer held past its event's dispatch must
// report not-pending and refuse to Stop, even after its slot has been
// recycled for a newer event.
func TestTimerStaleAfterFire(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := e.After(Nanosecond, func() { fired++ })
	e.RunUntilIdle()
	// Recycle the slot for a fresh event.
	tm2 := e.After(Nanosecond, func() { fired++ })
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Stop() {
		t.Fatal("Stop on a fired timer must report false")
	}
	if !tm2.Pending() {
		t.Fatal("recycled slot's new timer should be pending")
	}
	e.RunUntilIdle()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

// TestRunBoundWithCancelledHead: a cancelled entry at the head of the
// heap must not let Run dispatch a live event past its bound.
func TestRunBoundWithCancelledHead(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.After(10*Nanosecond, func() { t.Error("cancelled event fired") })
	e.After(100*Nanosecond, func() { fired = true })
	tm.Stop()
	e.Run(Time(50))
	if fired {
		t.Fatal("Run dispatched an event beyond its bound")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.RunUntilIdle()
	if !fired {
		t.Fatal("live event never fired")
	}
}

// TestPendingCountExcludesCancelled: Engine.Pending counts live events
// only, despite lazy heap deletion.
func TestPendingCountExcludesCancelled(t *testing.T) {
	e := NewEngine()
	var tms []Timer
	for i := 0; i < 10; i++ {
		tms = append(tms, e.After(time.Duration(i+1)*Nanosecond, func() {}))
	}
	for i := 0; i < 4; i++ {
		tms[i].Stop()
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending = %d, want 6", e.Pending())
	}
	e.RunUntilIdle()
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
}

// TestHeapOrderRandomized cross-checks the 4-ary heap against sorted
// order on a large randomized schedule, including cancellations.
func TestHeapOrderRandomized(t *testing.T) {
	e := NewEngine()
	g := NewRNG(7)
	type ev struct {
		at  Time
		seq int
	}
	var want []ev
	var got []ev
	seq := 0
	for i := 0; i < 2000; i++ {
		at := Time(g.Intn(500))
		s := seq
		seq++
		tm := e.At(at, func() { got = append(got, ev{at, s}) })
		if g.Intn(5) == 0 {
			tm.Stop()
			continue
		}
		want = append(want, ev{at, s})
	}
	// Stable sort by (at, schedule order) = the FIFO tie-break contract.
	for i := 1; i < len(want); i++ {
		for j := i; j > 0 && (want[j].at < want[j-1].at); j-- {
			want[j], want[j-1] = want[j-1], want[j]
		}
	}
	e.RunUntilIdle()
	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(100)
	if tm.Add(50*Nanosecond) != Time(150) {
		t.Error("Add failed")
	}
	if tm.Add(-200*Nanosecond) != tm {
		t.Error("negative Add should clamp to t")
	}
	if tm.Sub(Time(40)) != 60*Nanosecond {
		t.Error("Sub failed")
	}
	if Time(2_500_000_000).Seconds() != 2.5 {
		t.Error("Seconds failed")
	}
}

func TestTimeAddMonotonic(t *testing.T) {
	// Property: Add never moves time backwards for non-negative d.
	f := func(base int64, d int64) bool {
		if base < 0 {
			base = -base
		}
		if d < 0 {
			d = -d
		}
		tm := Time(base)
		return tm.Add(time.Duration(d)) >= tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		g := NewRNG(42)
		var out []int
		for i := 0; i < 100; i++ {
			i := i
			e.After(g.Exp(100*Nanosecond), func() { out = append(out, i) })
		}
		e.RunUntilIdle()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestTimerSlotReclaim: under heavy arm/cancel churn every event slot
// returns to the free list once the engine runs idle — stopped timers
// are lazily reclaimed when their heap entry surfaces, fired ones
// immediately, and neither path leaks arena slots.
func TestTimerSlotReclaim(t *testing.T) {
	e := NewEngine()
	fired := 0
	for round := 0; round < 50; round++ {
		timers := make([]Timer, 0, 40)
		for i := 0; i < 40; i++ {
			timers = append(timers, e.After(time.Duration(i+1)*Microsecond, func() { fired++ }))
		}
		// Cancel every other timer, some twice (double Stop must be a
		// no-op, not a double free).
		for i := 0; i < len(timers); i += 2 {
			if !timers[i].Stop() {
				t.Fatalf("round %d: live timer %d refused to stop", round, i)
			}
			if timers[i].Stop() {
				t.Fatal("second Stop on a dead timer reported success")
			}
		}
		e.RunUntilIdle()
	}
	if fired != 50*20 {
		t.Fatalf("%d timers fired, want %d", fired, 50*20)
	}
	if free, total := e.FreeSlots(), e.ArenaSlots(); free != total {
		t.Fatalf("slot leak: %d of %d arena slots free after idle", free, total)
	}
}
