// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock in nanoseconds and an event heap.
// All model components (cores, links, devices) schedule callbacks on the
// engine; nothing in the simulation reads wall-clock time, so a run with a
// fixed seed is exactly reproducible.
//
// Two programming styles are supported: plain event callbacks
// (Engine.At/After) and blocking processes (Engine.Go) that execute on
// goroutines but are resumed one at a time by the engine, SimPy style, so
// determinism is preserved.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is an absolute simulation timestamp in nanoseconds since the start
// of the run.
type Time int64

// Common time units, usable as time.Duration values in model code.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the time d after t. Negative results are clamped to t so a
// subtraction bug in a cost model cannot move the clock backwards.
func (t Time) Add(d time.Duration) Time {
	nt := t + Time(d)
	if nt < t && d > 0 { // overflow
		return Time(math.MaxInt64)
	}
	if nt < 0 {
		return t
	}
	return nt
}

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns the timestamp as a float number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the timestamp as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among events scheduled for the same instant
	fn  func()
	idx int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	ev.idx = -1
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	running bool
	stopped bool
	procs   map[*Proc]struct{}
	tracer  *Tracer

	// Executed counts dispatched events, for diagnostics and loop guards.
	Executed uint64
	// MaxEvents aborts the run (panic) if more than this many events are
	// dispatched; a guard against accidental event storms. Zero disables.
	MaxEvents uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{procs: make(map[*Proc]struct{})}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in the model and panics.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return &Timer{eng: e, ev: ev}
}

// After schedules fn to run d after the current time. Negative d is
// treated as zero.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Timer is a handle to a scheduled event, allowing cancellation.
type Timer struct {
	eng *Engine
	ev  *event
}

// Stop cancels the pending event. It reports whether the event was still
// pending (and is now cancelled).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.idx < 0 {
		return false
	}
	heap.Remove(&t.eng.events, t.ev.idx)
	t.ev.idx = -1
	return true
}

// When returns the time the event is scheduled for.
func (t *Timer) When() Time { return t.ev.at }

// Pending reports whether the event has not yet fired or been cancelled.
func (t *Timer) Pending() bool { return t.ev.idx >= 0 }

// step dispatches the earliest pending event. It reports false when the
// event queue is empty.
func (e *Engine) step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	e.Executed++
	if e.MaxEvents != 0 && e.Executed > e.MaxEvents {
		panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now))
	}
	ev.fn()
	return true
}

// Run dispatches events until the clock would pass `until` or no events
// remain. The clock is left at `until` (or at the last event if the queue
// drained earlier and Stop was not called).
func (e *Engine) Run(until Time) {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for !e.stopped {
		if len(e.events) == 0 || e.events[0].at > until {
			break
		}
		e.step()
	}
	if !e.stopped && until > e.now {
		e.now = until
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d time.Duration) { e.Run(e.now.Add(d)) }

// RunUntilIdle dispatches events until none remain.
func (e *Engine) RunUntilIdle() {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for !e.stopped && e.step() {
	}
}

// Stop makes the current Run/RunUntilIdle return after the event being
// dispatched completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// Drain terminates all parked processes. Call when a run is finished so
// process goroutines do not leak; after Drain the engine must not be used.
func (e *Engine) Drain() {
	for p := range e.procs {
		p.kill()
	}
	e.procs = make(map[*Proc]struct{})
}
