// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock in nanoseconds and an event heap.
// All model components (cores, links, devices) schedule callbacks on the
// engine; nothing in the simulation reads wall-clock time, so a run with a
// fixed seed is exactly reproducible.
//
// Two programming styles are supported: plain event callbacks
// (Engine.At/After) and blocking processes (Engine.Go) that execute on
// goroutines but are resumed one at a time by the engine, SimPy style, so
// determinism is preserved.
//
// The event queue is an inlined value-based 4-ary min-heap ordered by
// (at, sub, seq): events at the same instant dispatch in the order they
// were scheduled — sub is the clock value at the scheduling call and
// seq breaks the remaining ties in call order. Event records live in a
// slot arena recycled through a free list, so steady-state scheduling
// and dispatch allocate nothing; cancellation is lazy (a generation
// check at pop time) to keep Stop O(1) without disturbing the heap.
//
// Engines can also be ganged into a Group (see shard.go) for
// conservative parallel simulation: each engine becomes one shard
// running on its own goroutine, exchanging cross-shard events through
// mailboxes via Post/PostAfter and synchronizing on published clock
// horizons bounded by link latency.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is an absolute simulation timestamp in nanoseconds since the start
// of the run.
type Time int64

// Common time units, usable as time.Duration values in model code.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the time d after t. Negative results are clamped to t so a
// subtraction bug in a cost model cannot move the clock backwards.
func (t Time) Add(d time.Duration) Time {
	nt := t + Time(d)
	if nt < t && d > 0 { // overflow
		return Time(math.MaxInt64)
	}
	if nt < 0 {
		return t
	}
	return nt
}

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns the timestamp as a float number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the timestamp as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// heapEntry is one queued event in the 4-ary min-heap. The callback
// lives in the slot arena; the entry holds only ordering keys plus the
// (slot, gen) reference that validates it at pop time.
type heapEntry struct {
	at   Time
	sub  Time   // clock value at the scheduling call (secondary key)
	seq  uint64 // shard-composed FIFO tie-break among same-(at, sub) events
	slot int32
	gen  uint32
}

// less orders entries by (at, sub, seq). On a single engine sub is
// redundant — seq strictly increases per schedule and the clock never
// runs backwards, so (at, seq) alone reproduces scheduling order. The
// sub key exists for sharded runs: a cross-shard post carries its
// sender's scheduling time, so merging it into the receiver's heap
// lands it exactly where the serial engine would have dispatched it
// relative to events the receiver scheduled earlier or later.
func (a heapEntry) less(b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.sub != b.sub {
		return a.sub < b.sub
	}
	return a.seq < b.seq
}

// eventSlot is one arena record. gen increments every time the slot is
// freed, invalidating any heap entries and Timers still pointing at it.
type eventSlot struct {
	fn   func()
	gen  uint32
	next int32 // free-list link, -1 terminates
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now      Time
	seq      uint64
	events   []heapEntry // 4-ary min-heap on (at, sub, seq)
	slots    []eventSlot
	freeHead int32 // head of the slot free list, -1 when empty
	live     int   // scheduled and not cancelled
	running  bool
	stopped  bool
	// Parked-process registry, insertion-ordered so Drain kills in a
	// deterministic sequence (map-order iteration would leak here).
	// procs maps each live process to its procList index; finish
	// swap-removes, which keeps the order a pure function of the run.
	procs    map[*Proc]int
	procList []*Proc
	tracer   *Tracer

	// Sharding state (see shard.go). group is nil on a standalone
	// engine, which keeps every field below cold: shard is 0, seqBase is
	// 0 (entry seq keys degenerate to the classic per-engine counter),
	// and the inbox/clock/hooks are never touched.
	group   *Group
	shard   int
	seqBase uint64 // shard<<56, folded into every entry's seq key
	// clock and inbox are read and written by peer shard goroutines
	// while this shard runs; both types synchronize internally.
	// octolint:shard-shared
	clock atomicTime
	// octolint:shard-shared
	inbox     mailbox
	syncHooks []func()

	// idleAt is the latest completion time of fire-and-forget work
	// (e.g. Pipe.Transfer with a nil callback). Instead of holding a
	// no-op event in the heap per transfer, RunUntilIdle advances the
	// clock here once the queue drains, preserving "the run ends when
	// the last byte has arrived" without per-transfer heap churn.
	idleAt Time

	// Executed counts dispatched events, for diagnostics and loop guards.
	Executed uint64
	// MaxEvents aborts the run (panic) if more than this many events are
	// dispatched; a guard against accidental event storms. Zero disables.
	MaxEvents uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{procs: make(map[*Proc]int), freeHead: -1}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in the model and panics.
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	return e.insert(t, e.now, e.seqBase+e.seq, fn)
}

// insert allocates a slot for fn and pushes a heap entry with the given
// ordering key. Shared by At (local scheduling) and the mailbox drain
// (cross-shard posts carrying their sender's key).
func (e *Engine) insert(t, sub Time, key uint64, fn func()) Timer {
	slot := e.freeHead
	if slot >= 0 {
		e.freeHead = e.slots[slot].next
	} else {
		e.slots = append(e.slots, eventSlot{})
		slot = int32(len(e.slots) - 1)
	}
	s := &e.slots[slot]
	s.fn = fn
	e.push(heapEntry{at: t, sub: sub, seq: key, slot: slot, gen: s.gen})
	e.live++
	return Timer{eng: e, at: t, slot: slot, gen: s.gen}
}

// Post schedules fn at absolute time t on engine dst. With dst == e (or
// two engines driven from one goroutine) this is exactly At; when both
// engines are shards of one running Group the event crosses through
// dst's mailbox carrying this engine's scheduling key, so the receiver
// merges it into its heap in the order the serial engine would have
// used. The caller must respect the group's link floors: t must be at
// least the registered floor past this shard's published clock.
func (e *Engine) Post(dst *Engine, t Time, fn func()) {
	if dst == e || e.group == nil || dst.group != e.group {
		dst.At(t, fn)
		return
	}
	e.seq++
	dst.inbox.put(xpost{at: t, sub: e.now, seq: e.seqBase + e.seq, fn: fn})
}

// PostAfter schedules fn on dst at d past this engine's current time.
func (e *Engine) PostAfter(dst *Engine, d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Post(dst, e.now.Add(d), fn)
}

// After schedules fn to run d after the current time. Negative d is
// treated as zero.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// freeSlot recycles a slot onto the free list. Bumping gen invalidates
// the heap entry (if still queued) and every Timer handle for it.
func (e *Engine) freeSlot(slot int32) {
	s := &e.slots[slot]
	s.fn = nil
	s.gen++
	s.next = e.freeHead
	e.freeHead = slot
	e.live--
}

// push inserts an entry, sifting up through 4-ary parents.
func (e *Engine) push(ent heapEntry) {
	h := append(e.events, ent)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ent.less(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ent
	e.events = h
}

// popMin removes and returns the minimum entry, sifting the last entry
// down through the up-to-four children of each node.
func (e *Engine) popMin() heapEntry {
	h := e.events
	min := h[0]
	last := h[len(h)-1]
	h = h[:len(h)-1]
	e.events = h
	n := len(h)
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			if c+1 < n && h[c+1].less(h[m]) {
				m = c + 1
			}
			if c+2 < n && h[c+2].less(h[m]) {
				m = c + 2
			}
			if c+3 < n && h[c+3].less(h[m]) {
				m = c + 3
			}
			if !h[m].less(last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return min
}

// purge discards cancelled entries from the top of the heap so callers
// can trust events[0] to be a live event.
func (e *Engine) purge() {
	for len(e.events) > 0 {
		ent := e.events[0]
		if e.slots[ent.slot].gen == ent.gen {
			return
		}
		e.popMin()
	}
}

// Timer is a handle to a scheduled event, allowing cancellation. The
// zero Timer is valid: never pending, Stop reports false.
type Timer struct {
	eng  *Engine
	at   Time
	slot int32
	gen  uint32
}

// Stop cancels the pending event. It reports whether the event was still
// pending (and is now cancelled). The heap entry is dropped lazily when
// it reaches the top of the queue.
func (t Timer) Stop() bool {
	if t.eng == nil || t.eng.slots[t.slot].gen != t.gen {
		return false
	}
	t.eng.freeSlot(t.slot)
	return true
}

// When returns the time the event was scheduled for.
func (t Timer) When() Time { return t.at }

// Pending reports whether the event has not yet fired or been cancelled.
func (t Timer) Pending() bool {
	return t.eng != nil && t.eng.slots[t.slot].gen == t.gen
}

// step dispatches the earliest pending event. It reports false when the
// event queue is empty.
func (e *Engine) step() bool {
	for {
		if len(e.events) == 0 {
			return false
		}
		ent := e.popMin()
		s := &e.slots[ent.slot]
		if s.gen != ent.gen { // cancelled: drop and keep looking
			continue
		}
		if ent.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ent.at
		e.Executed++
		if e.MaxEvents != 0 && e.Executed > e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now))
		}
		fn := s.fn
		// Free before dispatch so fn can schedule into the recycled slot.
		e.freeSlot(ent.slot)
		fn()
		return true
	}
}

// Run dispatches events until the clock would pass `until` or no events
// remain. The clock is left at `until` (or at the last event if the queue
// drained earlier and Stop was not called).
func (e *Engine) Run(until Time) {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	if e.group != nil {
		panic("sim: Run called on a grouped engine; drive the shard group instead")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for !e.stopped {
		e.purge()
		if len(e.events) == 0 || e.events[0].at > until {
			break
		}
		e.step()
	}
	if !e.stopped && until > e.now {
		e.now = until
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d time.Duration) { e.Run(e.now.Add(d)) }

// RunUntilIdle dispatches events until none remain, then advances the
// clock over any outstanding fire-and-forget completions (stretchIdle)
// so it ends at the instant the simulation truly quiesces.
func (e *Engine) RunUntilIdle() {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	if e.group != nil {
		panic("sim: RunUntilIdle called on a grouped engine; drive the shard group instead")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for !e.stopped && e.step() {
	}
	if !e.stopped && e.idleAt > e.now {
		e.now = e.idleAt
	}
}

// stretchIdle records that fire-and-forget work completes at t: the
// queue may drain earlier, but the simulation is not quiescent before
// t. Used by Pipe.Transfer instead of scheduling a no-op event.
func (e *Engine) stretchIdle(t Time) {
	if t > e.idleAt {
		e.idleAt = t
	}
}

// Stop makes the current Run/RunUntilIdle return after the event being
// dispatched completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.live }

// Drain terminates all parked processes. Call when a run is finished so
// process goroutines do not leak; after Drain the engine must not be used.
func (e *Engine) Drain() {
	for _, p := range e.procList {
		p.kill()
	}
	e.procs = make(map[*Proc]int)
	e.procList = nil
}

// ShardGroup returns the Group this engine belongs to, nil for a
// standalone (serial) engine.
func (e *Engine) ShardGroup() *Group { return e.group }

// Shard returns this engine's index within its group (0 when serial).
func (e *Engine) Shard() int { return e.shard }

// OnShardSync registers fn to run on every shard-sync barrier (the end
// of each Group.Run window, on the caller's goroutine). Subsystems that
// defer cross-shard bookkeeping — e.g. frame pools reclaiming frames
// whose delivery copy crossed to another shard — flush it here so
// metrics snapshots taken between windows match the serial engine
// exactly. No-op scheduling on a standalone engine: the hook is simply
// never called.
func (e *Engine) OnShardSync(fn func()) { e.syncHooks = append(e.syncHooks, fn) }

// ArenaSlots returns the total size of the event slot arena, and
// FreeSlots the length of its free list. live == ArenaSlots-FreeSlots
// is the number of scheduled, uncancelled events; regression tests use
// the pair to prove that lazily-cancelled timers do not leak slots.
func (e *Engine) ArenaSlots() int { return len(e.slots) }

// FreeSlots returns the current length of the slot free list.
func (e *Engine) FreeSlots() int {
	n := 0
	for s := e.freeHead; s >= 0; s = e.slots[s].next {
		n++
	}
	return n
}
