package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func newTestPipe(e *Engine, bps float64, lat time.Duration) *Pipe {
	return NewPipe(e, PipeConfig{Name: "test", BytesPerSec: bps, BaseLatency: lat})
}

func TestPipeSerializationTime(t *testing.T) {
	e := NewEngine()
	p := newTestPipe(e, 1e9, 0) // 1 GB/s, no base latency
	var done Time
	p.Transfer(1000, func() { done = e.Now() })
	e.RunUntilIdle()
	// 1000 bytes at 1 GB/s = 1us.
	if done != Time(1000) {
		t.Fatalf("done = %v, want 1000ns", done)
	}
}

func TestPipeBaseLatency(t *testing.T) {
	e := NewEngine()
	p := newTestPipe(e, 1e9, 500*Nanosecond)
	var done Time
	p.Transfer(1000, func() { done = e.Now() })
	e.RunUntilIdle()
	if done != Time(1500) {
		t.Fatalf("done = %v, want 1500ns (500 latency + 1000 serialization)", done)
	}
}

func TestPipeFIFOBackToBack(t *testing.T) {
	e := NewEngine()
	p := newTestPipe(e, 1e9, 0)
	var t1, t2 Time
	p.Transfer(1000, func() { t1 = e.Now() })
	p.Transfer(1000, func() { t2 = e.Now() })
	e.RunUntilIdle()
	if t1 != Time(1000) || t2 != Time(2000) {
		t.Fatalf("t1=%v t2=%v, want 1000/2000 (FIFO serialization)", t1, t2)
	}
}

func TestPipeZeroByteTransfer(t *testing.T) {
	e := NewEngine()
	p := newTestPipe(e, 1e9, 100*Nanosecond)
	var done Time
	p.Transfer(0, func() { done = e.Now() })
	e.RunUntilIdle()
	if done != Time(100) {
		t.Fatalf("done = %v, want base latency only", done)
	}
}

func TestPipeStats(t *testing.T) {
	e := NewEngine()
	p := newTestPipe(e, 1e9, 0)
	p.Transfer(500, nil)
	p.Transfer(1500, nil)
	e.RunUntilIdle()
	if p.DiscreteBytes() != 2000 {
		t.Fatalf("bytes = %v, want 2000", p.DiscreteBytes())
	}
	if p.DiscreteOps() != 2 {
		t.Fatalf("ops = %v, want 2", p.DiscreteOps())
	}
	p.ResetStats()
	if p.DiscreteBytes() != 0 || p.DiscreteOps() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestPipeFluidSingleFlow(t *testing.T) {
	e := NewEngine()
	p := newTestPipe(e, 1e9, 0)
	f := p.AddFlow("bulk", 4e8) // wants 400 MB/s of a 1 GB/s pipe
	e.Run(Time(1_000_000))      // 1 ms
	got := f.Bytes()
	want := 4e8 * 1e-3 // 400KB
	if math.Abs(got-want) > want*0.01 {
		t.Fatalf("flow bytes = %v, want ~%v", got, want)
	}
}

func TestPipeFluidOversubscribed(t *testing.T) {
	e := NewEngine()
	p := newTestPipe(e, 1e9, 0)
	f1 := p.AddFlow("a", 8e8)
	f2 := p.AddFlow("b", 8e8)
	// Demand 1.6 GB/s on a 1 GB/s pipe: each should get 500 MB/s.
	if math.Abs(f1.Rate()-5e8) > 1e6 || math.Abs(f2.Rate()-5e8) > 1e6 {
		t.Fatalf("rates = %v, %v; want 5e8 each", f1.Rate(), f2.Rate())
	}
}

func TestPipeFluidWaterFill(t *testing.T) {
	e := NewEngine()
	p := newTestPipe(e, 1e9, 0)
	small := p.AddFlow("small", 1e8) // 100 MB/s
	big := p.AddFlow("big", 2e9)     // wants more than the pipe
	// Small flow fully satisfied; big takes the rest.
	if math.Abs(small.Rate()-1e8) > 1e6 {
		t.Fatalf("small rate = %v, want 1e8", small.Rate())
	}
	if math.Abs(big.Rate()-9e8) > 1e7 {
		t.Fatalf("big rate = %v, want ~9e8", big.Rate())
	}
}

func TestPipeFluidElastic(t *testing.T) {
	e := NewEngine()
	p := newTestPipe(e, 1e9, 0)
	fixed := p.AddFlow("fixed", 3e8)
	el := p.AddFlow("elastic", math.Inf(1))
	if math.Abs(fixed.Rate()-3e8) > 1e7 {
		t.Fatalf("fixed rate = %v", fixed.Rate())
	}
	if math.Abs(el.Rate()-7e8) > 1e7 {
		t.Fatalf("elastic rate = %v, want ~7e8", el.Rate())
	}
}

func TestPipeFluidRemoveRestoresCapacity(t *testing.T) {
	e := NewEngine()
	p := newTestPipe(e, 1e9, 0)
	f1 := p.AddFlow("a", 9e8)
	f2 := p.AddFlow("b", 9e8)
	p.RemoveFlow(f1)
	if math.Abs(f2.Rate()-9e8) > 1e7 {
		t.Fatalf("survivor rate = %v, want 9e8 after removal", f2.Rate())
	}
	if f1.Rate() != 0 {
		t.Fatalf("removed flow rate = %v, want 0", f1.Rate())
	}
}

func TestPipeFluidSlowsDiscrete(t *testing.T) {
	e := NewEngine()
	p := newTestPipe(e, 1e9, 0)
	var unloaded Time
	p.Transfer(10000, func() { unloaded = e.Now() })
	e.RunUntilIdle()

	e2 := NewEngine()
	p2 := newTestPipe(e2, 1e9, 0)
	p2.AddFlow("hog", 9e8)
	var loaded Time
	p2.Transfer(10000, func() { loaded = e2.Now() })
	e2.RunUntilIdle()
	if loaded <= unloaded {
		t.Fatalf("fluid load should slow discrete transfers: loaded=%v unloaded=%v", loaded, unloaded)
	}
}

func TestPipeInflationGrowsWithLoad(t *testing.T) {
	e := NewEngine()
	p := newTestPipe(e, 1e9, 100*Nanosecond)
	i0 := p.Inflation()
	p.AddFlow("hog", 9e8)
	i1 := p.Inflation()
	if i1 <= i0 {
		t.Fatalf("inflation did not grow: %v -> %v", i0, i1)
	}
	if i1 > 25 {
		t.Fatalf("inflation uncapped: %v", i1)
	}
}

func TestPipeUtilization(t *testing.T) {
	e := NewEngine()
	p := newTestPipe(e, 1e9, 0)
	if u := p.Utilization(); u != 0 {
		t.Fatalf("idle utilization = %v, want 0", u)
	}
	p.AddFlow("half", 5e8)
	if u := p.Utilization(); math.Abs(u-0.5) > 0.01 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestPipeDiscreteRateDecays(t *testing.T) {
	e := NewEngine()
	p := newTestPipe(e, 1e9, 0)
	p.Transfer(100000, nil)
	e.RunUntilIdle()
	r0 := p.DiscreteRate()
	if r0 <= 0 {
		t.Fatal("rate estimate should be positive after a transfer")
	}
	e.Run(e.Now().Add(10 * Millisecond))
	r1 := p.DiscreteRate()
	if r1 >= r0/10 {
		t.Fatalf("rate should decay: %v -> %v", r0, r1)
	}
}

func TestPipeTransferProc(t *testing.T) {
	e := NewEngine()
	p := newTestPipe(e, 1e6, 0) // 1 MB/s
	var end Time
	e.Go("xfer", func(pr *Proc) {
		p.TransferProc(pr, 1000) // 1 ms
		end = pr.Now()
	})
	e.RunUntilIdle()
	if end != Time(1_000_000) {
		t.Fatalf("end = %v, want 1ms", end)
	}
}

func TestPipeFluidConservation(t *testing.T) {
	// Property: total allocated fluid rate never exceeds capacity.
	f := func(demands []uint32) bool {
		e := NewEngine()
		p := newTestPipe(e, 1e9, 0)
		for i, d := range demands {
			if i >= 8 {
				break
			}
			p.AddFlow("f", float64(d%2_000_000_000))
		}
		return p.FluidRate() <= p.Capacity()*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPipeFluidDemandCap(t *testing.T) {
	// Property: no flow is ever allocated more than its demand.
	f := func(demands []uint32) bool {
		e := NewEngine()
		p := newTestPipe(e, 1e9, 0)
		var flows []*FluidFlow
		for i, d := range demands {
			if i >= 8 {
				break
			}
			flows = append(flows, p.AddFlow("f", float64(d%2_000_000_000)))
		}
		for _, fl := range flows {
			if fl.Rate() > fl.Demand()+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestServerFIFO(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "srv")
	var t1, t2 Time
	s.Submit(100*Nanosecond, func() { t1 = e.Now() })
	s.Submit(50*Nanosecond, func() { t2 = e.Now() })
	e.RunUntilIdle()
	if t1 != Time(100) || t2 != Time(150) {
		t.Fatalf("t1=%v t2=%v, want 100/150", t1, t2)
	}
	if s.BusyTime() != 150*Nanosecond {
		t.Fatalf("busy = %v, want 150ns", s.BusyTime())
	}
	if s.Jobs() != 2 {
		t.Fatalf("jobs = %d, want 2", s.Jobs())
	}
}

func TestServerIdleGap(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "srv")
	s.Submit(10*Nanosecond, nil)
	e.RunUntilIdle()
	var done Time
	e.At(Time(100), func() { s.Submit(10*Nanosecond, func() { done = e.Now() }) })
	e.RunUntilIdle()
	if done != Time(110) {
		t.Fatalf("done = %v, want 110 (no booking across idle gap)", done)
	}
}

func TestServerBacklog(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "srv")
	e.At(Time(0), func() {
		s.Submit(100*Nanosecond, nil)
		s.Submit(100*Nanosecond, nil)
		if s.Backlog() != 200*Nanosecond {
			t.Errorf("backlog = %v, want 200ns", s.Backlog())
		}
	})
	e.RunUntilIdle()
	if s.Backlog() != 0 {
		t.Fatalf("backlog after drain = %v, want 0", s.Backlog())
	}
}

func TestRNGDeterminismAndFork(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	f1, f2 := NewRNG(7).Fork(1), NewRNG(7).Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if f1.Intn(1000) == f2.Intn(1000) {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("forked streams look correlated: %d/100 equal", same)
	}
}

func TestRNGDistributions(t *testing.T) {
	g := NewRNG(3)
	var sum time.Duration
	const n = 10000
	for i := 0; i < n; i++ {
		sum += g.Exp(100 * Nanosecond)
	}
	mean := sum / n
	if mean < 90*Nanosecond || mean > 110*Nanosecond {
		t.Fatalf("exp mean = %v, want ~100ns", mean)
	}
	for i := 0; i < 1000; i++ {
		if g.Normal(100*Nanosecond, 500*Nanosecond) < 0 {
			t.Fatal("Normal returned negative duration")
		}
		d := g.Jitter(100*Nanosecond, 0.1)
		if d < 90*Nanosecond || d > 110*Nanosecond {
			t.Fatalf("jitter out of range: %v", d)
		}
	}
	if g.Bernoulli(0) || !g.Bernoulli(1) {
		t.Fatal("Bernoulli edge cases wrong")
	}
}
