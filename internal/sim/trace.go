package sim

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// TraceKind classifies trace records.
type TraceKind uint8

// Trace record kinds.
const (
	// TraceEvent is an event dispatch.
	TraceEvent TraceKind = iota
	// TraceTransfer is a discrete pipe transfer.
	TraceTransfer
	// TraceFlow is a fluid flow add/remove/demand change.
	TraceFlow
)

// TraceRecord is one observation.
type TraceRecord struct {
	At    Time
	Kind  TraceKind
	Label string
	Value float64
}

// Tracer observes simulation activity for debugging and analysis.
// Tracing is off unless a Tracer is installed with Engine.SetTracer;
// the hooks are nil-checked so the hot path pays one branch.
type Tracer struct {
	eng     *Engine
	records []TraceRecord
	limit   int

	// byLabel aggregates counts for summaries.
	byLabel map[string]int
}

// SetTracer installs (or removes, with nil) a tracer on the engine.
func (e *Engine) SetTracer(t *Tracer) {
	e.tracer = t
	if t != nil {
		t.eng = e
	}
}

// NewTracer returns a tracer keeping at most limit records (0 = 64k).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = 65536
	}
	return &Tracer{limit: limit, byLabel: make(map[string]int)}
}

// record appends an observation, dropping the oldest past the limit.
func (t *Tracer) record(kind TraceKind, label string, value float64) {
	t.byLabel[label]++
	if len(t.records) >= t.limit {
		copy(t.records, t.records[1:])
		t.records = t.records[:len(t.records)-1]
	}
	t.records = append(t.records, TraceRecord{At: t.eng.Now(), Kind: kind, Label: label, Value: value})
}

// Records returns the retained observations, oldest first.
func (t *Tracer) Records() []TraceRecord { return t.records }

// Count returns how many records with the label were observed (including
// dropped ones).
func (t *Tracer) Count(label string) int { return t.byLabel[label] }

// Dump writes a human-readable trace to w.
func (t *Tracer) Dump(w io.Writer) {
	kinds := map[TraceKind]string{TraceEvent: "event", TraceTransfer: "xfer", TraceFlow: "flow"}
	for _, r := range t.records {
		fmt.Fprintf(w, "%12v %-5s %-32s %g\n", time.Duration(r.At), kinds[r.Kind], r.Label, r.Value)
	}
}

// Summary writes per-label counts, most frequent first.
func (t *Tracer) Summary(w io.Writer) {
	type kv struct {
		label string
		n     int
	}
	var all []kv
	for l, n := range t.byLabel {
		all = append(all, kv{l, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].label < all[j].label
	})
	for _, e := range all {
		fmt.Fprintf(w, "%8d  %s\n", e.n, e.label)
	}
}

// traceTransfer is called by pipes on each discrete transfer.
func (e *Engine) traceTransfer(pipe string, bytes int64) {
	if e.tracer != nil {
		e.tracer.record(TraceTransfer, pipe, float64(bytes))
	}
}

// traceFlow is called by pipes on fluid flow changes.
func (e *Engine) traceFlow(pipe, flow string, demand float64) {
	if e.tracer != nil {
		e.tracer.record(TraceFlow, pipe+"/"+flow, demand)
	}
}
