package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// TraceKind classifies trace records.
type TraceKind uint8

// Trace record kinds.
const (
	// TraceEvent is an event dispatch.
	TraceEvent TraceKind = iota
	// TraceTransfer is a discrete pipe transfer.
	TraceTransfer
	// TraceFlow is a fluid flow add/remove/demand change.
	TraceFlow
)

// String names the kind the way Dump and the Chrome export label it.
func (k TraceKind) String() string {
	switch k {
	case TraceEvent:
		return "event"
	case TraceTransfer:
		return "xfer"
	case TraceFlow:
		return "flow"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// TraceRecord is one observation.
type TraceRecord struct {
	At    Time
	Kind  TraceKind
	Label string
	Value float64
}

// Tracer observes simulation activity for debugging and analysis.
// Tracing is off unless a Tracer is installed with Engine.SetTracer;
// the hooks are nil-checked so the hot path pays one branch.
//
// Retained records live in a fixed-capacity ring buffer: recording is
// O(1) regardless of how many records have been dropped, and Records
// returns the survivors oldest first.
type Tracer struct {
	eng   *Engine
	buf   []TraceRecord // ring storage, capacity == limit
	start int           // index of the oldest retained record
	count int           // retained records (<= limit)
	limit int

	// byLabel aggregates counts for summaries.
	byLabel map[string]int
}

// SetTracer installs (or removes, with nil) a tracer on the engine.
func (e *Engine) SetTracer(t *Tracer) {
	e.tracer = t
	if t != nil {
		t.eng = e
	}
}

// NewTracer returns a tracer keeping at most limit records (0 = 64k).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = 65536
	}
	return &Tracer{limit: limit, byLabel: make(map[string]int)}
}

// record appends an observation, overwriting the oldest past the limit.
func (t *Tracer) record(kind TraceKind, label string, value float64) {
	t.byLabel[label]++
	rec := TraceRecord{At: t.eng.Now(), Kind: kind, Label: label, Value: value}
	if t.count < t.limit {
		if len(t.buf) < t.limit {
			t.buf = append(t.buf, rec)
		} else {
			t.buf[(t.start+t.count)%t.limit] = rec
		}
		t.count++
		return
	}
	t.buf[t.start] = rec
	t.start = (t.start + 1) % t.limit
}

// Records returns a copy of the retained observations, oldest first.
func (t *Tracer) Records() []TraceRecord {
	out := make([]TraceRecord, t.count)
	for i := 0; i < t.count; i++ {
		out[i] = t.buf[(t.start+i)%t.limit]
	}
	return out
}

// Count returns how many records with the label were observed (including
// dropped ones).
func (t *Tracer) Count(label string) int { return t.byLabel[label] }

// Dump writes a human-readable trace to w.
func (t *Tracer) Dump(w io.Writer) {
	for _, r := range t.Records() {
		fmt.Fprintf(w, "%12v %-5s %-32s %g\n", time.Duration(r.At), r.Kind, r.Label, r.Value)
	}
}

// Summary writes per-label counts, most frequent first.
func (t *Tracer) Summary(w io.Writer) {
	type kv struct {
		label string
		n     int
	}
	var all []kv
	for l, n := range t.byLabel {
		all = append(all, kv{l, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].label < all[j].label
	})
	for _, e := range all {
		fmt.Fprintf(w, "%8d  %s\n", e.n, e.label)
	}
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (loadable in chrome://tracing and Perfetto). Timestamps are
// microseconds; instant events use phase "i" with thread scope.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Scope string         `json:"s,omitempty"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope of the trace-event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the retained records in the Chrome
// trace-event JSON format: open the file in chrome://tracing or
// https://ui.perfetto.dev to browse the run on a timeline. Each record
// becomes an instant event named by its label, on a per-kind track,
// with the record's value in args.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	tr := chromeTrace{DisplayTimeUnit: "ms"}
	tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 0,
		Args: map[string]any{"name": "ioctopus-sim"},
	})
	for _, k := range []TraceKind{TraceEvent, TraceTransfer, TraceFlow} {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: int(k),
			Args: map[string]any{"name": k.String()},
		})
	}
	for _, r := range t.Records() {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name:  r.Label,
			Cat:   r.Kind.String(),
			Phase: "i",
			Scope: "t",
			TS:    float64(r.At) / 1e3, // ns -> us
			PID:   0,
			TID:   int(r.Kind),
			Args:  map[string]any{"value": r.Value},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// traceTransfer is called by pipes on each discrete transfer.
func (e *Engine) traceTransfer(pipe string, bytes int64) {
	if e.tracer != nil {
		e.tracer.record(TraceTransfer, pipe, float64(bytes))
	}
}

// traceFlow is called by pipes on fluid flow changes.
func (e *Engine) traceFlow(pipe, flow string, demand float64) {
	if e.tracer != nil {
		e.tracer.record(TraceFlow, pipe+"/"+flow, demand)
	}
}
