package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// pingPong builds a two-shard model exchanging cross posts with the
// given one-way latency: each shard runs local work every localStep and
// bounces a message to its peer on every arrival. It returns each
// shard's dispatch log (appended only by that shard's goroutine, so the
// logs are race-free and fully ordered).
func pingPong(t *testing.T, until Time, latency, localStep time.Duration) [2][]string {
	t.Helper()
	a, b := NewEngine(), NewEngine()
	g := NewGroup(a, b)
	g.Link(a, b, latency, nil)
	g.Link(b, a, latency, nil)

	var logs [2][]string
	record := func(e *Engine, what string) {
		logs[e.Shard()] = append(logs[e.Shard()], fmt.Sprintf("%d@%s", e.Now(), what))
	}
	var bounce func(src, dst *Engine, hop int)
	bounce = func(src, dst *Engine, hop int) {
		src.PostAfter(dst, latency, func() {
			record(dst, fmt.Sprintf("hop%d", hop))
			if hop < 64 {
				bounce(dst, src, hop+1)
			}
		})
	}
	var tick func(e *Engine, n int)
	tick = func(e *Engine, n int) {
		e.After(localStep, func() {
			record(e, fmt.Sprintf("tick%d", n))
			tick(e, n+1)
		})
	}
	tick(a, 0)
	tick(b, 0)
	bounce(a, b, 0)
	bounce(b, a, 0)
	g.Run(until)
	return logs
}

// TestGroupDeterministicAcrossRuns: the same model produces identical
// per-shard dispatch logs on every run, at any GOMAXPROCS.
func TestGroupDeterministicAcrossRuns(t *testing.T) {
	until := Time(500 * Microsecond)
	ref := pingPong(t, until, 700*time.Nanosecond, 1300*time.Nanosecond)
	if len(ref[0]) == 0 || len(ref[1]) == 0 {
		t.Fatal("model dispatched nothing")
	}
	for trial := 0; trial < 3; trial++ {
		prev := runtime.GOMAXPROCS(1 + trial%2*runtime.NumCPU())
		got := pingPong(t, until, 700*time.Nanosecond, 1300*time.Nanosecond)
		runtime.GOMAXPROCS(prev)
		for s := 0; s < 2; s++ {
			if len(got[s]) != len(ref[s]) {
				t.Fatalf("trial %d shard %d: %d events, want %d", trial, s, len(got[s]), len(ref[s]))
			}
			for i := range got[s] {
				if got[s][i] != ref[s][i] {
					t.Fatalf("trial %d shard %d event %d: %q, want %q", trial, s, i, got[s][i], ref[s][i])
				}
			}
		}
	}
}

// TestGroupMatchesSerial: a model whose cross traffic is scheduled
// identically on a single serial engine produces the same dispatch
// sequence — the (at, sub, seq) contract carries across the cut.
func TestGroupMatchesSerial(t *testing.T) {
	until := Time(200 * Microsecond)
	lat := 900 * time.Nanosecond

	// Serial reference: one engine plays both hosts.
	var serial []string
	{
		e := NewEngine()
		var bounce func(hop int)
		bounce = func(hop int) {
			e.After(lat, func() {
				serial = append(serial, fmt.Sprintf("%d:hop%d", e.Now(), hop))
				if hop < 40 {
					bounce(hop + 1)
				}
			})
		}
		bounce(0)
		e.Run(until)
	}

	// Sharded: the same chain alternating between two shards.
	var logs [2][]string
	{
		a, b := NewEngine(), NewEngine()
		g := NewGroup(a, b)
		g.Link(a, b, lat, nil)
		g.Link(b, a, lat, nil)
		var bounce func(src, dst *Engine, hop int)
		bounce = func(src, dst *Engine, hop int) {
			src.PostAfter(dst, lat, func() {
				logs[dst.Shard()] = append(logs[dst.Shard()], fmt.Sprintf("%d:hop%d", dst.Now(), hop))
				if hop < 40 {
					bounce(dst, src, hop+1)
				}
			})
		}
		bounce(a, b, 0)
		g.Run(until)
	}

	merged := make([]string, 0, len(logs[0])+len(logs[1]))
	i, j := 0, 0 // the chain alternates shards; merge preserves hop order
	for i < len(logs[1]) || j < len(logs[0]) {
		if i < len(logs[1]) {
			merged = append(merged, logs[1][i])
			i++
		}
		if j < len(logs[0]) {
			merged = append(merged, logs[0][j])
			j++
		}
	}
	if len(merged) != len(serial) {
		t.Fatalf("sharded dispatched %d hops, serial %d", len(merged), len(serial))
	}
	for k := range merged {
		if merged[k] != serial[k] {
			t.Fatalf("hop %d: sharded %q, serial %q", k, merged[k], serial[k])
		}
	}
}

// TestGroupPipeHorizon: a saturated cross-shard pipe publishes its
// backlog as lookahead and delivers every completion on the peer shard
// at exactly the times the same pipe computes on a serial engine.
func TestGroupPipeHorizon(t *testing.T) {
	const n = 50
	cfg := PipeConfig{Name: "x", BytesPerSec: 1e9, BaseLatency: 300 * time.Nanosecond}

	// Serial reference: same pipe, same burst, one engine.
	var want []Time
	{
		e := NewEngine()
		pp := NewPipe(e, cfg)
		e.At(0, func() {
			for i := 0; i < n; i++ {
				pp.Transfer(1000, func() { want = append(want, e.Now()) })
			}
		})
		e.Run(Time(time.Millisecond))
	}
	if len(want) != n {
		t.Fatalf("serial reference delivered %d transfers, want %d", len(want), n)
	}

	a, b := NewEngine(), NewEngine()
	g := NewGroup(a, b)
	pp := NewPipe(a, cfg)
	pp.SetRemoteDelivery(b)
	if pp.Horizon() == nil {
		t.Fatal("remote pipe did not publish a horizon")
	}
	g.Link(a, b, cfg.BaseLatency, pp.Horizon())
	g.Link(b, a, cfg.BaseLatency, nil)

	var arrivals []Time
	a.At(0, func() {
		for i := 0; i < n; i++ {
			pp.Transfer(1000, func() { arrivals = append(arrivals, b.Now()) })
		}
	})
	g.Run(Time(time.Millisecond))
	if len(arrivals) != n {
		t.Fatalf("delivered %d transfers, want %d", len(arrivals), n)
	}
	for k, at := range arrivals {
		if at != want[k] {
			t.Fatalf("transfer %d arrived at %v on the peer shard, serial says %v", k, at, want[k])
		}
	}
}

// TestGroupWindowBoundaries: clocks equalize at every Run boundary and
// posts beyond the window surface as pending work, not lost work.
func TestGroupWindowBoundaries(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	g := NewGroup(a, b)
	g.Link(a, b, time.Microsecond, nil)
	g.Link(b, a, time.Microsecond, nil)

	fired := false
	a.At(0, func() {
		a.PostAfter(b, 10*time.Microsecond, func() { fired = true })
	})
	g.Run(Time(5 * Microsecond))
	if fired {
		t.Fatal("event beyond the window ran early")
	}
	if a.Now() != Time(5*Microsecond) || b.Now() != Time(5*Microsecond) {
		t.Fatalf("clocks not equalized: a=%v b=%v", a.Now(), b.Now())
	}
	if g.Pending() == 0 {
		t.Fatal("cross post beyond the window vanished")
	}
	g.Run(Time(20 * Microsecond))
	if !fired {
		t.Fatal("cross post never delivered in the next window")
	}
}

// TestGroupShardSyncHooks: OnShardSync hooks run at every barrier.
func TestGroupShardSyncHooks(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	g := NewGroup(a, b)
	g.Link(a, b, time.Microsecond, nil)
	g.Link(b, a, time.Microsecond, nil)
	calls := 0
	a.OnShardSync(func() { calls++ })
	g.Run(Time(Microsecond))
	g.Run(Time(2 * Microsecond))
	if calls != 2 {
		t.Fatalf("sync hook ran %d times, want 2", calls)
	}
}

// TestGroupGuards: the construction and driving invariants panic loudly.
func TestGroupGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("single-engine group", func() { NewGroup(NewEngine()) })
	mustPanic("scheduled engine joins group", func() {
		e := NewEngine()
		e.At(0, func() {})
		NewGroup(e, NewEngine())
	})
	mustPanic("double membership", func() {
		a, b := NewEngine(), NewEngine()
		NewGroup(a, b)
		NewGroup(a, NewEngine())
	})
	mustPanic("zero lookahead link", func() {
		a, b := NewEngine(), NewEngine()
		g := NewGroup(a, b)
		g.Link(a, b, 0, nil)
	})
	mustPanic("Run on grouped engine", func() {
		a, b := NewEngine(), NewEngine()
		NewGroup(a, b)
		a.Run(Time(Microsecond))
	})
	mustPanic("RunUntilIdle on grouped engine", func() {
		a, b := NewEngine(), NewEngine()
		NewGroup(a, b)
		a.RunUntilIdle()
	})
}

// TestGroupExecutedSum: Group.Executed sums the shards' dispatches and
// every scheduled event is accounted to exactly one shard.
func TestGroupExecutedSum(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	g := NewGroup(a, b)
	g.Link(a, b, time.Microsecond, nil)
	g.Link(b, a, time.Microsecond, nil)
	for i := 0; i < 10; i++ {
		a.At(Time(i)*Time(Microsecond), func() {})
		b.At(Time(i)*Time(Microsecond), func() {})
	}
	a.At(0, func() { a.PostAfter(b, 2*time.Microsecond, func() {}) })
	g.Run(Time(100 * Microsecond))
	if got := g.Executed(); got != 22 {
		t.Fatalf("Executed = %d, want 22", got)
	}
}
