package sim

import (
	"testing"
)

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wakeups []Time
	e.Go("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Nanosecond)
			wakeups = append(wakeups, p.Now())
		}
	})
	e.RunUntilIdle()
	want := []Time{10, 20, 30}
	if len(wakeups) != 3 {
		t.Fatalf("wakeups = %v", wakeups)
	}
	for i := range want {
		if wakeups[i] != want[i] {
			t.Fatalf("wakeups = %v, want %v", wakeups, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	var log []string
	e.Go("a", func(p *Proc) {
		log = append(log, "a0")
		p.Sleep(10 * Nanosecond)
		log = append(log, "a1")
		p.Sleep(20 * Nanosecond)
		log = append(log, "a2")
	})
	e.Go("b", func(p *Proc) {
		log = append(log, "b0")
		p.Sleep(15 * Nanosecond)
		log = append(log, "b1")
	})
	e.RunUntilIdle()
	want := []string{"a0", "b0", "a1", "b1", "a2"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestProcSleepUntilPast(t *testing.T) {
	e := NewEngine()
	done := false
	e.Go("p", func(p *Proc) {
		p.Sleep(100 * Nanosecond)
		p.SleepUntil(Time(50)) // in the past: continue at current time
		if p.Now() != Time(100) {
			t.Errorf("now = %v, want 100", p.Now())
		}
		done = true
	})
	e.RunUntilIdle()
	if !done {
		t.Fatal("process did not finish")
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	woken := 0
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	e.Go("b", func(p *Proc) {
		p.Sleep(10 * Nanosecond)
		if s.Waiters() != 3 {
			t.Errorf("waiters = %d, want 3", s.Waiters())
		}
		s.Broadcast()
	})
	e.RunUntilIdle()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestGateLatches(t *testing.T) {
	e := NewEngine()
	g := NewGate(e)
	var passed []Time
	e.Go("early", func(p *Proc) {
		g.Wait(p)
		passed = append(passed, p.Now())
	})
	e.Go("opener", func(p *Proc) {
		p.Sleep(50 * Nanosecond)
		g.Open()
	})
	e.Go("late", func(p *Proc) {
		p.Sleep(100 * Nanosecond)
		g.Wait(p) // already open: no block
		passed = append(passed, p.Now())
	})
	e.RunUntilIdle()
	if len(passed) != 2 || passed[0] != Time(50) || passed[1] != Time(100) {
		t.Fatalf("passed = %v", passed)
	}
}

func TestSemaphore(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, 2)
	var concurrent, maxConcurrent int
	for i := 0; i < 5; i++ {
		e.Go("u", func(p *Proc) {
			sem.Acquire(p)
			concurrent++
			if concurrent > maxConcurrent {
				maxConcurrent = concurrent
			}
			p.Sleep(10 * Nanosecond)
			concurrent--
			sem.Release()
		})
	}
	e.RunUntilIdle()
	if maxConcurrent != 2 {
		t.Fatalf("maxConcurrent = %d, want 2", maxConcurrent)
	}
	if sem.Available() != 2 {
		t.Fatalf("available = %d, want 2", sem.Available())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, 1)
	if !sem.TryAcquire() {
		t.Fatal("first TryAcquire should succeed")
	}
	if sem.TryAcquire() {
		t.Fatal("second TryAcquire should fail")
	}
	sem.Release()
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire after Release should succeed")
	}
}

func TestDrainKillsParkedProcs(t *testing.T) {
	e := NewEngine()
	reached := false
	e.Go("stuck", func(p *Proc) {
		s := NewSignal(e)
		s.Wait(p) // never broadcast
		reached = true
	})
	e.Run(Time(1000))
	e.Drain()
	if reached {
		t.Fatal("killed process continued past Wait")
	}
}

func TestQueuePutGet(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, 0)
	var got []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10 * Nanosecond)
			q.Put(p, i)
		}
		q.Close()
	})
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.RunUntilIdle()
	if len(got) != 5 {
		t.Fatalf("got = %v", got)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("got = %v, want 0..4 in order", got)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, 2)
	var putTimes []Time
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			q.Put(p, i)
			putTimes = append(putTimes, p.Now())
		}
	})
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(100 * Nanosecond)
			if _, ok := q.TryGet(); !ok {
				t.Error("expected item")
			}
		}
	})
	e.RunUntilIdle()
	// First two puts at t=0; third blocks until a Get frees a slot at 100.
	if putTimes[0] != 0 || putTimes[1] != 0 {
		t.Fatalf("putTimes = %v, first two should be at 0", putTimes)
	}
	if putTimes[2] != Time(100) || putTimes[3] != Time(200) {
		t.Fatalf("putTimes = %v, want blocked puts at 100 and 200", putTimes)
	}
}

func TestQueueTryOps(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string](e, 1)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue should fail")
	}
	if !q.TryPut("a") {
		t.Fatal("TryPut should succeed")
	}
	if q.TryPut("b") {
		t.Fatal("TryPut on full queue should fail")
	}
	q.ForcePut("c")
	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2 after ForcePut", q.Len())
	}
	if v, _ := q.Peek(); v != "a" {
		t.Fatalf("peek = %q, want a", v)
	}
	if v, _ := q.TryGet(); v != "a" {
		t.Fatalf("got %q, want a", v)
	}
}
