// Conservative parallel simulation: a Group gangs engines into shards
// that run concurrently on their own goroutines, null-message style
// (Chandy-Misra-Bryant). The topology being simulated provides the
// lookahead: every interaction that crosses a shard boundary rides a
// physical link with nonzero latency (an Ethernet wire's propagation
// delay, the netstack's ACK/connect control-plane delay), so a shard
// may always advance to
//
//	min over incoming links of (sender horizon + link floor)
//
// without risk of an event arriving in its past. Each shard publishes
// a monotone clock — a promise that it will not dispatch (and hence
// not send) anything earlier — and cross-shard events travel through
// per-engine mailboxes as (at, sub, seq)-keyed posts that the receiver
// merges into its heap, reproducing the serial engine's dispatch order
// (see heapEntry.less).
//
// Wire links additionally publish a dynamic horizon: the sending
// pipe's next-free time. A saturated wire serializes far ahead of the
// sender's clock, so its receiver gets lookahead on the order of the
// queueing backlog instead of the 300 ns propagation floor — this is
// what lets throughput experiments scale, while idle wires degrade to
// latency-floor lockstep.
//
// Determinism: a shard's local schedule order is exactly the serial
// order (same counter, same clock), and cross-shard posts carry the
// sender's scheduling key, so any two events whose scheduling times
// differ dispatch in serial order. The only residual ambiguity is two
// events scheduled at the same instant *by different shards* for the
// same instant — ordered here by shard index — where the serial
// engine would have used global call order. The experiment-level
// byte-identity gate (scripts/check.sh) demonstrates the distinction
// is unobservable for the workloads this repo runs.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// maxShardSeq bounds the per-shard event counter: seq keys compose as
// shard<<56 | counter.
const maxShardSeq = uint64(1)<<56 - 1

// atomicTime is a Time published with sequentially consistent loads and
// stores (shard clocks and pipe horizons).
type atomicTime struct{ v atomic.Int64 }

func (a *atomicTime) load() Time   { return Time(a.v.Load()) }
func (a *atomicTime) store(t Time) { a.v.Store(int64(t)) }

// xpost is one cross-shard event: the sender's full ordering key plus
// the callback to run on the receiving engine.
type xpost struct {
	at  Time
	sub Time
	seq uint64
	fn  func()
}

// mailbox is an engine's inbox for cross-shard posts. Senders append
// under the mutex during their dispatches; the receiving shard swaps
// the batch out and merges it into its heap. n mirrors len(posts) so
// the receiver can skip the lock entirely on the (common) empty check.
type mailbox struct {
	mu    sync.Mutex
	n     atomic.Int32
	posts []xpost
	spare []xpost
}

func (mb *mailbox) put(p xpost) {
	mb.mu.Lock()
	mb.posts = append(mb.posts, p)
	mb.n.Store(int32(len(mb.posts)))
	mb.mu.Unlock()
}

// drainInto merges every pending post into the engine's heap.
func (e *Engine) drainInbox() {
	mb := &e.inbox
	if mb.n.Load() == 0 {
		return
	}
	mb.mu.Lock()
	batch := mb.posts
	mb.posts = mb.spare[:0]
	mb.n.Store(0)
	mb.mu.Unlock()
	for i := range batch {
		p := &batch[i]
		if p.at < e.now {
			panic(fmt.Sprintf("sim: cross-shard post for %v arrived in shard %d's past (now %v) — link floor too small", p.at, e.shard, e.now))
		}
		e.insert(p.at, p.sub, p.seq, p.fn)
		p.fn = nil
	}
	mb.spare = batch[:0]
}

// link is one incoming cross-shard channel: events from src arrive no
// earlier than max(src clock, horizon) + floor.
type link struct {
	src     *Engine
	floor   Time
	horizon *atomicTime // optional dynamic bound (a pipe's next-free time)
}

// Group is a set of engines running as parallel shards. Build the
// group immediately after constructing the engines — before scheduling
// anything on them — so every event carries its shard's composed
// sequence key, then register the cross-shard links and drive the
// whole group with Run.
type Group struct {
	engines []*Engine
	in      [][]link // incoming links per shard
	running bool
}

// NewGroup gangs engines into a shard group. Engines must be fresh
// (nothing scheduled yet) and belong to at most one group.
func NewGroup(engines ...*Engine) *Group {
	if len(engines) < 2 {
		panic("sim: a shard group needs at least two engines")
	}
	g := &Group{engines: engines, in: make([][]link, len(engines))}
	for i, e := range engines {
		if e.group != nil {
			panic("sim: engine already belongs to a shard group")
		}
		if e.seq != 0 || len(e.events) != 0 {
			panic("sim: engine joined a shard group after scheduling events")
		}
		e.group = g
		e.shard = i
		e.seqBase = uint64(i) << 56
	}
	return g
}

// Engines returns the group's engines in shard order.
func (g *Group) Engines() []*Engine { return g.engines }

// Link declares that src sends cross-shard events to dst with at least
// `floor` of latency: dst may safely advance to src's published clock
// plus the floor. horizon, when non-nil, is an additional dynamic
// lower bound on arrival times (a wire pipe's next-free time), which
// extends the lookahead far past the floor while the link is
// backlogged. Every Post path from src to dst must be covered by some
// registered link, and no post may undercut the floors.
func (g *Group) Link(src, dst *Engine, floor time.Duration, horizon *atomicTime) {
	if src.group != g || dst.group != g {
		panic("sim: Link between engines outside this group")
	}
	if src == dst {
		return
	}
	if floor <= 0 {
		panic("sim: cross-shard link needs a positive latency floor")
	}
	g.in[dst.shard] = append(g.in[dst.shard], link{src: src, floor: Time(floor), horizon: horizon})
}

// Run dispatches events on all shards concurrently until every clock
// would pass `until`, then synchronizes: mailboxes are drained, clocks
// equalized at `until`, and shard-sync hooks flushed, so the group is
// indistinguishable from a serial engine that just finished Run(until).
func (g *Group) Run(until Time) {
	if g.running {
		panic("sim: Group.Run called reentrantly")
	}
	g.running = true
	defer func() { g.running = false }()
	for _, e := range g.engines {
		if e.running {
			panic("sim: Run called reentrantly")
		}
		if e.seq > maxShardSeq {
			panic("sim: shard sequence counter overflow")
		}
		e.running = true
		e.stopped = false
		e.clock.store(e.now)
	}
	var wg sync.WaitGroup
	for _, e := range g.engines {
		wg.Add(1)
		// Per-iteration loop variable (Go 1.22): capture directly.
		go func() {
			defer wg.Done()
			g.runShard(e, until)
		}()
	}
	wg.Wait()
	for _, e := range g.engines {
		// Posts sent by peers' final dispatches may still sit in the
		// inbox (necessarily for delivery past `until`): merge them into
		// the heap so Pending and the next window see them.
		e.drainInbox()
		e.purge()
		if !e.stopped && until > e.now {
			e.now = until
		}
		e.clock.store(e.now)
		e.running = false
	}
	for _, e := range g.engines {
		for _, h := range e.syncHooks {
			h()
		}
	}
}

// RunFor advances the whole group by d from its current time (all
// shards share a clock value at every window boundary).
func (g *Group) RunFor(d time.Duration) { g.Run(g.engines[0].now.Add(d)) }

// Now returns the group's time (well-defined between runs, when all
// shard clocks are equalized).
func (g *Group) Now() Time { return g.engines[0].now }

// Executed sums dispatched events over all shards.
func (g *Group) Executed() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.Executed
	}
	return n
}

// Pending sums queued events over all shards.
func (g *Group) Pending() int {
	n := 0
	for _, e := range g.engines {
		n += e.Pending()
	}
	return n
}

// Drain terminates every shard's parked processes.
func (g *Group) Drain() {
	for _, e := range g.engines {
		e.Drain()
	}
}

// safeHorizon computes how far shard e may advance: the minimum over
// incoming links of the sender's promised progress plus the link
// latency floor. Must be computed from clock/horizon values loaded
// BEFORE the caller's inbox drain — any post not yet visible at drain
// time was sent at or after those loaded clocks, so its arrival is
// bounded below by this value.
func (g *Group) safeHorizon(e *Engine) Time {
	s := Time(math.MaxInt64)
	for _, l := range g.in[e.shard] {
		b := l.src.clock.load()
		if l.horizon != nil {
			if h := l.horizon.load(); h > b {
				b = h
			}
		}
		b += l.floor
		if b < s {
			s = b
		}
	}
	return s
}

// runShard is one shard's event loop for a single window. The ordering
// discipline that makes it safe: load peer horizons first, then drain
// the inbox, then dispatch strictly below the loaded horizon. Any post
// that was enqueued before a peer's clock reached the loaded value is
// visible to the drain (the mailbox mutex orders it); any post
// enqueued after it departs from a dispatch at or past that clock, so
// it arrives at or past the horizon.
func (g *Group) runShard(e *Engine, until Time) {
	for !e.stopped {
		s := g.safeHorizon(e)
		e.drainInbox()
		e.purge()
		t := Time(math.MaxInt64)
		if len(e.events) > 0 {
			t = e.events[0].at
		}
		// Publish our own promise before dispatching anything at t.
		c := t
		if s < c {
			c = s
		}
		if c > e.clock.load() {
			e.clock.store(c)
		}
		if t <= until && t < s {
			// Dispatch the batch below the horizon, keeping the clock
			// fresh as local time advances so peers can make progress
			// without waiting for this batch to finish.
			for {
				e.step()
				if e.stopped {
					break
				}
				e.purge()
				if len(e.events) == 0 {
					break
				}
				nt := e.events[0].at
				if nt > until || nt >= s {
					break
				}
				if nt > t {
					t = nt
					e.clock.store(t)
				}
			}
			continue
		}
		if t > until && s > until {
			// Nothing of ours left in the window and nothing can arrive
			// inside it: promise the whole window and leave. The final
			// barrier in Run picks up any posts for later windows.
			e.clock.store(until + 1)
			return
		}
		// Blocked on a peer: yield and re-read its horizon. Idle gaps
		// creep forward one link floor per round trip.
		runtime.Gosched()
	}
	e.clock.store(until + 1)
}
