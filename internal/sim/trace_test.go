package sim

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsTransfersAndFlows(t *testing.T) {
	e := NewEngine()
	tr := NewTracer(100)
	e.SetTracer(tr)
	p := NewPipe(e, PipeConfig{Name: "link", BytesPerSec: 1e9})
	p.Transfer(1000, nil)
	p.Transfer(2000, nil)
	p.AddFlow("bulk", 5e8)
	e.RunUntilIdle()
	if tr.Count("link") != 2 {
		t.Fatalf("transfer records = %d, want 2", tr.Count("link"))
	}
	if tr.Count("link/bulk") != 1 {
		t.Fatalf("flow records = %d, want 1", tr.Count("link/bulk"))
	}
	var dump strings.Builder
	tr.Dump(&dump)
	if !strings.Contains(dump.String(), "xfer") || !strings.Contains(dump.String(), "flow") {
		t.Fatalf("dump missing kinds:\n%s", dump.String())
	}
	var sum strings.Builder
	tr.Summary(&sum)
	if !strings.Contains(sum.String(), "link") {
		t.Fatalf("summary missing label:\n%s", sum.String())
	}
}

func TestTracerLimitDropsOldest(t *testing.T) {
	e := NewEngine()
	tr := NewTracer(4)
	e.SetTracer(tr)
	p := NewPipe(e, PipeConfig{Name: "l", BytesPerSec: 1e9})
	for i := 0; i < 10; i++ {
		p.Transfer(int64(i+1), nil)
		e.RunUntilIdle()
	}
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	if recs[len(recs)-1].Value != 10 {
		t.Fatalf("latest record = %v, want the newest transfer", recs[len(recs)-1].Value)
	}
	if tr.Count("l") != 10 {
		t.Fatalf("count = %d, want 10 (counts survive drops)", tr.Count("l"))
	}
}

func TestTracingOffByDefaultIsFree(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, PipeConfig{Name: "l", BytesPerSec: 1e9})
	p.Transfer(100, nil) // must not panic with no tracer installed
	e.SetTracer(nil)
	p.Transfer(100, nil)
	e.RunUntilIdle()
}

// TestTracerRingOrderAfterWrap: once past the limit the ring buffer
// overwrites in place; Records must still return survivors oldest
// first with exact count, at every fill level.
func TestTracerRingOrderAfterWrap(t *testing.T) {
	for _, total := range []int{1, 3, 4, 5, 9, 17} {
		e := NewEngine()
		tr := NewTracer(4)
		e.SetTracer(tr)
		p := NewPipe(e, PipeConfig{Name: "l", BytesPerSec: 1e9})
		for i := 0; i < total; i++ {
			e.After(time.Duration(i+1)*time.Microsecond, func() { p.Transfer(1, nil) })
		}
		e.RunUntilIdle()
		recs := tr.Records()
		want := total
		if want > 4 {
			want = 4
		}
		if len(recs) != want {
			t.Fatalf("total=%d: records = %d, want %d", total, len(recs), want)
		}
		for i, r := range recs {
			wantAt := Time(time.Duration(total-want+i+1) * time.Microsecond)
			if r.At != wantAt {
				t.Fatalf("total=%d: record %d at %v, want %v (oldest-first order broken)",
					total, i, r.At, wantAt)
			}
		}
		if tr.Count("l") != total {
			t.Fatalf("total=%d: count = %d", total, tr.Count("l"))
		}
	}
}

// TestTracerRecordIsConstantTime: recording past the limit must not
// shift the whole buffer. With the old copy-per-record scheme 200k
// records over a 64k window took quadratic time; the ring makes each
// record O(1), which this test bounds loosely by just completing fast
// with a big limit and many drops.
func TestTracerRecordIsConstantTime(t *testing.T) {
	e := NewEngine()
	tr := NewTracer(1 << 14)
	e.SetTracer(tr)
	p := NewPipe(e, PipeConfig{Name: "l", BytesPerSec: 1e12})
	const n = 1 << 17
	for i := 0; i < n; i++ {
		p.Transfer(1, nil)
	}
	e.RunUntilIdle()
	if got := len(tr.Records()); got != 1<<14 {
		t.Fatalf("records = %d", got)
	}
	if tr.Count("l") != n {
		t.Fatalf("count = %d", tr.Count("l"))
	}
}

func TestTracerChromeExport(t *testing.T) {
	e := NewEngine()
	tr := NewTracer(16)
	e.SetTracer(tr)
	p := NewPipe(e, PipeConfig{Name: "link", BytesPerSec: 1e9})
	e.After(time.Microsecond, func() { p.Transfer(1500, nil) })
	p.AddFlow("bulk", 1e6)
	e.RunUntilIdle()

	var buf strings.Builder
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var sawXfer, sawFlow bool
	for _, ev := range out.TraceEvents {
		switch {
		case ev.Name == "link" && ev.Cat == "xfer":
			sawXfer = true
			if ev.Phase != "i" || ev.TS != 1.0 {
				t.Fatalf("xfer event wrong: %+v", ev)
			}
			if v, _ := ev.Args["value"].(float64); v != 1500 {
				t.Fatalf("xfer value = %v", ev.Args["value"])
			}
		case ev.Name == "link/bulk" && ev.Cat == "flow":
			sawFlow = true
		}
	}
	if !sawXfer || !sawFlow {
		t.Fatalf("missing events (xfer=%v flow=%v):\n%s", sawXfer, sawFlow, buf.String())
	}
}

// TestFireAndForgetTransferSchedulesNoEvent: a Transfer with a nil
// callback must not churn the event heap, yet RunUntilIdle must still
// end with the clock at the transfer's completion time.
func TestFireAndForgetTransferSchedulesNoEvent(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, PipeConfig{Name: "l", BytesPerSec: 1e9, BaseLatency: time.Microsecond})
	finish := p.Transfer(1000, nil)
	if e.Pending() != 0 {
		t.Fatalf("fire-and-forget transfer queued %d event(s)", e.Pending())
	}
	before := e.Executed
	e.RunUntilIdle()
	if e.Executed != before {
		t.Fatalf("dispatched %d event(s) for a nil-done transfer", e.Executed-before)
	}
	if e.Now() != finish {
		t.Fatalf("RunUntilIdle left clock at %v, want %v", e.Now(), finish)
	}
	// A callback transfer still schedules exactly one event.
	fired := false
	p.Transfer(1000, func() { fired = true })
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.RunUntilIdle()
	if !fired {
		t.Fatal("done callback never fired")
	}
}

// TestRunBoundedThenIdleReachesHorizon: Run(until) before the
// fire-and-forget completion leaves the clock at until; a later
// RunUntilIdle still advances to the completion time.
func TestRunBoundedThenIdleReachesHorizon(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, PipeConfig{Name: "l", BytesPerSec: 1e6})
	finish := p.Transfer(1000, nil) // 1 ms serialization
	e.Run(Time(10 * time.Microsecond))
	if e.Now() != Time(10*time.Microsecond) {
		t.Fatalf("bounded run ended at %v", e.Now())
	}
	e.RunUntilIdle()
	if e.Now() != finish {
		t.Fatalf("idle run ended at %v, want %v", e.Now(), finish)
	}
}

func TestTracerTimestamps(t *testing.T) {
	e := NewEngine()
	tr := NewTracer(0)
	e.SetTracer(tr)
	p := NewPipe(e, PipeConfig{Name: "l", BytesPerSec: 1e9})
	e.After(time.Microsecond, func() { p.Transfer(1, nil) })
	e.RunUntilIdle()
	if len(tr.Records()) != 1 || tr.Records()[0].At != Time(time.Microsecond) {
		t.Fatalf("records = %+v", tr.Records())
	}
}
