package sim

import (
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsTransfersAndFlows(t *testing.T) {
	e := NewEngine()
	tr := NewTracer(100)
	e.SetTracer(tr)
	p := NewPipe(e, PipeConfig{Name: "link", BytesPerSec: 1e9})
	p.Transfer(1000, nil)
	p.Transfer(2000, nil)
	p.AddFlow("bulk", 5e8)
	e.RunUntilIdle()
	if tr.Count("link") != 2 {
		t.Fatalf("transfer records = %d, want 2", tr.Count("link"))
	}
	if tr.Count("link/bulk") != 1 {
		t.Fatalf("flow records = %d, want 1", tr.Count("link/bulk"))
	}
	var dump strings.Builder
	tr.Dump(&dump)
	if !strings.Contains(dump.String(), "xfer") || !strings.Contains(dump.String(), "flow") {
		t.Fatalf("dump missing kinds:\n%s", dump.String())
	}
	var sum strings.Builder
	tr.Summary(&sum)
	if !strings.Contains(sum.String(), "link") {
		t.Fatalf("summary missing label:\n%s", sum.String())
	}
}

func TestTracerLimitDropsOldest(t *testing.T) {
	e := NewEngine()
	tr := NewTracer(4)
	e.SetTracer(tr)
	p := NewPipe(e, PipeConfig{Name: "l", BytesPerSec: 1e9})
	for i := 0; i < 10; i++ {
		p.Transfer(int64(i+1), nil)
		e.RunUntilIdle()
	}
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	if recs[len(recs)-1].Value != 10 {
		t.Fatalf("latest record = %v, want the newest transfer", recs[len(recs)-1].Value)
	}
	if tr.Count("l") != 10 {
		t.Fatalf("count = %d, want 10 (counts survive drops)", tr.Count("l"))
	}
}

func TestTracingOffByDefaultIsFree(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, PipeConfig{Name: "l", BytesPerSec: 1e9})
	p.Transfer(100, nil) // must not panic with no tracer installed
	e.SetTracer(nil)
	p.Transfer(100, nil)
	e.RunUntilIdle()
}

func TestTracerTimestamps(t *testing.T) {
	e := NewEngine()
	tr := NewTracer(0)
	e.SetTracer(tr)
	p := NewPipe(e, PipeConfig{Name: "l", BytesPerSec: 1e9})
	e.After(time.Microsecond, func() { p.Transfer(1, nil) })
	e.RunUntilIdle()
	if len(tr.Records()) != 1 || tr.Records()[0].At != Time(time.Microsecond) {
		t.Fatalf("records = %+v", tr.Records())
	}
}
