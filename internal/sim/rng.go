package sim

import (
	"math"
	"math/rand"
	"time"
)

// RNG is a seeded random source for model components. Every component
// derives its RNG from the run's root seed so whole-system runs are
// reproducible and components are statistically independent.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded with the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent RNG from this one, labelled by id; two
// forks with different ids produce unrelated streams.
func (g *RNG) Fork(id int64) *RNG {
	// SplitMix-style scramble of (next, id) to decorrelate streams.
	z := uint64(g.r.Int63()) ^ (uint64(id) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return NewRNG(int64(z))
}

// Float64 returns a uniform float in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Exp returns an exponentially distributed duration with the given mean.
func (g *RNG) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(g.r.ExpFloat64() * float64(mean))
}

// Normal returns a normally distributed duration clamped at zero.
func (g *RNG) Normal(mean, stddev time.Duration) time.Duration {
	d := time.Duration(g.r.NormFloat64()*float64(stddev)) + mean
	if d < 0 {
		return 0
	}
	return d
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f].
func (g *RNG) Jitter(d time.Duration, f float64) time.Duration {
	if f <= 0 {
		return d
	}
	scale := 1 + f*(2*g.r.Float64()-1)
	out := time.Duration(float64(d) * scale)
	if out < 0 {
		return 0
	}
	return out
}

// Zipf returns a generator of Zipf-distributed values in [0,n) with
// skew s > 1 is classic; we accept s >= 1.01 and clamp below.
func (g *RNG) Zipf(s float64, n uint64) *rand.Zipf {
	if s < 1.01 {
		s = 1.01
	}
	return rand.NewZipf(g.r, s, 1, n-1)
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// LogNormal returns a log-normally distributed float with the given
// parameters of the underlying normal.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.r.NormFloat64()*sigma + mu)
}
