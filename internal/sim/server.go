package sim

import (
	"time"
)

// Server is a single FIFO work server: jobs submitted to it execute one at
// a time, in order, each occupying the server for its service duration.
// It models fixed-function processing units (a NIC's DMA engine, an SSD's
// flash channel controller) and keeps a busy-time integral so utilization
// can be reported.
type Server struct {
	eng      *Engine
	name     string
	nextFree Time
	busy     time.Duration
	jobs     uint64
}

// NewServer returns a FIFO server.
func NewServer(e *Engine, name string) *Server {
	return &Server{eng: e, name: name}
}

// Name returns the server's name.
func (s *Server) Name() string { return s.name }

// Submit enqueues a job of the given service time and schedules done (may
// be nil) at its completion. It returns the completion time.
func (s *Server) Submit(service time.Duration, done func()) Time {
	if service < 0 {
		service = 0
	}
	now := s.eng.Now()
	start := now
	if s.nextFree > start {
		start = s.nextFree
	}
	finish := start.Add(service)
	s.nextFree = finish
	s.busy += service
	s.jobs++
	if done == nil {
		done = func() {}
	}
	s.eng.At(finish, done)
	return finish
}

// SubmitProc enqueues a job and blocks the calling process until it
// completes.
func (s *Server) SubmitProc(p *Proc, service time.Duration) {
	s.Submit(service, p.resume)
	p.yield()
}

// BusyTime returns the total service time accumulated.
func (s *Server) BusyTime() time.Duration { return s.busy }

// Jobs returns the number of jobs submitted.
func (s *Server) Jobs() uint64 { return s.jobs }

// Backlog returns how far in the future the server is booked.
func (s *Server) Backlog() time.Duration {
	now := s.eng.Now()
	if s.nextFree <= now {
		return 0
	}
	return s.nextFree.Sub(now)
}

// ResetStats zeroes the busy-time integral and job count.
func (s *Server) ResetStats() {
	s.busy = 0
	s.jobs = 0
}
