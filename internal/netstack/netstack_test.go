package netstack

import (
	"testing"
	"time"

	"ioctopus/internal/eth"
	"ioctopus/internal/interconnect"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/nic"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// fakeDev is a loopback NetDevice: Xmit delivers straight back into the
// destination stack, recording steering and queue choices.
type fakeDev struct {
	name    string
	mac     eth.MAC
	net     *Network
	sent    []*Packet
	steered map[eth.FiveTuple]topology.CoreID
	// inFlight simulates a busy queue for the ooo_okay test.
	inFlight map[int]int
	mem      *memsys.System
	eng      *sim.Engine
}

func newFakeDev(name string, id uint64, net *Network, mem *memsys.System, eng *sim.Engine) *fakeDev {
	return &fakeDev{
		name: name, mac: eth.MACFromInt(id), net: net,
		steered:  make(map[eth.FiveTuple]topology.CoreID),
		inFlight: make(map[int]int),
		mem:      mem,
		eng:      eng,
	}
}

func (d *fakeDev) Name() string                                  { return d.name }
func (d *fakeDev) HWAddr() eth.MAC                               { return d.mac }
func (d *fakeDev) NumTxQueues() int                              { return 28 }
func (d *fakeDev) TxQueueForCore(c topology.CoreID) int          { return int(c) }
func (d *fakeDev) TxInFlight(q int) int                          { return d.inFlight[q] }
func (d *fakeDev) SteerFlow(ft eth.FiveTuple, c topology.CoreID) { d.steered[ft] = c }

// Xmit loops the segment back into whatever stack owns the destination
// flow, via a small delay (so in-order delivery holds). Per the
// NetDevice contract the incoming Packet may be caller-owned scratch,
// so the fake copies it before retaining.
func (d *fakeDev) Xmit(t *kernel.Thread, pkt *Packet, txq int) {
	cp := *pkt
	cp.Frags = append([]Frag(nil), pkt.Frags...)
	pkt = &cp
	d.sent = append(d.sent, pkt)
	st, _ := d.net.lookup(pkt.Flow.DstIP)
	if st == nil {
		return
	}
	buf := d.mem.NewBuffer("loop", 0, maxInt64(pkt.Payload, 1))
	rxp := &nic.RxPacket{
		Buf:     buf,
		Payload: pkt.Payload,
		Packets: pkt.Packets,
		Flow:    pkt.Flow,
		Meta:    pkt.Meta,
	}
	d.eng.After(time.Microsecond, func() { st.DeliverRx(rxp) })
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// stackRig builds two stacks joined by fake loopback devices.
type stackRig struct {
	eng    *sim.Engine
	ka, kb *kernel.Kernel
	sa, sb *Stack
	da, db *fakeDev
}

func newStackRig(t *testing.T) *stackRig {
	t.Helper()
	eng := sim.NewEngine()
	topo := topology.DualBroadwell()
	net := NewNetwork()
	mk := func(name string) (*kernel.Kernel, *Stack) {
		fab := interconnect.New(eng, topo)
		mem := memsys.New(eng, topo, fab, memsys.DefaultParams())
		k := kernel.New(eng, topo, mem, kernel.DefaultParams())
		return k, NewStack(k, name, net, DefaultParams())
	}
	ka, sa := mk("a")
	kb, sb := mk("b")
	da := newFakeDev("devA", 1, net, ka.Memory(), eng)
	db := newFakeDev("devB", 2, net, kb.Memory(), eng)
	sa.AddDevice(da, 0x0A000001)
	sb.AddDevice(db, 0x0A000002)
	return &stackRig{eng: eng, ka: ka, kb: kb, sa: sa, sb: sb, da: da, db: db}
}

func TestDialCreatesSocketPair(t *testing.T) {
	r := newStackRig(t)
	accepted := false
	r.sb.Listen(80, func(s *Socket) { accepted = true })
	var sock *Socket
	r.ka.Spawn("c", 0, func(th *kernel.Thread) {
		var err error
		sock, err = r.sa.Dial(th, 0x0A000002, 80, eth.ProtoTCP)
		if err != nil {
			t.Errorf("dial: %v", err)
		}
	})
	r.eng.RunFor(time.Millisecond)
	if !accepted || sock == nil {
		t.Fatal("dial did not complete")
	}
	if sock.Flow().DstPort != 80 || sock.Flow().SrcIP != 0x0A000001 {
		t.Fatalf("flow = %+v", sock.Flow())
	}
	r.eng.Drain()
}

func TestDialErrors(t *testing.T) {
	r := newStackRig(t)
	r.ka.Spawn("c", 0, func(th *kernel.Thread) {
		if _, err := r.sa.Dial(th, 0xDEAD, 80, eth.ProtoTCP); err == nil {
			t.Error("dial to unknown IP should fail")
		}
		if _, err := r.sa.Dial(th, 0x0A000002, 81, eth.ProtoTCP); err == nil {
			t.Error("dial to non-listening port should be refused")
		}
	})
	r.eng.RunFor(time.Millisecond)
	r.eng.Drain()
}

func TestSendRecvRoundTrip(t *testing.T) {
	r := newStackRig(t)
	var got int64
	var gotMeta any
	r.sb.Listen(80, func(s *Socket) {
		r.kb.Spawn("srv", 0, func(th *kernel.Thread) {
			n, meta, ok := s.Recv(th)
			if !ok {
				return
			}
			got, gotMeta = n, meta
		})
	})
	r.ka.Spawn("cli", 0, func(th *kernel.Thread) {
		sock, _ := r.sa.Dial(th, 0x0A000002, 80, eth.ProtoTCP)
		sock.SendMsg(th, 4096, "hello")
	})
	r.eng.RunFor(10 * time.Millisecond)
	if got != 4096 || gotMeta != "hello" {
		t.Fatalf("got %d/%v", got, gotMeta)
	}
	r.eng.Drain()
}

func TestTSOSegmentation(t *testing.T) {
	r := newStackRig(t)
	r.sb.Listen(80, func(s *Socket) {})
	r.ka.Spawn("cli", 0, func(th *kernel.Thread) {
		sock, _ := r.sa.Dial(th, 0x0A000002, 80, eth.ProtoTCP)
		sock.Send(th, 200_000) // > 3 TSO segments
	})
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.da.sent) != 4 { // 3x64K + remainder
		t.Fatalf("segments = %d, want 4", len(r.da.sent))
	}
	var total int64
	for _, p := range r.da.sent {
		total += p.Payload
		if p.Payload > 64*1024 {
			t.Fatalf("segment exceeds TSO: %d", p.Payload)
		}
		if p.Packets != eth.SegmentPackets(p.Payload) {
			t.Fatalf("packet count wrong: %d for %d bytes", p.Packets, p.Payload)
		}
	}
	if total != 200_000 {
		t.Fatalf("total = %d", total)
	}
	r.eng.Drain()
}

func TestXPSFollowsCoreWithOOOGuard(t *testing.T) {
	r := newStackRig(t)
	r.sb.Listen(80, func(s *Socket) {})
	var sock *Socket
	var th1 *kernel.Thread
	th1 = r.ka.Spawn("cli", 3, func(th *kernel.Thread) {
		sock, _ = r.sa.Dial(th, 0x0A000002, 80, eth.ProtoTCP)
		sock.Send(th, 1000)
		// Simulate queue 3 still busy, then migrate to core 7 and send:
		// the stack must stick to queue 3 (ooo_okay false).
		r.da.inFlight[3] = 2
		r.ka.SetAffinity(th1, 7)
		sock.Send(th, 1000)
		// Queue drained: next send switches to core 7's queue.
		r.da.inFlight[3] = 0
		sock.Send(th, 1000)
	})
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.da.sent) != 3 {
		t.Fatalf("sent = %d", len(r.da.sent))
	}
	if !r.da.sent[0].OOOOkay {
		t.Error("first send has no previous queue; switch is safe")
	}
	if r.da.sent[1].OOOOkay {
		t.Error("second send should be pinned to the busy old queue")
	}
	if !r.da.sent[2].OOOOkay {
		t.Error("third send should switch after drain")
	}
	r.eng.Drain()
}

func TestMigrationFiresARFSCallback(t *testing.T) {
	r := newStackRig(t)
	r.sb.Listen(80, func(s *Socket) {})
	var th *kernel.Thread
	th = r.ka.Spawn("cli", 2, func(tt *kernel.Thread) {
		sock, _ := r.sa.Dial(tt, 0x0A000002, 80, eth.ProtoTCP)
		sock.SetOwner(tt)
		tt.Sleep(time.Millisecond)
	})
	r.eng.RunFor(100 * time.Microsecond)
	if len(r.da.steered) != 1 {
		t.Fatalf("SetOwner should steer once, got %d", len(r.da.steered))
	}
	r.ka.SetAffinity(th, 17)
	r.eng.RunFor(time.Millisecond)
	for ft, c := range r.da.steered {
		if c != 17 {
			t.Fatalf("flow %v steered to %d, want 17", ft, c)
		}
		// The steered tuple is the arriving direction (reversed).
		if ft.DstIP != 0x0A000001 {
			t.Fatalf("steered tuple not reversed: %v", ft)
		}
	}
	r.eng.Drain()
}

func TestUDPHasNoWindow(t *testing.T) {
	r := newStackRig(t)
	r.sb.Listen(80, func(s *Socket) {})
	sent := 0
	r.ka.Spawn("cli", 0, func(th *kernel.Thread) {
		sock, _ := r.sa.Dial(th, 0x0A000002, 80, eth.ProtoUDP)
		// Far more than the TCP window without any Recv on the other
		// side: UDP must never block.
		for i := 0; i < 300; i++ {
			sock.Send(th, 64*1024)
			sent++
		}
	})
	r.eng.RunFor(200 * time.Millisecond)
	if sent != 300 {
		t.Fatalf("UDP sender blocked after %d sends", sent)
	}
	r.eng.Drain()
}

func TestUDPDropsWhenReceiveBufferFull(t *testing.T) {
	r := newStackRig(t)
	r.sb.Listen(80, func(s *Socket) {}) // nobody ever Recvs
	r.ka.Spawn("cli", 0, func(th *kernel.Thread) {
		sock, _ := r.sa.Dial(th, 0x0A000002, 80, eth.ProtoUDP)
		for i := 0; i < 300; i++ { // 300 x 64KB >> 8MB buffer
			sock.Send(th, 64*1024)
		}
	})
	r.eng.RunFor(200 * time.Millisecond)
	if r.sb.RxDrops() == 0 {
		t.Fatal("expected UDP drops at the full receive buffer")
	}
	r.eng.Drain()
}

func TestTCPWindowThrottlesToConsumer(t *testing.T) {
	r := newStackRig(t)
	consumed := 0
	r.sb.Listen(80, func(s *Socket) {
		r.kb.Spawn("srv", 0, func(th *kernel.Thread) {
			for {
				th.Sleep(time.Millisecond) // slow consumer
				if _, _, ok := s.Recv(th); !ok {
					return
				}
				consumed++
			}
		})
	})
	sent := 0
	r.ka.Spawn("cli", 0, func(th *kernel.Thread) {
		sock, _ := r.sa.Dial(th, 0x0A000002, 80, eth.ProtoTCP)
		for i := 0; i < 1000; i++ {
			sock.Send(th, 64*1024)
			sent++
		}
	})
	r.eng.RunFor(50 * time.Millisecond)
	if r.sb.RxDrops() != 0 {
		t.Fatalf("TCP must not drop at a slow consumer: %d drops", r.sb.RxDrops())
	}
	// Sender must be throttled: in-flight bounded by window+buffer,
	// so sent can't run away from consumed.
	maxAhead := int((DefaultParams().SendWindow+DefaultParams().RxBufBytes)/(64*1024)) + 2
	if sent > consumed+maxAhead {
		t.Fatalf("window failed: sent %d, consumed %d", sent, consumed)
	}
	r.eng.Drain()
}

func TestSocketClose(t *testing.T) {
	r := newStackRig(t)
	var srv *Socket
	r.sb.Listen(80, func(s *Socket) { srv = s })
	exited := false
	r.ka.Spawn("cli", 0, func(th *kernel.Thread) {
		sock, _ := r.sa.Dial(th, 0x0A000002, 80, eth.ProtoTCP)
		th.Sleep(time.Millisecond)
		sock.Close()
	})
	r.kb.Spawn("srv", 0, func(th *kernel.Thread) {
		for srv == nil {
			th.Sleep(100 * time.Microsecond)
		}
		if _, _, ok := srv.Recv(th); ok {
			t.Error("Recv on closed socket should report !ok")
		}
		exited = true
	})
	r.eng.RunFor(20 * time.Millisecond)
	if !exited {
		t.Fatal("receiver did not unblock on Close")
	}
	r.eng.Drain()
}

// TestSegQueueDequeueAccounting covers the shared dequeue helper behind
// get/tryGet: byte accounting, slot clearing, and backing-array
// compaction once the queue drains.
func TestSegQueueDequeueAccounting(t *testing.T) {
	eng := sim.NewEngine()
	q := newSegQueue(eng, 10000)
	a := &nic.RxPacket{Payload: 4000}
	b := &nic.RxPacket{Payload: 5000}
	if !q.tryPut(a) || !q.tryPut(b) {
		t.Fatal("puts within capacity must succeed")
	}
	if q.tryPut(&nic.RxPacket{Payload: 2000}) {
		t.Fatal("put beyond capBytes must be refused")
	}
	if q.free() != 1000 {
		t.Fatalf("free = %d, want 1000", q.free())
	}
	got, ok := q.tryGet()
	if !ok || got != a {
		t.Fatalf("tryGet = %v, %v", got, ok)
	}
	if q.free() != 5000 || q.len() != 1 {
		t.Fatalf("free = %d len = %d after dequeue", q.free(), q.len())
	}
	if got2, _ := q.tryGet(); got2 != b {
		t.Fatalf("tryGet = %v, want b", got2)
	}
	// Drained: head index resets and the backing array is reused.
	if q.head != 0 || len(q.items) != 0 {
		t.Fatalf("queue should compact when drained: head=%d items=%d", q.head, len(q.items))
	}
	q.close()
	if q.tryPut(a) {
		t.Fatal("closed queue must refuse puts")
	}
	eng.Drain()
}

func TestDuplicateIPPanics(t *testing.T) {
	r := newStackRig(t)
	defer func() {
		if recover() == nil {
			t.Error("duplicate IP should panic")
		}
		r.eng.Drain()
	}()
	r.sa.AddDevice(newFakeDev("dup", 9, r.sa.net, r.ka.Memory(), r.eng), 0x0A000002)
}
