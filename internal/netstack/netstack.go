// Package netstack models the kernel network stack the paper's driver
// plugs into: sockets with a TCP-like segmentation/windowing model and a
// UDP model, Transmit Packet Steering (XPS) with the ooo_okay queue-
// switch rule, the Accelerated RFS callback fired on thread migration,
// and the netdevice abstraction drivers implement.
//
// Traffic is simulated at segment granularity (up to a 64 KB TSO/GRO
// window per event) with per-packet CPU costs charged arithmetically —
// the granularity at which the paper's evaluation reasons — while all
// memory, PCIe and interconnect traffic flows through the hardware
// models underneath. Connection setup (handshake/ARP) is control-plane
// work the paper never measures; it is modelled as a fixed-latency
// SYN/SYN-ACK round trip (Params.ConnectLatency each way) that blocks
// the dialing thread, and the data path is fully simulated. Keeping
// setup and teardown on timestamped events also gives the sharded
// engine (sim.Group) a latency floor for every cross-host interaction.
package netstack

import (
	"fmt"
	"time"

	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/nic"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// Params are stack cost constants, calibrated so the Broadwell testbed's
// absolute throughputs come out near the paper's (§5.1).
type Params struct {
	// Syscall is the per-call entry/exit cost of send/recv.
	Syscall time.Duration
	// TCPTxSegment is per-segment transmit stack work (TSO path).
	TCPTxSegment time.Duration
	// TCPTxPerPacket is the per-wire-packet transmit cost.
	TCPTxPerPacket time.Duration
	// TCPRxPerPacket is the per-packet receive protocol cost.
	TCPRxPerPacket time.Duration
	// NAPIPerPacket is the per-packet driver poll cost (softirq side).
	NAPIPerPacket time.Duration
	// UDPPerPacket is the per-packet cost of the UDP paths.
	UDPPerPacket time.Duration
	// AckLatency approximates the ACK round trip for window opening.
	AckLatency time.Duration
	// ConnectLatency is the one-way control-plane delay of connection
	// setup and teardown (SYN, SYN-ACK, FIN). Dial blocks the calling
	// thread for one round trip. Together with AckLatency it bounds how
	// soon one host's stack can disturb the other, which the sharded
	// engine uses as conservative lookahead.
	ConnectLatency time.Duration
	// SendWindow bounds unacknowledged in-flight bytes per socket.
	SendWindow int64
	// RxBufBytes bounds undelivered payload per socket (the receive
	// buffer); TCP's window keeps in-flight below it, while UDP
	// arrivals beyond it are dropped.
	RxBufBytes int64
	// TSO is the max segment handed to the device in one descriptor;
	// zero disables TSO (per-MTU segments).
	TSO int64
	// UserBufBytes sizes each socket's user-space buffer.
	UserBufBytes int64
	// RetxTimeout arms the TCP retransmission timer: segments
	// unacknowledged for this long are re-sent with exponential backoff.
	// Zero (the default) disables retransmission entirely — every hook
	// on the datapath short-circuits — because the fault-free simulation
	// never loses a segment.
	RetxTimeout time.Duration
	// RetxMaxTries bounds retransmission attempts per segment; a segment
	// still unacknowledged after that many re-sends is abandoned (its
	// window bytes are released and stack/retx/abandoned counts it).
	// Zero means retry forever.
	RetxMaxTries int
}

// DefaultParams returns the calibrated defaults.
func DefaultParams() Params {
	return Params{
		Syscall:        300 * time.Nanosecond,
		TCPTxSegment:   700 * time.Nanosecond,
		TCPTxPerPacket: 80 * time.Nanosecond,
		TCPRxPerPacket: 150 * time.Nanosecond,
		NAPIPerPacket:  180 * time.Nanosecond,
		UDPPerPacket:   450 * time.Nanosecond,
		AckLatency:     10 * time.Microsecond,
		ConnectLatency: 10 * time.Microsecond,
		SendWindow:     4 << 20,
		RxBufBytes:     8 << 20,
		TSO:            64 * 1024,
		UserBufBytes:   64 * 1024,
	}
}

// Frag is one fragment of an outgoing packet.
type Frag struct {
	Buf   *memsys.Buffer
	Bytes int64
}

// Packet is the stack's skb: an outgoing segment handed to a netdevice.
type Packet struct {
	Flow    eth.FiveTuple
	DstMAC  eth.MAC
	Payload int64
	Packets int
	// Descriptors the driver posts for the segment (default 1).
	Descriptors int
	Frags       []Frag
	Proto       uint8
	// Seq is the segment's per-flow sequence number, carried through the
	// device to the receiver (retransmission dedup).
	Seq  uint64
	Meta any
	// OnSent fires when the driver reaps the Tx completion.
	OnSent func()
	// OOOOkay reports the old queue drained, allowing an XPS queue
	// switch without reordering (§2.3, §4.2).
	OOOOkay bool
}

// NetDevice is the driver-facing netdevice interface (the slice of
// net_device_ops the model needs).
type NetDevice interface {
	// Name is the interface name (eth0, octo0...).
	Name() string
	// HWAddr is the interface MAC.
	HWAddr() eth.MAC
	// NumTxQueues returns the transmit queue count.
	NumTxQueues() int
	// TxQueueForCore is the driver's XPS mapping.
	TxQueueForCore(c topology.CoreID) int
	// TxInFlight returns descriptors outstanding on a queue (drives the
	// ooo_okay decision).
	TxInFlight(q int) int
	// Xmit hands a segment to the driver on the chosen queue. The
	// calling thread is charged the driver-side CPU costs. Xmit must
	// copy what it needs before returning: the Packet (and its Frags
	// slice) may be caller-owned scratch reused for the next segment.
	Xmit(t *kernel.Thread, pkt *Packet, txq int)
	// SteerFlow is ndo_rx_flow_steer: steer the arriving flow toward
	// the given core (ARFS; IOctoRFS on the octo driver).
	SteerFlow(ft eth.FiveTuple, core topology.CoreID)
}

// Stack is one host's network stack instance.
type Stack struct {
	k      *kernel.Kernel
	name   string
	net    *Network
	params Params

	devs     []NetDevice
	devIPs   map[NetDevice]uint32
	ipDevs   map[uint32]NetDevice
	sockets  map[eth.FiveTuple]*Socket
	sockList []*Socket // creation order, for deterministic iteration
	listens  map[uint16]func(s *Socket)

	nextPort uint16

	rxSegments uint64
	rxDrops    uint64

	// Retransmission counters (stack/retx/... in the registry).
	retxTimeouts    uint64
	retxRetransmits uint64
	retxDuplicates  uint64
	retxAbandoned   uint64
}

// NewStack boots a stack on a kernel and registers it on the network.
func NewStack(k *kernel.Kernel, name string, net *Network, params Params) *Stack {
	st := &Stack{
		k:        k,
		name:     name,
		net:      net,
		params:   params,
		devIPs:   make(map[NetDevice]uint32),
		ipDevs:   make(map[uint32]NetDevice),
		sockets:  make(map[eth.FiveTuple]*Socket),
		listens:  make(map[uint16]func(*Socket)),
		nextPort: 40000,
	}
	// The ARFS callback: after a thread migrates, re-steer the flows of
	// every socket it owns toward its new core (§2.3). The kernel
	// invokes this only after the old queue is drained in Linux; the
	// model's delivery path is in-order per flow, so steering updates
	// cannot reorder.
	k.OnMigrate(func(t *kernel.Thread, from, to topology.CoreID) {
		for _, s := range st.sockList {
			if s.owner == t && st.sockets[s.ft] == s {
				s.dev.SteerFlow(s.ft.Reverse(), to)
			}
		}
	})
	net.register(st)
	return st
}

// Name returns the host name.
func (st *Stack) Name() string { return st.name }

// Kernel returns the owning kernel.
func (st *Stack) Kernel() *kernel.Kernel { return st.k }

// Params returns the stack's cost constants.
func (st *Stack) Params() Params { return st.params }

// AddDevice registers a netdevice with an IP address.
func (st *Stack) AddDevice(dev NetDevice, ip uint32) {
	st.devs = append(st.devs, dev)
	st.devIPs[dev] = ip
	st.ipDevs[ip] = dev
	st.net.addIP(ip, st, dev)
}

// Devices returns the registered netdevices.
func (st *Stack) Devices() []NetDevice { return st.devs }

// DeviceIP returns a device's address.
func (st *Stack) DeviceIP(dev NetDevice) uint32 { return st.devIPs[dev] }

// RxDrops returns segments dropped at full socket queues.
func (st *Stack) RxDrops() uint64 { return st.rxDrops }

// Listen registers an accept callback for a local port.
func (st *Stack) Listen(port uint16, accept func(s *Socket)) {
	st.listens[port] = accept
}

// Dial opens a connection from this host to dstIP:dstPort and blocks
// the calling thread for the setup round trip: the SYN reaches the
// listener after ConnectLatency (creating the remote socket and
// running the accept callback), and the SYN-ACK completes the pair
// another ConnectLatency later. Routing, interface and listener checks
// fail synchronously (the model's control plane is static, so a
// refused connection needs no round trip). The local device is chosen
// by route, i.e. the device whose wire reaches the destination — with
// one NIC per host, the only one.
func (st *Stack) Dial(t *kernel.Thread, dstIP uint32, dstPort uint16, proto uint8) (*Socket, error) {
	dstStack, dstDev := st.net.lookup(dstIP)
	if dstStack == nil {
		return nil, fmt.Errorf("netstack %s: no route to %d", st.name, dstIP)
	}
	if len(st.devs) == 0 {
		return nil, fmt.Errorf("netstack %s: no devices", st.name)
	}
	srcDev := st.devs[0]
	srcIP := st.devIPs[srcDev]
	srcMAC := srcDev.HWAddr()
	st.nextPort++
	ft := eth.FiveTuple{
		SrcIP: srcIP, DstIP: dstIP,
		SrcPort: st.nextPort, DstPort: dstPort,
		Proto: proto,
	}
	local := st.newSocket(ft, srcDev, t, dstDev.HWAddr())
	accept, ok := dstStack.listens[dstPort]
	if !ok {
		return nil, fmt.Errorf("netstack %s: connection refused on %d:%d", st.name, dstIP, dstPort)
	}
	// Each leg runs on the stack that owns the state it mutates: the SYN
	// executes on the listener's engine, the SYN-ACK back on ours. On a
	// sharded cluster these are Engine.Post crossings whose latency the
	// shard group's control link floors.
	eng := st.k.Engine()
	dstEng := dstStack.k.Engine()
	lat := st.params.ConnectLatency
	done := sim.NewSignal(eng)
	eng.PostAfter(dstEng, lat, func() {
		remote := dstStack.newSocket(ft.Reverse(), dstDev, nil, srcMAC)
		remote.peer = local
		accept(remote)
		dstEng.PostAfter(eng, lat, func() {
			local.peer = remote
			done.Broadcast()
		})
	})
	t.Wait(done)
	return local, nil
}

// newSocket creates and registers a socket.
func (st *Stack) newSocket(ft eth.FiveTuple, dev NetDevice, owner *kernel.Thread, peerMAC eth.MAC) *Socket {
	s := &Socket{
		stack:      st,
		ft:         ft,
		dev:        dev,
		owner:      owner,
		peerMAC:    peerMAC,
		txq:        -1,
		window:     st.params.SendWindow,
		advertised: st.params.RxBufBytes,
	}
	s.rxq = newSegQueue(st.k.Engine(), st.params.RxBufBytes)
	// Cache the hot-path cost callbacks once per socket; the per-call
	// state they read lives in the socket's scratch fields.
	s.sendCostFn = s.sendCost
	s.sgCostFn = s.sgCost
	s.recvCostFn = s.recvCost
	s.syscallFn = func() time.Duration { return s.stack.params.Syscall }
	st.sockets[ft] = s
	st.sockList = append(st.sockList, s)
	return s
}

// DeliverRx is called by drivers (softirq context; the caller charges
// the CPU costs) to push a received segment into the owning socket.
func (st *Stack) DeliverRx(rxp *nic.RxPacket) {
	st.rxSegments++
	s, ok := st.sockets[rxp.Flow.Reverse()]
	if !ok {
		// Drop paths consume the packet: recycle it here, exactly once.
		st.rxDrops++
		rxp.Recycle()
		return
	}
	if st.params.RetxTimeout > 0 && s.ft.Proto == eth.ProtoTCP && rxp.Seq != 0 {
		if s.seenSeq(rxp.Seq) {
			// A retransmitted copy of a segment that already made it.
			// Consume it and re-acknowledge: the duplicate ACK lets the
			// sender clear its retransmit entry when the original's ACK
			// raced the timeout.
			st.retxDuplicates++
			payload, seq := rxp.Payload, rxp.Seq
			rxp.Recycle()
			if s.peer != nil {
				s.sendSeqAck(payload, seq)
			}
			return
		}
		if !s.rxq.tryPut(rxp) {
			// Receive-buffer overflow: dropped before being marked
			// received and not acknowledged, so the sender's timer
			// recovers the segment.
			st.rxDrops++
			rxp.Recycle()
			return
		}
		s.markSeq(rxp.Seq)
		if s.peer != nil {
			s.sendSeqAck(rxp.Payload, rxp.Seq)
		}
		return
	}
	if !s.rxq.tryPut(rxp) {
		st.rxDrops++
		rxp.Recycle()
		return
	}
	// TCP acknowledges on kernel receipt and advertises the remaining
	// receive-buffer space; the sender's usable window shrinks as the
	// buffer fills and reopens as the application consumes (Recv).
	if s.ft.Proto == eth.ProtoTCP && s.peer != nil {
		s.sendWindowUpdate(rxp.Payload)
	}
}

// RxStackCost prices the protocol receive work for a segment (charged
// by the driver inside the NAPI poll).
func (st *Stack) RxStackCost(rxp *nic.RxPacket) time.Duration {
	per := st.params.TCPRxPerPacket
	if rxp.Flow.Proto == eth.ProtoUDP {
		per = st.params.UDPPerPacket
	}
	return time.Duration(rxp.Packets) * (per + st.params.NAPIPerPacket)
}

// RxBurstCost prices the protocol receive work for a segment delivered
// by a poll-mode driver: the per-protocol cost only. The NAPI
// per-packet overhead and the IRQ entry the interrupt path pays never
// happen — the PMD loop hands the segment straight to the socket, which
// is the kernel-bypass saving the busy-poll datapath measures.
func (st *Stack) RxBurstCost(rxp *nic.RxPacket) time.Duration {
	per := st.params.TCPRxPerPacket
	if rxp.Flow.Proto == eth.ProtoUDP {
		per = st.params.UDPPerPacket
	}
	return time.Duration(rxp.Packets) * per
}

// DeliverRxBurst pushes one polled batch into the owning sockets,
// skipping the IRQ→softirq→NAPI chain, and returns the protocol cost of
// the batch so the poll core can charge it to its iteration. Socket
// semantics (acknowledgments, window updates, overflow drops, recycle
// duties) are identical to DeliverRx — only the path and its price
// differ.
func (st *Stack) DeliverRxBurst(batch []*nic.RxPacket) time.Duration {
	var cost time.Duration
	for _, rxp := range batch {
		cost += st.RxBurstCost(rxp)
		st.DeliverRx(rxp)
	}
	return cost
}

// Network is the static control plane joining stacks: IP routing and
// ARP resolution for socket setup. Data traffic never flows through it.
type Network struct {
	stacks []*Stack
	byIP   map[uint32]ipEntry
}

type ipEntry struct {
	st  *Stack
	dev NetDevice
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{byIP: make(map[uint32]ipEntry)}
}

func (n *Network) register(st *Stack) { n.stacks = append(n.stacks, st) }

func (n *Network) addIP(ip uint32, st *Stack, dev NetDevice) {
	if _, dup := n.byIP[ip]; dup {
		panic(fmt.Sprintf("netstack: duplicate IP %d", ip))
	}
	n.byIP[ip] = ipEntry{st: st, dev: dev}
}

func (n *Network) lookup(ip uint32) (*Stack, NetDevice) {
	e, ok := n.byIP[ip]
	if !ok {
		return nil, nil
	}
	return e.st, e.dev
}
