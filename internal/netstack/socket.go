package netstack

import (
	"time"

	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/nic"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// Socket is a connected endpoint. Send and Recv charge the full
// stack+copy CPU costs on the calling thread's core and move data
// through the device underneath; windowing throttles senders to the
// receiver's pace as TCP does.
type Socket struct {
	stack *Stack
	ft    eth.FiveTuple
	dev   NetDevice
	owner *kernel.Thread
	// peer may live on another host, i.e. another shard's engine; never
	// schedule on an engine reached through it — deliveries cross via
	// Post/PostAfter.
	// octolint:crossshard-boundary
	peer    *Socket
	peerMAC eth.MAC

	txq        int
	seq        uint64
	closed     bool
	window     int64
	inFlight   int64
	advertised int64 // peer's last advertised receive-buffer space
	winSig     *sim.Signal

	rxq *segQueue

	// Per-node lazily allocated buffers: the user-space buffer the app
	// reads/writes and the kernel-side tx staging buffer (skb data).
	userBufs map[topology.NodeID]*memsys.Buffer
	txBufs   map[topology.NodeID]*memsys.Buffer

	sentBytes     int64
	receivedBytes int64
	sentSegs      uint64
	receivedSegs  uint64

	// Zero-alloc scratch state. A socket has at most one sending and
	// one receiving thread at a time (every workload in the suite obeys
	// this; it mirrors the lock a real socket would take), and a thread
	// has at most one ExecFn in flight, so one scratch record per
	// direction is stable from submission until its cost callback runs.
	sendT      *kernel.Thread
	sendSrc    *memsys.Buffer
	sendSeg    int64
	sendPkts   int
	sendFirst  bool
	sendCostFn func() time.Duration // cached s.sendCost
	sgCostFn   func() time.Duration // cached s.sgCost
	sendPkt    Packet               // reused skb handed to Xmit
	sendFrag   [1]Frag              // backing array for sendPkt.Frags

	recvT       *kernel.Thread
	recvRxp     *nic.RxPacket
	recvBlocked bool
	recvCostFn  func() time.Duration // cached s.recvCost
	syscallFn   func() time.Duration // cached syscall-entry cost

	// ackFree recycles window-update events (one ACK flight per
	// received segment would otherwise allocate a closure each).
	ackFree *ackEvent

	// Retransmission state, all dormant unless Params.RetxTimeout > 0.
	// Sender side: unacked tracks in-flight segments for the lazily
	// spawned timer thread; retxPkt/retxFrag are the timer thread's own
	// scratch (it runs concurrently with the sending thread, which owns
	// sendPkt). Receiver side: rxCum/rxOut dedup retransmitted copies —
	// every seq ≤ rxCum was received, rxOut holds the out-of-order tail.
	unacked    []retxSeg
	retxT      *kernel.Thread
	retxSig    *sim.Signal
	retxDown   bool
	retxPkts   int
	retxCostFn func() time.Duration // cached s.retxCost
	retxPkt    Packet
	rxCum      uint64
	rxOut      map[uint64]struct{}
}

// retxSeg is one unacknowledged segment held for possible
// retransmission: enough to rebuild the wire packet, plus the timer
// state. frags aliases kernel-side buffers (the socket tx staging
// buffer, or page-cache pages for SendFrags), never user scratch.
type retxSeg struct {
	seq      uint64
	bytes    int64
	pkts     int
	meta     any
	frags    []Frag
	deadline sim.Time
	tries    int
}

// sendCost prices one transmit segment: protocol work, syscall entry
// on the first segment, and the user->kernel copy — all evaluated at
// execution time on the submitting thread's then-current node, exactly
// as the former per-segment closure did.
func (s *Socket) sendCost() time.Duration {
	p := s.stack.params
	cost := p.TCPTxSegment + time.Duration(s.sendPkts)*p.TCPTxPerPacket
	if s.ft.Proto == eth.ProtoUDP {
		cost = time.Duration(s.sendPkts) * p.UDPPerPacket
	}
	if s.sendFirst {
		cost += p.Syscall
	}
	nd := s.sendT.Node()
	src := s.sendSrc
	if src == nil {
		src = s.userBuf(nd)
	}
	dst := s.txBuf(nd)
	cost += s.stack.k.Memory().CPURead(nd, src, s.sendSeg)
	cost += s.stack.k.Memory().CPUWrite(nd, dst, s.sendSeg)
	return cost
}

// sgCost prices a SendFrags segment (no user->kernel copy).
func (s *Socket) sgCost() time.Duration {
	p := s.stack.params
	return p.Syscall + p.TCPTxSegment + time.Duration(s.sendPkts)*p.TCPTxPerPacket
}

// recvCost prices delivering one segment to the application: the copy
// out of the DMA'd packet buffer plus a context switch if the reader
// had blocked.
func (s *Socket) recvCost() time.Duration {
	nd := s.recvT.Node()
	rxp := s.recvRxp
	cost := s.stack.k.Memory().CPURead(nd, rxp.Buf, rxp.Payload)
	cost += s.stack.k.Memory().CPUWrite(nd, s.userBuf(nd), rxp.Payload)
	if s.recvBlocked {
		// The thread slept and was woken by the softirq: context
		// switch back in.
		cost += s.stack.k.Params().ContextSwitch
	}
	return cost
}

// ackEvent is a pooled window-update flight: peer/acked/free are
// captured at schedule time (the peer pointer may be cleared by Close
// before the ACK lands) and the record returns to its socket's free
// list as it fires.
type ackEvent struct {
	owner *Socket
	// octolint:crossshard-boundary
	peer  *Socket
	acked int64
	free  int64
	// seq names the acknowledged segment when retransmission is armed;
	// zero selects the legacy byte-count ack path.
	seq  uint64
	fn   func() // cached ev.run
	next *ackEvent
}

func (ev *ackEvent) run() {
	peer, acked, free, seq := ev.peer, ev.acked, ev.free, ev.seq
	ev.peer = nil
	ev.seq = 0
	s := ev.owner
	ev.next = s.ackFree
	s.ackFree = ev
	if seq != 0 {
		peer.ackSeq(seq)
	} else {
		peer.ack(acked)
	}
	peer.advertise(free)
}

// Flow returns the socket's 5-tuple (local perspective).
func (s *Socket) Flow() eth.FiveTuple { return s.ft }

// Device returns the netdevice serving the socket.
func (s *Socket) Device() NetDevice { return s.dev }

// Owner returns the thread that owns the socket.
func (s *Socket) Owner() *kernel.Thread { return s.owner }

// SetOwner assigns the socket to a thread (accept path) and programs
// initial flow steering toward its core.
func (s *Socket) SetOwner(t *kernel.Thread) {
	s.owner = t
	if t != nil {
		s.dev.SteerFlow(s.ft.Reverse(), t.Core())
	}
}

// SteerTo explicitly steers the socket's arriving flow toward a core
// (manual IRQ/flow placement, as benchmark harnesses do with ethtool).
func (s *Socket) SteerTo(core topology.CoreID) {
	s.dev.SteerFlow(s.ft.Reverse(), core)
}

// SentBytes returns payload bytes sent.
func (s *Socket) SentBytes() int64 { return s.sentBytes }

// ReceivedBytes returns payload bytes delivered to the application.
func (s *Socket) ReceivedBytes() int64 { return s.receivedBytes }

// Pending returns undelivered received segments.
func (s *Socket) Pending() int { return s.rxq.len() }

// bufOn returns the per-node buffer, formatting the (tuple-derived)
// name only on the miss path: lookups are on the per-message hot path.
func (s *Socket) bufOn(m map[topology.NodeID]*memsys.Buffer, kind string, node topology.NodeID) *memsys.Buffer {
	if b, ok := m[node]; ok {
		return b
	}
	b := s.stack.k.Alloc(kind+s.ft.String(), node, s.stack.params.UserBufBytes)
	m[node] = b
	return b
}

func (s *Socket) userBuf(node topology.NodeID) *memsys.Buffer {
	if s.userBufs == nil {
		s.userBufs = make(map[topology.NodeID]*memsys.Buffer)
	}
	return s.bufOn(s.userBufs, "userbuf:", node)
}

func (s *Socket) txBuf(node topology.NodeID) *memsys.Buffer {
	if s.txBufs == nil {
		s.txBufs = make(map[topology.NodeID]*memsys.Buffer)
	}
	return s.bufOn(s.txBufs, "txbuf:", node)
}

// Send transmits n payload bytes, blocking on the send window. It
// charges syscall, copy, protocol and driver costs on t's core.
func (s *Socket) Send(t *kernel.Thread, n int64) {
	s.SendMsg(t, n, nil)
}

// SendMsg is Send with metadata carried to the receiver (timestamps for
// latency benchmarks).
func (s *Socket) SendMsg(t *kernel.Thread, n int64, meta any) {
	s.sendFrom(t, nil, n, meta)
}

// SendMsgFrom transmits n bytes whose application-side source is the
// given buffer (a memcached slab, a file cache page run) instead of the
// socket's default user buffer, so residency and locality of the real
// data source drive the copy costs.
func (s *Socket) SendMsgFrom(t *kernel.Thread, src *memsys.Buffer, n int64, meta any) {
	s.sendFrom(t, src, n, meta)
}

func (s *Socket) sendFrom(t *kernel.Thread, srcBuf *memsys.Buffer, n int64, meta any) {
	if s.owner == nil {
		s.owner = t
	}
	p := s.stack.params
	tso := p.TSO
	if tso <= 0 {
		tso = eth.MTU
	}
	first := true
	for n > 0 {
		seg := n
		if seg > tso {
			seg = tso
		}
		n -= seg
		if s.ft.Proto == eth.ProtoTCP {
			for !s.windowOpen(seg) {
				s.waitWindow(t)
			}
			s.inFlight += seg
		}
		pkts := eth.SegmentPackets(seg)
		node := t.Node()
		// Stack-side CPU: syscall (first segment), copy user->kernel,
		// protocol work — priced by the cached sendCost callback.
		s.sendT, s.sendSrc, s.sendSeg, s.sendPkts, s.sendFirst = t, srcBuf, seg, pkts, first
		t.ExecFn(s.sendCostFn)
		first = false

		// XPS: pick the queue for the current core; switch away from a
		// previous queue only once it has drained (ooo_okay).
		desired := s.dev.TxQueueForCore(t.Core())
		oooOK := true
		if s.txq >= 0 && desired != s.txq {
			if s.dev.TxInFlight(s.txq) > 0 {
				desired = s.txq
				oooOK = false
			}
		}
		s.txq = desired

		s.seq++
		s.sentBytes += seg
		s.sentSegs++
		// The skb is the socket's scratch Packet: Xmit must not retain
		// it (see NetDevice), so it is reusable next iteration.
		pkt := &s.sendPkt
		s.sendFrag[0] = Frag{Buf: s.txBuf(node), Bytes: seg}
		if s.ft.Proto == eth.ProtoTCP && s.stack.params.RetxTimeout > 0 {
			s.trackUnacked(s.seq, seg, pkts, meta, s.sendFrag[:1])
		}
		*pkt = Packet{
			Flow:    s.ft,
			DstMAC:  s.peerMAC,
			Payload: seg,
			Packets: pkts,
			Frags:   s.sendFrag[:1],
			Proto:   s.ft.Proto,
			Seq:     s.seq,
			Meta:    meta,
			OOOOkay: oooOK,
		}
		s.dev.Xmit(t, pkt, desired)
	}
}

// SendFrags transmits a segment built from caller-provided fragments
// (the sendfile/IOctoSG path: fragments may be homed on different
// nodes). No user->kernel copy is charged — the page-cache pages are
// handed to the device directly.
func (s *Socket) SendFrags(t *kernel.Thread, frags []Frag, meta any) {
	if s.owner == nil {
		s.owner = t
	}
	var total int64
	for _, f := range frags {
		total += f.Bytes
	}
	pkts := eth.SegmentPackets(total)
	if s.ft.Proto == eth.ProtoTCP {
		for !s.windowOpen(total) {
			s.waitWindow(t)
		}
		s.inFlight += total
	}
	s.sendPkts = pkts
	t.ExecFn(s.sgCostFn)
	desired := s.dev.TxQueueForCore(t.Core())
	s.txq = desired
	s.seq++
	s.sentBytes += total
	s.sentSegs++
	if s.ft.Proto == eth.ProtoTCP && s.stack.params.RetxTimeout > 0 {
		s.trackUnacked(s.seq, total, pkts, meta, frags)
	}
	pkt := &s.sendPkt
	*pkt = Packet{
		Flow:    s.ft,
		DstMAC:  s.peerMAC,
		Payload: total,
		Packets: pkts,
		Frags:   frags,
		Proto:   s.ft.Proto,
		Seq:     s.seq,
		Meta:    meta,
	}
	s.dev.Xmit(t, pkt, desired)
}

// Recv delivers the next received segment to the application: syscall +
// copy out of the DMA'd packet buffer into the user buffer, on t's
// core. ok is false only if the socket is shut down.
func (s *Socket) Recv(t *kernel.Thread) (payload int64, meta any, ok bool) {
	s.owner = t
	t.ExecFn(s.syscallFn)
	rxp, blocked := s.rxq.get(t)
	if rxp == nil {
		return 0, nil, false
	}
	s.recvT, s.recvRxp, s.recvBlocked = t, rxp, blocked
	t.ExecFn(s.recvCostFn)
	// ExecFn returned: the copy-out has been charged, so the packet is
	// consumed — this is the Rx recycle point for the copying path.
	payload, meta = rxp.Payload, rxp.Meta
	s.recvRxp = nil
	rxp.Recycle()
	s.receivedBytes += payload
	s.receivedSegs++
	s.sendWindowUpdate(0)
	return payload, meta, true
}

// sendWindowUpdate acknowledges acked bytes and advertises the current
// receive-buffer space to the peer, after the ACK flight time.
func (s *Socket) sendWindowUpdate(acked int64) { s.sendAckEvent(acked, 0) }

// sendSeqAck is the retransmission-aware acknowledgement: it names the
// received segment so the sender can clear its retransmit entry (and
// ignore the duplicate ACKs a raced timeout produces).
func (s *Socket) sendSeqAck(acked int64, seq uint64) { s.sendAckEvent(acked, seq) }

func (s *Socket) sendAckEvent(acked int64, seq uint64) {
	if s.ft.Proto != eth.ProtoTCP || s.peer == nil {
		return
	}
	eng := s.stack.k.Engine()
	if peng := s.peer.stack.k.Engine(); peng != eng {
		// Cross-shard peer: the ACK must run on the peer's engine, and
		// the pooled event record cannot travel (its recycling would race
		// this shard's free list), so the flight is a one-shot closure.
		peer, free := s.peer, s.rxq.free()
		eng.PostAfter(peng, s.stack.params.AckLatency, func() {
			if seq != 0 {
				peer.ackSeq(seq)
			} else {
				peer.ack(acked)
			}
			peer.advertise(free)
		})
		return
	}
	ev := s.ackFree
	if ev == nil {
		ev = &ackEvent{owner: s}
		ev.fn = ev.run
	} else {
		s.ackFree = ev.next
	}
	ev.peer = s.peer
	ev.acked = acked
	ev.free = s.rxq.free()
	ev.seq = seq
	eng.After(s.stack.params.AckLatency, ev.fn)
}

// TryRecvNoCopy removes a pending segment without charging copy costs
// (zero-copy consumers and tests). Ownership of the RxPacket passes to
// the caller, who must Recycle it exactly once when done with it.
func (s *Socket) TryRecvNoCopy() (*nic.RxPacket, bool) {
	rxp, ok := s.rxq.tryGet()
	if ok {
		s.receivedBytes += rxp.Payload
		s.receivedSegs++
		s.sendWindowUpdate(0)
	}
	return rxp, ok
}

// Close tears the local socket down immediately — releasing blocked
// receivers and retiring the retransmission timer — and sends the peer
// a FIN that closes its side after ConnectLatency. The FIN runs on the
// peer's engine, so teardown is shard-safe; closing twice (or crossing
// FINs) is a no-op.
func (s *Socket) Close() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.stack.sockets, s.ft)
	s.rxq.close()
	s.retxDown = true
	s.unacked = nil
	if s.retxSig != nil {
		s.retxSig.Broadcast()
	}
	if p := s.peer; p != nil {
		s.peer = nil
		s.stack.k.Engine().PostAfter(p.stack.k.Engine(), s.stack.params.ConnectLatency, func() {
			if p.peer == s {
				p.peer = nil
			}
			p.Close()
		})
	}
}

// ack opens the send window after the receiver's kernel acknowledged n
// bytes.
func (s *Socket) ack(n int64) {
	if n <= 0 {
		return
	}
	s.inFlight -= n
	if s.inFlight < 0 {
		s.inFlight = 0
	}
	if s.winSig != nil {
		s.winSig.Broadcast()
	}
}

// ackSeq clears the retransmit entry for one segment and opens the
// window by its bytes. A duplicate ACK — the entry is already gone —
// is ignored, so the window is never double-opened when both the
// original and a retransmitted copy are acknowledged.
func (s *Socket) ackSeq(seq uint64) {
	for i := range s.unacked {
		if s.unacked[i].seq == seq {
			n := s.unacked[i].bytes
			s.unacked = append(s.unacked[:i], s.unacked[i+1:]...)
			s.ack(n)
			return
		}
	}
}

// seenSeq reports whether the receiver already accepted this segment.
func (s *Socket) seenSeq(seq uint64) bool {
	if seq <= s.rxCum {
		return true
	}
	_, ok := s.rxOut[seq]
	return ok
}

// markSeq records a segment as received, compacting the out-of-order
// tail into the cumulative watermark. In-order delivery (the fault-free
// case) never touches the map.
func (s *Socket) markSeq(seq uint64) {
	if seq == s.rxCum+1 {
		s.rxCum++
		for len(s.rxOut) > 0 {
			if _, ok := s.rxOut[s.rxCum+1]; !ok {
				break
			}
			delete(s.rxOut, s.rxCum+1)
			s.rxCum++
		}
		return
	}
	if s.rxOut == nil {
		s.rxOut = make(map[uint64]struct{})
	}
	s.rxOut[seq] = struct{}{}
}

// trackUnacked records an in-flight segment for the retransmission
// timer (copying the fragment list: the caller's slice is per-send
// scratch) and makes sure the timer thread is running.
func (s *Socket) trackUnacked(seq uint64, bytes int64, pkts int, meta any, frags []Frag) {
	fr := make([]Frag, len(frags))
	copy(fr, frags)
	s.unacked = append(s.unacked, retxSeg{
		seq: seq, bytes: bytes, pkts: pkts, meta: meta, frags: fr,
		deadline: s.stack.k.Engine().Now().Add(s.stack.params.RetxTimeout),
	})
	s.ensureRetxThread()
	s.retxSig.Broadcast()
}

// ensureRetxThread lazily spawns the socket's retransmission timer on
// the owner's core (sockets that never send TCP data never pay for
// one).
func (s *Socket) ensureRetxThread() {
	if s.retxT != nil {
		return
	}
	if s.retxSig == nil {
		s.retxSig = sim.NewSignal(s.stack.k.Engine())
	}
	s.retxCostFn = s.retxCost
	core := topology.CoreID(0)
	if s.owner != nil {
		core = s.owner.Core()
	}
	s.retxT = s.stack.k.Spawn("retx:"+s.ft.String(), core, s.retxLoop)
}

// retxCost prices re-sending one segment: protocol work only — the
// data already sits in kernel buffers, so there is no syscall and no
// user copy.
func (s *Socket) retxCost() time.Duration {
	p := s.stack.params
	return p.TCPTxSegment + time.Duration(s.retxPkts)*p.TCPTxPerPacket
}

// retxLoop is the retransmission timer thread. It sleeps until the
// earliest deadline could fire — capped at one RetxTimeout, so a
// segment queued while it slept (whose deadline is necessarily at
// least now+RTO) is still examined on time — then re-sends everything
// overdue with per-segment exponential backoff.
func (s *Socket) retxLoop(t *kernel.Thread) {
	rto := s.stack.params.RetxTimeout
	for {
		if s.retxDown {
			return
		}
		if len(s.unacked) == 0 {
			t.Wait(s.retxSig)
			continue
		}
		now := t.Now()
		wake := s.unacked[0].deadline
		for i := range s.unacked {
			if s.unacked[i].deadline < wake {
				wake = s.unacked[i].deadline
			}
		}
		if limit := now.Add(rto); wake > limit {
			wake = limit
		}
		if wake > now {
			t.Sleep(wake.Sub(now))
			continue
		}
		s.retxScan(t)
	}
}

// retxScan handles every segment whose deadline has passed. Overdue
// seqs are snapshotted first: retransmission blocks on core time, and
// ACKs landing meanwhile mutate the unacked list under us.
func (s *Socket) retxScan(t *kernel.Thread) {
	now := t.Now()
	rto := s.stack.params.RetxTimeout
	maxTries := s.stack.params.RetxMaxTries
	var due []uint64
	for i := range s.unacked {
		if s.unacked[i].deadline <= now {
			due = append(due, s.unacked[i].seq)
		}
	}
	for _, seq := range due {
		if s.retxDown {
			return
		}
		idx := -1
		for i := range s.unacked {
			if s.unacked[i].seq == seq {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue // acknowledged while this pass was working
		}
		e := &s.unacked[idx]
		s.stack.retxTimeouts++
		if maxTries > 0 && e.tries >= maxTries {
			// Retry budget exhausted: abandon the segment, releasing
			// its window bytes so the sender is not wedged forever on
			// data that will never be acknowledged.
			s.stack.retxAbandoned++
			n := e.bytes
			s.unacked = append(s.unacked[:idx], s.unacked[idx+1:]...)
			s.ack(n)
			continue
		}
		e.tries++
		shift := uint(e.tries)
		if shift > 6 {
			shift = 6 // cap the backoff at 64x RTO
		}
		e.deadline = t.Now().Add(rto << shift)
		// Copy out what the re-send needs: the entry may move or vanish
		// while the transmit blocks.
		bytes, pkts, meta, frags := e.bytes, e.pkts, e.meta, e.frags
		s.retransmit(t, seq, bytes, pkts, meta, frags)
	}
}

// retransmit re-sends one tracked segment from the timer thread, using
// the thread's own scratch packet (the sending thread owns sendPkt).
func (s *Socket) retransmit(t *kernel.Thread, seq uint64, bytes int64, pkts int, meta any, frags []Frag) {
	s.stack.retxRetransmits++
	s.retxPkts = pkts
	t.ExecFn(s.retxCostFn)
	txq := s.dev.TxQueueForCore(t.Core())
	pkt := &s.retxPkt
	*pkt = Packet{
		Flow:    s.ft,
		DstMAC:  s.peerMAC,
		Payload: bytes,
		Packets: pkts,
		Frags:   frags,
		Proto:   s.ft.Proto,
		Seq:     seq,
		Meta:    meta,
	}
	s.dev.Xmit(t, pkt, txq)
}

// advertise records the peer's receive-buffer space.
func (s *Socket) advertise(free int64) {
	s.advertised = free
	if s.winSig != nil {
		s.winSig.Broadcast()
	}
}

// windowOpen reports whether seg more bytes fit in both the congestion
// window and the peer's advertised buffer.
func (s *Socket) windowOpen(seg int64) bool {
	if s.inFlight+seg > s.window {
		return false
	}
	return s.inFlight+seg <= s.advertised
}

func (s *Socket) waitWindow(t *kernel.Thread) {
	if s.winSig == nil {
		s.winSig = sim.NewSignal(s.stack.k.Engine())
	}
	t.Wait(s.winSig)
}

// segQueue is the socket receive queue: byte-bounded, with blocking
// get. Consumed entries advance a head index and the backing array is
// reused once drained (the engine-queue compaction scheme), so the
// per-segment reslice of the old get/tryGet pair is gone.
type segQueue struct {
	eng      *sim.Engine
	items    []*nic.RxPacket
	head     int
	capBytes int64
	bytes    int64
	sig      *sim.Signal
	closed   bool
}

func newSegQueue(e *sim.Engine, capBytes int64) *segQueue {
	return &segQueue{eng: e, capBytes: capBytes, sig: sim.NewSignal(e)}
}

func (q *segQueue) len() int { return len(q.items) - q.head }

// free returns remaining receive-buffer space.
func (q *segQueue) free() int64 {
	if q.capBytes <= 0 {
		return 1 << 40
	}
	f := q.capBytes - q.bytes
	if f < 0 {
		return 0
	}
	return f
}

func (q *segQueue) tryPut(rxp *nic.RxPacket) bool {
	if q.closed || (q.capBytes > 0 && q.bytes+rxp.Payload > q.capBytes) {
		return false
	}
	q.items = append(q.items, rxp)
	q.bytes += rxp.Payload
	q.sig.Broadcast()
	return true
}

// dequeue removes the head segment; ownership passes to the caller,
// who must Recycle the packet exactly once (the slot is cleared here so
// the queue never aliases a recycled packet).
func (q *segQueue) dequeue() *nic.RxPacket {
	rxp := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.bytes -= rxp.Payload
	return rxp
}

func (q *segQueue) get(t *kernel.Thread) (rxp *nic.RxPacket, blocked bool) {
	for q.len() == 0 {
		if q.closed {
			return nil, blocked
		}
		blocked = true
		t.Wait(q.sig)
	}
	return q.dequeue(), blocked
}

func (q *segQueue) tryGet() (*nic.RxPacket, bool) {
	if q.len() == 0 {
		return nil, false
	}
	return q.dequeue(), true
}

// close shuts the queue; undelivered segments will never reach an
// application and return to their pool here.
func (q *segQueue) close() {
	q.closed = true
	for q.len() > 0 {
		q.dequeue().Recycle()
	}
	q.sig.Broadcast()
}
