package netstack

import (
	"time"

	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/nic"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// Socket is a connected endpoint. Send and Recv charge the full
// stack+copy CPU costs on the calling thread's core and move data
// through the device underneath; windowing throttles senders to the
// receiver's pace as TCP does.
type Socket struct {
	stack   *Stack
	ft      eth.FiveTuple
	dev     NetDevice
	owner   *kernel.Thread
	peer    *Socket
	peerMAC eth.MAC

	txq        int
	seq        uint64
	window     int64
	inFlight   int64
	advertised int64 // peer's last advertised receive-buffer space
	winSig     *sim.Signal

	rxq *segQueue

	// Per-node lazily allocated buffers: the user-space buffer the app
	// reads/writes and the kernel-side tx staging buffer (skb data).
	userBufs map[topology.NodeID]*memsys.Buffer
	txBufs   map[topology.NodeID]*memsys.Buffer

	sentBytes     int64
	receivedBytes int64
	sentSegs      uint64
	receivedSegs  uint64

	// Zero-alloc scratch state. A socket has at most one sending and
	// one receiving thread at a time (every workload in the suite obeys
	// this; it mirrors the lock a real socket would take), and a thread
	// has at most one ExecFn in flight, so one scratch record per
	// direction is stable from submission until its cost callback runs.
	sendT      *kernel.Thread
	sendSrc    *memsys.Buffer
	sendSeg    int64
	sendPkts   int
	sendFirst  bool
	sendCostFn func() time.Duration // cached s.sendCost
	sgCostFn   func() time.Duration // cached s.sgCost
	sendPkt    Packet               // reused skb handed to Xmit
	sendFrag   [1]Frag              // backing array for sendPkt.Frags

	recvT       *kernel.Thread
	recvRxp     *nic.RxPacket
	recvBlocked bool
	recvCostFn  func() time.Duration // cached s.recvCost
	syscallFn   func() time.Duration // cached syscall-entry cost

	// ackFree recycles window-update events (one ACK flight per
	// received segment would otherwise allocate a closure each).
	ackFree *ackEvent
}

// sendCost prices one transmit segment: protocol work, syscall entry
// on the first segment, and the user->kernel copy — all evaluated at
// execution time on the submitting thread's then-current node, exactly
// as the former per-segment closure did.
func (s *Socket) sendCost() time.Duration {
	p := s.stack.params
	cost := p.TCPTxSegment + time.Duration(s.sendPkts)*p.TCPTxPerPacket
	if s.ft.Proto == eth.ProtoUDP {
		cost = time.Duration(s.sendPkts) * p.UDPPerPacket
	}
	if s.sendFirst {
		cost += p.Syscall
	}
	nd := s.sendT.Node()
	src := s.sendSrc
	if src == nil {
		src = s.userBuf(nd)
	}
	dst := s.txBuf(nd)
	cost += s.stack.k.Memory().CPURead(nd, src, s.sendSeg)
	cost += s.stack.k.Memory().CPUWrite(nd, dst, s.sendSeg)
	return cost
}

// sgCost prices a SendFrags segment (no user->kernel copy).
func (s *Socket) sgCost() time.Duration {
	p := s.stack.params
	return p.Syscall + p.TCPTxSegment + time.Duration(s.sendPkts)*p.TCPTxPerPacket
}

// recvCost prices delivering one segment to the application: the copy
// out of the DMA'd packet buffer plus a context switch if the reader
// had blocked.
func (s *Socket) recvCost() time.Duration {
	nd := s.recvT.Node()
	rxp := s.recvRxp
	cost := s.stack.k.Memory().CPURead(nd, rxp.Buf, rxp.Payload)
	cost += s.stack.k.Memory().CPUWrite(nd, s.userBuf(nd), rxp.Payload)
	if s.recvBlocked {
		// The thread slept and was woken by the softirq: context
		// switch back in.
		cost += s.stack.k.Params().ContextSwitch
	}
	return cost
}

// ackEvent is a pooled window-update flight: peer/acked/free are
// captured at schedule time (the peer pointer may be cleared by Close
// before the ACK lands) and the record returns to its socket's free
// list as it fires.
type ackEvent struct {
	owner *Socket
	peer  *Socket
	acked int64
	free  int64
	fn    func() // cached ev.run
	next  *ackEvent
}

func (ev *ackEvent) run() {
	peer, acked, free := ev.peer, ev.acked, ev.free
	ev.peer = nil
	s := ev.owner
	ev.next = s.ackFree
	s.ackFree = ev
	peer.ack(acked)
	peer.advertise(free)
}

// Flow returns the socket's 5-tuple (local perspective).
func (s *Socket) Flow() eth.FiveTuple { return s.ft }

// Device returns the netdevice serving the socket.
func (s *Socket) Device() NetDevice { return s.dev }

// Owner returns the thread that owns the socket.
func (s *Socket) Owner() *kernel.Thread { return s.owner }

// SetOwner assigns the socket to a thread (accept path) and programs
// initial flow steering toward its core.
func (s *Socket) SetOwner(t *kernel.Thread) {
	s.owner = t
	if t != nil {
		s.dev.SteerFlow(s.ft.Reverse(), t.Core())
	}
}

// SteerTo explicitly steers the socket's arriving flow toward a core
// (manual IRQ/flow placement, as benchmark harnesses do with ethtool).
func (s *Socket) SteerTo(core topology.CoreID) {
	s.dev.SteerFlow(s.ft.Reverse(), core)
}

// SentBytes returns payload bytes sent.
func (s *Socket) SentBytes() int64 { return s.sentBytes }

// ReceivedBytes returns payload bytes delivered to the application.
func (s *Socket) ReceivedBytes() int64 { return s.receivedBytes }

// Pending returns undelivered received segments.
func (s *Socket) Pending() int { return s.rxq.len() }

// bufOn returns the per-node buffer, formatting the (tuple-derived)
// name only on the miss path: lookups are on the per-message hot path.
func (s *Socket) bufOn(m map[topology.NodeID]*memsys.Buffer, kind string, node topology.NodeID) *memsys.Buffer {
	if b, ok := m[node]; ok {
		return b
	}
	b := s.stack.k.Alloc(kind+s.ft.String(), node, s.stack.params.UserBufBytes)
	m[node] = b
	return b
}

func (s *Socket) userBuf(node topology.NodeID) *memsys.Buffer {
	if s.userBufs == nil {
		s.userBufs = make(map[topology.NodeID]*memsys.Buffer)
	}
	return s.bufOn(s.userBufs, "userbuf:", node)
}

func (s *Socket) txBuf(node topology.NodeID) *memsys.Buffer {
	if s.txBufs == nil {
		s.txBufs = make(map[topology.NodeID]*memsys.Buffer)
	}
	return s.bufOn(s.txBufs, "txbuf:", node)
}

// Send transmits n payload bytes, blocking on the send window. It
// charges syscall, copy, protocol and driver costs on t's core.
func (s *Socket) Send(t *kernel.Thread, n int64) {
	s.SendMsg(t, n, nil)
}

// SendMsg is Send with metadata carried to the receiver (timestamps for
// latency benchmarks).
func (s *Socket) SendMsg(t *kernel.Thread, n int64, meta any) {
	s.sendFrom(t, nil, n, meta)
}

// SendMsgFrom transmits n bytes whose application-side source is the
// given buffer (a memcached slab, a file cache page run) instead of the
// socket's default user buffer, so residency and locality of the real
// data source drive the copy costs.
func (s *Socket) SendMsgFrom(t *kernel.Thread, src *memsys.Buffer, n int64, meta any) {
	s.sendFrom(t, src, n, meta)
}

func (s *Socket) sendFrom(t *kernel.Thread, srcBuf *memsys.Buffer, n int64, meta any) {
	if s.owner == nil {
		s.owner = t
	}
	p := s.stack.params
	tso := p.TSO
	if tso <= 0 {
		tso = eth.MTU
	}
	first := true
	for n > 0 {
		seg := n
		if seg > tso {
			seg = tso
		}
		n -= seg
		if s.ft.Proto == eth.ProtoTCP {
			for !s.windowOpen(seg) {
				s.waitWindow(t)
			}
			s.inFlight += seg
		}
		pkts := eth.SegmentPackets(seg)
		node := t.Node()
		// Stack-side CPU: syscall (first segment), copy user->kernel,
		// protocol work — priced by the cached sendCost callback.
		s.sendT, s.sendSrc, s.sendSeg, s.sendPkts, s.sendFirst = t, srcBuf, seg, pkts, first
		t.ExecFn(s.sendCostFn)
		first = false

		// XPS: pick the queue for the current core; switch away from a
		// previous queue only once it has drained (ooo_okay).
		desired := s.dev.TxQueueForCore(t.Core())
		oooOK := true
		if s.txq >= 0 && desired != s.txq {
			if s.dev.TxInFlight(s.txq) > 0 {
				desired = s.txq
				oooOK = false
			}
		}
		s.txq = desired

		s.seq++
		s.sentBytes += seg
		s.sentSegs++
		// The skb is the socket's scratch Packet: Xmit must not retain
		// it (see NetDevice), so it is reusable next iteration.
		pkt := &s.sendPkt
		s.sendFrag[0] = Frag{Buf: s.txBuf(node), Bytes: seg}
		*pkt = Packet{
			Flow:    s.ft,
			DstMAC:  s.peerMAC,
			Payload: seg,
			Packets: pkts,
			Frags:   s.sendFrag[:1],
			Proto:   s.ft.Proto,
			Meta:    meta,
			OOOOkay: oooOK,
		}
		s.dev.Xmit(t, pkt, desired)
	}
}

// SendFrags transmits a segment built from caller-provided fragments
// (the sendfile/IOctoSG path: fragments may be homed on different
// nodes). No user->kernel copy is charged — the page-cache pages are
// handed to the device directly.
func (s *Socket) SendFrags(t *kernel.Thread, frags []Frag, meta any) {
	if s.owner == nil {
		s.owner = t
	}
	var total int64
	for _, f := range frags {
		total += f.Bytes
	}
	pkts := eth.SegmentPackets(total)
	if s.ft.Proto == eth.ProtoTCP {
		for !s.windowOpen(total) {
			s.waitWindow(t)
		}
		s.inFlight += total
	}
	s.sendPkts = pkts
	t.ExecFn(s.sgCostFn)
	desired := s.dev.TxQueueForCore(t.Core())
	s.txq = desired
	s.sentBytes += total
	s.sentSegs++
	pkt := &s.sendPkt
	*pkt = Packet{
		Flow:    s.ft,
		DstMAC:  s.peerMAC,
		Payload: total,
		Packets: pkts,
		Frags:   frags,
		Proto:   s.ft.Proto,
		Meta:    meta,
	}
	s.dev.Xmit(t, pkt, desired)
}

// Recv delivers the next received segment to the application: syscall +
// copy out of the DMA'd packet buffer into the user buffer, on t's
// core. ok is false only if the socket is shut down.
func (s *Socket) Recv(t *kernel.Thread) (payload int64, meta any, ok bool) {
	s.owner = t
	t.ExecFn(s.syscallFn)
	rxp, blocked := s.rxq.get(t)
	if rxp == nil {
		return 0, nil, false
	}
	s.recvT, s.recvRxp, s.recvBlocked = t, rxp, blocked
	t.ExecFn(s.recvCostFn)
	// ExecFn returned: the copy-out has been charged, so the packet is
	// consumed — this is the Rx recycle point for the copying path.
	payload, meta = rxp.Payload, rxp.Meta
	s.recvRxp = nil
	rxp.Recycle()
	s.receivedBytes += payload
	s.receivedSegs++
	s.sendWindowUpdate(0)
	return payload, meta, true
}

// sendWindowUpdate acknowledges acked bytes and advertises the current
// receive-buffer space to the peer, after the ACK flight time.
func (s *Socket) sendWindowUpdate(acked int64) {
	if s.ft.Proto != eth.ProtoTCP || s.peer == nil {
		return
	}
	ev := s.ackFree
	if ev == nil {
		ev = &ackEvent{owner: s}
		ev.fn = ev.run
	} else {
		s.ackFree = ev.next
	}
	ev.peer = s.peer
	ev.acked = acked
	ev.free = s.rxq.free()
	s.stack.k.Engine().After(s.stack.params.AckLatency, ev.fn)
}

// TryRecvNoCopy removes a pending segment without charging copy costs
// (zero-copy consumers and tests). Ownership of the RxPacket passes to
// the caller, who must Recycle it exactly once when done with it.
func (s *Socket) TryRecvNoCopy() (*nic.RxPacket, bool) {
	rxp, ok := s.rxq.tryGet()
	if ok {
		s.receivedBytes += rxp.Payload
		s.receivedSegs++
		s.sendWindowUpdate(0)
	}
	return rxp, ok
}

// Close tears the socket (and its peer's rx queue) down, releasing
// blocked receivers.
func (s *Socket) Close() {
	delete(s.stack.sockets, s.ft)
	s.rxq.close()
	if s.peer != nil {
		p := s.peer
		s.peer = nil
		p.peer = nil
		p.Close()
	}
}

// ack opens the send window after the receiver's kernel acknowledged n
// bytes.
func (s *Socket) ack(n int64) {
	if n <= 0 {
		return
	}
	s.inFlight -= n
	if s.inFlight < 0 {
		s.inFlight = 0
	}
	if s.winSig != nil {
		s.winSig.Broadcast()
	}
}

// advertise records the peer's receive-buffer space.
func (s *Socket) advertise(free int64) {
	s.advertised = free
	if s.winSig != nil {
		s.winSig.Broadcast()
	}
}

// windowOpen reports whether seg more bytes fit in both the congestion
// window and the peer's advertised buffer.
func (s *Socket) windowOpen(seg int64) bool {
	if s.inFlight+seg > s.window {
		return false
	}
	return s.inFlight+seg <= s.advertised
}

func (s *Socket) waitWindow(t *kernel.Thread) {
	if s.winSig == nil {
		s.winSig = sim.NewSignal(s.stack.k.Engine())
	}
	t.Wait(s.winSig)
}

// segQueue is the socket receive queue: byte-bounded, with blocking
// get. Consumed entries advance a head index and the backing array is
// reused once drained (the engine-queue compaction scheme), so the
// per-segment reslice of the old get/tryGet pair is gone.
type segQueue struct {
	eng      *sim.Engine
	items    []*nic.RxPacket
	head     int
	capBytes int64
	bytes    int64
	sig      *sim.Signal
	closed   bool
}

func newSegQueue(e *sim.Engine, capBytes int64) *segQueue {
	return &segQueue{eng: e, capBytes: capBytes, sig: sim.NewSignal(e)}
}

func (q *segQueue) len() int { return len(q.items) - q.head }

// free returns remaining receive-buffer space.
func (q *segQueue) free() int64 {
	if q.capBytes <= 0 {
		return 1 << 40
	}
	f := q.capBytes - q.bytes
	if f < 0 {
		return 0
	}
	return f
}

func (q *segQueue) tryPut(rxp *nic.RxPacket) bool {
	if q.closed || (q.capBytes > 0 && q.bytes+rxp.Payload > q.capBytes) {
		return false
	}
	q.items = append(q.items, rxp)
	q.bytes += rxp.Payload
	q.sig.Broadcast()
	return true
}

// dequeue removes the head segment; ownership passes to the caller,
// who must Recycle the packet exactly once (the slot is cleared here so
// the queue never aliases a recycled packet).
func (q *segQueue) dequeue() *nic.RxPacket {
	rxp := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.bytes -= rxp.Payload
	return rxp
}

func (q *segQueue) get(t *kernel.Thread) (rxp *nic.RxPacket, blocked bool) {
	for q.len() == 0 {
		if q.closed {
			return nil, blocked
		}
		blocked = true
		t.Wait(q.sig)
	}
	return q.dequeue(), blocked
}

func (q *segQueue) tryGet() (*nic.RxPacket, bool) {
	if q.len() == 0 {
		return nil, false
	}
	return q.dequeue(), true
}

// close shuts the queue; undelivered segments will never reach an
// application and return to their pool here.
func (q *segQueue) close() {
	q.closed = true
	for q.len() > 0 {
		q.dequeue().Recycle()
	}
	q.sig.Broadcast()
}
