package netstack

import (
	"ioctopus/internal/metrics"
)

// RegisterMetrics wires stack-level datapath counters into a registry:
// segment delivery/drop totals plus the retransmission machinery under
// "retx" (all zero unless Params.RetxTimeout armed the timer).
func (st *Stack) RegisterMetrics(r metrics.Registrar) {
	r.Counter("rx_segments", func() float64 { return float64(st.rxSegments) })
	r.Counter("rx_drops", func() float64 { return float64(st.rxDrops) })
	retx := r.Scope("retx")
	retx.Counter("timeouts", func() float64 { return float64(st.retxTimeouts) })
	retx.Counter("retransmits", func() float64 { return float64(st.retxRetransmits) })
	retx.Counter("duplicates", func() float64 { return float64(st.retxDuplicates) })
	retx.Counter("abandoned", func() float64 { return float64(st.retxAbandoned) })
}

// RetxRetransmits returns segments re-sent by the retransmission timer.
func (st *Stack) RetxRetransmits() uint64 { return st.retxRetransmits }

// RetxAbandoned returns segments given up on after RetxMaxTries.
func (st *Stack) RetxAbandoned() uint64 { return st.retxAbandoned }

// RetxDuplicates returns retransmitted copies discarded by receivers.
func (st *Stack) RetxDuplicates() uint64 { return st.retxDuplicates }
