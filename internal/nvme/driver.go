package nvme

import (
	"time"

	"ioctopus/internal/kernel"
	"ioctopus/internal/topology"
)

// Policy selects how a multi-port drive is used.
type Policy int

// Policies.
const (
	// SinglePath is the standard driver: all I/O through port 0, as a
	// stock multipath setup pinned to one path behaves.
	SinglePath Policy = iota
	// OctoSSD applies the IOctopus principle to storage: each request
	// is routed through the port local to its data buffer's node, so no
	// data DMA crosses the interconnect (§5.4 future work, built here).
	OctoSSD
)

// String names the policy.
func (p Policy) String() string {
	if p == OctoSSD {
		return "octossd"
	}
	return "single-path"
}

// DriverParams are host-side cost constants.
type DriverParams struct {
	// DoorbellCPU is the submission doorbell cost.
	DoorbellCPU time.Duration
	// PerIOCPU is block-layer per-request work.
	PerIOCPU time.Duration
	// ReapBudget bounds completions per interrupt.
	ReapBudget int
}

// DefaultDriverParams returns calibrated defaults.
func DefaultDriverParams() DriverParams {
	return DriverParams{
		DoorbellCPU: 60 * time.Nanosecond,
		PerIOCPU:    1200 * time.Nanosecond,
		ReapBudget:  64,
	}
}

// Driver is the host NVMe driver for one controller.
type Driver struct {
	k      *kernel.Kernel
	ctrl   *Controller
	policy Policy
	params DriverParams

	// One queue pair per (port, submitting node): rings homed on the
	// submitter's node, interrupts to it.
	qps map[[2]int]*QueuePair

	completed uint64
}

// NewDriver binds a driver to a controller.
func NewDriver(k *kernel.Kernel, ctrl *Controller, policy Policy, params DriverParams) *Driver {
	return &Driver{
		k:      k,
		ctrl:   ctrl,
		policy: policy,
		params: params,
		qps:    make(map[[2]int]*QueuePair),
	}
}

// Controller returns the managed drive.
func (d *Driver) Controller() *Controller { return d.ctrl }

// Policy returns the routing policy.
func (d *Driver) Policy() Policy { return d.policy }

// Completed returns requests whose completions the driver has reaped.
func (d *Driver) Completed() uint64 { return d.completed }

// pickPort routes a request per the policy.
func (d *Driver) pickPort(req *Request) *Port {
	if d.policy == OctoSSD {
		for _, p := range d.ctrl.ports {
			if p.Node() == req.Buf.Home() {
				return p
			}
		}
	}
	return d.ctrl.ports[0]
}

// qpFor returns (creating on demand) the queue pair for a port and
// submitting node.
func (d *Driver) qpFor(p *Port, node topology.NodeID) *QueuePair {
	key := [2]int{p.index, int(node)}
	if qp, ok := d.qps[key]; ok {
		return qp
	}
	var qp *QueuePair
	qp = p.NewQueuePair(node, node, func() {
		// Completion interrupt: reap on the first core of the node.
		core := d.k.Topology().CoresOn(node)[0].ID
		d.k.Core(core).IRQ(d.ctrl.name, func() time.Duration { return d.reap(qp, node) })
	})
	d.qps[key] = qp
	return qp
}

// reap processes completions: per-CQE host reads plus callbacks.
func (d *Driver) reap(qp *QueuePair, node topology.NodeID) time.Duration {
	var cost time.Duration
	for _, req := range qp.Reap(d.params.ReapBudget) {
		cost += qp.CQ().HostRead(node, 1)
		cost += d.params.PerIOCPU / 2
		d.completed++
		if req.OnComplete != nil {
			req.OnComplete(req)
		}
	}
	qp.IRQComplete()
	return cost
}

// Submit issues a request from the calling thread: block-layer CPU,
// SQE write, doorbell, then the hardware path.
func (d *Driver) Submit(t *kernel.Thread, req *Request) {
	port := d.pickPort(req)
	qp := d.qpFor(port, t.Node())
	t.ExecFn(func() time.Duration {
		cost := d.params.PerIOCPU / 2
		cost += qp.SQ().HostWrite(t.Node(), 1)
		cost += d.params.DoorbellCPU
		return cost
	})
	flight := port.ep.MMIOWrite(t.Node())
	d.k.Engine().After(flight, func() { qp.Submit(req) })
}

// SubmitAsync issues a request from event context (async I/O engines
// that batch submissions); CPU costs are charged to the given core.
func (d *Driver) SubmitAsync(core topology.CoreID, req *Request) {
	node := d.k.Topology().NodeOf(core)
	port := d.pickPort(req)
	qp := d.qpFor(port, node)
	d.k.Core(core).Submit("nvme-submit", func() time.Duration {
		cost := d.params.PerIOCPU / 2
		cost += qp.SQ().HostWrite(node, 1)
		cost += d.params.DoorbellCPU
		return cost
	}, func() {
		flight := port.ep.MMIOWrite(node)
		d.k.Engine().After(flight, func() { qp.Submit(req) })
	})
}
