// Package nvme models NVMe storage (§5.4): controllers with submission/
// completion queues in host memory, a flash backend, and — following the
// dual-port PM1725a drives the paper customizes a backplane for —
// multiple PCIe physical functions per drive, one per socket.
//
// Two driver policies are provided: the standard single-path driver
// (all I/O through one port, NUDMA when the CPU is remote) and the
// OctoSSD policy the paper leaves as future work — the IOctopus
// principles applied to storage: route each I/O through the port local
// to its data buffer.
package nvme

import (
	"fmt"
	"time"

	"ioctopus/internal/device"
	"ioctopus/internal/memsys"
	"ioctopus/internal/pcie"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// Params are drive cost/behaviour constants (PM1725a-like).
type Params struct {
	// FlashReadBW / FlashWriteBW are the drive's internal bandwidths.
	FlashReadBW  float64
	FlashWriteBW float64
	// FlashReadLatency / FlashWriteLatency are per-op access latencies.
	FlashReadLatency  time.Duration
	FlashWriteLatency time.Duration
	// QueueEntries sizes SQ/CQ rings; DescBytes is the SQE/CQE size.
	QueueEntries int
	DescBytes    int64
	// CoalesceDelay moderates completion interrupts.
	CoalesceDelay time.Duration
}

// DefaultParams returns PM1725a-like defaults.
func DefaultParams() Params {
	return Params{
		FlashReadBW:       3.2e9,
		FlashWriteBW:      2.0e9,
		FlashReadLatency:  90 * time.Microsecond,
		FlashWriteLatency: 25 * time.Microsecond,
		QueueEntries:      1024,
		DescBytes:         64,
		CoalesceDelay:     4 * time.Microsecond,
	}
}

// Controller is one NVMe drive, possibly dual-ported.
type Controller struct {
	eng    *sim.Engine
	mem    *memsys.System
	name   string
	params Params
	ports  []*Port
	// flash serializes media access: reads and writes share the media
	// with their respective bandwidths approximated by a shared pipe at
	// read bandwidth and a write-cost scale factor.
	flash *sim.Pipe

	reads, writes uint64
}

// Port is one PCIe physical function of the drive.
type Port struct {
	ctrl  *Controller
	index int
	ep    *pcie.Endpoint
}

// New builds a drive over its PCIe endpoints (one per port).
func New(e *sim.Engine, mem *memsys.System, name string, eps []*pcie.Endpoint, params Params) *Controller {
	if len(eps) == 0 {
		panic("nvme: need at least one port endpoint")
	}
	c := &Controller{
		eng:    e,
		mem:    mem,
		name:   name,
		params: params,
		flash: sim.NewPipe(e, sim.PipeConfig{
			Name:        name + ":flash",
			BytesPerSec: params.FlashReadBW,
			BaseLatency: params.FlashReadLatency,
			// The FIFO itself is the media queue; utilization-based
			// latency inflation would double-count it.
			MaxInflation: 1.01,
		}),
	}
	for i, ep := range eps {
		c.ports = append(c.ports, &Port{ctrl: c, index: i, ep: ep})
	}
	return c
}

// Name returns the drive name.
func (c *Controller) Name() string { return c.name }

// Ports returns the drive's PCIe functions.
func (c *Controller) Ports() []*Port { return c.ports }

// Port returns one port.
func (c *Controller) Port(i int) *Port {
	if i < 0 || i >= len(c.ports) {
		panic(fmt.Sprintf("nvme %s: no port %d", c.name, i))
	}
	return c.ports[i]
}

// Reads and Writes return completed op counts.
func (c *Controller) Reads() uint64  { return c.reads }
func (c *Controller) Writes() uint64 { return c.writes }

// Node returns the socket a port attaches to.
func (p *Port) Node() topology.NodeID { return p.ep.Node() }

// Endpoint returns the port's PCIe endpoint.
func (p *Port) Endpoint() *pcie.Endpoint { return p.ep }

// Request is one block I/O.
type Request struct {
	Write bool
	Bytes int64
	// Buf is the host data buffer (its home node is what NUDMA is
	// about).
	Buf *memsys.Buffer
	// OnComplete fires after the driver reaps the CQE.
	OnComplete func(*Request)

	SubmittedAt sim.Time
	CompletedAt sim.Time
}

// Latency returns the request's completion latency.
func (r *Request) Latency() time.Duration { return r.CompletedAt.Sub(r.SubmittedAt) }

// QueuePair is an SQ/CQ pair bound to one port.
type QueuePair struct {
	port *Port
	sq   *device.Ring
	cq   *device.Ring

	irqNode topology.NodeID
	onIRQ   func()

	completed  []*Request
	napiActive bool
	coalesce   sim.Timer

	inFlight int
}

// NewQueuePair creates an SQ/CQ pair in memory homed on `home`, with
// completions interrupting toward irqNode.
func (p *Port) NewQueuePair(home topology.NodeID, irqNode topology.NodeID, onIRQ func()) *QueuePair {
	c := p.ctrl
	qp := &QueuePair{
		port:    p,
		sq:      device.NewRing(c.mem, fmt.Sprintf("%s:sq%d", c.name, p.index), home, c.params.QueueEntries, c.params.DescBytes),
		cq:      device.NewRing(c.mem, fmt.Sprintf("%s:cq%d", c.name, p.index), home, c.params.QueueEntries, c.params.DescBytes),
		irqNode: irqNode,
		onIRQ:   onIRQ,
	}
	return qp
}

// Port returns the owning port.
func (qp *QueuePair) Port() *Port { return qp.port }

// SQ returns the submission ring (the driver writes SQEs into it).
func (qp *QueuePair) SQ() *device.Ring { return qp.sq }

// CQ returns the completion ring.
func (qp *QueuePair) CQ() *device.Ring { return qp.cq }

// InFlight returns submitted, uncompleted requests.
func (qp *QueuePair) InFlight() int { return qp.inFlight }

// Submit starts the hardware side of a request: SQE fetch, media
// access, data DMA, CQE writeback, interrupt. The driver has already
// charged SQE write + doorbell CPU costs.
func (qp *QueuePair) Submit(req *Request) {
	c := qp.port.ctrl
	req.SubmittedAt = c.eng.Now()
	qp.inFlight++
	qp.sq.DeviceRead(qp.port.ep, 1, func() {
		// Media access: writes occupy the media longer in proportion to
		// the bandwidth ratio.
		bytes := req.Bytes
		if req.Write {
			bytes = int64(float64(bytes) * c.params.FlashReadBW / c.params.FlashWriteBW)
		}
		lat := c.params.FlashReadLatency
		if req.Write {
			lat = c.params.FlashWriteLatency
		}
		_ = lat // the flash pipe's base latency covers the read case
		c.flash.Transfer(bytes, func() {
			if req.Write {
				// Data moves host -> drive before the media write; the
				// order is folded: charge the DMA read now.
				qp.port.ep.DMARead(req.Buf, req.Bytes, func() { qp.complete(req) })
			} else {
				// Read: data moves drive -> host.
				qp.port.ep.DMAWrite(req.Buf, req.Bytes, func() { qp.complete(req) })
			}
		})
	})
}

// complete writes the CQE and raises the interrupt (moderated).
func (qp *QueuePair) complete(req *Request) {
	c := qp.port.ctrl
	qp.port.ep.DMAWrite(qp.cq.Buffer(), c.params.DescBytes, func() {
		req.CompletedAt = c.eng.Now()
		if req.Write {
			c.writes++
		} else {
			c.reads++
		}
		qp.completed = append(qp.completed, req)
		qp.maybeInterrupt()
	})
}

func (qp *QueuePair) maybeInterrupt() {
	if qp.napiActive || qp.onIRQ == nil || len(qp.completed) == 0 {
		return
	}
	delay := qp.port.ctrl.params.CoalesceDelay
	if delay == 0 {
		qp.fireInterrupt()
		return
	}
	if qp.coalesce.Pending() {
		return
	}
	qp.coalesce = qp.port.ctrl.eng.After(delay, qp.fireInterrupt)
}

func (qp *QueuePair) fireInterrupt() {
	if qp.napiActive || len(qp.completed) == 0 {
		return
	}
	qp.napiActive = true
	qp.port.ep.Interrupt(qp.irqNode, qp.onIRQ)
}

// Reap removes up to budget completed requests for driver cleanup.
func (qp *QueuePair) Reap(budget int) []*Request {
	n := len(qp.completed)
	if n > budget {
		n = budget
	}
	batch := qp.completed[:n]
	qp.completed = qp.completed[n:]
	qp.inFlight -= n
	return batch
}

// IRQComplete re-enables completion interrupts.
func (qp *QueuePair) IRQComplete() {
	qp.napiActive = false
	qp.maybeInterrupt()
}
