package nvme

import (
	"testing"
	"time"

	"ioctopus/internal/interconnect"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/pcie"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

type nvmeRig struct {
	eng  *sim.Engine
	k    *kernel.Kernel
	mem  *memsys.System
	ctrl *Controller
}

func newNvmeRig(t *testing.T, dualPort bool) *nvmeRig {
	t.Helper()
	e := sim.NewEngine()
	topo := topology.DualSkylake()
	fab := interconnect.New(e, topo)
	mem := memsys.New(e, topo, fab, memsys.DefaultParams())
	pc := pcie.New(e, mem, pcie.DefaultParams())
	cfg := pcie.CardConfig{Name: "nvme0", Gen: pcie.Gen3, TotalLanes: 8,
		Wiring: pcie.WiringDirect, Nodes: []topology.NodeID{1}}
	if dualPort {
		cfg.Wiring = pcie.WiringBifurcated
		cfg.Nodes = []topology.NodeID{1, 0}
	}
	eps := pc.AttachCard(cfg)
	ctrl := New(e, mem, "nvme0", eps, DefaultParams())
	k := kernel.New(e, topo, mem, kernel.DefaultParams())
	return &nvmeRig{eng: e, k: k, mem: mem, ctrl: ctrl}
}

func TestReadCompletesWithFlashLatency(t *testing.T) {
	r := newNvmeRig(t, false)
	d := NewDriver(r.k, r.ctrl, SinglePath, DefaultDriverParams())
	buf := r.mem.NewBuffer("data", 1, 128*1024)
	var lat time.Duration
	r.k.Spawn("io", 24, func(th *kernel.Thread) { // core 24 = node 1, local
		req := &Request{Bytes: 128 * 1024, Buf: buf,
			OnComplete: func(rq *Request) { lat = rq.Latency() }}
		d.Submit(th, req)
	})
	r.eng.RunFor(10 * time.Millisecond)
	if lat == 0 {
		t.Fatal("read never completed")
	}
	// Flash latency (90us) + media transfer (128K/3.2G = 40us) dominate.
	if lat < 100*time.Microsecond || lat > 400*time.Microsecond {
		t.Fatalf("latency = %v, want ~130-200us", lat)
	}
	if r.ctrl.Reads() != 1 {
		t.Fatalf("reads = %d", r.ctrl.Reads())
	}
	r.eng.Drain()
}

func TestReadDataLandsViaDDIOWhenLocal(t *testing.T) {
	r := newNvmeRig(t, false)
	d := NewDriver(r.k, r.ctrl, SinglePath, DefaultDriverParams())
	buf := r.mem.NewBuffer("data", 1, 128*1024) // node 1 = SSD node
	r.k.Spawn("io", 24, func(th *kernel.Thread) {
		d.Submit(th, &Request{Bytes: 128 * 1024, Buf: buf})
	})
	r.eng.RunFor(10 * time.Millisecond)
	if buf.CachedAt() != 1 {
		t.Fatal("local read should land in the SSD node's LLC via DDIO")
	}
	r.eng.Drain()
}

func TestRemoteReadCrossesInterconnect(t *testing.T) {
	r := newNvmeRig(t, false)
	d := NewDriver(r.k, r.ctrl, SinglePath, DefaultDriverParams())
	buf := r.mem.NewBuffer("data", 0, 128*1024) // fio node, remote to SSD
	r.k.Spawn("io", 0, func(th *kernel.Thread) {
		d.Submit(th, &Request{Bytes: 128 * 1024, Buf: buf})
	})
	r.eng.RunFor(10 * time.Millisecond)
	if got := r.mem.Fabric().Pipe(1, 0).DiscreteBytes(); got < 128*1024 {
		t.Fatalf("UPI bytes = %v, want >= 128K (data crossing)", got)
	}
	if r.mem.Stats(0).DRAMWriteBytes < 128*1024 {
		t.Fatal("remote DMA write should land in the fio node's DRAM")
	}
	r.eng.Drain()
}

func TestOctoSSDRoutesByBufferHome(t *testing.T) {
	r := newNvmeRig(t, true) // dual port: port0@node1, port1@node0
	d := NewDriver(r.k, r.ctrl, OctoSSD, DefaultDriverParams())
	buf0 := r.mem.NewBuffer("d0", 0, 128*1024)
	buf1 := r.mem.NewBuffer("d1", 1, 128*1024)
	r.k.Spawn("io", 0, func(th *kernel.Thread) {
		d.Submit(th, &Request{Bytes: 128 * 1024, Buf: buf0})
		d.Submit(th, &Request{Bytes: 128 * 1024, Buf: buf1})
	})
	r.eng.RunFor(10 * time.Millisecond)
	// Each request used the port local to its buffer: no DATA crossed
	// (only 64-byte control structures — the CQE of the request whose
	// queue pair lives on the submitter's node but whose port is on
	// the other socket).
	if got := r.mem.Fabric().Pipe(1, 0).DiscreteBytes(); got > 1024 {
		t.Fatalf("OctoSSD let %v bytes cross 1->0", got)
	}
	if r.ctrl.Port(0).Endpoint().DMAWriteBytes() < 128*1024 ||
		r.ctrl.Port(1).Endpoint().DMAWriteBytes() < 128*1024 {
		t.Fatal("both ports should have carried one request's data")
	}
	r.eng.Drain()
}

func TestSinglePathIgnoresBufferHome(t *testing.T) {
	r := newNvmeRig(t, true)
	d := NewDriver(r.k, r.ctrl, SinglePath, DefaultDriverParams())
	buf0 := r.mem.NewBuffer("d0", 0, 128*1024)
	r.k.Spawn("io", 0, func(th *kernel.Thread) {
		d.Submit(th, &Request{Bytes: 128 * 1024, Buf: buf0})
	})
	r.eng.RunFor(10 * time.Millisecond)
	if r.ctrl.Port(1).Endpoint().DMAWriteBytes() != 0 {
		t.Fatal("single-path must stay on port 0")
	}
	r.eng.Drain()
}

func TestWritesSlowerThanReads(t *testing.T) {
	run := func(write bool) float64 {
		r := newNvmeRig(t, false)
		d := NewDriver(r.k, r.ctrl, SinglePath, DefaultDriverParams())
		var bytes int64
		r.k.Spawn("io", 24, func(th *kernel.Thread) {
			var resubmit func(slot int)
			bufs := make([]*memsys.Buffer, 8)
			for i := range bufs {
				bufs[i] = r.mem.NewBuffer("b", 1, 128*1024)
			}
			resubmit = func(slot int) {
				d.SubmitAsync(24, &Request{Write: write, Bytes: 128 * 1024, Buf: bufs[slot],
					OnComplete: func(rq *Request) { bytes += rq.Bytes; resubmit(slot) }})
			}
			for i := 0; i < 8; i++ {
				resubmit(i)
			}
		})
		r.eng.RunFor(50 * time.Millisecond)
		r.eng.Drain()
		return float64(bytes) / 0.05 / 1e9
	}
	reads := run(false)
	writes := run(true)
	if reads < 2.8 || reads > 3.5 {
		t.Fatalf("read throughput = %.2f GB/s, want ~3.2", reads)
	}
	if writes > reads*0.8 {
		t.Fatalf("writes (%.2f) should be slower than reads (%.2f)", writes, reads)
	}
	r := newNvmeRig(t, false)
	r.eng.Drain()
}

func TestQueuePairReapAndInterrupts(t *testing.T) {
	r := newNvmeRig(t, false)
	irqs := 0
	qp := r.ctrl.Port(0).NewQueuePair(1, 1, func() { irqs++ })
	buf := r.mem.NewBuffer("b", 1, 4096)
	for i := 0; i < 4; i++ {
		qp.Submit(&Request{Bytes: 4096, Buf: buf})
	}
	if qp.InFlight() != 4 {
		t.Fatalf("in flight = %d", qp.InFlight())
	}
	r.eng.RunFor(10 * time.Millisecond)
	if irqs == 0 {
		t.Fatal("no completion interrupt")
	}
	if irqs >= 4 {
		t.Fatalf("interrupts = %d; coalescing should batch them", irqs)
	}
	batch := qp.Reap(64)
	if len(batch) != 4 {
		t.Fatalf("reaped = %d", len(batch))
	}
	if qp.InFlight() != 0 {
		t.Fatalf("in flight after reap = %d", qp.InFlight())
	}
	qp.IRQComplete()
	r.eng.Drain()
}

func TestPolicyString(t *testing.T) {
	if SinglePath.String() != "single-path" || OctoSSD.String() != "octossd" {
		t.Fatal("policy names wrong")
	}
}
