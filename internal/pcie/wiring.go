package pcie

import (
	"fmt"

	"ioctopus/internal/topology"
)

// Wiring selects how a multi-endpoint card reaches multiple CPUs (§3.2).
type Wiring int

// Wiring options.
const (
	// WiringDirect attaches all lanes to a single socket — the
	// traditional single-PF configuration.
	WiringDirect Wiring = iota
	// WiringBifurcated splits the card's lanes evenly across sockets
	// (the octoNIC prototype: x16 -> 2 x8). Cheapest, least flexible.
	WiringBifurcated
	// WiringExtender gives every socket a full-width endpoint via PCIe
	// extender cabling (requires the device to have lanes to spare).
	WiringExtender
	// WiringRiser is motherboard riser wiring: electrically like
	// bifurcation, without external cables.
	WiringRiser
	// WiringSwitch places the card behind an onboard programmable PCIe
	// switch: full-width endpoints everywhere and dynamic rewiring, at
	// the cost of an extra hop on every transaction.
	WiringSwitch
)

// String names the wiring.
func (w Wiring) String() string {
	switch w {
	case WiringDirect:
		return "direct"
	case WiringBifurcated:
		return "bifurcated"
	case WiringExtender:
		return "extender"
	case WiringRiser:
		return "riser"
	case WiringSwitch:
		return "switch"
	default:
		return fmt.Sprintf("wiring(%d)", int(w))
	}
}

// CardConfig describes the physical card being attached.
type CardConfig struct {
	Name string
	Gen  Gen
	// TotalLanes is the card's lane budget (16 for the prototype).
	TotalLanes int
	Wiring     Wiring
	// Nodes are the sockets to reach. Direct wiring uses Nodes[0].
	Nodes []topology.NodeID
}

// AttachCard creates the card's endpoints per its wiring and returns
// them in Nodes order.
func (f *Fabric) AttachCard(cfg CardConfig) []*Endpoint {
	if cfg.TotalLanes <= 0 {
		panic(fmt.Sprintf("pcie: card %q needs lanes", cfg.Name))
	}
	if len(cfg.Nodes) == 0 {
		panic(fmt.Sprintf("pcie: card %q needs target nodes", cfg.Name))
	}
	switch cfg.Wiring {
	case WiringDirect:
		return []*Endpoint{
			f.NewEndpoint(cfg.Name+"/pf0", cfg.Nodes[0], cfg.Gen, cfg.TotalLanes),
		}
	case WiringBifurcated, WiringRiser:
		n := len(cfg.Nodes)
		lanes := cfg.TotalLanes / n
		if lanes == 0 {
			panic(fmt.Sprintf("pcie: card %q cannot bifurcate %d lanes %d ways", cfg.Name, cfg.TotalLanes, n))
		}
		eps := make([]*Endpoint, n)
		for i, node := range cfg.Nodes {
			eps[i] = f.NewEndpoint(fmt.Sprintf("%s/pf%d", cfg.Name, i), node, cfg.Gen, lanes)
		}
		return eps
	case WiringExtender:
		eps := make([]*Endpoint, len(cfg.Nodes))
		for i, node := range cfg.Nodes {
			eps[i] = f.NewEndpoint(fmt.Sprintf("%s/pf%d", cfg.Name, i), node, cfg.Gen, cfg.TotalLanes)
		}
		return eps
	case WiringSwitch:
		eps := make([]*Endpoint, len(cfg.Nodes))
		for i, node := range cfg.Nodes {
			eps[i] = f.newEndpoint(fmt.Sprintf("%s/pf%d", cfg.Name, i), node, cfg.Gen, cfg.TotalLanes, f.params.SwitchLatency)
		}
		return eps
	default:
		panic(fmt.Sprintf("pcie: unknown wiring %v", cfg.Wiring))
	}
}
