// Package pcie models the PCIe fabric joining I/O devices to the server:
// endpoints (physical functions), their link bandwidth by generation and
// lane count, DMA data movement into the memory system, MMIO doorbells
// and MSI-X interrupt delivery — each with the local/remote asymmetry
// that creates NUDMA.
//
// It also models the wiring options of §3.2: direct attach, PCIe
// bifurcation (one x16 card split into two x8 endpoints on different
// sockets — the octoNIC prototype's configuration), lane extenders,
// motherboard risers, and an onboard programmable PCIe switch (more
// flexible, but each transaction pays the switch hop).
package pcie

import (
	"fmt"
	"time"

	"ioctopus/internal/memsys"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// Gen is a PCIe generation.
type Gen int

// Supported generations.
const (
	Gen3 Gen = 3
	Gen4 Gen = 4
)

// perLaneBandwidth returns usable bytes/sec per lane (after encoding
// overhead: 128b/130b for Gen3+).
func perLaneBandwidth(g Gen) float64 {
	switch g {
	case Gen3:
		return 0.985e9 // 8 GT/s x 128/130 / 8 bits
	case Gen4:
		return 1.969e9
	default:
		panic(fmt.Sprintf("pcie: unsupported generation %d", g))
	}
}

// LinkBandwidth returns the usable one-direction bandwidth of a link.
func LinkBandwidth(g Gen, lanes int) float64 {
	if lanes <= 0 {
		panic(fmt.Sprintf("pcie: invalid lane count %d", lanes))
	}
	return perLaneBandwidth(g) * float64(lanes)
}

// Endpoint is one PCIe physical function's attachment point: a link to
// one socket's I/O controller.
type Endpoint struct {
	fabric *Fabric
	name   string
	node   topology.NodeID
	gen    Gen
	lanes  int

	toHost   *sim.Pipe // DMA writes (device -> memory)
	toDevice *sim.Pipe // DMA reads (memory -> device)

	// extraLatency is added to every transaction (programmable-switch
	// hop, extender retimers).
	extraLatency time.Duration

	// opFree recycles dmaOp records so steady-state DMA traffic does
	// not allocate a closure per transaction stage.
	opFree []*dmaOp

	dmaReadBytes  float64
	dmaWriteBytes float64
	mmioOps       uint64
	interrupts    uint64
}

// dmaOp is one in-flight DMA transaction's pooled state: the second
// stage of a DMAWrite (memory landing after uplink serialization) or a
// DMARead (downlink serialization after the memory supplies the data)
// runs from a cached method value instead of a per-call closure. Ops
// are recycled through the endpoint's free list the moment their stage
// fires, so the pool high-water mark is the endpoint's maximum
// transaction concurrency.
type dmaOp struct {
	ep       *Endpoint
	buf      *memsys.Buffer
	n        int64
	done     func()
	writeRun func() // cached op.runWrite
	readRun  func() // cached op.runRead
}

// getOp leases a transaction record from the endpoint's free list.
func (ep *Endpoint) getOp() *dmaOp {
	if n := len(ep.opFree); n > 0 {
		op := ep.opFree[n-1]
		ep.opFree[n-1] = nil
		ep.opFree = ep.opFree[:n-1]
		return op
	}
	op := &dmaOp{ep: ep}
	op.writeRun = op.runWrite
	op.readRun = op.runRead
	return op
}

// release returns the record to the free list.
func (op *dmaOp) release() {
	op.buf = nil
	op.done = nil
	op.ep.opFree = append(op.ep.opFree, op)
}

// runWrite is a DMA write's second stage: the last byte cleared the
// uplink; land it per the memory system's DDIO rules and fire done once
// the write is globally observable.
func (op *dmaOp) runWrite() {
	ep := op.ep
	lat := ep.fabric.mem.DeviceWrite(ep.node, op.buf, op.n) + ep.extraLatency
	done := op.done
	op.release()
	if done == nil {
		return
	}
	ep.fabric.eng.After(lat, done)
}

// runRead is a DMA read's second stage: the memory system supplied the
// data; serialize it on the downlink.
func (op *dmaOp) runRead() {
	ep := op.ep
	n, done := op.n, op.done
	op.release()
	ep.toDevice.Transfer(n, done)
}

// Fabric is the server's PCIe fabric.
type Fabric struct {
	eng       *sim.Engine
	mem       *memsys.System
	endpoints []*Endpoint
	params    Params
}

// Params are PCIe transaction cost constants.
type Params struct {
	// LinkLatency is the one-way latency of a PCIe link hop.
	LinkLatency time.Duration
	// MMIOWriteLatency is the host-side cost of a posted doorbell write.
	MMIOWriteLatency time.Duration
	// InterruptLatency is MSI-X delivery latency to a local core.
	InterruptLatency time.Duration
	// SwitchLatency is the extra hop cost behind a programmable switch.
	SwitchLatency time.Duration
}

// DefaultParams returns calibrated defaults.
func DefaultParams() Params {
	return Params{
		LinkLatency:      250 * time.Nanosecond,
		MMIOWriteLatency: 100 * time.Nanosecond,
		InterruptLatency: 600 * time.Nanosecond,
		SwitchLatency:    150 * time.Nanosecond,
	}
}

// New builds a PCIe fabric over the memory system.
func New(e *sim.Engine, mem *memsys.System, params Params) *Fabric {
	return &Fabric{eng: e, mem: mem, params: params}
}

// Memory returns the memory system DMA lands in.
func (f *Fabric) Memory() *memsys.System { return f.mem }

// NewEndpoint attaches a PF with the given link to a socket.
func (f *Fabric) NewEndpoint(name string, node topology.NodeID, g Gen, lanes int) *Endpoint {
	return f.newEndpoint(name, node, g, lanes, 0)
}

func (f *Fabric) newEndpoint(name string, node topology.NodeID, g Gen, lanes int, extra time.Duration) *Endpoint {
	bw := LinkBandwidth(g, lanes)
	ep := &Endpoint{
		fabric:       f,
		name:         name,
		node:         node,
		gen:          g,
		lanes:        lanes,
		extraLatency: extra,
		toHost: sim.NewPipe(f.eng, sim.PipeConfig{
			Name: name + ":up", BytesPerSec: bw, BaseLatency: f.params.LinkLatency,
		}),
		toDevice: sim.NewPipe(f.eng, sim.PipeConfig{
			Name: name + ":down", BytesPerSec: bw, BaseLatency: f.params.LinkLatency,
		}),
	}
	f.endpoints = append(f.endpoints, ep)
	return ep
}

// Endpoints returns all attached endpoints.
func (f *Fabric) Endpoints() []*Endpoint { return f.endpoints }

// Name returns the endpoint's name.
func (ep *Endpoint) Name() string { return ep.name }

// Node returns the socket the endpoint is attached to.
func (ep *Endpoint) Node() topology.NodeID { return ep.node }

// Lanes returns the link width.
func (ep *Endpoint) Lanes() int { return ep.lanes }

// Bandwidth returns the link's one-direction bandwidth.
func (ep *Endpoint) Bandwidth() float64 { return LinkBandwidth(ep.gen, ep.lanes) }

// DMAWrite moves n bytes from the device into the buffer (packet
// reception, completion writeback): the data serializes on the uplink,
// then lands per the memory system's DDIO rules. done fires when the
// write is globally observable.
func (ep *Endpoint) DMAWrite(b *memsys.Buffer, n int64, done func()) {
	ep.dmaWriteBytes += float64(n)
	op := ep.getOp()
	op.buf, op.n, op.done = b, n, done
	ep.toHost.Transfer(n, op.writeRun)
}

// DMARead moves n bytes from the buffer into the device (packet
// transmission, descriptor fetch): the memory system supplies the data
// (LLC or DRAM, local or remote), then it serializes on the downlink.
// done fires when the last byte reaches the device.
func (ep *Endpoint) DMARead(b *memsys.Buffer, n int64, done func()) {
	ep.dmaReadBytes += float64(n)
	lat := ep.fabric.mem.DeviceRead(ep.node, b, n) + ep.extraLatency
	op := ep.getOp()
	op.n, op.done = n, done
	ep.fabric.eng.After(lat, op.readRun)
}

// MMIOWrite models a core on fromNode posting a doorbell write to the
// endpoint and returns the latency until the device observes it. Posted
// writes don't stall the core for the full flight time; the caller
// decides how much of this to charge to CPU time.
func (ep *Endpoint) MMIOWrite(fromNode topology.NodeID) time.Duration {
	ep.mmioOps++
	lat := ep.fabric.params.MMIOWriteLatency + ep.fabric.params.LinkLatency + ep.extraLatency
	if fromNode != ep.node {
		lat += ep.fabric.mem.Fabric().Charge(fromNode, ep.node, 64)
	}
	return lat
}

// Interrupt delivers an MSI-X interrupt toward a core on toNode,
// scheduling handler after the delivery latency.
func (ep *Endpoint) Interrupt(toNode topology.NodeID, handler func()) {
	ep.interrupts++
	lat := ep.fabric.params.InterruptLatency + ep.extraLatency
	if toNode != ep.node {
		lat += ep.fabric.mem.Fabric().Charge(ep.node, toNode, 64)
	}
	ep.fabric.eng.After(lat, handler)
}

// DMAWriteBytes returns total bytes DMA-written through this endpoint.
func (ep *Endpoint) DMAWriteBytes() float64 { return ep.dmaWriteBytes }

// DMAReadBytes returns total bytes DMA-read through this endpoint.
func (ep *Endpoint) DMAReadBytes() float64 { return ep.dmaReadBytes }

// MMIOOps returns the number of doorbell writes received.
func (ep *Endpoint) MMIOOps() uint64 { return ep.mmioOps }

// Interrupts returns the number of interrupts raised.
func (ep *Endpoint) Interrupts() uint64 { return ep.interrupts }

// ResetStats zeroes the endpoint's counters.
func (ep *Endpoint) ResetStats() {
	ep.dmaReadBytes = 0
	ep.dmaWriteBytes = 0
	ep.mmioOps = 0
	ep.interrupts = 0
	ep.toHost.ResetStats()
	ep.toDevice.ResetStats()
}
