package pcie

import (
	"testing"
	"time"

	"ioctopus/internal/interconnect"
	"ioctopus/internal/memsys"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

func newFabric(t *testing.T) (*sim.Engine, *Fabric) {
	t.Helper()
	e := sim.NewEngine()
	srv := topology.DualBroadwell()
	ic := interconnect.New(e, srv)
	mem := memsys.New(e, srv, ic, memsys.DefaultParams())
	return e, New(e, mem, DefaultParams())
}

func TestLinkBandwidth(t *testing.T) {
	x8 := LinkBandwidth(Gen3, 8)
	x16 := LinkBandwidth(Gen3, 16)
	if x8 != 8*0.985e9 {
		t.Fatalf("x8 Gen3 = %v, want 7.88 GB/s", x8)
	}
	if x16 != 2*x8 {
		t.Fatal("x16 should be twice x8")
	}
	if LinkBandwidth(Gen4, 8) <= x8 {
		t.Fatal("Gen4 should beat Gen3")
	}
}

func TestLinkBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero lanes should panic")
		}
	}()
	LinkBandwidth(Gen3, 0)
}

func TestDMAWriteLandsViaDDIO(t *testing.T) {
	e, f := newFabric(t)
	ep := f.NewEndpoint("nic", 0, Gen3, 8)
	b := f.Memory().NewBuffer("pkt", 0, 1500)
	var done sim.Time
	ep.DMAWrite(b, 1500, func() { done = e.Now() })
	e.RunUntilIdle()
	if done == 0 {
		t.Fatal("DMA write never completed")
	}
	if b.CachedAt() != 0 || !b.InDDIO() {
		t.Fatal("local DMA write should allocate in DDIO ways")
	}
	if ep.DMAWriteBytes() != 1500 {
		t.Fatalf("write bytes = %v", ep.DMAWriteBytes())
	}
}

func TestDMAWriteSerializesOnLink(t *testing.T) {
	e, f := newFabric(t)
	ep := f.NewEndpoint("nic", 0, Gen3, 8)
	b1 := f.Memory().NewBuffer("a", 0, 64*1024)
	b2 := f.Memory().NewBuffer("b", 0, 64*1024)
	var t1, t2 sim.Time
	ep.DMAWrite(b1, 64*1024, func() { t1 = e.Now() })
	ep.DMAWrite(b2, 64*1024, func() { t2 = e.Now() })
	e.RunUntilIdle()
	// 64 KiB at 7.88 GB/s is ~8.3 us; the second must wait for the first.
	if t2-t1 < sim.Time(7*time.Microsecond) {
		t.Fatalf("transfers not serialized: t1=%v t2=%v", t1, t2)
	}
}

func TestRemoteDMAWriteCrossesInterconnect(t *testing.T) {
	e, f := newFabric(t)
	ep := f.NewEndpoint("nic", 0, Gen3, 8)
	b := f.Memory().NewBuffer("pkt", 1, 1500) // homed on node 1
	ep.DMAWrite(b, 1500, nil)
	e.RunUntilIdle()
	if f.Memory().Fabric().Pipe(0, 1).DiscreteBytes() != 1500 {
		t.Fatal("remote DMA write should cross QPI")
	}
	if f.Memory().Stats(1).DRAMWriteBytes != 1500 {
		t.Fatal("remote DMA write should land in DRAM")
	}
}

func TestDMAReadServesFromLLC(t *testing.T) {
	e, f := newFabric(t)
	ep := f.NewEndpoint("nic", 0, Gen3, 8)
	b := f.Memory().NewBuffer("txbuf", 0, 1500)
	f.Memory().CPUWrite(0, b, 1500)
	f.Memory().ResetStats()
	var done sim.Time
	ep.DMARead(b, 1500, func() { done = e.Now() })
	e.RunUntilIdle()
	if done == 0 {
		t.Fatal("DMA read never completed")
	}
	if f.Memory().Stats(0).DRAMReadBytes != 0 {
		t.Fatal("local cached DMA read should not touch DRAM")
	}
	if ep.DMAReadBytes() != 1500 {
		t.Fatalf("read bytes = %v", ep.DMAReadBytes())
	}
}

func TestMMIOLocalVsRemote(t *testing.T) {
	_, f := newFabric(t)
	ep := f.NewEndpoint("nic", 0, Gen3, 8)
	local := ep.MMIOWrite(0)
	remote := ep.MMIOWrite(1)
	if remote <= local {
		t.Fatalf("remote MMIO (%v) should cost more than local (%v)", remote, local)
	}
	if ep.MMIOOps() != 2 {
		t.Fatalf("mmio ops = %d", ep.MMIOOps())
	}
}

func TestInterruptDelivery(t *testing.T) {
	e, f := newFabric(t)
	ep := f.NewEndpoint("nic", 0, Gen3, 8)
	var localAt, remoteAt sim.Time
	ep.Interrupt(0, func() { localAt = e.Now() })
	e.RunUntilIdle()
	e2, f2 := newFabric(t)
	ep2 := f2.NewEndpoint("nic", 0, Gen3, 8)
	ep2.Interrupt(1, func() { remoteAt = e2.Now() })
	e2.RunUntilIdle()
	if remoteAt <= localAt {
		t.Fatalf("remote interrupt (%v) should be slower than local (%v)", remoteAt, localAt)
	}
}

func TestAttachCardDirect(t *testing.T) {
	_, f := newFabric(t)
	eps := f.AttachCard(CardConfig{Name: "nic", Gen: Gen3, TotalLanes: 16, Wiring: WiringDirect, Nodes: []topology.NodeID{0}})
	if len(eps) != 1 || eps[0].Lanes() != 16 || eps[0].Node() != 0 {
		t.Fatalf("direct wiring wrong: %+v", eps)
	}
}

func TestAttachCardBifurcated(t *testing.T) {
	_, f := newFabric(t)
	eps := f.AttachCard(CardConfig{Name: "octo", Gen: Gen3, TotalLanes: 16, Wiring: WiringBifurcated, Nodes: []topology.NodeID{0, 1}})
	if len(eps) != 2 {
		t.Fatalf("endpoints = %d, want 2", len(eps))
	}
	for i, ep := range eps {
		if ep.Lanes() != 8 {
			t.Fatalf("pf%d lanes = %d, want 8", i, ep.Lanes())
		}
		if ep.Node() != topology.NodeID(i) {
			t.Fatalf("pf%d on node %d", i, ep.Node())
		}
	}
}

func TestAttachCardExtenderKeepsFullWidth(t *testing.T) {
	_, f := newFabric(t)
	eps := f.AttachCard(CardConfig{Name: "ext", Gen: Gen3, TotalLanes: 16, Wiring: WiringExtender, Nodes: []topology.NodeID{0, 1}})
	for _, ep := range eps {
		if ep.Lanes() != 16 {
			t.Fatalf("extender endpoint lanes = %d, want 16", ep.Lanes())
		}
	}
}

func TestAttachCardSwitchAddsLatency(t *testing.T) {
	e, f := newFabric(t)
	direct := f.AttachCard(CardConfig{Name: "d", Gen: Gen3, TotalLanes: 16, Wiring: WiringDirect, Nodes: []topology.NodeID{0}})[0]
	switched := f.AttachCard(CardConfig{Name: "s", Gen: Gen3, TotalLanes: 16, Wiring: WiringSwitch, Nodes: []topology.NodeID{0, 1}})[0]
	b1 := f.Memory().NewBuffer("a", 0, 64)
	b2 := f.Memory().NewBuffer("b", 0, 64)
	var tDirect, tSwitch sim.Time
	direct.DMAWrite(b1, 64, func() { tDirect = e.Now() })
	e.RunUntilIdle()
	start := e.Now()
	switched.DMAWrite(b2, 64, func() { tSwitch = e.Now() - start })
	e.RunUntilIdle()
	if tSwitch <= tDirect {
		t.Fatalf("switch hop should add latency: direct=%v switch=%v", tDirect, tSwitch)
	}
}

func TestAttachCardValidation(t *testing.T) {
	_, f := newFabric(t)
	for _, cfg := range []CardConfig{
		{Name: "no-lanes", Gen: Gen3, TotalLanes: 0, Wiring: WiringDirect, Nodes: []topology.NodeID{0}},
		{Name: "no-nodes", Gen: Gen3, TotalLanes: 16, Wiring: WiringDirect},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %q should panic", cfg.Name)
				}
			}()
			f.AttachCard(cfg)
		}()
	}
}

func TestWiringString(t *testing.T) {
	names := map[Wiring]string{
		WiringDirect: "direct", WiringBifurcated: "bifurcated",
		WiringExtender: "extender", WiringRiser: "riser", WiringSwitch: "switch",
	}
	for w, want := range names {
		if w.String() != want {
			t.Errorf("%d.String() = %q, want %q", w, w.String(), want)
		}
	}
}

func TestEndpointResetStats(t *testing.T) {
	e, f := newFabric(t)
	ep := f.NewEndpoint("nic", 0, Gen3, 8)
	b := f.Memory().NewBuffer("x", 0, 64)
	ep.DMAWrite(b, 64, nil)
	ep.MMIOWrite(0)
	e.RunUntilIdle()
	ep.ResetStats()
	if ep.DMAWriteBytes() != 0 || ep.MMIOOps() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}
