package workloads

import (
	"testing"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/nvme"
	"ioctopus/internal/topology"
)

func fioCores() []topology.CoreID {
	return []topology.CoreID{0, 1, 2, 3, 4, 5, 6, 7} // node 0, remote from SSDs
}

func runFio(t *testing.T, streams int, policy nvme.Policy, dualPort bool) (fioGBs, streamGBs float64) {
	t.Helper()
	rig := core.NewStorageRig(core.StorageConfig{Drives: 4, SSDNode: 1, Policy: policy, DualPort: dualPort})
	f := StartFio(rig, DefaultFioConfig(fioCores()))
	var ant *Antagonist
	if streams > 0 {
		ant = StartAntagonistOn(rig.Host, streams, 1, 0,
			AntagonistConfig{DemandPerInstance: 10e9})
	}
	rig.Run(50 * time.Millisecond)
	f.MeasureStart()
	if ant != nil {
		ant.MeasureStart()
	}
	rig.Run(100 * time.Millisecond)
	fioGBs = FioGBs(f.Bytes(), 100*time.Millisecond)
	if ant != nil {
		streamGBs = ant.WindowBytes() / 0.1 / 1e9
	}
	rig.Drain()
	return
}

func TestFioSoloSaturatesDrives(t *testing.T) {
	solo, _ := runFio(t, 0, nvme.SinglePath, false)
	if solo < 10 || solo > 14 {
		t.Fatalf("fio solo = %.2f GB/s, want ~12.8 (4 x 3.2)", solo)
	}
}

func TestFioDegradesUnderUPISaturation(t *testing.T) {
	// Figure 15: remote fio degrades by up to ~24% once STREAM
	// saturates the interconnect; light STREAM load leaves it alone.
	solo, _ := runFio(t, 0, nvme.SinglePath, false)
	light, _ := runFio(t, 2, nvme.SinglePath, false)
	heavy, streamRate := runFio(t, 10, nvme.SinglePath, false)
	if light/solo < 0.95 {
		t.Fatalf("light STREAM load should not hurt fio: %.2f -> %.2f", solo, light)
	}
	norm := heavy / solo
	if norm < 0.6 || norm > 0.9 {
		t.Fatalf("heavy-STREAM fio = %.2f of solo, want ~0.76", norm)
	}
	if streamRate == 0 {
		t.Fatal("antagonist idle")
	}
}

func TestFioLatencyRecorded(t *testing.T) {
	rig := core.NewStorageRig(core.StorageConfig{Drives: 2, SSDNode: 1})
	f := StartFio(rig, FioConfig{Cores: []topology.CoreID{0}, QueueDepth: 4, BlockSize: 128 * 1024})
	rig.Run(20 * time.Millisecond)
	f.MeasureStart()
	rig.Run(50 * time.Millisecond)
	rig.Drain()
	if f.Latencies.Count() == 0 {
		t.Fatal("no latency samples")
	}
	if f.Latencies.Mean() < 100*time.Microsecond {
		t.Fatalf("mean latency %v implausibly low for flash", f.Latencies.Mean())
	}
}

func TestOctoSSDAvoidsInterconnect(t *testing.T) {
	// The OctoSSD extension: with dual-port drives and local-port
	// routing, fio's data never crosses UPI, so saturating STREAM
	// leaves it untouched.
	heavySingle, _ := runFio(t, 10, nvme.SinglePath, true)
	heavyOcto, _ := runFio(t, 10, nvme.OctoSSD, true)
	if heavyOcto <= heavySingle*1.05 {
		t.Fatalf("OctoSSD should beat single-path under UPI load: %.2f vs %.2f GB/s", heavyOcto, heavySingle)
	}
	solo, _ := runFio(t, 0, nvme.OctoSSD, true)
	if heavyOcto/solo < 0.9 {
		t.Fatalf("OctoSSD under STREAM = %.2f of solo, want ~1.0", heavyOcto/solo)
	}
}

func TestNVMeWritesWork(t *testing.T) {
	rig := core.NewStorageRig(core.StorageConfig{Drives: 1, SSDNode: 0})
	cfg := FioConfig{Cores: []topology.CoreID{0}, QueueDepth: 8, BlockSize: 64 * 1024, Write: true}
	f := StartFio(rig, cfg)
	rig.Run(20 * time.Millisecond)
	f.MeasureStart()
	rig.Run(50 * time.Millisecond)
	gbs := FioGBs(f.Bytes(), 50*time.Millisecond)
	drv := rig.Drives[0]
	rig.Drain()
	if drv.Controller().Writes() == 0 {
		t.Fatal("no writes completed")
	}
	if gbs > 2.2 {
		t.Fatalf("write throughput %.2f GB/s exceeds flash write bandwidth", gbs)
	}
}
