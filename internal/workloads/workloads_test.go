package workloads

import (
	"testing"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/driver"
	"ioctopus/internal/eth"
	"ioctopus/internal/metrics"
	"ioctopus/internal/topology"
)

func TestStreamRxMeasures(t *testing.T) {
	cl := core.NewCluster(core.Config{Mode: core.ModeIOctopus})
	w := StartStream(cl, StreamConfig{
		MsgSize: 64 * 1024, Direction: Rx,
		ServerCores: []topology.CoreID{0},
		ServerIP:    core.IPServerPF0,
	})
	cl.Run(5 * time.Millisecond)
	w.MeasureStart()
	cl.Run(10 * time.Millisecond)
	gbps := metrics.Gbps(float64(w.Bytes()), 10*time.Millisecond)
	cl.Drain()
	if gbps < 10 {
		t.Fatalf("stream Rx = %.1f Gb/s, too slow", gbps)
	}
}

func TestStreamTxDirection(t *testing.T) {
	cl := core.NewCluster(core.Config{Mode: core.ModeStandard})
	w := StartStream(cl, StreamConfig{
		MsgSize: 64 * 1024, Direction: Tx,
		ServerCores: []topology.CoreID{0},
		ClientCores: []topology.CoreID{0},
		ServerIP:    core.IPServerPF0,
	})
	cl.Run(5 * time.Millisecond)
	w.MeasureStart()
	cl.Run(10 * time.Millisecond)
	gbps := metrics.Gbps(float64(w.Bytes()), 10*time.Millisecond)
	cl.Drain()
	if gbps < 25 {
		t.Fatalf("stream Tx = %.1f Gb/s, want ~45", gbps)
	}
}

func TestMultiInstanceStreamScales(t *testing.T) {
	cl := core.NewCluster(core.Config{Mode: core.ModeIOctopus})
	w := StartStream(cl, StreamConfig{
		MsgSize: 64 * 1024, Direction: Rx,
		ServerCores: []topology.CoreID{0, 1, 2, 3, 14, 15, 16, 17},
		ClientCores: []topology.CoreID{0, 1, 2, 3, 4, 5, 6, 7},
		ServerIP:    core.IPServerPF0,
	})
	cl.Run(5 * time.Millisecond)
	w.MeasureStart()
	cl.Run(10 * time.Millisecond)
	gbps := metrics.Gbps(float64(w.Bytes()), 10*time.Millisecond)
	cl.Drain()
	// Eight single-core flows should push well past one flow's ~23.
	if gbps < 60 {
		t.Fatalf("8-instance Rx = %.1f Gb/s, want near line rate", gbps)
	}
}

func TestRRLatencyLocalVsRemote(t *testing.T) {
	run := func(serverCore topology.CoreID) time.Duration {
		cl := core.NewCluster(core.Config{Mode: core.ModeStandard, DisableCoalescing: true})
		w := StartRR(cl, RRConfig{
			MsgSize: 64, ServerCore: serverCore, ClientCore: 0,
			ServerIP: core.IPServerPF0,
		})
		cl.Run(2 * time.Millisecond)
		w.MeasureStart()
		cl.Run(20 * time.Millisecond)
		cl.Drain()
		if w.Transactions() < 50 {
			t.Fatalf("only %d transactions", w.Transactions())
		}
		return w.Mean()
	}
	ll := run(0)
	rr := run(14)
	ratio := float64(rr) / float64(ll)
	if ratio < 1.03 || ratio > 1.45 {
		t.Fatalf("rr/ll latency = %.3f (ll=%v rr=%v), want ~1.10-1.25", ratio, ll, rr)
	}
}

func TestSockperfUDPLatency(t *testing.T) {
	cl := core.NewCluster(core.Config{Mode: core.ModeStandard, DisableCoalescing: true})
	w := StartRR(cl, RRConfig{
		MsgSize: 64, ServerCore: 0, ClientCore: 0,
		ServerIP: core.IPServerPF0, Proto: eth.ProtoUDP,
	})
	cl.Run(2 * time.Millisecond)
	w.MeasureStart()
	cl.Run(10 * time.Millisecond)
	cl.Drain()
	if w.Transactions() == 0 {
		t.Fatal("no UDP transactions")
	}
	if w.Hist.Percentile(99) < w.Hist.Percentile(50) {
		t.Fatal("percentiles not ordered")
	}
}

func TestPktgenLocalBeatsRemote(t *testing.T) {
	run := func(coreID topology.CoreID) float64 {
		cl := core.NewCluster(core.Config{Mode: core.ModeStandard})
		dev := cl.Dev0.(*driver.Standard) // PF0 on node 0
		w := StartPktgen(cl, dev, DefaultPktgenConfig(coreID, 64))
		cl.Run(2 * time.Millisecond)
		w.MeasureStart()
		cl.Run(10 * time.Millisecond)
		cl.Drain()
		return float64(w.Packets()) / 0.010 / 1e6 // MPPS
	}
	local := run(0)
	remote := run(14)
	if local < 2.5 || local > 6 {
		t.Fatalf("local pktgen = %.2f MPPS, want ~4.1", local)
	}
	ratio := local / remote
	if ratio < 1.15 || ratio > 1.7 {
		t.Fatalf("local/remote = %.2f (%.2f vs %.2f MPPS), want ~1.33", ratio, local, remote)
	}
}

func TestAntagonistDegradesRemoteStream(t *testing.T) {
	run := func(pairs int) float64 {
		cl := core.NewCluster(core.Config{Mode: core.ModeStandard})
		w := StartStream(cl, StreamConfig{
			MsgSize: 64 * 1024, Direction: Rx,
			ServerCores: []topology.CoreID{14}, // remote to PF0
			ServerIP:    core.IPServerPF0,
		})
		var ant *Antagonist
		if pairs > 0 {
			ant = StartAntagonist(cl.Server, DefaultAntagonistConfig(pairs))
		}
		cl.Run(5 * time.Millisecond)
		w.MeasureStart()
		cl.Run(10 * time.Millisecond)
		cl.Drain()
		if ant != nil && ant.Rate() == 0 {
			t.Fatal("antagonist moved no data")
		}
		return metrics.Gbps(float64(w.Bytes()), 10*time.Millisecond)
	}
	solo := run(0)
	loaded := run(6)
	if loaded >= solo*0.8 {
		t.Fatalf("6 STREAM pairs should crush remote Rx: %.1f -> %.1f Gb/s", solo, loaded)
	}
}

func TestAntagonistStopRestores(t *testing.T) {
	cl := core.NewCluster(core.Config{Mode: core.ModeStandard})
	ant := StartAntagonist(cl.Server, DefaultAntagonistConfig(3))
	cl.Run(time.Millisecond)
	if ant.Rate() == 0 {
		t.Fatal("antagonist idle")
	}
	ant.Stop()
	if ant.Rate() != 0 {
		t.Fatal("Stop did not remove flows")
	}
	if u := cl.Server.Fabric.Utilization(0, 1); u > 0.05 {
		t.Fatalf("fabric still loaded after Stop: %.2f", u)
	}
	cl.Drain()
}

func TestPageRankRuntimeScalesWithContention(t *testing.T) {
	solo := func() time.Duration {
		cl := core.NewCluster(core.Config{Mode: core.ModeStandard})
		cfg := DefaultPageRankConfig()
		cfg.WorkBytesPerThread = 100e6 // shrink for test speed
		pr := StartPageRank(cl.Server, cfg)
		cl.Run(2 * time.Second)
		cl.Drain()
		if !pr.Done() {
			t.Fatal("pagerank did not finish")
		}
		return pr.Runtime()
	}()
	contended := func() time.Duration {
		cl := core.NewCluster(core.Config{Mode: core.ModeStandard})
		cfg := DefaultPageRankConfig()
		cfg.WorkBytesPerThread = 100e6
		pr := StartPageRank(cl.Server, cfg)
		StartAntagonist(cl.Server, DefaultAntagonistConfig(6))
		cl.Run(5 * time.Second)
		cl.Drain()
		if !pr.Done() {
			t.Fatal("contended pagerank did not finish")
		}
		return pr.Runtime()
	}()
	if contended <= solo {
		t.Fatalf("contention should slow PageRank: %v vs %v", solo, contended)
	}
}

func TestMemcachedServesGetsAndSets(t *testing.T) {
	cl := core.NewCluster(core.Config{Mode: core.ModeIOctopus})
	cfg := DefaultMemcachedConfig(0, cl)
	cfg.SetRatio = 0.5
	cfg.ClientCores = cfg.ClientCores[:4] // lighter for the test
	cfg.ServerCores = cfg.ServerCores[:4]
	w := StartMemcached(cl, cfg)
	cl.Run(10 * time.Millisecond)
	w.MeasureStart()
	cl.Run(30 * time.Millisecond)
	txns := w.Transactions()
	cl.Drain()
	if txns == 0 {
		t.Fatal("no memcached transactions completed")
	}
	// Slab must show memory activity (values exceed the LLC).
	if cl.Server.Mem.TotalDRAMBytes() == 0 {
		t.Fatal("memcached working set should touch DRAM")
	}
}

func TestMemcachedRemoteSlower(t *testing.T) {
	run := func(node topology.NodeID) uint64 {
		cl := core.NewCluster(core.Config{Mode: core.ModeStandard})
		cfg := DefaultMemcachedConfig(node, cl)
		cfg.SetRatio = 1.0 // SETs maximize the Rx-side NUDMA penalty
		cfg.ClientCores = cfg.ClientCores[:6]
		cfg.ServerCores = cfg.ServerCores[:6]
		w := StartMemcached(cl, cfg)
		cl.Run(10 * time.Millisecond)
		w.MeasureStart()
		cl.Run(40 * time.Millisecond)
		cl.Drain()
		return w.Transactions()
	}
	local := run(0)
	remote := run(1)
	if local == 0 || remote == 0 {
		t.Fatalf("no transactions: local=%d remote=%d", local, remote)
	}
	if float64(local)/float64(remote) < 1.02 {
		t.Fatalf("local/remote = %.3f (%d vs %d), want > 1", float64(local)/float64(remote), local, remote)
	}
}

// TestTxAppCorePlacementDerivesFromTopology pins the fix for the
// hardcoded `% 14` wrap: the Tx sink's app core must be the next core
// on the sink's own node for any topology, not an id modulo the
// Broadwell core count.
func TestTxAppCorePlacementDerivesFromTopology(t *testing.T) {
	topo := topology.DualBroadwell()
	cases := []struct {
		sink, want topology.CoreID
	}{
		{0, 1},   // node 0 interior
		{13, 0},  // node 0 boundary wraps within node 0, not onto 14
		{15, 16}, // node 1 interior (old code said (15+1)%14 = 2: node 0!)
		{27, 14}, // node 1 boundary wraps back to node 1's first core
	}
	for _, c := range cases {
		if got := nextCoreOn(topo, c.sink); got != c.want {
			t.Errorf("nextCoreOn(dual-broadwell, %d) = %d, want %d", c.sink, got, c.want)
		}
	}
	small := topology.SingleSocket(4)
	if got := nextCoreOn(small, 3); got != 0 {
		t.Errorf("nextCoreOn(single-socket-4, 3) = %d, want 0", got)
	}
}

// TestStreamTxOnSmallTopology runs the Tx path end to end on a client
// with fewer cores than the hardcoded wrap assumed; before the fix the
// derived app core did not exist and Spawn panicked.
func TestStreamTxOnSmallTopology(t *testing.T) {
	cl := core.NewCluster(core.Config{
		Mode:       core.ModeStandard,
		ClientTopo: topology.SingleSocket(4),
	})
	w := StartStream(cl, StreamConfig{
		MsgSize: 64 * 1024, Direction: Tx,
		ServerCores: []topology.CoreID{0},
		ClientCores: []topology.CoreID{3}, // last client core: wrap required
		ServerIP:    core.IPServerPF0,
	})
	cl.Run(5 * time.Millisecond)
	w.MeasureStart()
	cl.Run(10 * time.Millisecond)
	cl.Drain()
	if w.Bytes() == 0 {
		t.Fatal("Tx stream on a 4-core client made no progress")
	}
	if errs := w.Errors(); len(errs) != 0 {
		t.Fatalf("unexpected workload errors: %v", errs)
	}
}

// TestStreamDefaultClientCoresFollowTopology: the default client-core
// pool must be sized by the client's actual node-0 core count.
func TestStreamDefaultClientCoresFollowTopology(t *testing.T) {
	cl := core.NewCluster(core.Config{
		Mode:       core.ModeIOctopus,
		ClientTopo: topology.SingleSocket(2),
	})
	w := StartStream(cl, StreamConfig{
		MsgSize: 64 * 1024, Direction: Rx,
		ServerCores: []topology.CoreID{0, 1, 2},
		ServerIP:    core.IPServerPF0,
	})
	cl.Run(5 * time.Millisecond)
	w.MeasureStart()
	cl.Run(10 * time.Millisecond)
	cl.Drain()
	if w.Bytes() == 0 {
		t.Fatal("stream with defaulted client cores on a 2-core client made no progress")
	}
}

// TestDialFailureIsRecordedNotFatal: a workload whose connect phase
// cannot reach the server must record the failure for the run's checks
// instead of panicking the process.
func TestDialFailureIsRecordedNotFatal(t *testing.T) {
	const unroutable = 0x0B0B0B0B // 11.11.11.11: no device owns it

	t.Run("stream", func(t *testing.T) {
		cl := core.NewCluster(core.Config{Mode: core.ModeIOctopus})
		w := StartStream(cl, StreamConfig{
			MsgSize: 64 * 1024, Direction: Rx,
			ServerCores: []topology.CoreID{0},
			ServerIP:    unroutable,
		})
		cl.Run(5 * time.Millisecond)
		cl.Drain()
		if errs := w.Errors(); len(errs) == 0 {
			t.Fatal("dial failure left Errors() empty")
		}
		if w.Bytes() != 0 {
			t.Fatalf("unconnected stream claims %d bytes", w.Bytes())
		}
	})

	t.Run("rr", func(t *testing.T) {
		cl := core.NewCluster(core.Config{Mode: core.ModeIOctopus})
		w := StartRR(cl, RRConfig{
			MsgSize: 64, ServerCore: 0, ClientCore: 0, ServerIP: unroutable,
		})
		cl.Run(5 * time.Millisecond)
		cl.Drain()
		if errs := w.Errors(); len(errs) == 0 {
			t.Fatal("dial failure left Errors() empty")
		}
	})

	t.Run("memcached", func(t *testing.T) {
		cl := core.NewCluster(core.Config{Mode: core.ModeIOctopus})
		cfg := DefaultMemcachedConfig(0, cl)
		cfg.ServerIP = unroutable
		cfg.ClientCores = cfg.ClientCores[:2]
		w := StartMemcached(cl, cfg)
		cl.Run(5 * time.Millisecond)
		cl.Drain()
		if errs := w.Errors(); len(errs) == 0 {
			t.Fatal("dial failure left Errors() empty")
		}
	})
}
