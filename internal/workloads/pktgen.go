package workloads

import (
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/netstack"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// RawTxDevice is the driver surface pktgen needs: the socket-bypassing
// transmit path plus the XPS queue map. Both drivers provide it.
type RawTxDevice interface {
	netstack.NetDevice
	RawTx(t *kernel.Thread, pkt *netstack.Packet, txq int)
}

// PktgenConfig configures the in-kernel packet generator (§5.1.1,
// Figure 8): one kernel thread blasting identical packets at a device
// queue, in batches, reusing the same payload buffer.
type PktgenConfig struct {
	Core    topology.CoreID
	PktSize int64
	// Batch is packets per burst (pktgen's burst/clone_skb behaviour).
	Batch int
	// PerPacketCost is pktgen's own per-packet CPU work (skb setup,
	// counters) — excludes descriptor/doorbell/completion costs, which
	// the driver and memory system charge.
	PerPacketCost time.Duration
	// MaxOutstanding bounds unreaped bursts (ring occupancy control).
	MaxOutstanding int
}

// DefaultPktgenConfig returns the calibrated defaults for the figure.
func DefaultPktgenConfig(coreID topology.CoreID, pktSize int64) PktgenConfig {
	return PktgenConfig{
		Core:           coreID,
		PktSize:        pktSize,
		Batch:          64,
		PerPacketCost:  150 * time.Nanosecond,
		MaxOutstanding: 8,
	}
}

// Pktgen is a running packet generator.
type Pktgen struct {
	cfg      PktgenConfig
	sent     uint64 // packets fully transmitted (completion reaped)
	baseline uint64
}

// StartPktgen launches the generator on the server, transmitting
// through dev toward the client NIC.
func StartPktgen(cl *core.Cluster, dev RawTxDevice, cfg PktgenConfig) *Pktgen {
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 8
	}
	w := &Pktgen{cfg: cfg}
	node := cl.Server.Topo.NodeOf(cfg.Core)
	// The payload region pktgen clones from: written once, then reused
	// (hot in the sender's LLC — the Figure 8 setup).
	payload := cl.Server.Mem.NewBuffer("pktgen-payload", node, cfg.PktSize*int64(cfg.Batch))

	cl.Server.Kernel.Spawn("pktgen", cfg.Core, func(th *kernel.Thread) {
		// Initialize the payload (allocates it into the LLC).
		th.ExecFn(func() time.Duration {
			return cl.Server.Mem.CPUWrite(th.Node(), payload, payload.Size())
		})
		outstanding := 0
		sig := sim.NewSignal(cl.Eng)
		flow := eth.FiveTuple{SrcIP: core.IPServerPF0, DstIP: core.IPClient, SrcPort: 9, DstPort: 9, Proto: eth.ProtoUDP}
		txq := dev.TxQueueForCore(cfg.Core)
		// pktgen clones the same skb every burst: build the packet and
		// its completion callback once and hand the driver the same
		// scratch object (RawTx copies before returning).
		pkt := &netstack.Packet{
			Flow:        flow,
			DstMAC:      cl.ClientDev.HWAddr(),
			Payload:     cfg.PktSize * int64(cfg.Batch),
			Packets:     cfg.Batch,
			Descriptors: cfg.Batch,
			Frags:       []netstack.Frag{{Buf: payload, Bytes: cfg.PktSize * int64(cfg.Batch)}},
			Proto:       eth.ProtoUDP,
		}
		pkt.OnSent = func() {
			outstanding--
			w.sent += uint64(cfg.Batch)
			sig.Broadcast()
		}
		for {
			for outstanding >= cfg.MaxOutstanding {
				th.Wait(sig)
			}
			outstanding++
			th.Exec(time.Duration(cfg.Batch) * cfg.PerPacketCost)
			dev.RawTx(th, pkt, txq)
		}
	})
	return w
}

// MeasureStart marks the measurement window start.
func (w *Pktgen) MeasureStart() { w.baseline = w.sent }

// Packets returns packets transmitted since MeasureStart.
func (w *Pktgen) Packets() uint64 { return w.sent - w.baseline }

// PayloadBytes returns payload bytes transmitted since MeasureStart.
func (w *Pktgen) PayloadBytes() int64 { return int64(w.Packets()) * w.cfg.PktSize }
