// Package workloads implements the benchmark programs of §5's
// evaluation: netperf (TCP_STREAM and TCP_RR), pktgen, sockperf,
// memcached driven by memslap, the STREAM memory-bandwidth antagonist,
// and a GAP-style PageRank victim. Each drives the full simulated
// datapath; the experiments package composes them into the paper's
// figures.
package workloads

import (
	"fmt"
	"sync"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/metrics"
	"ioctopus/internal/netstack"
	"ioctopus/internal/topology"
)

// errList collects workload-goroutine failures (a Dial refused because
// the run's fault plan or topology broke the path) so the harness can
// fail the run's checks instead of the goroutine crashing the process.
// It is mutex-guarded: a workload's dialing threads all live on one
// host (one engine shard), but cheap safety here beats an invariant
// comment three packages away.
type errList struct {
	mu   sync.Mutex
	errs []string
}

func (el *errList) add(format string, args ...any) {
	el.mu.Lock()
	el.errs = append(el.errs, fmt.Sprintf(format, args...))
	el.mu.Unlock()
}

// all returns the recorded failures, oldest first.
func (el *errList) all() []string {
	el.mu.Lock()
	defer el.mu.Unlock()
	return append([]string(nil), el.errs...)
}

// nextCoreOn returns the core after c on c's own node, wrapping within
// that node — the testbed's "softirq core and app core are neighbours"
// placement, derived from the topology instead of a hardcoded
// cores-per-host constant.
func nextCoreOn(topo *topology.Server, c topology.CoreID) topology.CoreID {
	peers := topo.CoresOn(topo.NodeOf(c))
	for i, p := range peers {
		if p.ID == c {
			return peers[(i+1)%len(peers)].ID
		}
	}
	return c
}

// Direction of a stream test, from the server's perspective.
type Direction int

// Directions.
const (
	// Rx: the server receives (netperf TCP_STREAM toward the server).
	Rx Direction = iota
	// Tx: the server transmits (TCP_STREAM toward the client).
	Tx
)

// StreamConfig configures a netperf TCP_STREAM instance set.
type StreamConfig struct {
	// MsgSize is the netperf buffer size per send/recv call.
	MsgSize int64
	// Direction is Rx (server receives) or Tx (server transmits).
	Direction Direction
	// ServerCores pins one netserver instance per entry.
	ServerCores []topology.CoreID
	// ClientCores pins the matching netperf instances (client machine).
	ClientCores []topology.CoreID
	// ServerIP selects the server netdevice (PF0/PF1 under standard
	// firmware).
	ServerIP uint32
	// Port is the base control port (each instance uses Port+i).
	Port uint16
}

// Stream is a running TCP_STREAM workload.
type Stream struct {
	cfg      StreamConfig
	received []int64 // per instance, measured at the receiving app
	baseline []int64
	errs     errList
}

// StartStream launches the instances. Call MeasureStart after warmup
// and Bytes at the end of the window.
func StartStream(cl *core.Cluster, cfg StreamConfig) *Stream {
	if cfg.Port == 0 {
		cfg.Port = 12000
	}
	if len(cfg.ClientCores) == 0 {
		// Default placement: the client's NIC-local (node 0) cores,
		// round-robin — sized by the actual topology, not a hardcoded
		// cores-per-host count.
		pool := cl.Client.Topo.CoresOn(0)
		cfg.ClientCores = make([]topology.CoreID, len(cfg.ServerCores))
		for i := range cfg.ClientCores {
			cfg.ClientCores[i] = pool[i%len(pool)].ID
		}
	}
	w := &Stream{
		cfg:      cfg,
		received: make([]int64, len(cfg.ServerCores)),
		baseline: make([]int64, len(cfg.ServerCores)),
	}
	for i := range cfg.ServerCores {
		i := i
		port := cfg.Port + uint16(i)
		switch cfg.Direction {
		case Rx:
			// Server receives: netserver sink on the server core.
			cl.Server.Stack.Listen(port, func(s *netstack.Socket) {
				cl.Server.Kernel.Spawn("netserver", cfg.ServerCores[i], func(th *kernel.Thread) {
					s.SetOwner(th)
					for {
						n, _, ok := s.Recv(th)
						if !ok {
							return
						}
						w.received[i] += n
					}
				})
			})
			cl.Client.Kernel.Spawn("netperf", cfg.ClientCores[i], func(th *kernel.Thread) {
				sock, err := cl.Client.Stack.Dial(th, cfg.ServerIP, port, eth.ProtoTCP)
				if err != nil {
					w.errs.add("netperf instance %d: %v", i, err)
					return
				}
				for {
					sock.Send(th, cfg.MsgSize)
				}
			})
		case Tx:
			// Server transmits: sink on the client; per the testbed the
			// client splits softirq and app across the sink's NUMA-local
			// cores.
			sinkCore := cfg.ClientCores[i]
			appCore := nextCoreOn(cl.Client.Topo, sinkCore)
			cl.Client.Stack.Listen(port, func(s *netstack.Socket) {
				s.SteerTo(sinkCore)
				cl.Client.Kernel.Spawn("netserver", appCore, func(th *kernel.Thread) {
					for {
						n, _, ok := s.Recv(th)
						if !ok {
							return
						}
						w.received[i] += n
					}
				})
			})
			cl.Server.Kernel.Spawn("netperf", cfg.ServerCores[i], func(th *kernel.Thread) {
				sock, err := cl.Server.Stack.Dial(th, core.IPClient, port, eth.ProtoTCP)
				if err != nil {
					w.errs.add("netperf instance %d: %v", i, err)
					return
				}
				for {
					sock.Send(th, cfg.MsgSize)
				}
			})
		}
	}
	return w
}

// MeasureStart marks the beginning of the measurement window.
func (w *Stream) MeasureStart() {
	copy(w.baseline, w.received)
}

// Bytes returns application bytes moved since MeasureStart, summed
// over instances.
func (w *Stream) Bytes() int64 {
	var total int64
	for i, r := range w.received {
		total += r - w.baseline[i]
	}
	return total
}

// Errors returns failures recorded by the workload's goroutines (a
// refused Dial, a missing route); a non-empty list must fail the run's
// checks. Read it after the simulation window, not mid-run.
func (w *Stream) Errors() []string { return w.errs.all() }

// RRConfig configures a netperf TCP_RR (request/response) instance.
type RRConfig struct {
	MsgSize    int64
	ServerCore topology.CoreID
	ClientCore topology.CoreID
	ServerIP   uint32
	Port       uint16
	Proto      uint8 // eth.ProtoTCP (netperf TCP_RR) or eth.ProtoUDP (sockperf)
}

// RR is a running request/response workload.
type RR struct {
	Hist      *metrics.Histogram
	measuring bool
	errs      errList
}

// StartRR launches the ping-pong pair. Call MeasureStart after warmup;
// Hist then accumulates round-trip samples.
func StartRR(cl *core.Cluster, cfg RRConfig) *RR {
	if cfg.Port == 0 {
		cfg.Port = 13000
	}
	if cfg.Proto == 0 {
		cfg.Proto = eth.ProtoTCP
	}
	w := &RR{Hist: &metrics.Histogram{}}
	cl.Server.Stack.Listen(cfg.Port, func(s *netstack.Socket) {
		cl.Server.Kernel.Spawn("rr-echo", cfg.ServerCore, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				s.SendMsg(th, n, nil)
			}
		})
	})
	cl.Client.Kernel.Spawn("rr-client", cfg.ClientCore, func(th *kernel.Thread) {
		sock, err := cl.Client.Stack.Dial(th, cfg.ServerIP, cfg.Port, cfg.Proto)
		if err != nil {
			w.errs.add("rr client: %v", err)
			return
		}
		for {
			t0 := th.Now()
			sock.SendMsg(th, cfg.MsgSize, nil)
			var got int64
			for got < cfg.MsgSize {
				n, _, ok := sock.Recv(th)
				if !ok {
					return
				}
				got += n
			}
			if w.measuring {
				w.Hist.Add(th.Now().Sub(t0))
			}
		}
	})
	return w
}

// MeasureStart begins recording round trips.
func (w *RR) MeasureStart() { w.measuring = true }

// MeasureStop pauses recording.
func (w *RR) MeasureStop() { w.measuring = false }

// Transactions returns completed measured round trips.
func (w *RR) Transactions() int { return w.Hist.Count() }

// Mean returns the mean measured RTT.
func (w *RR) Mean() time.Duration { return w.Hist.Mean() }

// Errors returns failures recorded by the workload's goroutines.
func (w *RR) Errors() []string { return w.errs.all() }
