package workloads

import (
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/netstack"
	"ioctopus/internal/topology"
)

// MemcachedConfig configures the key-value experiment of §5.1.3: one
// memcached server accessed by memslap clients, 256-byte keys and
// 512 KB values, with a configurable SET ratio.
type MemcachedConfig struct {
	// ServerCores hosts one worker thread per entry; connections are
	// assigned round-robin.
	ServerCores []topology.CoreID
	// ClientCores hosts one memslap instance per entry (paper: 14, one
	// per core of one client CPU).
	ClientCores []topology.CoreID
	KeySize     int64
	ValueSize   int64
	// SetRatio is the fraction of SET operations (0..1).
	SetRatio float64
	ServerIP uint32
	Port     uint16
	// OpCost is per-operation server work beyond the data movement
	// (hashing, slab/LRU bookkeeping, locking, the many small syscalls
	// a 512 KB value takes).
	OpCost time.Duration
	// SlabBytes sizes the value store (working set >> LLC).
	SlabBytes int64
	// Pipeline is how many requests each memslap keeps in flight
	// (memslap's concurrency), so the server, not the request-response
	// round trip, sets the pace.
	Pipeline int
}

// DefaultMemcachedConfig returns the paper's workload shape.
func DefaultMemcachedConfig(serverNode topology.NodeID, cl *core.Cluster) MemcachedConfig {
	var serverCores, clientCores []topology.CoreID
	for _, c := range cl.Server.Topo.CoresOn(serverNode) {
		serverCores = append(serverCores, c.ID)
	}
	for _, c := range cl.Client.Topo.CoresOn(0) {
		clientCores = append(clientCores, c.ID)
	}
	return MemcachedConfig{
		ServerCores: serverCores,
		ClientCores: clientCores,
		KeySize:     256,
		ValueSize:   512 * 1024,
		SetRatio:    0,
		ServerIP:    core.IPServerPF0,
		Port:        11211,
		OpCost:      900 * time.Microsecond,
		SlabBytes:   256 << 20,
		Pipeline:    1,
	}
}

// mcReq is the request header carried as segment metadata.
type mcReq struct {
	set   bool
	total int64 // request payload bytes (key, + value for SET)
}

// mcResp is the response header.
type mcResp struct {
	total int64
}

// Memcached is a running memcached+memslap workload.
type Memcached struct {
	cfg      MemcachedConfig
	txns     uint64
	baseline uint64
	slab     *memsys.Buffer
	errs     errList
}

// StartMemcached launches server and clients.
func StartMemcached(cl *core.Cluster, cfg MemcachedConfig) *Memcached {
	if cfg.Port == 0 {
		cfg.Port = 11211
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 1
	}
	w := &Memcached{cfg: cfg}
	serverNode := cl.Server.Topo.NodeOf(cfg.ServerCores[0])
	w.slab = cl.Server.Mem.NewBuffer("mc-slab", serverNode, cfg.SlabBytes).SetRandomAccess(true)

	// Server: one worker thread per accepted connection, round-robin
	// over the configured cores.
	next := 0
	cl.Server.Stack.Listen(cfg.Port, func(s *netstack.Socket) {
		coreID := cfg.ServerCores[next%len(cfg.ServerCores)]
		next++
		cl.Server.Kernel.Spawn("memcached", coreID, func(th *kernel.Thread) {
			s.SetOwner(th)
			var acc int64
			var cur *mcReq
			for {
				n, meta, ok := s.Recv(th)
				if !ok {
					return
				}
				if cur == nil {
					req, isReq := meta.(*mcReq)
					if !isReq {
						continue // stray segment
					}
					cur = req
				}
				acc += n
				if acc < cur.total {
					continue
				}
				req := cur
				cur, acc = nil, 0
				th.Exec(cfg.OpCost)
				if req.set {
					// Store the value into the slab.
					th.ExecFn(func() time.Duration {
						return cl.Server.Mem.CPUWrite(th.Node(), w.slab, cfg.ValueSize)
					})
					s.SendMsg(th, 64, &mcResp{total: 64})
				} else {
					// Serve the value from the slab.
					s.SendMsgFrom(th, w.slab, cfg.ValueSize, &mcResp{total: cfg.ValueSize})
				}
			}
		})
	})

	// Clients: memslap instances.
	for i, coreID := range cfg.ClientCores {
		i := i
		cl.Client.Kernel.Spawn("memslap", coreID, func(th *kernel.Thread) {
			sock, err := cl.Client.Stack.Dial(th, cfg.ServerIP, cfg.Port, eth.ProtoTCP)
			if err != nil {
				w.errs.add("memslap instance %d: %v", i, err)
				return
			}
			rng := cl.RNG.Fork(int64(i))
			// Pipelined request issue: keep cfg.Pipeline requests in
			// flight; responses reassemble in order on the socket.
			pendingWant := make([]int64, 0, cfg.Pipeline)
			issue := func() {
				set := rng.Bernoulli(cfg.SetRatio)
				if set {
					sock.SendMsg(th, cfg.KeySize+cfg.ValueSize, &mcReq{set: true, total: cfg.KeySize + cfg.ValueSize})
					pendingWant = append(pendingWant, 64)
				} else {
					sock.SendMsg(th, cfg.KeySize, &mcReq{set: false, total: cfg.KeySize})
					pendingWant = append(pendingWant, cfg.ValueSize)
				}
			}
			for {
				for len(pendingWant) < cfg.Pipeline {
					issue()
				}
				want := pendingWant[0]
				pendingWant = pendingWant[1:]
				var got int64
				for got < want {
					n, _, ok := sock.Recv(th)
					if !ok {
						return
					}
					got += n
				}
				w.txns++
			}
		})
	}
	return w
}

// MeasureStart marks the measurement window start.
func (w *Memcached) MeasureStart() { w.baseline = w.txns }

// Transactions returns operations completed since MeasureStart.
func (w *Memcached) Transactions() uint64 { return w.txns - w.baseline }

// Errors returns failures recorded by the workload's goroutines.
func (w *Memcached) Errors() []string { return w.errs.all() }
