package workloads

import (
	"fmt"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/kernel"
	"ioctopus/internal/memsys"
	"ioctopus/internal/metrics"
	"ioctopus/internal/nvme"
	"ioctopus/internal/topology"
)

// FioConfig configures the fio job of §5.4: threads performing
// asynchronous direct reads (page cache bypassed) at a fixed queue
// depth, round-robin across the drives.
type FioConfig struct {
	// Cores pins one fio thread per entry (paper: 8 threads on the node
	// remote from the SSDs).
	Cores []topology.CoreID
	// QueueDepth is outstanding requests per thread (paper: 32).
	QueueDepth int
	// BlockSize is the request size (paper: 128 KB).
	BlockSize int64
	// Write issues writes instead of reads.
	Write bool
}

// DefaultFioConfig returns the paper's job on the given cores.
func DefaultFioConfig(cores []topology.CoreID) FioConfig {
	return FioConfig{Cores: cores, QueueDepth: 32, BlockSize: 128 * 1024}
}

// Fio is a running fio job.
type Fio struct {
	cfg       FioConfig
	bytes     int64
	baseline  int64
	Latencies *metrics.Histogram
	measuring bool
}

// StartFio launches the job against the rig's drives. Each in-flight
// request owns a buffer homed on its thread's node; completions
// immediately resubmit, keeping the queue depth constant.
func StartFio(rig *core.StorageRig, cfg FioConfig) *Fio {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 128 * 1024
	}
	w := &Fio{cfg: cfg, Latencies: &metrics.Histogram{}}
	drives := rig.Drives
	for ti, coreID := range cfg.Cores {
		ti := ti
		coreID := coreID
		node := rig.Host.Topo.NodeOf(coreID)
		rig.Kernel().Spawn(fmt.Sprintf("fio%d", ti), coreID, func(th *kernel.Thread) {
			// One buffer per queue slot, homed on the fio node (direct
			// I/O into user memory).
			bufs := make([]*memsys.Buffer, cfg.QueueDepth)
			for i := range bufs {
				bufs[i] = rig.Mem().NewBuffer(fmt.Sprintf("fio%d.%d", ti, i), node, cfg.BlockSize)
			}
			var resubmit func(slot int)
			resubmit = func(slot int) {
				drv := drives[(ti+slot)%len(drives)]
				req := &nvme.Request{
					Write: cfg.Write,
					Bytes: cfg.BlockSize,
					Buf:   bufs[slot],
					OnComplete: func(r *nvme.Request) {
						w.bytes += r.Bytes
						if w.measuring {
							w.Latencies.Add(r.Latency())
						}
						resubmit(slot)
					},
				}
				drv.SubmitAsync(coreID, req)
			}
			// Prime the queue depth; completions keep it full. The
			// thread itself then idles (the async engine does the work
			// from completion context, like io_uring/libaio).
			for slot := 0; slot < cfg.QueueDepth; slot++ {
				resubmit(slot)
			}
		})
	}
	return w
}

// MeasureStart marks the measurement window start.
func (w *Fio) MeasureStart() {
	w.baseline = w.bytes
	w.measuring = true
}

// Bytes returns bytes completed since MeasureStart.
func (w *Fio) Bytes() int64 { return w.bytes - w.baseline }

// StartAntagonistOn places `count` STREAM instances on cpuNode, all
// targeting memory on memNode (the §5.4 placement: STREAM runs on the
// SSDs' node and targets the fio node's memory), alternating readers
// and writers.
func StartAntagonistOn(h *core.Host, count int, cpuNode, memNode topology.NodeID, cfg AntagonistConfig) *Antagonist {
	if cfg.DemandPerInstance <= 0 {
		cfg.DemandPerInstance = 8e9
	}
	a := &Antagonist{host: h}
	for i := 0; i < count; i++ {
		read := i%2 == 0
		a.instances = append(a.instances,
			a.addInstance(fmt.Sprintf("stream%d@%d", i, cpuNode), cpuNode, memNode, read, cfg))
	}
	return a
}

// FioGBs converts a fio byte window into GB/s.
func FioGBs(bytes int64, window time.Duration) float64 {
	return metrics.GBs(float64(bytes), window)
}
