package workloads

import (
	"fmt"
	"time"

	"ioctopus/internal/core"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// PageRankConfig configures the GAP-style parallel PageRank victim of
// §5.2: a multi-threaded, memory-bound graph kernel whose threads scan
// a graph spread across both NUMA nodes (interleaved pages), so its
// runtime tracks the memory and interconnect bandwidth it can get.
type PageRankConfig struct {
	// ThreadsPerNode pins this many threads on each socket (paper: 8).
	ThreadsPerNode int
	// WorkBytesPerThread is how much graph data each thread must stream
	// before the computation converges.
	WorkBytesPerThread float64
	// DemandPerThread is a thread's unconstrained memory rate.
	DemandPerThread float64
	// LocalFraction is the share of a thread's accesses that hit its
	// own node (interleaved graph: ~0.5 on two sockets).
	LocalFraction float64
	// LatencySensitivity scales how much memory/interconnect latency
	// inflation slows the kernel (0 = pure bandwidth-bound, 1 = fully
	// latency-bound; graph kernels with some MLP sit in between).
	LatencySensitivity float64
	// PollInterval is how often completion is checked.
	PollInterval time.Duration
}

// DefaultPageRankConfig returns testbed-like settings (~47 s solo
// runtime, matching Figure 13's scale).
func DefaultPageRankConfig() PageRankConfig {
	return PageRankConfig{
		ThreadsPerNode:     8,
		WorkBytesPerThread: 8e9,
		DemandPerThread:    3e9,
		LocalFraction:      0.5,
		LatencySensitivity: 0.35,
		PollInterval:       5 * time.Millisecond,
	}
}

// PageRank is a running (or finished) PageRank job.
type PageRank struct {
	host     *core.Host
	cfg      PageRankConfig
	started  sim.Time
	finished sim.Time
	pending  int
	done     bool
}

// prThread is one PageRank thread's flows and progress.
type prThread struct {
	node     topology.NodeID
	other    topology.NodeID
	local    *sim.FluidFlow
	remote   *sim.FluidFlow
	fabric   *sim.FluidFlow
	progress float64 // bytes of work completed
}

// advance accrues dt of progress. The thread streams at its achieved
// fluid rate, further derated by latency inflation on the resources it
// traverses: the kernel is partially latency-bound, so congestion slows
// it even when fair-share bandwidth remains (the Figure 13 effect).
func (pt *prThread) advance(pr *PageRank, dt float64) {
	sens := pr.cfg.LatencySensitivity
	derate := func(infl float64) float64 { return 1 / (1 + (infl-1)*sens) }
	mem := pr.host.Mem
	localRate := pt.local.Rate() * derate(mem.MemCtl(pt.node).Inflation())
	remInfl := mem.MemCtl(pt.other).Inflation()
	if f := pr.host.Fabric.Pipe(pt.other, pt.node).Inflation(); f > remInfl {
		remInfl = f
	}
	remoteRate := pt.remote.Rate()
	if fr := pt.fabric.Rate(); fr < remoteRate {
		remoteRate = fr
	}
	remoteRate *= derate(remInfl)
	pt.progress += (localRate + remoteRate) * dt
}

// StartPageRank launches the job on the host.
func StartPageRank(h *core.Host, cfg PageRankConfig) *PageRank {
	pr := &PageRank{host: h, cfg: cfg, started: h.Kernel.Engine().Now()}
	nodes := h.Topo.NumNodes()
	for n := 0; n < nodes; n++ {
		node := topology.NodeID(n)
		other := topology.NodeID((n + 1) % nodes)
		for i := 0; i < cfg.ThreadsPerNode; i++ {
			name := fmt.Sprintf("pr%d.%d", n, i)
			pt := &prThread{
				node:   node,
				other:  other,
				local:  h.Mem.MemCtl(node).AddFlow(name+":l", cfg.DemandPerThread*cfg.LocalFraction),
				remote: h.Mem.MemCtl(other).AddFlow(name+":r", cfg.DemandPerThread*(1-cfg.LocalFraction)),
				fabric: h.Fabric.AddFlow(name, other, node, cfg.DemandPerThread*(1-cfg.LocalFraction)),
			}
			pr.pending++
			pr.watch(pt)
		}
	}
	return pr
}

// watch polls one thread for completion.
func (pr *PageRank) watch(pt *prThread) {
	eng := pr.host.Kernel.Engine()
	var poll func()
	poll = func() {
		pt.advance(pr, pr.cfg.PollInterval.Seconds())
		if pt.progress >= pr.cfg.WorkBytesPerThread {
			pt.local.Remove()
			pt.remote.Remove()
			pt.fabric.Remove()
			pr.pending--
			if pr.pending == 0 {
				pr.done = true
				pr.finished = eng.Now()
			}
			return
		}
		eng.After(pr.cfg.PollInterval, poll)
	}
	eng.After(pr.cfg.PollInterval, poll)
}

// Done reports whether every thread finished.
func (pr *PageRank) Done() bool { return pr.done }

// Runtime returns the job's wall time (valid once Done).
func (pr *PageRank) Runtime() time.Duration {
	if !pr.done {
		return 0
	}
	return pr.finished.Sub(pr.started)
}
