package workloads

import (
	"fmt"
	"math"

	"ioctopus/internal/core"
	"ioctopus/internal/sim"
	"ioctopus/internal/topology"
)

// AntagonistConfig configures STREAM memory-bandwidth antagonists
// (§5.2): pairs of single-core STREAM instances that target memory
// remote to their CPU, one reading and one writing, saturating the
// interconnect and polluting the LLC.
type AntagonistConfig struct {
	// Pairs of (reader, writer) instances.
	Pairs int
	// DemandPerInstance is one instance's memory demand in bytes/sec
	// (single-core STREAM on the testbed: ~8-11 GB/s).
	DemandPerInstance float64
	// LLCPollutionFactor scales how much of an instance's bandwidth
	// allocates into its socket's LLC (1 = every line).
	LLCPollutionFactor float64
}

// DefaultAntagonistConfig returns testbed-calibrated settings.
func DefaultAntagonistConfig(pairs int) AntagonistConfig {
	return AntagonistConfig{
		Pairs:              pairs,
		DemandPerInstance:  11e9,
		LLCPollutionFactor: 1,
	}
}

// streamInstance is one running STREAM thread's resource registrations.
type streamInstance struct {
	fabricFlow *sim.FluidFlow
	memFlow    *sim.FluidFlow
	release    func()
}

// rate is the instance's achieved bandwidth: the minimum over the
// resources it traverses.
func (si *streamInstance) rate() float64 {
	return math.Min(si.fabricFlow.Rate(), si.memFlow.Rate())
}

func (si *streamInstance) bytes() float64 {
	return math.Min(si.fabricFlow.Bytes(), si.memFlow.Bytes())
}

// Antagonist is a running set of STREAM pairs on one host.
type Antagonist struct {
	host      *core.Host
	instances []*streamInstance
	baseline  float64
	stopped   bool
}

// StartAntagonist launches the STREAM pairs on the host. Pair i places
// its reader on node i%2 and its writer on the other node, each
// targeting remote memory, loading both interconnect directions and
// both memory controllers as the paper's co-location setup does.
func StartAntagonist(h *core.Host, cfg AntagonistConfig) *Antagonist {
	if cfg.DemandPerInstance <= 0 {
		cfg.DemandPerInstance = 8e9
	}
	a := &Antagonist{host: h}
	nodes := h.Topo.NumNodes()
	for p := 0; p < cfg.Pairs; p++ {
		readerNode := topology.NodeID(p % nodes)
		writerNode := topology.NodeID((p + 1) % nodes)
		a.instances = append(a.instances,
			a.addInstance(fmt.Sprintf("stream-r%d", p), readerNode, other(readerNode, nodes), true, cfg),
			a.addInstance(fmt.Sprintf("stream-w%d", p), writerNode, other(writerNode, nodes), false, cfg),
		)
	}
	return a
}

func other(n topology.NodeID, nodes int) topology.NodeID {
	return topology.NodeID((int(n) + 1) % nodes)
}

// addInstance registers one STREAM thread on cpuNode targeting memory
// on memNode.
func (a *Antagonist) addInstance(name string, cpuNode, memNode topology.NodeID, read bool, cfg AntagonistConfig) *streamInstance {
	h := a.host
	si := &streamInstance{}
	if read {
		// Data flows memNode -> cpuNode.
		si.fabricFlow = h.Fabric.AddFlow(name, memNode, cpuNode, cfg.DemandPerInstance)
	} else {
		// Writes flow cpuNode -> memNode.
		si.fabricFlow = h.Fabric.AddFlow(name, cpuNode, memNode, cfg.DemandPerInstance)
	}
	si.memFlow = h.Mem.MemCtl(memNode).AddFlow(name, cfg.DemandPerInstance)
	factor := cfg.LLCPollutionFactor
	if factor <= 0 {
		factor = 1
	}
	si.release = h.Mem.AddLLCPressure(cpuNode, cfg.DemandPerInstance*factor)
	return si
}

// Rate returns the aggregate achieved STREAM bandwidth (bytes/sec).
func (a *Antagonist) Rate() float64 {
	var r float64
	for _, si := range a.instances {
		r += si.rate()
	}
	return r
}

// MeasureStart marks the measurement window start.
func (a *Antagonist) MeasureStart() { a.baseline = a.Bytes() }

// Bytes returns aggregate bytes moved (absolute; subtract MeasureStart
// baseline via Window).
func (a *Antagonist) Bytes() float64 {
	var b float64
	for _, si := range a.instances {
		b += si.bytes()
	}
	return b
}

// WindowBytes returns bytes moved since MeasureStart.
func (a *Antagonist) WindowBytes() float64 { return a.Bytes() - a.baseline }

// Instances returns the instance count (2 per pair).
func (a *Antagonist) Instances() int { return len(a.instances) }

// Stop removes all flows and LLC pressure.
func (a *Antagonist) Stop() {
	if a.stopped {
		return
	}
	a.stopped = true
	for _, si := range a.instances {
		si.fabricFlow.Remove()
		si.memFlow.Remove()
		si.release()
	}
}
