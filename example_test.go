package ioctopus_test

import (
	"fmt"
	"time"

	"ioctopus"
)

// Example_nudma demonstrates the paper's core observation: the same
// single-core receive workload runs measurably slower — and floods DRAM
// — when its thread sits on the socket remote from the NIC's PCIe
// endpoint, and IOctopus removes the penalty.
func Example_nudma() {
	measure := func(mode ioctopus.NICMode, serverCore ioctopus.CoreID) (gbps float64, dramRatio float64) {
		cl := ioctopus.NewCluster(ioctopus.Config{Mode: mode})
		defer cl.Drain()
		var received int64
		cl.Server.Stack.Listen(7, func(s *ioctopus.Socket) {
			cl.Server.Kernel.Spawn("srv", serverCore, func(th *ioctopus.Thread) {
				s.SetOwner(th)
				for {
					n, _, ok := s.Recv(th)
					if !ok {
						return
					}
					received += n
				}
			})
		})
		cl.Client.Kernel.Spawn("cli", 0, func(th *ioctopus.Thread) {
			sock, err := cl.Client.Stack.Dial(th, ioctopus.IPServerPF0, 7, ioctopus.ProtoTCP)
			if err != nil {
				panic(err)
			}
			for {
				sock.Send(th, 64*1024)
			}
		})
		cl.Run(10 * time.Millisecond)
		cl.ResetStats()
		base := received
		window := 20 * time.Millisecond
		cl.Run(window)
		net := float64(received - base)
		return net * 8 / window.Seconds() / 1e9, cl.Server.Mem.TotalDRAMBytes() / net
	}

	local, localMem := measure(ioctopus.ModeStandard, 0)
	remote, remoteMem := measure(ioctopus.ModeStandard, 14)
	octo, _ := measure(ioctopus.ModeIOctopus, 14)

	fmt.Printf("local beats remote: %v\n", local > remote*1.1)
	fmt.Printf("remote moves ~3x its throughput in DRAM: %v\n", remoteMem > 2.5 && remoteMem < 4)
	fmt.Printf("local DRAM is near zero (DDIO): %v\n", localMem < 0.2)
	fmt.Printf("ioctopus on the remote socket matches local: %v\n", octo > local*0.95)
	// Output:
	// local beats remote: true
	// remote moves ~3x its throughput in DRAM: true
	// local DRAM is near zero (DDIO): true
	// ioctopus on the remote socket matches local: true
}

// Example_experiments reproduces a paper figure programmatically.
func Example_experiments() {
	res, err := ioctopus.RunExperiment("fig2", ioctopus.QuickDurations())
	if err != nil {
		panic(err)
	}
	fmt.Println(res.ID, res.Passed())
	// Output:
	// fig2 true
}
