// Keyvalue: the §5.1.3 scenario — a memcached-style store serving 512 KB
// values to 14 clients, comparing placements. With the octoNIC the
// operator can put the server's workers on either socket (or both)
// without thinking about which socket the NIC hangs off.
package main

import (
	"fmt"
	"time"

	"ioctopus"
)

func measure(mode ioctopus.NICMode, serverNode ioctopus.NodeID, setRatio float64) (ktps, memGBs float64) {
	cl := ioctopus.NewCluster(ioctopus.Config{Mode: mode, Seed: 42})
	defer cl.Drain()

	cfg := ioctopusMemcachedConfig(cl, serverNode)
	cfg.SetRatio = setRatio
	w := ioctopus.StartMemcached(cl, cfg)

	cl.Run(30 * time.Millisecond) // warmup
	cl.ResetStats()
	w.MeasureStart()
	window := 100 * time.Millisecond
	cl.Run(window)
	ktps = float64(w.Transactions()) / window.Seconds() / 1e3
	memGBs = cl.Server.Mem.TotalDRAMBytes() / window.Seconds() / 1e9
	return
}

// ioctopusMemcachedConfig builds the paper's workload: 14 memslap
// clients, 256 B keys, 512 KB values, workers on one socket.
func ioctopusMemcachedConfig(cl *ioctopus.Cluster, node ioctopus.NodeID) ioctopus.MemcachedConfig {
	var serverCores, clientCores []ioctopus.CoreID
	for _, c := range cl.Server.Topo.CoresOn(node) {
		serverCores = append(serverCores, c.ID)
	}
	for _, c := range cl.Client.Topo.CoresOn(0) {
		clientCores = append(clientCores, c.ID)
	}
	return ioctopus.MemcachedConfig{
		ServerCores: serverCores,
		ClientCores: clientCores,
		KeySize:     256,
		ValueSize:   512 * 1024,
		ServerIP:    ioctopus.IPServerPF0,
		Port:        11211,
		OpCost:      900 * time.Microsecond,
		SlabBytes:   256 << 20,
		Pipeline:    1,
	}
}

func main() {
	fmt.Println("memcached, 256 B keys / 512 KB values, 14 memslap clients (paper Fig 10)")
	fmt.Println()
	for _, set := range []float64{0, 0.5, 1.0} {
		// remote: standard firmware, workers on socket 1, NIC PF0 on
		// socket 0 — every SET's value crosses QPI.
		rk, rm := measure(ioctopus.ModeStandard, 1, set)
		// ioct: same worker placement, octoNIC — all DMA local.
		ik, im := measure(ioctopus.ModeIOctopus, 1, set)
		fmt.Printf("SET %3.0f%%:  remote %5.1f KT/s (DRAM %4.1f GB/s)   ioct %5.1f KT/s (DRAM %4.1f GB/s)   speedup %.2fx\n",
			set*100, rk, rm, ik, im, ik/rk)
	}
	fmt.Println()
	fmt.Println("the IOctopus advantage grows with the SET ratio: SETs are receive traffic,")
	fmt.Println("where remote DMA costs DRAM round trips and cache invalidations")
}
