// Quickstart: build the paper's testbed, run a single-core netperf-style
// TCP receive under all three configurations of §5 — local, remote, and
// IOctopus — and watch NUDMA appear and disappear.
package main

import (
	"fmt"
	"time"

	"ioctopus"
)

// receive runs a one-way client->server stream for `window` with the
// server app pinned to serverCore, returning throughput and the
// server's DRAM traffic in Gb/s.
func receive(mode ioctopus.NICMode, serverCore ioctopus.CoreID, window time.Duration) (gbps, memGbps float64) {
	cl := ioctopus.NewCluster(ioctopus.Config{Mode: mode})
	defer cl.Drain()

	var received int64
	cl.Server.Stack.Listen(7, func(s *ioctopus.Socket) {
		cl.Server.Kernel.Spawn("netserver", serverCore, func(th *ioctopus.Thread) {
			s.SetOwner(th) // steers the flow (ARFS / IOctoRFS) to this core
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				received += n
			}
		})
	})
	cl.Client.Kernel.Spawn("netperf", 0, func(th *ioctopus.Thread) {
		sock, err := cl.Client.Stack.Dial(th, ioctopus.IPServerPF0, 7, ioctopus.ProtoTCP)
		if err != nil {
			panic(err)
		}
		for {
			sock.Send(th, 64*1024)
		}
	})

	cl.Run(10 * time.Millisecond) // warmup
	cl.ResetStats()
	base := received
	cl.Run(window)
	gbps = float64(received-base) * 8 / window.Seconds() / 1e9
	memGbps = cl.Server.Mem.TotalDRAMBytes() * 8 / window.Seconds() / 1e9
	return
}

func main() {
	const window = 50 * time.Millisecond

	fmt.Println("single-core TCP receive, 64 KB messages (paper Fig 6, 64K column)")
	fmt.Println()

	// Standard firmware, app on the NIC-local socket: the best case.
	local, localMem := receive(ioctopus.ModeStandard, 0, window)
	fmt.Printf("  local  (std fw, app on socket 0): %5.1f Gb/s, DRAM %5.1f Gb/s\n", local, localMem)

	// Standard firmware, app on the other socket: NUDMA on every byte.
	remote, remoteMem := receive(ioctopus.ModeStandard, 14, window)
	fmt.Printf("  remote (std fw, app on socket 1): %5.1f Gb/s, DRAM %5.1f Gb/s\n", remote, remoteMem)

	// IOctopus firmware: the same remote placement, but IOctoRFS steers
	// the flow to the PF local to the app — NUDMA is gone.
	octo, octoMem := receive(ioctopus.ModeIOctopus, 14, window)
	fmt.Printf("  ioct   (octo fw, app on socket 1): %5.1f Gb/s, DRAM %5.1f Gb/s\n", octo, octoMem)

	fmt.Println()
	fmt.Printf("NUDMA cost: %.2fx throughput, %.1fx memory traffic\n", local/remote, remoteMem/(localMem+0.01))
	fmt.Printf("IOctopus recovers %.0f%% of the local configuration's throughput on the remote socket\n",
		100*octo/local)
}
