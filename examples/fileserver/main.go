// Fileserver: the §3.3 corner case. A static-content server transmits
// straight from the page cache (sendfile) — and the page cache doesn't
// care about NUMA, so a single response's pages can span both sockets.
// No single PF can reach all of them locally; IOctoSG steers each DMA
// fragment through the PF local to its page.
package main

import (
	"fmt"
	"time"

	"ioctopus"
	"ioctopus/internal/memsys"
	"ioctopus/internal/netstack"
)

// serve streams `files` cached across both sockets to the client and
// reports throughput plus how many bytes crossed the interconnect.
func serve(enableSG bool) (gbps, qpiGB float64) {
	cl := ioctopus.NewCluster(ioctopus.Config{Mode: ioctopus.ModeIOctopus, EnableSG: enableSG})
	defer cl.Drain()

	// The "page cache": file pages interleaved across both nodes, as a
	// first-touch-from-anywhere workload leaves them.
	var pages []*memsys.Buffer
	for i := 0; i < 8; i++ {
		pages = append(pages, cl.Server.Mem.NewBuffer(
			fmt.Sprintf("pagecache%d", i), ioctopus.NodeID(i%2), 64*1024))
	}

	var received int64
	cl.Client.Stack.Listen(80, func(s *ioctopus.Socket) {
		s.SteerTo(0)
		cl.Client.Kernel.Spawn("wget", 1, func(th *ioctopus.Thread) {
			for {
				n, _, ok := s.Recv(th)
				if !ok {
					return
				}
				received += n
			}
		})
	})
	cl.Server.Kernel.Spawn("httpd", 0, func(th *ioctopus.Thread) {
		sock, err := cl.Server.Stack.Dial(th, ioctopus.IPClient, 80, ioctopus.ProtoTCP)
		if err != nil {
			panic(err)
		}
		for {
			// Each response: two 32 KB page runs from different sockets.
			for i := 0; i+1 < len(pages); i += 2 {
				sock.SendFrags(th, []netstack.Frag{
					{Buf: pages[i], Bytes: 32 * 1024},
					{Buf: pages[i+1], Bytes: 32 * 1024},
				}, nil)
			}
		}
	})

	cl.Run(10 * time.Millisecond)
	cl.ResetStats()
	base := received
	window := 50 * time.Millisecond
	cl.Run(window)
	gbps = float64(received-base) * 8 / window.Seconds() / 1e9
	qpiGB = cl.Server.Fabric.TotalBytes() / 1e9
	return
}

func main() {
	fmt.Println("sendfile server, responses spanning both NUMA nodes (§3.3)")
	fmt.Println()
	g1, q1 := serve(false)
	fmt.Printf("  without IOctoSG: %5.1f Gb/s, %6.3f GB crossed the QPI\n", g1, q1)
	g2, q2 := serve(true)
	fmt.Printf("  with IOctoSG:    %5.1f Gb/s, %6.3f GB crossed the QPI\n", g2, q2)
	fmt.Println()
	fmt.Println("with fragment steering, every page is DMA-read by its local PF;")
	fmt.Println("the paper's prototype left IOctoSG unimplemented — this builds it")
}
