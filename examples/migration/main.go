// Migration: the §5.3 scenario (Figure 14). A load balancer moves a
// busy thread to the other socket mid-run; under IOctopus the octoNIC
// re-steers the flow to the now-local PF with no throughput loss, while
// the standard firmware keeps DMA-ing to the original socket.
//
// This is the paper's headline capability: schedulers no longer need to
// be NUDMA-aware — threads can be placed wherever load balancing wants.
package main

import (
	"fmt"
	"time"

	"ioctopus"
)

func run(mode ioctopus.NICMode) {
	cl := ioctopus.NewCluster(ioctopus.Config{Mode: mode})
	defer cl.Drain()

	var serverThread *ioctopus.Thread
	cl.Server.Stack.Listen(7, func(s *ioctopus.Socket) {
		serverThread = cl.Server.Kernel.Spawn("netserver", 0, func(th *ioctopus.Thread) {
			s.SetOwner(th)
			for {
				if _, _, ok := s.Recv(th); !ok {
					return
				}
			}
		})
	})
	cl.Client.Kernel.Spawn("netperf", 0, func(th *ioctopus.Thread) {
		sock, err := cl.Client.Stack.Dial(th, ioctopus.IPServerPF0, 7, ioctopus.ProtoTCP)
		if err != nil {
			panic(err)
		}
		for {
			sock.Send(th, 64*1024)
		}
	})

	fmt.Printf("--- %v firmware ---\n", mode)
	sampleWindow := 100 * time.Millisecond
	var prev0, prev1 float64
	sample := func(label string) {
		cl.Run(sampleWindow)
		cur0 := cl.Server.NIC.PF(0).RxBytes()
		cur1 := cl.Server.NIC.PF(1).RxBytes()
		fmt.Printf("  %-18s pf0 %5.1f Gb/s   pf1 %5.1f Gb/s\n", label,
			(cur0-prev0)*8/sampleWindow.Seconds()/1e9,
			(cur1-prev1)*8/sampleWindow.Seconds()/1e9)
		prev0, prev1 = cur0, cur1
	}

	sample("before migration")
	sample("before migration")
	// The "load balancer" decides socket 1 is a better home.
	cl.Server.Kernel.SetAffinity(serverThread, cl.Server.Topo.CoresOn(1)[0].ID)
	sample("after migration")
	sample("after migration")
	fmt.Println()
}

func main() {
	fmt.Println("thread migration across sockets, per-PF throughput (paper Fig 14)")
	fmt.Println()
	run(ioctopus.ModeIOctopus)
	run(ioctopus.ModeStandard)
	fmt.Println("octoNIC: traffic follows the thread; ethNIC: stuck on the old PF, throughput drops to remote level")
}
