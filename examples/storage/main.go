// Storage: the §5.4 scenario — four NVMe drives read by fio threads on
// the remote socket while STREAM saturates the UPI, and the OctoSSD
// extension (IOctopus principles applied to dual-port drives) that
// removes the degradation.
package main

import (
	"fmt"
	"time"

	"ioctopus"
	"ioctopus/internal/nvme"
	"ioctopus/internal/workloads"
)

func measure(policy nvme.Policy, dualPort bool, streams int) float64 {
	rig := ioctopus.NewStorageRig(ioctopus.StorageConfig{
		Drives: 4, SSDNode: 1, Policy: policy, DualPort: dualPort,
	})
	defer rig.Drain()

	cores := []ioctopus.CoreID{0, 1, 2, 3, 4, 5, 6, 7} // socket 0, remote from SSDs
	f := ioctopus.StartFio(rig, workloads.DefaultFioConfig(cores))
	if streams > 0 {
		workloads.StartAntagonistOn(rig.Host, streams, 1, 0,
			ioctopus.AntagonistConfig{DemandPerInstance: 10e9})
	}
	rig.Run(100 * time.Millisecond)
	f.MeasureStart()
	window := 100 * time.Millisecond
	rig.Run(window)
	return workloads.FioGBs(f.Bytes(), window)
}

func main() {
	fmt.Println("fio: 8 threads x QD32 x 128 KB reads over 4 NVMe drives,")
	fmt.Println("drives on socket 1, fio on socket 0 (paper Fig 15)")
	fmt.Println()

	solo := measure(nvme.SinglePath, false, 0)
	fmt.Printf("  no antagonist:          %5.2f GB/s\n", solo)
	for _, n := range []int{4, 8, 10} {
		got := measure(nvme.SinglePath, false, n)
		fmt.Printf("  %2d STREAM instances:    %5.2f GB/s (%.0f%% of solo)\n", n, got, 100*got/solo)
	}

	fmt.Println()
	fmt.Println("OctoSSD (dual-port drives, requests routed through the buffer-local port):")
	octoSolo := measure(nvme.OctoSSD, true, 0)
	octoLoaded := measure(nvme.OctoSSD, true, 10)
	fmt.Printf("  no antagonist:          %5.2f GB/s\n", octoSolo)
	fmt.Printf("  10 STREAM instances:    %5.2f GB/s (%.0f%% of solo)\n", octoLoaded, 100*octoLoaded/octoSolo)
	fmt.Println()
	fmt.Println("the fio data never crosses the UPI, so saturating it changes nothing")
}
