// Command ioctobench regenerates the paper's evaluation artifacts: one
// table/series per figure, with shape checks against the published
// results.
//
// Usage:
//
//	ioctobench -list
//	ioctobench -fig fig6
//	ioctobench -fig all -quick
//	ioctobench -fig fig14 -o fig14.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ioctopus"
)

func main() {
	var (
		fig    = flag.String("fig", "", "experiment id (fig2, fig6..fig15, ablation-*), or 'all'")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		quick  = flag.Bool("quick", false, "short measurement windows (smoke run)")
		out    = flag.String("o", "", "write results to this file instead of stdout")
		asJSON = flag.Bool("json", false, "emit machine-readable JSON (one array of results)")
	)
	flag.Parse()

	if *list {
		for _, id := range ioctopus.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "usage: ioctobench -fig <id>|all [-quick] [-o file]; -list for ids")
		os.Exit(2)
	}

	d := ioctopus.FullDurations()
	if *quick {
		d = ioctopus.QuickDurations()
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = ioctopus.ExperimentIDs()
	}

	var b strings.Builder
	var results []*ioctopus.ExperimentResult
	failed := 0
	for _, id := range ids {
		fmt.Fprintf(os.Stderr, "running %s...\n", id)
		res, err := ioctopus.RunExperiment(id, d)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		results = append(results, res)
		b.WriteString(res.Render())
		b.WriteString("\n")
		if !res.Passed() {
			failed++
		}
	}
	if *asJSON {
		b.Reset()
		enc, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		b.Write(enc)
		b.WriteByte('\n')
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	} else {
		fmt.Print(b.String())
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) had failing shape checks\n", failed)
		os.Exit(1)
	}
}
