// Command ioctobench regenerates the paper's evaluation artifacts: one
// table/series per figure, with shape checks against the published
// results.
//
// Every measurement point is an isolated deterministic simulation, so
// the harness fans points — and whole experiments — across a worker
// pool; output is byte-identical at any -parallel level.
//
// Usage:
//
//	ioctobench -list
//	ioctobench -fig fig6
//	ioctobench -fig all -quick -parallel 8
//	ioctobench -fig all -quick -shards 2
//	ioctobench -fig pmd -quick -datapath busypoll
//	ioctobench -fig fig14 -o fig14.txt
//	ioctobench -fig all -quick -json report.json
//	ioctobench -fig fig6 -profile ./prof
//	ioctobench -scenario chaos -quick
//	ioctobench -scenario my-experiment.json
//	ioctobench -fuzz 10 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"ioctopus"
)

func main() {
	var (
		fig      = flag.String("fig", "", "experiment id (fig2, fig6..fig15, ablation-*), or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quick    = flag.Bool("quick", false, "short measurement windows (smoke run)")
		out      = flag.String("o", "", "write results to this file instead of stdout")
		jsonPath = flag.String("json", "", "also write a versioned JSON report (results + run metadata + registry snapshots) to this path")
		profDir  = flag.String("profile", "", "write cpu.pprof and heap.pprof for the run into this directory")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"max simulations in flight (1 = fully serial); results are identical at any level")
		shards = flag.Int("shards", 1,
			"engine shards per simulated cluster (1 = serial engine; 2 = one shard per host); results are identical at any value")
		datapathArg = flag.String("datapath", "interrupt",
			"server completion datapath: interrupt (NAPI, the default), busypoll (poll-mode cores), or hybrid (adaptive polling)")
		scenarioArg = flag.String("scenario", "",
			"run a declarative scenario: a builtin name (fig2, chaos) or a path to a JSON spec file")
		fuzzN = flag.Int("fuzz", 0,
			"generate and run N seeded random scenarios (simulation fuzzing); seeds are -seed .. -seed+N-1")
		seed = flag.Int64("seed", 1, "first seed for -fuzz")
	)
	flag.Parse()

	if *list {
		for _, id := range ioctopus.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	modes := 0
	for _, on := range []bool{*fig != "", *scenarioArg != "", *fuzzN > 0} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "usage: ioctobench -fig <id>|all | -scenario <name|file.json> | -fuzz N [-seed S] [-quick] [-parallel N] [-o file]; -list for ids")
		os.Exit(2)
	}
	// Validate everything up front: a bad flag should fail here with a
	// clear message, not hours into a run.
	if *fig != "" && *fig != "all" && !ioctopus.HasExperiment(*fig) {
		fmt.Fprintf(os.Stderr, "ioctobench: unknown experiment %q; -list prints valid ids\n", *fig)
		os.Exit(2)
	}
	if *fuzzN < 0 {
		fmt.Fprintf(os.Stderr, "ioctobench: -fuzz %d is invalid; need a positive scenario count\n", *fuzzN)
		os.Exit(2)
	}
	if *jsonPath != "" && *fig == "" {
		fmt.Fprintln(os.Stderr, "ioctobench: -json reports cover figure runs; use -o for scenario/fuzz output")
		os.Exit(2)
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "ioctobench: -parallel %d is invalid; need at least 1 simulation in flight\n", *parallel)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "ioctobench: -shards %d is invalid; need at least 1 engine shard\n", *shards)
		os.Exit(2)
	}
	datapath, err := ioctopus.ParseDatapath(*datapathArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioctobench: %v\n", err)
		os.Exit(2)
	}

	ioctopus.SetParallelism(*parallel)
	ioctopus.SetShards(*shards)
	ioctopus.SetDatapath(datapath)

	d := ioctopus.FullDurations()
	if *quick {
		d = ioctopus.QuickDurations()
	}

	if *scenarioArg != "" || *fuzzN > 0 {
		runScenarios(*scenarioArg, *fuzzN, *seed, d, *out)
		return
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = ioctopus.ExperimentIDs()
	}

	stopProfiling := func() {}
	if *profDir != "" {
		stop, err := startProfiling(*profDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		stopProfiling = stop
	}

	results, err := runAll(ids, d, *parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var b strings.Builder
	failed := 0
	for _, res := range results {
		b.WriteString(res.Render())
		b.WriteString("\n")
		if !res.Passed() {
			failed++
		}
	}

	if *jsonPath != "" {
		if err := writeReport(*jsonPath, ids, *quick, d, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
	stopProfiling()

	emit(b.String(), *out)
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) had failing shape checks\n", failed)
		os.Exit(1)
	}
}

// emit writes the rendered results to -o or stdout.
func emit(text, out string) {
	if out != "" {
		if err := os.WriteFile(out, []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
		return
	}
	fmt.Print(text)
}

// runScenarios executes either one named/file scenario at the run's
// -quick/full durations, or a -fuzz batch of generated scenarios at
// the fuzz durations, and exits nonzero when any check fails — the
// same contract as figure runs.
func runScenarios(name string, fuzzN int, seed int64, d ioctopus.Durations, out string) {
	var specs []*ioctopus.Scenario
	if name != "" {
		sp, err := ioctopus.LoadScenario(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		specs = append(specs, sp)
	} else {
		d = ioctopus.FuzzDurations()
		for i := 0; i < fuzzN; i++ {
			specs = append(specs, ioctopus.GenerateScenario(seed+int64(i)))
		}
	}
	var b strings.Builder
	failed := 0
	for _, sp := range specs {
		fmt.Fprintf(os.Stderr, "running scenario %s...\n", sp.Name)
		res, err := ioctopus.RunScenario(sp, d)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		b.WriteString(res.Render())
		b.WriteString("\n")
		if !res.Passed() {
			failed++
		}
	}
	emit(b.String(), out)
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d scenario(s) had failing checks\n", failed)
		os.Exit(1)
	}
}

// runAll executes the experiments, concurrently up to `parallel` whole
// experiments in flight (their points additionally fan out through the
// library's shared pool), and returns results in input order.
func runAll(ids []string, d ioctopus.Durations, parallel int) ([]*ioctopus.ExperimentResult, error) {
	results := make([]*ioctopus.ExperimentResult, len(ids))
	errs := make([]error, len(ids))
	if parallel <= 1 || len(ids) == 1 {
		for i, id := range ids {
			fmt.Fprintf(os.Stderr, "running %s...\n", id)
			results[i], errs[i] = ioctopus.RunExperiment(id, d)
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
		return results, nil
	}
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		// Loop variables are per-iteration since Go 1.22; capturing them
		// directly avoids shadowing params.
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fmt.Fprintf(os.Stderr, "running %s...\n", id)
			results[i], errs[i] = ioctopus.RunExperiment(id, d)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// writeReport emits the versioned JSON report: the figure results plus
// run metadata and the per-mode registry snapshots of the canonical
// smoke run. The report is validated before it lands on disk, so a
// schema regression fails the run instead of poisoning a pipeline.
func writeReport(path string, ids []string, quick bool, d ioctopus.Durations, results []*ioctopus.ExperimentResult) error {
	rep := ioctopus.NewReport(ids, quick, d, results)
	rep.Registry = ioctopus.RegistrySnapshots(d)
	enc, err := rep.Encode()
	if err != nil {
		return err
	}
	if err := ioctopus.ValidateReport(enc); err != nil {
		return fmt.Errorf("generated report failed validation: %w", err)
	}
	return os.WriteFile(path, enc, 0o644)
}

// startProfiling begins a CPU profile in dir and returns a stop
// function that finishes it and adds a heap profile.
func startProfiling(dir string) (stop func(), err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		cpu.Close()
		if heap, err := os.Create(filepath.Join(dir, "heap.pprof")); err == nil {
			runtime.GC()
			if err := pprof.WriteHeapProfile(heap); err != nil {
				fmt.Fprintf(os.Stderr, "heap profile: %v\n", err)
			}
			heap.Close()
		}
		fmt.Fprintf(os.Stderr, "wrote %s and %s\n",
			filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "heap.pprof"))
	}, nil
}
