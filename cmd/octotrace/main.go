// Command octotrace runs the §5.3 thread-migration experiment and emits
// the per-PF throughput timeline as CSV — the raw data behind Figure 14.
//
// Usage:
//
//	octotrace -mode octo   > octo.csv
//	octotrace -mode standard > eth.csv
//	octotrace -mode octo -seconds 0.5 -trace octo.trace.json
//	octotrace -mode octo -kill-pf 0 -kill-at 0.3 -restore-at 0.6 > failover.csv
//
// -kill-pf injects a PF link outage (fault injection): the PF's link
// goes down at -kill-at and comes back at -restore-at (fractions of the
// run). In octo mode the team driver fails every flow over to the
// surviving PF and the timeline shows the traffic move; retransmission
// is enabled so nothing is lost end to end.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ioctopus"
	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/metrics"
	"ioctopus/internal/netstack"
	"ioctopus/internal/sim"
)

func main() {
	mode := flag.String("mode", "octo", "octo | standard")
	seconds := flag.Float64("seconds", 9, "timeline length (simulated seconds)")
	sample := flag.Duration("sample", 50*time.Millisecond, "sampling period")
	migrateFrac := flag.Float64("migrate-at", 0.45, "migration point as a fraction of the run")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of pipe activity to this path (open in chrome://tracing or ui.perfetto.dev)")
	traceLimit := flag.Int("trace-limit", 1<<20, "newest trace records retained (ring buffer); 0 = unbounded")
	killPF := flag.Int("kill-pf", -1, "inject a link outage on this PF index (-1 = none)")
	killFrac := flag.Float64("kill-at", 0.3, "link-down point as a fraction of the run")
	restoreFrac := flag.Float64("restore-at", 0.6, "link-up point as a fraction of the run")
	flag.Parse()

	m := ioctopus.ModeIOctopus
	switch *mode {
	case "octo":
	case "standard":
		m = ioctopus.ModeStandard
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	total := time.Duration(*seconds * float64(time.Second))
	cfg := ioctopus.Config{Mode: m}
	if *killPF >= 0 {
		if *killFrac < 0 || *restoreFrac <= *killFrac || *restoreFrac > 1 {
			fmt.Fprintf(os.Stderr, "need 0 <= -kill-at < -restore-at <= 1 (got %v, %v)\n", *killFrac, *restoreFrac)
			os.Exit(2)
		}
		// Retransmission keeps the stream alive across the outage.
		sp := ioctopus.DefaultStackParams()
		sp.RetxTimeout = 2 * time.Millisecond
		cfg.StackParams = &sp
		cfg.FaultPlan = &ioctopus.FaultPlan{Events: []ioctopus.FaultEvent{{
			At:       time.Duration(float64(total) * *killFrac),
			Kind:     ioctopus.FaultLinkFlap,
			PF:       *killPF,
			Duration: time.Duration(float64(total) * (*restoreFrac - *killFrac)),
		}}}
	}
	cl, err := ioctopus.NewClusterE(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer cl.Drain()

	var tracer *sim.Tracer
	if *tracePath != "" {
		tracer = sim.NewTracer(*traceLimit)
		cl.Eng.SetTracer(tracer)
	}

	var serverThread *kernel.Thread
	cl.Server.Stack.Listen(7, func(s *netstack.Socket) {
		serverThread = cl.Server.Kernel.Spawn("netserver", 0, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				if _, _, ok := s.Recv(th); !ok {
					return
				}
			}
		})
	})
	cl.Client.Kernel.Spawn("netperf", 0, func(th *kernel.Thread) {
		sock, err := cl.Client.Stack.Dial(th, ioctopus.IPServerPF0, 7, eth.ProtoTCP)
		if err != nil {
			panic(err)
		}
		for {
			sock.Send(th, 65536)
		}
	})

	sampler := metrics.NewSampler(cl.Eng, *sample)
	pf0 := sampler.TrackRate("pf0", func() float64 { return cl.Server.NIC.PF(0).RxBytes() * 8 / 1e9 })
	pf1 := sampler.TrackRate("pf1", func() float64 { return cl.Server.NIC.PF(1).RxBytes() * 8 / 1e9 })
	sampler.Start()

	migrateAt := time.Duration(float64(total) * *migrateFrac)
	cl.Run(migrateAt)
	cl.Server.Kernel.SetAffinity(serverThread, cl.Server.Topo.CoresOn(1)[0].ID)
	fmt.Fprintf(os.Stderr, "migrated netserver to socket 1 at t=%.2fs\n", migrateAt.Seconds())
	cl.Run(total - migrateAt)
	if *killPF >= 0 {
		fmt.Fprintf(os.Stderr, "pf%d link outage [%.2fs, %.2fs]: %d link transitions",
			*killPF, float64(total.Seconds())**killFrac, float64(total.Seconds())**restoreFrac,
			cl.Faults.LinkTransitions())
		if cl.Octo != nil {
			fmt.Fprintf(os.Stderr, "; failovers=%d failbacks=%d reposted=%d",
				cl.Octo.Failovers(), cl.Octo.Failbacks(), cl.Octo.Reposted())
		}
		fmt.Fprintln(os.Stderr)
	}

	fmt.Println("time_s,pf0_gbps,pf1_gbps")
	for i := range pf0.Values {
		fmt.Printf("%.3f,%.3f,%.3f\n", pf0.Times[i].Seconds(), pf0.Values[i], pf1.Values[i])
	}

	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s (%d records retained)\n", *tracePath, len(tracer.Records()))
	}
}
