// Command octotrace runs the §5.3 thread-migration experiment and emits
// the per-PF throughput timeline as CSV — the raw data behind Figure 14.
//
// Usage:
//
//	octotrace -mode octo   > octo.csv
//	octotrace -mode standard > eth.csv
//	octotrace -mode octo -seconds 0.5 -trace octo.trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ioctopus"
	"ioctopus/internal/eth"
	"ioctopus/internal/kernel"
	"ioctopus/internal/metrics"
	"ioctopus/internal/netstack"
	"ioctopus/internal/sim"
)

func main() {
	mode := flag.String("mode", "octo", "octo | standard")
	seconds := flag.Float64("seconds", 9, "timeline length (simulated seconds)")
	sample := flag.Duration("sample", 50*time.Millisecond, "sampling period")
	migrateFrac := flag.Float64("migrate-at", 0.45, "migration point as a fraction of the run")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of pipe activity to this path (open in chrome://tracing or ui.perfetto.dev)")
	traceLimit := flag.Int("trace-limit", 1<<20, "newest trace records retained (ring buffer); 0 = unbounded")
	flag.Parse()

	m := ioctopus.ModeIOctopus
	switch *mode {
	case "octo":
	case "standard":
		m = ioctopus.ModeStandard
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	cl := ioctopus.NewCluster(ioctopus.Config{Mode: m})
	defer cl.Drain()

	var tracer *sim.Tracer
	if *tracePath != "" {
		tracer = sim.NewTracer(*traceLimit)
		cl.Eng.SetTracer(tracer)
	}

	var serverThread *kernel.Thread
	cl.Server.Stack.Listen(7, func(s *netstack.Socket) {
		serverThread = cl.Server.Kernel.Spawn("netserver", 0, func(th *kernel.Thread) {
			s.SetOwner(th)
			for {
				if _, _, ok := s.Recv(th); !ok {
					return
				}
			}
		})
	})
	cl.Client.Kernel.Spawn("netperf", 0, func(th *kernel.Thread) {
		sock, err := cl.Client.Stack.Dial(th, ioctopus.IPServerPF0, 7, eth.ProtoTCP)
		if err != nil {
			panic(err)
		}
		for {
			sock.Send(th, 65536)
		}
	})

	sampler := metrics.NewSampler(cl.Eng, *sample)
	pf0 := sampler.TrackRate("pf0", func() float64 { return cl.Server.NIC.PF(0).RxBytes() * 8 / 1e9 })
	pf1 := sampler.TrackRate("pf1", func() float64 { return cl.Server.NIC.PF(1).RxBytes() * 8 / 1e9 })
	sampler.Start()

	total := time.Duration(*seconds * float64(time.Second))
	migrateAt := time.Duration(float64(total) * *migrateFrac)
	cl.Run(migrateAt)
	cl.Server.Kernel.SetAffinity(serverThread, cl.Server.Topo.CoresOn(1)[0].ID)
	fmt.Fprintf(os.Stderr, "migrated netserver to socket 1 at t=%.2fs\n", migrateAt.Seconds())
	cl.Run(total - migrateAt)

	fmt.Println("time_s,pf0_gbps,pf1_gbps")
	for i := range pf0.Values {
		fmt.Printf("%.3f,%.3f,%.3f\n", pf0.Times[i].Seconds(), pf0.Values[i], pf1.Values[i])
	}

	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s (%d records retained)\n", *tracePath, len(tracer.Records()))
	}
}
