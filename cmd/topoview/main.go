// Command topoview prints the simulated hardware topologies: sockets,
// cores, caches, memory, interconnect, and how the octoNIC's physical
// functions attach to them.
package main

import (
	"flag"
	"fmt"
	"os"

	"ioctopus/internal/pcie"
	"ioctopus/internal/topology"
)

func main() {
	name := flag.String("machine", "broadwell", "broadwell | skylake | quad")
	flag.Parse()

	var srv *topology.Server
	switch *name {
	case "broadwell":
		srv = topology.DualBroadwell()
	case "skylake":
		srv = topology.DualSkylake()
	case "quad":
		srv = topology.QuadSocket(12)
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *name)
		os.Exit(2)
	}

	fmt.Printf("%s: %d sockets, %d cores\n", srv.Name, srv.NumNodes(), srv.NumCores())
	fmt.Printf("interconnect: %s, %.1f GB/s per direction per pair, %v base latency\n\n",
		srv.Interconnect.Name, srv.Interconnect.AggregateBandwidth()/1e9, srv.Interconnect.BaseLatency)
	for _, sk := range srv.Sockets {
		fmt.Printf("socket %d:\n", sk.ID)
		fmt.Printf("  cores %d-%d @ %.1f GHz\n", sk.Cores[0].ID, sk.Cores[len(sk.Cores)-1].ID, sk.Cores[0].FreqGHz)
		fmt.Printf("  LLC   %d MiB (DDIO %.0f%%, hit %v)\n", sk.LLC.Size>>20, sk.LLC.DDIOFraction*100, sk.LLC.HitLatency)
		fmt.Printf("  DRAM  %d GiB @ %.0f GB/s, %v latency\n", sk.DRAM.Capacity>>30, sk.DRAM.BytesPerSec/1e9, sk.DRAM.Latency)
	}

	fmt.Println("\noctoNIC wiring options (x16 Gen3 card):")
	for _, w := range []pcie.Wiring{pcie.WiringDirect, pcie.WiringBifurcated, pcie.WiringExtender, pcie.WiringSwitch} {
		lanes := 16
		pfs := 1
		note := "single socket (NUDMA for the rest)"
		switch w {
		case pcie.WiringBifurcated:
			lanes, pfs, note = 16/srv.NumNodes(), srv.NumNodes(), "the prototype: one PF per socket"
		case pcie.WiringExtender:
			pfs, note = srv.NumNodes(), "full width per socket via extender cabling"
		case pcie.WiringSwitch:
			pfs, note = srv.NumNodes(), "programmable switch: flexible, +hop latency"
		}
		fmt.Printf("  %-11s %d PF(s) x%d lanes  (%.1f GB/s each) — %s\n",
			w.String(), pfs, lanes, pcie.LinkBandwidth(pcie.Gen3, lanes)/1e9, note)
	}
}
