// Command octolint is the repository's static-analysis multichecker:
// it loads every package in the module with the stdlib toolchain
// (go/parser + go/types, no external dependencies) and applies the
// octolint analyzer suite (internal/lint/analyzers), which enforces at
// compile time the invariants the simulator otherwise defends with
// runtime panics and the double-run byte-identity gates in
// scripts/check.sh.
//
// Usage:
//
//	octolint [-rules a,b,...] [-list]
//
// Findings print one per line as file:line:col: [rule] message and set
// exit status 1; loader or internal errors set status 2. Justified
// exceptions are recorded inline with
//
//	//octolint:allow <rule> <reason>
//
// which covers its own line and the next; unjustified or stale
// directives are findings themselves.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ioctopus/internal/lint"
	"ioctopus/internal/lint/analyzers"
)

func main() {
	rules := flag.String("rules", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *rules != "" {
		wanted := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			wanted[strings.TrimSpace(r)] = true
		}
		var filtered []*lint.Analyzer
		for _, a := range suite {
			if wanted[a.Name] {
				filtered = append(filtered, a)
				delete(wanted, a.Name)
			}
		}
		if len(wanted) > 0 {
			var unknown []string
			for r := range wanted {
				unknown = append(unknown, r)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "octolint: unknown rule(s): %s (see -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		suite = filtered
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "octolint: %v\n", err)
		os.Exit(2)
	}
	// The source importer resolves intra-module imports through the go
	// tool, which needs the working directory inside the module.
	if err := os.Chdir(root); err != nil {
		fmt.Fprintf(os.Stderr, "octolint: %v\n", err)
		os.Exit(2)
	}

	pkgs, err := lint.NewLoader().LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "octolint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "octolint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		if rel, rerr := filepath.Rel(root, d.Pos.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "octolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory; run octolint inside the module")
		}
		dir = parent
	}
}
